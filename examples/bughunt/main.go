// Bughunt: point the model checker at deliberately broken cache-coherence
// protocols, then explain each violation with the witness pipeline — the
// counterexample run is replayed through a witness-enabled observer and
// checker, shrunk to a 1-minimal rejecting core by delta debugging, and
// rendered as a happens-before loop of concrete memory operations,
// cross-checked against the exact Gibbons–Korach reordering search.
// The lightweight random-testing mode (witness.Hunt) finds and explains
// the same bugs without exploring the product space.
//
// Run with: go run ./examples/bughunt
package main

import (
	"fmt"
	"log"

	"scverify/internal/mc"
	"scverify/internal/registry"
	"scverify/internal/trace"
	"scverify/internal/witness"
)

func main() {
	targets := []struct {
		name   string
		params trace.Params
		runs   int
		steps  int
	}{
		{"msi-lost-writeback", trace.Params{Procs: 2, Blocks: 1, Values: 1}, 800, 24},
		{"msi-no-invalidate", trace.Params{Procs: 2, Blocks: 2, Values: 1}, 800, 24},
		{"storebuffer", trace.Params{Procs: 2, Blocks: 2, Values: 1}, 500, 16},
	}

	for _, tc := range targets {
		tgt, err := registry.Build(tc.name, registry.Options{Params: tc.params, QueueCap: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%s) ===\n", tc.name, tgt.Note)

		// Exhaustive: the model checker finds a shortest-depth violation;
		// the witness pipeline turns it into an explanation.
		res := mc.Verify(tgt.Protocol, mc.Options{
			Generator: tgt.Generator,
			PoolSize:  tgt.PoolSize,
			MaxDepth:  10,
		})
		fmt.Println("model checker:", res)
		if res.Verdict != mc.Violated {
			log.Fatalf("expected a violation for %s", tc.name)
		}
		run, err := mc.Replay(tgt.Protocol, res.Counterexample)
		if err != nil {
			log.Fatal(err)
		}
		w, err := witness.FromRun(run, tgt, witness.Explain())
		if err != nil {
			log.Fatal(err)
		}
		if w == nil {
			log.Fatalf("counterexample run for %s was accepted on replay", tc.name)
		}
		fmt.Printf("counterexample run: %s\n", run)
		fmt.Print(w.Render())

		// Lightweight: random testing stumbles on the same class of bug
		// without exploring the product space. Hunt prefers rejections the
		// exact search certifies as genuine non-SC traces.
		hw, err := witness.Hunt(tgt, tc.runs, tc.steps, 7, witness.Explain())
		if err != nil {
			log.Fatal(err)
		}
		if hw == nil {
			fmt.Println("random testing: no rejection within the budget")
		} else {
			fmt.Printf("random testing (seed %d): %s\n", hw.Seed, hw.Summary())
		}
		fmt.Println()
	}
}
