// Bughunt: point the model checker at deliberately broken cache-coherence
// protocols and watch it synthesize minimal counterexample runs, then
// compare with the lightweight random-testing mode of Section 5.
//
// Run with: go run ./examples/bughunt
package main

import (
	"fmt"
	"log"

	"scverify/internal/mc"
	"scverify/internal/registry"
	"scverify/internal/sctest"
	"scverify/internal/trace"
)

func main() {
	targets := []struct {
		name   string
		params trace.Params
	}{
		{"msi-lost-writeback", trace.Params{Procs: 2, Blocks: 1, Values: 1}},
		{"msi-no-invalidate", trace.Params{Procs: 2, Blocks: 2, Values: 1}},
		{"storebuffer", trace.Params{Procs: 2, Blocks: 2, Values: 1}},
	}

	for _, tc := range targets {
		tgt, err := registry.Build(tc.name, registry.Options{Params: tc.params, QueueCap: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%s) ===\n", tc.name, tgt.Note)

		// Exhaustive: the model checker finds a shortest-depth violation.
		res := mc.Verify(tgt.Protocol, mc.Options{
			Generator: tgt.Generator,
			PoolSize:  tgt.PoolSize,
			MaxDepth:  10,
		})
		fmt.Println("model checker:", res)
		if res.Verdict != mc.Violated {
			log.Fatalf("expected a violation for %s", tc.name)
		}
		run, err := mc.Replay(tgt.Protocol, res.Counterexample)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("counterexample run:", run)
		fmt.Println("counterexample trace:", run.Trace)
		fmt.Println("trace is SC?", trace.HasSerialReordering(run.Trace))

		// Lightweight: random testing also stumbles on violations, without
		// exploring the product space.
		camp := sctest.Campaign(tgt, sctest.Config{Runs: 300, Steps: 14, Seed: 7, Exact: true})
		fmt.Println("random testing:", camp)
		fmt.Println()
	}
}
