// Quickstart: define a protocol run with tracking labels, watch the
// observer turn it into a k-graph descriptor, and let the protocol-
// independent checker decide sequential consistency — then verify a whole
// protocol exhaustively with the model checker.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/mc"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/protocols/serial"
	"scverify/internal/trace"
)

func main() {
	// --- Part 1: one run through the observer/checker pipeline. ---------
	//
	// A hand-written protocol run: two processors sharing one block
	// through a cache-to-cache copy. Storage locations: 1 = P1's cache,
	// 2 = P2's cache. Tracking labels say which location each operation
	// touches and how internal actions copy data — that is all the
	// observer needs (Section 4.1 of Condon & Hu).
	script := &protocol.Scripted{
		ProtoName: "quickstart", P: 2, B: 1, V: 2, L: 2,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.Internal("share", 2, 1), Copies: []protocol.Copy{{Dst: 2, Src: 1}}},
			{Action: protocol.MemOp(trace.LD(2, 1, 1)), Loc: 2},
			{Action: protocol.MemOp(trace.ST(1, 1, 2)), Loc: 1},
			{Action: protocol.MemOp(trace.LD(2, 1, 1)), Loc: 2}, // stale — but still SC
		},
	}
	run := protocol.RandomRun(script, 10, 0) // deterministic: one enabled step each time

	fmt.Println("run:  ", run)
	fmt.Println("trace:", run.Trace)

	stream, obs, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		log.Fatalf("observer: %v", err)
	}
	fmt.Printf("descriptor (k=%d): %s\n", obs.K(), stream.Text())

	if err := checker.Check(stream, obs.K()); err != nil {
		fmt.Println("verdict: REJECTED —", err)
	} else {
		fmt.Println("verdict: accepted — the run is witnessed sequentially consistent")
	}

	// Cross-check with the exact (exponential) decision procedure.
	fmt.Println("exact SC check:", trace.HasSerialReordering(run.Trace))

	// The descriptor really is a graph: decode it back and inspect.
	d := descriptor.Decode(stream)
	fmt.Printf("decoded graph: %d nodes, %d edges, acyclic=%v\n",
		len(d.Labels), len(d.Edges), d.IsAcyclic())

	// --- Part 2: verify a whole protocol, every run at once. ------------
	p := serial.New(trace.Params{Procs: 2, Blocks: 1, Values: 1})
	res := mc.Verify(p, mc.Options{})
	fmt.Println("\nmodel checking:", res)
}
