// Litmus: explore the Figure 1 program of Condon & Hu under three memory
// models, then validate each claimed-SC outcome with the exact trace-level
// decision procedure and the constraint-graph machinery.
//
// Run with: go run ./examples/litmus
package main

import (
	"fmt"
	"log"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/memmodel"
	"scverify/internal/trace"
)

func main() {
	prog := memmodel.Figure1()
	fmt.Println("Figure 1 program — P1: ST x←1; ST y←2.   P2: LD y→r2; LD x→r1.")

	serial, err := prog.SerialOutcome([]int{0, 0, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("serial memory:", serial)
	fmt.Println("sequential consistency:", memmodel.OutcomeStrings(prog.SCOutcomes()))
	fmt.Println("relaxed (loads reordered):", memmodel.OutcomeStrings(prog.RelaxedOutcomes()))

	// For each SC outcome, build a witnessing trace, its canonical
	// constraint graph, and run the finite-state checker on the encoded
	// descriptor: all three layers must agree.
	fmt.Println("\nper-outcome validation:")
	for _, sched := range [][]int{
		{0, 0, 1, 1}, {1, 1, 0, 0}, {1, 0, 0, 1}, {0, 1, 0, 1},
	} {
		tr, err := prog.Trace(sched)
		if err != nil {
			log.Fatal(err)
		}
		r, sc := trace.FindSerialReordering(tr)
		verdict := "not SC"
		if sc {
			g := graph.Canonical(tr, r)
			s, k := descriptor.EncodeAuto(g)
			if err := checker.Check(s, k); err != nil {
				log.Fatalf("checker rejected an SC trace: %v", err)
			}
			verdict = fmt.Sprintf("SC (graph bandwidth %d, checker accepts)", g.Bandwidth())
		}
		fmt.Printf("  schedule %v → trace %s: %s\n", sched, tr, verdict)
	}

	// The forbidden outcome r1=0, r2=2 corresponds to a trace with a
	// cyclic constraint graph; show the exact decision agreeing.
	bad := trace.Trace{
		trace.ST(1, 1, 1), trace.ST(1, 2, 2),
		trace.LD(2, 2, 2), trace.LD(2, 1, trace.Bottom),
	}
	fmt.Printf("\nforbidden outcome trace %s: SC=%v (must be false)\n",
		bad, trace.HasSerialReordering(bad))
}
