// Lazycaching: reproduce the Section 4.2 story of Condon & Hu — the
// Afek–Brown–Merritt Lazy Caching protocol is sequentially consistent, but
// its stores serialize in memory-write order, not trace order, so the
// trivial real-time ST-order generator produces a cyclic witness while the
// queue-aware generator certifies the same run.
//
// Run with: go run ./examples/lazycaching
package main

import (
	"fmt"
	"log"

	"scverify/internal/checker"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/protocols/lazycache"
	"scverify/internal/trace"
)

func main() {
	m := lazycache.New(trace.Params{Procs: 3, Blocks: 1, Values: 2}, 1, 2)

	// Drive the run in which P2's store serializes before P1's even
	// though P1 stored first, and P3 observes both values in
	// memory-write order.
	r := protocol.NewRunner(m)
	for _, want := range []string{
		"ST(P1,B1,1)",
		"ST(P2,B1,2)",
		"memory-write(2,1)", // P2's store hits memory first
		"memory-write(1,1)",
		"cache-update(3,1)",
		"LD(P3,B1,2)",
		"cache-update(3,1)",
		"LD(P3,B1,1)",
	} {
		found := false
		for _, tr := range r.Enabled() {
			if tr.Action.String() == want {
				r.Take(tr)
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("action %q not enabled", want)
		}
	}
	run := r.Run()
	fmt.Println("run:  ", run)
	fmt.Println("trace:", run.Trace)
	fmt.Println("trace is SC (exact check):", trace.HasSerialReordering(run.Trace))

	check := func(name string, gen observer.STOrderGenerator) {
		stream, obs, err := observer.ObserveRun(run, gen, observer.Config{PoolSize: m.RecommendedPoolSize()})
		if err != nil {
			fmt.Printf("%-22s observer error: %v\n", name+":", err)
			return
		}
		if err := checker.Check(stream, obs.K()); err != nil {
			fmt.Printf("%-22s REJECTED — %v\n", name+":", err)
			return
		}
		fmt.Printf("%-22s accepted (%d descriptor symbols)\n", name+":", len(stream))
	}

	fmt.Println()
	check("real-time generator", observer.NewRealTime())
	check("queue-aware generator", lazycache.NewGenerator(3))

	fmt.Println("\nThe protocol is SC; only the ST-order annotation differs.")
	fmt.Println("This is why Section 4.2 makes the ST-order generator pluggable.")
}
