// Package scverify's root benchmark harness: one benchmark per experiment
// row in DESIGN.md, so `go test -bench=. -benchmem` regenerates the
// performance side of every paper artifact. The correctness side is
// produced by cmd/scexperiments and recorded in EXPERIMENTS.md.
package scverify

import (
	"testing"

	"scverify/internal/boundedreorder"
	"scverify/internal/checker"
	"scverify/internal/cycle"
	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/mc"
	"scverify/internal/memmodel"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/sctest"
	"scverify/internal/sizebound"
	"scverify/internal/trace"
)

// --- E1: Figure 1 ----------------------------------------------------------

func BenchmarkFigure1Outcomes(b *testing.B) {
	prog := memmodel.Figure1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(prog.SCOutcomes()); got != 3 {
			b.Fatalf("SC outcomes = %d", got)
		}
	}
}

func BenchmarkFigure1Relaxed(b *testing.B) {
	prog := memmodel.Figure1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(prog.RelaxedOutcomes()); got != 4 {
			b.Fatalf("relaxed outcomes = %d", got)
		}
	}
}

// --- E2: Figure 3 ----------------------------------------------------------

func figure3Graph() *graph.Graph {
	t := trace.Trace{
		trace.ST(1, 1, 1), trace.LD(2, 1, 1), trace.ST(1, 1, 2),
		trace.LD(2, 1, 1), trace.LD(2, 1, 2),
	}
	g := graph.New(t)
	g.AddEdge(0, 1, graph.Inheritance)
	g.AddEdge(0, 2, graph.ProgramOrder|graph.StoreOrder)
	g.AddEdge(0, 3, graph.Inheritance)
	g.AddEdge(1, 3, graph.ProgramOrder)
	g.AddEdge(3, 2, graph.Forced)
	g.AddEdge(2, 4, graph.Inheritance)
	g.AddEdge(3, 4, graph.ProgramOrder)
	return g
}

func BenchmarkFigure3Descriptor(b *testing.B) {
	g := figure3Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, k := descriptor.EncodeAuto(g)
		if err := checker.Check(s, k); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Figure 4 ----------------------------------------------------------

func BenchmarkFigure4Tracking(b *testing.B) {
	script := &protocol.Scripted{
		ProtoName: "figure4", P: 2, B: 3, V: 3, L: 4,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.MemOp(trace.ST(2, 2, 2)), Loc: 4},
			{Action: protocol.Internal("Get-Shared", 2, 1), Copies: []protocol.Copy{{Dst: 3, Src: 1}}},
			{Action: protocol.MemOp(trace.ST(1, 3, 3)), Loc: 1},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run := protocol.RandomRun(script, 10, 0)
		if _, err := observer.ObserveInheritance(run); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: cycle checker throughput vs bandwidth bound ------------------------

func benchCycleChecker(b *testing.B, k, nodes int) {
	// Build a long acyclic stream: a rolling chain that constantly
	// recycles IDs, the worst case for contraction bookkeeping.
	var s descriptor.Stream
	for i := 0; i < nodes; i++ {
		id := 1 + i%(k+1)
		s = append(s, descriptor.Node{ID: id})
		if i > 0 {
			prev := 1 + (i-1)%(k+1)
			if prev != id {
				s = append(s, descriptor.Edge{From: prev, To: id})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cycle.CheckStream(s, k); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(s)))
}

func BenchmarkCycleCheckerK4(b *testing.B)  { benchCycleChecker(b, 4, 4096) }
func BenchmarkCycleCheckerK8(b *testing.B)  { benchCycleChecker(b, 8, 4096) }
func BenchmarkCycleCheckerK16(b *testing.B) { benchCycleChecker(b, 16, 4096) }
func BenchmarkCycleCheckerK32(b *testing.B) { benchCycleChecker(b, 32, 4096) }

// --- E5: full checker on canonical streams ----------------------------------

func BenchmarkCheckerCanonicalStream(b *testing.B) {
	gen := trace.NewGenerator(trace.Params{Procs: 4, Blocks: 3, Values: 3}, 23)
	tr := gen.SC(64)
	r, ok := trace.FindSerialReordering(tr)
	if !ok {
		b.Fatal("trace not SC")
	}
	s, k := descriptor.EncodeAuto(graph.Canonical(tr, r))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := checker.Check(s, k); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: verification of the protocol suite ---------------------------------

func benchVerify(b *testing.B, name string, params trace.Params, depth int, want mc.Verdict) {
	tgt, err := registry.Build(name, registry.Options{Params: params, QueueCap: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := mc.Verify(tgt.Protocol, mc.Options{
			Generator: tgt.Generator,
			PoolSize:  tgt.PoolSize,
			MaxDepth:  depth,
		})
		if res.Verdict != want {
			b.Fatalf("verdict = %s, want %s", res.Verdict, want)
		}
	}
}

func BenchmarkVerifySerialFull(b *testing.B) {
	benchVerify(b, "serial", trace.Params{Procs: 2, Blocks: 1, Values: 1}, 0, mc.Verified)
}

func BenchmarkVerifyMSIDepth8(b *testing.B) {
	benchVerify(b, "msi", trace.Params{Procs: 2, Blocks: 1, Values: 1}, 8, mc.Incomplete)
}

func BenchmarkVerifyStoreBufferViolation(b *testing.B) {
	benchVerify(b, "storebuffer", trace.Params{Procs: 2, Blocks: 2, Values: 1}, 0, mc.Violated)
}

func BenchmarkVerifyLostWritebackViolation(b *testing.B) {
	benchVerify(b, "msi-lost-writeback", trace.Params{Procs: 2, Blocks: 1, Values: 1}, 0, mc.Violated)
}

func BenchmarkVerifyLazyDepth8(b *testing.B) {
	benchVerify(b, "lazy", trace.Params{Procs: 2, Blocks: 1, Values: 1}, 8, mc.Incomplete)
}

// --- E7: size bound ----------------------------------------------------------

func BenchmarkSizeBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := sizebound.Sweep(
			[]int{2, 4, 8, 16}, []int{1, 2, 4, 8}, []int{2, 4, 8},
			func(p, bl int) int { return bl * (1 + p) },
		)
		if len(rows) != 48 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- E8: testing scenario — observer/checker vs exact search ----------------

func BenchmarkTestingScenarioMSI(b *testing.B) {
	tgt, err := registry.Build("msi", registry.Options{Params: trace.Params{Procs: 2, Blocks: 2, Values: 2}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := sctest.Campaign(tgt, sctest.Config{Runs: 20, Steps: 24, Seed: int64(i)})
		if res.Rejected != 0 {
			b.Fatalf("MSI rejected: %v", res.FirstCause)
		}
	}
}

// The crossover shape of E8: the exact reordering search (NP-hard in
// general) blows up with processor count on contended traces, while the
// observer/checker pipeline stays linear in trace length and insensitive
// to contention. Compare both on identical SC traces of fixed length 28
// over one highly contended block.
func benchExact(b *testing.B, procs, n int) {
	gen := trace.NewGenerator(trace.Params{Procs: procs, Blocks: 1, Values: 2}, 29)
	traces := make([]trace.Trace, 8)
	for i := range traces {
		traces[i] = gen.SC(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !trace.HasSerialReordering(traces[i%len(traces)]) {
			b.Fatal("trace not SC")
		}
	}
}

func benchPipeline(b *testing.B, procs, n int) {
	gen := trace.NewGenerator(trace.Params{Procs: procs, Blocks: 1, Values: 2}, 29)
	type prepared struct {
		s descriptor.Stream
		k int
	}
	items := make([]prepared, 8)
	for i := range items {
		tr := gen.SC(n)
		r, ok := trace.FindSerialReordering(tr)
		if !ok {
			b.Fatal("trace not SC")
		}
		s, k := descriptor.EncodeAuto(graph.Canonical(tr, r))
		items[i] = prepared{s: s, k: k}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		if err := checker.Check(it.s, it.k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSearchP2(b *testing.B)     { benchExact(b, 2, 28) }
func BenchmarkExactSearchP4(b *testing.B)     { benchExact(b, 4, 28) }
func BenchmarkExactSearchP6(b *testing.B)     { benchExact(b, 6, 28) }
func BenchmarkExactSearchP8(b *testing.B)     { benchExact(b, 8, 28) }
func BenchmarkCheckerPipelineP2(b *testing.B) { benchPipeline(b, 2, 28) }
func BenchmarkCheckerPipelineP4(b *testing.B) { benchPipeline(b, 4, 28) }
func BenchmarkCheckerPipelineP6(b *testing.B) { benchPipeline(b, 6, 28) }
func BenchmarkCheckerPipelineP8(b *testing.B) { benchPipeline(b, 8, 28) }

// --- E9: bounded-window witness ablation -------------------------------------

func BenchmarkBoundedReorderWindow(b *testing.B) {
	// The d=4 member of the delay family: window 6 required.
	tr := trace.Trace{trace.ST(1, 1, 1)}
	for i := 0; i < 4; i++ {
		tr = append(tr, trace.LD(2, 1, 1))
	}
	tr = append(tr, trace.LD(3, 1, trace.Bottom))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w := boundedreorder.MinWindow(tr); w != 6 {
			b.Fatalf("window = %d", w)
		}
	}
}

// --- Observer throughput and product-step cost (supporting measurements) ----

func BenchmarkObserverThroughputMSI(b *testing.B) {
	tgt, err := registry.Build("msi", registry.Options{Params: trace.Params{Procs: 2, Blocks: 2, Values: 2}})
	if err != nil {
		b.Fatal(err)
	}
	run := protocol.RandomRun(tgt.Protocol, 512, 31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sctest.CheckRun(run, tgt); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(run.Steps)))
}

func BenchmarkObserverSymbolRate(b *testing.B) {
	tgt, err := registry.Build("directory", registry.Options{Params: trace.Params{Procs: 2, Blocks: 2, Values: 2}})
	if err != nil {
		b.Fatal(err)
	}
	run := protocol.RandomRun(tgt.Protocol, 512, 37)
	b.ReportAllocs()
	b.ResetTimer()
	var symbols int
	for i := 0; i < b.N; i++ {
		stream, _, err := observer.ObserveRun(run, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize})
		if err != nil {
			b.Fatal(err)
		}
		symbols = len(stream)
	}
	b.ReportMetric(float64(symbols)/float64(len(run.Trace)), "symbols/op")
}

// BenchmarkWireRoundTrip measures the binary serialization of descriptor
// streams (the flat byte "string" the paper's automata read).
func BenchmarkWireRoundTrip(b *testing.B) {
	gen := trace.NewGenerator(trace.Params{Procs: 4, Blocks: 3, Values: 3}, 41)
	tr := gen.SC(64)
	r, _ := trace.FindSerialReordering(tr)
	s, _ := descriptor.EncodeAuto(graph.Canonical(tr, r))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := descriptor.Marshal(s)
		if _, err := descriptor.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.SetBytes(int64(len(data)))
		}
	}
}

// BenchmarkStateKey measures the canonical product-key computation that
// dominates the model checker's per-state cost.
func BenchmarkStateKey(b *testing.B) {
	tgt, err := registry.Build("msi", registry.Options{Params: trace.Params{Procs: 2, Blocks: 2, Values: 2}})
	if err != nil {
		b.Fatal(err)
	}
	chk := checker.New(0)
	obs := observer.New(tgt.Protocol, tgt.Generator(), observer.Config{}, nil)
	chk = checker.New(obs.K())
	obs = observer.New(tgt.Protocol, tgt.Generator(), observer.Config{}, chk.Step)
	run := protocol.RandomRun(tgt.Protocol, 40, 43)
	for _, step := range run.Steps {
		if err := obs.Step(step.Transition); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rn := obs.CanonicalRename()
		_ = obs.CanonicalKey(rn)
		_ = chk.StateKeyRenamed(rn)
	}
}
