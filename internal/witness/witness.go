// Package witness turns checker rejections into structured counterexamples:
// a rejected descriptor stream is shrunk to a locally-minimal rejecting core
// (ddmin), cross-validated against the exact Gibbons–Korach serial-
// reordering search so the result is certified non-SC rather than merely
// checker-rejected, and rendered as a human-readable happens-before-loop
// narrative naming concrete memory operations and the violated constraint
// of Section 3.1 (or the acyclicity requirement of Lemma 3.3).
//
// The package sits above the whole pipeline: FromStream explains a raw
// k-graph descriptor stream (sccheck), FromRun replays a concrete protocol
// run through a witness-enabled observer/checker pair (scverify
// counterexamples, sctest campaign failures), and Hunt scans random runs
// for the first rejection (examples/bughunt).
package witness

import (
	"errors"
	"fmt"
	"strings"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
)

// DefaultExactLimit is the largest trace the certification search examines
// unless Options overrides it; beyond this the exponential Gibbons–Korach
// search is skipped (matching sctest's default).
const DefaultExactLimit = 14

// Options tunes witness construction.
type Options struct {
	// Minimize shrinks the rejecting stream to a 1-minimal rejecting core
	// before rendering.
	Minimize bool
	// ExactLimit bounds the trace length for the exact certification
	// search: 0 means DefaultExactLimit, negative disables certification.
	ExactLimit int
	// Params enables the checker's operation-label range check.
	Params trace.Params
	// CoreNonSC strengthens minimization when the original trace is too
	// large for the exact search: candidate cores small enough to check
	// must themselves be non-SC. Without it, ddmin over an unverifiable
	// original is free to collapse onto a spurious same-constraint
	// rejection whose trace is sequentially consistent — harmless for
	// witness narratives (the rendering flags it as annotation
	// inadequacy) but fatal for tier adjudication, which would report
	// TierSC for a genuinely non-SC stream. TierOptions sets it.
	CoreNonSC bool
}

// Explain is the option set the command-line tools use: minimize and
// certify at the default limit.
func Explain() Options { return Options{Minimize: true} }

// Witness is a structured counterexample: a (minimized) rejecting stream,
// its trace, the typed rejection, and the certification status of the
// trace against the exact serial-reordering search.
type Witness struct {
	// Protocol names the protocol the stream was observed from; empty for
	// raw streams.
	Protocol string
	// K is the bandwidth bound the stream was checked under.
	K int
	// Reject is the checker's structured rejection of Stream.
	Reject *checker.RejectError
	// Stream is the rejecting descriptor stream (minimized when
	// Options.Minimize was set).
	Stream descriptor.Stream
	// Trace lists the operation labels of Stream's node symbols in order.
	Trace trace.Trace
	// Run is the rejecting protocol run, when the witness came from one.
	Run *protocol.Run
	// Seed is the random seed that produced Run, when found by Hunt.
	Seed int64

	// OrigSymbols and OrigOps record the pre-minimization sizes.
	OrigSymbols int
	OrigOps     int
	// Minimized reports whether the ddmin reducer ran.
	Minimized bool

	// Labeler, when non-nil, renders trace position i (holding op) in the
	// caller's vocabulary; Render appends its output to the trace listing
	// and happens-before loop lines. internal/history uses it to describe
	// lowered operations as history events.
	Labeler func(i int, op trace.Op) string

	// CertChecked reports whether the exact search examined Trace;
	// Certified reports it confirmed the trace non-SC. A checked but
	// uncertified witness means the trace itself IS sequentially
	// consistent: the rejection reflects annotation inadequacy (wrong
	// ST-order generator for the protocol), not an SC violation — the
	// distinction Section 5 draws for lazy caching.
	CertChecked bool
	Certified   bool

	// Spectrum, when non-nil, is the tiered adjudication of Trace against
	// the weaker-model ladder (set by Adjudicate). Render appends its
	// narrative.
	Spectrum *spectrum.Result
}

// Adjudicate runs the witness core through the weaker-model ladder of
// internal/spectrum, stores the result on the witness, and returns it.
// limit bounds the core size adjudicated (0 means spectrum.DefaultLimit,
// which equals DefaultExactLimit — every default-minimized core that the
// certification search examined is also tiered).
func (w *Witness) Adjudicate(limit int) spectrum.Result {
	res := spectrum.Adjudicate(w.Trace, spectrum.Options{Limit: limit})
	w.Spectrum = &res
	return res
}

// TierOptions is the canonical option set for tier adjudication: minimize
// to the 1-minimal core and certify at the default limit, with the given
// label ranges. Server-side and client-side tiering MUST build their
// witnesses with identical options over an identical stream prefix, so
// the tier a server reports always equals the tier the client would
// compute locally — the tier-level analogue of the never-wrong-verdict
// invariant.
func TierOptions(params trace.Params) Options {
	return Options{Minimize: true, Params: params, CoreNonSC: true}
}

// TierWitness builds the witness used for tier adjudication of a rejected
// stream: the stream is truncated just past the rejecting symbol (the
// suffix never reached a checker, so including it would let two sides
// minimize different streams), then minimized under TierOptions. Returns
// nil if the stream is in fact accepted.
func TierWitness(s descriptor.Stream, k int, params trace.Params) *Witness {
	re := runStream(s, k, params)
	if re == nil {
		return nil
	}
	if re.SymbolIndex >= 0 && re.SymbolIndex+1 < len(s) {
		s = s[:re.SymbolIndex+1]
	}
	return FromStream(s, k, TierOptions(params))
}

// FromStream builds a witness for a descriptor stream, or nil if the
// checker accepts it.
func FromStream(s descriptor.Stream, k int, opts Options) *Witness {
	re := runStream(s, k, opts.Params)
	if re == nil {
		return nil
	}
	origTrace := s.Trace()
	w := &Witness{
		K:           k,
		OrigSymbols: len(s),
		OrigOps:     len(origTrace),
	}
	limit := opts.ExactLimit
	if limit == 0 {
		limit = DefaultExactLimit
	}
	// When the original trace is exactly known to be non-SC, minimization
	// preserves that: the ddmin predicate demands every intermediate
	// candidate both reject and stay non-SC, so the core is certified by
	// construction. Otherwise minimize on rejection alone and certify (or
	// refute) the result post hoc.
	certify := limit > 0 && len(origTrace) <= limit && !trace.HasSerialReordering(origTrace)
	// CoreNonSC only has work to do when the original trace could not be
	// checked: candidates the exact search CAN check must stay non-SC.
	// (When the original fits the limit, certify already enforces this —
	// or the original is itself SC and there is nothing to preserve.)
	wantNonSC := opts.CoreNonSC && limit > 0 && len(origTrace) > limit
	min := s
	if opts.Minimize {
		// The reduction preserves the failure signature: a candidate counts
		// only if it rejects for the SAME constraint as the original (so a
		// cycle witness stays a cycle rather than degenerating into, say, a
		// bare load with no inheritance edge).
		pred := func(cand descriptor.Stream) bool {
			cre := runStream(cand, k, opts.Params)
			if cre == nil || cre.Constraint != re.Constraint {
				return false
			}
			if wantNonSC {
				if ct := cand.Trace(); len(ct) <= limit && trace.HasSerialReordering(ct) {
					return false
				}
			}
			return !certify || !trace.HasSerialReordering(cand.Trace())
		}
		min = ddmin(s, pred)
		re = runStream(min, k, opts.Params)
		w.Minimized = true
	}
	w.Stream = min
	w.Trace = min.Trace()
	w.Reject = re
	switch {
	case certify:
		w.CertChecked, w.Certified = true, true
	case limit > 0 && len(w.Trace) <= limit:
		w.CertChecked = true
		w.Certified = !trace.HasSerialReordering(w.Trace)
	}
	return w
}

// Record replays a run through a fresh observer, collecting the emitted
// descriptor stream and the bandwidth bound it needs.
func Record(run *protocol.Run, tgt registry.Target) (descriptor.Stream, int, error) {
	sizing := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, nil)
	k := sizing.K()
	var stream descriptor.Stream
	collect := func(sym descriptor.Symbol) error {
		stream = append(stream, sym)
		return nil
	}
	obs := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, collect)
	for i, step := range run.Steps {
		if err := obs.Step(step.Transition); err != nil {
			return nil, 0, fmt.Errorf("witness: observe step %d: %w", i, err)
		}
	}
	if err := obs.Finish(); err != nil {
		return nil, 0, fmt.Errorf("witness: observe finish: %w", err)
	}
	return stream, k, nil
}

// FromRun observes a concrete protocol run and builds the witness for its
// descriptor stream; (nil, nil) means the run is accepted. This is how
// model-checker counterexamples get their witnesses: mc explores with
// witness mode off (it clones the checker at every branch), and the
// counterexample run is replayed through this witness-enabled pipeline.
func FromRun(run *protocol.Run, tgt registry.Target, opts Options) (*Witness, error) {
	stream, k, err := Record(run, tgt)
	if err != nil {
		return nil, err
	}
	if opts.Params.Procs == 0 {
		opts.Params = run.Protocol.Params()
	}
	w := FromStream(stream, k, opts)
	if w != nil {
		w.Protocol = run.Protocol.Name()
		w.Run = run
	}
	return w, nil
}

// Hunt scans up to runs random executions of the target (seeds seed,
// seed+1, ...) for one the checker rejects, returning its witness;
// (nil, nil) means every run in the budget was accepted. Rejections whose
// trace the exact search certifies non-SC are preferred over annotation-
// inadequacy rejections: the scan returns the first certified witness, or
// the first rejection of any kind if no run in the budget certifies.
// Minimization (when requested) runs only on the chosen run, not during
// the scan.
func Hunt(tgt registry.Target, runs, steps int, seed int64, opts Options) (*Witness, error) {
	scan := opts
	scan.Minimize = false
	var fallback *protocol.Run
	var fallbackSeed int64
	finish := func(run *protocol.Run, s int64) (*Witness, error) {
		w, err := FromRun(run, tgt, opts)
		if err == nil && w != nil {
			w.Seed = s
		}
		return w, err
	}
	for i := 0; i < runs; i++ {
		run := protocol.RandomRun(tgt.Protocol, steps, seed+int64(i))
		w, err := FromRun(run, tgt, scan)
		if err != nil {
			return nil, err
		}
		if w == nil {
			continue
		}
		if w.Certified {
			return finish(run, seed+int64(i))
		}
		if fallback == nil {
			fallback, fallbackSeed = run, seed+int64(i)
		}
	}
	if fallback == nil {
		return nil, nil
	}
	return finish(fallback, fallbackSeed)
}

// runStream checks the stream with a fresh witness-enabled checker,
// returning the structured rejection or nil on acceptance.
func runStream(s descriptor.Stream, k int, params trace.Params) *checker.RejectError {
	c := checker.New(k).EnableWitness()
	if params.Procs > 0 {
		c.SetParams(params)
	}
	var err error
	for _, sym := range s {
		if err = c.Step(sym); err != nil {
			break
		}
	}
	if err == nil {
		err = c.Finish()
	}
	if err == nil {
		return nil
	}
	var re *checker.RejectError
	if errors.As(err, &re) {
		return re
	}
	// Defensive: the checker only ever rejects with *RejectError.
	return &checker.RejectError{
		SymbolIndex: -1,
		Msg:         strings.TrimPrefix(err.Error(), "checker: "),
	}
}
