package witness

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func buildTarget(t *testing.T, name string) registry.Target {
	t.Helper()
	tgt, err := registry.Build(name, registry.Options{Params: trace.Params{Procs: 2, Blocks: 2, Values: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// goldenHunts pins the hunt configuration per protocol so the golden
// narratives are reproducible: RandomRun, the observer, and ddmin are all
// deterministic given the seed.
var goldenHunts = []struct {
	name  string
	runs  int
	steps int
}{
	{"storebuffer", 500, 16},
	{"msi-no-invalidate", 800, 24},
	{"writethrough-no-invalidate", 800, 20},
}

// TestGoldenExplanations pins the rendered cycle narrative for the three
// known non-SC protocols. Every golden witness must name concrete memory
// operations in a happens-before loop and be certified non-SC by the exact
// search — the acceptance bar for the explainer.
func TestGoldenExplanations(t *testing.T) {
	for _, tc := range goldenHunts {
		t.Run(tc.name, func(t *testing.T) {
			tgt := buildTarget(t, tc.name)
			w, err := Hunt(tgt, tc.runs, tc.steps, 1, Explain())
			if err != nil {
				t.Fatal(err)
			}
			if w == nil {
				t.Fatal("no rejecting run found")
			}
			if !w.Certified {
				t.Errorf("golden witness not certified non-SC (%s)", w.Summary())
			}
			if w.Reject.Constraint != checker.ConstraintCycle || w.Reject.CycleLen() == 0 {
				t.Errorf("golden witness has no cycle: %s", w.Summary())
			}
			got := w.Render()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("explanation drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestMinimizedWitnessProperties is the minimizer's contract: for every
// rejecting run found across the non-SC targets, the minimized stream (a)
// still rejects, (b) rejects for the same constraint, (c) is 1-minimal —
// no single symbol can be dropped — and (d) when certified, its trace is
// independently non-SC under FindSerialReordering.
func TestMinimizedWitnessProperties(t *testing.T) {
	for _, name := range []string{"storebuffer", "msi-no-invalidate", "msi-lost-writeback", "writethrough-no-invalidate"} {
		tgt := buildTarget(t, name)
		params := tgt.Protocol.Params()
		found := 0
		for seed := int64(1); seed <= 300 && found < 5; seed++ {
			run := protocol.RandomRun(tgt.Protocol, 24, seed)
			w, err := FromRun(run, tgt, Explain())
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if w == nil {
				continue
			}
			found++
			re := runStream(w.Stream, w.K, params)
			if re == nil {
				t.Fatalf("%s seed %d: minimized stream accepted", name, seed)
			}
			if re.Constraint != w.Reject.Constraint {
				t.Errorf("%s seed %d: minimization changed constraint %v → %v", name, seed, w.Reject.Constraint, re.Constraint)
			}
			for i := range w.Stream {
				sub := append(append(descriptor.Stream{}, w.Stream[:i]...), w.Stream[i+1:]...)
				if sre := runStream(sub, w.K, params); sre != nil && sre.Constraint == re.Constraint &&
					(!w.Certified || !trace.HasSerialReordering(sub.Trace())) {
					t.Errorf("%s seed %d: not 1-minimal, symbol %d removable", name, seed, i)
					break
				}
			}
			if w.Certified && trace.HasSerialReordering(w.Trace) {
				t.Errorf("%s seed %d: certified witness has an SC trace", name, seed)
			}
			if !w.Certified && w.CertChecked {
				// Legal (annotation inadequacy) but must be truthful.
				if !trace.HasSerialReordering(w.Trace) {
					t.Errorf("%s seed %d: uncertified witness is actually non-SC", name, seed)
				}
			}
		}
		if found == 0 {
			t.Errorf("%s: no rejecting runs in 300 seeds", name)
		}
	}
}

// TestAcceptingStreamsYieldNoWitness checks the nil contract on SC
// protocols.
func TestAcceptingStreamsYieldNoWitness(t *testing.T) {
	tgt := buildTarget(t, "msi")
	w, err := Hunt(tgt, 50, 16, 1, Explain())
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatalf("SC protocol produced a witness: %s", w.Summary())
	}
}

// TestFromStreamRaw exercises the raw-stream path used by sccheck -explain:
// no protocol, no run, just symbols.
func TestFromStreamRaw(t *testing.T) {
	o := func(op trace.Op) *trace.Op { return &op }
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: o(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: o(trace.ST(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.STo},
		descriptor.Edge{From: 2, To: 1, Label: descriptor.STo},
	}
	w := FromStream(s, 3, Explain())
	if w == nil {
		t.Fatal("cyclic stream accepted")
	}
	if w.Reject.Constraint != checker.ConstraintCycle {
		t.Fatalf("constraint = %v", w.Reject.Constraint)
	}
	if len(w.Stream) != 4 {
		t.Errorf("minimized to %d symbols, want 4 (all needed)", len(w.Stream))
	}
	if re, ok := Rejection(w.Reject); !ok || re != w.Reject {
		t.Error("Rejection failed to recover the RejectError")
	}
	if acc := FromStream(descriptor.Stream{s[0]}, 3, Explain()); acc != nil {
		t.Errorf("accepting stream produced a witness")
	}
}

func TestDdminOneMinimal(t *testing.T) {
	// Predicate: stream contains both marker nodes 1 and 2.
	mark := func(id int) descriptor.Symbol { return descriptor.Node{ID: id} }
	var s descriptor.Stream
	for i := 0; i < 40; i++ {
		s = append(s, mark(3))
	}
	s = append(s, mark(1))
	for i := 0; i < 17; i++ {
		s = append(s, mark(3))
	}
	s = append(s, mark(2))
	has := func(c descriptor.Stream, id int) bool {
		for _, sym := range c {
			if n, ok := sym.(descriptor.Node); ok && n.ID == id {
				return true
			}
		}
		return false
	}
	pred := func(c descriptor.Stream) bool { return has(c, 1) && has(c, 2) }
	got := ddmin(s, pred)
	if len(got) != 2 {
		t.Fatalf("ddmin left %d symbols, want exactly the 2 markers", len(got))
	}
}

func TestChunkBoundsPartition(t *testing.T) {
	for l := 1; l <= 30; l++ {
		for n := 1; n <= l; n++ {
			prev := 0
			total := 0
			for i := 0; i < n; i++ {
				s, e := chunkBounds(l, i, n)
				if s != prev || e < s {
					t.Fatalf("l=%d n=%d chunk %d: [%d,%d) not contiguous from %d", l, n, i, s, e, prev)
				}
				prev = e
				total += e - s
			}
			if total != l || prev != l {
				t.Fatalf("l=%d n=%d: chunks cover %d", l, n, total)
			}
		}
	}
}

func TestRejectionNilAndForeign(t *testing.T) {
	if _, ok := Rejection(nil); ok {
		t.Error("Rejection(nil) = ok")
	}
	if _, ok := Rejection(errors.New("plain")); ok {
		t.Error("Rejection(plain error) = ok")
	}
}
