package witness

import "scverify/internal/descriptor"

// ddmin shrinks the stream to a 1-minimal subsequence still satisfying
// pred, which must hold for the input. This is Zeller & Hildebrandt's
// delta-debugging reduction in its complement-removal form: the stream is
// split into n chunks and each complement (the stream minus one chunk) is
// tried; on success granularity relaxes toward 2, on failure it doubles.
// Once n reaches the stream length, complements are single-symbol
// deletions, so termination without progress implies 1-minimality: no
// single symbol can be removed without losing the property.
func ddmin(s descriptor.Stream, pred func(descriptor.Stream) bool) descriptor.Stream {
	cur := s
	n := 2
	for len(cur) >= 2 {
		if n > len(cur) {
			n = len(cur)
		}
		reduced := false
		for i := 0; i < n; i++ {
			comp := withoutChunk(cur, i, n)
			if pred(comp) {
				cur = comp
				n--
				if n < 2 {
					n = 2
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break // single deletions all failed: 1-minimal
			}
			n *= 2
		}
	}
	return cur
}

// withoutChunk returns the stream minus its i-th of n equal chunks
// (remainder spread over the leading chunks, as in the original algorithm).
func withoutChunk(s descriptor.Stream, i, n int) descriptor.Stream {
	start, end := chunkBounds(len(s), i, n)
	out := make(descriptor.Stream, 0, len(s)-(end-start))
	out = append(out, s[:start]...)
	out = append(out, s[end:]...)
	return out
}

// chunkBounds computes the half-open range of chunk i of n over length l.
func chunkBounds(l, i, n int) (start, end int) {
	size, rem := l/n, l%n
	start = i*size + min(i, rem)
	end = start + size
	if i < rem {
		end++
	}
	return start, end
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
