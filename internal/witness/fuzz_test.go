package witness

import (
	"testing"

	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// FuzzMinimizer drives FromStream with arbitrary well-typed symbol
// streams: the minimizer must never panic, and whenever the input rejects,
// the minimized output must still reject for the same constraint and
// Render must produce something.
func FuzzMinimizer(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 4})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2})
	f.Add([]byte{1, 0, 0, 1, 5, 5, 4, 4, 3, 2, 0, 7, 9})

	const k = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		var s descriptor.Stream
		for i := 0; i+2 < len(data) && len(s) < 40; i += 3 {
			id := int(data[i]%(k+1)) + 1
			id2 := int(data[i+1]%(k+1)) + 1
			switch data[i+2] % 4 {
			case 0:
				op := trace.ST(trace.ProcID(data[i]%2+1), trace.BlockID(data[i+1]%2+1), trace.Value(data[i+2]%2+1))
				s = append(s, descriptor.Node{ID: id, Op: &op})
			case 1:
				op := trace.LD(trace.ProcID(data[i]%2+1), trace.BlockID(data[i+1]%2+1), trace.Value(data[i+2]%3))
				s = append(s, descriptor.Node{ID: id, Op: &op})
			case 2:
				s = append(s, descriptor.Edge{From: id, To: id2, Label: descriptor.EdgeLabel(data[i+2] % 8)})
			default:
				s = append(s, descriptor.AddID{Existing: id, New: id2})
			}
		}

		w := FromStream(s, k, Explain())
		if w == nil {
			return // accepted: nothing to minimize
		}
		re := runStream(w.Stream, k, trace.Params{})
		if re == nil {
			t.Fatalf("minimized stream accepted; original %q, minimized %q", s.Text(), w.Stream.Text())
		}
		if re.Constraint != w.Reject.Constraint {
			t.Fatalf("minimized constraint %v != reported %v", re.Constraint, w.Reject.Constraint)
		}
		if len(w.Stream) > len(s) {
			t.Fatalf("minimization grew the stream: %d > %d", len(w.Stream), len(s))
		}
		if w.Render() == "" || w.Summary() == "" {
			t.Fatal("empty rendering")
		}
		if w.Certified && trace.HasSerialReordering(w.Trace) {
			t.Fatalf("certified witness has an SC trace: %s", w.Trace)
		}
	})
}
