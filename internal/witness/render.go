package witness

import (
	"errors"
	"fmt"
	"strings"

	"scverify/internal/checker"
	"scverify/internal/cycle"
)

// maxTraceLines caps the rendered trace listing; minimized witnesses are
// far below it, but raw (unminimized) witnesses can be arbitrarily long.
const maxTraceLines = 20

// Render formats the witness as a multi-line explanation: the violated
// paper condition, the minimized trace with each operation's processor and
// program-order position, the offending happens-before loop for cycles,
// and the certification status against the exact reordering search.
func (w *Witness) Render() string {
	var sb strings.Builder

	head := "SC violation"
	if w.CertChecked && !w.Certified {
		head = "checker rejection (not an SC violation)"
	}
	if w.Protocol != "" {
		head += " in " + w.Protocol
	}
	fmt.Fprintf(&sb, "%s: %s — %s\n", head, w.Reject.Constraint, w.Reject.Constraint.Ref())
	fmt.Fprintf(&sb, "  cause: %s\n", w.Reject.Error())
	if w.Reject.SymbolIndex >= 0 && w.Reject.SymbolIndex < len(w.Stream) {
		fmt.Fprintf(&sb, "  rejected at symbol %d/%d: %s\n",
			w.Reject.SymbolIndex+1, len(w.Stream), w.Stream[w.Reject.SymbolIndex].Text())
	} else {
		fmt.Fprintf(&sb, "  rejected at end of stream (%d symbols)\n", len(w.Stream))
	}
	if w.Minimized {
		fmt.Fprintf(&sb, "  minimized: %d → %d symbols, %d → %d trace ops\n",
			w.OrigSymbols, len(w.Stream), w.OrigOps, len(w.Trace))
	}

	// Program-order position of each trace op within its processor.
	pos := make([]int, len(w.Trace))
	perProc := map[int]int{}
	for i, op := range w.Trace {
		perProc[int(op.Proc)]++
		pos[i] = perProc[int(op.Proc)]
	}
	if len(w.Trace) > 0 {
		fmt.Fprintf(&sb, "  trace (%d ops):\n", len(w.Trace))
		for i, op := range w.Trace {
			if i == maxTraceLines {
				fmt.Fprintf(&sb, "    … (%d more)\n", len(w.Trace)-i)
				break
			}
			label := ""
			if w.Labeler != nil {
				if l := w.Labeler(i, op); l != "" {
					label = "  — " + l
				}
			}
			fmt.Fprintf(&sb, "    n%-3d %-14s P%d op %d%s\n", i, op.String(), op.Proc, pos[i], label)
		}
	}

	if ce := w.Reject.Cycle; ce != nil && len(ce.Hops) > 0 {
		fmt.Fprintf(&sb, "  happens-before loop (%d operations):\n", ce.Len())
		sb.WriteString("    " + w.hopLine(ce.Hops[0], pos) + "\n")
		for i, h := range ce.Hops {
			arrow := "─→"
			if h.Label != 0 {
				arrow = "─" + h.Label.String() + "→"
			}
			if i+1 < len(ce.Hops) {
				fmt.Fprintf(&sb, "      %s %s\n", arrow, w.hopLine(ce.Hops[i+1], pos))
			} else {
				fmt.Fprintf(&sb, "      %s back to %s\n", arrow, w.hopLine(ce.Hops[0], pos))
			}
		}
	} else if len(w.Reject.Ops) > 0 {
		ops := make([]string, len(w.Reject.Ops))
		for i, op := range w.Reject.Ops {
			ops[i] = op.String()
		}
		fmt.Fprintf(&sb, "  operations involved: %s\n", strings.Join(ops, ", "))
	}

	switch {
	case w.Certified:
		sb.WriteString("  certified: trace confirmed non-SC by exact serial-reordering search (Gibbons–Korach)\n")
	case w.CertChecked:
		sb.WriteString("  note: the trace itself IS sequentially consistent — the rejection reflects\n" +
			"  ST-order annotation inadequacy for this protocol, not an SC violation\n")
	default:
		sb.WriteString("  certification skipped: trace exceeds the exact-search limit\n")
	}

	if w.Spectrum != nil {
		sb.WriteString("  " + strings.ReplaceAll(strings.TrimRight(w.Spectrum.Narrative(w.Trace), "\n"), "\n", "\n  ") + "\n")
	}
	return sb.String()
}

// hopLine renders one cycle node with its program-order position when the
// node maps cleanly onto the witness trace.
func (w *Witness) hopLine(h cycle.Hop, pos []int) string {
	s := h.Node.String()
	if h.Node.Seq >= 0 && h.Node.Seq < len(w.Trace) && h.Node.Op != nil && *h.Node.Op == w.Trace[h.Node.Seq] {
		s += fmt.Sprintf(" (P%d op %d)", h.Node.Op.Proc, pos[h.Node.Seq])
		if w.Labeler != nil {
			if l := w.Labeler(h.Node.Seq, *h.Node.Op); l != "" {
				s += " — " + l
			}
		}
	}
	return s
}

// Summary renders a one-line form for logs: constraint, cycle length, and
// certification status.
func (w *Witness) Summary() string {
	s := fmt.Sprintf("%s (%s)", w.Reject.Constraint, w.Reject.Constraint.Ref())
	if n := w.Reject.CycleLen(); n > 0 {
		s += fmt.Sprintf(", cycle of %d operations", n)
	}
	if w.Minimized {
		s += fmt.Sprintf(", minimized to %d symbols", len(w.Stream))
	}
	switch {
	case w.Certified:
		s += ", certified non-SC"
	case w.CertChecked:
		s += ", trace is SC (annotation inadequacy)"
	}
	if w.Spectrum != nil && w.Spectrum.Checked {
		s += ", tier " + w.Spectrum.Tier.String()
	}
	return s
}

// Rejection recovers the structured rejection from any checker error, for
// callers holding an error rather than a witness.
func Rejection(err error) (*checker.RejectError, bool) {
	var re *checker.RejectError
	if err == nil || !errors.As(err, &re) {
		return nil, false
	}
	return re, true
}
