// Package spectrum adjudicates a rejected execution against the spectrum
// of memory models weaker than sequential consistency and reports the
// strongest model the trace still satisfies.
//
// The checker of Condon & Hu answers a yes/no question: is the trace SC?
// When the answer is no, production users want to know *how* weak the
// execution actually was — a store-buffer blip that any TSO machine would
// exhibit is a very different incident from a value loaded out of thin
// air. This package re-runs the minimized witness core (from
// internal/witness ddmin, or a lowered history's event set) through exact
// checkers for four weaker models and names the strongest one satisfied:
//
//	SC > TSO > PSO          (store-buffer family)
//	SC > causal > PRAM      (session family)
//
// The models form a lattice, not a chain — TSO and causal consistency are
// incomparable (IRIW is causal-consistent but TSO-inconsistent; the
// relaxed message-passing trace is PSO-consistent but PRAM-inconsistent).
// The reported Tier is the first satisfied rung scanning the fixed ladder
// SC > TSO > PSO > causal > PRAM top-down; the full per-model truth is in
// Result.Passed for callers that want the lattice view.
//
// Checker shapes, per the complexity map of "How Hard is Weak-Memory
// Testing?" (PAPERS.md): TSO/PSO use a memoized depth-first search over
// store-buffer machine states (the bounded-buffer style of
// internal/boundedreorder, specialized to FIFO respectively per-block-FIFO
// drain as in internal/memmodel); PRAM uses the per-process serialization
// decomposition (each process sees all writes plus its own reads in some
// order respecting per-writer program order); causal adds the transitive
// closure of program order and reads-from as a visibility constraint on
// those serializations. All four are decision procedures on the witness
// core, which ddmin keeps small (≲14 ops), so exponential worst cases are
// immaterial; a node budget bounds pathological inputs and degrades to
// "tier unknown", never to a wrong tier.
package spectrum

import (
	"fmt"
	"strings"

	"scverify/internal/boundedreorder"
	"scverify/internal/trace"
)

// Tier identifies a consistency model, ordered by strength: a larger Tier
// is a stronger model. The numeric values are stable wire codes carried in
// tiered verdict frames — never renumber them.
type Tier int

const (
	// TierNone means the trace satisfies none of the checked models —
	// not even PRAM admits it.
	TierNone Tier = 0
	// TierPRAM: pipelined RAM — every process observes all writes plus
	// its own operations in some order respecting each writer's program
	// order (Lipton & Sandberg).
	TierPRAM Tier = 1
	// TierCausal: causal memory — PRAM plus agreement on the causal
	// (program-order ∪ reads-from)⁺ order of writes (Ahamad et al.).
	TierCausal Tier = 2
	// TierPSO: partial store order — stores drain from per-processor
	// buffers in per-block FIFO order; stores to different blocks may
	// reorder.
	TierPSO Tier = 3
	// TierTSO: total store order — stores drain from per-processor FIFO
	// buffers; loads may overtake buffered stores and forward from them.
	TierTSO Tier = 4
	// TierSC: sequential consistency — the trace has a serial
	// reordering after all; the rejection was an annotation inadequacy,
	// not a real violation.
	TierSC Tier = 5

	// NumTiers is the number of defined tiers (array sizing).
	NumTiers = 6
)

// DefaultLimit is the largest core the adjudicator checks by default. It
// matches the witness package's exact-certification limit: ddmin cores at
// or under this size are cheap for every checker here.
const DefaultLimit = 14

// nodeBudget caps the states each memoized search may expand. Exhausting
// it fails that rung conservatively (the tier is reported as not
// satisfied and Result.Bounded is set) — a budget can hide a satisfying
// order but can never invent one, so tiers may be missed, never wrong.
const nodeBudget = 1 << 18

// maxRFAssignments caps the reads-from assignments enumerated by the
// causal checker when several stores carry the same (block, value).
const maxRFAssignments = 64

// String returns the tier's conventional name. Unknown codes (possible
// when decoding frames from a newer peer) render as "tier(N)".
func (t Tier) String() string {
	switch t {
	case TierNone:
		return "none"
	case TierPRAM:
		return "PRAM"
	case TierCausal:
		return "causal"
	case TierPSO:
		return "PSO"
	case TierTSO:
		return "TSO"
	case TierSC:
		return "SC"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Valid reports whether the tier is one of the defined codes.
func (t Tier) Valid() bool { return t >= TierNone && t < NumTiers }

// Options configures Adjudicate.
type Options struct {
	// Limit is the largest trace (in operations) to adjudicate; larger
	// traces return Checked=false. 0 means DefaultLimit; negative
	// disables adjudication entirely.
	Limit int
}

// Reorder names the store-buffer reordering that licenses a TSO or PSO
// tier: the buffered store that drained late and the same-processor
// operation that overtook it. Both are 0-based positions into the
// adjudicated trace.
type Reorder struct {
	Store int // position of the store that was held in the buffer
	Past  int // position of the later program-order op that committed first
}

// Result is the outcome of adjudicating one trace.
type Result struct {
	Ops     int  // length of the adjudicated trace
	Checked bool // false: trace exceeded Options.Limit, no tiers computed
	Bounded bool // some rung hit its search budget; tiers are a lower bound

	// Tier is the strongest rung satisfied, scanning SC > TSO > PSO >
	// causal > PRAM top-down. TierNone if every rung fails.
	Tier Tier

	// Passed records, per tier, whether its exact checker admitted the
	// trace — the full lattice view (TSO and causal are incomparable, so
	// Tier alone cannot express "TSO yes, causal no").
	Passed [NumTiers]bool

	// Reorder is the store-buffer reordering witnessing a TierTSO or
	// TierPSO result, when one was extracted.
	Reorder *Reorder

	// FailProc, for TierNone, is the first process whose PRAM
	// serialization does not exist (0 if unknown).
	FailProc trace.ProcID
}

// Adjudicate runs the full ladder over the trace. The trace should be a
// rejection core: if it is actually SC the result is TierSC, which
// witness rendering reports as an annotation inadequacy.
func Adjudicate(t trace.Trace, opts Options) Result {
	limit := opts.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	res := Result{Ops: len(t)}
	if limit < 0 || len(t) > limit {
		return res
	}
	res.Checked = true

	// SC rung: the exact Gibbons–Korach search, same as witness
	// certification.
	res.Passed[TierSC] = trace.HasSerialReordering(t)

	// Store-buffer family.
	tso := checkBuffered(t, false)
	pso := checkBuffered(t, true)
	res.Passed[TierTSO] = tso.ok
	res.Passed[TierPSO] = pso.ok
	res.Bounded = res.Bounded || tso.bounded || pso.bounded

	// Session family.
	pram := checkPRAM(t)
	causal := checkCausal(t)
	res.Passed[TierPRAM] = pram.ok
	res.Passed[TierCausal] = causal.ok
	res.Bounded = res.Bounded || pram.bounded || causal.bounded
	res.FailProc = pram.failProc

	// Enforce the lattice entailments explicitly. Each implication holds
	// semantically (an SC order is a TSO schedule with immediate drains
	// and is every process's causal serialization; a TSO drain schedule
	// is a PSO one; a causal serialization family is a PRAM one), but a
	// weaker rung's larger search space could exhaust its budget while
	// the stronger rung succeeded — promote so reported tiers are always
	// monotone.
	if res.Passed[TierSC] {
		for i := range res.Passed {
			res.Passed[i] = true
		}
	}
	if res.Passed[TierTSO] {
		res.Passed[TierPSO] = true
	}
	if res.Passed[TierCausal] {
		res.Passed[TierPRAM] = true
	}
	res.Passed[TierNone] = true // vacuous floor

	for tier := TierSC; tier > TierNone; tier-- {
		if res.Passed[tier] {
			res.Tier = tier
			break
		}
	}
	switch res.Tier {
	case TierTSO:
		res.Reorder = tso.reorder
	case TierPSO:
		res.Reorder = pso.reorder
	}
	if res.Tier != TierNone {
		res.FailProc = 0
	}
	return res
}

// String is a one-line summary, e.g. "TSO-consistent (store ST(P1,B1,1)
// at op 0 drained after op 1)".
func (r Result) String() string {
	if !r.Checked {
		return fmt.Sprintf("tier not adjudicated (trace of %d ops exceeds limit)", r.Ops)
	}
	switch r.Tier {
	case TierSC:
		return "SC after all (annotation inadequacy, not a real violation)"
	case TierNone:
		if r.FailProc != 0 {
			return fmt.Sprintf("no consistency tier holds (not even PRAM: no serialization for P%d)", r.FailProc)
		}
		return "no consistency tier holds (not even PRAM)"
	default:
		s := fmt.Sprintf("%s-consistent", r.Tier)
		if r.Reorder != nil {
			s += fmt.Sprintf(" (store at op %d drained after op %d)", r.Reorder.Store, r.Reorder.Past)
		}
		return s
	}
}

// Narrative renders a multi-line tier explanation for the given trace,
// suitable for appending to a witness rendering. The trace must be the
// one passed to Adjudicate.
func (r Result) Narrative(t trace.Trace) string {
	var sb strings.Builder
	if !r.Checked {
		fmt.Fprintf(&sb, "consistency tier: skipped (trace of %d ops exceeds the adjudication limit)\n", r.Ops)
		return sb.String()
	}
	fmt.Fprintf(&sb, "consistency tier: %s\n", r.Tier)
	switch r.Tier {
	case TierSC:
		if w := boundedreorder.MinWindow(t); w >= 0 {
			fmt.Fprintf(&sb, "  the rejected core has a serial reordering (within a %d-op reorder\n", w)
			sb.WriteString("  window) — the rejection reflects inadequate annotation, not a real\n")
			sb.WriteString("  SC violation\n")
		} else {
			sb.WriteString("  the rejected core has a serial reordering — the rejection reflects\n")
			sb.WriteString("  inadequate annotation, not a real SC violation\n")
		}
	case TierTSO, TierPSO:
		kind := "FIFO store buffers (TSO)"
		if r.Tier == TierPSO {
			kind = "per-block-FIFO store buffers (PSO)"
		}
		fmt.Fprintf(&sb, "  the core is explained by %s:\n", kind)
		if r.Reorder != nil && r.Reorder.Store < len(t) && r.Reorder.Past < len(t) {
			fmt.Fprintf(&sb, "  %s (op %d) stayed buffered while %s (op %d) committed\n",
				t[r.Reorder.Store], r.Reorder.Store, t[r.Reorder.Past], r.Reorder.Past)
		}
	case TierCausal:
		sb.WriteString("  every process can serialize all writes plus its own reads in causal\n")
		sb.WriteString("  ((program order ∪ reads-from)⁺) order — but no store-buffer machine\n")
		sb.WriteString("  and no single serial order admits the core\n")
	case TierPRAM:
		sb.WriteString("  every process can serialize all writes plus its own reads respecting\n")
		sb.WriteString("  per-writer program order — but the serializations disagree on causality\n")
	case TierNone:
		if r.FailProc != 0 {
			fmt.Fprintf(&sb, "  not even PRAM-consistent: process P%d has no serialization of the\n", r.FailProc)
			sb.WriteString("  writes plus its own reads that respects per-writer program order\n")
		} else {
			sb.WriteString("  not even PRAM-consistent\n")
		}
	}
	ladder := make([]string, 0, NumTiers-1)
	for tier := TierSC; tier > TierNone; tier-- {
		mark := "✗"
		if r.Passed[tier] {
			mark = "✓"
		}
		ladder = append(ladder, fmt.Sprintf("%s %s", tier, mark))
	}
	fmt.Fprintf(&sb, "  ladder: %s\n", strings.Join(ladder, " · "))
	if r.Bounded {
		sb.WriteString("  (a rung hit its search budget; unsatisfied tiers below it are a lower bound)\n")
	}
	return sb.String()
}
