// Store-buffer checkers for the TSO and PSO rungs: a memoized DFS over
// (per-processor program counter, per-processor store buffer, memory)
// states, in the style of internal/boundedreorder's searcher but with the
// buffer discipline of internal/memmodel's TSOOutcomes machine. TSO
// drains each buffer in FIFO order; PSO may drain any buffered store that
// is the oldest to its block in its buffer (per-block FIFO). Loads issue
// in program order, forwarding from the newest same-block store still in
// their own buffer, else reading memory.
package spectrum

import (
	"sort"
	"strings"

	"scverify/internal/trace"
)

type bufResult struct {
	ok      bool
	bounded bool
	reorder *Reorder
}

// checkBuffered reports whether the trace is consistent with a
// store-buffer machine — TSO when pso is false, PSO when true — and, on
// success, extracts the program-order inversion that licenses the tier.
func checkBuffered(t trace.Trace, pso bool) bufResult {
	s := &bufSearch{
		t:      t,
		byProc: t.ByProc(),
		pso:    pso,
		seen:   make(map[string]struct{}),
	}
	st := &bufState{
		next: make([]int, len(s.byProc)),
		bufs: make([][]int, len(s.byProc)),
		mem:  make(map[trace.BlockID]trace.Value),
	}
	ok := s.search(st)
	res := bufResult{ok: ok, bounded: s.nodes >= nodeBudget}
	if ok {
		res.reorder = extractReorder(t, s.sched)
	}
	return res
}

type bufSearch struct {
	t      trace.Trace
	byProc [][]int
	pso    bool
	seen   map[string]struct{} // states proven to admit no completion
	nodes  int
	sched  []int // commit order: trace positions (loads at issue, stores at drain)
}

type bufState struct {
	next []int   // per processor: next unissued index into byProc[p]
	bufs [][]int // per processor: trace positions of buffered stores, issue order
	mem  map[trace.BlockID]trace.Value
}

// key canonically encodes (next, bufs, mem). Progress is monotone — every
// action either advances a program counter or shrinks a buffer — so no
// path revisits a state and only failed states need memoizing.
func (st *bufState) key() string {
	var sb strings.Builder
	for p := 1; p < len(st.next); p++ {
		sb.WriteByte(byte(st.next[p]))
	}
	sb.WriteByte(0xfe)
	for p := 1; p < len(st.bufs); p++ {
		for _, pos := range st.bufs[p] {
			sb.WriteByte(byte(pos))
		}
		sb.WriteByte(0xff)
	}
	blocks := make([]int, 0, len(st.mem))
	for b := range st.mem {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		sb.WriteByte(byte(b))
		sb.WriteByte(byte(st.mem[trace.BlockID(b)]))
	}
	return sb.String()
}

func (s *bufSearch) search(st *bufState) bool {
	if s.nodes >= nodeBudget {
		return false
	}
	s.nodes++
	done := true
	for p := 1; p < len(s.byProc); p++ {
		if st.next[p] < len(s.byProc[p]) || len(st.bufs[p]) > 0 {
			done = false
			break
		}
	}
	if done {
		return true
	}
	k := st.key()
	if _, bad := s.seen[k]; bad {
		return false
	}

	for p := 1; p < len(s.byProc); p++ {
		// Drain a buffered store. TSO drains the FIFO head only; PSO may
		// drain any store with no earlier same-block store in the buffer.
		for bi, pos := range st.bufs[p] {
			if bi > 0 && !s.pso {
				break
			}
			if s.pso && !firstOfBlock(s.t, st.bufs[p], bi) {
				continue
			}
			op := s.t[pos]
			orig := st.bufs[p]
			nbuf := make([]int, 0, len(orig)-1)
			nbuf = append(nbuf, orig[:bi]...)
			nbuf = append(nbuf, orig[bi+1:]...)
			st.bufs[p] = nbuf
			old, had := st.mem[op.Block]
			st.mem[op.Block] = op.Value
			s.sched = append(s.sched, pos)
			if s.search(st) {
				return true
			}
			s.sched = s.sched[:len(s.sched)-1]
			if had {
				st.mem[op.Block] = old
			} else {
				delete(st.mem, op.Block)
			}
			st.bufs[p] = orig
		}
		// Issue the next program-order operation.
		if st.next[p] >= len(s.byProc[p]) {
			continue
		}
		pos := s.byProc[p][st.next[p]]
		op := s.t[pos]
		if op.IsStore() {
			orig := st.bufs[p]
			st.bufs[p] = append(append([]int(nil), orig...), pos)
			st.next[p]++
			if s.search(st) {
				return true
			}
			st.next[p]--
			st.bufs[p] = orig
			continue
		}
		// Load: forward from the newest same-block buffered store, else
		// read memory (⊥ if the block was never written).
		v, forwarded := trace.Bottom, false
		for i := len(st.bufs[p]) - 1; i >= 0; i-- {
			if bop := s.t[st.bufs[p][i]]; bop.Block == op.Block {
				v, forwarded = bop.Value, true
				break
			}
		}
		if !forwarded {
			if mv, ok := st.mem[op.Block]; ok {
				v = mv
			}
		}
		if v != op.Value {
			continue
		}
		st.next[p]++
		s.sched = append(s.sched, pos)
		if s.search(st) {
			return true
		}
		s.sched = s.sched[:len(s.sched)-1]
		st.next[p]--
	}
	s.seen[k] = struct{}{}
	return false
}

// firstOfBlock reports whether buf[bi] has no earlier store to the same
// block in the buffer — the PSO per-block-FIFO drain condition.
func firstOfBlock(t trace.Trace, buf []int, bi int) bool {
	for _, pos := range buf[:bi] {
		if t[pos].Block == t[buf[bi]].Block {
			return false
		}
	}
	return true
}

// extractReorder finds, in a completed commit schedule, the program-order
// inversion that licenses the store-buffer tier: a store that drained
// after a later same-processor operation committed. It returns the
// inversion whose overtaking commit happens earliest, or nil if the
// schedule is actually in program order per processor (possible when the
// trace's non-SC cause is value inheritance rather than reordering).
func extractReorder(t trace.Trace, sched []int) *Reorder {
	commit := make([]int, len(t))
	for ci, pos := range sched {
		commit[pos] = ci
	}
	var best *Reorder
	for _, positions := range t.ByProc() {
		for x := 0; x < len(positions); x++ {
			for y := x + 1; y < len(positions); y++ {
				a, b := positions[x], positions[y]
				if commit[a] > commit[b] && t[a].IsStore() {
					if best == nil || commit[b] < commit[best.Past] {
						best = &Reorder{Store: a, Past: b}
					}
				}
			}
		}
	}
	return best
}
