package spectrum

import (
	"math/rand"
	"strings"
	"testing"

	"scverify/internal/trace"
)

// The classic litmus traces, each pinned to the tier it should land on.
// These are the executions the ladder exists to tell apart.
func TestLitmusTiers(t *testing.T) {
	cases := []struct {
		name string
		tr   trace.Trace
		want Tier
	}{
		{
			// Store buffering (Dekker): both loads overtake the local
			// store and read ⊥. The canonical TSO-but-not-SC execution.
			name: "store-buffering",
			tr: trace.Trace{
				trace.ST(1, 1, 1), trace.LD(1, 2, trace.Bottom),
				trace.ST(2, 2, 1), trace.LD(2, 1, trace.Bottom),
			},
			want: TierTSO,
		},
		{
			// Relaxed message passing (the Figure-1 shape): the flag
			// store drains before the data store. Needs store-store
			// reordering, so PSO but not TSO; the reads-from edge makes
			// it causally inconsistent too.
			name: "message-passing-relaxed",
			tr: trace.Trace{
				trace.ST(1, 1, 1), trace.ST(1, 2, 2),
				trace.LD(2, 2, 2), trace.LD(2, 1, trace.Bottom),
			},
			want: TierPSO,
		},
		{
			// IRIW: two readers disagree on the order of independent
			// writes. No store-buffer machine admits it, but the writes
			// are causally unrelated, so causal consistency does.
			name: "iriw",
			tr: trace.Trace{
				trace.ST(1, 1, 1), trace.ST(2, 2, 1),
				trace.LD(3, 1, 1), trace.LD(3, 2, trace.Bottom),
				trace.LD(4, 2, 1), trace.LD(4, 1, trace.Bottom),
			},
			want: TierCausal,
		},
		{
			// Causality chain dropped: P3 sees P2's write (which reads
			// P1's) but not P1's. PRAM's per-writer orders are satisfied
			// but the causal closure is not.
			name: "causality-violation",
			tr: trace.Trace{
				trace.ST(1, 1, 1),
				trace.LD(2, 1, 1), trace.ST(2, 2, 2),
				trace.LD(3, 2, 2), trace.LD(3, 1, trace.Bottom),
			},
			want: TierPRAM,
		},
		{
			// A processor missing its own write: not even PRAM.
			name: "read-own-writes-violation",
			tr: trace.Trace{
				trace.ST(1, 1, 1), trace.LD(1, 1, trace.Bottom),
			},
			want: TierNone,
		},
		{
			// A value loaded out of thin air fails every rung.
			name: "phantom-value",
			tr:   trace.Trace{trace.LD(1, 1, 5)},
			want: TierNone,
		},
		{
			// An SC trace: adjudication reports annotation inadequacy.
			name: "actually-sc",
			tr:   trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, 1)},
			want: TierSC,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Adjudicate(tc.tr, Options{})
			if !res.Checked {
				t.Fatalf("Adjudicate did not check a %d-op trace", len(tc.tr))
			}
			if res.Tier != tc.want {
				t.Fatalf("tier = %v, want %v (passed: %v)", res.Tier, tc.want, res.Passed)
			}
			if res.Bounded {
				t.Errorf("litmus trace hit the search budget")
			}
			switch tc.want {
			case TierTSO, TierPSO:
				if res.Reorder == nil {
					t.Errorf("no reorder site extracted for %v tier", res.Tier)
				} else if !tc.tr[res.Reorder.Store].IsStore() {
					t.Errorf("reorder site %+v does not name a store", res.Reorder)
				}
			case TierNone:
				if res.FailProc == 0 {
					t.Errorf("no failing process named for TierNone")
				}
			}
		})
	}
}

func TestTierString(t *testing.T) {
	want := map[Tier]string{
		TierNone: "none", TierPRAM: "PRAM", TierCausal: "causal",
		TierPSO: "PSO", TierTSO: "TSO", TierSC: "SC", Tier(9): "tier(9)",
	}
	for tier, s := range want {
		if got := tier.String(); got != s {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, s)
		}
	}
	if Tier(9).Valid() || Tier(-1).Valid() {
		t.Errorf("out-of-range tiers reported valid")
	}
	for tier := TierNone; tier < NumTiers; tier++ {
		if !tier.Valid() {
			t.Errorf("%v reported invalid", tier)
		}
	}
}

func TestLimit(t *testing.T) {
	long := make(trace.Trace, DefaultLimit+1)
	for i := range long {
		long[i] = trace.ST(1, 1, 1)
	}
	if res := Adjudicate(long, Options{}); res.Checked {
		t.Errorf("default limit did not skip a %d-op trace", len(long))
	}
	if res := Adjudicate(long, Options{Limit: len(long)}); !res.Checked {
		t.Errorf("explicit limit %d skipped a %d-op trace", len(long), len(long))
	}
	if res := Adjudicate(trace.Trace{trace.ST(1, 1, 1)}, Options{Limit: -1}); res.Checked {
		t.Errorf("negative limit still adjudicated")
	}
}

// The lattice invariants, exercised over random small traces: the SC rung
// agrees with the exact serial-reordering search, the entailments
// TSO⟹PSO, causal⟹PRAM and SC⟹everything hold, and the reported tier is
// exactly the first satisfied rung of the ladder.
func TestLatticeInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		n := 2 + rng.Intn(5)
		tr := make(trace.Trace, n)
		for i := range tr {
			p := trace.ProcID(1 + rng.Intn(3))
			b := trace.BlockID(1 + rng.Intn(2))
			v := trace.Value(1 + rng.Intn(2))
			if rng.Intn(2) == 0 {
				tr[i] = trace.ST(p, b, v)
			} else {
				if rng.Intn(3) == 0 {
					v = trace.Bottom
				}
				tr[i] = trace.LD(p, b, v)
			}
		}
		res := Adjudicate(tr, Options{})
		if !res.Checked {
			t.Fatalf("random %d-op trace not checked", n)
		}
		if res.Bounded {
			continue // budget hit: tiers are a lower bound, skip exactness checks
		}
		if got, want := res.Passed[TierSC], trace.HasSerialReordering(tr); got != want {
			t.Fatalf("trace %v: SC rung %v, exact search %v", tr, got, want)
		}
		if res.Passed[TierTSO] && !res.Passed[TierPSO] {
			t.Fatalf("trace %v: TSO passed but PSO failed", tr)
		}
		if res.Passed[TierCausal] && !res.Passed[TierPRAM] {
			t.Fatalf("trace %v: causal passed but PRAM failed", tr)
		}
		if res.Passed[TierSC] && res.Tier != TierSC {
			t.Fatalf("trace %v: SC passed but tier %v reported", tr, res.Tier)
		}
		first := TierNone
		for tier := TierSC; tier > TierNone; tier-- {
			if res.Passed[tier] {
				first = tier
				break
			}
		}
		if res.Tier != first {
			t.Fatalf("trace %v: tier %v is not the first satisfied rung %v (passed %v)",
				tr, res.Tier, first, res.Passed)
		}
	}
}

func TestNarrative(t *testing.T) {
	sb := trace.Trace{
		trace.ST(1, 1, 1), trace.LD(1, 2, trace.Bottom),
		trace.ST(2, 2, 1), trace.LD(2, 1, trace.Bottom),
	}
	res := Adjudicate(sb, Options{})
	n := res.Narrative(sb)
	for _, want := range []string{"consistency tier: TSO", "stayed buffered", "ladder:"} {
		if !strings.Contains(n, want) {
			t.Errorf("TSO narrative missing %q:\n%s", want, n)
		}
	}
	sc := trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, 1)}
	res = Adjudicate(sc, Options{})
	if n := res.Narrative(sc); !strings.Contains(n, "annotation") {
		t.Errorf("SC narrative missing inadequacy wording:\n%s", n)
	}
	long := make(trace.Trace, DefaultLimit+1)
	for i := range long {
		long[i] = trace.ST(1, 1, 1)
	}
	res = Adjudicate(long, Options{})
	if n := res.Narrative(long); !strings.Contains(n, "skipped") {
		t.Errorf("unchecked narrative missing skip notice:\n%s", n)
	}
}
