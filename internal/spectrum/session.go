// Session checkers for the PRAM and causal rungs, per the
// SingleOrder/PRAM/RVal decomposition: a trace is PRAM-consistent iff
// each process p can serialize all stores plus p's own loads so that each
// writer's stores appear in its program order and every load returns the
// latest same-block store (⊥ if none). Causal consistency additionally
// requires every serialization to respect the causal order — the
// transitive closure of program order and reads-from — for some
// assignment of reads-from writers.
package spectrum

import (
	"sort"
	"strings"

	"scverify/internal/trace"
)

type sessResult struct {
	ok       bool
	bounded  bool
	failProc trace.ProcID
}

// checkPRAM checks the PRAM rung: independent per-process serializations
// with no cross-process visibility constraint.
func checkPRAM(t trace.Trace) sessResult {
	return allSessions(t, nil)
}

// checkCausal checks the causal rung: it enumerates reads-from
// assignments (capped at maxRFAssignments when stores repeat a
// (block, value) pair), builds the causal order for each, and asks
// whether every process can serialize under it.
func checkCausal(t trace.Trace) sessResult {
	loads, candidates, ok := rfCandidates(t)
	if !ok {
		// Some load's value was never stored to its block: no
		// serialization exists for that process under any model.
		return sessResult{ok: false}
	}
	total := 1
	capped := false
	for _, c := range candidates {
		total *= len(c)
		if total > maxRFAssignments {
			total = maxRFAssignments
			capped = true
			break
		}
	}
	res := sessResult{bounded: capped}
	assign := make([]int, len(loads))
	for n := 0; n < total; n++ {
		// Decode assignment n in mixed radix over the candidate lists.
		rem := n
		for i, c := range candidates {
			assign[i] = rem % len(c)
			rem /= len(c)
		}
		co := causalClosure(t, loads, candidates, assign)
		sr := allSessions(t, co)
		res.bounded = res.bounded || sr.bounded
		if sr.ok {
			res.ok = true
			return res
		}
	}
	return res
}

// rfCandidates collects, for every non-⊥ load, the trace positions of
// stores that could be its writer (same block and value). The third
// result is false if some load has no candidate at all.
func rfCandidates(t trace.Trace) (loads []int, candidates [][]int, ok bool) {
	for i, op := range t {
		if !op.IsLoad() || op.Value == trace.Bottom {
			continue
		}
		var c []int
		for j, w := range t {
			if w.IsStore() && w.Block == op.Block && w.Value == op.Value {
				c = append(c, j)
			}
		}
		if len(c) == 0 {
			return nil, nil, false
		}
		loads = append(loads, i)
		candidates = append(candidates, c)
	}
	return loads, candidates, true
}

// causalClosure builds the transitive closure of program order plus the
// chosen reads-from edges, as an adjacency matrix over trace positions.
func causalClosure(t trace.Trace, loads []int, candidates [][]int, assign []int) [][]bool {
	n := len(t)
	co := make([][]bool, n)
	for i := range co {
		co[i] = make([]bool, n)
	}
	for _, positions := range t.ByProc() {
		for x := 0; x+1 < len(positions); x++ {
			co[positions[x]][positions[x+1]] = true
		}
	}
	for i, ld := range loads {
		co[candidates[i][assign[i]]][ld] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !co[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if co[k][j] {
					co[i][j] = true
				}
			}
		}
	}
	return co
}

// allSessions runs serializeFor over every process with operations in the
// trace. A nil co checks plain PRAM; a causal order matrix adds its
// constraints. failProc is the first process with no serialization.
func allSessions(t trace.Trace, co [][]bool) sessResult {
	res := sessResult{ok: true}
	byProc := t.ByProc()
	for p := 1; p < len(byProc); p++ {
		if len(byProc[p]) == 0 {
			continue
		}
		ok, bounded := serializeFor(t, byProc, trace.ProcID(p), co)
		res.bounded = res.bounded || bounded
		if !ok {
			res.ok = false
			if res.failProc == 0 {
				res.failProc = trace.ProcID(p)
			}
		}
	}
	return res
}

// serializeFor searches for process p's serialization: an order over all
// stores in the trace plus p's own loads in which each included
// processor's items appear in its program order, each load returns the
// latest same-block store (⊥ if none), and — when co is non-nil — no
// item precedes a causal predecessor. Memoized DFS over (per-processor
// frontier, memory) states; the second result reports budget exhaustion.
func serializeFor(t trace.Trace, byProc [][]int, p trace.ProcID, co [][]bool) (bool, bool) {
	// Per-processor lists of included positions: all of p's ops; only
	// stores for other processors.
	items := make([][]int, len(byProc))
	remaining := 0
	for q := 1; q < len(byProc); q++ {
		for _, pos := range byProc[q] {
			if trace.ProcID(q) == p || t[pos].IsStore() {
				items[q] = append(items[q], pos)
				remaining++
			}
		}
	}
	s := &sessSearch{
		t:        t,
		items:    items,
		co:       co,
		seen:     make(map[string]struct{}),
		front:    make([]int, len(items)),
		executed: make([]bool, len(t)),
		mem:      make(map[trace.BlockID]trace.Value),
	}
	ok := s.search(remaining)
	return ok, s.nodes >= nodeBudget
}

type sessSearch struct {
	t     trace.Trace
	items [][]int
	co    [][]bool
	seen  map[string]struct{}
	nodes int

	front    []int
	executed []bool
	mem      map[trace.BlockID]trace.Value
}

func (s *sessSearch) key() string {
	var sb strings.Builder
	for q := 1; q < len(s.front); q++ {
		sb.WriteByte(byte(s.front[q]))
	}
	sb.WriteByte(0xfe)
	blocks := make([]int, 0, len(s.mem))
	for b := range s.mem {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		sb.WriteByte(byte(b))
		sb.WriteByte(byte(s.mem[trace.BlockID(b)]))
	}
	return sb.String()
}

// ready reports whether the item at trace position pos may execute now:
// every included causal predecessor has already executed.
func (s *sessSearch) ready(pos int) bool {
	if s.co == nil {
		return true
	}
	for q := 1; q < len(s.items); q++ {
		for _, y := range s.items[q] {
			if y != pos && s.co[y][pos] && !s.executed[y] {
				return false
			}
		}
	}
	return true
}

func (s *sessSearch) search(remaining int) bool {
	if remaining == 0 {
		return true
	}
	if s.nodes >= nodeBudget {
		return false
	}
	s.nodes++
	k := s.key()
	if _, bad := s.seen[k]; bad {
		return false
	}
	for q := 1; q < len(s.items); q++ {
		idx := s.front[q]
		if idx >= len(s.items[q]) {
			continue
		}
		pos := s.items[q][idx]
		op := s.t[pos]
		if !s.ready(pos) {
			continue
		}
		var saved trace.Value
		var had bool
		if op.IsLoad() {
			cur, ok := s.mem[op.Block]
			if !ok {
				cur = trace.Bottom
			}
			if cur != op.Value {
				continue
			}
		} else {
			saved, had = s.mem[op.Block]
			s.mem[op.Block] = op.Value
		}
		s.front[q]++
		s.executed[pos] = true
		if s.search(remaining - 1) {
			return true
		}
		s.executed[pos] = false
		s.front[q]--
		if op.IsStore() {
			if had {
				s.mem[op.Block] = saved
			} else {
				delete(s.mem, op.Block)
			}
		}
	}
	s.seen[k] = struct{}{}
	return false
}
