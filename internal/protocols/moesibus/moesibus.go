// Package moesibus implements a MOESI snooping-bus cache-coherence
// protocol: MESI extended with an Owned state, entered when a Modified
// line is snooped by a reader. The owner keeps supplying dirty data
// cache-to-cache — memory stays stale until the owned line is evicted —
// which exercises a data path none of the other bus protocols has: values
// can circulate between caches for arbitrarily long without ever passing
// through memory, so inheritance edges must be derived purely from the
// copy tracking labels.
//
// Location layout matches msibus/mesibus: locations 1..b are memory;
// processor P's line for block B is b + (P-1)·b + B.
package moesibus

import (
	"encoding/binary"
	"fmt"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// LineState is a cache line's MOESI state.
type LineState uint8

const (
	// Invalid lines hold no value.
	Invalid LineState = iota
	// Shared lines hold a copy that may be stale w.r.t. an Owned line
	// elsewhere but is the current coherent value.
	Shared
	// Exclusive lines hold the only cached copy, clean w.r.t. memory.
	Exclusive
	// Owned lines hold dirty data being shared: this cache must supply
	// readers and write back on eviction.
	Owned
	// Modified lines hold the only valid copy, dirty w.r.t. memory.
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Protocol is the MOESI bus protocol.
type Protocol struct {
	P trace.Params
}

// New returns a MOESI protocol.
func New(p trace.Params) *Protocol { return &Protocol{P: p} }

// Name implements protocol.Protocol.
func (m *Protocol) Name() string { return "moesi-bus" }

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol.
func (m *Protocol) Locations() int { return m.P.Blocks * (1 + m.P.Procs) }

// MemLoc returns block b's memory location.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// CacheLoc returns processor p's line location for block b.
func (m *Protocol) CacheLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + (int(p)-1)*m.P.Blocks + int(b)
}

type line struct {
	state LineState
	val   trace.Value
}

type state struct {
	mem   []trace.Value
	lines []line
}

func (s state) clone() state {
	n := state{mem: make([]trace.Value, len(s.mem)), lines: make([]line, len(s.lines))}
	copy(n.mem, s.mem)
	copy(n.lines, s.lines)
	return n
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, len(s.mem)+3*len(s.lines))
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, l := range s.lines {
		buf = append(buf, byte(l.state))
		buf = binary.AppendUvarint(buf, uint64(l.val))
	}
	return string(buf)
}

func (m *Protocol) lineIdx(p trace.ProcID, b trace.BlockID) int {
	return (int(p)-1)*m.P.Blocks + int(b) - 1
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	return state{
		mem:   make([]trace.Value, m.P.Blocks+1),
		lines: make([]line, m.P.Procs*m.P.Blocks),
	}
}

// supplier finds the cache (if any) that must source data for block b:
// the Modified or Owned line.
func (m *Protocol) supplier(s state, b trace.BlockID, exclude trace.ProcID) (trace.ProcID, bool) {
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q == exclude {
			continue
		}
		st := s.lines[m.lineIdx(q, b)].state
		if st == Modified || st == Owned {
			return q, true
		}
	}
	return 0, false
}

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
			ln := s.lines[m.lineIdx(p, b)]
			if ln.state != Invalid {
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.LD(p, b, ln.val)),
					Next:   s,
					Loc:    m.CacheLoc(p, b),
				})
				out = append(out, m.evict(s, p, b))
			}
			if ln.state == Invalid {
				out = append(out, m.busRd(s, p, b))
				out = append(out, m.busRdX(s, p, b))
			}
			if ln.state == Shared || ln.state == Owned {
				// Upgrade: invalidate other copies, then write.
				out = append(out, m.busRdX(s, p, b))
			}
			if ln.state == Exclusive || ln.state == Modified {
				for v := trace.Value(1); int(v) <= m.P.Values; v++ {
					next := s.clone()
					next.lines[m.lineIdx(p, b)] = line{state: Modified, val: v}
					out = append(out, protocol.Transition{
						Action: protocol.MemOp(trace.ST(p, b, v)),
						Next:   next,
						Loc:    m.CacheLoc(p, b),
					})
				}
			}
		}
	}
	return out
}

// busRd obtains a readable copy. A Modified or Owned line elsewhere
// supplies the data cache-to-cache WITHOUT a memory writeback — the
// supplier transitions to (or stays in) Owned. Otherwise memory supplies,
// Exclusive if no other cache holds the line.
func (m *Protocol) busRd(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	var copies []protocol.Copy
	li := m.lineIdx(p, b)

	if q, ok := m.supplier(s, b, p); ok {
		qi := m.lineIdx(q, b)
		next.lines[qi].state = Owned
		next.lines[li] = line{state: Shared, val: s.lines[qi].val}
		copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: m.CacheLoc(q, b)})
	} else {
		anyOther := false
		for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
			if q != p && s.lines[m.lineIdx(q, b)].state != Invalid {
				anyOther = true
				next.lines[m.lineIdx(q, b)].state = Shared
			}
		}
		st := Exclusive
		if anyOther {
			st = Shared
		}
		next.lines[li] = line{state: st, val: s.mem[b]}
		copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: m.MemLoc(b)})
	}
	return protocol.Transition{
		Action: protocol.Internal("BusRd", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// busRdX obtains exclusive ownership: the dirty holder (if any) supplies
// data cache-to-cache, everyone else is invalidated, no memory traffic.
func (m *Protocol) busRdX(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	var copies []protocol.Copy
	li := m.lineIdx(p, b)

	src := m.MemLoc(b)
	val := s.mem[b]
	if q, ok := m.supplier(s, b, p); ok {
		src = m.CacheLoc(q, b)
		val = s.lines[m.lineIdx(q, b)].val
	} else if s.lines[li].state == Owned {
		// Upgrading our own Owned line: we already have the dirty data.
		src = m.CacheLoc(p, b)
		val = s.lines[li].val
	}
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q == p {
			continue
		}
		qi := m.lineIdx(q, b)
		if s.lines[qi].state != Invalid {
			next.lines[qi] = line{}
			copies = append(copies, protocol.Copy{Dst: m.CacheLoc(q, b), Src: 0})
		}
	}
	next.lines[li] = line{state: Modified, val: val}
	if src != m.CacheLoc(p, b) {
		copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: src})
	}
	return protocol.Transition{
		Action: protocol.Internal("BusRdX", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// evict drops a line; Owned and Modified lines write their dirty data
// back to memory first.
func (m *Protocol) evict(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	li := m.lineIdx(p, b)
	var copies []protocol.Copy
	if st := s.lines[li].state; st == Modified || st == Owned {
		next.mem[b] = s.lines[li].val
		copies = append(copies, protocol.Copy{Dst: m.MemLoc(b), Src: m.CacheLoc(p, b)})
	}
	next.lines[li] = line{}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: 0})
	return protocol.Transition{
		Action: protocol.Internal("Evict", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}
