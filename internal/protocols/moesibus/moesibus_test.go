package moesibus

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func take(t *testing.T, r *protocol.Runner, want string) {
	t.Helper()
	for _, tr := range r.Enabled() {
		if tr.Action.String() == want {
			r.Take(tr)
			return
		}
	}
	t.Fatalf("action %q not enabled; run: %s", want, r.Run())
}

func observeAndCheck(t *testing.T, run *protocol.Run) error {
	t.Helper()
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		return err
	}
	return checker.Check(stream, o.K())
}

func TestStateStrings(t *testing.T) {
	want := map[LineState]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%v = %q, want %q", st, st.String(), name)
		}
	}
}

func TestValidate(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
}

func TestOwnedStateDirtySharing(t *testing.T) {
	// P1 writes, P2 reads (P1 → Owned, cache-to-cache supply, memory
	// stale), P3 reads from the owner again, then the owner evicts and
	// memory finally catches up.
	m := New(trace.Params{Procs: 3, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "BusRdX(1,1)")
	take(t, r, "ST(P1,B1,2)")
	take(t, r, "BusRd(2,1)") // P1: M → O, supplies P2
	take(t, r, "LD(P2,B1,2)")
	take(t, r, "BusRd(3,1)") // owner still supplies
	take(t, r, "LD(P3,B1,2)")
	take(t, r, "LD(P1,B1,2)") // owner reads its own dirty line
	take(t, r, "Evict(1,1)")  // write back
	take(t, r, "BusRd(1,1)")  // refill from (now current) memory
	take(t, r, "LD(P1,B1,2)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("MOESI run not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("dirty-sharing run rejected: %v", err)
	}
}

func TestOwnedUpgradeUsesDirtyData(t *testing.T) {
	// The owner upgrades its own Owned line back to Modified without
	// touching stale memory.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "BusRdX(1,1)")
	take(t, r, "ST(P1,B1,2)")
	take(t, r, "BusRd(2,1)")  // P1 → Owned
	take(t, r, "BusRdX(1,1)") // P1 upgrades O → M, invalidates P2
	take(t, r, "LD(P1,B1,2)") // still the dirty value, not stale memory ⊥
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("upgrade run not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("upgrade run rejected: %v", err)
	}
}

func TestRandomRunsObserveAndCheck(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 25; seed++ {
		run := protocol.RandomRun(m, 40, seed)
		if err := observeAndCheck(t, run); err != nil {
			t.Fatalf("seed %d: rejected: %v\nrun: %s", seed, err, run)
		}
	}
}

func TestRandomRunTracesAreSC(t *testing.T) {
	m := New(trace.Params{Procs: 3, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 8; seed++ {
		run := protocol.RandomRun(m, 30, seed)
		if len(run.Trace) > 14 {
			run.Trace = run.Trace[:14]
		}
		if !trace.HasSerialReordering(run.Trace) {
			t.Fatalf("seed %d: MOESI trace not SC: %s", seed, run.Trace)
		}
	}
}

func TestMemoryStaysStaleUnderOwnership(t *testing.T) {
	// Structural check of the interesting invariant: after dirty sharing,
	// the memory location still holds the ORIGINAL store's value according
	// to the tracking labels (ST-index), while caches hold the new one.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	st := protocol.NewSTIndexTracker(m.Locations())
	apply := func(want string) {
		take(t, r, want)
		last := r.Run().Steps[len(r.Run().Steps)-1]
		st.Apply(last.Transition, last.TraceIndex)
	}
	apply("BusRdX(1,1)")
	apply("ST(P1,B1,1)") // trace index 1
	apply("Evict(1,1)")  // write back: memory now holds store 1
	apply("BusRdX(1,1)")
	apply("ST(P1,B1,2)") // trace index 2, dirty
	apply("BusRd(2,1)")  // dirty sharing: memory NOT updated
	if got := st.Index(m.MemLoc(1)); got != 1 {
		t.Errorf("memory ST-index = %d, want 1 (stale under ownership)", got)
	}
	if got := st.Index(m.CacheLoc(2, 1)); got != 2 {
		t.Errorf("P2 cache ST-index = %d, want 2", got)
	}
}
