// Package dragonbus implements a Dragon-style update-based snooping-bus
// protocol: instead of invalidating other caches, a store broadcasts the
// new value and every sharer updates its copy in place. This is the only
// protocol family in the suite whose stores write MULTIPLE storage
// locations in one transition (the writer's line plus every sharer's),
// exercising the post-operation copy tracking labels end to end. Like
// MOESI, memory stays stale while a modified owner exists.
//
// Line states: I (invalid), Sc (shared clean), Sm (shared modified —
// owner among sharers), E (exclusive clean), M (modified exclusive).
// Invariants: at most one Sm/M line per block; if two or more valid
// copies exist they all hold the same value; memory is current iff no
// Sm/M line exists.
//
// Location layout matches the other bus protocols: memory 1..b;
// processor P's line for block B is b + (P-1)·b + B.
package dragonbus

import (
	"encoding/binary"
	"fmt"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// LineState is a cache line's Dragon state.
type LineState uint8

const (
	// Invalid lines hold no value.
	Invalid LineState = iota
	// SharedClean lines hold a copy that matches the coherent value.
	SharedClean
	// SharedModified lines own dirty data that other caches share.
	SharedModified
	// Exclusive lines hold the only cached copy, clean w.r.t. memory.
	Exclusive
	// Modified lines hold the only cached copy, dirty w.r.t. memory.
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case SharedClean:
		return "Sc"
	case SharedModified:
		return "Sm"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Protocol is the Dragon bus protocol.
type Protocol struct {
	P trace.Params
}

// New returns a Dragon protocol.
func New(p trace.Params) *Protocol { return &Protocol{P: p} }

// Name implements protocol.Protocol.
func (m *Protocol) Name() string { return "dragon-bus" }

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol.
func (m *Protocol) Locations() int { return m.P.Blocks * (1 + m.P.Procs) }

// MemLoc returns block b's memory location.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// CacheLoc returns processor p's line location for block b.
func (m *Protocol) CacheLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + (int(p)-1)*m.P.Blocks + int(b)
}

type line struct {
	state LineState
	val   trace.Value
}

type state struct {
	mem   []trace.Value
	lines []line
}

func (s state) clone() state {
	n := state{mem: make([]trace.Value, len(s.mem)), lines: make([]line, len(s.lines))}
	copy(n.mem, s.mem)
	copy(n.lines, s.lines)
	return n
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, len(s.mem)+3*len(s.lines))
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, l := range s.lines {
		buf = append(buf, byte(l.state))
		buf = binary.AppendUvarint(buf, uint64(l.val))
	}
	return string(buf)
}

func (m *Protocol) lineIdx(p trace.ProcID, b trace.BlockID) int {
	return (int(p)-1)*m.P.Blocks + int(b) - 1
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	return state{
		mem:   make([]trace.Value, m.P.Blocks+1),
		lines: make([]line, m.P.Procs*m.P.Blocks),
	}
}

// owner finds the Sm/M holder for block b, excluding p.
func (m *Protocol) owner(s state, b trace.BlockID, exclude trace.ProcID) (trace.ProcID, bool) {
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q == exclude {
			continue
		}
		st := s.lines[m.lineIdx(q, b)].state
		if st == Modified || st == SharedModified {
			return q, true
		}
	}
	return 0, false
}

// sharers lists processors with valid lines for b, excluding p.
func (m *Protocol) sharers(s state, b trace.BlockID, exclude trace.ProcID) []trace.ProcID {
	var out []trace.ProcID
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q != exclude && s.lines[m.lineIdx(q, b)].state != Invalid {
			out = append(out, q)
		}
	}
	return out
}

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
			ln := s.lines[m.lineIdx(p, b)]
			if ln.state != Invalid {
				// Hit load.
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.LD(p, b, ln.val)),
					Next:   s,
					Loc:    m.CacheLoc(p, b),
				})
				// Updating store: broadcast the new value to every sharer.
				out = append(out, m.stores(s, p, b)...)
				out = append(out, m.evict(s, p, b))
			} else {
				out = append(out, m.busRd(s, p, b))
			}
		}
	}
	return out
}

// stores produces the update-broadcast store transitions for a valid line.
func (m *Protocol) stores(s state, p trace.ProcID, b trace.BlockID) []protocol.Transition {
	others := m.sharers(s, b, p)
	var out []protocol.Transition
	for v := trace.Value(1); int(v) <= m.P.Values; v++ {
		next := s.clone()
		li := m.lineIdx(p, b)
		var copies []protocol.Copy
		if len(others) == 0 {
			next.lines[li] = line{state: Modified, val: v}
		} else {
			next.lines[li] = line{state: SharedModified, val: v}
			for _, q := range others {
				qi := m.lineIdx(q, b)
				// Every sharer takes the broadcast update in place and is
				// demoted to shared-clean (the writer owns the dirty data).
				next.lines[qi] = line{state: SharedClean, val: v}
				copies = append(copies, protocol.Copy{Dst: m.CacheLoc(q, b), Src: m.CacheLoc(p, b)})
			}
		}
		out = append(out, protocol.Transition{
			Action: protocol.MemOp(trace.ST(p, b, v)),
			Next:   next,
			Loc:    m.CacheLoc(p, b),
			Copies: copies, // post-op copies: they read the freshly stored value
		})
	}
	return out
}

// busRd fills an invalid line: the Sm/M owner supplies data cache-to-cache
// (demoting M to Sm), otherwise memory supplies; the incoming line is
// Exclusive only when no other cache holds the block.
func (m *Protocol) busRd(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	li := m.lineIdx(p, b)
	var copies []protocol.Copy
	if q, ok := m.owner(s, b, p); ok {
		qi := m.lineIdx(q, b)
		next.lines[qi].state = SharedModified
		next.lines[li] = line{state: SharedClean, val: s.lines[qi].val}
		copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: m.CacheLoc(q, b)})
	} else {
		others := m.sharers(s, b, p)
		st := Exclusive
		if len(others) > 0 {
			st = SharedClean
			for _, q := range others {
				// An Exclusive holder is demoted to shared-clean.
				next.lines[m.lineIdx(q, b)].state = SharedClean
			}
		}
		next.lines[li] = line{state: st, val: s.mem[b]}
		copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: m.MemLoc(b)})
	}
	return protocol.Transition{
		Action: protocol.Internal("BusRd", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// evict drops a line; Sm and M lines write their dirty data back first.
// When the Sm owner leaves, remaining shared-clean copies stay valid and
// memory becomes current again.
func (m *Protocol) evict(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	li := m.lineIdx(p, b)
	var copies []protocol.Copy
	if st := s.lines[li].state; st == Modified || st == SharedModified {
		next.mem[b] = s.lines[li].val
		copies = append(copies, protocol.Copy{Dst: m.MemLoc(b), Src: m.CacheLoc(p, b)})
	}
	next.lines[li] = line{}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: 0})
	return protocol.Transition{
		Action: protocol.Internal("Evict", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}
