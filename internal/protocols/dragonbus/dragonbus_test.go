package dragonbus

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func take(t *testing.T, r *protocol.Runner, want string) {
	t.Helper()
	for _, tr := range r.Enabled() {
		if tr.Action.String() == want {
			r.Take(tr)
			return
		}
	}
	t.Fatalf("action %q not enabled; run: %s", want, r.Run())
}

func observeAndCheck(t *testing.T, run *protocol.Run) error {
	t.Helper()
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		return err
	}
	return checker.Check(stream, o.K())
}

func TestStateStrings(t *testing.T) {
	want := map[LineState]string{
		Invalid: "I", SharedClean: "Sc", SharedModified: "Sm",
		Exclusive: "E", Modified: "M",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%v = %q, want %q", st, st.String(), name)
		}
	}
}

func TestValidate(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateBroadcastReachesSharers(t *testing.T) {
	// P1 and P2 share the line; P1's store updates P2's copy IN PLACE — no
	// invalidation, and P2's next load returns the new value without any
	// bus refill.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "BusRd(1,1)")
	take(t, r, "BusRd(2,1)")
	take(t, r, "LD(P2,B1,⊥)")
	take(t, r, "ST(P1,B1,2)") // broadcast update
	take(t, r, "LD(P2,B1,2)") // P2 sees the new value immediately
	take(t, r, "LD(P1,B1,2)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("Dragon run not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("update-broadcast run rejected: %v", err)
	}
}

func TestNoStaleReadPossibleAfterUpdate(t *testing.T) {
	// Update protocols have no invalidation window: after a store, no
	// sharer can load the old value at all.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "BusRd(1,1)")
	take(t, r, "BusRd(2,1)")
	take(t, r, "ST(P1,B1,1)")
	for _, tr := range r.Enabled() {
		if tr.Action.String() == "LD(P2,B1,⊥)" {
			t.Fatal("sharer can still read the pre-update value")
		}
	}
}

func TestOwnershipTransferBetweenWriters(t *testing.T) {
	// P1 writes (Sm owner), then P2 writes the same shared line: ownership
	// transfers, both copies track the latest value, memory stays stale
	// until the owner evicts.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "BusRd(1,1)")
	take(t, r, "BusRd(2,1)")
	take(t, r, "ST(P1,B1,1)")
	take(t, r, "ST(P2,B1,2)")
	take(t, r, "LD(P1,B1,2)")
	take(t, r, "LD(P2,B1,2)")
	take(t, r, "Evict(2,1)") // owner writes back
	take(t, r, "BusRd(2,1)") // refill from now-current memory
	take(t, r, "LD(P2,B1,2)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("ownership-transfer run not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("ownership-transfer run rejected: %v", err)
	}
}

func TestRandomRunsObserveAndCheck(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 25; seed++ {
		run := protocol.RandomRun(m, 40, seed)
		if err := observeAndCheck(t, run); err != nil {
			t.Fatalf("seed %d: rejected: %v\nrun: %s", seed, err, run)
		}
	}
}

func TestRandomRunTracesAreSC(t *testing.T) {
	m := New(trace.Params{Procs: 3, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 8; seed++ {
		run := protocol.RandomRun(m, 30, seed)
		if len(run.Trace) > 14 {
			run.Trace = run.Trace[:14]
		}
		if !trace.HasSerialReordering(run.Trace) {
			t.Fatalf("seed %d: Dragon trace not SC: %s", seed, run.Trace)
		}
	}
}

func TestUpdateStoreTrackingLabels(t *testing.T) {
	// The broadcast store writes several locations in one transition: the
	// ST-index of every sharer's line must point at the new store.
	m := New(trace.Params{Procs: 3, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	st := protocol.NewSTIndexTracker(m.Locations())
	apply := func(want string) {
		take(t, r, want)
		last := r.Run().Steps[len(r.Run().Steps)-1]
		st.Apply(last.Transition, last.TraceIndex)
	}
	apply("BusRd(1,1)")
	apply("BusRd(2,1)")
	apply("BusRd(3,1)")
	apply("ST(P1,B1,2)") // trace index 1, broadcast to P2 and P3
	for p := trace.ProcID(1); p <= 3; p++ {
		if got := st.Index(m.CacheLoc(p, 1)); got != 1 {
			t.Errorf("P%d line ST-index = %d, want 1", p, got)
		}
	}
	if got := st.Index(m.MemLoc(1)); got != 0 {
		t.Errorf("memory ST-index = %d, want 0 (stale)", got)
	}
}
