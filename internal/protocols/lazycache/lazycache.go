// Package lazycache implements the Lazy Caching protocol of Afek, Brown &
// Merritt (TOPLAS 1993), the paper's running example of a sequentially
// consistent protocol WITHOUT the real-time ST reordering property: a
// store enters its processor's out-queue immediately but serializes only
// when a later memory-write event pops it into memory, so the per-block
// store order is the memory-write order, not the trace order. Verifying
// it therefore needs the non-trivial ST-order generator of Section 4.2,
// provided here as Generator.
//
// Structure per processor: a cache (one value per block), a FIFO out-queue
// of pending own stores, and a FIFO in-queue of pending memory updates
// (entries are marked when they originate from the processor's own
// stores). A load returns the cache value and is enabled only when the
// processor's out-queue is empty and its in-queue holds no marked entry —
// the Afek–Brown–Merritt condition that makes the protocol SC.
//
// Location layout: memory 1..b; cache of P: b + (P-1)·b + B; out-slot i
// (0-based) of P: b + p·b + (P-1)·OutCap + i + 1; in-slot i of P:
// b + p·b + p·OutCap + (P-1)·InCap + i + 1.
package lazycache

import (
	"encoding/binary"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// Protocol is the lazy caching machine.
type Protocol struct {
	P      trace.Params
	OutCap int // out-queue capacity per processor
	InCap  int // in-queue capacity per processor
}

// New returns a lazy caching protocol with the given queue capacities.
func New(p trace.Params, outCap, inCap int) *Protocol {
	if outCap < 1 {
		outCap = 1
	}
	if inCap < 1 {
		inCap = 1
	}
	return &Protocol{P: p, OutCap: outCap, InCap: inCap}
}

// Name implements protocol.Protocol.
func (m *Protocol) Name() string { return "lazy-caching" }

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol.
func (m *Protocol) Locations() int {
	return m.P.Blocks + m.P.Procs*m.P.Blocks + m.P.Procs*m.OutCap + m.P.Procs*m.InCap
}

// MemLoc returns block b's memory location.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// CacheLoc returns processor p's cache location for block b.
func (m *Protocol) CacheLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + (int(p)-1)*m.P.Blocks + int(b)
}

// OutLoc returns processor p's out-queue slot i (0-based).
func (m *Protocol) OutLoc(p trace.ProcID, i int) int {
	return m.P.Blocks + m.P.Procs*m.P.Blocks + (int(p)-1)*m.OutCap + i + 1
}

// InLoc returns processor p's in-queue slot i (0-based).
func (m *Protocol) InLoc(p trace.ProcID, i int) int {
	return m.P.Blocks + m.P.Procs*m.P.Blocks + m.P.Procs*m.OutCap + (int(p)-1)*m.InCap + i + 1
}

type entry struct {
	block  trace.BlockID
	val    trace.Value
	marked bool // in-queue only: update originates from this processor
}

type state struct {
	mem   []trace.Value
	cache [][]trace.Value // [proc][block], 1-based both
	out   [][]entry
	in    [][]entry
}

func (s state) clone() state {
	n := state{
		mem:   append([]trace.Value(nil), s.mem...),
		cache: make([][]trace.Value, len(s.cache)),
		out:   make([][]entry, len(s.out)),
		in:    make([][]entry, len(s.in)),
	}
	for i := 1; i < len(s.cache); i++ {
		n.cache[i] = append([]trace.Value(nil), s.cache[i]...)
	}
	for i := 1; i < len(s.out); i++ {
		n.out[i] = append([]entry(nil), s.out[i]...)
	}
	for i := 1; i < len(s.in); i++ {
		n.in[i] = append([]entry(nil), s.in[i]...)
	}
	return n
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, 128)
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, c := range s.cache[1:] {
		for _, v := range c[1:] {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	putQ := func(q []entry) {
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		for _, e := range q {
			m := uint64(0)
			if e.marked {
				m = 1
			}
			buf = binary.AppendUvarint(buf, uint64(e.block))
			buf = binary.AppendUvarint(buf, uint64(e.val))
			buf = binary.AppendUvarint(buf, m)
		}
	}
	for _, q := range s.out[1:] {
		putQ(q)
	}
	for _, q := range s.in[1:] {
		putQ(q)
	}
	return string(buf)
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	s := state{
		mem:   make([]trace.Value, m.P.Blocks+1),
		cache: make([][]trace.Value, m.P.Procs+1),
		out:   make([][]entry, m.P.Procs+1),
		in:    make([][]entry, m.P.Procs+1),
	}
	for p := 1; p <= m.P.Procs; p++ {
		s.cache[p] = make([]trace.Value, m.P.Blocks+1)
	}
	return s
}

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		// Stores append to the out-queue.
		if len(s.out[p]) < m.OutCap {
			for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
				for v := trace.Value(1); int(v) <= m.P.Values; v++ {
					next := s.clone()
					next.out[p] = append(next.out[p], entry{block: b, val: v})
					out = append(out, protocol.Transition{
						Action: protocol.MemOp(trace.ST(p, b, v)),
						Next:   next,
						Loc:    m.OutLoc(p, len(s.out[p])),
					})
				}
			}
		}
		// Loads read the cache, gated by the Afek–Brown–Merritt condition.
		if len(s.out[p]) == 0 && !hasMarked(s.in[p]) {
			for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.LD(p, b, s.cache[p][b])),
					Next:   s,
					Loc:    m.CacheLoc(p, b),
				})
			}
		}
		// Memory-write: serialize the oldest pending store.
		if len(s.out[p]) > 0 && m.allInHaveRoom(s) {
			out = append(out, m.memoryWrite(s, p))
		}
		// Cache-update: apply the oldest pending update.
		if len(s.in[p]) > 0 {
			out = append(out, m.cacheUpdate(s, p))
		}
	}
	return out
}

func hasMarked(q []entry) bool {
	for _, e := range q {
		if e.marked {
			return true
		}
	}
	return false
}

func (m *Protocol) allInHaveRoom(s state) bool {
	for p := 1; p <= m.P.Procs; p++ {
		if len(s.in[p]) >= m.InCap {
			return false
		}
	}
	return true
}

// memoryWrite pops processor p's oldest store into memory and broadcasts
// the update to every in-queue, marked in p's own.
func (m *Protocol) memoryWrite(s state, p trace.ProcID) protocol.Transition {
	next := s.clone()
	head := next.out[p][0]
	next.out[p] = next.out[p][1:]
	next.mem[head.block] = head.val
	copies := []protocol.Copy{{Dst: m.MemLoc(head.block), Src: m.OutLoc(p, 0)}}
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		next.in[q] = append(next.in[q], entry{block: head.block, val: head.val, marked: q == p})
		copies = append(copies, protocol.Copy{Dst: m.InLoc(q, len(s.in[q])), Src: m.OutLoc(p, 0)})
	}
	// Shift the out-queue down one slot.
	for i := 1; i < len(s.out[p]); i++ {
		copies = append(copies, protocol.Copy{Dst: m.OutLoc(p, i-1), Src: m.OutLoc(p, i)})
	}
	copies = append(copies, protocol.Copy{Dst: m.OutLoc(p, len(s.out[p])-1), Src: 0})
	return protocol.Transition{
		Action: protocol.Internal("memory-write", int(p), int(head.block)),
		Next:   next,
		Copies: copies,
	}
}

// cacheUpdate pops processor p's oldest pending update into its cache.
func (m *Protocol) cacheUpdate(s state, p trace.ProcID) protocol.Transition {
	next := s.clone()
	head := next.in[p][0]
	next.in[p] = next.in[p][1:]
	next.cache[p][head.block] = head.val
	copies := []protocol.Copy{{Dst: m.CacheLoc(p, head.block), Src: m.InLoc(p, 0)}}
	for i := 1; i < len(s.in[p]); i++ {
		copies = append(copies, protocol.Copy{Dst: m.InLoc(p, i-1), Src: m.InLoc(p, i)})
	}
	copies = append(copies, protocol.Copy{Dst: m.InLoc(p, len(s.in[p])-1), Src: 0})
	return protocol.Transition{
		Action: protocol.Internal("cache-update", int(p), int(head.block)),
		Next:   next,
		Copies: copies,
	}
}

// RecommendedPoolSize sizes the observer ID pool for lazy caching: the
// Section 4.4 baseline plus one un-serialized store per out-queue slot.
func (m *Protocol) RecommendedPoolSize() int {
	return m.Locations() + m.P.Procs*m.P.Blocks + m.P.Procs + 2*m.P.Blocks + 2 + m.P.Procs*m.OutCap
}
