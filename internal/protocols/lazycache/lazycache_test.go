package lazycache

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/mc"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func take(t *testing.T, r *protocol.Runner, want string) {
	t.Helper()
	for _, tr := range r.Enabled() {
		if tr.Action.String() == want {
			r.Take(tr)
			return
		}
	}
	t.Fatalf("action %q not enabled; run: %s", want, r.Run())
}

func observeWith(t *testing.T, run *protocol.Run, gen observer.STOrderGenerator, pool int) error {
	t.Helper()
	stream, o, err := observer.ObserveRun(run, gen, observer.Config{PoolSize: pool})
	if err != nil {
		return err
	}
	c := checker.New(o.K())
	for _, sym := range stream {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return c.Finish()
}

// reorderedRun drives the run in which the per-block serialization order
// (memory-write order) inverts the trace order of two stores: P1 stores
// x←1, P2 stores x←2, but P2's memory-write happens first, and P3 reads 2
// then 1.
func reorderedRun(t *testing.T, m *Protocol) *protocol.Run {
	t.Helper()
	r := protocol.NewRunner(m)
	take(t, r, "ST(P1,B1,1)")
	take(t, r, "ST(P2,B1,2)")
	take(t, r, "memory-write(2,1)") // serializes ST(P2,B1,2) first
	take(t, r, "memory-write(1,1)")
	take(t, r, "cache-update(3,1)") // P3 sees 2
	take(t, r, "LD(P3,B1,2)")
	take(t, r, "cache-update(3,1)") // then 1
	take(t, r, "LD(P3,B1,1)")
	return r.Run()
}

func TestReorderedRunIsSC(t *testing.T) {
	m := New(trace.Params{Procs: 3, Blocks: 1, Values: 2}, 1, 2)
	run := reorderedRun(t, m)
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("lazy caching trace must be SC: %s", run.Trace)
	}
}

func TestLazyGeneratorAcceptsReorderedRun(t *testing.T) {
	m := New(trace.Params{Procs: 3, Blocks: 1, Values: 2}, 1, 2)
	run := reorderedRun(t, m)
	if err := observeWith(t, run, NewGenerator(3), m.RecommendedPoolSize()); err != nil {
		t.Errorf("lazy generator rejected a legal lazy-caching run: %v", err)
	}
}

func TestRealTimeGeneratorRejectsReorderedRun(t *testing.T) {
	// Section 4.2's point: lazy caching does NOT have the real-time ST
	// reordering property, so the trivial generator produces a cyclic
	// witness graph on the reordered run.
	m := New(trace.Params{Procs: 3, Blocks: 1, Values: 2}, 1, 2)
	run := reorderedRun(t, m)
	if err := observeWith(t, run, observer.NewRealTime(), m.RecommendedPoolSize()); err == nil {
		t.Error("real-time generator accepted the memory-write-reordered run")
	}
}

func TestRandomRunsAccepted(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2}, 2, 3)
	for seed := int64(0); seed < 25; seed++ {
		run := protocol.RandomRun(m, 40, seed)
		if err := observeWith(t, run, NewGenerator(2), m.RecommendedPoolSize()); err != nil {
			t.Fatalf("seed %d: rejected: %v\nrun: %s", seed, err, run)
		}
	}
}

func TestRandomRunTracesAreSC(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2}, 2, 3)
	for seed := int64(0); seed < 8; seed++ {
		run := protocol.RandomRun(m, 30, seed)
		if len(run.Trace) > 14 {
			run.Trace = run.Trace[:14]
		}
		if !trace.HasSerialReordering(run.Trace) {
			t.Fatalf("seed %d: lazy caching trace not SC: %s", seed, run.Trace)
		}
	}
}

func TestLoadGatedByOutQueueAndMarks(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 1}, 1, 2)
	r := protocol.NewRunner(m)
	take(t, r, "ST(P1,B1,1)")
	// P1's out-queue is non-empty: no P1 loads may be enabled.
	for _, tr := range r.Enabled() {
		if tr.Action.IsMem() && tr.Action.Op.IsLoad() && tr.Action.Op.Proc == 1 {
			t.Fatalf("load %s enabled with non-empty out-queue", tr.Action)
		}
	}
	take(t, r, "memory-write(1,1)")
	// P1's in-queue now holds a marked entry: still no P1 loads.
	for _, tr := range r.Enabled() {
		if tr.Action.IsMem() && tr.Action.Op.IsLoad() && tr.Action.Op.Proc == 1 {
			t.Fatalf("load %s enabled with marked in-queue entry", tr.Action)
		}
	}
	take(t, r, "cache-update(1,1)")
	// Now P1 may read its own store's value.
	take(t, r, "LD(P1,B1,1)")
}

func TestStaleReadIsLegal(t *testing.T) {
	// P2 may read ⊥ from its cache while P1's store sits in P2's in-queue:
	// laziness in action, still SC.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 1}, 1, 2)
	r := protocol.NewRunner(m)
	take(t, r, "ST(P1,B1,1)")
	take(t, r, "memory-write(1,1)")
	take(t, r, "LD(P2,B1,⊥)") // stale: update still queued
	take(t, r, "cache-update(2,1)")
	take(t, r, "LD(P2,B1,1)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("stale-read trace must be SC: %s", run.Trace)
	}
	if err := observeWith(t, run, NewGenerator(2), m.RecommendedPoolSize()); err != nil {
		t.Errorf("stale read rejected: %v", err)
	}
}

func TestModelCheckTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in short mode")
	}
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 1}, 1, 1)
	res := mc.Verify(m, mc.Options{
		PoolSize:  m.RecommendedPoolSize(),
		Generator: func() observer.STOrderGenerator { return NewGenerator(2) },
		MaxDepth:  10,
	})
	if res.Verdict == mc.Violated {
		t.Fatalf("lazy caching flagged as violating SC: %s", res)
	}
	t.Logf("%s", res)
}

func TestGeneratorFinishOrdersLeftovers(t *testing.T) {
	// Stores never memory-written by the run's end are serialized by
	// Finish; the checker must still accept (constraint 3 totality).
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2}, 2, 2)
	r := protocol.NewRunner(m)
	take(t, r, "ST(P1,B1,1)")
	take(t, r, "ST(P2,B1,2)")
	run := r.Run()
	if err := observeWith(t, run, NewGenerator(2), m.RecommendedPoolSize()); err != nil {
		t.Errorf("pending-store run rejected: %v", err)
	}
}

func TestRecommendedPoolSize(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2}, 2, 3)
	if m.RecommendedPoolSize() <= m.Locations() {
		t.Error("pool must exceed location count")
	}
}

func TestCapacityFloors(t *testing.T) {
	m := New(trace.Params{Procs: 1, Blocks: 1, Values: 1}, 0, 0)
	if m.OutCap != 1 || m.InCap != 1 {
		t.Error("capacity floors not applied")
	}
}
