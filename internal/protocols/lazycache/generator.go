package lazycache

import (
	"encoding/binary"
	"sort"

	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// Generator is the ST-order generator for lazy caching described in
// Section 4.2 of the paper: stores are ordered not in trace order but in
// memory-write order. The generator keeps, per processor, the FIFO of
// store nodes whose memory-writes are still pending, and per block the
// most recently serialized store; each memory-write(P,B) event pops P's
// oldest pending store and chains it after the block's previous store.
//
// At end of run, stores still queued are serialized by a deterministic
// completion (processors in index order, each FIFO in order) — legal
// because unserialized stores can have no inheritors: a processor cannot
// read its own pending stores (the out-queue-empty load condition) and no
// other processor can see them.
type Generator struct {
	pending map[trace.ProcID][]observer.NodeHandle
	last    map[trace.BlockID]observer.NodeHandle
	blocks  map[observer.NodeHandle]trace.BlockID
	procs   int
}

// NewGenerator returns a generator for a protocol with the given number of
// processors.
func NewGenerator(procs int) *Generator {
	return &Generator{
		pending: make(map[trace.ProcID][]observer.NodeHandle),
		last:    make(map[trace.BlockID]observer.NodeHandle),
		blocks:  make(map[observer.NodeHandle]trace.BlockID),
		procs:   procs,
	}
}

// OnStore queues the store for later serialization; no edges yet.
func (g *Generator) OnStore(h observer.NodeHandle, op trace.Op) observer.Update {
	g.pending[op.Proc] = append(g.pending[op.Proc], h)
	g.blocks[h] = op.Block
	return observer.Update{}
}

// OnInternal reacts to memory-write events, serializing the issuing
// processor's oldest pending store.
func (g *Generator) OnInternal(a protocol.Action) observer.Update {
	if a.Name != "memory-write" || len(a.Args) < 1 {
		return observer.Update{}
	}
	p := trace.ProcID(a.Args[0])
	return g.serializeHead(p)
}

func (g *Generator) serializeHead(p trace.ProcID) observer.Update {
	q := g.pending[p]
	if len(q) == 0 {
		return observer.Update{}
	}
	h := q[0]
	g.pending[p] = q[1:]
	b := g.blocks[h]
	delete(g.blocks, h)
	var u observer.Update
	if prev, ok := g.last[b]; ok {
		u.Edges = append(u.Edges, observer.STEdge{From: prev, To: h})
	} else {
		u.Firsts = append(u.Firsts, observer.FirstStore{Block: b, Node: h})
	}
	g.last[b] = h
	return u
}

// Finish serializes all still-pending stores deterministically.
func (g *Generator) Finish() observer.Update {
	var u observer.Update
	for p := trace.ProcID(1); int(p) <= g.procs; p++ {
		for len(g.pending[p]) > 0 {
			step := g.serializeHead(p)
			u.Edges = append(u.Edges, step.Edges...)
			u.Firsts = append(u.Firsts, step.Firsts...)
		}
	}
	return u
}

// Clone implements observer.CloneableGenerator.
func (g *Generator) Clone() observer.STOrderGenerator {
	out := NewGenerator(g.procs)
	for p, q := range g.pending {
		out.pending[p] = append([]observer.NodeHandle(nil), q...)
	}
	for b, h := range g.last {
		out.last[b] = h
	}
	for h, b := range g.blocks {
		out.blocks[h] = b
	}
	return out
}

// StateKey encodes the generator state with raw handles; the observer
// substitutes canonical IDs through the role-resolution hook.
func (g *Generator) StateKey() []byte {
	return g.StateKeyResolved(func(h observer.NodeHandle) int { return int(h) })
}

// StateKeyResolved implements observer.ResolvableGenerator.
func (g *Generator) StateKeyResolved(resolve func(observer.NodeHandle) int) []byte {
	var key []byte
	for p := trace.ProcID(1); int(p) <= g.procs; p++ {
		q := g.pending[p]
		key = binary.AppendUvarint(key, uint64(len(q)))
		for _, h := range q {
			key = binary.AppendUvarint(key, uint64(resolve(h)))
			key = binary.AppendUvarint(key, uint64(g.blocks[h]))
		}
	}
	blocks := make([]int, 0, len(g.last))
	for b := range g.last {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		key = binary.AppendUvarint(key, uint64(b))
		key = binary.AppendUvarint(key, uint64(resolve(g.last[trace.BlockID(b)])))
	}
	return key
}

// Roles implements observer.RoleGenerator: pending stores in (processor,
// FIFO) order, then per-block last serialized stores in block order.
func (g *Generator) Roles(visit func(observer.NodeHandle)) {
	for p := trace.ProcID(1); int(p) <= g.procs; p++ {
		for _, h := range g.pending[p] {
			visit(h)
		}
	}
	blocks := make([]int, 0, len(g.last))
	for b := range g.last {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		visit(g.last[trace.BlockID(b)])
	}
}

// Idle implements observer.IdleGenerator: Finish is a no-op exactly when
// no stores await serialization.
func (g *Generator) Idle() bool {
	for _, q := range g.pending {
		if len(q) > 0 {
			return false
		}
	}
	return true
}
