package writethrough

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/mc"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func observeAndCheck(t *testing.T, run *protocol.Run) error {
	t.Helper()
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		return err
	}
	c := checker.New(o.K())
	for _, sym := range stream {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return c.Finish()
}

func take(t *testing.T, r *protocol.Runner, want string) {
	t.Helper()
	for _, tr := range r.Enabled() {
		if tr.Action.String() == want {
			r.Take(tr)
			return
		}
	}
	t.Fatalf("action %q not enabled; run: %s", want, r.Run())
}

func TestNamesAndValidate(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	if m.Name() != "write-through" {
		t.Errorf("name = %q", m.Name())
	}
	if NewBuggy(m.P).Name() != "write-through-no-invalidate" {
		t.Error("buggy name wrong")
	}
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
	if m.Locations() != 2*(1+2) {
		t.Errorf("Locations = %d", m.Locations())
	}
}

func TestStoreInvalidatesOtherCopies(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "Fill(2,1)")
	take(t, r, "LD(P2,B1,⊥)")
	take(t, r, "ST(P1,B1,1)") // invalidates P2's copy
	// P2's only load path is now a refill: no stale ⊥-hit may be enabled.
	for _, tr := range r.Enabled() {
		if tr.Action.String() == "LD(P2,B1,⊥)" {
			t.Fatal("stale copy survived a write-through store")
		}
	}
	take(t, r, "Fill(2,1)")
	take(t, r, "LD(P2,B1,1)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("trace not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("rejected: %v", err)
	}
}

func TestWriteThroughStoreWithValidLine(t *testing.T) {
	// Store into a valid line: the value lands in the cache and propagates
	// to memory in the same transition (post-op copy semantics); a later
	// fill by another processor must inherit from it.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "Fill(1,1)")
	take(t, r, "ST(P1,B1,1)")
	take(t, r, "LD(P1,B1,1)")
	take(t, r, "Fill(2,1)")
	take(t, r, "LD(P2,B1,1)")
	run := r.Run()
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("rejected: %v", err)
	}
}

func TestRandomRunsObserveAndCheck(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 25; seed++ {
		run := protocol.RandomRun(m, 40, seed)
		if err := observeAndCheck(t, run); err != nil {
			t.Fatalf("seed %d: rejected: %v\nrun: %s", seed, err, run)
		}
	}
}

func TestRandomRunTracesAreSC(t *testing.T) {
	m := New(trace.Params{Procs: 3, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 8; seed++ {
		run := protocol.RandomRun(m, 30, seed)
		if len(run.Trace) > 14 {
			run.Trace = run.Trace[:14]
		}
		if !trace.HasSerialReordering(run.Trace) {
			t.Fatalf("seed %d: trace not SC: %s", seed, run.Trace)
		}
	}
}

func TestModelCheckerCatchesNoInvalidateBug(t *testing.T) {
	m := NewBuggy(trace.Params{Procs: 2, Blocks: 2, Values: 1})
	res := mc.Verify(m, mc.Options{MaxDepth: 10})
	if res.Verdict != mc.Violated {
		t.Fatalf("bug not caught: %s", res)
	}
	// BFS finds the shallowest rejection, which may be an annotation
	// artifact (an SC trace whose real-time witness is cyclic) — either
	// way the protocol is correctly NOT certified. Confirm a genuine
	// violation also exists by hand-driving the message-passing schedule.
	run, err := mc.Replay(m, res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shallowest rejection: %s (%v)", run, res.Err)

	r := protocol.NewRunner(m)
	take(t, r, "Fill(2,1)")   // P2 caches B1=⊥ (will go stale)
	take(t, r, "ST(P1,B1,1)") // bug: P2's copy survives
	take(t, r, "ST(P1,B2,1)") // flag
	take(t, r, "Fill(2,2)")
	take(t, r, "LD(P2,B2,1)") // P2 sees the flag...
	take(t, r, "LD(P2,B1,⊥)") // ...then reads stale data: not SC
	if trace.HasSerialReordering(r.Run().Trace) {
		t.Fatalf("expected non-SC trace: %s", r.Run().Trace)
	}
	if err := observeAndCheck(t, r.Run()); err == nil {
		t.Error("checker accepted the genuine violation run")
	}
}

func TestModelCheckerVerifiesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking in short mode")
	}
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 1})
	res := mc.Verify(m, mc.Options{MaxDepth: 12})
	if res.Verdict == mc.Violated {
		t.Fatalf("write-through flagged: %s", res)
	}
	t.Logf("%s", res)
}
