// Package writethrough implements a write-through, write-no-allocate
// cache protocol with an atomic bus: every store updates memory and
// invalidates all other cached copies in one bus transaction; loads fill
// the local cache from memory on a miss. Because stores are globally
// visible the instant they execute, the protocol is trivially in the
// class Γ with real-time ST ordering, making it the simplest *cached* SC
// protocol in the suite — one step up from serial memory, one step below
// MSI. It also comes with an injectable bug (stores that skip the
// invalidation broadcast) for the negative experiments.
//
// Location layout: memory 1..b; processor P's line for block B is
// b + (P-1)·b + B.
package writethrough

import (
	"encoding/binary"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// Protocol is the write-through bus protocol.
type Protocol struct {
	P trace.Params
	// SkipInvalidate injects the coherence bug: stores update memory but
	// leave other caches' stale copies valid.
	SkipInvalidate bool
}

// New returns a correct write-through protocol.
func New(p trace.Params) *Protocol { return &Protocol{P: p} }

// NewBuggy returns the variant whose stores skip invalidation.
func NewBuggy(p trace.Params) *Protocol { return &Protocol{P: p, SkipInvalidate: true} }

// Name implements protocol.Protocol.
func (m *Protocol) Name() string {
	if m.SkipInvalidate {
		return "write-through-no-invalidate"
	}
	return "write-through"
}

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol.
func (m *Protocol) Locations() int { return m.P.Blocks * (1 + m.P.Procs) }

// MemLoc returns block b's memory location.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// CacheLoc returns processor p's line location for block b.
func (m *Protocol) CacheLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + (int(p)-1)*m.P.Blocks + int(b)
}

type line struct {
	valid bool
	val   trace.Value
}

type state struct {
	mem   []trace.Value
	lines []line
}

func (s state) clone() state {
	n := state{mem: make([]trace.Value, len(s.mem)), lines: make([]line, len(s.lines))}
	copy(n.mem, s.mem)
	copy(n.lines, s.lines)
	return n
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, len(s.mem)+2*len(s.lines))
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, l := range s.lines {
		b := byte(0)
		if l.valid {
			b = 1
		}
		buf = append(buf, b)
		buf = binary.AppendUvarint(buf, uint64(l.val))
	}
	return string(buf)
}

func (m *Protocol) lineIdx(p trace.ProcID, b trace.BlockID) int {
	return (int(p)-1)*m.P.Blocks + int(b) - 1
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	return state{
		mem:   make([]trace.Value, m.P.Blocks+1),
		lines: make([]line, m.P.Procs*m.P.Blocks),
	}
}

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
			ln := s.lines[m.lineIdx(p, b)]
			if ln.valid {
				// Cache hit load.
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.LD(p, b, ln.val)),
					Next:   s,
					Loc:    m.CacheLoc(p, b),
				})
				// Eviction (clean by construction).
				next := s.clone()
				next.lines[m.lineIdx(p, b)] = line{}
				out = append(out, protocol.Transition{
					Action: protocol.Internal("Evict", int(p), int(b)),
					Next:   next,
					Copies: []protocol.Copy{{Dst: m.CacheLoc(p, b), Src: 0}},
				})
			} else {
				// Fill: copy memory into the cache.
				next := s.clone()
				next.lines[m.lineIdx(p, b)] = line{valid: true, val: s.mem[b]}
				out = append(out, protocol.Transition{
					Action: protocol.Internal("Fill", int(p), int(b)),
					Next:   next,
					Copies: []protocol.Copy{{Dst: m.CacheLoc(p, b), Src: m.MemLoc(b)}},
				})
			}
			// Write-through store: memory and own line updated, everyone
			// else invalidated (unless the bug is injected). Write-no-
			// allocate: the store only updates the local line if valid.
			for v := trace.Value(1); int(v) <= m.P.Values; v++ {
				next := s.clone()
				copies := []protocol.Copy{}
				next.mem[b] = v
				loc := m.MemLoc(b)
				if ln.valid {
					next.lines[m.lineIdx(p, b)].val = v
					loc = m.CacheLoc(p, b)
					copies = append(copies, protocol.Copy{Dst: m.MemLoc(b), Src: m.CacheLoc(p, b)})
				}
				if !m.SkipInvalidate {
					for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
						if q == p {
							continue
						}
						if s.lines[m.lineIdx(q, b)].valid {
							next.lines[m.lineIdx(q, b)] = line{}
							copies = append(copies, protocol.Copy{Dst: m.CacheLoc(q, b), Src: 0})
						}
					}
				}
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.ST(p, b, v)),
					Next:   next,
					Loc:    loc,
					Copies: copies,
				})
			}
		}
	}
	return out
}
