// Package directory implements a directory-based invalidation
// cache-coherence protocol in the style verified by Plakal, Sorin, Condon
// & Hill ("Lamport Clocks", SPAA 1998): a home node per block holds
// memory and a directory entry (Uncached / Shared with a sharer set /
// Exclusive with an owner), processors exchange explicit messages over an
// unordered interconnect (GetS, GetX, Fetch, FetchInv, Inv, InvAck, Data,
// DataEx, WBData), and writes are granted only after every sharer has
// acknowledged invalidation. Transactions are non-atomic — requests,
// invalidations, fetches and write-backs are all distinct network steps —
// which is exactly the structural feature that makes directory protocols
// the motivating verification target of the paper.
//
// The home is blocking per block: while a transaction is in flight for a
// block, later requests for it wait in the network. Each processor has at
// most one outstanding request.
//
// Location layout: memory 1..b; cache line of P for B: b + (P-1)·b + B;
// response slot of P (data in flight to P): b + p·b + P; write-back slot
// of P for B: b + p·b + p + (P-1)·b + B.
package directory

import (
	"encoding/binary"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// LineState is a cache line's state, including transient request states.
type LineState uint8

const (
	// Invalid lines hold no value.
	Invalid LineState = iota
	// SharedLn lines hold a readable copy.
	SharedLn
	// ModifiedLn lines hold the only valid, writable copy.
	ModifiedLn
	// WaitS marks a line awaiting a Data response (GetS issued).
	WaitS
	// WaitX marks a line awaiting a DataEx response (GetX issued).
	WaitX
)

// String names the line state.
func (s LineState) String() string {
	return [...]string{"I", "S", "M", "IS_D", "IM_D"}[s]
}

// DirState is a directory entry's state.
type DirState uint8

const (
	// Uncached: no cache holds the block; memory is current.
	Uncached DirState = iota
	// DirShared: the sharer set holds readable copies; memory is current.
	DirShared
	// DirExclusive: the owner holds the only (possibly dirty) copy.
	DirExclusive
	// BusyFetchS: awaiting the owner's write-back to satisfy a GetS.
	BusyFetchS
	// BusyInv: awaiting invalidation acks to satisfy a GetX.
	BusyInv
	// BusyFetchX: awaiting the owner's write-back to satisfy a GetX.
	BusyFetchX
)

// String names the directory state.
func (s DirState) String() string {
	return [...]string{"U", "S", "E", "busyS", "busyInv", "busyX"}[s]
}

// Protocol is the directory protocol.
type Protocol struct {
	P trace.Params
}

// New returns a directory protocol.
func New(p trace.Params) *Protocol { return &Protocol{P: p} }

// Name implements protocol.Protocol.
func (m *Protocol) Name() string { return "directory" }

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol.
func (m *Protocol) Locations() int {
	p, b := m.P.Procs, m.P.Blocks
	return b + p*b + p + p*b
}

// MemLoc returns block b's memory location.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// CacheLoc returns processor p's line location for block b.
func (m *Protocol) CacheLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + (int(p)-1)*m.P.Blocks + int(b)
}

// RespLoc returns processor p's in-flight data-response location.
func (m *Protocol) RespLoc(p trace.ProcID) int {
	return m.P.Blocks + m.P.Procs*m.P.Blocks + int(p)
}

// WBLoc returns processor p's write-back location for block b.
func (m *Protocol) WBLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + m.P.Procs*m.P.Blocks + m.P.Procs + (int(p)-1)*m.P.Blocks + int(b)
}

// line is a cache line.
type line struct {
	state LineState
	val   trace.Value
}

// dirEntry is a per-block directory entry.
type dirEntry struct {
	state     DirState
	sharers   uint32 // bitmask, bit p-1
	owner     trace.ProcID
	requester trace.ProcID
	acks      int8
}

// msgSet is the in-flight message state for one block: booleans per
// message kind and endpoint. The interconnect is unordered: any pending
// message may be consumed next.
type msgSet struct {
	getS, getX   uint32 // requests pending at home, bit per requester
	fetch        uint32 // Fetch(q) pending at owner q
	fetchInv     uint32
	inv          uint32 // Inv pending at sharer q
	invAck       int8   // acks in flight to home
	data, dataEx uint32 // responses in flight to requester
	wbData       uint32 // write-back from q in flight to home
}

type state struct {
	mem   []trace.Value
	lines []line
	dirs  []dirEntry
	msgs  []msgSet
	// outstanding request per processor (bitmask).
	outstanding uint32
	resp        []trace.Value // value in each processor's response slot
	wb          []trace.Value // value in each (processor, block) write-back slot
}

func (s state) clone() state {
	return state{
		mem:         append([]trace.Value(nil), s.mem...),
		lines:       append([]line(nil), s.lines...),
		dirs:        append([]dirEntry(nil), s.dirs...),
		msgs:        append([]msgSet(nil), s.msgs...),
		outstanding: s.outstanding,
		resp:        append([]trace.Value(nil), s.resp...),
		wb:          append([]trace.Value(nil), s.wb...),
	}
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, 256)
	u := func(vs ...uint64) {
		for _, v := range vs {
			buf = binary.AppendUvarint(buf, v)
		}
	}
	for _, v := range s.mem[1:] {
		u(uint64(v))
	}
	for _, l := range s.lines {
		u(uint64(l.state), uint64(l.val))
	}
	for _, d := range s.dirs[1:] {
		u(uint64(d.state), uint64(d.sharers), uint64(d.owner), uint64(d.requester), uint64(d.acks))
	}
	for _, ms := range s.msgs[1:] {
		u(uint64(ms.getS), uint64(ms.getX), uint64(ms.fetch), uint64(ms.fetchInv),
			uint64(ms.inv), uint64(ms.invAck), uint64(ms.data), uint64(ms.dataEx), uint64(ms.wbData))
	}
	u(uint64(s.outstanding))
	for _, v := range s.resp[1:] {
		u(uint64(v))
	}
	for _, v := range s.wb {
		u(uint64(v))
	}
	return string(buf)
}

func bit(p trace.ProcID) uint32 { return 1 << (uint(p) - 1) }

func (m *Protocol) lineIdx(p trace.ProcID, b trace.BlockID) int {
	return (int(p)-1)*m.P.Blocks + int(b) - 1
}

func (m *Protocol) wbIdx(p trace.ProcID, b trace.BlockID) int {
	return (int(p)-1)*m.P.Blocks + int(b) - 1
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	return state{
		mem:   make([]trace.Value, m.P.Blocks+1),
		lines: make([]line, m.P.Procs*m.P.Blocks),
		dirs:  make([]dirEntry, m.P.Blocks+1),
		msgs:  make([]msgSet, m.P.Blocks+1),
		resp:  make([]trace.Value, m.P.Procs+1),
		wb:    make([]trace.Value, m.P.Procs*m.P.Blocks),
	}
}

// act is shorthand for building internal actions.
func act(name string, args ...int) protocol.Action { return protocol.Internal(name, args...) }

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
			out = append(out, m.procTransitions(s, p, b)...)
		}
	}
	for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
		out = append(out, m.homeTransitions(s, b)...)
	}
	return out
}

// procTransitions are the processor-side moves for (p, b).
func (m *Protocol) procTransitions(s state, p trace.ProcID, b trace.BlockID) []protocol.Transition {
	var out []protocol.Transition
	li := m.lineIdx(p, b)
	ln := s.lines[li]
	ms := s.msgs[b]

	switch ln.state {
	case SharedLn, ModifiedLn:
		out = append(out, protocol.Transition{
			Action: protocol.MemOp(trace.LD(p, b, ln.val)),
			Next:   s,
			Loc:    m.CacheLoc(p, b),
		})
	case Invalid:
		if s.outstanding&bit(p) == 0 {
			for _, req := range []struct {
				kind string
			}{{"GetS"}, {"GetX"}} {
				next := s.clone()
				next.outstanding |= bit(p)
				if req.kind == "GetS" {
					next.lines[li].state = WaitS
					next.msgs[b].getS |= bit(p)
				} else {
					next.lines[li].state = WaitX
					next.msgs[b].getX |= bit(p)
				}
				out = append(out, protocol.Transition{
					Action: act(req.kind, int(p), int(b)),
					Next:   next,
				})
			}
		}
	}
	if ln.state == ModifiedLn {
		for v := trace.Value(1); int(v) <= m.P.Values; v++ {
			next := s.clone()
			next.lines[li].val = v
			out = append(out, protocol.Transition{
				Action: protocol.MemOp(trace.ST(p, b, v)),
				Next:   next,
				Loc:    m.CacheLoc(p, b),
			})
		}
	}
	// Upgrade from Shared: issue GetX (home will not re-send data to the
	// sharer's stale copy; the line waits for DataEx).
	if ln.state == SharedLn && s.outstanding&bit(p) == 0 {
		next := s.clone()
		next.outstanding |= bit(p)
		next.lines[li] = line{state: WaitX}
		next.msgs[b].getX |= bit(p)
		out = append(out, protocol.Transition{
			Action: act("GetX", int(p), int(b)),
			Next:   next,
			Copies: []protocol.Copy{{Dst: m.CacheLoc(p, b), Src: 0}},
		})
	}
	// Silent eviction of a Shared line.
	if ln.state == SharedLn {
		next := s.clone()
		next.lines[li] = line{}
		out = append(out, protocol.Transition{
			Action: act("EvictS", int(p), int(b)),
			Next:   next,
			Copies: []protocol.Copy{{Dst: m.CacheLoc(p, b), Src: 0}},
		})
	}
	// Eviction of a Modified line: write back (PutM), if the WB slot for
	// (p,b) is free.
	if ln.state == ModifiedLn && ms.wbData&bit(p) == 0 {
		next := s.clone()
		next.lines[li] = line{}
		next.msgs[b].wbData |= bit(p)
		next.wb[m.wbIdx(p, b)] = ln.val
		out = append(out, protocol.Transition{
			Action: act("PutM", int(p), int(b)),
			Next:   next,
			Copies: []protocol.Copy{
				{Dst: m.WBLoc(p, b), Src: m.CacheLoc(p, b)},
				{Dst: m.CacheLoc(p, b), Src: 0},
			},
		})
	}
	// Consume Inv: invalidate (possibly already evicted) and ack.
	if ms.inv&bit(p) != 0 {
		next := s.clone()
		next.msgs[b].inv &^= bit(p)
		next.msgs[b].invAck++
		copies := []protocol.Copy{}
		if ln.state == SharedLn {
			next.lines[li] = line{}
			copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: 0})
		}
		out = append(out, protocol.Transition{
			Action: act("RecvInv", int(p), int(b)),
			Next:   next,
			Copies: copies,
		})
	}
	// Consume Fetch: downgrade M to S, write data back; a stale Fetch
	// (line no longer Modified) is dropped — the matching write-back is
	// already in flight from PutM.
	if ms.fetch&bit(p) != 0 {
		next := s.clone()
		next.msgs[b].fetch &^= bit(p)
		var copies []protocol.Copy
		if ln.state == ModifiedLn && ms.wbData&bit(p) == 0 {
			next.lines[li].state = SharedLn
			next.msgs[b].wbData |= bit(p)
			next.wb[m.wbIdx(p, b)] = ln.val
			copies = append(copies, protocol.Copy{Dst: m.WBLoc(p, b), Src: m.CacheLoc(p, b)})
		}
		out = append(out, protocol.Transition{
			Action: act("RecvFetch", int(p), int(b)),
			Next:   next,
			Copies: copies,
		})
	}
	// Consume FetchInv: invalidate M, write data back.
	if ms.fetchInv&bit(p) != 0 {
		next := s.clone()
		next.msgs[b].fetchInv &^= bit(p)
		var copies []protocol.Copy
		if ln.state == ModifiedLn && ms.wbData&bit(p) == 0 {
			next.msgs[b].wbData |= bit(p)
			next.wb[m.wbIdx(p, b)] = ln.val
			copies = append(copies, protocol.Copy{Dst: m.WBLoc(p, b), Src: m.CacheLoc(p, b)})
			next.lines[li] = line{}
			copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: 0})
		}
		out = append(out, protocol.Transition{
			Action: act("RecvFetchInv", int(p), int(b)),
			Next:   next,
			Copies: copies,
		})
	}
	// Consume Data: fill the line Shared.
	if ms.data&bit(p) != 0 {
		next := s.clone()
		next.msgs[b].data &^= bit(p)
		next.outstanding &^= bit(p)
		next.lines[li] = line{state: SharedLn, val: s.resp[p]}
		next.resp[p] = 0
		out = append(out, protocol.Transition{
			Action: act("RecvData", int(p), int(b)),
			Next:   next,
			Copies: []protocol.Copy{
				{Dst: m.CacheLoc(p, b), Src: m.RespLoc(p)},
				{Dst: m.RespLoc(p), Src: 0},
			},
		})
	}
	// Consume DataEx: fill the line Modified.
	if ms.dataEx&bit(p) != 0 {
		next := s.clone()
		next.msgs[b].dataEx &^= bit(p)
		next.outstanding &^= bit(p)
		next.lines[li] = line{state: ModifiedLn, val: s.resp[p]}
		next.resp[p] = 0
		out = append(out, protocol.Transition{
			Action: act("RecvDataEx", int(p), int(b)),
			Next:   next,
			Copies: []protocol.Copy{
				{Dst: m.CacheLoc(p, b), Src: m.RespLoc(p)},
				{Dst: m.RespLoc(p), Src: 0},
			},
		})
	}
	return out
}

// homeTransitions are the home-node moves for block b.
func (m *Protocol) homeTransitions(s state, b trace.BlockID) []protocol.Transition {
	var out []protocol.Transition
	d := s.dirs[b]
	ms := s.msgs[b]

	// Process a PutM write-back when not busy: memory absorbs the data.
	if (d.state == DirExclusive || d.state == Uncached || d.state == DirShared) && ms.wbData != 0 {
		for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
			if ms.wbData&bit(q) == 0 {
				continue
			}
			next := s.clone()
			next.msgs[b].wbData &^= bit(q)
			next.mem[b] = s.wb[m.wbIdx(q, b)]
			next.wb[m.wbIdx(q, b)] = 0
			if d.state == DirExclusive && d.owner == q {
				next.dirs[b] = dirEntry{state: Uncached}
			}
			out = append(out, protocol.Transition{
				Action: act("HomeWB", int(q), int(b)),
				Next:   next,
				Copies: []protocol.Copy{
					{Dst: m.MemLoc(b), Src: m.WBLoc(q, b)},
					{Dst: m.WBLoc(q, b), Src: 0},
				},
			})
		}
	}

	// Process requests when the directory is not busy.
	if d.state == Uncached || d.state == DirShared || d.state == DirExclusive {
		for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
			if ms.getS&bit(p) != 0 {
				out = append(out, m.homeGetS(s, p, b))
			}
			if ms.getX&bit(p) != 0 {
				out = append(out, m.homeGetX(s, p, b))
			}
		}
	}

	// Collect invalidation acks.
	if d.state == BusyInv && ms.invAck > 0 {
		next := s.clone()
		next.msgs[b].invAck--
		next.dirs[b].acks--
		var copies []protocol.Copy
		if next.dirs[b].acks == 0 {
			// All sharers gone: grant exclusive data from memory.
			next.msgs[b].dataEx |= bit(d.requester)
			next.resp[d.requester] = s.mem[b]
			next.dirs[b] = dirEntry{state: DirExclusive, owner: d.requester}
			copies = append(copies, protocol.Copy{Dst: m.RespLoc(d.requester), Src: m.MemLoc(b)})
		}
		out = append(out, protocol.Transition{
			Action: act("HomeInvAck", int(b)),
			Next:   next,
			Copies: copies,
		})
	}

	// Absorb the owner's write-back while busy, completing the pending
	// request.
	if (d.state == BusyFetchS || d.state == BusyFetchX) && ms.wbData != 0 {
		for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
			if ms.wbData&bit(q) == 0 {
				continue
			}
			next := s.clone()
			next.msgs[b].wbData &^= bit(q)
			next.mem[b] = s.wb[m.wbIdx(q, b)]
			next.wb[m.wbIdx(q, b)] = 0
			copies := []protocol.Copy{
				{Dst: m.MemLoc(b), Src: m.WBLoc(q, b)},
				{Dst: m.RespLoc(d.requester), Src: m.WBLoc(q, b)},
				{Dst: m.WBLoc(q, b), Src: 0},
			}
			next.resp[d.requester] = next.mem[b]
			if d.state == BusyFetchS {
				next.msgs[b].data |= bit(d.requester)
				sharers := bit(d.requester)
				// The previous owner kept a Shared copy unless it had
				// already evicted (PutM): its line state tells which.
				if s.lines[m.lineIdx(q, b)].state == SharedLn {
					sharers |= bit(q)
				}
				next.dirs[b] = dirEntry{state: DirShared, sharers: sharers}
			} else {
				next.msgs[b].dataEx |= bit(d.requester)
				next.dirs[b] = dirEntry{state: DirExclusive, owner: d.requester}
			}
			out = append(out, protocol.Transition{
				Action: act("HomeFetchWB", int(q), int(b)),
				Next:   next,
				Copies: copies,
			})
		}
	}

	return out
}

// homeGetS processes a GetS(p,b) at a non-busy home.
func (m *Protocol) homeGetS(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	d := s.dirs[b]
	next := s.clone()
	next.msgs[b].getS &^= bit(p)
	var copies []protocol.Copy
	switch d.state {
	case Uncached, DirShared:
		next.msgs[b].data |= bit(p)
		next.resp[p] = s.mem[b]
		next.dirs[b].state = DirShared
		next.dirs[b].sharers |= bit(p)
		copies = append(copies, protocol.Copy{Dst: m.RespLoc(p), Src: m.MemLoc(b)})
	case DirExclusive:
		next.dirs[b] = dirEntry{state: BusyFetchS, owner: d.owner, requester: p}
		next.msgs[b].fetch |= bit(d.owner)
	}
	return protocol.Transition{
		Action: act("HomeGetS", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// homeGetX processes a GetX(p,b) at a non-busy home.
func (m *Protocol) homeGetX(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	d := s.dirs[b]
	next := s.clone()
	next.msgs[b].getX &^= bit(p)
	var copies []protocol.Copy
	switch d.state {
	case Uncached:
		next.msgs[b].dataEx |= bit(p)
		next.resp[p] = s.mem[b]
		next.dirs[b] = dirEntry{state: DirExclusive, owner: p}
		copies = append(copies, protocol.Copy{Dst: m.RespLoc(p), Src: m.MemLoc(b)})
	case DirShared:
		others := d.sharers &^ bit(p)
		if others == 0 {
			next.msgs[b].dataEx |= bit(p)
			next.resp[p] = s.mem[b]
			next.dirs[b] = dirEntry{state: DirExclusive, owner: p}
			copies = append(copies, protocol.Copy{Dst: m.RespLoc(p), Src: m.MemLoc(b)})
		} else {
			acks := int8(0)
			for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
				if others&bit(q) != 0 {
					next.msgs[b].inv |= bit(q)
					acks++
				}
			}
			next.dirs[b] = dirEntry{state: BusyInv, requester: p, acks: acks}
		}
	case DirExclusive:
		next.dirs[b] = dirEntry{state: BusyFetchX, owner: d.owner, requester: p}
		next.msgs[b].fetchInv |= bit(d.owner)
	}
	return protocol.Transition{
		Action: act("HomeGetX", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}
