package directory

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func take(t *testing.T, r *protocol.Runner, want string) {
	t.Helper()
	for _, tr := range r.Enabled() {
		if tr.Action.String() == want {
			r.Take(tr)
			return
		}
	}
	t.Fatalf("action %q not enabled; run: %s", want, r.Run())
}

func observeAndCheck(t *testing.T, run *protocol.Run) error {
	t.Helper()
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		return err
	}
	c := checker.New(o.K())
	for _, sym := range stream {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return c.Finish()
}

func TestStateStrings(t *testing.T) {
	if Invalid.String() != "I" || ModifiedLn.String() != "M" || WaitS.String() != "IS_D" {
		t.Error("line state names wrong")
	}
	if Uncached.String() != "U" || BusyInv.String() != "busyInv" {
		t.Error("dir state names wrong")
	}
}

func TestValidate(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
}

func TestFullReadWriteTransaction(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "GetX(1,1)")
	take(t, r, "HomeGetX(1,1)")
	take(t, r, "RecvDataEx(1,1)")
	take(t, r, "ST(P1,B1,1)")
	take(t, r, "LD(P1,B1,1)")
	// P2 reads: home fetches from P1, which downgrades to Shared.
	take(t, r, "GetS(2,1)")
	take(t, r, "HomeGetS(2,1)")
	take(t, r, "RecvFetch(1,1)")
	take(t, r, "HomeFetchWB(1,1)")
	take(t, r, "RecvData(2,1)")
	take(t, r, "LD(P2,B1,1)")
	take(t, r, "LD(P1,B1,1)") // previous owner kept a Shared copy
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("directory run not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("run rejected: %v", err)
	}
}

func TestInvalidationRoundTrip(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	// Both processors get Shared copies of ⊥.
	take(t, r, "GetS(1,1)")
	take(t, r, "HomeGetS(1,1)")
	take(t, r, "RecvData(1,1)")
	take(t, r, "GetS(2,1)")
	take(t, r, "HomeGetS(2,1)")
	take(t, r, "RecvData(2,1)")
	take(t, r, "LD(P1,B1,⊥)")
	take(t, r, "LD(P2,B1,⊥)")
	// P1 upgrades: P2 must be invalidated and ack before DataEx.
	take(t, r, "GetX(1,1)")
	take(t, r, "HomeGetX(1,1)")
	// P2 may still read its stale copy while the Inv is in flight.
	take(t, r, "LD(P2,B1,⊥)")
	take(t, r, "RecvInv(2,1)")
	take(t, r, "HomeInvAck(1)")
	take(t, r, "RecvDataEx(1,1)")
	take(t, r, "ST(P1,B1,2)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("invalidation run not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("run rejected: %v", err)
	}
}

func TestPutMRace(t *testing.T) {
	// Owner evicts (PutM) concurrently with a GetS: the home's busy-fetch
	// state is satisfied by the PutM write-back, and the stale Fetch is
	// dropped at the evicted owner.
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "GetX(1,1)")
	take(t, r, "HomeGetX(1,1)")
	take(t, r, "RecvDataEx(1,1)")
	take(t, r, "ST(P1,B1,1)")
	take(t, r, "GetS(2,1)")
	take(t, r, "PutM(1,1)")        // eviction races with the request
	take(t, r, "HomeGetS(2,1)")    // home still thinks P1 owns: sends Fetch
	take(t, r, "RecvFetch(1,1)")   // stale fetch dropped (line Invalid)
	take(t, r, "HomeFetchWB(1,1)") // PutM data satisfies the transaction
	take(t, r, "RecvData(2,1)")
	take(t, r, "LD(P2,B1,1)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("PutM race run not SC: %s", run.Trace)
	}
	if err := observeAndCheck(t, run); err != nil {
		t.Errorf("run rejected: %v", err)
	}
}

func TestRandomRunsObserveAndCheck(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 30; seed++ {
		run := protocol.RandomRun(m, 60, seed)
		if err := observeAndCheck(t, run); err != nil {
			t.Fatalf("seed %d: rejected: %v\nrun: %s", seed, err, run)
		}
	}
}

func TestRandomRunTracesAreSC(t *testing.T) {
	m := New(trace.Params{Procs: 3, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 8; seed++ {
		run := protocol.RandomRun(m, 50, seed)
		if len(run.Trace) > 14 {
			run.Trace = run.Trace[:14]
		}
		if !trace.HasSerialReordering(run.Trace) {
			t.Fatalf("seed %d: directory trace not SC: %s", seed, run.Trace)
		}
	}
}

func TestNoDeadlockOnRandomWalks(t *testing.T) {
	// Every reachable state within a random walk must either enable some
	// transition or be a legitimate end state; the directory should never
	// wedge (blocking home always eventually unblocked).
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 1})
	for seed := int64(0); seed < 20; seed++ {
		r := protocol.NewRunner(m)
		for i := 0; i < 80; i++ {
			en := r.Enabled()
			if len(en) == 0 {
				t.Fatalf("seed %d: deadlock after %s", seed, r.Run())
			}
			r.Take(en[int(seed+int64(i*7))%len(en)])
		}
	}
}
