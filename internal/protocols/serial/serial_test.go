package serial

import (
	"testing"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func TestBasics(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 3, Values: 2})
	if m.Name() != "serial" {
		t.Errorf("name = %q", m.Name())
	}
	if m.Locations() != 3 {
		t.Errorf("Locations = %d, want one per block", m.Locations())
	}
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
}

func TestEveryTraceIsSerial(t *testing.T) {
	// Serial memory's defining property: the identity order is always a
	// serial reordering.
	m := New(trace.Params{Procs: 3, Blocks: 2, Values: 3})
	for seed := int64(0); seed < 20; seed++ {
		run := protocol.RandomRun(m, 40, seed)
		if !run.Trace.IsSerial() {
			t.Fatalf("seed %d: non-serial trace: %s", seed, run.Trace)
		}
	}
}

func TestLoadsReflectLatestStore(t *testing.T) {
	m := New(trace.Params{Procs: 1, Blocks: 1, Values: 2})
	r := protocol.NewRunner(m)
	take := func(want string) {
		t.Helper()
		for _, tr := range r.Enabled() {
			if tr.Action.String() == want {
				r.Take(tr)
				return
			}
		}
		t.Fatalf("action %q not enabled", want)
	}
	take("LD(P1,B1,⊥)")
	take("ST(P1,B1,2)")
	take("LD(P1,B1,2)")
	take("ST(P1,B1,1)")
	take("LD(P1,B1,1)")
}

func TestTransitionCount(t *testing.T) {
	// p·b loads plus p·b·v stores from every state.
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 3})
	got := len(m.Transitions(m.Initial()))
	want := 2*2 + 2*2*3
	if got != want {
		t.Errorf("transitions = %d, want %d", got, want)
	}
}

func TestStateKeyDistinguishesMemory(t *testing.T) {
	m := New(trace.Params{Procs: 1, Blocks: 1, Values: 2})
	s0 := m.Initial()
	var s1 protocol.State
	for _, tr := range m.Transitions(s0) {
		if tr.Action.IsMem() && tr.Action.Op.IsStore() {
			s1 = tr.Next
			break
		}
	}
	if s0.Key() == s1.Key() {
		t.Error("store did not change the state key")
	}
}
