// Package serial implements the "serial memory" reference protocol: every
// memory operation acts instantaneously and atomically on a single shared
// memory array. It is the simplest member of the class Γ — each block's
// storage location is the block itself, every store is serialized in real
// time, and every load reads the current memory value — and serves as the
// base case for the verification experiments.
package serial

import (
	"encoding/binary"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// Memory is the serial-memory protocol. Location l holds block l's value,
// so L = b.
type Memory struct {
	P trace.Params
}

// New returns a serial memory with the given parameters.
func New(p trace.Params) *Memory { return &Memory{P: p} }

// Name implements protocol.Protocol.
func (m *Memory) Name() string { return "serial" }

// Params implements protocol.Protocol.
func (m *Memory) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol: one location per block.
func (m *Memory) Locations() int { return m.P.Blocks }

type state struct {
	mem []trace.Value // by block, 1-based; index 0 unused
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, len(s.mem)*2)
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return string(buf)
}

// Initial implements protocol.Protocol.
func (m *Memory) Initial() protocol.State {
	return state{mem: make([]trace.Value, m.P.Blocks+1)}
}

// Transitions implements protocol.Protocol: every store of every value and
// the (unique) current-value load of each block, for every processor.
func (m *Memory) Transitions(s protocol.State) []protocol.Transition {
	st := s.(state)
	var out []protocol.Transition
	for p := 1; p <= m.P.Procs; p++ {
		for b := 1; b <= m.P.Blocks; b++ {
			// Load returns the current memory value (possibly Bottom).
			out = append(out, protocol.Transition{
				Action: protocol.MemOp(trace.LD(trace.ProcID(p), trace.BlockID(b), st.mem[b])),
				Next:   st,
				Loc:    b,
			})
			for v := 1; v <= m.P.Values; v++ {
				next := state{mem: make([]trace.Value, len(st.mem))}
				copy(next.mem, st.mem)
				next.mem[b] = trace.Value(v)
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.ST(trace.ProcID(p), trace.BlockID(b), trace.Value(v))),
					Next:   next,
					Loc:    b,
				})
			}
		}
	}
	return out
}
