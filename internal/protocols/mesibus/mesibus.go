// Package mesibus implements a MESI snooping-bus cache-coherence protocol:
// MSI extended with an Exclusive state that a cache enters when a BusRd
// finds no other sharer, allowing the first subsequent store to proceed
// silently (no bus transaction). The silent E→M upgrade is the
// interesting wrinkle for verification: the store still serializes in
// real time, so the trivial ST-order generator remains sufficient, but
// the data path differs from MSI.
//
// Location layout matches msibus: locations 1..b are memory; processor
// P's line for block B is b + (P-1)·b + B.
package mesibus

import (
	"encoding/binary"
	"fmt"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// LineState is a cache line's MESI state.
type LineState uint8

const (
	// Invalid lines hold no value.
	Invalid LineState = iota
	// Shared lines hold a clean copy that other caches may also hold.
	Shared
	// Exclusive lines hold the only cached copy, clean w.r.t. memory.
	Exclusive
	// Modified lines hold the only valid copy, possibly newer than memory.
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Protocol is the MESI bus protocol.
type Protocol struct {
	P trace.Params
}

// New returns a MESI protocol.
func New(p trace.Params) *Protocol { return &Protocol{P: p} }

// Name implements protocol.Protocol.
func (m *Protocol) Name() string { return "mesi-bus" }

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol.
func (m *Protocol) Locations() int { return m.P.Blocks * (1 + m.P.Procs) }

// MemLoc returns block b's memory location.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// CacheLoc returns processor p's line location for block b.
func (m *Protocol) CacheLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + (int(p)-1)*m.P.Blocks + int(b)
}

type line struct {
	state LineState
	val   trace.Value
}

type state struct {
	mem   []trace.Value
	lines []line
}

func (s state) clone() state {
	n := state{mem: make([]trace.Value, len(s.mem)), lines: make([]line, len(s.lines))}
	copy(n.mem, s.mem)
	copy(n.lines, s.lines)
	return n
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, len(s.mem)+3*len(s.lines))
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, l := range s.lines {
		buf = append(buf, byte(l.state))
		buf = binary.AppendUvarint(buf, uint64(l.val))
	}
	return string(buf)
}

func (m *Protocol) lineIdx(p trace.ProcID, b trace.BlockID) int {
	return (int(p)-1)*m.P.Blocks + int(b) - 1
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	return state{
		mem:   make([]trace.Value, m.P.Blocks+1),
		lines: make([]line, m.P.Procs*m.P.Blocks),
	}
}

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
			ln := s.lines[m.lineIdx(p, b)]
			if ln.state != Invalid {
				// Cache hit load from S, E or M.
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.LD(p, b, ln.val)),
					Next:   s,
					Loc:    m.CacheLoc(p, b),
				})
				out = append(out, m.evict(s, p, b))
			}
			if ln.state == Invalid {
				out = append(out, m.busRd(s, p, b))
				out = append(out, m.busRdX(s, p, b))
			}
			if ln.state == Shared {
				out = append(out, m.busRdX(s, p, b))
			}
			if ln.state == Exclusive || ln.state == Modified {
				// Store hit: E upgrades to M silently.
				for v := trace.Value(1); int(v) <= m.P.Values; v++ {
					next := s.clone()
					next.lines[m.lineIdx(p, b)] = line{state: Modified, val: v}
					out = append(out, protocol.Transition{
						Action: protocol.MemOp(trace.ST(p, b, v)),
						Next:   next,
						Loc:    m.CacheLoc(p, b),
					})
				}
			}
		}
	}
	return out
}

// busRd obtains a copy: Exclusive when no other cache holds the line,
// Shared otherwise. A Modified owner supplies data and writes back.
func (m *Protocol) busRd(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	var copies []protocol.Copy
	src := m.MemLoc(b)
	anyOther := false
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q == p {
			continue
		}
		qi := m.lineIdx(q, b)
		switch s.lines[qi].state {
		case Modified:
			anyOther = true
			src = m.CacheLoc(q, b)
			next.mem[b] = s.lines[qi].val
			next.lines[qi].state = Shared
			copies = append(copies, protocol.Copy{Dst: m.MemLoc(b), Src: m.CacheLoc(q, b)})
		case Exclusive:
			anyOther = true
			next.lines[qi].state = Shared
		case Shared:
			anyOther = true
		}
	}
	li := m.lineIdx(p, b)
	if anyOther {
		next.lines[li].state = Shared
	} else {
		next.lines[li].state = Exclusive
	}
	if src == m.MemLoc(b) {
		next.lines[li].val = s.mem[b]
	} else {
		next.lines[li].val = s.lines[src-m.P.Blocks-1].val
	}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: src})
	return protocol.Transition{
		Action: protocol.Internal("BusRd", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// busRdX obtains exclusive ownership, invalidating all other copies.
func (m *Protocol) busRdX(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	var copies []protocol.Copy
	src := m.MemLoc(b)
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q == p {
			continue
		}
		qi := m.lineIdx(q, b)
		if s.lines[qi].state == Modified {
			src = m.CacheLoc(q, b)
		}
		if s.lines[qi].state != Invalid {
			next.lines[qi] = line{}
			copies = append(copies, protocol.Copy{Dst: m.CacheLoc(q, b), Src: 0})
		}
	}
	li := m.lineIdx(p, b)
	next.lines[li].state = Modified
	if src == m.MemLoc(b) {
		next.lines[li].val = s.mem[b]
	} else {
		next.lines[li].val = s.lines[src-m.P.Blocks-1].val
	}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: src})
	return protocol.Transition{
		Action: protocol.Internal("BusRdX", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// evict drops a line, writing Modified data back first.
func (m *Protocol) evict(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	li := m.lineIdx(p, b)
	var copies []protocol.Copy
	if s.lines[li].state == Modified {
		next.mem[b] = s.lines[li].val
		copies = append(copies, protocol.Copy{Dst: m.MemLoc(b), Src: m.CacheLoc(p, b)})
	}
	next.lines[li] = line{}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: 0})
	return protocol.Transition{
		Action: protocol.Internal("Evict", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}
