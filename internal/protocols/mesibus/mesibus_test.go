package mesibus

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func take(t *testing.T, r *protocol.Runner, want string) {
	t.Helper()
	for _, tr := range r.Enabled() {
		if tr.Action.String() == want {
			r.Take(tr)
			return
		}
	}
	t.Fatalf("action %q not enabled", want)
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
}

func TestExclusiveOnSoleReader(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 1})
	r := protocol.NewRunner(m)
	take(t, r, "BusRd(1,1)")
	// P1 holds the line Exclusive: a silent store must now be enabled
	// without any further bus transaction.
	found := false
	for _, tr := range r.Enabled() {
		if tr.Action.String() == "ST(P1,B1,1)" {
			found = true
		}
	}
	if !found {
		t.Fatal("silent E-state store not enabled after sole BusRd")
	}
	// A second reader downgrades both to Shared: afterwards P2 must not be
	// able to store without a bus transaction.
	take(t, r, "BusRd(2,1)")
	for _, tr := range r.Enabled() {
		if tr.Action.IsMem() && tr.Action.Op.IsStore() {
			t.Fatalf("store %s enabled from Shared", tr.Action)
		}
	}
}

func TestSilentUpgradeRunIsSC(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	r := protocol.NewRunner(m)
	take(t, r, "BusRd(1,1)")
	take(t, r, "ST(P1,B1,1)") // silent E→M
	take(t, r, "LD(P1,B1,1)")
	take(t, r, "BusRd(2,1)") // P1 writes back, both Shared
	take(t, r, "LD(P2,B1,1)")
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("MESI run not SC: %s", run.Trace)
	}
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checker.Check(stream, o.K()); err != nil {
		t.Errorf("silent-upgrade run rejected: %v", err)
	}
}

func TestRandomRunsObserveAndCheck(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 25; seed++ {
		run := protocol.RandomRun(m, 40, seed)
		stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
		if err != nil {
			t.Fatalf("seed %d: observer error: %v\nrun: %s", seed, err, run)
		}
		if err := checker.Check(stream, o.K()); err != nil {
			t.Fatalf("seed %d: checker rejected MESI run: %v\nrun: %s", seed, err, run)
		}
	}
}

func TestRandomRunTracesAreSC(t *testing.T) {
	m := New(trace.Params{Procs: 3, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 8; seed++ {
		run := protocol.RandomRun(m, 30, seed)
		if len(run.Trace) > 14 {
			run.Trace = run.Trace[:14]
		}
		if !trace.HasSerialReordering(run.Trace) {
			t.Fatalf("seed %d: MESI trace not SC: %s", seed, run.Trace)
		}
	}
}

func TestValidate(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
}
