// Package msibus implements an MSI snooping-bus cache-coherence protocol:
// every processor has a private cache with one line per block in state
// Modified, Shared or Invalid, and bus transactions (BusRd, BusRdX,
// eviction, writeback) are atomic global steps. This is the classic
// textbook protocol family the paper's Section 4 arguments target: values
// live in explicit storage locations (memory plus cache lines), all data
// movement is copies between locations, and stores serialize in real time
// — so the trivial ST-order generator suffices.
//
// Location layout: locations 1..b are memory; location of processor P's
// line for block B is b + (P-1)·b + B.
package msibus

import (
	"encoding/binary"
	"fmt"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// LineState is a cache line's MSI state.
type LineState uint8

const (
	// Invalid lines hold no value.
	Invalid LineState = iota
	// Shared lines hold a clean copy that other caches may share.
	Shared
	// Modified lines hold the only valid copy, possibly newer than memory.
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Bug selects an injected coherence defect for the negative experiments.
type Bug uint8

const (
	// NoBug is the correct protocol.
	NoBug Bug = iota
	// BugLostWriteback drops Modified lines on eviction without writing
	// them back, losing stores.
	BugLostWriteback
	// BugNoInvalidate lets BusRdX skip invalidating other caches' Shared
	// copies, allowing stale reads.
	BugNoInvalidate
)

// String names the bug for protocol naming.
func (b Bug) String() string {
	switch b {
	case NoBug:
		return ""
	case BugLostWriteback:
		return "lost-writeback"
	case BugNoInvalidate:
		return "no-invalidate"
	default:
		return fmt.Sprintf("bug-%d", uint8(b))
	}
}

// Protocol is the MSI bus protocol, optionally with an injected bug.
type Protocol struct {
	P   trace.Params
	Bug Bug
}

// New returns a correct MSI protocol.
func New(p trace.Params) *Protocol { return &Protocol{P: p} }

// NewBuggy returns an MSI protocol with the given defect injected.
func NewBuggy(p trace.Params, bug Bug) *Protocol { return &Protocol{P: p, Bug: bug} }

// Name implements protocol.Protocol.
func (m *Protocol) Name() string {
	if m.Bug == NoBug {
		return "msi-bus"
	}
	return "msi-bus-" + m.Bug.String()
}

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol: memory plus one line per
// (processor, block).
func (m *Protocol) Locations() int { return m.P.Blocks * (1 + m.P.Procs) }

// MemLoc returns the storage location of block b's memory cell.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// CacheLoc returns the storage location of processor p's line for block b.
func (m *Protocol) CacheLoc(p trace.ProcID, b trace.BlockID) int {
	return m.P.Blocks + (int(p)-1)*m.P.Blocks + int(b)
}

// line is one cache line's state and value.
type line struct {
	state LineState
	val   trace.Value
}

// state is the protocol's global state: memory plus all cache lines.
type state struct {
	mem   []trace.Value // by block, 1-based
	lines []line        // by (proc-1)*blocks + (block-1)
}

func (s state) clone() state {
	n := state{mem: make([]trace.Value, len(s.mem)), lines: make([]line, len(s.lines))}
	copy(n.mem, s.mem)
	copy(n.lines, s.lines)
	return n
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, len(s.mem)+3*len(s.lines))
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, l := range s.lines {
		buf = append(buf, byte(l.state))
		buf = binary.AppendUvarint(buf, uint64(l.val))
	}
	return string(buf)
}

func (m *Protocol) lineIdx(p trace.ProcID, b trace.BlockID) int {
	return (int(p)-1)*m.P.Blocks + int(b) - 1
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	return state{
		mem:   make([]trace.Value, m.P.Blocks+1),
		lines: make([]line, m.P.Procs*m.P.Blocks),
	}
}

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
			ln := s.lines[m.lineIdx(p, b)]
			switch ln.state {
			case Shared, Modified:
				// Cache hit load.
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.LD(p, b, ln.val)),
					Next:   s,
					Loc:    m.CacheLoc(p, b),
				})
			case Invalid:
				// BusRd: obtain a Shared copy. If another cache holds the
				// line Modified, it supplies the data and writes back.
				out = append(out, m.busRd(s, p, b))
				// BusRdX: obtain exclusive ownership for a store.
				out = append(out, m.busRdX(s, p, b))
			}
			if ln.state == Modified {
				// Store hit: write the cache line in place.
				for v := trace.Value(1); int(v) <= m.P.Values; v++ {
					next := s.clone()
					next.lines[m.lineIdx(p, b)].val = v
					out = append(out, protocol.Transition{
						Action: protocol.MemOp(trace.ST(p, b, v)),
						Next:   next,
						Loc:    m.CacheLoc(p, b),
					})
				}
			}
			if ln.state == Shared {
				// Upgrade to Modified (BusRdX from Shared).
				out = append(out, m.busRdX(s, p, b))
			}
			if ln.state != Invalid {
				// Eviction.
				out = append(out, m.evict(s, p, b))
			}
		}
	}
	return out
}

// busRd is the shared-read bus transaction for (p, b).
func (m *Protocol) busRd(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	var copies []protocol.Copy
	src := m.MemLoc(b)
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q == p {
			continue
		}
		if s.lines[m.lineIdx(q, b)].state == Modified {
			// Owner supplies data and writes back; it downgrades to Shared.
			src = m.CacheLoc(q, b)
			next.mem[b] = s.lines[m.lineIdx(q, b)].val
			next.lines[m.lineIdx(q, b)].state = Shared
			copies = append(copies, protocol.Copy{Dst: m.MemLoc(b), Src: m.CacheLoc(q, b)})
		}
	}
	li := m.lineIdx(p, b)
	next.lines[li].state = Shared
	if src == m.MemLoc(b) {
		next.lines[li].val = s.mem[b]
	} else {
		next.lines[li].val = s.lines[src-m.P.Blocks-1].val
	}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: src})
	return protocol.Transition{
		Action: protocol.Internal("BusRd", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// busRdX is the exclusive-read bus transaction for (p, b).
func (m *Protocol) busRdX(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	var copies []protocol.Copy
	src := m.MemLoc(b)
	for q := trace.ProcID(1); int(q) <= m.P.Procs; q++ {
		if q == p {
			continue
		}
		qi := m.lineIdx(q, b)
		switch s.lines[qi].state {
		case Modified:
			// Owner supplies data; its copy is invalidated.
			src = m.CacheLoc(q, b)
			next.lines[qi] = line{}
			copies = append(copies, protocol.Copy{Dst: m.CacheLoc(q, b), Src: 0})
		case Shared:
			if m.Bug != BugNoInvalidate {
				next.lines[qi] = line{}
				copies = append(copies, protocol.Copy{Dst: m.CacheLoc(q, b), Src: 0})
			}
		}
	}
	li := m.lineIdx(p, b)
	next.lines[li].state = Modified
	if src == m.MemLoc(b) {
		next.lines[li].val = s.mem[b]
	} else {
		next.lines[li].val = s.lines[src-m.P.Blocks-1].val
	}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: src})
	return protocol.Transition{
		Action: protocol.Internal("BusRdX", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}

// evict drops a line, writing back Modified data unless the lost-writeback
// bug is injected.
func (m *Protocol) evict(s state, p trace.ProcID, b trace.BlockID) protocol.Transition {
	next := s.clone()
	li := m.lineIdx(p, b)
	var copies []protocol.Copy
	if s.lines[li].state == Modified && m.Bug != BugLostWriteback {
		next.mem[b] = s.lines[li].val
		copies = append(copies, protocol.Copy{Dst: m.MemLoc(b), Src: m.CacheLoc(p, b)})
	}
	next.lines[li] = line{}
	copies = append(copies, protocol.Copy{Dst: m.CacheLoc(p, b), Src: 0})
	return protocol.Transition{
		Action: protocol.Internal("Evict", int(p), int(b)),
		Next:   next,
		Copies: copies,
	}
}
