package msibus

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func TestStateAndBugStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("line state names wrong")
	}
	if NoBug.String() != "" || BugLostWriteback.String() != "lost-writeback" {
		t.Error("bug names wrong")
	}
	if New(trace.Params{Procs: 2, Blocks: 1, Values: 1}).Name() != "msi-bus" {
		t.Error("protocol name wrong")
	}
	if NewBuggy(trace.Params{Procs: 2, Blocks: 1, Values: 1}, BugNoInvalidate).Name() != "msi-bus-no-invalidate" {
		t.Error("buggy protocol name wrong")
	}
}

func TestLocationLayout(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 3, Values: 2})
	if m.Locations() != 3*(1+2) {
		t.Errorf("Locations = %d", m.Locations())
	}
	if m.MemLoc(2) != 2 {
		t.Errorf("MemLoc(2) = %d", m.MemLoc(2))
	}
	if m.CacheLoc(1, 1) != 4 || m.CacheLoc(2, 3) != 9 {
		t.Errorf("CacheLoc wrong: %d %d", m.CacheLoc(1, 1), m.CacheLoc(2, 3))
	}
}

func TestValidateTransitions(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
	// Also from a state with cached data.
	r := protocol.NewRunner(m)
	for i := 0; i < 10; i++ {
		en := r.Enabled()
		if len(en) == 0 {
			break
		}
		r.Take(en[i%len(en)])
		if err := protocol.Validate(m, r.State()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInitialHasNoHits(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 1, Values: 1})
	for _, tr := range m.Transitions(m.Initial()) {
		if tr.Action.IsMem() {
			t.Errorf("memory op %s enabled with all lines Invalid", tr.Action)
		}
	}
}

func TestRandomRunsObserveAndCheck(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 25; seed++ {
		run := protocol.RandomRun(m, 40, seed)
		stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
		if err != nil {
			t.Fatalf("seed %d: observer error: %v\nrun: %s", seed, err, run)
		}
		if err := checker.Check(stream, o.K()); err != nil {
			t.Fatalf("seed %d: checker rejected MSI run: %v\nrun: %s", seed, err, run)
		}
	}
}

func TestRandomRunTracesAreSC(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 10; seed++ {
		run := protocol.RandomRun(m, 30, seed)
		if len(run.Trace) > 14 {
			run.Trace = run.Trace[:14] // keep the exact search tractable
		}
		if !trace.HasSerialReordering(run.Trace) {
			t.Fatalf("seed %d: MSI trace not SC: %s", seed, run.Trace)
		}
	}
}

// driveScript executes a hand-picked sequence of actions by matching
// action strings, failing the test if an action is not enabled.
func driveScript(t *testing.T, m *Protocol, actions []string) *protocol.Run {
	t.Helper()
	r := protocol.NewRunner(m)
	for _, want := range actions {
		found := false
		for _, tr := range r.Enabled() {
			if tr.Action.String() == want {
				r.Take(tr)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("action %q not enabled; run so far: %s", want, r.Run())
		}
	}
	return r.Run()
}

func TestLostWritebackBugProducesNonSCTrace(t *testing.T) {
	m := NewBuggy(trace.Params{Procs: 2, Blocks: 1, Values: 2}, BugLostWriteback)
	// P1 stores 1 (writes back properly via BusRd by P2 reading it), then
	// P1 stores 2 and evicts, losing the store; P1 then reads stale 1
	// after its own store of 2: not SC.
	run := driveScript(t, m, []string{
		"BusRdX(1,1)",
		"ST(P1,B1,1)",
		"BusRd(2,1)", // P2 reads: P1 writes back 1, both Shared
		"LD(P2,B1,1)",
		"BusRdX(1,1)", // P1 regains M (invalidates P2)
		"ST(P1,B1,2)",
		"Evict(1,1)", // lost writeback: memory still 1
		"BusRd(1,1)",
		"LD(P1,B1,1)", // P1 sees 1 after storing 2: violation
	})
	if trace.HasSerialReordering(run.Trace) {
		t.Fatalf("expected non-SC trace, got SC: %s", run.Trace)
	}
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		t.Fatalf("observer error: %v", err)
	}
	if err := checker.Check(stream, o.K()); err == nil {
		t.Error("checker accepted a non-SC run")
	}
}

func TestNoInvalidateBugProducesNonSCTrace(t *testing.T) {
	m := NewBuggy(trace.Params{Procs: 2, Blocks: 2, Values: 1}, BugNoInvalidate)
	// Message-passing violation: P2 keeps a stale Shared copy of block 1
	// while P1 stores to block 1 then block 2; P2 reads the new block 2
	// value, then the stale block 1 value.
	run := driveScript(t, m, []string{
		"BusRd(2,1)",  // P2 caches B1=⊥ (stale-to-be)
		"BusRdX(1,1)", // bug: P2's Shared copy survives
		"ST(P1,B1,1)",
		"BusRdX(1,2)",
		"ST(P1,B2,1)",
		"Evict(1,2)", // write B2 back to memory
		"BusRd(2,2)",
		"LD(P2,B2,1)", // P2 sees the flag
		"LD(P2,B1,⊥)", // then reads stale ⊥: violation
	})
	if trace.HasSerialReordering(run.Trace) {
		t.Fatalf("expected non-SC trace, got SC: %s", run.Trace)
	}
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		t.Fatalf("observer error: %v", err)
	}
	if err := checker.Check(stream, o.K()); err == nil {
		t.Error("checker accepted a non-SC run")
	}
}
