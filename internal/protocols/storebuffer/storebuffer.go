// Package storebuffer implements a TSO-style memory system: each processor
// has a FIFO store buffer; stores enter the buffer and drain to memory
// asynchronously, and loads forward from the youngest buffered store to
// the same block before falling back to memory. This protocol is NOT
// sequentially consistent — the classic store-buffering litmus outcome
// (both processors read the other's stale value) is reachable — and it is
// the repository's canonical negative case: the observer/checker method
// must reject some run.
//
// Location layout: locations 1..b are memory; buffer slot i (0-based) of
// processor P is b + (P-1)·cap + i + 1.
package storebuffer

import (
	"encoding/binary"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// Protocol is the store-buffer machine.
type Protocol struct {
	P   trace.Params
	Cap int // store buffer capacity per processor
	// Fenced gates every load on an empty own buffer — the effect of a
	// full fence before each load. With fencing the machine is
	// sequentially consistent again: every operation serializes at its
	// memory-access instant (drain time for stores, read time for loads)
	// in an order consistent with each processor's program order.
	Fenced bool
}

// New returns a store-buffer protocol with per-processor capacity cap.
func New(p trace.Params, cap int) *Protocol {
	if cap < 1 {
		cap = 1
	}
	return &Protocol{P: p, Cap: cap}
}

// NewFenced returns the fenced (sequentially consistent) variant.
func NewFenced(p trace.Params, cap int) *Protocol {
	m := New(p, cap)
	m.Fenced = true
	return m
}

// Name implements protocol.Protocol.
func (m *Protocol) Name() string {
	if m.Fenced {
		return "store-buffer-fenced"
	}
	return "store-buffer"
}

// Params implements protocol.Protocol.
func (m *Protocol) Params() trace.Params { return m.P }

// Locations implements protocol.Protocol.
func (m *Protocol) Locations() int { return m.P.Blocks + m.P.Procs*m.Cap }

// MemLoc returns block b's memory location.
func (m *Protocol) MemLoc(b trace.BlockID) int { return int(b) }

// SlotLoc returns the location of processor p's buffer slot i (0-based).
func (m *Protocol) SlotLoc(p trace.ProcID, i int) int {
	return m.P.Blocks + (int(p)-1)*m.Cap + i + 1
}

type bufEntry struct {
	block trace.BlockID
	val   trace.Value
}

type state struct {
	mem  []trace.Value
	bufs [][]bufEntry // FIFO per processor, head at index 0
}

func (s state) clone() state {
	n := state{mem: make([]trace.Value, len(s.mem)), bufs: make([][]bufEntry, len(s.bufs))}
	copy(n.mem, s.mem)
	for i, b := range s.bufs {
		n.bufs[i] = append([]bufEntry(nil), b...)
	}
	return n
}

// Key implements protocol.State.
func (s state) Key() string {
	buf := make([]byte, 0, 64)
	for _, v := range s.mem[1:] {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for _, q := range s.bufs[1:] {
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		for _, e := range q {
			buf = binary.AppendUvarint(buf, uint64(e.block))
			buf = binary.AppendUvarint(buf, uint64(e.val))
		}
	}
	return string(buf)
}

// Initial implements protocol.Protocol.
func (m *Protocol) Initial() protocol.State {
	return state{
		mem:  make([]trace.Value, m.P.Blocks+1),
		bufs: make([][]bufEntry, m.P.Procs+1),
	}
}

// Transitions implements protocol.Protocol.
func (m *Protocol) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(state)
	var out []protocol.Transition
	for p := trace.ProcID(1); int(p) <= m.P.Procs; p++ {
		buf := s.bufs[p]
		// Stores append to the buffer while there is room. The new entry
		// occupies slot len(buf).
		if len(buf) < m.Cap {
			for v := trace.Value(1); int(v) <= m.P.Values; v++ {
				for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
					next := s.clone()
					next.bufs[p] = append(next.bufs[p], bufEntry{block: b, val: v})
					out = append(out, protocol.Transition{
						Action: protocol.MemOp(trace.ST(p, b, v)),
						Next:   next,
						Loc:    m.SlotLoc(p, len(buf)),
					})
				}
			}
		}
		// Drain: the head entry writes to memory; remaining entries shift
		// down one slot (each shift is a location copy).
		if len(buf) > 0 {
			next := s.clone()
			head := next.bufs[p][0]
			next.bufs[p] = next.bufs[p][1:]
			next.mem[head.block] = head.val
			copies := []protocol.Copy{{Dst: m.MemLoc(head.block), Src: m.SlotLoc(p, 0)}}
			for i := 1; i < len(buf); i++ {
				copies = append(copies, protocol.Copy{Dst: m.SlotLoc(p, i-1), Src: m.SlotLoc(p, i)})
			}
			copies = append(copies, protocol.Copy{Dst: m.SlotLoc(p, len(buf)-1), Src: 0})
			out = append(out, protocol.Transition{
				Action: protocol.Internal("Drain", int(p)),
				Next:   next,
				Copies: copies,
			})
		}
		// Loads: forward from the youngest buffered store to the block, or
		// read memory. The fenced variant stalls loads until the buffer
		// has drained.
		if !m.Fenced || len(buf) == 0 {
			for b := trace.BlockID(1); int(b) <= m.P.Blocks; b++ {
				loc := m.MemLoc(b)
				val := s.mem[b]
				for i := len(buf) - 1; i >= 0; i-- {
					if buf[i].block == b {
						loc = m.SlotLoc(p, i)
						val = buf[i].val
						break
					}
				}
				out = append(out, protocol.Transition{
					Action: protocol.MemOp(trace.LD(p, b, val)),
					Next:   s,
					Loc:    loc,
				})
			}
		}
	}
	return out
}
