package storebuffer_test

// External test package: these tests go through the registry, which
// imports storebuffer, so they cannot live in the internal test package.

import (
	"testing"

	"scverify/internal/mc"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/sctest"
	"scverify/internal/trace"
)

func TestFencedVariantIsSC(t *testing.T) {
	tgt, err := registry.Build("storebuffer-fenced",
		registry.Options{Params: trace.Params{Procs: 2, Blocks: 2, Values: 1}, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Verify(tgt.Protocol, mc.Options{
		Generator: tgt.Generator,
		PoolSize:  tgt.PoolSize,
		MaxDepth:  8,
	})
	if res.Verdict == mc.Violated {
		t.Fatalf("fenced store buffer flagged: %s", res)
	}
	t.Logf("%s", res)
	// Cross-check with random testing: no rejections, no soundness breaks.
	camp := sctest.Campaign(tgt, sctest.Config{Runs: 200, Steps: 14, Seed: 9, Exact: true})
	if camp.Rejected != 0 || camp.SoundnessBreaks != 0 {
		t.Fatalf("fenced campaign: %s (first: %v)", camp, camp.FirstCause)
	}
}

func TestFencedDrainReorderAcrossProcsAccepted(t *testing.T) {
	// P1 stores first in trace order but P2's store drains first: the
	// drain-order generator must certify the run (the real-time one
	// cannot).
	tgt, err := registry.Build("storebuffer-fenced",
		registry.Options{Params: trace.Params{Procs: 3, Blocks: 1, Values: 2}, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := protocol.NewRunner(tgt.Protocol)
	for _, want := range []string{
		"ST(P1,B1,1)", "ST(P2,B1,2)",
		"Drain(2)", "LD(P3,B1,2)",
		"Drain(1)", "LD(P3,B1,1)",
	} {
		found := false
		for _, tr := range r.Enabled() {
			if tr.Action.String() == want {
				r.Take(tr)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("action %q not enabled", want)
		}
	}
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("premise: trace should be SC: %s", run.Trace)
	}
	if err := sctest.CheckRun(run, tgt); err != nil {
		t.Errorf("drain-order generator rejected: %v", err)
	}
	// And the real-time generator must reject the same run.
	rt := tgt
	rt.Generator = func() observer.STOrderGenerator { return observer.NewRealTime() }
	if err := sctest.CheckRun(run, rt); err == nil {
		t.Error("real-time generator accepted the drain-reordered run")
	}
}
