package storebuffer

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/mc"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

func TestLocationsAndValidate(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 2}, 2)
	if m.Locations() != 2+2*2 {
		t.Errorf("Locations = %d", m.Locations())
	}
	if err := protocol.Validate(m, m.Initial()); err != nil {
		t.Fatal(err)
	}
	if New(trace.Params{Procs: 1, Blocks: 1, Values: 1}, 0).Cap != 1 {
		t.Error("cap floor not applied")
	}
}

// sbLitmus drives the classic store-buffering litmus: P1 stores x, P2
// stores y, both loads see the other block's initial ⊥ — impossible under
// SC, allowed by TSO.
func sbLitmus(t *testing.T, m *Protocol) *protocol.Run {
	t.Helper()
	r := protocol.NewRunner(m)
	take := func(want string) {
		t.Helper()
		for _, tr := range r.Enabled() {
			if tr.Action.String() == want {
				r.Take(tr)
				return
			}
		}
		t.Fatalf("action %q not enabled", want)
	}
	take("ST(P1,B1,1)")
	take("ST(P2,B2,1)")
	take("LD(P1,B2,⊥)") // buffered stores not yet visible
	take("LD(P2,B1,⊥)")
	take("Drain(1)")
	take("Drain(2)")
	return r.Run()
}

func TestStoreBufferLitmusNotSC(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 1}, 1)
	run := sbLitmus(t, m)
	if trace.HasSerialReordering(run.Trace) {
		t.Fatalf("store-buffering outcome is SC?! %s", run.Trace)
	}
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		t.Fatalf("observer error: %v", err)
	}
	if err := checker.Check(stream, o.K()); err == nil {
		t.Error("checker accepted the store-buffering litmus run")
	}
}

func TestForwardingLoadsOwnBufferedStore(t *testing.T) {
	m := New(trace.Params{Procs: 1, Blocks: 1, Values: 2}, 2)
	r := protocol.NewRunner(m)
	take := func(want string) {
		t.Helper()
		for _, tr := range r.Enabled() {
			if tr.Action.String() == want {
				r.Take(tr)
				return
			}
		}
		t.Fatalf("action %q not enabled", want)
	}
	take("ST(P1,B1,1)")
	take("ST(P1,B1,2)")
	take("LD(P1,B1,2)") // forwards from the youngest entry
	take("Drain(1)")
	take("LD(P1,B1,2)") // still 2 via forwarding
	take("Drain(1)")
	take("LD(P1,B1,2)") // now from memory
	run := r.Run()
	if !trace.HasSerialReordering(run.Trace) {
		t.Fatalf("single-processor TSO trace must be SC: %s", run.Trace)
	}
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checker.Check(stream, o.K()); err != nil {
		t.Errorf("forwarding run rejected: %v", err)
	}
}

func TestModelCheckerFindsViolation(t *testing.T) {
	m := New(trace.Params{Procs: 2, Blocks: 2, Values: 1}, 1)
	res := mc.Verify(m, mc.Options{MaxDepth: 8})
	if res.Verdict != mc.Violated {
		t.Fatalf("store buffer not caught: %s", res)
	}
	run, err := mc.Replay(m, res.Counterexample)
	if err != nil {
		t.Fatalf("counterexample replay failed: %v", err)
	}
	t.Logf("counterexample (%d steps): %s", len(run.Steps), run)
	// The counterexample's trace must genuinely violate SC whenever the
	// rejection came from the checker (rather than a class-Γ failure).
	if len(run.Trace) <= 12 && trace.HasSerialReordering(run.Trace) {
		t.Logf("note: trace itself SC; rejection was %v", res.Err)
	}
}

func TestBufferCapacityRespected(t *testing.T) {
	m := New(trace.Params{Procs: 1, Blocks: 1, Values: 1}, 1)
	r := protocol.NewRunner(m)
	for _, tr := range r.Enabled() {
		if tr.Action.IsMem() && tr.Action.Op.IsStore() {
			r.Take(tr)
			break
		}
	}
	for _, tr := range r.Enabled() {
		if tr.Action.IsMem() && tr.Action.Op.IsStore() {
			t.Fatal("store enabled with full buffer")
		}
	}
}

func TestDrainShiftsSlots(t *testing.T) {
	m := New(trace.Params{Procs: 1, Blocks: 2, Values: 2}, 2)
	run := protocol.RandomRun(m, 30, 4)
	stream, o, err := observer.ObserveRun(run, observer.NewRealTime(), observer.Config{})
	if err != nil {
		t.Fatalf("observer error on %s: %v", run, err)
	}
	// Single-processor TSO is SC; the checker must accept.
	if err := checker.Check(stream, o.K()); err != nil {
		t.Errorf("single-proc run rejected: %v\nrun: %s", err, run)
	}
}

func TestFencedVariantLoadGating(t *testing.T) {
	m := NewFenced(trace.Params{Procs: 1, Blocks: 1, Values: 1}, 2)
	r := protocol.NewRunner(m)
	for _, tr := range r.Enabled() {
		if tr.Action.IsMem() && tr.Action.Op.IsStore() {
			r.Take(tr)
			break
		}
	}
	for _, tr := range r.Enabled() {
		if tr.Action.IsMem() && tr.Action.Op.IsLoad() {
			t.Fatal("load enabled with non-empty buffer in fenced mode")
		}
	}
}
