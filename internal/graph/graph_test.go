package graph

import (
	"strings"
	"testing"

	"scverify/internal/trace"
)

// figure3 builds the exact constraint graph of the paper's Figure 3.
// Nodes (1-based in the paper, 0-based here):
//
//	1: ST(P1,B,1)  2: LD(P2,B,1)  3: ST(P1,B,2)  4: LD(P2,B,1)  5: LD(P2,B,2)
//
// Edges: (1,2) inh, (1,3) po-STo, (1,4) inh, (2,4) po, (4,3) forced,
// (3,5) inh, (4,5) po.
func figure3() *Graph {
	t := trace.Trace{
		trace.ST(1, 1, 1),
		trace.LD(2, 1, 1),
		trace.ST(1, 1, 2),
		trace.LD(2, 1, 1),
		trace.LD(2, 1, 2),
	}
	g := New(t)
	g.AddEdge(0, 1, Inheritance)
	g.AddEdge(0, 2, ProgramOrder|StoreOrder)
	g.AddEdge(0, 3, Inheritance)
	g.AddEdge(1, 3, ProgramOrder)
	g.AddEdge(3, 2, Forced)
	g.AddEdge(2, 4, Inheritance)
	g.AddEdge(3, 4, ProgramOrder)
	return g
}

func TestEdgeKindString(t *testing.T) {
	cases := []struct {
		k    EdgeKind
		want string
	}{
		{0, "plain"},
		{Inheritance, "inh"},
		{ProgramOrder, "po"},
		{StoreOrder, "STo"},
		{Forced, "forced"},
		{ProgramOrder | StoreOrder, "po-STo"},
		{Inheritance | ProgramOrder, "inh-po"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestFigure3IsAcyclicConstraintGraph(t *testing.T) {
	g := figure3()
	if !g.IsAcyclic() {
		t.Fatal("Figure 3 graph reported cyclic")
	}
	if err := g.CheckConstraints(); err != nil {
		t.Fatalf("Figure 3 graph violates constraints: %v", err)
	}
}

func TestFigure3Bandwidth(t *testing.T) {
	// Section 3.2: "the graph in Figure 3 is 3-node-bandwidth bounded."
	if bw := figure3().Bandwidth(); bw != 3 {
		t.Errorf("Figure 3 bandwidth = %d, want 3", bw)
	}
}

func TestFigure3SerialReordering(t *testing.T) {
	g := figure3()
	r, ok := g.SerialReordering()
	if !ok {
		t.Fatal("no serial reordering from acyclic graph")
	}
	if !r.IsSerialReordering(g.Trace) {
		t.Errorf("topological order %v is not a serial reordering of %s", r, g.Trace)
	}
}

func TestFigure3ForcedEdgePreventsCycle(t *testing.T) {
	// The forced edge (4,3) exists precisely because node 4 inherits from
	// node 1 and node 3 is node 1's ST-order successor. Dropping it must
	// violate constraint 5a.
	g := figure3()
	delete(g.edges, [2]int{3, 2})
	g.succ = nil
	if err := g.CheckConstraints(); err == nil {
		t.Error("missing forced edge not detected")
	} else if !strings.Contains(err.Error(), "5a") {
		t.Errorf("wrong violation: %v", err)
	}
}

func TestAddEdgeAccumulatesKinds(t *testing.T) {
	g := New(trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 1, 2)})
	g.AddEdge(0, 1, ProgramOrder)
	g.AddEdge(0, 1, StoreOrder)
	k, ok := g.EdgeKindBetween(0, 1)
	if !ok || k != ProgramOrder|StoreOrder {
		t.Errorf("edge kind = %v, ok=%v", k, ok)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(trace.Trace{trace.ST(1, 1, 1)}).AddEdge(0, 1, ProgramOrder)
}

func TestTopologicalOrderDeterministic(t *testing.T) {
	g := New(trace.Trace{trace.ST(1, 1, 1), trace.ST(2, 1, 2), trace.ST(3, 1, 3)})
	g.AddEdge(2, 0, 0)
	o1, ok1 := g.TopologicalOrder()
	o2, ok2 := g.TopologicalOrder()
	if !ok1 || !ok2 {
		t.Fatal("acyclic graph reported cyclic")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("topological order not deterministic")
		}
	}
	// Smallest-first tie break: 1 before 2, and 2 before 0 (edge 2→0).
	if o1[0] != 1 || o1[1] != 2 || o1[2] != 0 {
		t.Errorf("order = %v", o1)
	}
}

func TestFindCycle(t *testing.T) {
	g := New(trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 1, 2), trace.ST(1, 1, 3)})
	if g.FindCycle() != nil {
		t.Error("cycle found in edgeless graph")
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("3-cycle not found")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Errorf("cycle %v does not close", cyc)
	}
	if len(cyc) != 4 {
		t.Errorf("cycle length = %d, want 4 (3 nodes + repeat)", len(cyc))
	}
	if g.IsAcyclic() {
		t.Error("cyclic graph reported acyclic")
	}
}

func TestFindCycleSelfLoop(t *testing.T) {
	g := New(trace.Trace{trace.ST(1, 1, 1)})
	g.AddEdge(0, 0, 0)
	if cyc := g.FindCycle(); cyc == nil {
		t.Error("self-loop not found")
	}
}

func TestBandwidthEmptyAndSingleton(t *testing.T) {
	if bw := New(nil).Bandwidth(); bw != 0 {
		t.Errorf("empty bandwidth = %d", bw)
	}
	if bw := New(trace.Trace{trace.ST(1, 1, 1)}).Bandwidth(); bw != 0 {
		t.Errorf("singleton bandwidth = %d", bw)
	}
}

func TestBandwidthChain(t *testing.T) {
	// A chain 0→1→2→3 has bandwidth 1: only the newest node crosses a cut.
	tr := trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 1, 2), trace.ST(1, 1, 3), trace.ST(1, 1, 4)}
	g := New(tr)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1, StoreOrder)
	}
	if bw := g.Bandwidth(); bw != 1 {
		t.Errorf("chain bandwidth = %d, want 1", bw)
	}
}

func TestBandwidthStar(t *testing.T) {
	// Node 0 points to every later node: every prefix keeps node 0 live but
	// nothing else, so bandwidth is still small; the cut after node i has
	// node 0 live plus nothing else = 1.
	tr := trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 1, 2), trace.ST(1, 1, 3), trace.ST(1, 1, 4)}
	g := New(tr)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(0, 3, 0)
	if bw := g.Bandwidth(); bw != 1 {
		t.Errorf("star bandwidth = %d, want 1", bw)
	}
	// All-pairs edges among 4 nodes: cut after node 2 has 3 live nodes.
	g2 := New(tr)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g2.AddEdge(i, j, 0)
		}
	}
	if bw := g2.Bandwidth(); bw != 3 {
		t.Errorf("clique bandwidth = %d, want 3", bw)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := figure3()
	edges := g.Edges()
	for i := 1; i < len(edges); i++ {
		if edges[i-1].From > edges[i].From ||
			(edges[i-1].From == edges[i].From && edges[i-1].To >= edges[i].To) {
			t.Fatalf("edges not sorted: %v", edges)
		}
	}
	if len(edges) != 7 {
		t.Errorf("Figure 3 has %d edges, want 7", len(edges))
	}
}

func TestGraphString(t *testing.T) {
	s := figure3().String()
	for _, want := range []string{"1:ST(P1,B1,1)", "(1,3):po-STo", "(4,3):forced"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
