// Package graph implements the constraint graphs of Section 3.1 of Condon &
// Hu: directed graphs over the operations of a trace whose edges carry
// inheritance, program-order, ST-order and forced annotations, together
// with the five edge-annotation constraints, acyclicity testing, node
// bandwidth (Section 3.2), and the canonical construction of Lemma 3.1
// that turns a serial reordering into an acyclic constraint graph and an
// acyclic constraint graph back into a serial reordering.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"scverify/internal/trace"
)

// EdgeKind is a bitmask of edge annotations. An edge may carry zero or more
// annotations (edge annotation constraint 1).
type EdgeKind uint8

const (
	// Inheritance marks an edge from a store to a load that inherits its value.
	Inheritance EdgeKind = 1 << iota
	// ProgramOrder marks an edge in some processor's program-order chain.
	ProgramOrder
	// StoreOrder marks an edge in some block's total store order.
	StoreOrder
	// Forced marks an edge required by constraint 5 (no store to the same
	// block may sit between a store and a load inheriting from it).
	Forced
)

// String renders the annotation set in the paper's edge-label notation,
// e.g. "po-STo" for a program-order + store-order edge.
func (k EdgeKind) String() string {
	if k == 0 {
		return "plain"
	}
	var parts []string
	if k&Inheritance != 0 {
		parts = append(parts, "inh")
	}
	if k&ProgramOrder != 0 {
		parts = append(parts, "po")
	}
	if k&StoreOrder != 0 {
		parts = append(parts, "STo")
	}
	if k&Forced != 0 {
		parts = append(parts, "forced")
	}
	return strings.Join(parts, "-")
}

// Edge is a directed, annotated edge between trace positions (0-based).
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Graph is a constraint graph over the operations of a trace. Nodes are
// identified by their 0-based position in the trace (the paper numbers
// them 1..k; we keep Go's convention and translate only when printing).
type Graph struct {
	Trace trace.Trace
	edges map[[2]int]EdgeKind
	succ  [][]int // adjacency, built lazily; nil when dirty
}

// New returns an empty constraint graph over the trace.
func New(t trace.Trace) *Graph {
	return &Graph{Trace: t, edges: make(map[[2]int]EdgeKind)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Trace) }

// AddEdge adds the annotations in kind to the edge (from, to), creating it
// if absent. Self-loops are legal to add (they make the graph cyclic) so
// the acyclicity check can report them. Out-of-range endpoints panic: they
// indicate a programming error, not a verification outcome.
func (g *Graph) AddEdge(from, to int, kind EdgeKind) {
	if from < 0 || from >= len(g.Trace) || to < 0 || to >= len(g.Trace) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, len(g.Trace)))
	}
	g.edges[[2]int{from, to}] |= kind
	g.succ = nil
}

// EdgeKindBetween returns the annotation set on edge (from, to), or 0 with
// ok=false if the edge is absent.
func (g *Graph) EdgeKindBetween(from, to int) (EdgeKind, bool) {
	k, ok := g.edges[[2]int{from, to}]
	return k, ok
}

// Edges returns all edges sorted by (From, To) for deterministic iteration.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for key, kind := range g.edges {
		out = append(out, Edge{From: key[0], To: key[1], Kind: kind})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

func (g *Graph) adjacency() [][]int {
	if g.succ != nil {
		return g.succ
	}
	succ := make([][]int, len(g.Trace))
	for key := range g.edges {
		succ[key[0]] = append(succ[key[0]], key[1])
	}
	for _, s := range succ {
		sort.Ints(s)
	}
	g.succ = succ
	return succ
}

// TopologicalOrder returns a topological order of the nodes and true if the
// graph is acyclic, or nil and false otherwise. Kahn's algorithm with a
// smallest-index tie-break keeps the result deterministic.
func (g *Graph) TopologicalOrder() ([]int, bool) {
	n := len(g.Trace)
	succ := g.adjacency()
	indeg := make([]int, n)
	for _, outs := range succ {
		for _, to := range outs {
			indeg[to]++
		}
	}
	// Min-heap-free variant: repeatedly scan a sorted ready list. n is small
	// in verification workloads; keep it simple and deterministic.
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		// Pop the smallest ready node.
		minIdx := 0
		for i, v := range ready {
			if v < ready[minIdx] {
				minIdx = i
			}
		}
		node := ready[minIdx]
		ready = append(ready[:minIdx], ready[minIdx+1:]...)
		order = append(order, node)
		for _, to := range succ[node] {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, ok := g.TopologicalOrder()
	return ok
}

// FindCycle returns some directed cycle as a node sequence (first node
// repeated at the end), or nil if the graph is acyclic. Useful for
// counterexample reporting.
func (g *Graph) FindCycle() []int {
	succ := g.adjacency()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Trace))
	parent := make([]int, len(g.Trace))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u -> v; reconstruct the cycle.
				cycle = []int{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				cycle = append(cycle, v)
				// Reverse to get forward direction v ... u v.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := range color {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// Bandwidth returns the node bandwidth of the graph under its trace-order
// node numbering (Section 3.2): the maximum over all prefixes N_i of the
// number of nodes in N_i with an edge to or from a node outside N_i. The
// graph in the paper's Figure 3 has bandwidth 3.
func (g *Graph) Bandwidth() int {
	n := len(g.Trace)
	if n == 0 {
		return 0
	}
	// For each node, the largest index it is adjacent to (either direction).
	reach := make([]int, n)
	for i := range reach {
		reach[i] = -1
	}
	for key := range g.edges {
		a, b := key[0], key[1]
		if b > reach[a] {
			reach[a] = b
		}
		if a > reach[b] {
			reach[b] = a
		}
	}
	// Node j ≤ i is "live across the cut after i" iff reach[j] > i. Sweep
	// the cut left to right, adding node i when it reaches past itself and
	// expiring nodes whose furthest adjacency is the cut position.
	expireAt := make([][]int, n)
	for j, r := range reach {
		if r > j {
			expireAt[r] = append(expireAt[r], j)
		}
	}
	max, live := 0, 0
	for i := 0; i < n-1; i++ {
		if reach[i] > i {
			live++
		}
		if live > max {
			max = live
		}
		live -= len(expireAt[i+1]) // nodes whose last adjacency is i+1 die after this cut
	}
	return max
}

// String renders the graph in the paper's descriptor-like notation with
// 1-based node numbers, e.g. "1:ST(P1,B1,1) ... (1,2):inh".
func (g *Graph) String() string {
	var sb strings.Builder
	for i, op := range g.Trace {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%d:%s", i+1, op)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, " (%d,%d):%s", e.From+1, e.To+1, e.Kind)
	}
	return sb.String()
}
