package graph_test

import (
	"fmt"

	"scverify/internal/graph"
	"scverify/internal/trace"
)

// Canonical builds the Lemma 3.1 constraint graph from a serial
// reordering; any topological order of an acyclic constraint graph is
// itself a serial reordering.
func ExampleCanonical() {
	tr := trace.Trace{
		trace.ST(1, 1, 1),
		trace.LD(2, 1, 1),
		trace.ST(1, 1, 2),
	}
	r, _ := trace.FindSerialReordering(tr)
	g := graph.Canonical(tr, r)
	fmt.Println("acyclic:", g.IsAcyclic())
	fmt.Println("constraints hold:", g.CheckConstraints() == nil)
	fmt.Println("bandwidth:", g.Bandwidth())
	// Output:
	// acyclic: true
	// constraints hold: true
	// bandwidth: 2
}
