package graph

import (
	"fmt"

	"scverify/internal/trace"
)

// CheckConstraints verifies the five edge-annotation constraints of
// Section 3.1 against the graph, returning nil if all hold or an error
// describing the first violation found. This is the offline reference
// implementation; the streaming finite-state equivalent lives in
// internal/checker and is differentially tested against this one.
//
// Node numbers in error messages are 1-based to match the paper.
func (g *Graph) CheckConstraints() error {
	n := len(g.Trace)

	poIn := make([]int, n)  // count of incoming program-order edges
	poOut := make([]int, n) // count of outgoing program-order edges
	stIn := make([]int, n)
	stOut := make([]int, n)
	inhIn := make([]int, n)
	inhFrom := make([]int, n) // source of the (unique) inheritance edge, -1 if none
	for i := range inhFrom {
		inhFrom[i] = -1
	}
	poEdges := 0
	stEdges := make(map[trace.BlockID]int)

	for key, kind := range g.edges {
		from, to := key[0], key[1]
		fop, top := g.Trace[from], g.Trace[to]
		if kind&ProgramOrder != 0 {
			if fop.Proc != top.Proc {
				return fmt.Errorf("constraint 2: program-order edge (%d,%d) crosses processors P%d→P%d", from+1, to+1, fop.Proc, top.Proc)
			}
			if from >= to {
				return fmt.Errorf("constraint 2: program-order edge (%d,%d) inconsistent with trace order", from+1, to+1)
			}
			poOut[from]++
			poIn[to]++
			poEdges++
		}
		if kind&StoreOrder != 0 {
			if !fop.IsStore() || !top.IsStore() {
				return fmt.Errorf("constraint 3: ST-order edge (%d,%d) touches a non-store", from+1, to+1)
			}
			if fop.Block != top.Block {
				return fmt.Errorf("constraint 3: ST-order edge (%d,%d) crosses blocks B%d→B%d", from+1, to+1, fop.Block, top.Block)
			}
			stOut[from]++
			stIn[to]++
			stEdges[fop.Block]++
		}
		if kind&Inheritance != 0 {
			if !top.IsLoad() || top.Value == trace.Bottom {
				return fmt.Errorf("constraint 4: inheritance edge (%d,%d) into %s", from+1, to+1, top)
			}
			if !fop.IsStore() || fop.Block != top.Block || fop.Value != top.Value {
				return fmt.Errorf("constraint 4: inheritance edge (%d,%d) from %s into %s", from+1, to+1, fop, top)
			}
			inhIn[to]++
			inhFrom[to] = from
		}
	}

	// Constraint 2: per-processor totality. With every po edge same-proc and
	// trace-order increasing, in/out degree ≤ 1 plus an edge count of u-1
	// per processor forces a Hamiltonian path over that processor's nodes.
	procNodes := make(map[trace.ProcID]int)
	for i := 0; i < n; i++ {
		procNodes[g.Trace[i].Proc]++
		if poIn[i] > 1 {
			return fmt.Errorf("constraint 2: node %d has %d incoming program-order edges", i+1, poIn[i])
		}
		if poOut[i] > 1 {
			return fmt.Errorf("constraint 2: node %d has %d outgoing program-order edges", i+1, poOut[i])
		}
	}
	wantPO := 0
	for _, u := range procNodes {
		wantPO += u - 1
	}
	if poEdges != wantPO {
		return fmt.Errorf("constraint 2: %d program-order edges, want %d", poEdges, wantPO)
	}

	// Constraint 3: per-block store totality.
	blockStores := make(map[trace.BlockID]int)
	for i := 0; i < n; i++ {
		if g.Trace[i].IsStore() {
			blockStores[g.Trace[i].Block]++
			if stIn[i] > 1 {
				return fmt.Errorf("constraint 3: store node %d has %d incoming ST-order edges", i+1, stIn[i])
			}
			if stOut[i] > 1 {
				return fmt.Errorf("constraint 3: store node %d has %d outgoing ST-order edges", i+1, stOut[i])
			}
		}
	}
	for b, u := range blockStores {
		if stEdges[b] != u-1 {
			return fmt.Errorf("constraint 3: block B%d has %d ST-order edges, want %d", b, stEdges[b], u-1)
		}
	}
	// Degrees ≤ 1 and u-1 edges still admit a cycle plus isolated stores
	// (e.g. a 3-cycle beside one lone store). Walk the chain from each
	// block's unique source to confirm a single path covers all u stores.
	{
		succ := make(map[int]int)
		for key, kind := range g.edges {
			if kind&StoreOrder != 0 {
				succ[key[0]] = key[1]
			}
		}
		for b, u := range blockStores {
			start := -1
			for i := 0; i < n; i++ {
				if g.Trace[i].IsStore() && g.Trace[i].Block == b && stIn[i] == 0 {
					start = i
					break
				}
			}
			if u > 0 && start < 0 {
				return fmt.Errorf("constraint 3: block B%d ST-order has no source (cycle)", b)
			}
			count := 0
			for cur := start; cur >= 0; {
				count++
				next, ok := succ[cur]
				if !ok {
					break
				}
				cur = next
			}
			if count != u {
				return fmt.Errorf("constraint 3: block B%d ST-order chain covers %d of %d stores", b, count, u)
			}
		}
	}

	// Constraint 4: every non-bottom load has exactly one inheritance edge.
	for i := 0; i < n; i++ {
		op := g.Trace[i]
		if op.IsLoad() && op.Value != trace.Bottom {
			if inhIn[i] == 0 {
				return fmt.Errorf("constraint 4: load node %d (%s) has no inheritance edge", i+1, op)
			}
			if inhIn[i] > 1 {
				return fmt.Errorf("constraint 4: load node %d has %d inheritance edges", i+1, inhIn[i])
			}
		}
	}

	// Precompute, per store node, its ST-order successor (unique by the
	// degree checks above) and, per block, the first store in ST order.
	stSucc := make([]int, n)
	for i := range stSucc {
		stSucc[i] = -1
	}
	firstStore := make(map[trace.BlockID]int)
	for key, kind := range g.edges {
		if kind&StoreOrder != 0 {
			stSucc[key[0]] = key[1]
		}
	}
	for i := 0; i < n; i++ {
		if g.Trace[i].IsStore() && stIn[i] == 0 {
			firstStore[g.Trace[i].Block] = i
		}
	}

	// Program-order successor per node (unique).
	poSucc := make([]int, n)
	for i := range poSucc {
		poSucc[i] = -1
	}
	for key, kind := range g.edges {
		if kind&ProgramOrder != 0 {
			poSucc[key[0]] = key[1]
		}
	}

	hasForced := func(from, to int) bool {
		k, ok := g.EdgeKindBetween(from, to)
		return ok && k&Forced != 0
	}

	// Constraint 5(a): for each inheritance edge (i,j) where i has an
	// ST-order successor k, some program-order descendant j' of j (j itself
	// included) that also inherits from i must carry a forced edge to k.
	for j := 0; j < n; j++ {
		i := inhFrom[j]
		if i < 0 {
			continue
		}
		k := stSucc[i]
		if k < 0 {
			continue // no ST-order successor: constraint vacuous
		}
		ok := false
		for cur := j; cur >= 0; cur = poSucc[cur] {
			if cur != j && inhFrom[cur] != i {
				continue
			}
			if hasForced(cur, k) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("constraint 5a: load node %d inherits from %d but no forced edge reaches ST-order successor %d", j+1, i+1, k+1)
		}
	}

	// Constraint 5(b): each LD(P,B,⊥) needs a forced edge, possibly via a
	// later same-processor ⊥-load of the same block, to the first store to
	// B in ST order.
	for j := 0; j < n; j++ {
		op := g.Trace[j]
		if !op.IsLoad() || op.Value != trace.Bottom {
			continue
		}
		k, exists := firstStore[op.Block]
		if !exists {
			continue // block never stored: vacuous
		}
		ok := false
		for cur := j; cur >= 0; cur = poSucc[cur] {
			curOp := g.Trace[cur]
			if cur != j && !(curOp.IsLoad() && curOp.Value == trace.Bottom && curOp.Block == op.Block) {
				continue
			}
			if hasForced(cur, k) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("constraint 5b: ⊥-load node %d has no forced edge to first store %d of block B%d", j+1, k+1, op.Block)
		}
	}

	return nil
}

// IsConstraintGraph reports whether the graph satisfies all five edge
// annotation constraints.
func (g *Graph) IsConstraintGraph() bool { return g.CheckConstraints() == nil }

// Canonical constructs the constraint graph of Lemma 3.1 from a serial
// reordering of the trace: program-order edges between each processor's
// consecutive operations, ST-order edges between consecutive stores to each
// block in reordered order, inheritance edges from the most recent store,
// and forced edges for every (store, inheriting load, next store) triple
// plus the ⊥-load rule. The result is acyclic whenever r is a serial
// reordering.
func Canonical(t trace.Trace, r trace.Reordering) *Graph {
	g := New(t)

	// Program order: consecutive per-processor operations (reordering
	// preserves program order, so trace order suffices).
	last := make(map[trace.ProcID]int)
	for i, op := range t {
		if prev, ok := last[op.Proc]; ok {
			g.AddEdge(prev, i, ProgramOrder)
		}
		last[op.Proc] = i
	}

	// ST order from the reordering.
	storeOrder := r.StoreOrder(t)
	stSucc := make(map[int]int)
	firstStore := make(map[trace.BlockID]int)
	for b, stores := range storeOrder {
		if len(stores) > 0 {
			firstStore[b] = stores[0]
		}
		for i := 0; i+1 < len(stores); i++ {
			g.AddEdge(stores[i], stores[i+1], StoreOrder)
			stSucc[stores[i]] = stores[i+1]
		}
	}

	// Inheritance edges, plus forced edges for constraint 5(a).
	inh := r.InheritanceMap(t)
	for load, store := range inh {
		g.AddEdge(store, load, Inheritance)
		if k, ok := stSucc[store]; ok {
			g.AddEdge(load, k, Forced)
		}
	}

	// Forced edges for ⊥-loads (constraint 5(b)).
	for i, op := range t {
		if op.IsLoad() && op.Value == trace.Bottom {
			if k, ok := firstStore[op.Block]; ok {
				g.AddEdge(i, k, Forced)
			}
		}
	}
	return g
}

// SerialReordering extracts a serial reordering from an acyclic constraint
// graph (the converse direction of Lemma 3.1): any topological order of the
// nodes is one. Returns nil and false if the graph is cyclic.
func (g *Graph) SerialReordering() (trace.Reordering, bool) {
	order, ok := g.TopologicalOrder()
	if !ok {
		return nil, false
	}
	return trace.Reordering(order), true
}
