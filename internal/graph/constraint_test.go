package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"scverify/internal/trace"
)

func mustReorder(t *testing.T, tr trace.Trace) trace.Reordering {
	t.Helper()
	r, ok := trace.FindSerialReordering(tr)
	if !ok {
		t.Fatalf("trace not SC: %s", tr)
	}
	return r
}

func TestCanonicalLemma31Forward(t *testing.T) {
	// Lemma 3.1 forward direction: a serial reordering yields an acyclic
	// constraint graph.
	traces := []trace.Trace{
		{},
		{trace.ST(1, 1, 1)},
		{trace.LD(1, 1, trace.Bottom)},
		{trace.ST(1, 1, 1), trace.LD(2, 1, trace.Bottom)},
		{trace.ST(1, 1, 1), trace.ST(2, 1, 2), trace.LD(1, 1, 2), trace.LD(2, 2, trace.Bottom)},
		{
			trace.ST(1, 1, 1), trace.LD(2, 1, 1), trace.ST(1, 1, 2),
			trace.LD(2, 1, 1), trace.LD(2, 1, 2),
		}, // the Figure 3 trace
	}
	for _, tr := range traces {
		r := mustReorder(t, tr)
		g := Canonical(tr, r)
		if !g.IsAcyclic() {
			t.Errorf("canonical graph cyclic for %s", tr)
		}
		if err := g.CheckConstraints(); err != nil {
			t.Errorf("canonical graph for %s violates constraints: %v", tr, err)
		}
	}
}

func TestCanonicalLemma31Converse(t *testing.T) {
	// Converse: any topological order of an (acyclic) constraint graph is a
	// serial reordering.
	g := figure3()
	r, ok := g.SerialReordering()
	if !ok {
		t.Fatal("cyclic")
	}
	if !r.IsSerialReordering(g.Trace) {
		t.Fatalf("topo order %v of constraint graph is not serial", r)
	}
}

func TestCanonicalRoundTripProperty(t *testing.T) {
	// Property over random SC traces: Canonical(t, witness) is an acyclic
	// constraint graph whose every topological order is a serial reordering.
	gen := trace.NewGenerator(trace.Params{Procs: 3, Blocks: 2, Values: 2}, 11)
	prop := func(_ uint8) bool {
		tr := gen.SC(12)
		r, ok := trace.FindSerialReordering(tr)
		if !ok {
			return false
		}
		g := Canonical(tr, r)
		if err := g.CheckConstraints(); err != nil {
			return false
		}
		topo, ok := g.SerialReordering()
		return ok && topo.IsSerialReordering(tr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalBandwidthModest(t *testing.T) {
	// Section 4's informal argument: canonical graphs of realistic traces
	// have bandwidth far below the trace length. Sanity-check the trend.
	gen := trace.NewGenerator(trace.Params{Procs: 2, Blocks: 2, Values: 2}, 5)
	tr := gen.SC(40)
	r := mustReorder(t, tr)
	g := Canonical(tr, r)
	if bw := g.Bandwidth(); bw >= len(tr) {
		t.Errorf("bandwidth %d not below trace length %d", bw, len(tr))
	}
}

func TestCheckConstraintsCrossProcessorPO(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.ST(2, 1, 2)}
	g := New(tr)
	g.AddEdge(0, 1, ProgramOrder|StoreOrder)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "crosses processors") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsPOAgainstTraceOrder(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 1, 2)}
	g := New(tr)
	g.AddEdge(1, 0, ProgramOrder)
	g.AddEdge(0, 1, StoreOrder)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "inconsistent with trace order") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsMissingPOEdge(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 1, 2)}
	g := New(tr)
	g.AddEdge(0, 1, StoreOrder) // po edge missing
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "program-order edges, want") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsDoublePOOut(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 1, 2), trace.ST(1, 1, 3)}
	g := New(tr)
	g.AddEdge(0, 1, ProgramOrder|StoreOrder)
	g.AddEdge(0, 2, ProgramOrder)
	g.AddEdge(1, 2, StoreOrder)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "outgoing program-order") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsSTOrderNonStore(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.LD(1, 1, 1)}
	g := New(tr)
	g.AddEdge(0, 1, StoreOrder|ProgramOrder|Inheritance)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "non-store") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsSTOrderCrossBlock(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.ST(1, 2, 2)}
	g := New(tr)
	g.AddEdge(0, 1, StoreOrder|ProgramOrder)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "crosses blocks") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsSTOrderCycle(t *testing.T) {
	// Three stores in a ST-order cycle beside a lone fourth store: degree
	// and count checks pass, the chain-coverage check must fail.
	tr := trace.Trace{
		trace.ST(1, 1, 1), trace.ST(1, 1, 2), trace.ST(1, 1, 3), trace.ST(1, 1, 4),
	}
	g := New(tr)
	g.AddEdge(0, 1, ProgramOrder)
	g.AddEdge(1, 2, ProgramOrder)
	g.AddEdge(2, 3, ProgramOrder)
	g.AddEdge(0, 1, StoreOrder)
	g.AddEdge(1, 2, StoreOrder)
	g.AddEdge(2, 0, StoreOrder)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "ST-order") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsInheritanceIntoBottomLoad(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, trace.Bottom)}
	g := New(tr)
	g.AddEdge(0, 1, Inheritance)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "constraint 4") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsInheritanceValueMismatch(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, 2)}
	g := New(tr)
	g.AddEdge(0, 1, Inheritance)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "constraint 4") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraintsLoadWithoutInheritance(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, 1)}
	g := New(tr)
	// No inheritance edge at all.
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "no inheritance edge") {
		t.Errorf("got %v", err)
	}
}

func TestCheckConstraints5aViaProgramOrderPath(t *testing.T) {
	// A load without a direct forced edge but with a later same-processor
	// load inheriting from the same store that has one — legal per 5(a).
	// This is exactly the Figure 3 situation for node 2 (via node 4).
	g := figure3()
	if err := g.CheckConstraints(); err != nil {
		t.Fatalf("Figure 3 pattern rejected: %v", err)
	}
}

func TestCheckConstraints5bViolation(t *testing.T) {
	// LD(P2,B1,⊥) followed by a store to B1 but no forced edge.
	tr := trace.Trace{trace.LD(2, 1, trace.Bottom), trace.ST(1, 1, 1)}
	g := New(tr)
	err := g.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "5b") {
		t.Errorf("got %v", err)
	}
	// Adding the forced edge fixes it.
	g.AddEdge(0, 1, Forced)
	if err := g.CheckConstraints(); err != nil {
		t.Errorf("after forced edge: %v", err)
	}
}

func TestCheckConstraints5bVacuousWithoutStores(t *testing.T) {
	tr := trace.Trace{trace.LD(1, 1, trace.Bottom), trace.LD(2, 1, trace.Bottom)}
	g := New(tr)
	if err := g.CheckConstraints(); err != nil {
		t.Errorf("⊥-loads with no stores should be fine: %v", err)
	}
}

func TestIsConstraintGraph(t *testing.T) {
	if !figure3().IsConstraintGraph() {
		t.Error("Figure 3 rejected")
	}
	g := New(trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, 1)})
	if g.IsConstraintGraph() {
		t.Error("graph missing inheritance accepted")
	}
}
