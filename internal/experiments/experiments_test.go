package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, &buf); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestFig1Report(t *testing.T) {
	out := runExp(t, "fig1")
	for _, frag := range []string{"r1=1 r2=2", "r1=0 r2=0", "r1=0 r2=2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig1 report missing %q:\n%s", frag, out)
		}
	}
}

func TestFig3Report(t *testing.T) {
	out := runExp(t, "fig3")
	for _, frag := range []string{"bandwidth: 3", "accept=true", "po-STo"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig3 report missing %q:\n%s", frag, out)
		}
	}
}

func TestFig4Report(t *testing.T) {
	out := runExp(t, "fig4")
	for _, frag := range []string{"want 3,0,1,2", "loc1=3 loc2=0 loc3=1 loc4=2", "add-ID(1,3)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig4 report missing %q:\n%s", frag, out)
		}
	}
}

func TestBoundedReorderReport(t *testing.T) {
	out := runExp(t, "boundedreorder")
	if !strings.Contains(out, "accept=true") {
		t.Errorf("boundedreorder report:\n%s", out)
	}
}

func TestLazyReport(t *testing.T) {
	out := runExp(t, "lazy")
	if !strings.Contains(out, "lazy-realtime") {
		t.Errorf("lazy report:\n%s", out)
	}
}

func TestUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestIDsCovered(t *testing.T) {
	if len(IDs()) < 8 {
		t.Errorf("experiment list shrank: %v", IDs())
	}
}

func TestTestingScenarioReport(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in short mode")
	}
	out := runExp(t, "testing")
	for _, frag := range []string{"storebuffer", "confirmed non-SC"} {
		if !strings.Contains(out, frag) {
			t.Errorf("testing report missing %q:\n%s", frag, out)
		}
	}
}
