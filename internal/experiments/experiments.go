// Package experiments regenerates every figure and table of Condon & Hu
// (per the experiment index in DESIGN.md) as plain-text reports. Each
// function writes one artifact; Run dispatches by experiment ID. The same
// code paths back the repository's benchmarks, so the printed tables and
// the benchmarked numbers cannot drift apart.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"scverify/internal/boundedreorder"
	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/litmus"
	"scverify/internal/mc"
	"scverify/internal/memmodel"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/sctest"
	"scverify/internal/sizebound"
	"scverify/internal/trace"
)

// IDs lists the experiment identifiers Run accepts, in presentation order.
func IDs() []string {
	return []string{"fig1", "fig3", "fig4", "verify", "litmus", "sizebound", "testing", "lazy", "boundedreorder"}
}

// Run executes one experiment by ID, writing its report to w.
func Run(id string, w io.Writer) error {
	switch id {
	case "fig1":
		return Fig1(w)
	case "fig3":
		return Fig3(w)
	case "fig4":
		return Fig4(w)
	case "verify":
		return VerifyAll(w)
	case "litmus":
		return Litmus(w)
	case "sizebound":
		return SizeBound(w)
	case "testing":
		return TestingScenario(w)
	case "lazy":
		return LazyGenerators(w)
	case "boundedreorder":
		return BoundedReorder(w)
	default:
		return fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
}

// Fig1 reproduces Figure 1: the outcomes of the message-passing program
// under serial memory, sequential consistency, and a relaxed model.
func Fig1(w io.Writer) error {
	p := memmodel.Figure1()
	serial, err := p.SerialOutcome([]int{0, 0, 1, 1})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Experiment E1 — Figure 1: memory-model outcome sets")
	fmt.Fprintln(w, "Program: P1: ST x←1; ST y←2.  P2: LD y→r2; LD x→r1.  (x=B1, y=B2, ⊥=0)")
	fmt.Fprintf(w, "  serial memory (schedule P1,P1,P2,P2): %s\n", serial)
	fmt.Fprintf(w, "  sequential consistency:               %v\n", memmodel.OutcomeStrings(p.SCOutcomes()))
	fmt.Fprintf(w, "  relaxed (loads out of order):         %v\n", memmodel.OutcomeStrings(p.RelaxedOutcomes()))
	fmt.Fprintf(w, "  TSO (store buffers only):             %v\n", memmodel.OutcomeStrings(p.TSOOutcomes()))
	fmt.Fprintln(w, "Paper: SC allows r1=1,r2=2 / r1=0,r2=0 / r1=1,r2=0 but not r1=0,r2=2; the relaxed model adds r1=0,r2=2.")
	return nil
}

// fig3Graph builds the constraint graph of Figure 3.
func fig3Graph() *graph.Graph {
	t := trace.Trace{
		trace.ST(1, 1, 1), trace.LD(2, 1, 1), trace.ST(1, 1, 2),
		trace.LD(2, 1, 1), trace.LD(2, 1, 2),
	}
	g := graph.New(t)
	g.AddEdge(0, 1, graph.Inheritance)
	g.AddEdge(0, 2, graph.ProgramOrder|graph.StoreOrder)
	g.AddEdge(0, 3, graph.Inheritance)
	g.AddEdge(1, 3, graph.ProgramOrder)
	g.AddEdge(3, 2, graph.Forced)
	g.AddEdge(2, 4, graph.Inheritance)
	g.AddEdge(3, 4, graph.ProgramOrder)
	return g
}

// Fig3 reproduces Figure 3 and the Section 3.2 descriptor example: the
// constraint graph, its bandwidth, its ID-recycling descriptor, and the
// checker verdict.
func Fig3(w io.Writer) error {
	g := fig3Graph()
	fmt.Fprintln(w, "Experiment E2 — Figure 3: constraint graph and 3-bandwidth descriptor")
	fmt.Fprintf(w, "  graph: %s\n", g)
	fmt.Fprintf(w, "  node bandwidth: %d (paper: 3)\n", g.Bandwidth())
	fmt.Fprintf(w, "  acyclic: %v; constraints: %v\n", g.IsAcyclic(), g.CheckConstraints() == nil)
	s, k := descriptor.EncodeAuto(g)
	fmt.Fprintf(w, "  %d-graph descriptor: %s\n", k, s.Text())
	err := checker.Check(s, k)
	fmt.Fprintf(w, "  finite-state checker verdict: accept=%v\n", err == nil)
	r, ok := g.SerialReordering()
	fmt.Fprintf(w, "  serial reordering from topological order: %v (valid=%v)\n", r, ok && r.IsSerialReordering(g.Trace))
	if err != nil {
		return err
	}
	return nil
}

// Fig4 reproduces Figure 4: the tracking-label run, its per-step state,
// the ST-index table, and the Lemma 4.1 inheritance descriptor.
func Fig4(w io.Writer) error {
	script := &protocol.Scripted{
		ProtoName: "figure4", P: 2, B: 3, V: 3, L: 4,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.MemOp(trace.ST(2, 2, 2)), Loc: 4},
			{Action: protocol.Internal("Get-Shared", 2, 1), Copies: []protocol.Copy{{Dst: 3, Src: 1}}},
			{Action: protocol.MemOp(trace.ST(1, 3, 3)), Loc: 1},
		},
	}
	fmt.Fprintln(w, "Experiment E3 — Figure 4: tracking labels and ST-indexes")
	r := protocol.NewRunner(script)
	st := protocol.NewSTIndexTracker(script.Locations())
	for {
		en := r.Enabled()
		if len(en) == 0 {
			break
		}
		r.Take(en[0])
		last := r.Run().Steps[len(r.Run().Steps)-1]
		st.Apply(last.Transition, last.TraceIndex)
		fmt.Fprintf(w, "  after %-20s ST-indexes %v\n", last.Action, st.Snapshot()[1:])
	}
	fmt.Fprintf(w, "  final table (paper Figure 4c): loc1=%d loc2=%d loc3=%d loc4=%d (want 3,0,1,2)\n",
		st.Index(1), st.Index(2), st.Index(3), st.Index(4))
	stream, err := observer.ObserveInheritance(r.Run())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  Lemma 4.1 inheritance descriptor: %s\n", stream.Text())
	return nil
}

// VerifyAll model-checks every registered protocol at small parameters —
// the Section 4 verification experiment (E6). SC protocols must verify;
// non-SC protocols must yield counterexamples.
func VerifyAll(w io.Writer) error {
	fmt.Fprintln(w, "Experiment E6 — exhaustive verification of the protocol suite")
	fmt.Fprintf(w, "  %-20s %-9s %-10s %10s %12s %7s %9s\n",
		"protocol", "expected", "verdict", "states", "transitions", "depth", "time")
	for _, name := range registry.Names() {
		tgt, err := registry.Build(name, registry.Options{Params: paramsFor(name), QueueCap: 1})
		if err != nil {
			return err
		}
		opts := mc.Options{
			Generator: tgt.Generator,
			PoolSize:  tgt.PoolSize,
			MaxDepth:  depthFor(name),
			MaxStates: 1 << 21,
		}
		res := mc.Verify(tgt.Protocol, opts)
		expected := "reject"
		if tgt.ExpectSC {
			expected = "accept"
		}
		fmt.Fprintf(w, "  %-20s %-9s %-10s %10d %12d %7d %9s\n",
			name, expected, res.Verdict, res.States, res.Transitions, res.Depth,
			res.Elapsed.Round(time.Millisecond))
		if res.Verdict == mc.Violated {
			if run, err := mc.Replay(tgt.Protocol, res.Counterexample); err == nil {
				fmt.Fprintf(w, "      counterexample: %s\n", run)
			}
		}
		switch {
		case tgt.ExpectSC && res.Verdict == mc.Violated:
			return fmt.Errorf("experiments: %s expected SC but violated: %v", name, res.Err)
		case !tgt.ExpectSC && res.Verdict == mc.Verified:
			return fmt.Errorf("experiments: %s expected a violation but verified", name)
		}
	}
	fmt.Fprintln(w, "  (depth-bounded entries are reported as incomplete unless a violation is found first)")
	return nil
}

// depthFor bounds exploration for protocols whose full product space is
// too large for an interactive report; violations in the non-SC targets
// appear within a few steps, and SC targets that complete within the bound
// report verified.
func depthFor(name string) int {
	switch name {
	case "serial", "storebuffer":
		return 0 // full exploration
	case "msi-lost-writeback", "msi-no-invalidate", "lazy-realtime",
		"writethrough-no-invalidate":
		return 12
	default:
		return 10
	}
}

// paramsFor picks the smallest parameters that exhibit each protocol's
// interesting behaviour: the no-invalidate bug needs a second block to
// build the message-passing violation, and the lazy-caching reordering
// needs two distinguishable values.
func paramsFor(name string) trace.Params {
	switch name {
	case "msi-no-invalidate", "writethrough-no-invalidate":
		return trace.Params{Procs: 2, Blocks: 2, Values: 1}
	case "lazy-realtime", "lazy":
		return trace.Params{Procs: 2, Blocks: 1, Values: 2}
	default:
		return trace.Params{Procs: 2, Blocks: 1, Values: 1}
	}
}

// Litmus runs the classic litmus suite against representative protocols,
// comparing each protocol's reachable outcome set with the SC set — the
// architectural view of the property the checker decides per trace.
func Litmus(w io.Writer) error {
	fmt.Fprintln(w, "Experiment — litmus outcomes per protocol vs sequential consistency")
	if err := litmus.VerifySuiteAgainstSC(); err != nil {
		return err
	}
	targets := []string{"serial", "writethrough", "msi", "storebuffer", "storebuffer-fenced", "writethrough-no-invalidate"}
	for _, tc := range litmus.Suite() {
		if tc.Name == "IRIW" {
			continue // 4 processors: too wide for the interactive report
		}
		fmt.Fprintf(w, "  %s (SC forbids %v):\n", tc.Name, tc.ForbiddenSC)
		for _, name := range targets {
			tgt, err := registry.Build(name, registry.Options{
				Params:   trace.Params{Procs: len(tc.Prog.Threads), Blocks: 2, Values: 1},
				QueueCap: 1,
			})
			if err != nil {
				return err
			}
			c, err := litmus.ClassifyProtocol(tgt.Protocol, tc, 1<<19)
			if err != nil {
				return err
			}
			verdict := "SC-clean"
			if len(c.Extra) > 0 {
				verdict = fmt.Sprintf("VIOLATES SC: %v", c.Extra)
			}
			fmt.Fprintf(w, "    %-28s %s\n", name, verdict)
			if tgt.ExpectSC && len(c.Extra) > 0 {
				return fmt.Errorf("experiments: %s produced non-SC litmus outcomes %v", name, c.Extra)
			}
		}
	}
	fmt.Fprintln(w, "  shape: SC protocols never exhibit forbidden outcomes; the store buffer")
	fmt.Fprintln(w, "  exhibits exactly SB; the buggy write-through exhibits MP.")
	return nil
}

// SizeBound prints the Section 4.4 observer-size table (E7): the analytic
// bound across a parameter sweep, plus measured observer-state counts for
// the protocols verified exhaustively.
func SizeBound(w io.Writer) error {
	fmt.Fprintln(w, "Experiment E7 — Section 4.4 observer size bound")
	fmt.Fprintln(w, "  bound = (L+pb)(lg p + lg b + lg v + 1) + L lg L bits")
	rows := sizebound.Sweep(
		[]int{2, 4, 8}, []int{1, 2, 4}, []int{2, 4},
		func(p, b int) int { return b * (1 + p) }, // memory + one line per cache
	)
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}

	// Measured: distinct observer states during exhaustive product
	// exploration of serial memory (the tightest measurable case).
	params := trace.Params{Procs: 2, Blocks: 1, Values: 1}
	tgt, err := registry.Build("serial", registry.Options{Params: params})
	if err != nil {
		return err
	}
	res := mc.Verify(tgt.Protocol, mc.Options{Generator: tgt.Generator, TrackObserverStates: true})
	in := sizebound.Inputs{
		Procs: params.Procs, Blocks: params.Blocks, Values: params.Values,
		Locations: tgt.Protocol.Locations(),
	}
	row := sizebound.NewRow(in, res.ObserverStates)
	fmt.Fprintf(w, "  measured on serial(%s): %d distinct observer states (≈%d bits) vs bound %d bits\n",
		params, res.ObserverStates, row.MeasuredBits, row.BoundBits)
	fmt.Fprintf(w, "  (full product: %d states, including protocol and checker components)\n", res.States)
	fmt.Fprintln(w, "  shape check: the analytic bound must dominate the measured observer bits")
	if row.MeasuredBits > row.BoundBits {
		return fmt.Errorf("experiments: measured observer bits %d exceed bound %d", row.MeasuredBits, row.BoundBits)
	}
	return nil
}

// TestingScenario runs the Section 5 per-run testing mode (E8) against
// the suite, cross-checking with the exact reordering search.
func TestingScenario(w io.Writer) error {
	fmt.Fprintln(w, "Experiment E8 — Section 5 testing scenario (random runs, exact cross-check)")
	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	cfg := sctest.Config{Runs: 200, Steps: 16, Seed: 11, Exact: true}
	names := registry.Names()
	sort.Strings(names)
	for _, name := range names {
		tgt, err := registry.Build(name, registry.Options{Params: params, QueueCap: 1})
		if err != nil {
			return err
		}
		res := sctest.Campaign(tgt, cfg)
		fmt.Fprintf(w, "  %-20s %s\n", name, res)
		if res.SoundnessBreaks > 0 {
			return fmt.Errorf("experiments: %s: accepted run with non-SC trace", name)
		}
		if tgt.ExpectSC && res.NonSCConfirmed > 0 {
			return fmt.Errorf("experiments: %s: confirmed violation on an SC protocol", name)
		}
	}
	return nil
}

// LazyGenerators contrasts the trivial and queue-aware ST-order generators
// on lazy caching — the Section 4.2 point that motivates generator
// pluggability.
func LazyGenerators(w io.Writer) error {
	fmt.Fprintln(w, "Experiment — Section 4.2: lazy caching needs a non-trivial ST-order generator")
	params := trace.Params{Procs: 2, Blocks: 1, Values: 2}
	cfg := sctest.Config{Runs: 600, Steps: 24, Seed: 17, Exact: true}
	for _, name := range []string{"lazy", "lazy-realtime"} {
		tgt, err := registry.Build(name, registry.Options{Params: params, QueueCap: 1})
		if err != nil {
			return err
		}
		res := sctest.Campaign(tgt, cfg)
		fmt.Fprintf(w, "  %-15s %s\n", name, res)
		if name == "lazy" && res.Rejected > 0 {
			return fmt.Errorf("experiments: queue-aware generator rejected a lazy run: %v", res.FirstCause)
		}
		if name == "lazy-realtime" && res.NonSCConfirmed > 0 {
			return fmt.Errorf("experiments: real-time generator rejections were real violations")
		}
	}
	fmt.Fprintln(w, "  shape: the queue-aware generator accepts every run; the trivial one")
	fmt.Fprintln(w, "  rejects some runs whose traces are nonetheless SC (annotation inadequacy).")
	return nil
}

// BoundedReorder is the E9 ablation: the bounded-window witness of
// Henzinger et al. needs windows that grow with the reordering distance,
// while the constraint-graph checker's state stays fixed.
func BoundedReorder(w io.Writer) error {
	fmt.Fprintln(w, "Experiment E9 — bounded-window witness vs constraint-graph observer")
	fmt.Fprintf(w, "  %-8s %-12s %-22s\n", "delay d", "min window", "constraint-graph checker")
	for d := 0; d <= 6; d++ {
		tr := trace.Trace{trace.ST(1, 1, 1)}
		for i := 0; i < d; i++ {
			tr = append(tr, trace.LD(2, 1, 1))
		}
		tr = append(tr, trace.LD(3, 1, trace.Bottom))
		win := boundedreorder.MinWindow(tr)

		// The same trace through the canonical constraint graph: bandwidth
		// stays constant in d.
		r, ok := trace.FindSerialReordering(tr)
		if !ok {
			return fmt.Errorf("experiments: delay family trace not SC at d=%d", d)
		}
		g := graph.Canonical(tr, r)
		s, k := descriptor.EncodeAuto(g)
		verdict := checker.Check(s, k) == nil
		fmt.Fprintf(w, "  %-8d %-12d bandwidth=%d accept=%v\n", d, win, k, verdict)
	}
	fmt.Fprintln(w, "  shape: min window grows linearly with d; graph bandwidth stays constant.")
	return nil
}
