package boundedreorder

import (
	"testing"

	"scverify/internal/trace"
)

func TestSerialTraceNeedsNoWindow(t *testing.T) {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, 1)}
	if !CanReorder(tr, 0) {
		t.Error("serial trace rejected at w=0")
	}
	if got := MinWindow(tr); got != 0 {
		t.Errorf("MinWindow = %d, want 0", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	if !CanReorder(nil, 0) {
		t.Error("empty trace rejected")
	}
}

func TestSimpleSwapNeedsWindowTwo(t *testing.T) {
	// LD must move before the ST: both must sit in the buffer together.
	tr := trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, trace.Bottom)}
	if CanReorder(tr, 1) {
		t.Error("swap possible with buffer of one")
	}
	if !CanReorder(tr, 2) {
		t.Error("swap impossible with buffer of two")
	}
	if got := MinWindow(tr); got != 2 {
		t.Errorf("MinWindow = %d, want 2", got)
	}
}

func TestNonSCTraceHasNoWindow(t *testing.T) {
	tr := trace.Trace{
		trace.ST(1, 1, 1), trace.ST(1, 2, 2),
		trace.LD(2, 2, 2), trace.LD(2, 1, trace.Bottom),
	}
	if trace.HasSerialReordering(tr) {
		t.Fatal("premise: trace should not be SC")
	}
	if got := MinWindow(tr); got != -1 {
		t.Errorf("MinWindow = %d, want -1", got)
	}
}

func TestProgramOrderRespectedInBuffer(t *testing.T) {
	// P2 reads 2 then 1: only a reordering that swaps P1's two stores
	// could satisfy it, and program order forbids that.
	tr := trace.Trace{
		trace.ST(1, 1, 1), trace.ST(1, 1, 2),
		trace.LD(2, 1, 2), trace.LD(2, 1, 1),
	}
	if trace.HasSerialReordering(tr) {
		t.Fatal("premise: trace should not be SC")
	}
	if MinWindow(tr) != -1 {
		t.Error("window reordering violated program order")
	}
}

func TestWindowGrowsWithDelay(t *testing.T) {
	// Family: ST(P1,B1,1), then d loads of the NEW value by P2, then a
	// stale ⊥-load by P3. Serially the stale load must come first, so
	// every earlier operation must still be buffered when it is emitted:
	// the required window is exactly d+2.
	for d := 0; d <= 4; d++ {
		tr := trace.Trace{trace.ST(1, 1, 1)}
		for i := 0; i < d; i++ {
			tr = append(tr, trace.LD(2, 1, 1))
		}
		tr = append(tr, trace.LD(3, 1, trace.Bottom))
		w := MinWindow(tr)
		if w != d+2 {
			t.Errorf("d=%d: MinWindow = %d, want %d", d, w, d+2)
		}
	}
}

func TestAgreesWithExactDecisionOnRandomTraces(t *testing.T) {
	// Whole-trace window == unrestricted reordering: MinWindow ≥ 0 iff the
	// trace is SC.
	gen := trace.NewGenerator(trace.Params{Procs: 2, Blocks: 2, Values: 2}, 13)
	for i := 0; i < 40; i++ {
		tr := gen.SC(10)
		if m, ok := gen.Mutate(tr); ok && i%2 == 0 {
			tr = m
		}
		want := trace.HasSerialReordering(tr)
		got := MinWindow(tr) >= 0
		if got != want {
			t.Fatalf("disagreement on %s: window=%v exact=%v", tr, got, want)
		}
	}
}
