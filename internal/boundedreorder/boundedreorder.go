// Package boundedreorder implements the restrictive witness style of
// Henzinger, Qadeer & Rajamani (CAV 1999) that Section 1.1 of Condon & Hu
// contrasts with their own: a finite-state observer that reorders the
// trace through a bounded buffer of at most w pending operations. A trace
// is w-window serializable iff it has a serial reordering obtainable by
// delaying each operation by at most the buffer capacity. The paper's
// point — reproduced as experiment E9 — is that real protocols like Lazy
// Caching need unboundedly large windows as their queues grow, while the
// constraint-graph observer stays fixed.
package boundedreorder

import (
	"sort"
	"strings"

	"scverify/internal/trace"
)

// CanReorder reports whether the trace has a serial reordering in which
// every operation is emitted while at most w operations are buffered. The
// search is a memoized DFS over (input position, buffered operations,
// memory contents) states.
func CanReorder(t trace.Trace, w int) bool {
	if len(t) == 0 {
		return true
	}
	if w < 1 {
		return t.IsSerial()
	}
	s := &searcher{t: t, w: w, memo: map[string]bool{}}
	mem := make(map[trace.BlockID]trace.Value)
	return s.search(0, nil, mem)
}

// MinWindow returns the smallest buffer capacity under which the trace is
// window-serializable, or -1 if even a buffer holding the whole trace does
// not help (the trace is not SC at all).
func MinWindow(t trace.Trace) int {
	for w := 0; w <= len(t); w++ {
		if CanReorder(t, w) {
			return w
		}
	}
	return -1
}

type searcher struct {
	t    trace.Trace
	w    int
	memo map[string]bool
}

// key canonically encodes (next, buffer, memory). The buffer is a set of
// trace positions; per-processor order within it is implied by positions.
func (s *searcher) key(next int, buf []int, mem map[trace.BlockID]trace.Value) string {
	var sb strings.Builder
	sb.Grow(4 * (len(buf) + len(mem) + 1))
	sb.WriteByte(byte(next))
	sb.WriteByte(byte(next >> 8))
	for _, i := range buf {
		sb.WriteByte(byte(i))
		sb.WriteByte(byte(i >> 8))
	}
	sb.WriteByte(0xff)
	blocks := make([]int, 0, len(mem))
	for b := range mem {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		sb.WriteByte(byte(b))
		sb.WriteByte(byte(mem[trace.BlockID(b)]))
	}
	return sb.String()
}

func (s *searcher) search(next int, buf []int, mem map[trace.BlockID]trace.Value) bool {
	if next == len(s.t) && len(buf) == 0 {
		return true
	}
	k := s.key(next, buf, mem)
	if v, ok := s.memo[k]; ok {
		return v
	}
	s.memo[k] = false // cycle guard; overwritten on success

	// Move the next input operation into the buffer.
	if next < len(s.t) && len(buf) < s.w {
		nbuf := append(append([]int(nil), buf...), next)
		if s.search(next+1, nbuf, mem) {
			s.memo[k] = true
			return true
		}
	}
	// Emit any buffered operation that is the oldest of its processor in
	// the buffer and consistent with serial semantics.
	for idx, pos := range buf {
		op := s.t[pos]
		oldest := true
		for _, other := range buf {
			if other < pos && s.t[other].Proc == op.Proc {
				oldest = false
				break
			}
		}
		if !oldest {
			continue
		}
		switch op.Kind {
		case trace.Load:
			cur, ok := mem[op.Block]
			if !ok {
				cur = trace.Bottom
			}
			if op.Value != cur {
				continue
			}
			nbuf := append(append([]int(nil), buf[:idx]...), buf[idx+1:]...)
			if s.search(next, nbuf, mem) {
				s.memo[k] = true
				return true
			}
		case trace.Store:
			old, had := mem[op.Block]
			mem[op.Block] = op.Value
			nbuf := append(append([]int(nil), buf[:idx]...), buf[idx+1:]...)
			ok := s.search(next, nbuf, mem)
			if had {
				mem[op.Block] = old
			} else {
				delete(mem, op.Block)
			}
			if ok {
				s.memo[k] = true
				return true
			}
		}
	}
	return false
}
