// Package sizebound computes the observer state-size bound of Section 4.4
// of Condon & Hu: for a protocol with L storage locations, p processors,
// b blocks and v values (real-time ST ordering assumed), the observer
// needs at most
//
//	(L + p·b)·(lg p + lg b + lg v + 1) + L·lg L
//
// bits of state beyond the protocol itself, where lg is the ceiling of
// log₂. The package also provides the value-optimized variant mentioned
// in the section (dropping lg v bits per node by checking values
// separately) and helpers to compare the bound against measured observer
// state counts.
package sizebound

import (
	"fmt"
	"math"
	"math/bits"
)

// Lg is the ceiling of log₂(n) for n ≥ 1; Lg(1) = 0.
func Lg(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("sizebound: Lg(%d)", n))
	}
	return bits.Len(uint(n - 1))
}

// Inputs are the parameters of the bound.
type Inputs struct {
	Procs, Blocks, Values int // p, b, v
	Locations             int // L
}

// Validate reports an error for non-positive parameters.
func (in Inputs) Validate() error {
	if in.Procs < 1 || in.Blocks < 1 || in.Values < 1 || in.Locations < 1 {
		return fmt.Errorf("sizebound: invalid inputs %+v", in)
	}
	return nil
}

// Bandwidth returns the constraint-graph bandwidth bound L + p·b of
// Section 4.4.
func (in Inputs) Bandwidth() int {
	return in.Locations + in.Procs*in.Blocks
}

// NodeBits returns the per-node label cost lg p + lg b + lg v + 1.
func (in Inputs) NodeBits() int {
	return Lg(in.Procs) + Lg(in.Blocks) + Lg(in.Values) + 1
}

// Bits returns the full Section 4.4 bound:
// (L + p·b)·(lg p + lg b + lg v + 1) + L·lg L.
func (in Inputs) Bits() int {
	return in.Bandwidth()*in.NodeBits() + in.Locations*Lg(in.Locations)
}

// BitsValueOptimized returns the bound with the lg v per-node bits removed
// — the optimization suggested at the end of Section 4.4 (value matching
// checked separately from cycle checking).
func (in Inputs) BitsValueOptimized() int {
	perNode := Lg(in.Procs) + Lg(in.Blocks) + 1
	return in.Bandwidth()*perNode + in.Locations*Lg(in.Locations)
}

// Row is one line of the size-bound table: the analytic bound next to an
// observed measurement.
type Row struct {
	Inputs
	BoundBits     int
	OptimizedBits int
	// MeasuredStates is the number of distinct observer states seen during
	// exhaustive exploration (0 when not measured); MeasuredBits is its
	// ceil-log₂.
	MeasuredStates int
	MeasuredBits   int
}

// NewRow evaluates the bound, attaching a measurement if provided.
func NewRow(in Inputs, measuredStates int) Row {
	r := Row{
		Inputs:        in,
		BoundBits:     in.Bits(),
		OptimizedBits: in.BitsValueOptimized(),
	}
	if measuredStates > 0 {
		r.MeasuredStates = measuredStates
		r.MeasuredBits = Lg(measuredStates)
	}
	return r
}

// String renders the row.
func (r Row) String() string {
	s := fmt.Sprintf("p=%d b=%d v=%d L=%d: bound=%d bits (opt %d)",
		r.Procs, r.Blocks, r.Values, r.Locations, r.BoundBits, r.OptimizedBits)
	if r.MeasuredStates > 0 {
		s += fmt.Sprintf(", measured %d states ≈ %d bits", r.MeasuredStates, r.MeasuredBits)
	}
	return s
}

// Sweep evaluates the bound over parameter grids, returning rows in
// lexicographic parameter order. L is derived per entry by locs(p,b).
func Sweep(procs, blocks, values []int, locs func(p, b int) int) []Row {
	var rows []Row
	for _, p := range procs {
		for _, b := range blocks {
			for _, v := range values {
				in := Inputs{Procs: p, Blocks: b, Values: v, Locations: locs(p, b)}
				rows = append(rows, NewRow(in, 0))
			}
		}
	}
	return rows
}

// StatesUpperBound converts a bit bound into a (possibly astronomically
// loose) state-count ceiling 2^bits, saturating at MaxFloat64.
func StatesUpperBound(bits int) float64 {
	if bits >= 1024 {
		return math.MaxFloat64
	}
	return math.Pow(2, float64(bits))
}
