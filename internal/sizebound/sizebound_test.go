package sizebound

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLg(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Lg(n); got != want {
			t.Errorf("Lg(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLgPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Lg(0)
}

func TestBitsFormula(t *testing.T) {
	// Hand-computed: p=2 b=2 v=2 L=6:
	// bandwidth = 6+4 = 10; per-node = 1+1+1+1 = 4; L·lgL = 6·3 = 18
	// → 10·4 + 18 = 58.
	in := Inputs{Procs: 2, Blocks: 2, Values: 2, Locations: 6}
	if got := in.Bits(); got != 58 {
		t.Errorf("Bits = %d, want 58", got)
	}
	if got := in.BitsValueOptimized(); got != 10*3+18 {
		t.Errorf("optimized = %d, want 48", got)
	}
	if in.Bandwidth() != 10 || in.NodeBits() != 4 {
		t.Errorf("components: bw=%d nb=%d", in.Bandwidth(), in.NodeBits())
	}
}

func TestValidate(t *testing.T) {
	if err := (Inputs{1, 1, 1, 1}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Inputs{0, 1, 1, 1}).Validate(); err == nil {
		t.Error("invalid inputs accepted")
	}
}

func TestOptimizedNeverLarger(t *testing.T) {
	prop := func(p, b, v, l uint8) bool {
		in := Inputs{
			Procs:     1 + int(p)%8,
			Blocks:    1 + int(b)%8,
			Values:    1 + int(v)%8,
			Locations: 1 + int(l)%64,
		}
		return in.BitsValueOptimized() <= in.Bits()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInEachParameter(t *testing.T) {
	base := Inputs{Procs: 2, Blocks: 2, Values: 2, Locations: 8}
	grow := []Inputs{
		{4, 2, 2, 8}, {2, 4, 2, 8}, {2, 2, 4, 8}, {2, 2, 2, 16},
	}
	for _, g := range grow {
		if g.Bits() <= base.Bits() {
			t.Errorf("bound not monotone: %+v gives %d <= base %d", g, g.Bits(), base.Bits())
		}
	}
}

func TestRowAndSweep(t *testing.T) {
	r := NewRow(Inputs{2, 2, 2, 6}, 1000)
	if r.MeasuredBits != 10 {
		t.Errorf("measured bits = %d", r.MeasuredBits)
	}
	if !strings.Contains(r.String(), "measured 1000 states") {
		t.Errorf("row string = %q", r.String())
	}
	rows := Sweep([]int{2, 4}, []int{1, 2}, []int{2}, func(p, b int) int { return b * (1 + p) })
	if len(rows) != 4 {
		t.Fatalf("sweep rows = %d", len(rows))
	}
	if rows[0].Locations != 1*(1+2) {
		t.Errorf("derived L = %d", rows[0].Locations)
	}
	unmeasured := NewRow(Inputs{2, 2, 2, 6}, 0)
	if strings.Contains(unmeasured.String(), "measured") {
		t.Error("unmeasured row mentions measurement")
	}
}

func TestStatesUpperBound(t *testing.T) {
	if StatesUpperBound(10) != 1024 {
		t.Errorf("2^10 = %f", StatesUpperBound(10))
	}
	if StatesUpperBound(2000) <= 0 {
		t.Error("saturated bound not positive")
	}
}
