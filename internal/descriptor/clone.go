package descriptor

// Clone returns a deep copy of the tracker; stepping the copy never
// affects the original. Used by the model checker to branch exploration.
func (t *Tracker) Clone() *Tracker {
	out := &Tracker{
		owner: make(map[int]int, len(t.owner)),
		ids:   make(map[int][]int, len(t.ids)),
		nodes: t.nodes,
	}
	for id, n := range t.owner {
		out.owner[id] = n
	}
	for n, ids := range t.ids {
		cp := make([]int, len(ids))
		copy(cp, ids)
		out.ids[n] = cp
	}
	return out
}
