package descriptor

import (
	"fmt"

	"scverify/internal/graph"
)

// Encode produces a k-graph descriptor for the constraint graph following
// the construction of Lemma 3.2: nodes are emitted in trace order, each
// taking an ID from a pool of k+1 recyclable IDs; edges between a new node
// and earlier still-active nodes are emitted immediately after the node;
// and a node's IDs return to the pool once all of its edges have been
// listed (its furthest adjacency is behind the cut).
//
// Encode fails if the graph's node bandwidth exceeds k — by Lemma 3.2, a
// bandwidth of at most k guarantees the pool never runs dry.
func Encode(g *graph.Graph, k int) (Stream, error) {
	n := g.Len()
	// Furthest adjacency per node (either direction); -1 for isolated nodes.
	reach := make([]int, n)
	for i := range reach {
		reach[i] = -1
	}
	type adj struct {
		other int
		kind  graph.EdgeKind
		out   bool // true: edge node->other; false: other->node
	}
	// For each node, edges to earlier nodes (emitted when the node appears).
	back := make([][]adj, n)
	for _, e := range g.Edges() {
		if e.To > reach[e.From] {
			reach[e.From] = e.To
		}
		if e.From > reach[e.To] {
			reach[e.To] = e.From
		}
		switch {
		case e.From < e.To:
			back[e.To] = append(back[e.To], adj{other: e.From, kind: e.Kind, out: false})
		case e.From > e.To:
			back[e.From] = append(back[e.From], adj{other: e.To, kind: e.Kind, out: true})
		default:
			return nil, fmt.Errorf("descriptor: self-loop on node %d not encodable", e.From+1)
		}
	}

	// releaseAt[i] lists nodes whose furthest adjacency is i; their IDs
	// recycle once node i has been processed.
	releaseAt := make([][]int, n)
	for j, r := range reach {
		if r > j {
			releaseAt[r] = append(releaseAt[r], j)
		}
	}

	free := make([]int, 0, k+1)
	for id := k + 1; id >= 1; id-- {
		free = append(free, id) // pop order: 1, 2, 3, ...
	}
	idOf := make([]int, n)
	var out Stream
	for i := 0; i < n; i++ {
		if len(free) == 0 {
			return nil, fmt.Errorf("descriptor: ID pool exhausted at node %d: graph bandwidth exceeds k=%d", i+1, k)
		}
		id := free[len(free)-1]
		free = free[:len(free)-1]
		idOf[i] = id
		op := g.Trace[i]
		out = append(out, Node{ID: id, Op: &op})
		for _, a := range back[i] {
			from, to := idOf[a.other], id
			if a.out {
				from, to = id, idOf[a.other]
			}
			for _, lbl := range LabelsForKind(a.kind) {
				out = append(out, Edge{From: from, To: to, Label: lbl})
			}
		}
		// Release every node (possibly including i itself) whose adjacencies
		// are now fully behind the cut: isolated nodes die immediately and
		// the rest die when the cut passes their furthest adjacency.
		if reach[i] <= i {
			free = append(free, idOf[i])
			idOf[i] = 0
		}
		for _, j := range releaseAt[i] {
			if idOf[j] != 0 {
				free = append(free, idOf[j])
				idOf[j] = 0
			}
		}
	}
	return out, nil
}

// EncodeAuto encodes the graph with the smallest sufficient ID pool,
// returning the stream and the bandwidth bound used (the graph's node
// bandwidth).
func EncodeAuto(g *graph.Graph) (Stream, int) {
	k := g.Bandwidth()
	if k == 0 {
		k = 1 // a pool of one ID still needs k+1 >= 2 only for edges; nodes alone need 1
	}
	s, err := Encode(g, k)
	if err != nil {
		// Bandwidth computation and encoder disagree — a bug, not an input
		// condition; surface loudly.
		panic(fmt.Sprintf("descriptor: EncodeAuto failed at k=%d: %v", k, err))
	}
	return s, k
}
