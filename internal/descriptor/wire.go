package descriptor

import (
	"encoding/binary"
	"fmt"

	"scverify/internal/trace"
)

// Binary wire format for descriptor streams. Each symbol is a 1-byte tag
// followed by uvarint fields. The format exists so observer output can be
// streamed, hashed and measured as a flat byte sequence — the "string" the
// paper's automata read — without holding symbol slices.
const (
	tagNode        byte = 1 // id
	tagNodeLabeled byte = 2 // id, kind, proc, block, value
	tagEdge        byte = 3 // from, to
	tagEdgeLabeled byte = 4 // from, to, label
	tagAddID       byte = 5 // existing, new
)

// AppendBinary appends the symbol's wire encoding to dst and returns the
// extended slice.
func AppendBinary(dst []byte, sym Symbol) []byte {
	switch v := sym.(type) {
	case Node:
		if v.Op == nil {
			dst = append(dst, tagNode)
			return binary.AppendUvarint(dst, uint64(v.ID))
		}
		dst = append(dst, tagNodeLabeled)
		dst = binary.AppendUvarint(dst, uint64(v.ID))
		dst = append(dst, byte(v.Op.Kind))
		dst = binary.AppendUvarint(dst, uint64(v.Op.Proc))
		dst = binary.AppendUvarint(dst, uint64(v.Op.Block))
		return binary.AppendUvarint(dst, uint64(v.Op.Value))
	case Edge:
		if v.Label == None {
			dst = append(dst, tagEdge)
			dst = binary.AppendUvarint(dst, uint64(v.From))
			return binary.AppendUvarint(dst, uint64(v.To))
		}
		dst = append(dst, tagEdgeLabeled)
		dst = binary.AppendUvarint(dst, uint64(v.From))
		dst = binary.AppendUvarint(dst, uint64(v.To))
		return append(dst, byte(v.Label))
	case AddID:
		dst = append(dst, tagAddID)
		dst = binary.AppendUvarint(dst, uint64(v.Existing))
		return binary.AppendUvarint(dst, uint64(v.New))
	default:
		panic(fmt.Sprintf("descriptor: unknown symbol type %T", sym))
	}
}

// Marshal encodes the whole stream.
func Marshal(s Stream) []byte {
	var out []byte
	for _, sym := range s {
		out = AppendBinary(out, sym)
	}
	return out
}

// Unmarshal decodes a wire-encoded stream.
func Unmarshal(data []byte) (Stream, error) {
	var out Stream
	pos := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("descriptor: truncated varint at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	for pos < len(data) {
		tag := data[pos]
		pos++
		switch tag {
		case tagNode:
			id, err := uv()
			if err != nil {
				return nil, err
			}
			out = append(out, Node{ID: int(id)})
		case tagNodeLabeled:
			id, err := uv()
			if err != nil {
				return nil, err
			}
			if pos >= len(data) {
				return nil, fmt.Errorf("descriptor: truncated node label at byte %d", pos)
			}
			kind := trace.OpKind(data[pos])
			pos++
			p, err := uv()
			if err != nil {
				return nil, err
			}
			b, err := uv()
			if err != nil {
				return nil, err
			}
			val, err := uv()
			if err != nil {
				return nil, err
			}
			op := trace.Op{Kind: kind, Proc: trace.ProcID(p), Block: trace.BlockID(b), Value: trace.Value(val)}
			out = append(out, Node{ID: int(id), Op: &op})
		case tagEdge, tagEdgeLabeled:
			from, err := uv()
			if err != nil {
				return nil, err
			}
			to, err := uv()
			if err != nil {
				return nil, err
			}
			label := None
			if tag == tagEdgeLabeled {
				if pos >= len(data) {
					return nil, fmt.Errorf("descriptor: truncated edge label at byte %d", pos)
				}
				label = EdgeLabel(data[pos])
				pos++
			}
			out = append(out, Edge{From: int(from), To: int(to), Label: label})
		case tagAddID:
			ex, err := uv()
			if err != nil {
				return nil, err
			}
			nw, err := uv()
			if err != nil {
				return nil, err
			}
			out = append(out, AddID{Existing: int(ex), New: int(nw)})
		default:
			return nil, fmt.Errorf("descriptor: unknown tag %d at byte %d", tag, pos-1)
		}
	}
	return out, nil
}
