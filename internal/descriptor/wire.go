package descriptor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary wire format for descriptor streams. Each symbol is a 1-byte tag
// followed by uvarint fields. The format exists so observer output can be
// streamed, hashed and measured as a flat byte sequence — the "string" the
// paper's automata read — without holding symbol slices.
const (
	tagNode        byte = 1 // id
	tagNodeLabeled byte = 2 // id, kind, proc, block, value
	tagEdge        byte = 3 // from, to
	tagEdgeLabeled byte = 4 // from, to, label
	tagAddID       byte = 5 // existing, new
)

// AppendBinary appends the symbol's wire encoding to dst and returns the
// extended slice.
func AppendBinary(dst []byte, sym Symbol) []byte {
	switch v := sym.(type) {
	case Node:
		if v.Op == nil {
			dst = append(dst, tagNode)
			return binary.AppendUvarint(dst, uint64(v.ID))
		}
		dst = append(dst, tagNodeLabeled)
		dst = binary.AppendUvarint(dst, uint64(v.ID))
		dst = append(dst, byte(v.Op.Kind))
		dst = binary.AppendUvarint(dst, uint64(v.Op.Proc))
		dst = binary.AppendUvarint(dst, uint64(v.Op.Block))
		return binary.AppendUvarint(dst, uint64(v.Op.Value))
	case Edge:
		if v.Label == None {
			dst = append(dst, tagEdge)
			dst = binary.AppendUvarint(dst, uint64(v.From))
			return binary.AppendUvarint(dst, uint64(v.To))
		}
		dst = append(dst, tagEdgeLabeled)
		dst = binary.AppendUvarint(dst, uint64(v.From))
		dst = binary.AppendUvarint(dst, uint64(v.To))
		return append(dst, byte(v.Label))
	case AddID:
		dst = append(dst, tagAddID)
		dst = binary.AppendUvarint(dst, uint64(v.Existing))
		return binary.AppendUvarint(dst, uint64(v.New))
	default:
		panic(fmt.Sprintf("descriptor: unknown symbol type %T", sym))
	}
}

// Marshal encodes the whole stream.
func Marshal(s Stream) []byte {
	var out []byte
	for _, sym := range s {
		out = AppendBinary(out, sym)
	}
	return out
}

// Unmarshal decodes a wire-encoded stream. Decode failures are
// *DecodeError values carrying the byte offset and symbol index of the
// malformed symbol.
func Unmarshal(data []byte) (Stream, error) {
	d := NewDecoder(bytes.NewReader(data))
	var out Stream
	for {
		sym, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, sym)
	}
}
