// Package descriptor implements the k-graph descriptor notation of
// Section 3.2 of Condon & Hu: a string representation of node-bandwidth-
// bounded graphs in which nodes are referred to by recyclable IDs from the
// range 1..k+1 rather than by absolute node numbers. A descriptor is a
// sequence of node descriptors (ID plus optional operation label), edge
// descriptors (ID pair plus optional edge label), and add-ID symbols that
// alias an additional ID to an existing node — modelling a stored value
// being copied into another protocol location.
//
// The package provides the ID-set semantics of the paper (Tracker), a
// decoder that reconstructs the full graph (the unbounded-memory reference
// against which the finite-state checkers are differentially tested), a
// constructive encoder implementing Lemma 3.2, and compact binary and
// human-readable text serializations of symbol streams.
package descriptor

import (
	"fmt"
	"strings"

	"scverify/internal/graph"
	"scverify/internal/trace"
)

// EdgeLabel is a symbol from the edge label alphabet E of Section 3.4:
// {inh, po, forced, STo, po-STo, po-inh, po-forced}, plus None for
// unlabeled edges.
type EdgeLabel uint8

const (
	// None marks an edge descriptor with no label symbol following it.
	None EdgeLabel = iota
	// Inh labels an inheritance edge.
	Inh
	// PO labels a program-order edge.
	PO
	// Forced labels a forced edge.
	Forced
	// STo labels a store-order edge.
	STo
	// POSTo labels an edge that is both program-order and store-order.
	POSTo
	// POInh labels an edge that is both program-order and inheritance.
	POInh
	// POForced labels an edge that is both program-order and forced.
	POForced

	numEdgeLabels
)

var edgeLabelNames = [...]string{
	None: "", Inh: "inh", PO: "po", Forced: "forced", STo: "STo",
	POSTo: "po-STo", POInh: "po-inh", POForced: "po-forced",
}

// String returns the paper's notation for the label; None renders empty.
func (l EdgeLabel) String() string {
	if int(l) < len(edgeLabelNames) {
		return edgeLabelNames[l]
	}
	return fmt.Sprintf("EdgeLabel(%d)", uint8(l))
}

// Kind converts the label to the annotation bitmask it denotes.
func (l EdgeLabel) Kind() graph.EdgeKind {
	switch l {
	case Inh:
		return graph.Inheritance
	case PO:
		return graph.ProgramOrder
	case Forced:
		return graph.Forced
	case STo:
		return graph.StoreOrder
	case POSTo:
		return graph.ProgramOrder | graph.StoreOrder
	case POInh:
		return graph.ProgramOrder | graph.Inheritance
	case POForced:
		return graph.ProgramOrder | graph.Forced
	default:
		return 0
	}
}

// LabelsForKind decomposes an annotation bitmask into the minimal sequence
// of edge labels denoting it, preferring the combined po-X labels of the
// observer alphabet. A zero kind yields a single None label.
func LabelsForKind(k graph.EdgeKind) []EdgeLabel {
	if k == 0 {
		return []EdgeLabel{None}
	}
	var out []EdgeLabel
	po := k&graph.ProgramOrder != 0
	rest := k &^ graph.ProgramOrder
	emit := func(single, combined EdgeLabel, bit graph.EdgeKind) {
		if rest&bit == 0 {
			return
		}
		rest &^= bit
		if po {
			out = append(out, combined)
			po = false
		} else {
			out = append(out, single)
		}
	}
	emit(STo, POSTo, graph.StoreOrder)
	emit(Inh, POInh, graph.Inheritance)
	emit(Forced, POForced, graph.Forced)
	if po {
		out = append(out, PO)
	}
	return out
}

// Symbol is one element of a k-graph descriptor string.
type Symbol interface {
	isSymbol()
	// Text renders the symbol in the paper's notation.
	Text() string
}

// Node is a node descriptor: a fresh node with the given ID, optionally
// labeled with a memory operation.
type Node struct {
	ID int
	// Op is the node's operation label; nil for an unlabeled node.
	Op *trace.Op
}

// Edge is an edge descriptor between the nodes currently holding IDs From
// and To, optionally labeled.
type Edge struct {
	From, To int
	Label    EdgeLabel
}

// AddID is the add-ID(Existing, New) symbol: the node holding ID Existing
// (if any) gains the alias New, and New ceases to identify any other node.
type AddID struct {
	Existing, New int
}

func (Node) isSymbol()  {}
func (Edge) isSymbol()  {}
func (AddID) isSymbol() {}

// Text renders the node descriptor, e.g. "3" or "3,ST(P1,B1,1)".
func (n Node) Text() string {
	if n.Op == nil {
		return fmt.Sprintf("%d", n.ID)
	}
	return fmt.Sprintf("%d,%s", n.ID, n.Op)
}

// Text renders the edge descriptor, e.g. "(1,2),inh".
func (e Edge) Text() string {
	if e.Label == None {
		return fmt.Sprintf("(%d,%d)", e.From, e.To)
	}
	return fmt.Sprintf("(%d,%d),%s", e.From, e.To, e.Label)
}

// Text renders the add-ID symbol, e.g. "add-ID(1,4)".
func (a AddID) Text() string { return fmt.Sprintf("add-ID(%d,%d)", a.Existing, a.New) }

// Stream is a sequence of descriptor symbols.
type Stream []Symbol

// Text renders the whole stream in the paper's comma-separated notation.
func (s Stream) Text() string {
	parts := make([]string, len(s))
	for i, sym := range s {
		parts[i] = sym.Text()
	}
	return strings.Join(parts, ", ")
}

// Validate reports the first structural problem in the stream for the given
// bandwidth bound k: IDs outside 1..k+1, or (in strict mode) edge or add-ID
// symbols referring to IDs not currently identifying any node. A nil error
// means the stream is a proper k-graph descriptor.
func (s Stream) Validate(k int, strict bool) error {
	tr := NewTracker()
	for idx, sym := range s {
		switch v := sym.(type) {
		case Node:
			if v.ID < 1 || v.ID > k+1 {
				return fmt.Errorf("descriptor: symbol %d: node ID %d outside 1..%d", idx, v.ID, k+1)
			}
		case Edge:
			if v.From < 1 || v.From > k+1 || v.To < 1 || v.To > k+1 {
				return fmt.Errorf("descriptor: symbol %d: edge (%d,%d) outside 1..%d", idx, v.From, v.To, k+1)
			}
			if v.Label >= numEdgeLabels {
				return fmt.Errorf("descriptor: symbol %d: unknown edge label %d", idx, v.Label)
			}
			if strict {
				if _, ok := tr.Owner(v.From); !ok {
					return fmt.Errorf("descriptor: symbol %d: edge source ID %d unbound", idx, v.From)
				}
				if _, ok := tr.Owner(v.To); !ok {
					return fmt.Errorf("descriptor: symbol %d: edge target ID %d unbound", idx, v.To)
				}
			}
		case AddID:
			if v.Existing < 1 || v.Existing > k+1 || v.New < 1 || v.New > k+1 {
				return fmt.Errorf("descriptor: symbol %d: add-ID(%d,%d) outside 1..%d", idx, v.Existing, v.New, k+1)
			}
			if strict {
				// An add-ID with an unbound source is the release idiom
				// (it unbinds New); it is only suspicious when New is
				// unbound too, making the symbol a complete no-op.
				_, srcOK := tr.Owner(v.Existing)
				_, dstOK := tr.Owner(v.New)
				if !srcOK && !dstOK {
					return fmt.Errorf("descriptor: symbol %d: add-ID(%d,%d) with both IDs unbound", idx, v.Existing, v.New)
				}
			}
		default:
			return fmt.Errorf("descriptor: symbol %d: unknown symbol type %T", idx, sym)
		}
		tr.Apply(sym)
	}
	return nil
}

// MaxID returns the largest ID mentioned anywhere in the stream, i.e. the
// smallest k+1 for which the stream is within ID range.
func (s Stream) MaxID() int {
	max := 0
	upd := func(ids ...int) {
		for _, id := range ids {
			if id > max {
				max = id
			}
		}
	}
	for _, sym := range s {
		switch v := sym.(type) {
		case Node:
			upd(v.ID)
		case Edge:
			upd(v.From, v.To)
		case AddID:
			upd(v.Existing, v.New)
		}
	}
	return max
}
