package descriptor

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"

	"scverify/internal/trace"
)

func testStream() Stream {
	st := trace.ST(1, 1, 1)
	ld := trace.LD(2, 1, 1)
	return Stream{
		Node{ID: 1, Op: &st},
		Node{ID: 2, Op: &ld},
		Edge{From: 1, To: 2, Label: POInh},
		AddID{Existing: 1, New: 3},
		Node{ID: 2},
		Edge{From: 1, To: 3},
	}
}

// TestDecoderMatchesUnmarshal: symbol-at-a-time decoding yields exactly the
// stream Unmarshal produces, with clean io.EOF at the end.
func TestDecoderMatchesUnmarshal(t *testing.T) {
	want := testStream()
	data := Marshal(want)
	d := NewDecoder(bytes.NewReader(data))
	var got Stream
	for {
		sym, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, sym)
	}
	if got.Text() != want.Text() {
		t.Fatalf("decoded %q, want %q", got.Text(), want.Text())
	}
	if d.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", d.Count(), len(want))
	}
	if d.Offset() != int64(len(data)) {
		t.Fatalf("Offset = %d, want %d", d.Offset(), len(data))
	}
	// io.EOF is sticky.
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v", err)
	}
}

// TestDecoderPositionedErrors: malformed input yields a *DecodeError whose
// Offset and Symbol point at the offending symbol's first byte.
func TestDecoderPositionedErrors(t *testing.T) {
	prefix := Marshal(testStream()[:2]) // two well-formed symbols
	cases := []struct {
		name      string
		tail      []byte
		truncated bool
	}{
		{"unknown tag", []byte{99}, false},
		{"truncated node varint", []byte{tagNode}, true},
		{"truncated labeled node", []byte{tagNodeLabeled, 0x01, 0x00, 0x01}, true},
		{"truncated edge", []byte{tagEdge, 0x01}, true},
		{"truncated edge label", []byte{tagEdgeLabeled, 0x01, 0x02}, true},
		{"truncated add-ID", []byte{tagAddID, 0x01}, true},
		{"varint overflow", append([]byte{tagNode}, bytes.Repeat([]byte{0xff}, 10)...), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append(append([]byte(nil), prefix...), tc.tail...)
			d := NewDecoder(bytes.NewReader(data))
			var err error
			for err == nil {
				_, err = d.Next()
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v (%T), want *DecodeError", err, err)
			}
			if de.Symbol != 2 {
				t.Errorf("Symbol = %d, want 2", de.Symbol)
			}
			if de.Offset != int64(len(prefix)) {
				t.Errorf("Offset = %d, want %d", de.Offset, len(prefix))
			}
			if de.Truncated != tc.truncated {
				t.Errorf("Truncated = %v, want %v", de.Truncated, tc.truncated)
			}
			// The error is sticky.
			if _, err2 := d.Next(); err2 != err {
				t.Errorf("error not sticky: %v then %v", err, err2)
			}
			// Unmarshal reports the same positioned error.
			if _, uerr := Unmarshal(data); !errors.As(uerr, &de) {
				t.Errorf("Unmarshal error %v, want *DecodeError", uerr)
			}
		})
	}
}

// TestDecoderEveryTruncation chops a marshaled stream at every byte
// position: a cut at a symbol boundary is a clean EOF; any other cut
// yields a truncation error positioned at the start of the cut symbol.
func TestDecoderEveryTruncation(t *testing.T) {
	s := testStream()
	data := Marshal(s)
	// Record symbol start offsets.
	starts := map[int64]bool{}
	var off int64
	starts[0] = true
	for _, sym := range s {
		off += int64(len(AppendBinary(nil, sym)))
		starts[off] = true
	}
	for cut := 0; cut <= len(data); cut++ {
		d := NewDecoder(bytes.NewReader(data[:cut]))
		var err error
		n := 0
		for {
			_, err = d.Next()
			if err != nil {
				break
			}
			n++
		}
		if starts[int64(cut)] {
			if err != io.EOF {
				t.Fatalf("cut at boundary %d: err %v, want io.EOF", cut, err)
			}
			continue
		}
		var de *DecodeError
		if !errors.As(err, &de) || !de.Truncated {
			t.Fatalf("cut at %d: err %v, want truncated *DecodeError", cut, err)
		}
		if !starts[de.Offset] || de.Offset > int64(cut) {
			t.Fatalf("cut at %d: error offset %d is not a symbol start before the cut", cut, de.Offset)
		}
		if de.Symbol != n {
			t.Fatalf("cut at %d: error symbol %d, want %d", cut, de.Symbol, n)
		}
	}
}

// repeatReader serves the same chunk n times without materializing the
// whole stream, so the bounded-memory test's input costs no heap.
type repeatReader struct {
	chunk []byte
	n     int
	pos   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	m := copy(p, r.chunk[r.pos:])
	r.pos += m
	if r.pos == len(r.chunk) {
		r.pos = 0
		r.n--
	}
	return m, nil
}

// TestDecoderBoundedMemory decodes a multi-megabyte synthetic stream and
// asserts the live heap stays far below the stream size — the regression
// guard for the io.ReadAll-era behavior of holding the whole input (and
// decoded Stream) in memory.
func TestDecoderBoundedMemory(t *testing.T) {
	chunk := Marshal(testStream())
	const repeats = 400000 // ~10 MB of wire bytes, ~2.4M symbols
	total := int64(len(chunk)) * repeats
	if total < 8<<20 {
		t.Fatalf("synthetic stream too small: %d bytes", total)
	}
	d := NewDecoder(&repeatReader{chunk: chunk, n: repeats})

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	syms := 0
	var peak uint64
	for {
		_, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next at symbol %d: %v", syms, err)
		}
		syms++
		if syms%500000 == 0 {
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
		}
	}
	if d.Offset() != total {
		t.Fatalf("consumed %d bytes, want %d", d.Offset(), total)
	}
	if syms != repeats*len(testStream()) {
		t.Fatalf("decoded %d symbols, want %d", syms, repeats*len(testStream()))
	}
	// Live heap while streaming must stay far below the input size; allow
	// generous slack over the baseline for runtime noise.
	limit := m0.HeapAlloc + 2<<20
	if peak > limit {
		t.Fatalf("peak live heap %d bytes over a %d-byte stream (baseline %d); decoding is not bounded-memory",
			peak, total, m0.HeapAlloc)
	}
}
