package descriptor

import (
	"reflect"
	"strings"
	"testing"

	"scverify/internal/graph"
	"scverify/internal/trace"
)

func op(o trace.Op) *trace.Op { return &o }

// figure3Stream is the 3-bandwidth descriptor of the paper's Figure 3 as
// written in Section 3.2, where ID 1 is recycled for node 5:
//
//	1, ST(P1,B,1), 2, LD(P2,B,1), (1,2), inh, 3, ST(P1,B,2), (1,3), po-STo,
//	4, LD(P2,B,1), (1,4), inh, (2,4), po, (4,3), forced,
//	1, LD(P2,B,2), (3,1), inh, (4,1), po
func figure3Stream() Stream {
	return Stream{
		Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		Edge{From: 1, To: 2, Label: Inh},
		Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		Edge{From: 1, To: 3, Label: POSTo},
		Node{ID: 4, Op: op(trace.LD(2, 1, 1))},
		Edge{From: 1, To: 4, Label: Inh},
		Edge{From: 2, To: 4, Label: PO},
		Edge{From: 4, To: 3, Label: Forced},
		Node{ID: 1, Op: op(trace.LD(2, 1, 2))},
		Edge{From: 3, To: 1, Label: Inh},
		Edge{From: 4, To: 1, Label: PO},
	}
}

func TestEdgeLabelStrings(t *testing.T) {
	cases := map[EdgeLabel]string{
		None: "", Inh: "inh", PO: "po", Forced: "forced", STo: "STo",
		POSTo: "po-STo", POInh: "po-inh", POForced: "po-forced",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("label %d = %q, want %q", l, got, want)
		}
	}
	if got := EdgeLabel(99).String(); got != "EdgeLabel(99)" {
		t.Errorf("unknown label = %q", got)
	}
}

func TestEdgeLabelKindRoundTrip(t *testing.T) {
	for l := None; l < numEdgeLabels; l++ {
		labels := LabelsForKind(l.Kind())
		if l == None {
			if len(labels) != 1 || labels[0] != None {
				t.Errorf("None round trip = %v", labels)
			}
			continue
		}
		if len(labels) != 1 || labels[0] != l {
			t.Errorf("label %v round trip = %v", l, labels)
		}
	}
}

func TestLabelsForKindDecomposes(t *testing.T) {
	// inh|STo has no single label: must decompose into two symbols whose
	// kinds OR back to the original.
	kind := graph.Inheritance | graph.StoreOrder
	labels := LabelsForKind(kind)
	var got graph.EdgeKind
	for _, l := range labels {
		got |= l.Kind()
	}
	if got != kind {
		t.Errorf("decomposition %v ORs to %v, want %v", labels, got, kind)
	}
	// po|inh|forced: three annotations, must still OR back.
	kind = graph.ProgramOrder | graph.Inheritance | graph.Forced
	labels = LabelsForKind(kind)
	got = 0
	for _, l := range labels {
		got |= l.Kind()
	}
	if got != kind {
		t.Errorf("decomposition %v ORs to %v, want %v", labels, got, kind)
	}
}

func TestSymbolText(t *testing.T) {
	if got := (Node{ID: 3}).Text(); got != "3" {
		t.Errorf("unlabeled node text = %q", got)
	}
	if got := (Node{ID: 1, Op: op(trace.ST(1, 2, 3))}).Text(); got != "1,ST(P1,B2,3)" {
		t.Errorf("labeled node text = %q", got)
	}
	if got := (Edge{From: 1, To: 2}).Text(); got != "(1,2)" {
		t.Errorf("unlabeled edge text = %q", got)
	}
	if got := (Edge{From: 4, To: 3, Label: Forced}).Text(); got != "(4,3),forced" {
		t.Errorf("labeled edge text = %q", got)
	}
	if got := (AddID{Existing: 1, New: 4}).Text(); got != "add-ID(1,4)" {
		t.Errorf("add-ID text = %q", got)
	}
}

func TestFigure3StreamText(t *testing.T) {
	text := figure3Stream().Text()
	for _, frag := range []string{"1,ST(P1,B1,1)", "(1,3),po-STo", "(4,3),forced", "(3,1),inh"} {
		if !strings.Contains(text, frag) {
			t.Errorf("stream text missing %q:\n%s", frag, text)
		}
	}
}

func TestFigure3StreamDecodesToFigure3Graph(t *testing.T) {
	d := Decode(figure3Stream())
	if len(d.Labels) != 5 {
		t.Fatalf("decoded %d nodes, want 5", len(d.Labels))
	}
	g, err := d.ToConstraintGraph()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConstraints(); err != nil {
		t.Errorf("decoded Figure 3 violates constraints: %v", err)
	}
	if !g.IsAcyclic() {
		t.Error("decoded Figure 3 cyclic")
	}
	// ID 1 recycling: the inh edge (3,1) must land on node 5 (index 4),
	// not node 1 (index 0).
	k, ok := g.EdgeKindBetween(2, 4)
	if !ok || k&graph.Inheritance == 0 {
		t.Errorf("edge (3,5) after recycling: kind=%v ok=%v", k, ok)
	}
	if bw := g.Bandwidth(); bw != 3 {
		t.Errorf("bandwidth = %d, want 3", bw)
	}
}

func TestFigure3StreamValidates(t *testing.T) {
	s := figure3Stream()
	if err := s.Validate(3, true); err != nil {
		t.Errorf("Figure 3 stream invalid at k=3: %v", err)
	}
	if err := s.Validate(2, true); err == nil {
		t.Error("Figure 3 stream uses ID 4; must fail at k=2")
	}
	if got := s.MaxID(); got != 4 {
		t.Errorf("MaxID = %d, want 4", got)
	}
}

func TestValidateUnboundEdge(t *testing.T) {
	s := Stream{
		Node{ID: 1},
		Edge{From: 1, To: 2}, // ID 2 never bound
	}
	if err := s.Validate(3, true); err == nil {
		t.Error("unbound edge target accepted in strict mode")
	}
	if err := s.Validate(3, false); err != nil {
		t.Errorf("lenient mode should accept: %v", err)
	}
}

func TestValidateUnboundAddID(t *testing.T) {
	// Both IDs unbound: a complete no-op, rejected in strict mode.
	s := Stream{Node{ID: 1}, AddID{Existing: 2, New: 3}}
	if err := s.Validate(3, true); err == nil {
		t.Error("fully unbound add-ID accepted")
	}
	// Unbound source with bound target is the release idiom: accepted.
	s = Stream{Node{ID: 1}, AddID{Existing: 2, New: 1}}
	if err := s.Validate(3, true); err != nil {
		t.Errorf("release add-ID rejected: %v", err)
	}
}

func TestTrackerNodeRecycling(t *testing.T) {
	tr := NewTracker()
	eff := tr.Apply(Node{ID: 1})
	if eff.NewNode != 0 || eff.Displaced != -1 {
		t.Fatalf("first node effect = %+v", eff)
	}
	eff = tr.Apply(Node{ID: 1})
	if eff.NewNode != 1 || eff.Displaced != 0 || !eff.DisplacedEmptied {
		t.Fatalf("recycled node effect = %+v", eff)
	}
	if n, ok := tr.Owner(1); !ok || n != 1 {
		t.Errorf("owner of 1 = %d, %v", n, ok)
	}
	if got := tr.Nodes(); got != 2 {
		t.Errorf("Nodes() = %d", got)
	}
}

func TestTrackerAddID(t *testing.T) {
	tr := NewTracker()
	tr.Apply(Node{ID: 1})
	tr.Apply(Node{ID: 2})
	// Alias ID 3 to node 0 via its ID 1.
	eff := tr.Apply(AddID{Existing: 1, New: 3})
	if eff.Gainer != 0 {
		t.Fatalf("gainer = %d, want 0", eff.Gainer)
	}
	if set := tr.IDSet(0); len(set) != 2 {
		t.Errorf("node 0 ID-set = %v", set)
	}
	// Steal ID 2 (held by node 1) for node 0: node 1 is displaced and
	// leaves the active set.
	eff = tr.Apply(AddID{Existing: 3, New: 2})
	if eff.Gainer != 0 || eff.Displaced != 1 || !eff.DisplacedEmptied {
		t.Fatalf("steal effect = %+v", eff)
	}
	if _, ok := tr.Owner(2); !ok {
		t.Error("ID 2 should now be bound to node 0")
	}
	if len(tr.Active()) != 1 {
		t.Errorf("active = %v", tr.Active())
	}
}

func TestTrackerActiveSortedAscending(t *testing.T) {
	tr := NewTracker()
	for id := 1; id <= 9; id++ {
		tr.Apply(Node{ID: id})
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	// Repeated calls must agree: the order is a documented guarantee, not
	// whatever map iteration happened to produce.
	for i := 0; i < 10; i++ {
		got := tr.Active()
		if len(got) != len(want) {
			t.Fatalf("Active() = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Active() = %v, want ascending %v", got, want)
			}
		}
	}
}

func TestTrackerAddIDSelf(t *testing.T) {
	tr := NewTracker()
	tr.Apply(Node{ID: 1})
	eff := tr.Apply(AddID{Existing: 1, New: 1})
	if eff.Gainer != 0 || eff.Displaced != -1 {
		t.Fatalf("self add-ID effect = %+v", eff)
	}
	if set := tr.IDSet(0); len(set) != 1 || set[0] != 1 {
		t.Errorf("ID-set after self add = %v", set)
	}
}

func TestTrackerAddIDUnboundSourceReleasesNew(t *testing.T) {
	tr := NewTracker()
	tr.Apply(Node{ID: 2})
	// add-ID(1,2) with ID 1 unbound: ID 2 is released from node 0 and
	// bound to nothing.
	eff := tr.Apply(AddID{Existing: 1, New: 2})
	if eff.Gainer != -1 || eff.Displaced != 0 || !eff.DisplacedEmptied {
		t.Fatalf("effect = %+v", eff)
	}
	if _, ok := tr.Owner(2); ok {
		t.Error("ID 2 should be unbound")
	}
}

func TestTrackerEdgeEffect(t *testing.T) {
	tr := NewTracker()
	tr.Apply(Node{ID: 1})
	tr.Apply(Node{ID: 2})
	eff := tr.Apply(Edge{From: 1, To: 2})
	if eff.FromNode != 0 || eff.ToNode != 1 {
		t.Fatalf("edge effect = %+v", eff)
	}
	eff = tr.Apply(Edge{From: 1, To: 9})
	if eff.ToNode != -1 {
		t.Errorf("unbound target effect = %+v", eff)
	}
}

func TestDecodeMultiIDNode(t *testing.T) {
	// A store whose value is copied into a second location: the node gains
	// an alias, and edges through either ID hit the same node.
	s := Stream{
		Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		AddID{Existing: 1, New: 2},
		Node{ID: 3, Op: op(trace.LD(2, 1, 1))},
		Edge{From: 2, To: 3, Label: Inh},
	}
	d := Decode(s)
	if len(d.Edges) != 1 || d.Edges[0].From != 0 || d.Edges[0].To != 1 {
		t.Fatalf("edges = %+v", d.Edges)
	}
}

func TestDecodedIsAcyclic(t *testing.T) {
	s := Stream{Node{ID: 1}, Node{ID: 2}, Edge{From: 1, To: 2}, Edge{From: 2, To: 1}}
	if Decode(s).IsAcyclic() {
		t.Error("2-cycle reported acyclic")
	}
	s = Stream{Node{ID: 1}, Node{ID: 2}, Edge{From: 1, To: 2}}
	if !Decode(s).IsAcyclic() {
		t.Error("chain reported cyclic")
	}
}

func TestToConstraintGraphUnlabeled(t *testing.T) {
	if _, err := Decode(Stream{Node{ID: 1}}).ToConstraintGraph(); err == nil {
		t.Error("unlabeled node accepted")
	}
}

func TestStreamTrace(t *testing.T) {
	tr := figure3Stream().Trace()
	want := trace.Trace{
		trace.ST(1, 1, 1), trace.LD(2, 1, 1), trace.ST(1, 1, 2),
		trace.LD(2, 1, 1), trace.LD(2, 1, 2),
	}
	if !reflect.DeepEqual(tr, want) {
		t.Errorf("Trace() = %s, want %s", tr, want)
	}
}
