package descriptor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scverify/internal/graph"
	"scverify/internal/trace"
)

func figure3Graph() *graph.Graph {
	t := trace.Trace{
		trace.ST(1, 1, 1), trace.LD(2, 1, 1), trace.ST(1, 1, 2),
		trace.LD(2, 1, 1), trace.LD(2, 1, 2),
	}
	g := graph.New(t)
	g.AddEdge(0, 1, graph.Inheritance)
	g.AddEdge(0, 2, graph.ProgramOrder|graph.StoreOrder)
	g.AddEdge(0, 3, graph.Inheritance)
	g.AddEdge(1, 3, graph.ProgramOrder)
	g.AddEdge(3, 2, graph.Forced)
	g.AddEdge(2, 4, graph.Inheritance)
	g.AddEdge(3, 4, graph.ProgramOrder)
	return g
}

// decodeToGraph re-materializes a constraint graph from a stream; test
// helper for round trips.
func decodeToGraph(t *testing.T, s Stream) *graph.Graph {
	t.Helper()
	g, err := Decode(s).ToConstraintGraph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func graphsEqual(a, b *graph.Graph) bool {
	return reflect.DeepEqual(a.Trace, b.Trace) && reflect.DeepEqual(a.Edges(), b.Edges())
}

func TestEncodeFigure3RoundTrip(t *testing.T) {
	g := figure3Graph()
	s, err := Encode(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(3, true); err != nil {
		t.Fatalf("encoded stream invalid: %v", err)
	}
	if !graphsEqual(g, decodeToGraph(t, s)) {
		t.Errorf("round trip mismatch:\n in: %s\nout: %s", g, decodeToGraph(t, s))
	}
}

func TestEncodeRejectsTooSmallK(t *testing.T) {
	g := figure3Graph() // bandwidth 3
	if _, err := Encode(g, 2); err == nil {
		t.Error("k below bandwidth accepted")
	}
}

func TestEncodeRejectsSelfLoop(t *testing.T) {
	g := graph.New(trace.Trace{trace.ST(1, 1, 1)})
	g.AddEdge(0, 0, 0)
	if _, err := Encode(g, 3); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestEncodeAuto(t *testing.T) {
	g := figure3Graph()
	s, k := EncodeAuto(g)
	if k != 3 {
		t.Errorf("EncodeAuto bandwidth = %d, want 3", k)
	}
	if !graphsEqual(g, decodeToGraph(t, s)) {
		t.Error("EncodeAuto round trip mismatch")
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	g := graph.New(nil)
	s, err := Encode(g, 0)
	if err != nil || len(s) != 0 {
		t.Errorf("empty graph: stream=%v err=%v", s, err)
	}
}

// randomDAG builds a random DAG over n trace operations with edges only
// from lower to higher indices, then reports it and its bandwidth.
func randomDAG(rng *rand.Rand, n int, density float64) *graph.Graph {
	tr := make(trace.Trace, n)
	for i := range tr {
		tr[i] = trace.ST(trace.ProcID(1+rng.Intn(3)), trace.BlockID(1+rng.Intn(3)), trace.Value(1+rng.Intn(3)))
	}
	g := graph.New(tr)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.AddEdge(i, j, 0)
			}
		}
	}
	return g
}

func TestEncodeDecodeRandomDAGsProperty(t *testing.T) {
	// Lemma 3.2 property: every k-bandwidth-bounded graph has a k-graph
	// descriptor, and decoding it recovers the graph exactly.
	rng := rand.New(rand.NewSource(3))
	prop := func(_ uint8) bool {
		n := 2 + rng.Intn(14)
		g := randomDAG(rng, n, 0.3)
		bw := g.Bandwidth()
		k := bw
		if k == 0 {
			k = 1
		}
		s, err := Encode(g, k)
		if err != nil {
			return false
		}
		if s.Validate(k, true) != nil {
			return false
		}
		got, err := Decode(s).ToConstraintGraph()
		if err != nil {
			return false
		}
		return graphsEqual(g, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEncodeUsesAtMostKPlusOneIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		g := randomDAG(rng, 12, 0.4)
		s, k := EncodeAuto(g)
		if got := s.MaxID(); got > k+1 {
			t.Fatalf("stream uses ID %d with bandwidth %d", got, k)
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s := figure3Stream()
	s = append(s, AddID{Existing: 1, New: 2}, Node{ID: 2}, Edge{From: 1, To: 2})
	data := Marshal(s)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("wire round trip mismatch:\n in: %v\nout: %v", s, got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		{99},                   // unknown tag
		{tagNode},              // truncated varint
		{tagNodeLabeled, 1},    // missing label fields
		{tagEdgeLabeled, 1, 2}, // missing label byte
		{tagAddID, 1},          // truncated
	}
	for _, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("Unmarshal(%v) accepted", data)
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	s := figure3Stream()
	if !reflect.DeepEqual(Marshal(s), Marshal(s)) {
		t.Error("Marshal not deterministic")
	}
}
