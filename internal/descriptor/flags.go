package descriptor

// This file is the repository's central wire-flag registry: the single
// place any flag bit carried by a scverify wire frame (scserve hello,
// verdict, ack) may be allocated. Wire compatibility across the fleet
// rests on flag bits never colliding — a bit reused for two meanings
// parses cleanly on both ends and silently changes a session's semantics,
// which is exactly the class of bug no dynamic test reliably catches
// (both peers agree, just on the wrong thing). Allocating every bit here,
// and aliasing it from the package that encodes it, makes collisions a
// compile-time/static-analysis failure instead.
//
// The scvet wireflag analyzer (SV004-family rule SV005) enforces the
// contract around this block:
//
//   - every flag-named constant outside a marked registry must alias a
//     registry constant (no locally invented bits);
//   - within the registry, bits of one family must be pairwise distinct;
//   - every parser of a flag field must mask-and-reject bits it does not
//     handle, and every encoder may set declared bits only.
//
// Declared does not mean handled: a bit may be reserved here before any
// parser accepts it. Parsers keep rejecting reserved bits until the
// release that implements them — that is the forward-compatibility
// contract the scserve fuzz seeds pin down — but the allocation here
// guarantees the next wire-compatible extension cannot collide with a bit
// already in flight. The tiered-verdict bits below followed exactly that
// path: reserved-and-rejected one release, allocated-and-handled the next.
//
//scvet:wireflag-registry
const (
	// HelloFlagNoValues asks the server for a value-blind checker (the
	// Section 4.4 optimization); the client runs its own valuecheck pass.
	HelloFlagNoValues = 1 << 0
	// HelloFlagToken marks a resumable session: the hello payload
	// continues with a length-prefixed client-chosen resume token.
	HelloFlagToken = 1 << 1
	// HelloFlagResume (requires HelloFlagToken) resumes the token's
	// checkpointed session; the payload continues with the client's last
	// acked symbol index and byte offset.
	HelloFlagResume = 1 << 2
	// HelloFlagTiered opts the session into tiered verdicts: on
	// rejection the server re-adjudicates the minimized witness core
	// against the weaker-model ladder of internal/spectrum and annotates
	// the verdict with the strongest tier satisfied (VerdictFlagTier).
	// The hello payload is otherwise unchanged.
	HelloFlagTiered = 1 << 3
	// HelloFlagTenant marks a hello carrying a tenant identity: the
	// payload continues with a length-prefixed tenant ID after the
	// token/resume fields. The server accounts the session to that
	// tenant for fair-share admission, quotas, and per-tenant stats.
	// Tenant-free hellos encode byte-identically to the pre-tenant
	// format, and the tenant never participates in resume-header
	// equality (it identifies who is asking, not what is checked).
	HelloFlagTenant = 1 << 4
	// HelloFlagExplore switches the session into distributed-exploration
	// mode: the client is the scmc coordinator, and the payload continues
	// (after the token/resume/tenant fields) with the explore extension —
	// protocol name, queue capacity, this backend's shard index, the
	// ordered shard identity list, per-shard state cap, depth bound, and
	// visited-set mode. Explore sessions exchange explore item frames
	// instead of symbol frames; the flag is mutually exclusive with
	// NoValues, Token, Resume, and Tiered. Explore-free hellos encode
	// byte-identically to the pre-explore format.
	HelloFlagExplore = 1 << 5

	// VerdictFlagWitness marks a verdict payload carrying the witness
	// extension: constraint code and cycle length between the offset
	// field and the message. The bit sits above the verdict-code value
	// space (codes 0..2), so pre-extension payloads parse unchanged.
	VerdictFlagWitness = 0x08
	// VerdictFlagTier marks a verdict payload carrying the tier
	// extension: the strongest weaker model the rejected core still
	// satisfies plus the store-buffer reorder site, appended after the
	// witness fields (and before the message). Sent only to sessions
	// that set HelloFlagTiered, so legacy payloads stay byte-identical.
	VerdictFlagTier = 0x10
)

// Per-family masks of the bits current parsers HANDLE. Reserved bits are
// deliberately absent: a parser must reject them until implemented, so a
// peer from the future degrades to a clean error, never to a silently
// misread session.
const (
	HelloFlagMask   = HelloFlagNoValues | HelloFlagToken | HelloFlagResume | HelloFlagTiered | HelloFlagTenant | HelloFlagExplore
	VerdictFlagMask = VerdictFlagWitness | VerdictFlagTier
	// AckFlagMask: ack frames carry no flag field today; the zero mask
	// records that so the first ack flag is allocated here, not ad hoc.
	AckFlagMask = 0
)
