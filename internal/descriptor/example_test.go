package descriptor_test

import (
	"fmt"

	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
)

// Encode turns a bandwidth-bounded constraint graph into the paper's
// descriptor string; Decode recovers the graph exactly.
func ExampleEncode() {
	tr := trace.Trace{trace.ST(1, 1, 1), trace.LD(2, 1, 1)}
	g := graph.New(tr)
	g.AddEdge(0, 1, graph.Inheritance)

	s, err := descriptor.Encode(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Text())
	d := descriptor.Decode(s)
	fmt.Println("nodes:", len(d.Labels), "edges:", len(d.Edges), "acyclic:", d.IsAcyclic())
	// Output:
	// 1,ST(P1,B1,1), 2,LD(P2,B1,1), (1,2),inh
	// nodes: 2 edges: 1 acyclic: true
}
