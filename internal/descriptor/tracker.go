package descriptor

import "sort"

// Tracker implements the ID-set semantics of Section 3.2: it maps each ID
// to the node (by 0-based creation index) currently holding it, applying
// the four ID-set update rules as symbols arrive. It is the shared
// bookkeeping core of the decoder, the stream validator, the cycle checker
// and the full SC checker.
type Tracker struct {
	owner map[int]int   // ID -> node index currently holding it
	ids   map[int][]int // node index -> IDs it holds (active nodes only)
	nodes int           // node descriptors seen so far
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{owner: make(map[int]int), ids: make(map[int][]int)}
}

// Nodes returns the number of node descriptors applied so far; node indices
// are 0..Nodes()-1 in order of appearance.
func (t *Tracker) Nodes() int { return t.nodes }

// Owner returns the node currently holding the ID, if any.
func (t *Tracker) Owner(id int) (node int, ok bool) {
	node, ok = t.owner[id]
	return node, ok
}

// IDSet returns the IDs currently held by the node. The returned slice is
// owned by the tracker; callers must not mutate it.
func (t *Tracker) IDSet(node int) []int { return t.ids[node] }

// Active returns the indices of all nodes with non-empty ID-sets, in
// ascending order. The order is guaranteed: callers feed the active set
// into diagnostics and encodings, where map iteration order would leak
// per-run randomness.
func (t *Tracker) Active() []int {
	out := make([]int, 0, len(t.ids))
	for n := range t.ids {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// release removes the ID from its current owner, reporting the node that
// lost it and whether its ID-set became empty (the node left the active
// set).
func (t *Tracker) release(id int) (node int, emptied, had bool) {
	node, had = t.owner[id]
	if !had {
		return 0, false, false
	}
	delete(t.owner, id)
	set := t.ids[node]
	for i, v := range set {
		if v == id {
			set[i] = set[len(set)-1]
			set = set[:len(set)-1]
			break
		}
	}
	if len(set) == 0 {
		delete(t.ids, node)
		return node, true, true
	}
	t.ids[node] = set
	return node, false, true
}

// Apply advances the tracker by one symbol and returns the effect:
//   - For a Node symbol, NewNode is the fresh node's index, and Displaced /
//     DisplacedEmptied describe the node (if any) that lost the reused ID.
//   - For an AddID symbol, Gainer is the node that gained the alias (or -1
//     if the source ID was unbound, making the symbol a pure release of
//     the New ID), and Displaced describes the previous holder of New.
//   - For an Edge symbol, FromNode and ToNode are the endpoint nodes, or -1
//     if the corresponding ID is unbound (the edge then denotes nothing,
//     per the paper's graph semantics).
func (t *Tracker) Apply(sym Symbol) Effect {
	switch v := sym.(type) {
	case Node:
		eff := Effect{Kind: EffectNode, NewNode: t.nodes, FromNode: -1, ToNode: -1, Displaced: -1, Gainer: -1}
		if node, emptied, had := t.release(v.ID); had {
			eff.Displaced = node
			eff.DisplacedEmptied = emptied
		}
		t.owner[v.ID] = t.nodes
		t.ids[t.nodes] = append(t.ids[t.nodes], v.ID)
		t.nodes++
		return eff
	case AddID:
		eff := Effect{Kind: EffectAddID, NewNode: -1, FromNode: -1, ToNode: -1, Displaced: -1, Gainer: -1}
		gainer, hasGainer := t.owner[v.Existing]
		if v.Existing == v.New {
			// add-ID(I,I): by the paper's rules the ID stays where it is.
			if hasGainer {
				eff.Gainer = gainer
			}
			return eff
		}
		if node, emptied, had := t.release(v.New); had {
			eff.Displaced = node
			eff.DisplacedEmptied = emptied
		}
		if hasGainer {
			eff.Gainer = gainer
			t.owner[v.New] = gainer
			t.ids[gainer] = append(t.ids[gainer], v.New)
		}
		return eff
	case Edge:
		eff := Effect{Kind: EffectEdge, NewNode: -1, FromNode: -1, ToNode: -1, Displaced: -1, Gainer: -1}
		if n, ok := t.owner[v.From]; ok {
			eff.FromNode = n
		}
		if n, ok := t.owner[v.To]; ok {
			eff.ToNode = n
		}
		return eff
	default:
		return Effect{Kind: EffectUnknown, NewNode: -1, FromNode: -1, ToNode: -1, Displaced: -1, Gainer: -1}
	}
}

// EffectKind classifies what a symbol did to the tracker.
type EffectKind uint8

const (
	// EffectUnknown marks a symbol of unrecognized type.
	EffectUnknown EffectKind = iota
	// EffectNode marks a node-descriptor application.
	EffectNode
	// EffectEdge marks an edge-descriptor application.
	EffectEdge
	// EffectAddID marks an add-ID application.
	EffectAddID
)

// Effect describes the consequences of applying one symbol.
type Effect struct {
	Kind EffectKind
	// NewNode is the index of the node created by a Node symbol, else -1.
	NewNode int
	// FromNode and ToNode are the edge endpoints for an Edge symbol, -1 when
	// the corresponding ID was unbound.
	FromNode, ToNode int
	// Displaced is the node that lost a reused ID, else -1.
	Displaced int
	// DisplacedEmptied reports whether the displaced node's ID-set became
	// empty, removing it from the active set.
	DisplacedEmptied bool
	// Gainer is the node that gained an alias from an AddID symbol, else -1.
	Gainer int
}
