package descriptor

import (
	"testing"

	"scverify/internal/trace"
)

// FuzzUnmarshal exercises the wire decoder on arbitrary bytes: it must
// never panic, and whatever decodes must re-encode to a byte string that
// decodes to the same stream (idempotent normalization).
func FuzzUnmarshal(f *testing.F) {
	op := trace.ST(1, 1, 1)
	f.Add([]byte{})
	f.Add(Marshal(Stream{Node{ID: 1, Op: &op}, Edge{From: 1, To: 2, Label: Inh}}))
	f.Add(Marshal(Stream{AddID{Existing: 1, New: 2}, Node{ID: 3}}))
	f.Add([]byte{tagNodeLabeled, 0x01, 0x00})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		round := Marshal(s)
		s2, err := Unmarshal(round)
		if err != nil {
			t.Fatalf("re-decode of normalized bytes failed: %v", err)
		}
		if string(Marshal(s2)) != string(round) {
			t.Fatal("normalization not idempotent")
		}
	})
}

// FuzzTrackerAndDecode drives the ID-set semantics and the whole-graph
// decoder with arbitrary (well-typed) symbol streams derived from fuzz
// bytes: no panics, and the decoder's node count must equal the number of
// node symbols.
func FuzzTrackerAndDecode(f *testing.F) {
	f.Add([]byte{1, 1, 2, 2, 3, 1, 2})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Stream
		nodes := 0
		for i := 0; i+1 < len(data) && len(s) < 64; i += 2 {
			a := int(data[i]%5) + 1
			b := int(data[i+1]%5) + 1
			switch data[i] % 3 {
			case 0:
				op := trace.ST(trace.ProcID(a), trace.BlockID(b), 1)
				s = append(s, Node{ID: a, Op: &op})
				nodes++
			case 1:
				s = append(s, Edge{From: a, To: b, Label: EdgeLabel(data[i+1] % 8)})
			default:
				s = append(s, AddID{Existing: a, New: b})
			}
		}
		d := Decode(s)
		if len(d.Labels) != nodes {
			t.Fatalf("decoded %d nodes, want %d", len(d.Labels), nodes)
		}
		d.IsAcyclic() // must not panic
	})
}
