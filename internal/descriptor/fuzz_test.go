package descriptor

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"scverify/internal/trace"
)

// FuzzUnmarshal exercises the wire decoder on arbitrary bytes: it must
// never panic, and whatever decodes must re-encode to a byte string that
// decodes to the same stream (idempotent normalization).
func FuzzUnmarshal(f *testing.F) {
	op := trace.ST(1, 1, 1)
	f.Add([]byte{})
	f.Add(Marshal(Stream{Node{ID: 1, Op: &op}, Edge{From: 1, To: 2, Label: Inh}}))
	f.Add(Marshal(Stream{AddID{Existing: 1, New: 2}, Node{ID: 3}}))
	f.Add([]byte{tagNodeLabeled, 0x01, 0x00})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		round := Marshal(s)
		s2, err := Unmarshal(round)
		if err != nil {
			t.Fatalf("re-decode of normalized bytes failed: %v", err)
		}
		if string(Marshal(s2)) != string(round) {
			t.Fatal("normalization not idempotent")
		}
	})
}

// FuzzDecoder feeds arbitrary bytes to the incremental decoder in
// adversarially small reads: no panics; the symbol sequence and terminal
// error must agree exactly with Unmarshal on the same bytes; errors must be
// positioned at a symbol start; and a truncation cut mid-symbol must be
// reported as such.
func FuzzDecoder(f *testing.F) {
	op := trace.ST(1, 1, 1)
	f.Add([]byte{}, byte(1))
	f.Add(Marshal(Stream{Node{ID: 1, Op: &op}, Edge{From: 1, To: 2, Label: Inh}}), byte(3))
	f.Add([]byte{tagNodeLabeled, 0x01, 0x00}, byte(1))
	f.Add([]byte{0xff, 0x00, 0x01}, byte(2))
	f.Add(append([]byte{tagNode}, bytes.Repeat([]byte{0x80}, 12)...), byte(1))

	f.Fuzz(func(t *testing.T, data []byte, readSize byte) {
		want, wantErr := Unmarshal(data)
		r := iotest(bytes.NewReader(data), int(readSize%7)+1)
		d := NewDecoder(r)
		var got Stream
		var gotErr error
		for {
			sym, err := d.Next()
			if err != nil {
				if err != io.EOF {
					gotErr = err
				}
				break
			}
			got = append(got, sym)
		}
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("Decoder err %v, Unmarshal err %v", gotErr, wantErr)
		}
		if gotErr != nil {
			var de, ue *DecodeError
			if !errors.As(gotErr, &de) || !errors.As(wantErr, &ue) {
				t.Fatalf("non-DecodeError failures: %v / %v", gotErr, wantErr)
			}
			if de.Offset != ue.Offset || de.Symbol != ue.Symbol || de.Truncated != ue.Truncated {
				t.Fatalf("Decoder error %+v disagrees with Unmarshal error %+v", de, ue)
			}
			if de.Symbol != len(got) {
				t.Fatalf("error symbol index %d, decoded %d symbols", de.Symbol, len(got))
			}
		} else if got.Text() != want.Text() {
			t.Fatalf("Decoder stream %q, Unmarshal stream %q", got.Text(), want.Text())
		}
	})
}

// iotest returns a reader delivering at most n bytes per Read, exercising
// symbol decodes that span reads (and, in scserve, frame payloads).
func iotest(r io.Reader, n int) io.Reader { return &slowReader{r: r, n: n} }

type slowReader struct {
	r io.Reader
	n int
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > s.n {
		p = p[:s.n]
	}
	return s.r.Read(p)
}

// FuzzTrackerAndDecode drives the ID-set semantics and the whole-graph
// decoder with arbitrary (well-typed) symbol streams derived from fuzz
// bytes: no panics, and the decoder's node count must equal the number of
// node symbols.
func FuzzTrackerAndDecode(f *testing.F) {
	f.Add([]byte{1, 1, 2, 2, 3, 1, 2})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Stream
		nodes := 0
		for i := 0; i+1 < len(data) && len(s) < 64; i += 2 {
			a := int(data[i]%5) + 1
			b := int(data[i+1]%5) + 1
			switch data[i] % 3 {
			case 0:
				op := trace.ST(trace.ProcID(a), trace.BlockID(b), 1)
				s = append(s, Node{ID: a, Op: &op})
				nodes++
			case 1:
				s = append(s, Edge{From: a, To: b, Label: EdgeLabel(data[i+1] % 8)})
			default:
				s = append(s, AddID{Existing: a, New: b})
			}
		}
		d := Decode(s)
		if len(d.Labels) != nodes {
			t.Fatalf("decoded %d nodes, want %d", len(d.Labels), nodes)
		}
		d.IsAcyclic() // must not panic
	})
}
