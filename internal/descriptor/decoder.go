package descriptor

import (
	"bufio"
	"fmt"
	"io"

	"scverify/internal/trace"
)

// DecodeError reports a malformed symbol in a wire-encoded stream together
// with its position: Offset is the byte offset of the symbol's first byte
// (the tag) and Symbol is the zero-based index of the symbol within the
// stream. Truncated distinguishes input that ended in the middle of a
// symbol — recoverable by supplying more bytes — from input that is
// malformed outright (unknown tag, varint overflow).
type DecodeError struct {
	Offset    int64
	Symbol    int
	Truncated bool
	Msg       string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("descriptor: symbol %d at byte %d: %s", e.Symbol, e.Offset, e.Msg)
}

// Decoder reads a wire-encoded descriptor stream incrementally from an
// io.Reader, one symbol per Next call, so arbitrarily long observer logs
// can be checked in constant memory. Decode failures are *DecodeError
// values carrying the byte offset and symbol index of the offending
// symbol; a clean end of input at a symbol boundary is io.EOF.
type Decoder struct {
	br  io.ByteReader
	off int64 // bytes consumed so far
	idx int   // symbols fully decoded so far
	err error // sticky terminal state (io.EOF or *DecodeError)
}

// NewDecoder returns a decoder reading from r. The reader is wrapped in a
// bufio.Reader unless it already implements io.ByteReader.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Decoder{br: br}
}

// NewDecoderAt returns a decoder whose position counters start at the
// given byte offset and symbol index instead of zero, for resuming a
// partially decoded stream: r must supply the stream's bytes from offset
// onward, and every reported position (Offset, Count, DecodeError) is
// then absolute within the original stream.
func NewDecoderAt(r io.Reader, offset int64, symbols int) *Decoder {
	d := NewDecoder(r)
	d.off, d.idx = offset, symbols
	return d
}

// Offset returns the number of stream bytes consumed so far, i.e. the
// offset of the next symbol's first byte.
func (d *Decoder) Offset() int64 { return d.off }

// Count returns the number of symbols decoded so far, i.e. the zero-based
// index of the next symbol.
func (d *Decoder) Count() int { return d.idx }

func (d *Decoder) fail(start int64, truncated bool, format string, args ...any) error {
	d.err = &DecodeError{Offset: start, Symbol: d.idx, Truncated: truncated, Msg: fmt.Sprintf(format, args...)}
	return d.err
}

func (d *Decoder) readByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err == nil {
		d.off++
	}
	return b, err
}

// ioErr distinguishes end-of-input (io.EOF, or io.ErrUnexpectedEOF from
// readers that translate it) from genuine I/O failures, which propagate
// verbatim so callers can tell a truncated stream from a broken transport.
func (d *Decoder) ioErr(err error, start int64, truncated string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return d.fail(start, true, "%s", truncated)
	}
	d.err = err
	return err
}

// uvarint decodes one unsigned varint; end-of-input mid-varint is a
// truncation error positioned at the enclosing symbol's start.
func (d *Decoder) uvarint(start int64, field string) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < 10; i++ {
		b, err := d.readByte()
		if err != nil {
			return 0, d.ioErr(err, start, "truncated "+field+" varint")
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, d.fail(start, false, "%s varint overflows uint64", field)
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, d.fail(start, false, "%s varint overflows uint64", field)
}

// Next decodes and returns the next symbol. It returns io.EOF when the
// input ends cleanly at a symbol boundary, and a *DecodeError (sticky, as
// is io.EOF) when the input is malformed or ends mid-symbol.
func (d *Decoder) Next() (Symbol, error) {
	if d.err != nil {
		return nil, d.err
	}
	start := d.off
	tag, err := d.readByte()
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = io.EOF // clean end at a symbol boundary
		}
		d.err = err
		return nil, err
	}
	switch tag {
	case tagNode:
		id, err := d.uvarint(start, "node ID")
		if err != nil {
			return nil, err
		}
		d.idx++
		return Node{ID: int(id)}, nil
	case tagNodeLabeled:
		id, err := d.uvarint(start, "node ID")
		if err != nil {
			return nil, err
		}
		kindByte, err := d.readByte()
		if err != nil {
			return nil, d.ioErr(err, start, "truncated node operation kind")
		}
		p, err := d.uvarint(start, "processor")
		if err != nil {
			return nil, err
		}
		b, err := d.uvarint(start, "block")
		if err != nil {
			return nil, err
		}
		val, err := d.uvarint(start, "value")
		if err != nil {
			return nil, err
		}
		op := trace.Op{Kind: trace.OpKind(kindByte), Proc: trace.ProcID(p), Block: trace.BlockID(b), Value: trace.Value(val)}
		d.idx++
		return Node{ID: int(id), Op: &op}, nil
	case tagEdge, tagEdgeLabeled:
		from, err := d.uvarint(start, "edge source")
		if err != nil {
			return nil, err
		}
		to, err := d.uvarint(start, "edge target")
		if err != nil {
			return nil, err
		}
		label := None
		if tag == tagEdgeLabeled {
			lb, err := d.readByte()
			if err != nil {
				return nil, d.ioErr(err, start, "truncated edge label")
			}
			label = EdgeLabel(lb)
		}
		d.idx++
		return Edge{From: int(from), To: int(to), Label: label}, nil
	case tagAddID:
		ex, err := d.uvarint(start, "add-ID existing")
		if err != nil {
			return nil, err
		}
		nw, err := d.uvarint(start, "add-ID new")
		if err != nil {
			return nil, err
		}
		d.idx++
		return AddID{Existing: int(ex), New: int(nw)}, nil
	default:
		return nil, d.fail(start, false, "unknown tag %d", tag)
	}
}
