package descriptor

import (
	"fmt"

	"scverify/internal/graph"
	"scverify/internal/trace"
)

// DecodedEdge is an edge of the graph a descriptor denotes, between 0-based
// node creation indices.
type DecodedEdge struct {
	From, To int
	Kind     graph.EdgeKind
}

// Decoded is the full graph denoted by a descriptor stream: node operation
// labels (nil entries for unlabeled nodes) and annotated edges. It is the
// unbounded-memory reference implementation of the descriptor graph
// semantics of Section 3.2, used to differentially test the finite-state
// checkers.
type Decoded struct {
	Labels []*trace.Op
	Edges  []DecodedEdge
}

// Decode reconstructs the graph denoted by the stream. Edge symbols whose
// IDs are unbound denote no edge (per the paper's semantics) and are
// dropped.
func Decode(s Stream) Decoded {
	t := NewTracker()
	var d Decoded
	for _, sym := range s {
		eff := t.Apply(sym)
		switch v := sym.(type) {
		case Node:
			if v.Op != nil {
				op := *v.Op
				d.Labels = append(d.Labels, &op)
			} else {
				d.Labels = append(d.Labels, nil)
			}
		case Edge:
			if eff.FromNode >= 0 && eff.ToNode >= 0 {
				d.Edges = append(d.Edges, DecodedEdge{From: eff.FromNode, To: eff.ToNode, Kind: v.Label.Kind()})
			}
		}
	}
	return d
}

// IsAcyclic reports whether the decoded graph has no directed cycle,
// independent of node labels. Kahn's algorithm.
func (d Decoded) IsAcyclic() bool {
	n := len(d.Labels)
	succ := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range d.Edges {
		succ[e.From] = append(succ[e.From], e.To)
		indeg[e.To]++
	}
	ready := make([]int, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			ready = append(ready, i)
		}
	}
	seen := 0
	for len(ready) > 0 {
		u := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, v := range succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	return seen == n
}

// ToConstraintGraph converts the decoded graph into a constraint graph over
// the trace formed by its node labels. It fails if any node is unlabeled.
func (d Decoded) ToConstraintGraph() (*graph.Graph, error) {
	tr := make(trace.Trace, len(d.Labels))
	for i, op := range d.Labels {
		if op == nil {
			return nil, fmt.Errorf("descriptor: node %d has no operation label", i+1)
		}
		tr[i] = *op
	}
	g := graph.New(tr)
	for _, e := range d.Edges {
		g.AddEdge(e.From, e.To, e.Kind)
	}
	return g, nil
}

// Trace extracts the memory-operation subsequence the stream's node labels
// spell out, in node order, skipping unlabeled nodes.
func (s Stream) Trace() trace.Trace {
	var tr trace.Trace
	for _, sym := range s {
		if n, ok := sym.(Node); ok && n.Op != nil {
			tr = append(tr, *n.Op)
		}
	}
	return tr
}
