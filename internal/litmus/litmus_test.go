package litmus_test

import (
	"reflect"
	"testing"

	"scverify/internal/litmus"
	"scverify/internal/memmodel"
	"scverify/internal/protocols/msibus"
	"scverify/internal/protocols/serial"
	"scverify/internal/protocols/storebuffer"
	"scverify/internal/protocols/writethrough"
	"scverify/internal/trace"
)

func TestSuiteClassificationsAgainstSC(t *testing.T) {
	if err := litmus.VerifySuiteAgainstSC(); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteHasClassicTests(t *testing.T) {
	names := map[string]bool{}
	for _, tc := range litmus.Suite() {
		names[tc.Name] = true
	}
	for _, want := range []string{"SB", "MP", "LB", "CoRR", "IRIW"} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func params(procs int) trace.Params {
	return trace.Params{Procs: procs, Blocks: 2, Values: 1}
}

func TestSerialMemoryMatchesSCOnAllTests(t *testing.T) {
	for _, tc := range litmus.Suite() {
		p := serial.New(params(len(tc.Prog.Threads)))
		c, err := litmus.ClassifyProtocol(p, tc, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Extra) != 0 {
			t.Errorf("%s: serial memory produced non-SC outcomes %v", tc.Name, c.Extra)
		}
		if len(c.Missing) != 0 {
			t.Errorf("%s: serial memory missing SC outcomes %v", tc.Name, c.Missing)
		}
	}
}

func TestMSIMatchesSCOnAllTests(t *testing.T) {
	for _, tc := range litmus.Suite() {
		if tc.Name == "IRIW" {
			continue // 4 processors: state space too large for a unit test
		}
		p := msibus.New(params(len(tc.Prog.Threads)))
		c, err := litmus.ClassifyProtocol(p, tc, 1<<19)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Extra) != 0 {
			t.Errorf("%s: MSI produced non-SC outcomes %v", tc.Name, c.Extra)
		}
		if len(c.Missing) != 0 {
			t.Errorf("%s: MSI missing SC outcomes %v", tc.Name, c.Missing)
		}
	}
}

func TestStoreBufferExhibitsSBButNotLB(t *testing.T) {
	suite := map[string]litmus.Test{}
	for _, tc := range litmus.Suite() {
		suite[tc.Name] = tc
	}
	p := storebuffer.New(params(2), 1)

	sb, err := litmus.ClassifyProtocol(p, suite["SB"], 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sb.Extra, []string{"r1=0 r2=0"}) {
		t.Errorf("SB extra outcomes = %v, want the store-buffering outcome", sb.Extra)
	}

	// TSO never reorders loads with later stores: LB stays SC-clean.
	lb, err := litmus.ClassifyProtocol(p, suite["LB"], 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Extra) != 0 {
		t.Errorf("LB extra outcomes = %v, want none under TSO", lb.Extra)
	}

	// MP also stays clean under TSO (stores drain in order).
	mp, err := litmus.ClassifyProtocol(p, suite["MP"], 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Extra) != 0 {
		t.Errorf("MP extra outcomes = %v, want none under TSO", mp.Extra)
	}
}

func TestFencedStoreBufferCleanOnSB(t *testing.T) {
	suite := map[string]litmus.Test{}
	for _, tc := range litmus.Suite() {
		suite[tc.Name] = tc
	}
	p := storebuffer.NewFenced(params(2), 1)
	sb, err := litmus.ClassifyProtocol(p, suite["SB"], 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Extra) != 0 {
		t.Errorf("fenced SB extra outcomes = %v, want none", sb.Extra)
	}
}

func TestBuggyWriteThroughExhibitsMP(t *testing.T) {
	suite := map[string]litmus.Test{}
	for _, tc := range litmus.Suite() {
		suite[tc.Name] = tc
	}
	p := writethrough.NewBuggy(params(2))
	mp, err := litmus.ClassifyProtocol(p, suite["MP"], 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range mp.Extra {
		if o == "r1=1 r2=0" {
			found = true
		}
	}
	if !found {
		t.Errorf("no-invalidate write-through did not exhibit the MP violation: extra=%v outcomes=%v",
			mp.Extra, mp.Outcomes)
	}
}

func TestOutcomesErrors(t *testing.T) {
	p := serial.New(trace.Params{Procs: 1, Blocks: 2, Values: 1})
	prog := memmodel.Program{Threads: [][]memmodel.Stmt{
		{memmodel.St(1, 1)}, {memmodel.Ld(1, "r1")},
	}}
	if _, err := litmus.Outcomes(p, prog, 0); err == nil {
		t.Error("program wider than protocol accepted")
	}
	p2 := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 1})
	if _, err := litmus.Outcomes(p2, prog, 3); err == nil {
		t.Error("state bound not enforced")
	}
}
