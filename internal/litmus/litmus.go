// Package litmus provides the classic shared-memory litmus tests (store
// buffering, message passing, load buffering, IRIW, coherence) as
// programs, together with a runner that enumerates which outcomes a
// concrete protocol can actually produce. Comparing a protocol's outcome
// set with the sequentially consistent outcome set of the same program is
// the architectural view of what the paper's checker decides trace by
// trace: an SC protocol's outcomes are exactly a subset of the SC set,
// while the store buffer exhibits the forbidden outcomes.
package litmus

import (
	"fmt"
	"sort"

	"scverify/internal/memmodel"
	"scverify/internal/protocol"
)

// Test is a named litmus test with its expected classification under SC.
type Test struct {
	Name string
	Prog memmodel.Program
	// ForbiddenSC lists canonical outcomes sequential consistency excludes
	// (the interesting ones relaxed models admit).
	ForbiddenSC []string
}

// Suite returns the classic tests. Blocks: x=1, y=2. All values stored
// are 1; registers are named per test convention.
func Suite() []Test {
	st := memmodel.St
	ld := memmodel.Ld
	return []Test{
		{
			// SB: both processors buffer their stores and read the other's
			// stale ⊥. Allowed by TSO, forbidden by SC.
			Name: "SB",
			Prog: memmodel.Program{Threads: [][]memmodel.Stmt{
				{st(1, 1), ld(2, "r1")},
				{st(2, 1), ld(1, "r2")},
			}},
			ForbiddenSC: []string{"r1=0 r2=0"},
		},
		{
			// MP: if the flag (y) is seen, the data (x) must be too.
			Name: "MP",
			Prog: memmodel.Program{Threads: [][]memmodel.Stmt{
				{st(1, 1), st(2, 1)},
				{ld(2, "r1"), ld(1, "r2")},
			}},
			ForbiddenSC: []string{"r1=1 r2=0"},
		},
		{
			// LB: neither load may observe the other thread's later store.
			Name: "LB",
			Prog: memmodel.Program{Threads: [][]memmodel.Stmt{
				{ld(1, "r1"), st(2, 1)},
				{ld(2, "r2"), st(1, 1)},
			}},
			ForbiddenSC: []string{"r1=1 r2=1"},
		},
		{
			// CoRR: two reads of the same block by one processor may not
			// observe a store and then its absence.
			Name: "CoRR",
			Prog: memmodel.Program{Threads: [][]memmodel.Stmt{
				{st(1, 1)},
				{ld(1, "r1"), ld(1, "r2")},
			}},
			ForbiddenSC: []string{"r1=1 r2=0"},
		},
		{
			// IRIW: independent readers must agree on the order of
			// independent writes.
			Name: "IRIW",
			Prog: memmodel.Program{Threads: [][]memmodel.Stmt{
				{st(1, 1)},
				{st(2, 1)},
				{ld(1, "r1"), ld(2, "r2")},
				{ld(2, "r3"), ld(1, "r4")},
			}},
			ForbiddenSC: []string{"r1=1 r2=0 r3=1 r4=0"},
		},
	}
}

// VerifySuiteAgainstSC checks that the enumerated SC outcome set of each
// test excludes exactly its forbidden outcomes. It is a self-test of the
// suite's classifications.
func VerifySuiteAgainstSC() error {
	for _, t := range Suite() {
		sc := map[string]bool{}
		for _, o := range memmodel.OutcomeStrings(t.Prog.SCOutcomes()) {
			sc[o] = true
		}
		for _, f := range t.ForbiddenSC {
			if sc[f] {
				return fmt.Errorf("litmus: %s: outcome %q is SC-reachable but classified forbidden", t.Name, f)
			}
		}
	}
	return nil
}

// runnerState is a node of the protocol-level outcome exploration.
type runnerState struct {
	pstate protocol.State
	next   []int // statement index per thread
	out    memmodel.Outcome
}

func (s runnerState) key() string {
	k := s.pstate.Key() + "|"
	for _, n := range s.next {
		k += fmt.Sprintf("%d,", n)
	}
	return k + "|" + s.out.String()
}

// Outcomes enumerates every final register assignment the protocol can
// produce for the program: each thread executes its statements in program
// order on its processor (thread i is processor i+1), memory operations
// must match the next pending statement, and internal protocol actions
// interleave freely. Exploration is bounded by maxStates to keep broken
// or highly concurrent protocols from exploding; hitting the bound
// returns an error.
func Outcomes(p protocol.Protocol, prog memmodel.Program, maxStates int) ([]memmodel.Outcome, error) {
	if len(prog.Threads) > p.Params().Procs {
		return nil, fmt.Errorf("litmus: program needs %d processors, protocol has %d",
			len(prog.Threads), p.Params().Procs)
	}
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	start := runnerState{
		pstate: p.Initial(),
		next:   make([]int, len(prog.Threads)),
		out:    memmodel.Outcome{},
	}
	seen := map[string]bool{start.key(): true}
	queue := []runnerState{start}
	final := map[string]memmodel.Outcome{}

	for len(queue) > 0 {
		if len(seen) > maxStates {
			return nil, fmt.Errorf("litmus: exploration exceeded %d states", maxStates)
		}
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		done := true
		for th := range prog.Threads {
			if cur.next[th] < len(prog.Threads[th]) {
				done = false
			}
		}
		if done {
			final[cur.out.String()] = cloneOutcome(cur.out)
			// Internal actions after completion cannot change registers.
			continue
		}

		for _, tr := range p.Transitions(cur.pstate) {
			ns, ok := advance(prog, cur, tr)
			if !ok {
				continue
			}
			k := ns.key()
			if !seen[k] {
				seen[k] = true
				queue = append(queue, ns)
			}
		}
	}

	keys := make([]string, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	outs := make([]memmodel.Outcome, len(keys))
	for i, k := range keys {
		outs[i] = final[k]
	}
	return outs, nil
}

// advance applies one protocol transition to the runner state if it is
// consistent with the program: internal actions always apply; memory
// operations must be the issuing processor's next statement (with
// matching kind, block, and for stores the stored value).
func advance(prog memmodel.Program, cur runnerState, tr protocol.Transition) (runnerState, bool) {
	if !tr.Action.IsMem() {
		return runnerState{pstate: tr.Next, next: cur.next, out: cur.out}, true
	}
	op := *tr.Action.Op
	th := int(op.Proc) - 1
	if th < 0 || th >= len(prog.Threads) {
		return runnerState{}, false // processors beyond the program stay idle
	}
	if cur.next[th] >= len(prog.Threads[th]) {
		return runnerState{}, false
	}
	stmt := prog.Threads[th][cur.next[th]]
	if stmt.IsStore != op.IsStore() || stmt.Block != op.Block {
		return runnerState{}, false
	}
	if stmt.IsStore && stmt.Value != op.Value {
		return runnerState{}, false
	}
	next := append([]int(nil), cur.next...)
	next[th]++
	out := cloneOutcome(cur.out)
	if !stmt.IsStore {
		out[stmt.Reg] = op.Value
	}
	return runnerState{pstate: tr.Next, next: next, out: out}, true
}

func cloneOutcome(o memmodel.Outcome) memmodel.Outcome {
	c := memmodel.Outcome{}
	for k, v := range o {
		c[k] = v
	}
	return c
}

// Classify compares a protocol's outcome set for a test against the SC
// set: Extra lists protocol outcomes SC forbids (evidence of non-SC);
// Missing lists SC outcomes the protocol cannot produce (incompleteness
// of the implementation, legal but informative).
type Classification struct {
	Test     string
	Outcomes []string
	Extra    []string
	Missing  []string
}

// ClassifyProtocol runs one test on the protocol and classifies the
// result.
func ClassifyProtocol(p protocol.Protocol, t Test, maxStates int) (Classification, error) {
	got, err := Outcomes(p, t.Prog, maxStates)
	if err != nil {
		return Classification{}, fmt.Errorf("litmus %s on %s: %w", t.Name, p.Name(), err)
	}
	gotSet := map[string]bool{}
	c := Classification{Test: t.Name}
	for _, o := range memmodel.OutcomeStrings(got) {
		gotSet[o] = true
		c.Outcomes = append(c.Outcomes, o)
	}
	scSet := map[string]bool{}
	for _, o := range memmodel.OutcomeStrings(t.Prog.SCOutcomes()) {
		scSet[o] = true
		if !gotSet[o] {
			c.Missing = append(c.Missing, o)
		}
	}
	for o := range gotSet {
		if !scSet[o] {
			c.Extra = append(c.Extra, o)
		}
	}
	sort.Strings(c.Extra)
	sort.Strings(c.Missing)
	return c, nil
}
