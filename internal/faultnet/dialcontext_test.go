package faultnet

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestDialContextCancelMidSpike: a dial that hits an injected latency
// spike must return promptly with the context's error when the context is
// cancelled mid-spike, not sleep the spike out.
func TestDialContextCancelMidSpike(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	d := NewDialer(Config{
		Seed:        7,
		LatencyProb: 1,
		Latency:     30 * time.Second, // the spike dwarfs the test budget
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	conn, err := d.DialContext(ctx, "tcp", ln.Addr().String())
	if conn != nil {
		conn.Close()
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial through a spike: err = %v, want context.DeadlineExceeded", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("cancellation took %v — the spike was slept out instead of cancelled", e)
	}
	if d.Stats().Latencies.Load() == 0 {
		t.Fatal("the latency fault never fired — the test proved nothing")
	}
}

// TestDialContextClean: with no faults configured, DialContext is a plain
// dial returning a usable wrapped connection.
func TestDialContextClean(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("ok"))
		c.Close()
	}()

	d := NewDialer(Config{Seed: 1})
	conn, err := d.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := conn.Read(buf); err != nil || string(buf[:n]) != "ok" {
		t.Fatalf("read through dialed conn: %q, %v", buf[:n], err)
	}
	<-done
}
