// Package faultnet wraps net.Conn with deterministic, seedable fault
// injection for exercising network-facing code under adversity: partial
// writes, short reads, latency spikes, stalls, and mid-stream connection
// resets. It exists to test the scserve fault-tolerance contract — a
// faulty link may cost a session retries or a clean error, but never a
// wrong verdict — without needing a real misbehaving network.
//
// Faults are drawn from a seeded PRNG, so a failing chaos run replays
// exactly from its seed. The wrapper never corrupts data: bytes that are
// delivered are delivered intact and in order (TCP semantics); faults
// only fragment, delay, or cut the stream.
package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects which faults a wrapped connection injects. The zero
// value injects nothing (a transparent wrapper).
type Config struct {
	// Seed fixes the fault schedule; 0 seeds from the wall clock.
	Seed int64

	// WriteChunk, when positive, caps each underlying write at a random
	// size in [1, WriteChunk] — every Write becomes a sequence of partial
	// writes.
	WriteChunk int
	// ReadChunk, when positive, caps each Read at a random size in
	// [1, ReadChunk] — the peer's frames arrive fragmented.
	ReadChunk int

	// LatencyProb is the per-operation probability of sleeping a random
	// duration in [0, Latency] before proceeding.
	LatencyProb float64
	Latency     time.Duration

	// StallProb is the per-operation probability of a long stall of
	// Stall before proceeding; deadlines fire during the stall (the
	// sleep is bounded, not cancelable).
	StallProb float64
	Stall     time.Duration

	// ResetAfterBytes, when positive, hard-closes the connection once
	// that many total bytes (reads + writes) have crossed it — a
	// deterministic mid-stream reset.
	ResetAfterBytes int64
	// ResetProb is the per-operation probability of hard-closing the
	// connection before the operation — a random reset.
	ResetProb float64
}

// Stats counts the faults a connection (or a Dialer's connections)
// actually injected.
type Stats struct {
	PartialWrites atomic.Int64
	ShortReads    atomic.Int64
	Latencies     atomic.Int64
	Stalls        atomic.Int64
	Resets        atomic.Int64
}

// String renders the counters on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("faultnet: %d partial writes, %d short reads, %d latencies, %d stalls, %d resets",
		s.PartialWrites.Load(), s.ShortReads.Load(), s.Latencies.Load(), s.Stalls.Load(), s.Resets.Load())
}

// errReset is returned by operations on a connection the harness reset.
var errReset = fmt.Errorf("faultnet: connection reset by fault injection")

// Conn wraps a net.Conn with fault injection. Safe for the usual
// net.Conn discipline (one reader + one writer concurrently).
type Conn struct {
	net.Conn
	cfg   Config
	stats *Stats

	mu    sync.Mutex // guards rng and bytes
	rng   *rand.Rand
	bytes int64

	reset atomic.Bool
}

// Wrap returns conn with faults per cfg, counting them into stats (which
// may be nil, and may be shared across connections).
func Wrap(conn net.Conn, cfg Config, stats *Stats) *Conn {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &Conn{Conn: conn, cfg: cfg, stats: stats, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns the connection's fault counters.
func (c *Conn) Stats() *Stats { return c.stats }

// chance draws a biased coin under the rng lock.
func (c *Conn) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	ok := c.rng.Float64() < p
	c.mu.Unlock()
	return ok
}

// chunk draws a random operation size in [1, max].
func (c *Conn) chunk(n, max int) int {
	if max <= 0 || n <= 1 {
		return n
	}
	c.mu.Lock()
	k := 1 + c.rng.Intn(max)
	c.mu.Unlock()
	if k > n {
		k = n
	}
	return k
}

// sleep draws a random duration in [0, max].
func (c *Conn) sleep(max time.Duration) {
	if max <= 0 {
		return
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(max) + 1))
	c.mu.Unlock()
	time.Sleep(d)
}

// doReset hard-closes the connection.
func (c *Conn) doReset() error {
	if c.reset.CompareAndSwap(false, true) {
		c.stats.Resets.Add(1)
		c.Conn.Close()
	}
	return errReset
}

// preOp runs the per-operation faults (latency, stall, reset) and
// reports whether the operation may proceed.
func (c *Conn) preOp() error {
	if c.reset.Load() {
		return errReset
	}
	if c.chance(c.cfg.LatencyProb) {
		c.stats.Latencies.Add(1)
		c.sleep(c.cfg.Latency)
	}
	if c.chance(c.cfg.StallProb) && c.cfg.Stall > 0 {
		c.stats.Stalls.Add(1)
		time.Sleep(c.cfg.Stall)
	}
	if c.chance(c.cfg.ResetProb) {
		return c.doReset()
	}
	return nil
}

// account adds transferred bytes and fires the deterministic reset once
// the budget is crossed. The bytes already transferred are reported to
// the caller; the next operation fails.
func (c *Conn) account(n int) {
	if c.cfg.ResetAfterBytes <= 0 {
		return
	}
	c.mu.Lock()
	c.bytes += int64(n)
	over := c.bytes >= c.cfg.ResetAfterBytes
	c.mu.Unlock()
	if over {
		c.doReset()
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	if err := c.preOp(); err != nil {
		return 0, err
	}
	if k := c.chunk(len(b), c.cfg.ReadChunk); k < len(b) {
		c.stats.ShortReads.Add(1)
		b = b[:k]
	}
	n, err := c.Conn.Read(b)
	c.account(n)
	if err != nil && c.reset.Load() {
		err = errReset
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		if err := c.preOp(); err != nil {
			return written, err
		}
		k := c.chunk(len(b)-written, c.cfg.WriteChunk)
		if k < len(b)-written {
			c.stats.PartialWrites.Add(1)
		}
		n, err := c.Conn.Write(b[written : written+k])
		written += n
		c.account(n)
		if err != nil {
			if c.reset.Load() {
				err = errReset
			}
			return written, err
		}
	}
	return written, nil
}

func (c *Conn) Close() error {
	if c.reset.Load() {
		return nil // already closed by a reset
	}
	return c.Conn.Close()
}

// Dialer produces fault-injected connections, for use as a client
// transport hook (e.g. scserve.RetryConfig.Dial). Each connection draws
// its own fault schedule from the dialer's seed sequence, and all
// connections share the dialer's Stats.
type Dialer struct {
	cfg   Config
	stats *Stats

	mu   sync.Mutex
	seed int64
}

// NewDialer returns a dialer injecting faults per cfg into every
// connection it makes.
func NewDialer(cfg Config) *Dialer {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Dialer{cfg: cfg, stats: &Stats{}, seed: seed}
}

// Stats returns the counters aggregated across all dialed connections.
func (d *Dialer) Stats() *Stats { return d.stats }

// Dial connects to addr over TCP and wraps the connection. The signature
// matches scserve.RetryConfig.Dial.
func (d *Dialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return d.wrap(conn), nil
}

// DialContext connects to addr and wraps the connection, injecting the
// dialer's latency and stall faults into the dial itself as
// context-cancellable sleeps: a health probe dialing through a faulty
// link observes the latency spike but its deadline still fires through
// it. The signature matches net.Dialer.DialContext (and, partially
// applied, scgrid.Config.Dial); a dial-time reset fault surfaces as a
// refused connection.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.mu.Lock()
	d.seed++
	rng := rand.New(rand.NewSource(d.seed))
	cfg := d.cfg
	d.mu.Unlock()

	if cfg.LatencyProb > 0 && rng.Float64() < cfg.LatencyProb && cfg.Latency > 0 {
		d.stats.Latencies.Add(1)
		if err := sleepCtx(ctx, time.Duration(rng.Int63n(int64(cfg.Latency)+1))); err != nil {
			return nil, err
		}
	}
	if cfg.StallProb > 0 && rng.Float64() < cfg.StallProb && cfg.Stall > 0 {
		d.stats.Stalls.Add(1)
		if err := sleepCtx(ctx, cfg.Stall); err != nil {
			return nil, err
		}
	}
	if cfg.ResetProb > 0 && rng.Float64() < cfg.ResetProb {
		d.stats.Resets.Add(1)
		return nil, fmt.Errorf("faultnet: dial %s: %w", addr, errReset)
	}
	var nd net.Dialer
	conn, err := nd.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return d.wrap(conn), nil
}

// sleepCtx sleeps d or returns ctx.Err() as soon as ctx is done — the
// cancellable half of the fault clock, so a bounded probe is not held
// hostage by an injected spike.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wrap applies the next fault schedule in the dialer's sequence.
func (d *Dialer) wrap(conn net.Conn) *Conn {
	d.mu.Lock()
	d.seed++
	cfg := d.cfg
	cfg.Seed = d.seed
	d.mu.Unlock()
	return Wrap(conn, cfg, d.stats)
}

// WrapConn wraps an already-established connection with the dialer's
// fault config and stats (for in-memory pipes in tests).
func (d *Dialer) WrapConn(conn net.Conn) net.Conn { return d.wrap(conn) }
