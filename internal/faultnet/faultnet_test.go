package faultnet

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestDataIntegrity: fragmentation faults reorder nothing and lose
// nothing — every delivered byte stream is exactly the sent one.
func TestDataIntegrity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		a, b := net.Pipe()
		fa := Wrap(a, Config{Seed: seed, WriteChunk: 7, ReadChunk: 5}, nil)
		fb := Wrap(b, Config{Seed: seed + 100, WriteChunk: 3, ReadChunk: 11}, nil)

		payload := make([]byte, 16<<10)
		rand.New(rand.NewSource(seed)).Read(payload)

		got := make(chan []byte, 1)
		errc := make(chan error, 1)
		go func() {
			var buf bytes.Buffer
			_, err := io.Copy(&buf, fb)
			got <- buf.Bytes()
			errc <- err
		}()
		if _, err := fa.Write(payload); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		fa.Close()
		if err := <-errc; err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if !bytes.Equal(<-got, payload) {
			t.Fatalf("seed %d: delivered bytes differ from sent bytes", seed)
		}
		if fa.Stats().PartialWrites.Load() == 0 {
			t.Errorf("seed %d: expected partial writes to be injected", seed)
		}
		if fb.Stats().ShortReads.Load() == 0 {
			t.Errorf("seed %d: expected short reads to be injected", seed)
		}
		fb.Close()
	}
}

// TestResetAfterBytes: the deterministic reset cuts the connection once
// the byte budget is crossed, and both further reads and writes fail.
func TestResetAfterBytes(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fa := Wrap(a, Config{Seed: 1, ResetAfterBytes: 100}, nil)

	go io.Copy(io.Discard, b)
	buf := make([]byte, 64)
	if _, err := fa.Write(buf); err != nil {
		t.Fatalf("first write (under budget): %v", err)
	}
	// This write crosses 100 total bytes; the bytes may be delivered but
	// the connection must be reset by the following operation.
	fa.Write(buf)
	if _, err := fa.Write(buf); err != errReset {
		t.Fatalf("write after reset: got %v, want %v", err, errReset)
	}
	if _, err := fa.Read(buf); err != errReset {
		t.Fatalf("read after reset: got %v, want %v", err, errReset)
	}
	if got := fa.Stats().Resets.Load(); got != 1 {
		t.Fatalf("resets = %d, want 1", got)
	}
}

// TestResetProb: random resets fire eventually and surface as errReset.
func TestResetProb(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fa := Wrap(a, Config{Seed: 7, ResetProb: 0.2}, nil)
	go io.Copy(io.Discard, b)

	buf := make([]byte, 8)
	var err error
	for i := 0; i < 1000; i++ {
		if _, err = fa.Write(buf); err != nil {
			break
		}
	}
	if err != errReset {
		t.Fatalf("expected a random reset within 1000 writes, got %v", err)
	}
}

// TestLatency: latency faults delay but do not fail operations.
func TestLatency(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fa := Wrap(a, Config{Seed: 3, LatencyProb: 1.0, Latency: time.Millisecond}, nil)
	go io.Copy(io.Discard, b)

	for i := 0; i < 5; i++ {
		if _, err := fa.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if fa.Stats().Latencies.Load() != 5 {
		t.Fatalf("latencies = %d, want 5", fa.Stats().Latencies.Load())
	}
	fa.Close()
}

// TestDialerSchedules: each dialed connection draws a distinct schedule
// but shares the dialer's stats.
func TestDialerSchedules(t *testing.T) {
	d := NewDialer(Config{Seed: 11, WriteChunk: 4})
	a1, b1 := net.Pipe()
	a2, b2 := net.Pipe()
	defer b1.Close()
	defer b2.Close()
	c1 := d.WrapConn(a1)
	c2 := d.WrapConn(a2)
	go io.Copy(io.Discard, b1)
	go io.Copy(io.Discard, b2)

	payload := make([]byte, 256)
	if _, err := c1.Write(payload); err != nil {
		t.Fatalf("c1 write: %v", err)
	}
	if _, err := c2.Write(payload); err != nil {
		t.Fatalf("c2 write: %v", err)
	}
	if d.Stats().PartialWrites.Load() == 0 {
		t.Fatal("expected shared stats to record partial writes")
	}
}

// TestZeroConfigTransparent: the zero config injects nothing.
func TestZeroConfigTransparent(t *testing.T) {
	a, b := net.Pipe()
	fa := Wrap(a, Config{Seed: 1}, nil)
	go func() {
		fa.Write([]byte("hello"))
		fa.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil || string(got) != "hello" {
		t.Fatalf("got %q, %v", got, err)
	}
	s := fa.Stats()
	if n := s.PartialWrites.Load() + s.ShortReads.Load() + s.Latencies.Load() + s.Stalls.Load() + s.Resets.Load(); n != 0 {
		t.Fatalf("zero config injected %d faults", n)
	}
}
