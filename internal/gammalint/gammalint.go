// Package gammalint statically verifies that a protocol is a well-formed
// member of the class Γ the observer construction of Condon & Hu is sound
// for. The soundness argument of Sections 2.1–4.1 rests on preconditions
// the rest of the repository assumes but cannot check at use time: every
// memory transition must carry a tracking label in [1,L]; copy labels must
// reference valid locations; an ST transition must actually update the
// location its label names; transition enumeration must be deterministic;
// State.Key must be injective over reachable states; and runs must stay
// within the declared node-bandwidth bound k. A protocol violating any of
// these silently yields a wrong SC verdict — the observer emits a
// descriptor stream of the wrong constraint graph and the checker
// faithfully adjudicates the wrong graph.
//
// Lint performs a bounded exploration of the protocol's reachable state
// space, maintaining a shadow copy of every storage location's contents as
// implied by the tracking labels alone (the same induction that defines
// ST-index in Section 4.1, carried out on values instead of store
// indices). Divergence between a load's value and the shadow contents of
// its labeled location is exactly a tracking-label violation. A second,
// dynamic pass replays pseudo-random runs through the witness observer and
// the descriptor ID tracker to confirm the declared bandwidth bound.
package gammalint

import (
	"encoding/json"
	"fmt"
	"time"

	"scverify/internal/observer"
	"scverify/internal/protocol"
)

// Rule identifiers, stable across releases; tests and CI match on these.
const (
	// RuleOpParams: a memory operation lies outside the declared Params.
	RuleOpParams = "GL001"
	// RuleMemLocRange: a memory transition's tracking label is outside [1,L].
	RuleMemLocRange = "GL002"
	// RuleCopyRange: a copy label references a location outside the valid
	// range (Dst in [1,L], Src in [0,L]).
	RuleCopyRange = "GL003"
	// RuleLoadValue: a load's value disagrees with the tracked contents of
	// its labeled location — a wrong tracking function f, or an ST
	// transition that did not update the location its label names.
	RuleLoadValue = "GL004"
	// RuleLoadInvalid: a load is labeled with a location whose tracked
	// contents are invalid (last written by a Src-0 copy and never refilled).
	RuleLoadInvalid = "GL005"
	// RuleNondet: re-enumerating the transitions of a state produced a
	// different list — enumeration is nondeterministic (typically map
	// iteration), which breaks run replay and model-checking stability.
	RuleNondet = "GL006"
	// RuleKeyCollision: two behaviorally distinct states share a Key —
	// State.Key is not injective over reachable states, so the model
	// checker would merge states that must stay separate.
	RuleKeyCollision = "GL007"
	// RuleBandwidth: a run exceeded the declared node-bandwidth bound k
	// (the observer's ID pool was exhausted, or the descriptor tracker held
	// more than k simultaneously live nodes).
	RuleBandwidth = "GL008"
	// RuleDeadState: a reachable state has no enabled transitions. Scripted
	// single-run protocols end in such a state by design, so this is a
	// warning, not an error.
	RuleDeadState = "GL009"
	// RuleUnreachable: a state declared via StateDeclarer was not reached
	// by an exhaustive exploration.
	RuleUnreachable = "GL010"
	// RuleObserver: the witness observer rejected a run of the protocol for
	// a reason other than bandwidth — the run left the class the observer
	// was generated for.
	RuleObserver = "GL011"
	// RuleOverK: the declared node-bandwidth bound k was never approached —
	// no bandwidth run held more than some peak < k live nodes. An
	// over-declared k is not unsound, but it inflates every downstream
	// cost that scales with k (observer ID pool, checker graph width), so
	// this is an opt-in warning (Options.CheckOverK); the sampled runs are
	// a lower bound on the true peak, not a proof of it.
	RuleOverK = "GL012"
)

// Severity ranks a finding.
type Severity uint8

const (
	// Warning findings flag smells that do not by themselves unsound the
	// verdict (dead states, unreachable declared states).
	Warning Severity = iota
	// Error findings violate a soundness precondition of the method.
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// MarshalJSON renders the severity as its name, so machine-readable
// reports say "warning"/"error" rather than a bare enum ordinal.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the name form produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// StateDeclarer is optionally implemented by protocols that can enumerate
// states they expect to be reachable; Lint reports declared states the
// exhaustive exploration never visited.
type StateDeclarer interface {
	DeclaredStates() []protocol.State
}

// Finding is one rule violation, positioned by the path that exhibits it.
// The JSON field names are a stable machine interface (sccheck lint -json).
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Protocol string   `json:"protocol"`
	// Path is the sequence of transition indices from the initial state
	// that reaches the offending state (replayable via
	// protocol.ReplayIndices); nil when no single path applies.
	Path []int `json:"path,omitempty"`
	// Msg describes the violation.
	Msg string `json:"msg"`
}

// String renders the finding in a grep-able single line.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s [%s] %s", f.Protocol, f.Severity, f.Rule, f.Msg)
	if f.Path != nil {
		s += fmt.Sprintf(" (path %v)", f.Path)
	}
	return s
}

// Options bound the exploration and configure the bandwidth pass.
type Options struct {
	// MaxStates caps the number of distinct (state, shadow) pairs explored;
	// 0 means 50000.
	MaxStates int
	// MaxDepth caps the BFS depth; 0 means unbounded (within MaxStates).
	MaxDepth int
	// MaxFindings stops collection after this many findings; 0 means 50.
	MaxFindings int
	// PoolSize declares the observer ID pool (k) for the bandwidth pass;
	// 0 selects the observer's Section 4.4 default for the protocol.
	PoolSize int
	// Generator builds the ST-order generator for the bandwidth pass; nil
	// means the trivial real-time generator.
	Generator func() observer.STOrderGenerator
	// BandwidthRuns is the number of pseudo-random runs replayed through
	// the observer; 0 means 20. Negative disables the pass.
	BandwidthRuns int
	// BandwidthSteps is the length of each bandwidth run; 0 means 60.
	BandwidthSteps int
	// Seed offsets the bandwidth pass's run seeds.
	Seed int64
	// CheckOverK enables the GL012 warning: after a fully clean bandwidth
	// pass, report when no run held more than peak < k live nodes — the
	// declared bound may be larger than the protocol needs. Opt-in
	// because the sampled runs only lower-bound the true peak.
	CheckOverK bool
}

func (o Options) withDefaults() Options {
	if o.MaxStates == 0 {
		o.MaxStates = 50000
	}
	if o.MaxFindings == 0 {
		o.MaxFindings = 50
	}
	if o.BandwidthRuns == 0 {
		o.BandwidthRuns = 20
	}
	if o.BandwidthSteps == 0 {
		o.BandwidthSteps = 60
	}
	if o.Generator == nil {
		o.Generator = func() observer.STOrderGenerator { return observer.NewRealTime() }
	}
	return o
}

// Report is the outcome of linting one protocol. The JSON field names
// are a stable machine interface (sccheck lint -json); Elapsed marshals
// as nanoseconds.
type Report struct {
	Protocol string    `json:"protocol"`
	Findings []Finding `json:"findings"`
	// States is the number of distinct (state, shadow) pairs visited.
	States int `json:"states"`
	// Transitions is the number of protocol transitions examined.
	Transitions int `json:"transitions"`
	// Complete reports that the reachable state space was exhausted within
	// the configured bounds (unreachability findings are only sound then).
	Complete bool          `json:"complete"`
	Elapsed  time.Duration `json:"elapsed"`
}

// Errors counts error-severity findings.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == Error {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity findings.
func (r *Report) Warnings() int { return len(r.Findings) - r.Errors() }

// Clean reports that the protocol produced no findings at all.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %d findings (%d errors) — %d states, %d transitions, complete=%v, %v",
		r.Protocol, len(r.Findings), r.Errors(), r.States, r.Transitions, r.Complete,
		r.Elapsed.Round(time.Millisecond))
}

// Lint verifies Γ-membership and well-formedness of the protocol within
// the configured bounds and returns every violation found.
func Lint(p protocol.Protocol, opts Options) *Report {
	start := time.Now()
	opts = opts.withDefaults()
	rep := &Report{Protocol: p.Name()}

	lintStructure(p, opts, rep)
	if rep.full(opts) {
		rep.Elapsed = time.Since(start)
		return rep
	}
	if opts.BandwidthRuns > 0 {
		lintBandwidth(p, opts, rep)
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// add appends a finding unless the report is full.
func (r *Report) add(opts Options, f Finding) {
	if len(r.Findings) < opts.MaxFindings {
		r.Findings = append(r.Findings, f)
	}
}

func (r *Report) full(opts Options) bool { return len(r.Findings) >= opts.MaxFindings }
