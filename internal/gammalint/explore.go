package gammalint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// shadow is the lint's model of every storage location's contents as
// implied by the tracking labels alone: the Section 4.1 ST-index
// induction, carried out on values. If the labels are well-formed the
// shadow mirrors the protocol's real location contents, so every load
// must read exactly the shadow value of its labeled location.
type shadow struct {
	val   []trace.Value // by location, 1-based; index 0 unused
	valid []bool        // false after a Src-0 (invalidation) copy
}

func newShadow(locations int) shadow {
	sh := shadow{val: make([]trace.Value, locations+1), valid: make([]bool, locations+1)}
	for l := 1; l <= locations; l++ {
		sh.valid[l] = true // every location starts holding the initial value
	}
	return sh
}

func (sh shadow) clone() shadow {
	out := shadow{val: make([]trace.Value, len(sh.val)), valid: make([]bool, len(sh.valid))}
	copy(out.val, sh.val)
	copy(out.valid, sh.valid)
	return out
}

// applyCopies applies an internal transition's copy labels; all copies
// read the pre-transition state (matching protocol.STIndexTracker).
func (sh *shadow) applyCopies(copies []protocol.Copy) {
	if len(copies) == 0 {
		return
	}
	old := sh.clone()
	for _, cp := range copies {
		if cp.Dst < 1 || cp.Dst >= len(sh.val) {
			continue // out-of-range labels are reported separately (GL003)
		}
		if cp.Src == 0 {
			sh.valid[cp.Dst] = false
			sh.val[cp.Dst] = 0
		} else if cp.Src >= 1 && cp.Src < len(sh.val) {
			sh.val[cp.Dst] = old.val[cp.Src]
			sh.valid[cp.Dst] = old.valid[cp.Src]
		}
	}
}

// apply advances the shadow by one transition. Copies attached to a store
// are applied after the store itself, so a write-through store's copy from
// its freshly written location propagates the new value.
func (sh *shadow) apply(tr protocol.Transition) {
	switch {
	case tr.Action.IsMem() && tr.Action.Op.IsStore():
		if tr.Loc >= 1 && tr.Loc < len(sh.val) {
			sh.val[tr.Loc] = tr.Action.Op.Value
			sh.valid[tr.Loc] = true
		}
		sh.applyCopies(tr.Copies)
	case !tr.Action.IsMem():
		sh.applyCopies(tr.Copies)
	}
}

func (sh shadow) key() string {
	buf := make([]byte, 0, 2*len(sh.val))
	for l := 1; l < len(sh.val); l++ {
		b := byte(0)
		if sh.valid[l] {
			b = 1
		}
		buf = append(buf, b)
		buf = binary.AppendUvarint(buf, uint64(sh.val[l]))
	}
	return string(buf)
}

// transitionSignature serializes one transition for the determinism and
// key-injectivity checks.
func transitionSignature(tr protocol.Transition) string {
	s := tr.Action.String()
	s += fmt.Sprintf("|%d|", tr.Loc)
	for _, cp := range tr.Copies {
		s += fmt.Sprintf("%d<-%d,", cp.Dst, cp.Src)
	}
	s += "|" + tr.Next.Key()
	return s
}

// behaviorFingerprint hashes the full transition list of a state; two
// states with equal keys must have equal fingerprints if Key is injective.
func behaviorFingerprint(trs []protocol.Transition) uint64 {
	h := fnv.New64a()
	for _, tr := range trs {
		_, _ = h.Write([]byte(transitionSignature(tr)))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// bfsEntry is one frontier element of the exploration.
type bfsEntry struct {
	state protocol.State
	sh    shadow
	path  []int
}

// lintStructure explores the protocol's reachable states breadth-first,
// checking label well-formedness, load/shadow consistency, transition
// determinism, Key injectivity and dead states.
func lintStructure(p protocol.Protocol, opts Options, rep *Report) {
	params := p.Params()
	locations := p.Locations()
	name := p.Name()

	init := bfsEntry{state: p.Initial(), sh: newShadow(locations)}

	visited := make(map[string]struct{})    // (state key, shadow key)
	fingerprints := make(map[string]uint64) // state key -> behavior fingerprint
	stateKeys := make(map[string]struct{})  // state keys seen (for reachability)
	reported := make(map[string]struct{})   // rule+msg dedup
	truncated := false

	report := func(rule string, sev Severity, path []int, msg string) {
		dk := rule + "|" + msg
		if _, ok := reported[dk]; ok {
			return
		}
		reported[dk] = struct{}{}
		rep.add(opts, Finding{Rule: rule, Severity: sev, Protocol: name, Path: path, Msg: msg})
	}

	key := func(e bfsEntry) string { return e.state.Key() + "\x00" + e.sh.key() }

	// fingerprintCheck runs the GL007 comparison for one encountered state
	// instance. It must run on every encounter — not just on dequeued
	// states — because two behaviorally distinct states sharing a key
	// collapse to one visited entry and the second would otherwise never be
	// examined. The instance's transition list is enumerated afresh.
	fingerprintCheck := func(st protocol.State, path []int) {
		sk := st.Key()
		fp := behaviorFingerprint(p.Transitions(st))
		if prev, ok := fingerprints[sk]; ok {
			if prev != fp {
				report(RuleKeyCollision, Error, path, fmt.Sprintf(
					"State.Key is not injective: key %q names two states with different transitions", sk))
			}
		} else {
			fingerprints[sk] = fp
		}
	}

	visited[key(init)] = struct{}{}
	stateKeys[init.state.Key()] = struct{}{}
	fingerprintCheck(init.state, nil)
	frontier := []bfsEntry{init}
	depth := 0

	for len(frontier) > 0 && !rep.full(opts) {
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			truncated = true
			break
		}
		var next []bfsEntry
		for _, e := range frontier {
			if rep.full(opts) {
				break
			}
			trs := p.Transitions(e.state)
			rep.Transitions += len(trs)

			// GL006: enumeration must be repeatable.
			again := p.Transitions(e.state)
			if !sameTransitions(trs, again) {
				report(RuleNondet, Error, e.path, fmt.Sprintf(
					"transition enumeration is nondeterministic: two queries of state %q differ", e.state.Key()))
			}

			// GL009: dead state.
			if len(trs) == 0 {
				report(RuleDeadState, Warning, e.path, fmt.Sprintf("state %q has no enabled transitions", e.state.Key()))
			}

			for i, tr := range trs {
				path := append(append([]int(nil), e.path...), i)
				lintTransition(params, locations, tr, e.sh, report, path)

				fingerprintCheck(tr.Next, path)

				nsh := e.sh.clone()
				nsh.apply(tr)
				ne := bfsEntry{state: tr.Next, sh: nsh, path: path}
				nk := key(ne)
				if _, ok := visited[nk]; ok {
					continue
				}
				if len(visited) >= opts.MaxStates {
					truncated = true
					continue
				}
				visited[nk] = struct{}{}
				stateKeys[ne.state.Key()] = struct{}{}
				next = append(next, ne)
			}
		}
		frontier = next
		depth++
	}
	if len(frontier) > 0 {
		truncated = true
	}

	rep.States = len(visited)
	rep.Complete = !truncated && !rep.full(opts)

	// GL010: declared states must be reachable — only meaningful when the
	// exploration was exhaustive.
	if decl, ok := p.(StateDeclarer); ok && rep.Complete {
		for _, s := range decl.DeclaredStates() {
			if _, seen := stateKeys[s.Key()]; !seen {
				report(RuleUnreachable, Warning, nil, fmt.Sprintf("declared state %q is unreachable", s.Key()))
			}
		}
	}
}

// lintTransition applies the per-transition label rules (GL001–GL005).
func lintTransition(params trace.Params, locations int, tr protocol.Transition, sh shadow, report func(string, Severity, []int, string), path []int) {
	if tr.Action.IsMem() {
		op := *tr.Action.Op
		if !params.Contains(op) {
			report(RuleOpParams, Error, path, fmt.Sprintf("operation %s outside declared parameters %s", op, params))
		}
		if tr.Loc < 1 || tr.Loc > locations {
			report(RuleMemLocRange, Error, path, fmt.Sprintf("%s carries tracking label %d outside 1..%d", op, tr.Loc, locations))
			return
		}
		if !op.IsStore() {
			// GL004/GL005: the load must read its labeled location's tracked
			// contents — the operational meaning of a well-formed f.
			if !sh.valid[tr.Loc] {
				report(RuleLoadInvalid, Error, path, fmt.Sprintf(
					"%s reads location %d whose tracked contents are invalid", op, tr.Loc))
			} else if sh.val[tr.Loc] != op.Value {
				report(RuleLoadValue, Error, path, fmt.Sprintf(
					"%s disagrees with tracked contents of location %d (tracking says %d): wrong tracking label, or an ST did not update the location it names",
					op, tr.Loc, sh.val[tr.Loc]))
			}
		}
	}
	for _, cp := range tr.Copies {
		if cp.Dst < 1 || cp.Dst > locations {
			report(RuleCopyRange, Error, path, fmt.Sprintf(
				"copy destination %d outside 1..%d on %s", cp.Dst, locations, tr.Action))
		}
		if cp.Src < 0 || cp.Src > locations {
			report(RuleCopyRange, Error, path, fmt.Sprintf(
				"copy source %d outside 0..%d on %s", cp.Src, locations, tr.Action))
		}
	}
}

func sameTransitions(a, b []protocol.Transition) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if transitionSignature(a[i]) != transitionSignature(b[i]) {
			return false
		}
	}
	return true
}
