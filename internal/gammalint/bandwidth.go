package gammalint

import (
	"errors"
	"fmt"

	"scverify/internal/descriptor"
	"scverify/internal/observer"
	"scverify/internal/protocol"
)

// lintBandwidth replays pseudo-random runs of the protocol through the
// witness observer and the descriptor ID tracker, confirming the declared
// node-bandwidth bound k: the observer's ID pool (k IDs plus the reserved
// release ID) must never exhaust, and the tracker must never hold more
// than k simultaneously live nodes. Exceeding either means runs of the
// protocol produce constraint graphs outside the k-graph class the
// downstream checker is built for (Section 3.2).
func lintBandwidth(p protocol.Protocol, opts Options, rep *Report) {
	name := p.Name()
	// Across clean runs, remember the declared bound and the highest peak
	// of simultaneously live nodes for the opt-in GL012 over-declaration
	// warning. Dirty runs invalidate the sample: a rejected run's peak
	// says nothing about the protocol's real needs.
	declaredK := 0
	maxPeak := 0
	cleanRuns := 0
	for r := 0; r < opts.BandwidthRuns && !rep.full(opts); r++ {
		run := protocol.RandomRun(p, opts.BandwidthSteps, opts.Seed+int64(r))

		tracker := descriptor.NewTracker()
		live := 0
		peak := 0
		track := func(sym descriptor.Symbol) error {
			eff := tracker.Apply(sym)
			switch eff.Kind {
			case descriptor.EffectNode:
				live++
				if eff.Displaced >= 0 && eff.DisplacedEmptied {
					live--
				}
			case descriptor.EffectAddID:
				if eff.Displaced >= 0 && eff.DisplacedEmptied {
					live--
				}
			}
			if live > peak {
				peak = live
			}
			return nil
		}

		obs := observer.New(p, opts.Generator(), observer.Config{PoolSize: opts.PoolSize}, track)
		k := obs.K()
		failed := false
		for i, step := range run.Steps {
			if err := obs.Step(step.Transition); err != nil {
				path := runPrefixIndices(p, run, i+1)
				if errors.Is(err, observer.ErrBandwidth) {
					rep.add(opts, Finding{Rule: RuleBandwidth, Severity: Error, Protocol: name, Path: path,
						Msg: fmt.Sprintf("declared bandwidth bound k=%d exceeded after %d steps: %v", k, i+1, err)})
				} else {
					rep.add(opts, Finding{Rule: RuleObserver, Severity: Error, Protocol: name, Path: path,
						Msg: fmt.Sprintf("observer rejected run after %d steps: %v", i+1, err)})
				}
				failed = true
				break
			}
		}
		if failed {
			continue
		}
		if err := obs.Finish(); err != nil {
			rule, msg := RuleObserver, fmt.Sprintf("observer rejected run at finish: %v", err)
			if errors.Is(err, observer.ErrBandwidth) {
				rule, msg = RuleBandwidth, fmt.Sprintf("declared bandwidth bound k=%d exceeded at finish: %v", k, err)
			}
			rep.add(opts, Finding{Rule: rule, Severity: Error, Protocol: name,
				Path: runPrefixIndices(p, run, len(run.Steps)), Msg: msg})
			continue
		}
		if peak > k {
			rep.add(opts, Finding{Rule: RuleBandwidth, Severity: Error, Protocol: name,
				Path: runPrefixIndices(p, run, len(run.Steps)),
				Msg:  fmt.Sprintf("descriptor tracker held %d live nodes, above the declared bound k=%d", peak, k)})
			continue
		}
		declaredK = k
		cleanRuns++
		if peak > maxPeak {
			maxPeak = peak
		}
	}
	if opts.CheckOverK && cleanRuns == opts.BandwidthRuns && cleanRuns > 0 && maxPeak < declaredK {
		rep.add(opts, Finding{Rule: RuleOverK, Severity: Warning, Protocol: name,
			Msg: fmt.Sprintf("declared bandwidth bound k=%d, but %d clean runs never held more than %d live nodes; k may be over-declared", declaredK, cleanRuns, maxPeak)})
	}
}

// runPrefixIndices recovers the transition-index path of a run prefix so
// bandwidth findings are replayable like exploration findings.
func runPrefixIndices(p protocol.Protocol, run *protocol.Run, steps int) []int {
	runner := protocol.NewRunner(p)
	path := make([]int, 0, steps)
	for _, step := range run.Steps[:steps] {
		want := transitionSignature(step.Transition)
		idx := -1
		for i, tr := range runner.Enabled() {
			if transitionSignature(tr) == want {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil // enumeration unstable; GL006 reports that separately
		}
		path = append(path, idx)
		if err := runner.TakeIndex(idx); err != nil {
			return nil
		}
	}
	return path
}
