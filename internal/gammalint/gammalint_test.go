package gammalint_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"scverify/internal/gammalint"
	"scverify/internal/protocol"
	"scverify/internal/protocols/msibus"
	"scverify/internal/protocols/serial"
	"scverify/internal/trace"
)

// cellState is the one-cell fixture state: the cell's current value plus
// whether the invalidation fixture has fired.
type cellState struct {
	val      trace.Value
	inv      bool
	hidden   int  // behavior-relevant but omittable from the key
	hideFrom bool // when set, Key omits hidden (non-injectivity fixture)
}

func (s cellState) Key() string {
	if s.hideFrom {
		return fmt.Sprintf("c%d|%v", s.val, s.inv)
	}
	return fmt.Sprintf("c%d|%v|%d", s.val, s.inv, s.hidden)
}

// cellProto is a single-cell memory whose tracking labels are configurable
// so each Γ-lint rule can be violated in isolation.
type cellProto struct {
	name       string
	locations  int
	stLoc      int // label carried by stores
	ldLoc      int // label carried by loads
	values     int // values stores may write (may exceed params.Values)
	params     trace.Params
	invalidate bool // add an Inv action invalidating location 1
	badCopy    bool // add a Copy action with out-of-range labels
	hideHidden bool // make Key non-injective via the hidden field
	splitOnce  bool // add two internal actions diverging the hidden field
}

func (c *cellProto) Name() string         { return c.name }
func (c *cellProto) Params() trace.Params { return c.params }
func (c *cellProto) Locations() int       { return c.locations }
func (c *cellProto) Initial() protocol.State {
	return cellState{hideFrom: c.hideHidden}
}

func (c *cellProto) Transitions(ps protocol.State) []protocol.Transition {
	s := ps.(cellState)
	var out []protocol.Transition
	for v := trace.Value(1); int(v) <= c.values; v++ {
		next := s
		next.val = v
		next.inv = false
		out = append(out, protocol.Transition{
			Action: protocol.MemOp(trace.ST(1, 1, v)),
			Next:   next,
			Loc:    c.stLoc,
		})
	}
	out = append(out, protocol.Transition{
		Action: protocol.MemOp(trace.LD(1, 1, s.val)),
		Next:   s,
		Loc:    c.ldLoc,
	})
	if c.invalidate && !s.inv {
		next := s
		next.inv = true
		out = append(out, protocol.Transition{
			Action: protocol.Internal("Inv"),
			Next:   next,
			Copies: []protocol.Copy{{Dst: 1, Src: 0}},
		})
	}
	if c.badCopy {
		out = append(out, protocol.Transition{
			Action: protocol.Internal("Copy"),
			Next:   s,
			Copies: []protocol.Copy{{Dst: c.locations + 4, Src: -1}},
		})
	}
	if c.splitOnce && s.hidden == 0 {
		for d := 1; d <= 2; d++ {
			next := s
			next.hidden = d
			out = append(out, protocol.Transition{
				Action: protocol.Internal("Split", d),
				Next:   next,
			})
		}
	}
	if s.hidden != 0 {
		// Behavior depends on hidden: distinct internal actions per value.
		out = append(out, protocol.Transition{
			Action: protocol.Internal("Mark", s.hidden),
			Next:   s,
		})
	}
	return out
}

func goodCell() *cellProto {
	return &cellProto{
		name:      "cell-ok",
		locations: 1,
		stLoc:     1,
		ldLoc:     1,
		values:    2,
		params:    trace.Params{Procs: 1, Blocks: 1, Values: 2},
	}
}

func lint(t *testing.T, p protocol.Protocol, opts gammalint.Options) *gammalint.Report {
	t.Helper()
	if opts.MaxStates == 0 {
		opts.MaxStates = 2000
	}
	rep := gammalint.Lint(p, opts)
	t.Log(rep)
	return rep
}

func wantRule(t *testing.T, rep *gammalint.Report, rule string) {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Rule == rule {
			return
		}
	}
	t.Errorf("no %s finding; findings: %v", rule, rep.Findings)
}

func wantClean(t *testing.T, rep *gammalint.Report) {
	t.Helper()
	for _, f := range rep.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestCleanFixtureProtocol(t *testing.T) {
	rep := lint(t, goodCell(), gammalint.Options{})
	wantClean(t, rep)
	if !rep.Complete {
		t.Error("exploration of the one-cell protocol should be complete")
	}
}

func TestRegisteredProtocolsSpotCheck(t *testing.T) {
	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	for _, p := range []protocol.Protocol{serial.New(params), msibus.New(params)} {
		rep := lint(t, p, gammalint.Options{MaxStates: 5000, BandwidthRuns: 5})
		wantClean(t, rep)
	}
}

func TestBuggyProtocolsStayInGamma(t *testing.T) {
	// Coherence bugs break SC, not Γ-membership: the labels still describe
	// what the broken protocol actually does, so Γ-lint must stay silent.
	params := trace.Params{Procs: 2, Blocks: 1, Values: 2}
	for _, bug := range []msibus.Bug{msibus.BugLostWriteback, msibus.BugNoInvalidate} {
		rep := lint(t, msibus.NewBuggy(params, bug), gammalint.Options{MaxStates: 5000, BandwidthRuns: 5})
		wantClean(t, rep)
	}
}

func TestOpOutsideParams(t *testing.T) {
	p := goodCell()
	p.name = "cell-bad-params"
	p.values = 3 // params say 2
	rep := lint(t, p, gammalint.Options{})
	wantRule(t, rep, gammalint.RuleOpParams)
}

func TestMemLocOutOfRange(t *testing.T) {
	p := goodCell()
	p.name = "cell-bad-ldloc"
	p.ldLoc = 7
	rep := lint(t, p, gammalint.Options{})
	wantRule(t, rep, gammalint.RuleMemLocRange)
}

func TestCopyLabelOutOfRange(t *testing.T) {
	p := goodCell()
	p.name = "cell-bad-copy"
	p.badCopy = true
	rep := lint(t, p, gammalint.Options{BandwidthRuns: -1})
	wantRule(t, rep, gammalint.RuleCopyRange)
}

func TestBrokenTrackingLabelDetected(t *testing.T) {
	// The store labels location 2 but the machine's loads read the cell
	// tracked as location 1: the ST transition does not update the location
	// it names, so a later load disagrees with the tracked contents.
	p := goodCell()
	p.name = "cell-bad-stloc"
	p.locations = 2
	p.stLoc = 2
	rep := lint(t, p, gammalint.Options{BandwidthRuns: -1})
	wantRule(t, rep, gammalint.RuleLoadValue)
}

func TestLoadFromInvalidatedLocation(t *testing.T) {
	p := goodCell()
	p.name = "cell-bad-inv"
	p.invalidate = true
	rep := lint(t, p, gammalint.Options{BandwidthRuns: -1})
	wantRule(t, rep, gammalint.RuleLoadInvalid)
}

func TestNonInjectiveKeyDetected(t *testing.T) {
	p := goodCell()
	p.name = "cell-bad-key"
	p.hideHidden = true
	p.splitOnce = true
	rep := lint(t, p, gammalint.Options{BandwidthRuns: -1})
	wantRule(t, rep, gammalint.RuleKeyCollision)
}

// flipFlopProto enumerates transitions in an order that changes between
// queries — the map-iteration failure mode, made deterministic for tests.
type flipFlopProto struct {
	*cellProto
	calls int
}

func (f *flipFlopProto) Transitions(ps protocol.State) []protocol.Transition {
	out := f.cellProto.Transitions(ps)
	f.calls++
	if f.calls%2 == 0 && len(out) > 1 {
		out[0], out[1] = out[1], out[0]
	}
	return out
}

func TestNondeterministicEnumerationDetected(t *testing.T) {
	p := &flipFlopProto{cellProto: goodCell()}
	p.name = "cell-nondet"
	rep := lint(t, p, gammalint.Options{BandwidthRuns: -1})
	wantRule(t, rep, gammalint.RuleNondet)
}

func TestDeadStateReported(t *testing.T) {
	s := &protocol.Scripted{
		ProtoName: "script-ends",
		P:         1, B: 1, V: 1, L: 1,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
		},
	}
	rep := lint(t, s, gammalint.Options{BandwidthRuns: -1})
	wantRule(t, rep, gammalint.RuleDeadState)
	if rep.Errors() != 0 {
		t.Errorf("dead state must be a warning, got %d errors", rep.Errors())
	}
}

// declaringProto wraps a protocol and declares one reachable and one
// unreachable state.
type declaringProto struct {
	*cellProto
}

func (d *declaringProto) DeclaredStates() []protocol.State {
	return []protocol.State{
		cellState{val: 1},               // reachable
		cellState{val: 9, hidden: 1234}, // not reachable
	}
}

func TestUnreachableDeclaredState(t *testing.T) {
	p := &declaringProto{cellProto: goodCell()}
	p.name = "cell-declares"
	rep := lint(t, p, gammalint.Options{BandwidthRuns: -1})
	wantRule(t, rep, gammalint.RuleUnreachable)
	if rep.Errors() != 0 {
		t.Errorf("unreachable declared state must be a warning, got %d errors", rep.Errors())
	}
}

func TestBandwidthBoundViolation(t *testing.T) {
	// A pool of 2 IDs cannot describe the serial protocol's constraint
	// graphs (it needs a store, its loads, and program-order tails live at
	// once), so the declared k must be reported as exceeded.
	params := trace.Params{Procs: 2, Blocks: 1, Values: 1}
	rep := lint(t, serial.New(params), gammalint.Options{
		MaxStates: 500, PoolSize: 2, BandwidthRuns: 10, BandwidthSteps: 30,
	})
	wantRule(t, rep, gammalint.RuleBandwidth)
}

func TestFindingsAreReplayable(t *testing.T) {
	p := goodCell()
	p.name = "cell-bad-stloc"
	p.locations = 2
	p.stLoc = 2
	rep := lint(t, p, gammalint.Options{BandwidthRuns: -1})
	for _, f := range rep.Findings {
		if f.Path == nil {
			continue
		}
		if _, err := protocol.ReplayIndices(p, f.Path); err != nil {
			t.Errorf("finding path %v does not replay: %v", f.Path, err)
		}
	}
}

// TestOverDeclaredKWarns exercises the opt-in GL012 pass: the one-cell
// protocol never holds more than a couple of live nodes, so declaring a
// pool of 9 IDs is waste the bandwidth pass can measure. The finding
// must be a warning — an over-declared k is a cost problem, not a
// soundness problem.
func TestOverDeclaredKWarns(t *testing.T) {
	rep := lint(t, goodCell(), gammalint.Options{PoolSize: 9, CheckOverK: true})
	wantRule(t, rep, gammalint.RuleOverK)
	for _, f := range rep.Findings {
		if f.Rule == gammalint.RuleOverK && f.Severity != gammalint.Warning {
			t.Errorf("GL012 severity = %s, want warning", f.Severity)
		}
	}
	if rep.Errors() != 0 {
		t.Errorf("over-declared k produced %d errors; want warnings only", rep.Errors())
	}
}

// TestOverDeclaredKIsOptIn pins GL012's default-off contract: the same
// over-declared pool is silent without CheckOverK, so existing clean
// gates (the registry conformance test among them) stay clean.
func TestOverDeclaredKIsOptIn(t *testing.T) {
	rep := lint(t, goodCell(), gammalint.Options{PoolSize: 9})
	wantClean(t, rep)
}

// TestReportJSONShape pins the machine-readable report shape emitted by
// `sccheck lint -json`: field names, severity as its name, and paths
// omitted when absent. A hand-built report keeps the bytes exact.
func TestReportJSONShape(t *testing.T) {
	rep := &gammalint.Report{
		Protocol: "cell-ok",
		Findings: []gammalint.Finding{
			{Rule: gammalint.RuleBandwidth, Severity: gammalint.Error, Protocol: "cell-ok", Path: []int{0, 2}, Msg: "boom"},
			{Rule: gammalint.RuleOverK, Severity: gammalint.Warning, Protocol: "cell-ok", Msg: "lazy"},
		},
		States:      7,
		Transitions: 21,
		Complete:    true,
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"protocol":"cell-ok","findings":[` +
		`{"rule":"GL008","severity":"error","protocol":"cell-ok","path":[0,2],"msg":"boom"},` +
		`{"rule":"GL012","severity":"warning","protocol":"cell-ok","msg":"lazy"}],` +
		`"states":7,"transitions":21,"complete":true,"elapsed":0}`
	if string(got) != want {
		t.Errorf("JSON shape changed\n got: %s\nwant: %s", got, want)
	}
	var back gammalint.Report
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.Findings[0].Severity != gammalint.Error || back.Findings[1].Severity != gammalint.Warning {
		t.Errorf("severity did not round-trip: %+v", back.Findings)
	}
}
