package cycle

import (
	"fmt"
	"strings"

	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// NodeRef identifies a constraint-graph node for counterexample reporting:
// its creation order in the stream, the descriptor ID it was created with,
// and its operation label. A Seq of -1 is the truncation marker used when a
// contraction chain exceeds maxVia (see Hop).
type NodeRef struct {
	Seq int // 0-based index among node symbols in the stream; -1 = elision marker
	ID  int // descriptor ID the node was created with
	Op  *trace.Op
}

// String renders the node as "[n<seq>] <op>"; elision markers render "…".
func (r NodeRef) String() string {
	if r.Seq < 0 {
		return "…"
	}
	if r.Op == nil {
		return fmt.Sprintf("[n%d]", r.Seq)
	}
	return fmt.Sprintf("[n%d] %s", r.Seq, r.Op)
}

// Hop is one step of a cycle: the node the step leaves from and the label
// of the edge toward the next hop's node (cyclically).
type Hop struct {
	Node  NodeRef
	Label descriptor.EdgeLabel
}

// CycleError is the rejection produced when an edge symbol closes a cycle
// in the active graph (Lemma 3.3). From/To are the descriptor IDs of the
// closing edge symbol. In witness mode (EnableWitness), Hops lists the full
// cycle in order — including nodes already contracted out of the active
// graph — such that Hops[i].Node reaches Hops[(i+1)%len].Node via an edge
// labeled Hops[i].Label, and the last hop is the closing edge itself.
// Without witness mode, Hops is nil and only the closing edge is known.
type CycleError struct {
	From, To int // descriptor IDs of the closing edge symbol
	Hops     []Hop
	Msg      string
}

// Error returns the rejection message.
func (e *CycleError) Error() string { return e.Msg }

// Len returns the number of concrete nodes on the cycle (elision markers
// excluded), or 0 when the cycle was not extracted (witness mode off).
func (e *CycleError) Len() int {
	n := 0
	for _, h := range e.Hops {
		if h.Node.Seq >= 0 {
			n++
		}
	}
	return n
}

// String renders the cycle as a one-line happens-before loop, e.g.
// "ST(P1,B1,1) ─po→ LD(P2,B1,⊥) ─forced→ ST(P1,B1,1)".
func (e *CycleError) String() string {
	if len(e.Hops) == 0 {
		return e.Msg
	}
	var sb strings.Builder
	for _, h := range e.Hops {
		sb.WriteString(h.Node.String())
		sb.WriteString(" ─")
		sb.WriteString(h.Label.String())
		sb.WriteString("→ ")
	}
	sb.WriteString(e.Hops[0].Node.String())
	return sb.String()
}

// maxVia caps the number of contracted nodes remembered per active-graph
// edge, so witness bookkeeping stays bounded on arbitrarily long streams; a
// chain that overflows keeps its first maxVia hops plus an elision marker.
const maxVia = 64

// EnableWitness switches the checker into witness mode: it records node
// identities and edge provenance so that a rejection carries the actual
// offending cycle (CycleError.Hops) instead of just the closing edge. Must
// be called before the first Step. Witness mode costs O(active edges ×
// chain length) extra memory, bounded by maxVia per edge; the model
// checker, which clones the automaton at every branch, leaves it off and
// re-derives witnesses by replaying the counterexample run.
func (c *Checker) EnableWitness() *Checker {
	if c.witness {
		return c
	}
	c.witness = true
	c.refs = make([]NodeRef, c.n)
	c.lab = make([]uint8, c.n*c.n)
	c.via = make(map[int32][]Hop)
	return c
}

// WitnessEnabled reports whether witness mode is on.
func (c *Checker) WitnessEnabled() bool { return c.witness }

func (c *Checker) edgeKey(f, t int) int32 { return int32(f*c.n + t) }

// noteNode records the identity of the node claiming the slot.
func (c *Checker) noteNode(slot int16, v descriptor.Node) {
	if !c.witness {
		return
	}
	c.refs[slot] = NodeRef{Seq: c.seq, ID: v.ID, Op: v.Op}
}

// noteEdge records the label of a freshly added direct edge.
func (c *Checker) noteEdge(f, t int16, label descriptor.EdgeLabel) {
	if !c.witness {
		return
	}
	key := c.edgeKey(int(f), int(t))
	c.lab[key] = uint8(label)
	delete(c.via, key)
}

// noteContraction records provenance for edge (p,s) created by contracting
// the node at slot out of the path p → slot → s.
func (c *Checker) noteContraction(p, slot, s int) {
	if !c.witness {
		return
	}
	pre := c.via[c.edgeKey(p, slot)]
	post := c.via[c.edgeKey(slot, s)]
	chain := make([]Hop, 0, len(pre)+1+len(post))
	chain = append(chain, pre...)
	chain = append(chain, Hop{Node: c.refs[slot], Label: descriptor.EdgeLabel(c.lab[c.edgeKey(slot, s)])})
	chain = append(chain, post...)
	if len(chain) > maxVia {
		chain = append(chain[:maxVia:maxVia], Hop{Node: NodeRef{Seq: -1}})
	}
	key := c.edgeKey(p, s)
	c.lab[key] = c.lab[c.edgeKey(p, slot)]
	c.via[key] = chain
}

// clearWitness drops witness bookkeeping for every edge touching the slot,
// after the slot has been contracted out.
func (c *Checker) clearWitness(slot int) {
	if !c.witness {
		return
	}
	for i := 0; i < c.n; i++ {
		k1, k2 := c.edgeKey(i, slot), c.edgeKey(slot, i)
		c.lab[k1], c.lab[k2] = 0, 0
		delete(c.via, k1)
		delete(c.via, k2)
	}
}

// extractCycle builds the CycleError for the closing edge symbol e, whose
// endpoints resolved to the slots from and to. In witness mode the full
// original-node cycle is reconstructed: the active-graph path to → … → from
// with each contracted chain expanded, then the closing edge from → to.
func (c *Checker) extractCycle(from, to int16, e descriptor.Edge) *CycleError {
	ce := &CycleError{
		From: e.From, To: e.To,
		Msg: fmt.Sprintf("cycle: edge (%d,%d) closes a cycle", e.From, e.To),
	}
	if !c.witness {
		return ce
	}
	path := c.findPath(to, from)
	if path == nil {
		return ce // defensive: caller established reachability
	}
	var hops []Hop
	for i := 0; i+1 < len(path); i++ {
		f, t := path[i], path[i+1]
		key := c.edgeKey(int(f), int(t))
		hops = append(hops, Hop{Node: c.refs[f], Label: descriptor.EdgeLabel(c.lab[key])})
		hops = append(hops, c.via[key]...)
	}
	hops = append(hops, Hop{Node: c.refs[from], Label: e.Label})
	ce.Hops = hops
	return ce
}

// selfLoopError reports the 1-cycle created when an edge symbol's endpoints
// name the same node.
func (c *Checker) selfLoopError(slot int16, e descriptor.Edge) *CycleError {
	ce := &CycleError{
		From: e.From, To: e.To,
		Msg: fmt.Sprintf("cycle: self-loop via edge (%d,%d)", e.From, e.To),
	}
	if c.witness {
		ce.Hops = []Hop{{Node: c.refs[slot], Label: e.Label}}
	}
	return ce
}

// findPath returns the slots of some path src → … → dst in the active
// graph (inclusive of both endpoints), or nil if none exists. Deterministic:
// DFS in increasing slot order.
func (c *Checker) findPath(src, dst int16) []int16 {
	n := c.n
	parent := make([]int16, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	stack := []int16{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			// Reconstruct by walking parents back to src.
			var rev []int16
			for v := dst; ; v = parent[v] {
				rev = append(rev, v)
				if v == src {
					break
				}
			}
			path := make([]int16, len(rev))
			for i, v := range rev {
				path[len(rev)-1-i] = v
			}
			return path
		}
		row := c.adj[int(u)*n : (int(u)+1)*n]
		for v := n - 1; v >= 0; v-- { // push high first so low slots pop first
			if row[v] && parent[v] < 0 {
				parent[v] = u
				stack = append(stack, int16(v))
			}
		}
	}
	return nil
}
