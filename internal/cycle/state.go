package cycle

import "sort"

// StateKey returns a canonical encoding of the checker state, suitable for
// hashing in model-checking state spaces. Two checkers with the same key
// behave identically on all future inputs. Nodes are canonicalized by the
// smallest ID they hold, so internal slot numbers never leak.
func (c *Checker) StateKey() []byte {
	return c.StateKeyRenamed(nil)
}

// StateKeyRenamed returns the state key under an ID permutation (raw ID →
// canonical ID); see observer.CanonicalRename. A nil rename is the
// identity.
func (c *Checker) StateKeyRenamed(rename []int) []byte {
	if c.rejected != nil {
		return []byte{0xff}
	}
	mapID := func(id int) int {
		if rename == nil {
			return id
		}
		return rename[id]
	}
	// Representative per slot: the minimum renamed ID naming it.
	rep := make([]int, c.n)
	for i := range rep {
		rep[i] = 0
	}
	for id := 1; id <= c.k+1; id++ {
		slot := c.owner[id]
		if slot < 0 {
			continue
		}
		m := mapID(id)
		if rep[slot] == 0 || m < rep[slot] {
			rep[slot] = m
		}
	}
	key := make([]byte, 0, c.k+1+16)
	// ID ownership in canonical ID order: position i-1 holds the
	// representative of canonical ID i's node (0 when unbound).
	slots := make([]byte, c.k+2)
	for id := 1; id <= c.k+1; id++ {
		if s := c.owner[id]; s >= 0 {
			slots[mapID(id)] = byte(rep[s])
		}
	}
	key = append(key, slots[1:]...)
	// Edges as sorted representative pairs.
	var edges [][2]int
	n := c.n
	for f := 0; f < n; f++ {
		for t := 0; t < n; t++ {
			if c.adj[f*n+t] {
				edges = append(edges, [2]int{rep[f], rep[t]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		key = append(key, byte(e[0]), byte(e[1]))
	}
	return key
}
