package cycle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
)

func node(id int) descriptor.Node                        { return descriptor.Node{ID: id} }
func edge(from, to int) descriptor.Edge                  { return descriptor.Edge{From: from, To: to} }
func addID(ex, nw int) descriptor.AddID                  { return descriptor.AddID{Existing: ex, New: nw} }
func stream(syms ...descriptor.Symbol) descriptor.Stream { return descriptor.Stream(syms) }

func TestAcceptsChain(t *testing.T) {
	s := stream(node(1), node(2), edge(1, 2), node(1), edge(2, 1))
	if err := CheckStream(s, 2); err != nil {
		t.Errorf("chain rejected: %v", err)
	}
}

func TestRejectsTwoCycle(t *testing.T) {
	s := stream(node(1), node(2), edge(1, 2), edge(2, 1))
	if err := CheckStream(s, 2); err == nil {
		t.Error("2-cycle accepted")
	}
}

func TestRejectsSelfLoop(t *testing.T) {
	s := stream(node(1), edge(1, 1))
	if err := CheckStream(s, 2); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestRejectsSelfLoopViaAlias(t *testing.T) {
	s := stream(node(1), addID(1, 2), edge(1, 2))
	if err := CheckStream(s, 2); err == nil {
		t.Error("aliased self-loop accepted")
	}
}

func TestContractionPreservesCycles(t *testing.T) {
	// Build 1 -> 2 -> 3, recycle node 2's ID (contracting 1 -> 3), then add
	// the back edge 3 -> 1: must reject even though node 2 is gone.
	s := stream(
		node(1), node(2), node(3),
		edge(1, 2), edge(2, 3),
		node(2), // recycles ID 2; contraction adds 1 -> 3
		edge(3, 1),
	)
	if err := CheckStream(s, 3); err == nil {
		t.Error("cycle through contracted node accepted")
	}
}

func TestContractionChainDeep(t *testing.T) {
	// A long path whose middle is repeatedly contracted, then closed.
	k := 2
	c := New(k)
	must := func(sym descriptor.Symbol) {
		t.Helper()
		if err := c.Step(sym); err != nil {
			t.Fatalf("unexpected reject: %v", err)
		}
	}
	must(node(1))
	must(node(2))
	must(edge(1, 2))
	for i := 0; i < 20; i++ {
		// Extend the path using ID 3, retiring ID 2's node each round.
		must(node(3))
		must(edge(2, 3))
		must(addID(3, 2)) // node formerly ID 3 now holds {3,2}... then reuse 3
		must(node(3))
		must(edge(2, 3))
		must(addID(3, 2))
	}
	// Close the cycle back to the head (ID 1 still live).
	if err := c.Step(edge(2, 1)); err == nil {
		t.Error("long contracted cycle accepted")
	}
}

func TestUnboundEdgeIgnored(t *testing.T) {
	s := stream(node(1), edge(1, 3), edge(3, 1))
	if err := CheckStream(s, 3); err != nil {
		t.Errorf("unbound edges should denote nothing: %v", err)
	}
}

func TestRejectSticky(t *testing.T) {
	c := New(2)
	if err := c.Step(edge(9, 9)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := c.Step(node(1)); err == nil {
		t.Error("checker should stay rejected")
	}
	if c.Err() == nil {
		t.Error("Err() should report rejection")
	}
}

func TestIDRangeEnforced(t *testing.T) {
	if err := CheckStream(stream(node(4)), 2); err == nil {
		t.Error("node ID beyond k+1 accepted")
	}
	if err := CheckStream(stream(node(1), addID(1, 4)), 2); err == nil {
		t.Error("add-ID beyond k+1 accepted")
	}
}

func TestAddIDSelfNoop(t *testing.T) {
	c := New(2)
	_ = c.Step(node(1))
	if err := c.Step(addID(1, 1)); err != nil {
		t.Fatalf("self add-ID rejected: %v", err)
	}
	if c.Active() != 1 {
		t.Errorf("active = %d, want 1", c.Active())
	}
}

func TestAddIDDisplacementContracts(t *testing.T) {
	// Node A(1), node B(2), edge A->B; then alias ID 2 onto A: node B loses
	// its last ID and is contracted away. Active graph should hold A only.
	c := New(2)
	for _, sym := range stream(node(1), node(2), edge(1, 2), addID(1, 2)) {
		if err := c.Step(sym); err != nil {
			t.Fatalf("reject: %v", err)
		}
	}
	if c.Active() != 1 {
		t.Errorf("active = %d, want 1", c.Active())
	}
}

func TestFigure3StreamAccepted(t *testing.T) {
	op := func(o trace.Op) *trace.Op { return &o }
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.POSTo},
		descriptor.Node{ID: 4, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 4, Label: descriptor.Inh},
		descriptor.Edge{From: 2, To: 4, Label: descriptor.PO},
		descriptor.Edge{From: 4, To: 3, Label: descriptor.Forced},
		descriptor.Node{ID: 1, Op: op(trace.LD(2, 1, 2))},
		descriptor.Edge{From: 3, To: 1, Label: descriptor.Inh},
		descriptor.Edge{From: 4, To: 1, Label: descriptor.PO},
	}
	c := New(3)
	if err := c.Check(s); err != nil {
		t.Errorf("Figure 3 descriptor rejected: %v", err)
	}
	if c.Stats().MaxActive > 4 {
		t.Errorf("active graph grew to %d nodes, bound is k+1=4", c.Stats().MaxActive)
	}
}

// randomStream emits a random but ID-range-respecting symbol stream and is
// the workhorse of the differential property test below.
func randomStream(rng *rand.Rand, k, n int) descriptor.Stream {
	s := make(descriptor.Stream, 0, n)
	bound := map[int]bool{}
	for i := 0; i < n; i++ {
		id := func() int { return 1 + rng.Intn(k+1) }
		switch rng.Intn(4) {
		case 0, 1:
			v := id()
			s = append(s, descriptor.Node{ID: v})
			bound[v] = true
		case 2:
			if len(bound) == 0 {
				continue
			}
			s = append(s, descriptor.Edge{From: id(), To: id()})
		default:
			s = append(s, descriptor.AddID{Existing: id(), New: id()})
		}
	}
	return s
}

func TestDifferentialAgainstDecoderProperty(t *testing.T) {
	// Lemma 3.3 property: the finite-state checker accepts exactly the
	// streams whose decoded (full, unbounded) graph is acyclic. The decoder
	// keeps everything; the checker keeps at most k+1 nodes.
	rng := rand.New(rand.NewSource(9))
	k := 4
	prop := func(_ uint8) bool {
		s := randomStream(rng, k, 30)
		want := descriptor.Decode(s).IsAcyclic()
		got := CheckStream(s, k) == nil
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialOnEncodedDAGs(t *testing.T) {
	// Every encoded DAG must be accepted; the same stream with one edge
	// reversed into a cycle must be rejected by both implementations alike.
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50; i++ {
		n := 3 + rng.Intn(10)
		tr := make(trace.Trace, n)
		for j := range tr {
			tr[j] = trace.ST(1, 1, 1)
		}
		g := graph.New(tr)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(a, b, 0)
				}
			}
		}
		s, k := descriptor.EncodeAuto(g)
		if err := CheckStream(s, k); err != nil {
			t.Fatalf("encoded DAG rejected: %v", err)
		}
	}
}

func TestMaxActiveBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 5, 8} {
		c := New(k)
		for _, sym := range randomStream(rng, k, 200) {
			if c.Step(sym) != nil {
				break
			}
		}
		if c.Stats().MaxActive > k+1 {
			t.Errorf("k=%d: active graph reached %d nodes", k, c.Stats().MaxActive)
		}
	}
}

func TestStateKeyDistinguishesAndMatches(t *testing.T) {
	// Same symbol history => same key.
	a, b := New(3), New(3)
	s := stream(node(1), node(2), edge(1, 2))
	for _, sym := range s {
		_ = a.Step(sym)
		_ = b.Step(sym)
	}
	if string(a.StateKey()) != string(b.StateKey()) {
		t.Error("identical histories produced different keys")
	}
	// Different edge direction => different key.
	cck := New(3)
	for _, sym := range stream(node(1), node(2), edge(2, 1)) {
		_ = cck.Step(sym)
	}
	if string(a.StateKey()) == string(cck.StateKey()) {
		t.Error("different graphs share a key")
	}
	// Rejected checker has the distinguished key.
	r := New(3)
	_ = r.Step(edge(1, 1))
	_ = r.Step(node(9))
	if string(r.StateKey()) != "\xff" {
		t.Errorf("rejected key = %v", r.StateKey())
	}
}

func TestStateKeyCanonicalAcrossHandleHistories(t *testing.T) {
	// Two different symbol histories arriving at the same abstract state —
	// nodes {1} and {2} with no edges — must share a key, even though the
	// internal node handles differ.
	a := New(2)
	for _, sym := range stream(node(1), node(2)) {
		_ = a.Step(sym)
	}
	b := New(2)
	for _, sym := range stream(node(2), node(1), node(2)) {
		// First {2} node is displaced and contracted away by the third
		// symbol, leaving {1} and a fresh {2}.
		_ = b.Step(sym)
	}
	if string(a.StateKey()) != string(b.StateKey()) {
		t.Errorf("equal abstract states produced different keys:\n a=%v\n b=%v",
			a.StateKey(), b.StateKey())
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(2)
	s := stream(node(1), node(2), edge(1, 2), node(1))
	for _, sym := range s {
		if err := c.Step(sym); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Symbols != 4 || st.Edges != 1 {
		t.Errorf("stats = %+v", st)
	}
}
