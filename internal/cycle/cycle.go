// Package cycle implements the finite-state cycle checker of Lemma 3.3 of
// Condon & Hu: an automaton that reads a k-graph descriptor symbol by
// symbol and rejects exactly the streams describing cyclic graphs. It
// maintains an "active graph" of at most k+1 nodes; when a node's last ID
// is recycled, the node is removed after contracting every path through it
// (for edges (H,X) and (X,J), edge (H,J) is added), which preserves all
// cycles among the surviving nodes.
//
// The representation is deliberately flat — an ID-to-slot table and a
// dense adjacency matrix over at most k+2 slots — because the model
// checker clones the automaton at every branch of the product-state
// exploration: Clone is three slice copies.
package cycle

import (
	"fmt"

	"scverify/internal/descriptor"
)

// Checker is the finite-state cycle-checking automaton. The zero value is
// not usable; construct with New.
type Checker struct {
	k int
	n int // slot count = k+2 (at most k+1 active nodes)

	owner   []int16 // ID (1..k+1) -> slot, -1 when unbound
	idCount []int16 // per slot: IDs currently naming it; 0 = free slot
	adj     []bool  // n×n adjacency; adj[f*n+t] means edge slot f -> slot t

	// Witness-mode bookkeeping (EnableWitness): node identities per slot,
	// first-seen label per active edge, and contraction provenance chains.
	// All nil/zero when witness mode is off; none of it influences
	// acceptance, only the content of CycleError rejections.
	witness bool
	seq     int       // node symbols consumed (NodeRef.Seq source)
	refs    []NodeRef // per slot: identity of the node holding it
	lab     []uint8   // n×n: EdgeLabel of the first hop of edge f -> t
	via     map[int32][]Hop

	rejected error
	stats    Stats
}

// Stats accumulates observability counters for benchmarking and tests.
type Stats struct {
	Symbols      int // symbols processed
	Edges        int // edge symbols processed
	Contractions int // contracted edge pairs
	MaxActive    int // high-water mark of active node count
}

// New returns a cycle checker for k-graph descriptors (IDs 1..k+1).
func New(k int) *Checker {
	n := k + 2
	c := &Checker{
		k:       k,
		n:       n,
		owner:   make([]int16, k+2),
		idCount: make([]int16, n),
		adj:     make([]bool, n*n),
	}
	for i := range c.owner {
		c.owner[i] = -1
	}
	return c
}

// K returns the bandwidth bound the checker was built for.
func (c *Checker) K() int { return c.k }

// Stats returns the counters accumulated so far.
func (c *Checker) Stats() Stats { return c.stats }

// Err returns the rejection error if the checker has rejected, else nil.
func (c *Checker) Err() error { return c.rejected }

// Active returns the number of nodes currently in the active graph.
func (c *Checker) Active() int {
	n := 0
	for _, cnt := range c.idCount {
		if cnt > 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the checker; stepping the copy never
// affects the original.
func (c *Checker) Clone() *Checker {
	out := &Checker{
		k: c.k, n: c.n,
		owner:    append([]int16(nil), c.owner...),
		idCount:  append([]int16(nil), c.idCount...),
		adj:      append([]bool(nil), c.adj...),
		witness:  c.witness,
		seq:      c.seq,
		rejected: c.rejected,
		stats:    c.stats,
	}
	if c.witness {
		out.refs = append([]NodeRef(nil), c.refs...)
		out.lab = append([]uint8(nil), c.lab...)
		out.via = make(map[int32][]Hop, len(c.via))
		for k, v := range c.via {
			// Chains are immutable once built (noteContraction always
			// allocates fresh), so sharing the slices is safe.
			out.via[k] = v
		}
	}
	return out
}

// Step consumes one symbol. Once the checker rejects, it stays rejected
// and returns the same error for all subsequent symbols.
func (c *Checker) Step(sym descriptor.Symbol) error {
	if c.rejected != nil {
		return c.rejected
	}
	c.stats.Symbols++
	switch v := sym.(type) {
	case descriptor.Node:
		if v.ID < 1 || v.ID > c.k+1 {
			return c.reject(fmt.Errorf("cycle: node ID %d outside 1..%d", v.ID, c.k+1))
		}
		c.releaseID(v.ID)
		slot := c.freeSlot()
		c.owner[v.ID] = slot
		c.idCount[slot] = 1
		c.noteNode(slot, v)
		c.seq++
		if a := c.Active(); a > c.stats.MaxActive {
			c.stats.MaxActive = a
		}
	case descriptor.AddID:
		if v.Existing < 1 || v.Existing > c.k+1 || v.New < 1 || v.New > c.k+1 {
			return c.reject(fmt.Errorf("cycle: add-ID(%d,%d) outside 1..%d", v.Existing, v.New, c.k+1))
		}
		if v.Existing == v.New {
			return nil // ID stays with its current node
		}
		gainer := c.owner[v.Existing]
		if c.owner[v.New] == gainer && gainer >= 0 {
			return nil // alias already in place
		}
		c.releaseID(v.New)
		if gainer >= 0 {
			c.owner[v.New] = gainer
			c.idCount[gainer]++
		}
	case descriptor.Edge:
		c.stats.Edges++
		if v.From < 1 || v.From > c.k+1 || v.To < 1 || v.To > c.k+1 {
			return c.reject(fmt.Errorf("cycle: edge (%d,%d) outside 1..%d", v.From, v.To, c.k+1))
		}
		from, to := c.owner[v.From], c.owner[v.To]
		if from < 0 || to < 0 {
			return nil // unbound IDs denote no edge (Section 3.2 semantics)
		}
		if from == to {
			return c.reject(c.selfLoopError(from, v))
		}
		if c.reachable(to, from) {
			return c.reject(c.extractCycle(from, to, v))
		}
		if !c.adj[int(from)*c.n+int(to)] {
			c.noteEdge(from, to, v.Label)
		}
		c.adj[int(from)*c.n+int(to)] = true
	default:
		return c.reject(fmt.Errorf("cycle: unknown symbol type %T", sym))
	}
	return nil
}

// Check runs the checker over a whole stream, returning nil iff the
// stream describes an acyclic graph.
func (c *Checker) Check(s descriptor.Stream) error {
	for _, sym := range s {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return c.rejected
}

// CheckStream is a convenience that runs a fresh checker over the stream.
func CheckStream(s descriptor.Stream, k int) error {
	return New(k).Check(s)
}

func (c *Checker) reject(err error) error {
	c.rejected = err
	return err
}

func (c *Checker) freeSlot() int16 {
	for i, cnt := range c.idCount {
		if cnt == 0 {
			// A freshly claimed slot must not carry stale edges; rows are
			// cleared on contraction, so this is just bookkeeping safety.
			return int16(i)
		}
	}
	// Unreachable: k+1 IDs can name at most k+1 nodes and there are k+2
	// slots.
	panic("cycle: no free slot")
}

// releaseID detaches the ID from its holder; if the holder loses its last
// ID, the holder is contracted out of the active graph.
func (c *Checker) releaseID(id int) {
	slot := c.owner[id]
	if slot < 0 {
		return
	}
	c.owner[id] = -1
	c.idCount[slot]--
	if c.idCount[slot] > 0 {
		return
	}
	c.contractOut(int(slot))
}

// contractOut removes the node at the slot, adding an edge (H,J) for every
// pair of edges (H,node),(node,J). Cycles through the node are preserved
// among its neighbours; H==J cannot occur because that cycle would already
// have been rejected.
func (c *Checker) contractOut(slot int) {
	n := c.n
	for p := 0; p < n; p++ {
		if !c.adj[p*n+slot] {
			continue
		}
		for s := 0; s < n; s++ {
			if c.adj[slot*n+s] {
				c.stats.Contractions++
				if !c.adj[p*n+s] {
					// A pre-existing direct edge (p,s) is a shorter witness;
					// provenance is only recorded for genuinely new edges.
					c.noteContraction(p, slot, s)
				}
				c.adj[p*n+s] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		c.adj[i*n+slot] = false
		c.adj[slot*n+i] = false
	}
	c.clearWitness(slot)
}

// reachable reports whether dst is reachable from src in the active graph.
func (c *Checker) reachable(src, dst int16) bool {
	if src == dst {
		return true
	}
	n := c.n
	var seen [66]bool // n ≤ 66 would overflow; sized dynamically below if needed
	var seenSlice []bool
	if n <= len(seen) {
		seenSlice = seen[:n]
	} else {
		seenSlice = make([]bool, n)
	}
	var stack [66]int16
	var stk []int16
	if n <= len(stack) {
		stk = stack[:0]
	} else {
		stk = make([]int16, 0, n)
	}
	stk = append(stk, src)
	seenSlice[src] = true
	for len(stk) > 0 {
		u := int(stk[len(stk)-1])
		stk = stk[:len(stk)-1]
		row := c.adj[u*n : (u+1)*n]
		for v, ok := range row {
			if !ok || seenSlice[v] {
				continue
			}
			if int16(v) == dst {
				return true
			}
			seenSlice[v] = true
			stk = append(stk, int16(v))
		}
	}
	return false
}
