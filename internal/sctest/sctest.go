// Package sctest implements the per-run testing scenario of Section 5 of
// Condon & Hu: instead of model checking the full product, the observer
// and checker are simulated alongside concrete protocol runs, flagging any
// run whose constraint graph is cyclic or ill-annotated. Runs can be
// cross-checked against the exact (exponential) serial-reordering search
// of Gibbons & Korach to classify rejections: a rejected run whose trace
// is genuinely non-SC is a protocol violation; a rejected run whose trace
// IS SC shows the chosen annotation (tracking labels / ST-order
// generator) is inadequate for the protocol, not that the protocol is
// broken — exactly the distinction the paper draws for lazy caching under
// the trivial generator.
package sctest

import (
	"fmt"
	"sync"

	"scverify/internal/checker"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
)

// Config tunes a testing campaign.
type Config struct {
	Runs  int   // number of random runs
	Steps int   // maximum steps per run
	Seed  int64 // base seed; run i uses Seed+i
	// Exact enables the Gibbons–Korach cross-check on traces of length at
	// most ExactLimit.
	Exact      bool
	ExactLimit int // default 14
	// Workers runs the campaign on a worker pool; 0 or 1 is sequential.
	// Results are deterministic regardless of worker count: per-run
	// verdicts depend only on the run's seed, and aggregation is ordered.
	Workers int
	// Check overrides per-run adjudication; nil means the in-process
	// CheckRun. RemoteChecker supplies one that ships each run's
	// descriptor stream to an scserve service. It must be safe for
	// concurrent use when Workers > 1.
	Check func(*protocol.Run, registry.Target) error
	// Tier adjudicates every rejection's witness core against the
	// weaker-model ladder: the verdict's wire tier when the checker is a
	// tiered service, the local TierWitness adjudication otherwise, and
	// both cross-checked against each other whenever both resolve.
	Tier bool
}

// Result summarizes a campaign.
type Result struct {
	Runs     int
	Accepted int
	Rejected int
	// NonSCConfirmed counts rejected runs whose traces the exact search
	// confirmed non-SC (true violations).
	NonSCConfirmed int
	// RejectedButSC counts rejected runs whose traces are SC — annotation
	// inadequacy, not protocol violation.
	RejectedButSC int
	// CrossChecked counts runs the exact search examined.
	CrossChecked int
	// SoundnessBreaks counts accepted runs whose traces the exact search
	// found non-SC. Any non-zero value is a bug in the method.
	SoundnessBreaks int

	// Tiers histograms rejections by adjudicated consistency tier
	// (indexed by spectrum.Tier) when Config.Tier is set; TiersUnchecked
	// counts rejections whose core no side could adjudicate, and
	// WrongTiers counts service/local tier disagreements — like
	// SoundnessBreaks, any non-zero value is a bug.
	Tiers          [spectrum.NumTiers]int
	TiersUnchecked int
	WrongTiers     int

	// FirstRejected retains the first rejected run and its cause.
	FirstRejected *protocol.Run
	FirstCause    error
}

// String renders a one-line summary.
func (r Result) String() string {
	s := fmt.Sprintf("%d runs: %d accepted, %d rejected", r.Runs, r.Accepted, r.Rejected)
	if r.CrossChecked > 0 {
		s += fmt.Sprintf(" (%d cross-checked: %d confirmed non-SC, %d annotation-inadequate, %d soundness breaks)",
			r.CrossChecked, r.NonSCConfirmed, r.RejectedButSC, r.SoundnessBreaks)
	}
	if tl := tierLine(r.Tiers, r.TiersUnchecked, r.WrongTiers); tl != "" {
		s += "; " + tl
	}
	return s
}

// CheckRun observes one recorded run, pipes the descriptor stream straight
// into a fresh checker, and returns nil if the run is accepted.
func CheckRun(run *protocol.Run, tgt registry.Target) error {
	// The checker needs the observer's bandwidth bound, which depends only
	// on the pool configuration; size a throwaway observer first.
	sizing := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, nil)
	chk := checker.New(sizing.K())
	chk.SetParams(run.Protocol.Params())
	obs := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, chk.Step)
	for _, step := range run.Steps {
		if err := obs.Step(step.Transition); err != nil {
			return err
		}
	}
	if err := obs.Finish(); err != nil {
		return err
	}
	return chk.Finish()
}

// verdict is one run's classification, produced independently per seed.
type verdict struct {
	run     *protocol.Run
	err     error
	checked bool
	isSC    bool
	tv      tierVerdict
}

func classify(tgt registry.Target, cfg Config, i int) verdict {
	run := protocol.RandomRun(tgt.Protocol, cfg.Steps, cfg.Seed+int64(i))
	check := cfg.Check
	if check == nil {
		check = CheckRun
	}
	v := verdict{run: run, err: check(run, tgt)}
	if cfg.Exact && len(run.Trace) <= cfg.ExactLimit {
		v.checked = true
		v.isSC = trace.HasSerialReordering(run.Trace)
	}
	if cfg.Tier && v.err != nil {
		v.tv = adjudicateTier(v.err, func() (spectrum.Result, bool) {
			return LocalTier(run, tgt)
		})
	}
	return v
}

// Campaign runs the testing scenario against a target, fanning the runs
// across a worker pool when Config.Workers asks for one.
func Campaign(tgt registry.Target, cfg Config) Result {
	if cfg.ExactLimit == 0 {
		cfg.ExactLimit = 14
	}
	res := Result{Runs: cfg.Runs}

	verdicts := make([]verdict, cfg.Runs)
	if cfg.Workers > 1 {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					verdicts[i] = classify(tgt, cfg, i)
				}
			}()
		}
		for i := 0; i < cfg.Runs; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
	} else {
		for i := 0; i < cfg.Runs; i++ {
			verdicts[i] = classify(tgt, cfg, i)
		}
	}

	// Ordered aggregation keeps FirstRejected deterministic.
	for _, v := range verdicts {
		if v.checked {
			res.CrossChecked++
		}
		if v.err == nil {
			res.Accepted++
			if v.checked && !v.isSC {
				res.SoundnessBreaks++
			}
			continue
		}
		res.Rejected++
		if res.FirstRejected == nil {
			res.FirstRejected = v.run
			res.FirstCause = v.err
		}
		if cfg.Tier {
			switch {
			case v.tv.wrong:
				res.WrongTiers++
			case v.tv.tierOK && int(v.tv.tier) < len(res.Tiers):
				res.Tiers[v.tv.tier]++
			default:
				res.TiersUnchecked++
			}
		}
		if v.checked {
			if v.isSC {
				res.RejectedButSC++
			} else {
				res.NonSCConfirmed++
			}
		}
	}
	return res
}
