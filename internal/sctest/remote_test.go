package sctest

import (
	"context"
	"net"
	"testing"
	"time"

	"scverify/internal/registry"
	"scverify/internal/scserve"
	"scverify/internal/trace"
)

// TestRemoteCheckerMatchesLocal runs the same campaigns through the
// in-process checker and through a live scserve service: the per-run
// verdicts — and therefore every campaign counter — must agree exactly,
// for an SC protocol (all accepts) and a non-SC one (mixed).
func TestRemoteCheckerMatchesLocal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := scserve.New(scserve.Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	for _, name := range []string{"msi", "storebuffer"} {
		tgt, err := registry.Build(name, registry.Options{Params: params})
		if err != nil {
			t.Fatal(err)
		}
		base := Config{Runs: 40, Steps: 14, Seed: 7, Exact: true, ExactLimit: 10, Workers: 4}
		local := Campaign(tgt, base)
		remoteCfg := base
		remoteCfg.Check = RemoteChecker(ln.Addr().String(), 30*time.Second)
		remote := Campaign(tgt, remoteCfg)

		if local.Accepted != remote.Accepted || local.Rejected != remote.Rejected ||
			local.NonSCConfirmed != remote.NonSCConfirmed || local.RejectedButSC != remote.RejectedButSC ||
			local.SoundnessBreaks != remote.SoundnessBreaks {
			t.Errorf("%s: local %v != remote %v", name, local, remote)
		}
		if name == "msi" && remote.Rejected != 0 {
			t.Errorf("msi: %d remote rejections: %v", remote.Rejected, remote.FirstCause)
		}
		if name == "storebuffer" && remote.Rejected == 0 {
			t.Errorf("storebuffer: campaign found no violations remotely")
		}
	}
}
