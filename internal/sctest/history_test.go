package sctest

import (
	"testing"
	"time"

	"scverify/internal/history"
	"scverify/internal/scgrid"
)

// TestHistorySmokeCampaign is the tier-1 history acceptance test: a
// deterministic campaign of generated replicated-KV histories where every
// anomaly-free history must be accepted and every injected anomaly must
// be rejected with its expected constraint code — adjudicated in-process,
// then again through a three-backend scgrid fabric, whose verdicts must
// agree with the local checker's exactly.
func TestHistorySmokeCampaign(t *testing.T) {
	cfg := HistoryConfig{
		Seeds:   8,
		Seed:    1,
		Gen:     history.GenConfig{Processes: 4, Keys: 3, Ops: 60, FailEvery: 9, InfoEvery: 11},
		Workers: 4,
	}

	local := HistoryCampaign(cfg)
	t.Logf("local: %s", local)
	if !local.Passed() {
		t.Fatalf("local history campaign failed: %s\nfirst unexpected: %s",
			local, renderHistoryFailure(local.FirstUnexpected))
	}
	wantHistories := cfg.Seeds * (1 + len(history.AllAnomalies()))
	if local.Histories != wantHistories {
		t.Fatalf("campaign covered %d histories, want %d", local.Histories, wantHistories)
	}
	if local.AnomalyCaught != cfg.Seeds*len(history.AllAnomalies()) {
		t.Fatalf("anomalies caught = %d, want %d", local.AnomalyCaught, cfg.Seeds*len(history.AllAnomalies()))
	}

	// The same campaign adjudicated through the grid fabric: three
	// backends, tokened sessions, dispatcher placement.
	backends := []*gridBackend{startGridBackend(t), startGridBackend(t), startGridBackend(t)}
	g, err := scgrid.New(
		[]string{backends[0].addr, backends[1].addr, backends[2].addr},
		scgrid.Config{
			Seed:        2,
			Timeout:     5 * time.Second,
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	gridCfg := cfg
	gridCfg.Check = HistoryGridChecker(g)
	viaGrid := HistoryCampaign(gridCfg)
	t.Logf("grid:  %s", viaGrid)
	if !viaGrid.Passed() {
		t.Fatalf("grid history campaign failed: %s\nfirst unexpected: %s",
			viaGrid, renderHistoryFailure(viaGrid.FirstUnexpected))
	}
	if viaGrid.CleanAccepted != local.CleanAccepted || viaGrid.AnomalyCaught != local.AnomalyCaught {
		t.Fatalf("grid verdicts diverge from local: local %s, grid %s", local, viaGrid)
	}
	stats := g.Stats()
	placed := int64(0)
	for _, b := range stats.Backends {
		placed += b.Sessions
	}
	if placed < int64(wantHistories) {
		t.Errorf("grid placed %d sessions, want >= %d", placed, wantHistories)
	}
}

// TestHistoryRemoteChecker pins the single-server path: one clean and one
// anomalous history adjudicated through scserve, verdicts matching local.
func TestHistoryRemoteChecker(t *testing.T) {
	b := startGridBackend(t)
	check := HistoryRemoteChecker(b.addr, 5*time.Second)

	clean, err := history.Generate(history.GenConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	l, err := history.Lower(clean.History)
	if err != nil {
		t.Fatal(err)
	}
	if err := check(l); err != nil {
		t.Errorf("clean history rejected remotely: %v", err)
	}

	bad, err := history.Generate(history.GenConfig{Seed: 3, Anomalies: []history.AnomalyKind{history.AnomalyStaleRead}})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := history.Lower(bad.History)
	if err != nil {
		t.Fatal(err)
	}
	err = check(lb)
	got, ok := RejectConstraint(err)
	if !ok || got != history.AnomalyStaleRead.Constraint() {
		t.Errorf("remote rejection = %v (constraint %v, ok=%v), want %v",
			err, got, ok, history.AnomalyStaleRead.Constraint())
	}
}

func renderHistoryFailure(f *HistoryFailure) string {
	if f == nil {
		return "<none>"
	}
	s := f.String()
	if f.Lowering != nil {
		if w := f.Lowering.Explain(); w != nil {
			s += "\n" + w.Render()
		}
	}
	return s
}
