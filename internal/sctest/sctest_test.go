package sctest

import (
	"strings"
	"testing"

	"scverify/internal/registry"
	"scverify/internal/trace"
)

func build(t *testing.T, name string, p trace.Params) registry.Target {
	t.Helper()
	tgt, err := registry.Build(name, registry.Options{Params: p, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestCampaignAcceptsSCProtocols(t *testing.T) {
	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	for _, name := range []string{"serial", "msi", "mesi", "directory", "lazy"} {
		tgt := build(t, name, params)
		res := Campaign(tgt, Config{Runs: 20, Steps: 30, Seed: 1, Exact: true})
		if res.Rejected != 0 {
			t.Errorf("%s: %d rejections: first %v on %s", name, res.Rejected, res.FirstCause, res.FirstRejected)
		}
		if res.SoundnessBreaks != 0 {
			t.Errorf("%s: soundness break!", name)
		}
	}
}

func TestCampaignCatchesStoreBuffer(t *testing.T) {
	tgt := build(t, "storebuffer", trace.Params{Procs: 2, Blocks: 2, Values: 1})
	res := Campaign(tgt, Config{Runs: 300, Steps: 12, Seed: 3, Exact: true})
	if res.Rejected == 0 {
		t.Fatal("no rejections on store buffer")
	}
	if res.NonSCConfirmed == 0 {
		t.Error("no rejection confirmed non-SC by the exact search")
	}
	if res.SoundnessBreaks != 0 {
		t.Error("soundness break")
	}
	if res.FirstRejected == nil || res.FirstCause == nil {
		t.Error("first rejection not retained")
	}
}

func TestCampaignClassifiesLazyRealtimeAsAnnotationInadequate(t *testing.T) {
	// Lazy caching IS SC, but under the trivial real-time ST-order
	// generator the witness graph can be cyclic: rejections should be
	// classified as annotation-inadequate, not as violations.
	tgt := build(t, "lazy-realtime", trace.Params{Procs: 2, Blocks: 1, Values: 2})
	res := Campaign(tgt, Config{Runs: 400, Steps: 24, Seed: 5, Exact: true})
	if res.Rejected == 0 {
		t.Skip("no run hit the reordering window; extend the campaign")
	}
	if res.NonSCConfirmed != 0 {
		t.Errorf("lazy caching 'violations' confirmed non-SC?! %s", res)
	}
	if res.RejectedButSC == 0 {
		t.Errorf("rejections not classified as annotation-inadequate: %s", res)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Runs: 5, Accepted: 4, Rejected: 1, CrossChecked: 5, NonSCConfirmed: 1}
	s := r.String()
	for _, frag := range []string{"5 runs", "4 accepted", "1 rejected", "1 confirmed non-SC"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary %q missing %q", s, frag)
		}
	}
}

func TestCampaignWorkerInvariance(t *testing.T) {
	tgt := build(t, "msi-lost-writeback", trace.Params{Procs: 2, Blocks: 1, Values: 2})
	base := Config{Runs: 120, Steps: 14, Seed: 21, Exact: true}
	seq := Campaign(tgt, base)
	par := base
	par.Workers = 8
	got := Campaign(tgt, par)
	if seq.Accepted != got.Accepted || seq.Rejected != got.Rejected ||
		seq.NonSCConfirmed != got.NonSCConfirmed || seq.RejectedButSC != got.RejectedButSC {
		t.Fatalf("parallel campaign diverged:\n seq: %s\n par: %s", seq, got)
	}
	if seq.FirstRejected != nil && got.FirstRejected != nil &&
		seq.FirstRejected.String() != got.FirstRejected.String() {
		t.Error("first rejected run differs across worker counts")
	}
}
