package sctest

import (
	"errors"
	"testing"
	"time"

	"scverify/internal/faultnet"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
)

// waitDraining blocks until the grid's probes have marked want backends
// draining (the pool learns drain state only by observing verdicts).
func waitDraining(t *testing.T, g *scgrid.Grid, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for g.Stats().Draining < want {
		if time.Now().After(deadline) {
			t.Fatalf("pool never observed %d draining backends", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGridSmokeDrainBackend is the tier-1 drain smoke: a three-backend
// grid serves a registry campaign over clean links while one backend is
// drained mid-campaign. Because nothing is killed, every session must
// deliver its correct verdict — drain may redirect sessions, never cost
// one — and the drained backend must be observed and steered around.
// Deterministic and fast enough for the race detector.
func TestGridSmokeDrainBackend(t *testing.T) {
	backends := []*gridBackend{startGridBackend(t), startGridBackend(t), startGridBackend(t)}
	addrs := []string{backends[0].addr, backends[1].addr, backends[2].addr}
	g, err := scgrid.New(addrs, scgrid.Config{
		Seed:          5,
		Timeout:       5 * time.Second,
		MaxAttempts:   5,
		BaseDelay:     time.Millisecond,
		MaxDelay:      50 * time.Millisecond,
		PollEvery:     4 << 10,
		QueueWait:     5 * time.Second,
		ProbeInterval: 25 * time.Millisecond,
		ReadmitDelay:  50 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	remote := GridChecker(g, WithTenant("smoke"))

	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	names := registry.Names()
	total := 2 * len(names)
	drainAt := total / 3

	runsTotal, delivered := 0, 0
	for _, name := range names {
		tgt, err := registry.Build(name, registry.Options{Params: params})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if runsTotal == drainAt {
				t.Logf("smoke: draining backend %s at run %d/%d", backends[1].addr, runsTotal, total)
				backends[1].srv.Drain()
				waitDraining(t, g, 1)
			}
			run := protocol.RandomRun(tgt.Protocol, 600, int64(100+i))
			localErr := CheckRun(run, tgt)
			remoteErr := remote(run, tgt)
			runsTotal++

			var ve *scserve.VerdictError
			switch {
			case remoteErr == nil:
				delivered++
				if localErr != nil {
					t.Fatalf("%s run %d: WRONG VERDICT — grid accepted, local checker rejected: %v", name, i, localErr)
				}
			case errors.As(remoteErr, &ve):
				delivered++
				if ve.Verdict.Busy() || ve.Verdict.Code == scserve.VerdictProtocolError {
					t.Fatalf("%s run %d: non-checker verdict escaped the grid: %v", name, i, ve)
				}
				if localErr == nil {
					t.Fatalf("%s run %d: WRONG VERDICT — grid rejected, local checker accepted", name, i)
				}
			default:
				// Clean links, no kills: a drain must never surface as a
				// transport error.
				t.Fatalf("%s run %d: session degraded to an error under drain alone: %v", name, i, remoteErr)
			}
		}
	}

	if delivered != runsTotal {
		t.Fatalf("delivered %d of %d verdicts", delivered, runsTotal)
	}
	st := g.Stats()
	if st.Draining != 1 {
		t.Fatalf("draining = %d at campaign end, want 1", st.Draining)
	}
	if st.Healthy != 3 {
		t.Fatalf("healthy = %d, want 3 — draining is not unhealthy", st.Healthy)
	}
	// The tenant identity rode every hello: the backends accounted it.
	tenanted := false
	for _, gb := range backends {
		if ts, ok := gb.srv.Stats().Tenants["smoke"]; ok && ts.Bytes > 0 {
			tenanted = true
		}
	}
	if !tenanted {
		t.Fatal("no backend accounted the campaign's tenant identity")
	}
	t.Logf("smoke: %d runs delivered through the drain; grid: %+v", delivered, st)
}

// TestGridRollingRestartSoak is the zero-downtime acceptance test: a
// rolling restart is walked across a three-backend grid behind a
// fault-injected link — one backend drains, a second is hard-killed
// while the first is still draining, both restart cold, then a third
// drains and restarts. Faults and drains may cost retries, redirects, or
// clean transport errors; every delivered verdict (and tier) must equal
// the local checker's on the same run, and the full pool must rejoin
// undrained at the end.
func TestGridRollingRestartSoak(t *testing.T) {
	seed := int64(1)
	backends := []*gridBackend{startGridBackend(t), startGridBackend(t), startGridBackend(t)}
	addrs := []string{backends[0].addr, backends[1].addr, backends[2].addr}

	dialer := faultnet.NewDialer(faultnet.Config{
		Seed:            seed,
		WriteChunk:      1021,
		ReadChunk:       509,
		ResetAfterBytes: 20 << 10,
	})
	g, err := scgrid.New(addrs, scgrid.Config{
		Seed:          seed + 1,
		Timeout:       5 * time.Second,
		MaxAttempts:   10,
		BaseDelay:     time.Millisecond,
		MaxDelay:      50 * time.Millisecond,
		PollEvery:     4 << 10,
		QueueWait:     10 * time.Second,
		ProbeInterval: 50 * time.Millisecond,
		ReadmitDelay:  100 * time.Millisecond,
		Dial:          scgrid.Dialer(dialer.DialContext),
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	remote := GridChecker(g, Tiered(), WithTenant("soak"))

	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	cases := make([]chaosCase, 0, len(registry.Names()))
	total := 0
	for _, name := range registry.Names() {
		c := chaosCase{name: name, runs: 2, steps: 800}
		switch name {
		case "msi": // accept-heavy, long: sessions span several reset budgets
			c = chaosCase{name: name, runs: 3, steps: 30000}
		case "mesi":
			c = chaosCase{name: name, runs: 2, steps: 12000}
		case "storebuffer": // reject-heavy, long
			c = chaosCase{name: name, runs: 3, steps: 30000}
		}
		cases = append(cases, c)
		total += c.runs
	}

	// The rolling schedule, in campaign positions: drain b0; hard-kill a
	// busy peer while b0 still drains; restart both cold; drain the third.
	// The kill must land mid-session, so aim it at a long run: the first
	// run at or past two fifths of the campaign whose stream takes long
	// enough that a 50ms-delayed kill strikes while it is in flight.
	drain0At, killAt, restartAt, drain2At := total/5, 2*total/5, 3*total/5, 4*total/5
	idx := 0
	for _, c := range cases {
		for i := 0; i < c.runs; i++ {
			if idx >= 2*total/5 && c.steps >= 10000 {
				killAt = idx
				goto found
			}
			idx++
		}
	}
found:
	if restartAt <= killAt+1 {
		restartAt = killAt + 2
	}
	if drain2At <= restartAt+1 {
		drain2At = restartAt + 2
	}
	if drain2At >= total {
		drain2At = total - 1
	}
	killIdx := 1
	killDone := make(chan struct{})

	var delivered, rejected, transportErrs, runsTotal, tieredRejections int
	for _, c := range cases {
		tgt, err := registry.Build(c.name, registry.Options{Params: params})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c.runs; i++ {
			switch runsTotal {
			case drain0At:
				t.Logf("soak: draining backend %s at run %d/%d", backends[0].addr, runsTotal, total)
				backends[0].srv.Drain()
				waitDraining(t, g, 1)
			case killAt:
				// Strike a non-draining backend mid-session, while b0 is
				// still draining: drained and dead at once. "Mid-session" is
				// detected by state, not a timer — the victim must be holding
				// an in-flight slot AND have already served a mid-stream
				// resume for this run, so the kill is guaranteed to sever a
				// session with live checkpoints.
				before := make([]int64, len(backends))
				for bi, bs := range g.Stats().Backends {
					before[bi] = bs.Resumes
				}
				go func(runNo int) {
					defer close(killDone)
					deadline := time.Now().Add(2 * time.Second)
					victim := -1
					for victim < 0 && time.Now().Before(deadline) {
						for bi, bs := range g.Stats().Backends {
							if bi != 0 && bs.InFlight > 0 && bs.Resumes > before[bi] {
								victim = bi
								break
							}
						}
						if victim < 0 {
							time.Sleep(time.Millisecond)
						}
					}
					if victim < 0 {
						victim = 1
					}
					killIdx = victim
					t.Logf("soak: hard-killing backend %s mid-session at run %d/%d", backends[victim].addr, runNo, total)
					backends[victim].kill()
				}(runsTotal)
			case restartAt:
				<-killDone
				t.Logf("soak: restarting backends %s (killed) and %s (draining) cold at run %d/%d",
					backends[killIdx].addr, backends[0].addr, runsTotal, total)
				backends[killIdx].restart(t)
				// Restarting the draining backend cuts its in-flight sessions
				// (failover) and must clear its drain mark within a probe round.
				backends[0].restart(t)
			case drain2At:
				third := 3 - killIdx // the peer that was neither drained first nor killed
				t.Logf("soak: draining backend %s at run %d/%d", backends[third].addr, runsTotal, total)
				backends[third].srv.Drain()
				waitDraining(t, g, 1)
			}

			run := protocol.RandomRun(tgt.Protocol, c.steps, seed+int64(i))
			localErr := CheckRun(run, tgt)
			remoteErr := remote(run, tgt)
			runsTotal++

			var ve *scserve.VerdictError
			switch {
			case remoteErr == nil:
				delivered++
				if localErr != nil {
					t.Fatalf("%s run %d: WRONG VERDICT — grid accepted, local checker rejected: %v", c.name, i, localErr)
				}
			case errors.As(remoteErr, &ve):
				delivered++
				rejected++
				if ve.Verdict.Busy() || ve.Verdict.Code == scserve.VerdictProtocolError {
					t.Fatalf("%s run %d: non-checker verdict escaped the grid: %v", c.name, i, ve)
				}
				if localErr == nil {
					t.Fatalf("%s run %d: WRONG VERDICT — grid rejected at symbol %d, local checker accepted",
						c.name, i, ve.Verdict.Symbol)
				}
				if ve.Verdict.Tiered {
					tieredRejections++
					lt, ok := LocalTier(run, tgt)
					if !ok || !lt.Checked || int(lt.Tier) != ve.Verdict.Tier {
						t.Fatalf("%s run %d: WRONG TIER — grid adjudicated tier %s, local %s (ok=%v checked=%v)",
							c.name, i, spectrum.Tier(ve.Verdict.Tier), lt.Tier, ok, lt.Checked)
					}
				}
			default:
				transportErrs++
				t.Logf("%s run %d: transport error (tolerated): %v", c.name, i, remoteErr)
			}
		}
	}

	// Final rolling step: restart the last draining backend, then demand
	// the whole pool back, healthy and undrained.
	third := 3 - killIdx
	backends[third].restart(t)

	st := g.Stats()
	var resumes, failovers, ejections int64
	for _, bs := range st.Backends {
		resumes += bs.Resumes
		failovers += bs.Failovers
		ejections += bs.Ejections
		t.Logf("soak: %s", bs)
	}
	t.Logf("soak: %d runs, %d verdicts delivered (%d rejections, %d tiered), %d transport errors; resumes=%d failovers=%d ejections=%d drain-redirects=%d sheds=%d; %s",
		runsTotal, delivered, rejected, tieredRejections, transportErrs, resumes, failovers, ejections, st.DrainRedirects, st.Sheds, dialer.Stats())

	if delivered == 0 {
		t.Fatal("no verdict survived — the soak proved nothing")
	}
	if rejected == 0 {
		t.Fatal("no rejection was delivered — the soak never exercised a non-accept verdict")
	}
	if tieredRejections == 0 {
		t.Fatal("no delivered rejection carried a tier — tiering never survived the rolling restart")
	}
	if transportErrs > runsTotal/4 {
		t.Fatalf("%d/%d runs degraded to transport errors — the fabric barely functions", transportErrs, runsTotal)
	}
	if resumes == 0 {
		t.Fatal("no session ever resumed — the reset budget never forced a mid-stream reconnect")
	}
	if failovers == 0 {
		t.Fatal("no session ever failed over — the kill and restarts never struck one in flight")
	}
	if ejections == 0 {
		t.Fatal("no backend was ever ejected across a hard kill and two cold restarts")
	}
	if dialer.Stats().Resets.Load() == 0 {
		t.Fatal("fault injection never fired")
	}
	rejoin := time.Now().Add(10 * time.Second)
	for {
		st := g.Stats()
		if st.Healthy == len(backends) && st.Draining == 0 {
			break
		}
		if time.Now().After(rejoin) {
			t.Fatalf("pool never rejoined undrained: healthy=%d draining=%d, want %d and 0",
				st.Healthy, st.Draining, len(backends))
		}
		time.Sleep(50 * time.Millisecond)
	}
}
