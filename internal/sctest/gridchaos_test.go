package sctest

import (
	"context"
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"scverify/internal/faultnet"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
)

// gridBackend is one scserve backend the soak can hard-kill and restart
// on the same address.
type gridBackend struct {
	addr string
	srv  *scserve.Server
	done chan error
}

func gridServerConfig() scserve.Config {
	return scserve.Config{
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
		AckInterval:  64, // checkpoint densely: many checkpoints per reset budget
	}
}

func startGridBackend(t *testing.T) *gridBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gb := &gridBackend{addr: ln.Addr().String()}
	gb.serve(ln)
	t.Cleanup(gb.kill)
	return gb
}

func (gb *gridBackend) serve(ln net.Listener) {
	gb.srv = scserve.New(gridServerConfig())
	gb.done = make(chan error, 1)
	srv := gb.srv
	done := gb.done
	go func() { done <- srv.Serve(ln) }()
}

// kill severs the backend hard: listener closed, every in-flight
// connection cut mid-frame.
func (gb *gridBackend) kill() {
	if gb.srv == nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gb.srv.Shutdown(ctx)
	<-gb.done
	gb.srv = nil
}

func (gb *gridBackend) restart(t *testing.T) {
	t.Helper()
	gb.kill()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", gb.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart on %s: %v", gb.addr, err)
	}
	gb.serve(ln)
}

// TestGridChaosSoakRegistry is the multi-backend fault-tolerance
// acceptance test: the full protocol registry is adjudicated through a
// three-backend scgrid fabric behind a fault-injected link, and the
// campaign itself is attacked — one backend is hard-killed about a third
// of the way through (with its sessions' checkpoints dying with it) and
// restarted cold about two thirds through. The invariant is the same one
// the single-server soak proves, now end to end through dispatch,
// failover, and re-admission: faults may cost transport errors, but
// every delivered verdict equals the local checker's verdict on the same
// run. One wrong verdict fails the test.
//
// Set SCSERVE_SOAK to a duration (e.g. "2m") for a long randomized soak.
func TestGridChaosSoakRegistry(t *testing.T) {
	seed := int64(1)
	deadline := time.Time{}
	if d := os.Getenv("SCSERVE_SOAK"); d != "" {
		dur, err := time.ParseDuration(d)
		if err != nil {
			t.Fatalf("SCSERVE_SOAK=%q: %v", d, err)
		}
		seed = time.Now().UnixNano()
		deadline = time.Now().Add(dur)
		t.Logf("long soak: %v, seed %d", dur, seed)
	}

	backends := []*gridBackend{startGridBackend(t), startGridBackend(t), startGridBackend(t)}
	addrs := []string{backends[0].addr, backends[1].addr, backends[2].addr}

	// Every connection dies after ~20 KiB in either direction: long runs
	// survive on checkpoints (resume) while the killed backend's sessions
	// must fail over with a full replay.
	dialer := faultnet.NewDialer(faultnet.Config{
		Seed:            seed,
		WriteChunk:      1021,
		ReadChunk:       509,
		LatencyProb:     0.002,
		Latency:         2 * time.Millisecond,
		ResetAfterBytes: 20 << 10,
	})
	g, err := scgrid.New(addrs, scgrid.Config{
		Seed:          seed + 1,
		Timeout:       5 * time.Second,
		MaxAttempts:   10,
		BaseDelay:     time.Millisecond,
		MaxDelay:      50 * time.Millisecond,
		PollEvery:     4 << 10,
		QueueWait:     10 * time.Second,
		ProbeInterval: 100 * time.Millisecond, // re-admit the restarted backend quickly
		ReadmitDelay:  100 * time.Millisecond,
		Dial:          scgrid.Dialer(dialer.DialContext),
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// The whole soak runs tiered: on top of the never-wrong-verdict
	// invariant, any delivered tier must equal the local adjudication of
	// the same run — faults may cost a missing tier (resumed sessions are
	// not tiered), never a wrong one.
	remote := GridChecker(g, Tiered())

	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	cases := make([]chaosCase, 0, len(registry.Names()))
	total := 0
	for _, name := range registry.Names() {
		c := chaosCase{name: name, runs: 2, steps: 800}
		switch name {
		case "msi": // accept-heavy, long
			c = chaosCase{name: name, runs: 3, steps: 30000}
		case "mesi":
			c = chaosCase{name: name, runs: 2, steps: 12000}
		case "storebuffer": // reject-heavy, long
			c = chaosCase{name: name, runs: 4, steps: 30000}
		}
		cases = append(cases, c)
		total += c.runs
	}
	// The kill must land mid-session, so aim it at a long run: the first
	// run at or past a third of the campaign whose stream takes long
	// enough that a 50ms-delayed kill strikes while it is in flight.
	killAt, restartAt := total/3, 2*total/3
	idx := 0
	for _, c := range cases {
		for i := 0; i < c.runs; i++ {
			if idx >= total/3 && c.steps >= 10000 {
				killAt = idx
				goto found
			}
			idx++
		}
	}
found:
	if restartAt <= killAt+1 {
		restartAt = killAt + 2
	}
	if restartAt >= total {
		restartAt = total - 1
	}
	killIdx := -1 // which backend the mid-run kill struck
	killDone := make(chan struct{})

	var delivered, rejected, transportErrs, runsTotal, tieredRejections int
	round := 0
	for {
		for _, c := range cases {
			tgt, err := registry.Build(c.name, registry.Options{Params: params})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < c.runs; i++ {
				if round == 0 && runsTotal == restartAt {
					<-killDone
					t.Logf("soak: restarting backend %s cold at run %d/%d", backends[killIdx].addr, runsTotal, total)
					backends[killIdx].restart(t)
				}
				run := protocol.RandomRun(tgt.Protocol, c.steps, seed+int64(round*1000+i))
				localErr := CheckRun(run, tgt)
				if round == 0 && runsTotal == killAt {
					// Strike whichever backend is serving this run, 50ms
					// into its session: the session must fail over.
					go func(runNo int) {
						defer close(killDone)
						time.Sleep(50 * time.Millisecond)
						victim := 1
						for bi, bs := range g.Stats().Backends {
							if bs.InFlight > 0 {
								victim = bi
								break
							}
						}
						killIdx = victim
						t.Logf("soak: hard-killing backend %s mid-session at run %d/%d", backends[victim].addr, runNo, total)
						backends[victim].kill()
					}(runsTotal)
				}
				remoteErr := remote(run, tgt)
				runsTotal++

				var ve *scserve.VerdictError
				switch {
				case remoteErr == nil:
					delivered++
					if localErr != nil {
						t.Fatalf("%s run %d: WRONG VERDICT — grid accepted, local checker rejected: %v",
							c.name, i, localErr)
					}
				case errors.As(remoteErr, &ve):
					delivered++
					rejected++
					if ve.Verdict.Busy() || ve.Verdict.Code == scserve.VerdictProtocolError {
						t.Fatalf("%s run %d: non-checker verdict escaped the grid: %v", c.name, i, ve)
					}
					if localErr == nil {
						t.Fatalf("%s run %d: WRONG VERDICT — grid rejected at symbol %d, local checker accepted",
							c.name, i, ve.Verdict.Symbol)
					}
					if ve.Verdict.Tiered {
						tieredRejections++
						lt, ok := LocalTier(run, tgt)
						if !ok || !lt.Checked || int(lt.Tier) != ve.Verdict.Tier {
							t.Fatalf("%s run %d: WRONG TIER — grid adjudicated tier %s, local %s (ok=%v checked=%v)",
								c.name, i, spectrum.Tier(ve.Verdict.Tier), lt.Tier, ok, lt.Checked)
						}
					}
				default:
					transportErrs++
					t.Logf("%s run %d: transport error (tolerated): %v", c.name, i, remoteErr)
				}
			}
		}
		round++
		if deadline.IsZero() || time.Now().After(deadline) {
			break
		}
	}

	st := g.Stats()
	var resumes, failovers, ejections, sessions int64
	for _, bs := range st.Backends {
		resumes += bs.Resumes
		failovers += bs.Failovers
		ejections += bs.Ejections
		sessions += bs.Sessions
		t.Logf("soak: %s", bs)
	}
	t.Logf("soak: %d runs, %d verdicts delivered (%d rejections, %d tiered), %d transport errors; grid: sessions=%d resumes=%d failovers=%d ejections=%d sheds=%d; %s",
		runsTotal, delivered, rejected, tieredRejections, transportErrs, sessions, resumes, failovers, ejections, st.Sheds, dialer.Stats())

	if delivered == 0 {
		t.Fatal("no verdict survived — the soak proved nothing")
	}
	if rejected == 0 {
		t.Fatal("no rejection was delivered — the soak never exercised a non-accept verdict")
	}
	if tieredRejections == 0 {
		t.Fatal("no delivered rejection carried a tier — tiering never survived the faults")
	}
	if transportErrs > runsTotal/4 {
		t.Fatalf("%d/%d runs degraded to transport errors — the fabric barely functions", transportErrs, runsTotal)
	}
	if resumes == 0 {
		t.Fatal("no session ever resumed — the reset budget never forced a mid-stream reconnect")
	}
	if ejections == 0 {
		t.Fatal("the killed backend was never ejected")
	}
	if failovers == 0 {
		t.Fatal("no session ever failed over — the kill never struck one in flight")
	}
	if dialer.Stats().Resets.Load() == 0 {
		t.Fatal("fault injection never fired")
	}
	// The restarted backend must rejoin: wait out the probe cadence, then
	// demand the full pool back.
	rejoin := time.Now().Add(10 * time.Second)
	for g.Healthy() != len(backends) {
		if time.Now().After(rejoin) {
			t.Fatalf("healthy = %d after restart, want %d — re-admission failed", g.Healthy(), len(backends))
		}
		time.Sleep(50 * time.Millisecond)
	}
}
