package sctest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/history"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
	"scverify/internal/spectrum"
)

// HistoryChecker adjudicates one lowered history: nil on acceptance, a
// *checker.RejectError or *scserve.VerdictError on rejection, anything
// else on transport or environmental failure. Implementations must be
// safe for concurrent campaign workers.
type HistoryChecker func(l *history.Lowering) error

// HistoryRemoteChecker adjudicates lowerings against an scserve service:
// the lowering still happens locally, but the descriptor stream is
// shipped over a retrying session and the service's verdict decides the
// history. Transport failures are prefixed "sctest: remote" like
// RemoteChecker's.
func HistoryRemoteChecker(addr string, timeout time.Duration, opts ...CheckOpt) HistoryChecker {
	return HistoryRemoteCheckerRetry(addr, scserve.RetryConfig{Timeout: timeout}, opts...)
}

// HistoryRemoteCheckerRetry is HistoryRemoteChecker with the full retry
// policy exposed. Each call opens its own RetryClient, so the checker is
// safe for concurrent campaign workers.
func HistoryRemoteCheckerRetry(addr string, cfg scserve.RetryConfig, opts ...CheckOpt) HistoryChecker {
	return func(l *history.Lowering) error {
		rc := scserve.NewRetryClient(addr, cfg)
		defer rc.Close()
		hdr := historyHeader(l)
		for _, o := range opts {
			o(&hdr)
		}
		sess, err := rc.Session(hdr)
		if err != nil {
			return fmt.Errorf("sctest: remote: %w", err)
		}
		if err := sendStream(sess.SendBytes, l); err != nil {
			return fmt.Errorf("sctest: remote: %w", err)
		}
		v, err := sess.Finish()
		if err != nil {
			return fmt.Errorf("sctest: remote: %w", err)
		}
		return v.Err()
	}
}

// HistoryGridChecker adjudicates lowerings through a scgrid fabric: each
// history becomes one tokened grid session, placed on a healthy backend
// by the grid's dispatcher, with the grid's resume/failover semantics.
func HistoryGridChecker(g *scgrid.Grid, opts ...CheckOpt) HistoryChecker {
	return func(l *history.Lowering) error {
		hdr := historyHeader(l)
		hdr.Token = scserve.NewToken()
		for _, o := range opts {
			o(&hdr)
		}
		sess, err := g.Session(hdr)
		if err != nil {
			return fmt.Errorf("sctest: grid: %w", err)
		}
		defer sess.Close()
		if err := sendStream(sess.SendBytes, l); err != nil {
			return fmt.Errorf("sctest: grid: %w", err)
		}
		v, err := sess.Finish()
		if err != nil {
			return fmt.Errorf("sctest: grid: %w", err)
		}
		return v.Err()
	}
}

func historyHeader(l *history.Lowering) scserve.Header {
	k := l.K
	if k < 1 {
		// An empty lowering has bandwidth 0; the wire protocol requires
		// k >= 1 and any k accepts an empty stream.
		k = 1
	}
	return scserve.Header{K: k, Params: l.Params}
}

// sendStream ships the lowering's descriptor stream in frame-sized
// chunks, mirroring the run checkers' batching.
func sendStream(send func([]byte) error, l *history.Lowering) error {
	var buf []byte
	for _, sym := range l.Stream {
		buf = descriptor.AppendBinary(buf, sym)
		if len(buf) >= 16<<10 {
			if err := send(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return send(buf)
	}
	return nil
}

// RejectConstraint extracts the checker constraint code from a rejection,
// whether it was adjudicated in-process (*checker.RejectError) or by a
// service (*scserve.VerdictError carrying the witness extension). ok is
// false for nil errors, transport errors, and service rejections from
// pre-extension peers that did not classify the constraint.
func RejectConstraint(err error) (checker.Constraint, bool) {
	var re *checker.RejectError
	if errors.As(err, &re) {
		return re.Constraint, true
	}
	var ve *scserve.VerdictError
	if errors.As(err, &ve) && ve.Verdict.Code == scserve.VerdictReject && ve.Verdict.Constraint > 0 {
		return checker.Constraint(ve.Verdict.Constraint), true
	}
	return 0, false
}

// HistoryConfig tunes a history campaign: for each seed, one anomaly-free
// history plus one history per anomaly kind is generated, lowered, and
// adjudicated. Clean histories must be accepted; anomalous histories must
// be rejected with the anomaly's expected constraint code.
type HistoryConfig struct {
	Seeds int   // seeds to sweep; each seed yields 1+len(Anomalies) histories
	Seed  int64 // base seed; sweep uses Seed, Seed+1, ...
	// Gen shapes the base workload (its Seed and Anomalies fields are
	// overridden per item).
	Gen history.GenConfig
	// Anomalies selects the kinds to inject; nil means all of them.
	Anomalies []history.AnomalyKind
	// Workers fans items across a pool; 0 or 1 is sequential. Results are
	// deterministic regardless of worker count.
	Workers int
	// Check adjudicates each lowering; nil means the in-process checker.
	Check HistoryChecker
	// Tier adjudicates every anomalous rejection's witness core against
	// the weaker-model ladder (wire tier when the checker is a tiered
	// service, local TierWitness otherwise, cross-checked when both
	// resolve) and verifies it matches the injected kind's declared tier.
	Tier bool
}

// HistoryFailure pins one unexpected campaign outcome.
type HistoryFailure struct {
	Seed    int64
	Anomaly *history.Anomaly // nil for a clean-history failure
	Err     error            // the verdict (or transport error) received
	// Lowering is the offending history's lowering, for witness rendering.
	Lowering *history.Lowering
}

// String renders the failure one-line.
func (f *HistoryFailure) String() string {
	if f.Anomaly == nil {
		return fmt.Sprintf("seed %d: clean history not accepted: %v", f.Seed, f.Err)
	}
	return fmt.Sprintf("seed %d: %s: got %v", f.Seed, f.Anomaly, f.Err)
}

// HistoryResult aggregates a history campaign.
type HistoryResult struct {
	Histories     int // total adjudicated
	CleanAccepted int
	CleanRejected int // clean histories rejected: generator or checker bug
	AnomalyCaught int // anomalous histories rejected with the expected code
	AnomalyMissed int // anomalous histories accepted: a missed violation
	WrongCode     int // rejected, but with an unexpected constraint code
	Errors        int // generation, lowering, or transport failures

	// Tiers histograms caught anomalies by adjudicated tier (indexed by
	// spectrum.Tier); TierUnchecked counts rejections whose core no side
	// could adjudicate (legal), and WrongTier counts tiers that differ
	// from the anomaly kind's declared tier or between service and local
	// adjudication (never legal).
	Tiers         [spectrum.NumTiers]int
	TierUnchecked int
	WrongTier     int

	// FirstUnexpected retains the first non-conforming outcome in item
	// order, for rendering.
	FirstUnexpected *HistoryFailure
}

// Passed reports whether every history behaved as scripted.
func (r HistoryResult) Passed() bool {
	return r.CleanRejected == 0 && r.AnomalyMissed == 0 && r.WrongCode == 0 &&
		r.WrongTier == 0 && r.Errors == 0
}

// String renders a one-line summary.
func (r HistoryResult) String() string {
	s := fmt.Sprintf("%d histories: %d clean accepted, %d anomalies caught",
		r.Histories, r.CleanAccepted, r.AnomalyCaught)
	if r.CleanRejected > 0 {
		s += fmt.Sprintf(", %d clean REJECTED", r.CleanRejected)
	}
	if r.AnomalyMissed > 0 {
		s += fmt.Sprintf(", %d anomalies MISSED", r.AnomalyMissed)
	}
	if r.WrongCode > 0 {
		s += fmt.Sprintf(", %d wrong constraint codes", r.WrongCode)
	}
	if r.WrongTier > 0 {
		s += fmt.Sprintf(", %d wrong tiers", r.WrongTier)
	}
	if r.Errors > 0 {
		s += fmt.Sprintf(", %d errors", r.Errors)
	}
	if tl := tierLine(r.Tiers, r.TierUnchecked, 0); tl != "" {
		s += "; " + tl
	}
	return s
}

// historyItem is one campaign work unit: a seed plus an optional anomaly.
type historyItem struct {
	seed    int64
	anomaly int // index into kinds, or -1 for the clean history
}

// historyVerdict is one item's outcome.
type historyVerdict struct {
	item     historyItem
	anomaly  *history.Anomaly
	lowering *history.Lowering
	err      error // adjudication outcome (nil = accepted)
	genErr   error // generation/lowering failure (counted as an error)
	tv       tierVerdict
}

// HistoryCampaign sweeps generated histories through the adjudicator:
// per seed, one clean history and one per anomaly kind.
func HistoryCampaign(cfg HistoryConfig) HistoryResult {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	kinds := cfg.Anomalies
	if kinds == nil {
		kinds = history.AllAnomalies()
	}
	check := cfg.Check
	if check == nil {
		check = func(l *history.Lowering) error { return l.Check() }
	}

	var items []historyItem
	for s := 0; s < cfg.Seeds; s++ {
		items = append(items, historyItem{seed: cfg.Seed + int64(s), anomaly: -1})
		for a := range kinds {
			items = append(items, historyItem{seed: cfg.Seed + int64(s), anomaly: a})
		}
	}

	classify := func(it historyItem) historyVerdict {
		v := historyVerdict{item: it}
		gc := cfg.Gen
		gc.Seed = it.seed
		gc.Anomalies = nil
		if it.anomaly >= 0 {
			gc.Anomalies = []history.AnomalyKind{kinds[it.anomaly]}
		}
		g, err := history.Generate(gc)
		if err != nil {
			v.genErr = err
			return v
		}
		if it.anomaly >= 0 {
			v.anomaly = &g.Anomalies[0]
		}
		l, err := history.Lower(g.History)
		if err != nil {
			v.genErr = err
			return v
		}
		v.lowering = l
		v.err = check(l)
		if cfg.Tier && v.anomaly != nil && v.err != nil {
			v.tv = adjudicateTier(v.err, func() (spectrum.Result, bool) {
				return HistoryTier(l)
			})
		}
		return v
	}

	verdicts := make([]historyVerdict, len(items))
	if cfg.Workers > 1 {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					verdicts[i] = classify(items[i])
				}
			}()
		}
		for i := range items {
			work <- i
		}
		close(work)
		wg.Wait()
	} else {
		for i := range items {
			verdicts[i] = classify(items[i])
		}
	}

	// Ordered aggregation keeps FirstUnexpected deterministic.
	var res HistoryResult
	fail := func(v historyVerdict, err error) {
		if res.FirstUnexpected == nil {
			res.FirstUnexpected = &HistoryFailure{
				Seed: v.item.seed, Anomaly: v.anomaly, Err: err, Lowering: v.lowering,
			}
		}
	}
	for _, v := range verdicts {
		res.Histories++
		if v.genErr != nil {
			res.Errors++
			fail(v, v.genErr)
			continue
		}
		switch {
		case v.anomaly == nil && v.err == nil:
			res.CleanAccepted++
		case v.anomaly == nil:
			if _, ok := RejectConstraint(v.err); ok {
				res.CleanRejected++
			} else {
				res.Errors++ // transport failure, not a verdict
			}
			fail(v, v.err)
		case v.err == nil:
			res.AnomalyMissed++
			fail(v, fmt.Errorf("accepted despite injected %s", v.anomaly.Kind))
		default:
			got, ok := RejectConstraint(v.err)
			switch {
			case !ok:
				res.Errors++
				fail(v, v.err)
			case got != v.anomaly.Expect:
				res.WrongCode++
				fail(v, v.err)
			default:
				res.AnomalyCaught++
				if cfg.Tier {
					switch {
					case v.tv.wrong:
						res.WrongTier++
						fail(v, fmt.Errorf("service and local tier adjudication disagree: %v", v.err))
					case v.tv.tierOK && v.tv.tier != v.anomaly.Kind.Tier():
						res.WrongTier++
						fail(v, fmt.Errorf("%s adjudicated to tier %s, want %s",
							v.anomaly.Kind, v.tv.tier, v.anomaly.Kind.Tier()))
					case v.tv.tierOK && int(v.tv.tier) < len(res.Tiers):
						res.Tiers[v.tv.tier]++
					default:
						res.TierUnchecked++
					}
				}
			}
		}
	}
	return res
}
