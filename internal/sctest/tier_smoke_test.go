package sctest

import (
	"testing"
	"time"

	"scverify/internal/history"
	"scverify/internal/registry"
	"scverify/internal/scgrid"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
)

// TestTierSmokeGrid is the tier-1 tiered-verdict acceptance test: a
// tiered run campaign and a tiered history campaign, both adjudicated
// through a three-backend scgrid fabric. Every delivered rejection's wire
// tier is cross-checked against the identical local adjudication (a
// single disagreement fails the campaign via WrongTiers), the
// reject-heavy storebuffer target must produce TSO-tier rejections (its
// violations are store-buffering by construction), and every injected
// history anomaly must land on its kind's declared tier.
func TestTierSmokeGrid(t *testing.T) {
	backends := []*gridBackend{startGridBackend(t), startGridBackend(t), startGridBackend(t)}
	g, err := scgrid.New(
		[]string{backends[0].addr, backends[1].addr, backends[2].addr},
		scgrid.Config{
			Seed:        7,
			Timeout:     5 * time.Second,
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	tgt, err := registry.Build("storebuffer", registry.Options{
		Params: trace.Params{Procs: 2, Blocks: 2, Values: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Campaign(tgt, Config{
		Runs:    24,
		Steps:   400,
		Seed:    11,
		Workers: 4,
		Check:   GridChecker(g, Tiered()),
		Tier:    true,
	})
	t.Logf("runs: %s", res)
	if res.Rejected == 0 {
		t.Fatal("storebuffer campaign produced no rejection — the smoke proved nothing")
	}
	if res.WrongTiers != 0 {
		t.Fatalf("%d wrong tiers: grid and local adjudication disagree", res.WrongTiers)
	}
	tiered := 0
	for _, n := range res.Tiers {
		tiered += n
	}
	if tiered == 0 {
		t.Fatal("no rejection carried a tier verdict")
	}
	if res.Tiers[spectrum.TierTSO] == 0 {
		t.Errorf("storebuffer rejections never adjudicated to TSO: %s", res)
	}

	// The same fabric adjudicating a tiered history campaign: every
	// anomaly caught with its expected constraint AND its declared tier
	// (WrongTier folds into Passed).
	hres := HistoryCampaign(HistoryConfig{
		Seeds:   4,
		Seed:    2,
		Gen:     history.GenConfig{Processes: 3, Keys: 2, Ops: 20},
		Workers: 4,
		Check:   HistoryGridChecker(g, Tiered()),
		Tier:    true,
	})
	t.Logf("histories: %s", hres)
	if !hres.Passed() {
		t.Fatalf("tiered history campaign failed: %s\nfirst unexpected: %s",
			hres, renderHistoryFailure(hres.FirstUnexpected))
	}
	htiered := 0
	for _, n := range hres.Tiers {
		htiered += n
	}
	if htiered == 0 {
		t.Fatal("no history rejection carried a tier verdict")
	}
	if htiered+hres.TierUnchecked != hres.AnomalyCaught {
		t.Fatalf("tier accounting leaks: %d tiered + %d unadjudicated != %d caught",
			htiered, hres.TierUnchecked, hres.AnomalyCaught)
	}

	// The backends actually computed the tiers the wire carried.
	computed := int64(0)
	for _, b := range backends {
		computed += b.srv.Stats().TiersComputed
	}
	if computed == 0 {
		t.Fatal("no backend reports computing a tier")
	}
}
