package sctest

import (
	"fmt"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/scserve"
)

// RemoteChecker returns a Config.Check function that adjudicates runs
// against an scserve service at addr instead of an in-process checker:
// the observer still runs locally alongside the recorded run, but its
// descriptor stream is shipped over a session and the service's verdict
// decides the run. It is RemoteCheckerRetry with a per-operation timeout
// as the only tuning; sessions transparently survive connection loss via
// the fault-tolerant RetryClient.
func RemoteChecker(addr string, timeout time.Duration, opts ...CheckOpt) func(*protocol.Run, registry.Target) error {
	return RemoteCheckerRetry(addr, scserve.RetryConfig{Timeout: timeout}, opts...)
}

// RemoteCheckerRetry is RemoteChecker with the full retry policy exposed:
// cfg tunes backoff, attempt budget, replay buffering, and (via cfg.Dial)
// the transport itself — which is how the chaos tests route sessions
// through a fault-injected link. Each call opens its own RetryClient, so
// the function is safe for concurrent campaign workers.
//
// Rejections carry the service's positioned verdict (as a
// *scserve.VerdictError); transport failures that exhausted the retry
// budget are returned as errors prefixed "sctest: remote" so they are not
// mistaken for genuine SC violations.
func RemoteCheckerRetry(addr string, cfg scserve.RetryConfig, opts ...CheckOpt) func(*protocol.Run, registry.Target) error {
	return func(run *protocol.Run, tgt registry.Target) error {
		// Size the observer's ID pool the same way CheckRun does: the
		// session header must announce the bandwidth bound k up front.
		sizing := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, nil)
		rc := scserve.NewRetryClient(addr, cfg)
		defer rc.Close()
		hdr := scserve.Header{K: sizing.K(), Params: run.Protocol.Params()}
		for _, o := range opts {
			o(&hdr)
		}
		sess, err := rc.Session(hdr)
		if err != nil {
			return fmt.Errorf("sctest: remote: %w", err)
		}

		// Batch the observer's symbols into frame-sized chunks.
		var buf []byte
		emit := func(sym descriptor.Symbol) error {
			buf = descriptor.AppendBinary(buf, sym)
			if len(buf) >= 16<<10 {
				err := sess.SendBytes(buf)
				buf = buf[:0]
				return err
			}
			return nil
		}
		obs := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, emit)
		for _, step := range run.Steps {
			if err := obs.Step(step.Transition); err != nil {
				return err
			}
		}
		if err := obs.Finish(); err != nil {
			return err
		}
		if len(buf) > 0 {
			if err := sess.SendBytes(buf); err != nil {
				return fmt.Errorf("sctest: remote: %w", err)
			}
		}
		v, err := sess.Finish()
		if err != nil {
			return fmt.Errorf("sctest: remote: %w", err)
		}
		return v.Err()
	}
}
