package sctest

import (
	"fmt"

	"scverify/internal/descriptor"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
)

// GridChecker returns a Config.Check function that adjudicates runs
// through a scgrid fabric instead of a single scserve endpoint: each
// run's descriptor stream becomes one tokened grid session, placed on a
// healthy backend by the grid's dispatcher. Campaign workers share the
// Grid, so a campaign fans out across every backend in the pool — the
// grid's per-backend counters afterwards show the sharding.
//
// Fault semantics are the grid's: a backend blip resumes the session
// from its checkpoint, a backend death fails it over to a live backend
// with a full replay, and saturation sheds it with the busy verdict.
// Like RemoteChecker, rejections surface as *scserve.VerdictError and
// everything that is not a checker verdict is an error prefixed
// "sctest: grid".
func GridChecker(g *scgrid.Grid, opts ...CheckOpt) func(*protocol.Run, registry.Target) error {
	return func(run *protocol.Run, tgt registry.Target) error {
		// Size the observer's ID pool the same way CheckRun does: the
		// session header must announce the bandwidth bound k up front.
		sizing := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, nil)
		hdr := scserve.Header{
			K:      sizing.K(),
			Params: run.Protocol.Params(),
			Token:  scserve.NewToken(),
		}
		for _, o := range opts {
			o(&hdr)
		}
		sess, err := g.Session(hdr)
		if err != nil {
			return fmt.Errorf("sctest: grid: %w", err)
		}
		defer sess.Close()

		// Batch the observer's symbols into frame-sized chunks.
		var buf []byte
		emit := func(sym descriptor.Symbol) error {
			buf = descriptor.AppendBinary(buf, sym)
			if len(buf) >= 16<<10 {
				err := sess.SendBytes(buf)
				buf = buf[:0]
				return err
			}
			return nil
		}
		obs := observer.New(run.Protocol, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize}, emit)
		for _, step := range run.Steps {
			if err := obs.Step(step.Transition); err != nil {
				return err
			}
		}
		if err := obs.Finish(); err != nil {
			return err
		}
		if len(buf) > 0 {
			if err := sess.SendBytes(buf); err != nil {
				return fmt.Errorf("sctest: grid: %w", err)
			}
		}
		v, err := sess.Finish()
		if err != nil {
			return fmt.Errorf("sctest: grid: %w", err)
		}
		return v.Err()
	}
}
