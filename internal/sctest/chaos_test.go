package sctest

import (
	"context"
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"scverify/internal/faultnet"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/scserve"
	"scverify/internal/trace"
)

// chaosCase is one protocol's slice of the soak.
type chaosCase struct {
	name  string
	runs  int
	steps int
}

// TestChaosSoakRegistry is the fault-tolerance acceptance test: the full
// protocol registry is adjudicated through an scserve service behind a
// fault-injected link that fragments writes, delays reads, and cuts every
// connection after a fixed byte budget — forcing mid-stream resumes. The
// invariant under test is degrade-to-error: a fault may surface as a
// transport error (counted, tolerated) but every verdict that IS
// delivered must equal the local checker's verdict on the same run. One
// wrong verdict fails the test.
//
// The default run is deterministic and takes a few seconds. Set
// SCSERVE_SOAK to a duration (e.g. "2m") for a long randomized soak.
func TestChaosSoakRegistry(t *testing.T) {
	seed := int64(1)
	deadline := time.Time{}
	if d := os.Getenv("SCSERVE_SOAK"); d != "" {
		dur, err := time.ParseDuration(d)
		if err != nil {
			t.Fatalf("SCSERVE_SOAK=%q: %v", d, err)
		}
		seed = time.Now().UnixNano()
		deadline = time.Now().Add(dur)
		t.Logf("long soak: %v, seed %d", dur, seed)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := scserve.New(scserve.Config{
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
		AckInterval:  64, // checkpoint densely: many checkpoints per reset budget
	})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	// Every connection dies after ~20 KiB in either direction; anything
	// longer than that must survive on checkpoints alone. Fragmentation
	// and a little latency keep frame boundaries honest.
	dialer := faultnet.NewDialer(faultnet.Config{
		Seed:            seed,
		WriteChunk:      1021,
		ReadChunk:       509,
		LatencyProb:     0.002,
		Latency:         2 * time.Millisecond,
		ResetAfterBytes: 20 << 10,
	})
	remote := RemoteCheckerRetry(ln.Addr().String(), scserve.RetryConfig{
		Timeout:     5 * time.Second,
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Seed:        seed + 1,
		PollEvery:   4 << 10,
		Dial:        dialer.Dial,
	})

	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	cases := make([]chaosCase, 0, len(registry.Names()))
	for _, name := range registry.Names() {
		// Long streams (well past several reset budgets) for two
		// representative protocols; shorter ones for the rest of the
		// registry so the whole soak stays inside a few seconds.
		c := chaosCase{name: name, runs: 2, steps: 800}
		switch name {
		case "msi": // accept-heavy, long
			c = chaosCase{name: name, runs: 4, steps: 40000}
		case "mesi":
			c = chaosCase{name: name, runs: 2, steps: 15000}
		case "storebuffer": // reject-heavy, long
			c = chaosCase{name: name, runs: 5, steps: 40000}
		}
		cases = append(cases, c)
	}

	var delivered, rejected, transportErrs, runsTotal int
	round := 0
	for {
		for _, c := range cases {
			tgt, err := registry.Build(c.name, registry.Options{Params: params})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < c.runs; i++ {
				run := protocol.RandomRun(tgt.Protocol, c.steps, seed+int64(round*1000+i))
				localErr := CheckRun(run, tgt)
				remoteErr := remote(run, tgt)
				runsTotal++

				var ve *scserve.VerdictError
				switch {
				case remoteErr == nil:
					delivered++
					if localErr != nil {
						t.Fatalf("%s run %d: WRONG VERDICT — service accepted, local checker rejected: %v",
							c.name, i, localErr)
					}
				case errors.As(remoteErr, &ve):
					delivered++
					rejected++
					if ve.Verdict.Busy() || ve.Verdict.Code == scserve.VerdictProtocolError {
						t.Fatalf("%s run %d: non-checker verdict escaped the retry layer: %v", c.name, i, ve)
					}
					if localErr == nil {
						t.Fatalf("%s run %d: WRONG VERDICT — service rejected at symbol %d, local checker accepted",
							c.name, i, ve.Verdict.Symbol)
					}
				default:
					// Transport failure after the retry budget: allowed, the
					// fault degraded to an error rather than a wrong answer.
					transportErrs++
					t.Logf("%s run %d: transport error (tolerated): %v", c.name, i, remoteErr)
				}
			}
		}
		round++
		if deadline.IsZero() || time.Now().After(deadline) {
			break
		}
	}

	st := srv.Stats()
	t.Logf("soak: %d runs, %d verdicts delivered (%d rejections), %d transport errors; server: resumes=%d replays=%d checkpoints=%d resets=%d %s",
		runsTotal, delivered, rejected, transportErrs, st.Resumes, st.ResumeReplays, st.Checkpoints,
		dialer.Stats().Resets.Load(), dialer.Stats())

	if delivered == 0 {
		t.Fatal("no verdict survived the fault link — the soak proved nothing")
	}
	if rejected == 0 {
		t.Fatal("no rejection was delivered — the soak never exercised a non-accept verdict")
	}
	if st.Resumes == 0 {
		t.Fatal("no session ever resumed — the reset budget never forced a mid-stream reconnect")
	}
	if dialer.Stats().Resets.Load() == 0 {
		t.Fatal("fault injection never fired")
	}
}
