package sctest

import (
	"errors"
	"fmt"
	"strings"

	"scverify/internal/history"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/scserve"
	"scverify/internal/spectrum"
	"scverify/internal/witness"
)

// CheckOpt customizes the session header a remote or grid checker opens,
// letting campaigns opt into wire extensions without widening every
// checker constructor. Options are applied after the header's required
// fields are filled in.
type CheckOpt func(*scserve.Header)

// Tiered asks the service to adjudicate each rejection's witness core
// against the weaker-model ladder and carry the resulting tier on the
// verdict. Services that cannot tier a particular session (resumed
// sessions, value-free streams, oversized cores) simply omit the tier —
// a missing tier is legal, a wrong one never is.
func Tiered() CheckOpt {
	return func(h *scserve.Header) { h.Tiered = true }
}

// WithTenant stamps the per-tenant identity onto every session the
// checker opens, so a shared backend can account, rate-limit, and
// fair-share this campaign's sessions against other tenants'. Legacy
// servers reject the flag cleanly; an empty id is a no-op (anonymous).
func WithTenant(id string) CheckOpt {
	return func(h *scserve.Header) { h.Tenant = id }
}

// TierOf extracts the service-computed consistency tier from a rejection,
// mirroring RejectConstraint: ok is false for nil errors, transport
// errors, acceptances, and verdicts from sessions (or peers) that did not
// tier.
func TierOf(err error) (spectrum.Tier, bool) {
	var ve *scserve.VerdictError
	if errors.As(err, &ve) && ve.Verdict.Code == scserve.VerdictReject && ve.Verdict.Tiered {
		return spectrum.Tier(ve.Verdict.Tier), true
	}
	return 0, false
}

// LocalTier adjudicates a run's rejection tier in-process, using the
// identical recipe a tiered scserve backend runs (witness.TierWitness over
// the run's descriptor stream): the returned result is what any
// conforming service must report for this run. ok is false when the run
// is accepted or cannot be recorded.
func LocalTier(run *protocol.Run, tgt registry.Target) (spectrum.Result, bool) {
	stream, k, err := witness.Record(run, tgt)
	if err != nil {
		return spectrum.Result{}, false
	}
	w := witness.TierWitness(stream, k, run.Protocol.Params())
	if w == nil {
		return spectrum.Result{}, false
	}
	return w.Adjudicate(0), true
}

// HistoryTier adjudicates a rejected lowering's tier in-process, again by
// the canonical TierWitness recipe. ok is false when the lowering's
// stream is accepted.
func HistoryTier(l *history.Lowering) (spectrum.Result, bool) {
	w := witness.TierWitness(l.Stream, l.K, l.Params)
	if w == nil {
		return spectrum.Result{}, false
	}
	return w.Adjudicate(0), true
}

// tierLine renders a per-tier rejection histogram for campaign summaries,
// strongest tier first; empty when nothing was tiered.
func tierLine(tiers [spectrum.NumTiers]int, unchecked, wrong int) string {
	var parts []string
	for t := spectrum.TierSC; ; t-- {
		if n := tiers[t]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", t, n))
		}
		if t == spectrum.TierNone {
			break
		}
	}
	if len(parts) == 0 && unchecked == 0 && wrong == 0 {
		return ""
	}
	s := "tiers: " + strings.Join(parts, ", ")
	if len(parts) == 0 {
		s = "tiers: —"
	}
	if unchecked > 0 {
		s += fmt.Sprintf(" (%d unadjudicated)", unchecked)
	}
	if wrong > 0 {
		s += fmt.Sprintf(", %d WRONG TIERS", wrong)
	}
	return s
}

// tierVerdict is the per-item tier bookkeeping shared by the run and
// history campaign aggregators.
type tierVerdict struct {
	tier    spectrum.Tier
	tierOK  bool // a tier was adjudicated (wire or local)
	wrong   bool // wire and local tiers both resolved and disagree
	skipped bool // rejection had no adjudicable tier
}

// adjudicateTier resolves one rejection's tier: the wire tier when the
// verdict carries one, the local adjudication otherwise, cross-checking
// the two whenever both resolve. local is called lazily so accepted items
// and untier-ed campaigns pay nothing.
func adjudicateTier(err error, local func() (spectrum.Result, bool)) tierVerdict {
	var tv tierVerdict
	wt, wok := TierOf(err)
	lr, lok := local()
	lok = lok && lr.Checked && !lr.Bounded
	switch {
	case wok && lok && wt != lr.Tier:
		tv.wrong = true
		tv.tier, tv.tierOK = wt, true
	case wok:
		tv.tier, tv.tierOK = wt, true
	case lok:
		tv.tier, tv.tierOK = lr.Tier, true
	default:
		tv.skipped = true
	}
	return tv
}
