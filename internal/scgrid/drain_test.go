package scgrid

import (
	"net"
	"testing"
	"time"

	"scverify/internal/scserve"
)

// These tests pin the grid half of the live-operations contract: a
// draining backend's verdict is a redirect, not a failure — sessions
// move to an admitting backend without spending a retry attempt or a
// backoff sleep — while sessions with a live checkpoint stay put, since
// a draining backend keeps serving resumes until its in-flight work is
// done.

// server returns the backend's current scserve server handle, so tests
// can flip drain mode directly.
func (tb *testBackend) server() *scserve.Server {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.srv
}

// tokenPinnedTo draws resume tokens until one rendezvous-hashes to the
// given backend. With a healthy 2-backend pool each draw hits either
// side with probability ~1/2, so 1000 draws cannot miss.
func tokenPinnedTo(t *testing.T, g *Grid, tb *testBackend) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		tok := scserve.NewToken()
		if p := g.pool.pinned(tok); p != nil && p.addr == tb.addr {
			return tok
		}
	}
	t.Fatal("no token pinned to the target backend after 1000 draws")
	return ""
}

// TestGridDrainRedirect: a session whose pinned backend turns out to be
// draining must complete on another backend at zero retry cost. With
// MaxAttempts=1 any consumed attempt fails the session, and with a 30s
// BaseDelay any backoff sleep blows the elapsed budget — so passing
// proves the redirect is genuinely free.
func TestGridDrainRedirect(t *testing.T) {
	a := startBackend(t, scserve.Config{})
	b := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{
		MaxAttempts: 1,
		BaseDelay:   30 * time.Second,
		MaxDelay:    30 * time.Second,
	}, a, b)

	tok := tokenPinnedTo(t, g, a)
	a.server().Drain() // the pool has not probed: placement still trusts a

	h := scserve.SyntheticHeader()
	h.Token = tok
	s, err := g.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	if err := s.Send(scserve.SyntheticAccept(64)...); err != nil {
		t.Fatal(err)
	}
	v, err := s.Finish()
	if err != nil {
		t.Fatalf("drain redirect consumed the only attempt: %v", err)
	}
	if v.Code != scserve.VerdictAccept {
		t.Fatalf("verdict %s, want accept", v)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("redirect took %s — a backoff sleep was charged", elapsed)
	}

	st := g.Stats()
	if st.DrainRedirects < 1 {
		t.Errorf("drain redirects = %d, want >= 1", st.DrainRedirects)
	}
	if st.Draining != 1 {
		t.Errorf("draining backends = %d, want 1 (the verdict should have marked it)", st.Draining)
	}
	for _, bs := range st.Backends {
		switch bs.Addr {
		case a.addr:
			if !bs.Draining {
				t.Error("the draining backend was not marked from its verdict")
			}
			if bs.Accepts != 0 {
				t.Errorf("draining backend delivered %d accepts, want 0", bs.Accepts)
			}
		case b.addr:
			if bs.Accepts != 1 {
				t.Errorf("admitting backend delivered %d accepts, want 1", bs.Accepts)
			}
		}
	}
}

// TestGridProbeDrainDetection: the health probe doubles as the drain
// detector. A draining backend stays healthy (it is answering) but
// leaves the placement set — pinned tokens and p2c draws both avoid it —
// and rejoins the moment a probe sees it admitting again.
func TestGridProbeDrainDetection(t *testing.T) {
	a := startBackend(t, scserve.Config{})
	b := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{}, a, b)

	tok := tokenPinnedTo(t, g, a)
	a.server().Drain()
	g.ProbeNow()

	st := g.Stats()
	if st.Healthy != 2 {
		t.Fatalf("healthy = %d, want 2 — draining is not unhealthy", st.Healthy)
	}
	if st.Draining != 1 {
		t.Fatalf("draining = %d, want 1 after probing", st.Draining)
	}
	if p := g.pool.pinned(tok); p == nil || p.addr != b.addr {
		t.Fatalf("token pinned to %v, want the admitting backend %s", p, b.addr)
	}
	for i := 0; i < 20; i++ {
		bk, err := g.pool.tryAcquireP2C()
		if err != nil || bk == nil {
			t.Fatalf("p2c draw %d: %v, %v", i, bk, err)
		}
		if bk.addr == a.addr {
			t.Fatal("p2c placed a fresh session on the draining backend")
		}
		bk.release()
	}

	a.server().Undrain()
	g.ProbeNow()
	if st := g.Stats(); st.Draining != 0 {
		t.Fatalf("draining = %d after undrain probe, want 0", st.Draining)
	}
	if p := g.pool.pinned(tok); p == nil || p.addr != a.addr {
		t.Fatal("token did not map back to its rendezvous backend after undrain")
	}
}

// TestGridStickyResumeOnDrainingBackend: a session with a checkpoint on
// a backend that starts draining must, after a connection blip, resume
// there — not fail over and replay from byte zero — because draining
// backends serve resumes until their in-flight sessions conclude.
func TestGridStickyResumeOnDrainingBackend(t *testing.T) {
	a := startBackend(t, scserve.Config{AckInterval: 8})
	b := startBackend(t, scserve.Config{AckInterval: 8})
	g := newTestGrid(t, Config{PollEvery: 64}, a, b)

	stream, rejIdx := scserve.SyntheticReject(600)
	h := scserve.SyntheticHeader()
	h.Token = scserve.NewToken()
	s, err := g.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	half := len(stream) / 2
	if err := s.Send(stream[:half]...); err != nil {
		t.Fatal(err)
	}
	// Make sure a checkpoint exists before the blip: poll until the
	// server's ack moves the replay base.
	deadline := time.Now().Add(2 * time.Second)
	for s.base == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no ack after half the stream — cannot exercise sticky resume")
		}
		if err := s.sess.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.sess.Poll(); err != nil {
			t.Fatal(err)
		}
		s.updateAcked()
	}
	home := s.Backend()
	var hometb *testBackend
	for _, tb := range []*testBackend{a, b} {
		if tb.addr == home {
			hometb = tb
		}
	}
	if hometb == nil {
		t.Fatalf("session reports backend %q, not in the pool", home)
	}

	// The home backend drains, the pool finds out, and the connection
	// blips — placement must still return to the checkpoint.
	hometb.server().Drain()
	g.ProbeNow()
	s.dropConn()

	if err := s.Send(stream[half:]...); err != nil {
		t.Fatal(err)
	}
	v, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != scserve.VerdictReject || v.Symbol != rejIdx {
		t.Fatalf("verdict %s, want reject at symbol %d", v, rejIdx)
	}

	for _, bs := range g.Stats().Backends {
		if bs.Addr == home {
			if bs.Resumes == 0 {
				t.Error("session never resumed on its draining home backend")
			}
			if bs.Rejects != 1 {
				t.Errorf("home backend rejects = %d, want 1", bs.Rejects)
			}
		} else if bs.Sessions != 0 {
			t.Errorf("session leaked onto %s despite a live checkpoint on the draining backend", bs.Addr)
		}
	}
}

// TestRetryClientDrainRedirectThroughProxy is the end-to-end regression
// for the satellite contract: an unmodified RetryClient pointed at a
// proxy, whose pinned backend is draining, lands on an admitting backend
// with no attempt or backoff penalty — the proxy observes the relayed
// draining verdict and steers the redial.
func TestRetryClientDrainRedirectThroughProxy(t *testing.T) {
	a := startBackend(t, scserve.Config{})
	b := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{}, a, b)
	px := NewProxy(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go px.Serve(ln)
	t.Cleanup(px.Shutdown)

	tok := tokenPinnedTo(t, g, a)
	a.server().Drain()

	rc := scserve.NewRetryClient(ln.Addr().String(), scserve.RetryConfig{
		Timeout:     5 * time.Second,
		MaxAttempts: 1, // any consumed attempt fails the session
		BaseDelay:   30 * time.Second,
		MaxDelay:    30 * time.Second,
		Seed:        1,
	})
	defer rc.Close()

	h := scserve.SyntheticHeader()
	h.Token = tok
	start := time.Now()
	v, err := rc.Check(h, scserve.SyntheticAccept(64))
	if err != nil {
		t.Fatalf("drain redirect through the proxy consumed the only attempt: %v", err)
	}
	if v.Code != scserve.VerdictAccept {
		t.Fatalf("verdict %s, want accept", v)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("redirect took %s — a backoff sleep was charged", elapsed)
	}

	for _, bs := range g.Stats().Backends {
		switch bs.Addr {
		case a.addr:
			if !bs.Draining {
				t.Error("proxy never observed the relayed draining verdict")
			}
			if bs.Accepts != 0 {
				t.Errorf("draining backend delivered %d accepts, want 0", bs.Accepts)
			}
		case b.addr:
			if bs.Accepts != 1 {
				t.Errorf("admitting backend delivered %d accepts, want 1", bs.Accepts)
			}
		}
	}
}
