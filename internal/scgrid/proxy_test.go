package scgrid

import (
	"sync"
	"testing"
	"time"

	"scverify/internal/faultnet"
	"scverify/internal/scserve"

	"net"
)

// startProxy serves a proxy for g on a loopback listener.
func startProxy(t *testing.T, g *Grid) (*Proxy, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewProxy(g)
	done := make(chan error, 1)
	go func() { done <- p.Serve(ln) }()
	t.Cleanup(func() {
		p.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("proxy Serve: %v", err)
		}
	})
	return p, ln.Addr().String()
}

// waitIdle waits for every relayed connection to fully drain (slots are
// released only then).
func waitIdle(t *testing.T, p *Proxy) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("proxy still relaying %d connections", p.Active())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestProxyBasic: an unmodified scserve client through the proxy gets
// backend verdicts, and the proxy's per-backend accounting sees them.
func TestProxyBasic(t *testing.T) {
	b1 := startBackend(t, scserve.Config{})
	b2 := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{}, b1, b2)
	p, addr := startProxy(t, g)

	rejStream, rejIdx := scserve.SyntheticReject(32)
	for i := 0; i < 12; i++ {
		c, err := scserve.DialTimeout(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			v, err := c.Check(scserve.SyntheticHeader(), rejStream)
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if v.Code != scserve.VerdictReject || v.Symbol != rejIdx {
				t.Fatalf("session %d: verdict %s, want reject at %d", i, v, rejIdx)
			}
		} else {
			v, err := c.Check(scserve.SyntheticHeader(), scserve.SyntheticAccept(64))
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if v.Code != scserve.VerdictAccept {
				t.Fatalf("session %d: verdict %s, want accept", i, v)
			}
		}
		c.Close()
	}
	waitIdle(t, p)
	var accepts, rejects, sessions int64
	for _, bs := range g.Stats().Backends {
		accepts += bs.Accepts
		rejects += bs.Rejects
		sessions += bs.Sessions
		if bs.InFlight != 0 {
			t.Errorf("backend %s leaked %d slots", bs.Addr, bs.InFlight)
		}
	}
	if sessions != 12 || accepts != 8 || rejects != 4 {
		t.Fatalf("proxy accounting: %d sessions, %d accepts, %d rejects; want 12/8/4", sessions, accepts, rejects)
	}
}

// TestProxyResume: an unmodified RetryClient pointed at the proxy, over a
// link that resets mid-stream, must end with the right verdict — the
// proxy's rendezvous pinning routes every reconnect of the token to the
// same backend, so the server-side checkpoint is found.
func TestProxyResume(t *testing.T) {
	b1 := startBackend(t, scserve.Config{AckInterval: 16})
	b2 := startBackend(t, scserve.Config{AckInterval: 16})
	g := newTestGrid(t, Config{}, b1, b2)
	_, addr := startProxy(t, g)

	fd := faultnet.NewDialer(faultnet.Config{Seed: 5, ResetAfterBytes: 4 << 10})
	rc := scserve.NewRetryClient(addr, scserve.RetryConfig{
		Seed:      9,
		PollEvery: 512,
		BaseDelay: 5 * time.Millisecond,
		MaxDelay:  100 * time.Millisecond,
		Dial:      fd.Dial,
	})
	defer rc.Close()

	v, err := rc.Check(scserve.SyntheticHeader(), scserve.SyntheticAccept(2000))
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != scserve.VerdictAccept {
		t.Fatalf("verdict %s, want accept", v)
	}
	if fd.Stats().Resets.Load() == 0 {
		t.Fatal("no reset fired — nothing was exercised")
	}
	var resumes int64
	for _, bs := range g.Stats().Backends {
		resumes += bs.Resumes
	}
	if resumes == 0 {
		t.Fatal("reconnects never resumed — token pinning through the proxy is broken")
	}
}

// TestProxyShedsBusy: a saturated pool answers proxied hellos with the
// busy verdict instead of hanging or dropping them.
func TestProxyShedsBusy(t *testing.T) {
	tb := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{
		MaxInFlight: 1,
		QueueDepth:  1,
		QueueWait:   100 * time.Millisecond,
	}, tb)
	_, addr := startProxy(t, g)

	// Hold the only slot with a directly dispatched session.
	holder, err := g.Session(scserve.SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Send(scserve.SyntheticAccept(8)...); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	verdicts := make([]scserve.Verdict, 3)
	errs := make([]error, 3)
	for i := range verdicts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := scserve.DialTimeout(addr, 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			verdicts[i], errs[i] = c.Check(scserve.SyntheticHeader(), scserve.SyntheticAccept(8))
		}(i)
	}
	wg.Wait()
	for i := range verdicts {
		if errs[i] != nil {
			t.Fatalf("proxied session %d: %v, want busy verdict", i, errs[i])
		}
		if !verdicts[i].Busy() {
			t.Fatalf("proxied session %d: verdict %s, want busy", i, verdicts[i])
		}
	}

	if v, err := holder.Finish(); err != nil || v.Code != scserve.VerdictAccept {
		t.Fatalf("held session: %v, %v", v, err)
	}
}

// TestProxyRejectsNonHello: a connection whose first frame is not a hello
// gets a positioned protocol-error verdict, not a hang.
func TestProxyRejectsNonHello(t *testing.T) {
	tb := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{}, tb)
	_, addr := startProxy(t, g)

	c, err := scserve.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A Session sends hello lazily buffered; force a bogus first frame by
	// speaking raw bytes instead.
	c.Close()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0x03, 0x00}); err != nil { // end frame first
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if n == 0 {
		t.Fatal("proxy closed without answering a bogus first frame")
	}
	if buf[0] != scserve.FrameVerdict {
		t.Fatalf("first reply frame type 0x%02x, want verdict", buf[0])
	}
}
