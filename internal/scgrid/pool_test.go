package scgrid

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolInFlightAccountingUnderRace pins the pool's client-side slot
// accounting, which the scvet guardedby/atomicmix audit walked without
// finding a hole: tryAcquire is a CAS loop, release is a plain Add(-1),
// and every acquire path (p2c, least-loaded fallback, pinned) pairs the
// two exactly once. The test hammers acquire/release from many
// goroutines — mixed pinned and unpinned, with shedding under a short
// queue deadline — and asserts the per-backend in-flight gauge never
// leaves [0, MaxInFlight] at any sampled instant, and returns to exactly
// zero once the storm ends. Run under -race this doubles as the data-race
// regression for the backend health fields the storm's ejections touch.
func TestPoolInFlightAccountingUnderRace(t *testing.T) {
	const capPer = 4
	cfg := Config{MaxInFlight: capPer, QueueWait: 50 * time.Millisecond, Seed: 1, ProbeInterval: -1}.withDefaults()
	p := newPool([]string{"a:1", "b:1", "c:1"}, cfg)
	defer p.close()

	var violations atomic.Int64
	stopSample := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSample:
				return
			default:
			}
			for _, b := range p.backends {
				if n := b.inflight.Load(); n < 0 || n > capPer {
					violations.Add(1)
				}
			}
			runtime.Gosched()
		}
	}()

	const goroutines = 16
	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				token := ""
				if i%3 == 0 {
					// A small token space so pinned sessions collide on
					// rendezvous backends and contend for the same slots.
					token = fmt.Sprintf("tok-%d", (g+i)%5)
				}
				b, err := p.acquire(token, cfg.QueueWait)
				if err != nil {
					continue // shed under contention is a legal answer
				}
				if n := b.inflight.Load(); n < 1 || n > capPer {
					t.Errorf("in-flight gauge %d outside [1, %d] while holding a slot", n, capPer)
				}
				if i%2 == 0 {
					runtime.Gosched()
				}
				b.release()
			}
		}(g)
	}
	wg.Wait()
	close(stopSample)
	<-samplerDone

	if n := violations.Load(); n != 0 {
		t.Errorf("sampler saw the in-flight gauge outside [0, %d] %d times", capPer, n)
	}
	for _, b := range p.backends {
		if n := b.inflight.Load(); n != 0 {
			t.Errorf("backend %s in-flight gauge %d after storm; want 0 (leaked or double-released slot)", b.addr, n)
		}
	}
	if n := p.waiters.Load(); n != 0 {
		t.Errorf("waiter gauge %d after storm; want 0", n)
	}
}
