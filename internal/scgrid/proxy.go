package scgrid

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scverify/internal/scserve"
)

// proxyMaxFrame bounds frames the proxy will relay — the server's own
// default frame cap, so the proxy never accepts a frame its backend would
// refuse.
const proxyMaxFrame = 1 << 20

// Proxy is the wire-level face of the grid: it accepts plain scserve
// client connections, reads exactly one frame (the hello) to place the
// session — pinned by resume token, least-loaded otherwise — and then
// splices bytes between client and backend verbatim. Because the proxy
// never re-frames or re-orders session bytes after the hello, every
// verdict a client receives through it is byte-for-byte a backend
// checker's verdict; the proxy's own answers are limited to busy and
// transport-error verdicts for sessions it could not place.
//
// Unmodified scserve clients (sccheck -server, RetryClient) pointed at a
// proxy get grid semantics for free: resume tokens hash to a stable
// backend across reconnects, so checkpoint resumption works through the
// proxy exactly as against a single server.
type Proxy struct {
	g *Grid

	mu     sync.Mutex
	ln     net.Listener          // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	closed atomic.Bool
	active atomic.Int64
}

// NewProxy wraps a Grid (which owns placement, health, and admission)
// with the wire relay. The caller keeps ownership of the Grid.
func NewProxy(g *Grid) *Proxy {
	return &Proxy{g: g, conns: make(map[net.Conn]struct{})}
}

// Active returns the number of client connections currently relayed.
func (p *Proxy) Active() int64 { return p.active.Load() }

// Serve accepts client connections on ln until Shutdown (or a listener
// error). It blocks; run it in a goroutine for concurrent use.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if p.closed.Load() {
				return nil
			}
			return err
		}
		p.mu.Lock()
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.handleConn(conn)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting and severs every relayed connection. In-flight
// sessions end with transport errors (which retrying clients absorb); no
// verdict is ever fabricated for them.
func (p *Proxy) Shutdown() {
	p.closed.Store(true)
	p.mu.Lock()
	if p.ln != nil {
		p.ln.Close()
	}
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// deliver writes a single proxy-originated verdict frame to the client.
func deliver(bw *bufio.Writer, v scserve.Verdict) {
	if err := scserve.WriteRawFrame(bw, scserve.FrameVerdict, scserve.AppendVerdict(nil, v)); err == nil {
		bw.Flush()
	}
}

// handleConn relays one client connection through one backend.
func (p *Proxy) handleConn(conn net.Conn) {
	defer conn.Close()
	p.active.Add(1)
	defer p.active.Add(-1)

	cfg := p.g.cfg
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// The hello is the only frame the proxy interprets.
	conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
	typ, payload, err := scserve.ReadRawFrame(br, proxyMaxFrame)
	if err != nil {
		return
	}
	if typ != scserve.FrameHello {
		deliver(bw, protoVerdict(fmt.Sprintf("grid: expected hello frame, got type 0x%02x", typ)))
		return
	}
	hello, err := scserve.ParseHello(payload)
	if err != nil {
		deliver(bw, protoVerdict(fmt.Sprintf("grid: %v", err)))
		return
	}

	// Place the session: admission may queue, and sheds with the busy
	// verdict — the same answer a saturated single server gives.
	b, err := p.g.pool.acquire(hello.Token, cfg.QueueWait)
	if err != nil {
		if errors.Is(err, errShed) {
			deliver(bw, scserve.BusyVerdict(fmt.Sprintf("grid: %v", errors.Unwrap(err))))
		} else {
			deliver(bw, protoVerdict(fmt.Sprintf("grid: %v", err)))
		}
		return
	}
	defer b.release()
	b.sessions.Add(1)
	if hello.Resume {
		b.resumes.Add(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	be, err := cfg.Dial(ctx, b.addr)
	cancel()
	if err != nil {
		p.g.pool.eject(b, err)
		deliver(bw, protoVerdict(fmt.Sprintf("grid: backend %s unreachable: %v", b.addr, err)))
		return
	}
	defer be.Close()

	// Replay the hello to the backend, then splice. Downstream is relayed
	// frame-aware so the proxy can account verdicts per backend; upstream
	// is a raw copy — the proxy adds nothing to the byte stream in either
	// direction.
	bebw := bufio.NewWriter(be)
	if err := scserve.WriteRawFrame(bebw, scserve.FrameHello, payload); err != nil {
		return
	}
	if err := bebw.Flush(); err != nil {
		return
	}
	p.splice(conn, br, bw, be, b)
}

// splice relays session bytes between client and backend until either
// side ends: upstream as a raw copy, downstream frame-aware so verdicts
// can be counted per backend. This is the path PR 5's "the proxy
// structurally cannot alter a verdict" claim lives on, so it is marked
// verdict-transparent: scvet's SV006 fails the build if any
// verdict-constructing or verdict-mutating call — deliver, protoVerdict,
// scserve.AppendVerdict, a Verdict literal — is ever introduced here.
// Parsing verdicts (read-only) is the one allowed touch.
//
//scvet:verdict-transparent
func (p *Proxy) splice(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, be net.Conn, b *backend) {
	conn.SetReadDeadline(time.Time{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(be, br) // client → backend, verbatim
		if hc, ok := be.(interface{ CloseWrite() error }); ok {
			hc.CloseWrite()
		}
	}()

	bebr := bufio.NewReader(be)
	for {
		typ, payload, err := scserve.ReadRawFrame(bebr, proxyMaxFrame)
		if err != nil {
			break
		}
		if typ == scserve.FrameVerdict {
			if v, perr := scserve.ParseVerdict(payload); perr == nil {
				if v.Draining() {
					// Read-only observation: the backend announced drain
					// mode; mark it so placement steers fresh sessions away.
					// The verdict itself is relayed untouched below.
					p.g.pool.setDraining(b, true)
				}
				if !v.Busy() {
					switch v.Code {
					case scserve.VerdictAccept:
						b.accepts.Add(1)
					case scserve.VerdictReject:
						b.rejects.Add(1)
					}
				}
			}
		}
		if err := scserve.WriteRawFrame(bw, typ, payload); err != nil {
			break
		}
		if err := bw.Flush(); err != nil {
			break
		}
	}
	// Sever the upstream copy (the client may still be mid-write) and wait
	// it out so the slot is released only once the relay is fully idle.
	conn.Close()
	be.Close()
	<-done
}

// protoVerdict is a proxy-originated transport-error verdict.
func protoVerdict(msg string) scserve.Verdict {
	return scserve.Verdict{Code: scserve.VerdictProtocolError, Symbol: -1, Offset: -1, Msg: msg}
}
