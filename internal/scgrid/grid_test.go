package scgrid

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"scverify/internal/faultnet"
	"scverify/internal/scserve"
)

// testBackend is one scserve backend a test can kill hard and restart on
// the same address.
type testBackend struct {
	t    *testing.T
	addr string

	mu   sync.Mutex
	srv  *scserve.Server
	done chan error
}

func startBackend(t *testing.T, cfg scserve.Config) *testBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb := &testBackend{t: t, addr: ln.Addr().String()}
	tb.serve(ln, cfg)
	t.Cleanup(tb.kill)
	return tb
}

func (tb *testBackend) serve(ln net.Listener, cfg scserve.Config) {
	srv := scserve.New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	tb.mu.Lock()
	tb.srv, tb.done = srv, done
	tb.mu.Unlock()
}

// kill hard-stops the backend: the listener closes and every in-flight
// connection is severed mid-frame (an expired shutdown context).
func (tb *testBackend) kill() {
	tb.mu.Lock()
	srv, done := tb.srv, tb.done
	tb.srv, tb.done = nil, nil
	tb.mu.Unlock()
	if srv == nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)
	<-done
}

// restart brings a fresh server (empty checkpoint store) up on the same
// address.
func (tb *testBackend) restart(cfg scserve.Config) {
	tb.t.Helper()
	tb.kill()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", tb.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tb.t.Fatalf("restart on %s: %v", tb.addr, err)
	}
	tb.serve(ln, cfg)
}

// newTestGrid builds a grid over the given backends with background
// probing disabled (tests drive ProbeNow) and short, deterministic knobs.
func newTestGrid(t *testing.T, cfg Config, tbs ...*testBackend) *Grid {
	t.Helper()
	addrs := make([]string, len(tbs))
	for i, tb := range tbs {
		addrs[i] = tb.addr
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.BaseDelay == 0 {
		cfg.BaseDelay = 5 * time.Millisecond
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 100 * time.Millisecond
	}
	if cfg.ReadmitDelay == 0 {
		cfg.ReadmitDelay = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	g, err := New(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// TestGridCheckBasic: accepts and rejects through the grid match the
// a-priori verdicts of the synthetic streams, and sessions actually
// spread across both backends.
func TestGridCheckBasic(t *testing.T) {
	b1 := startBackend(t, scserve.Config{})
	b2 := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{}, b1, b2)

	rejStream, rejIdx := scserve.SyntheticReject(32)
	for i := 0; i < 24; i++ {
		h := scserve.SyntheticHeader()
		if i%2 == 1 {
			h.Token = scserve.NewToken() // alternate one-shot and tokened
		}
		if i%3 == 0 {
			v, err := g.Check(h, rejStream)
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if v.Code != scserve.VerdictReject || v.Symbol != rejIdx {
				t.Fatalf("session %d: verdict %s, want reject at symbol %d", i, v, rejIdx)
			}
		} else {
			v, err := g.Check(h, scserve.SyntheticAccept(64))
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if v.Code != scserve.VerdictAccept {
				t.Fatalf("session %d: verdict %s, want accept", i, v)
			}
		}
	}
	st := g.Stats()
	if st.Healthy != 2 {
		t.Fatalf("healthy = %d, want 2", st.Healthy)
	}
	for _, bs := range st.Backends {
		if bs.Sessions == 0 {
			t.Errorf("backend %s served no sessions — dispatch never spread", bs.Addr)
		}
		if bs.InFlight != 0 {
			t.Errorf("backend %s leaked %d in-flight slots", bs.Addr, bs.InFlight)
		}
	}
}

// TestRendezvousPinning: a token maps to one stable backend; ejecting
// that backend remaps only its tokens; re-admission maps them back.
func TestRendezvousPinning(t *testing.T) {
	addrs := []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1", "10.0.0.4:1"}
	g, err := New(addrs, Config{ProbeInterval: -1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	p := g.pool

	tokens := make([]string, 64)
	home := make([]*backend, 64)
	for i := range tokens {
		tokens[i] = scserve.NewToken()
		home[i] = p.pinned(tokens[i])
		if home[i] == nil {
			t.Fatal("pinned returned nil with a healthy pool")
		}
		for j := 0; j < 5; j++ {
			if got := p.pinned(tokens[i]); got != home[i] {
				t.Fatalf("token %d flapped between %s and %s", i, home[i].addr, got.addr)
			}
		}
	}
	// All four backends should own some tokens (64 tokens, 4 backends:
	// an empty owner is ~1e-9 under a uniform hash).
	owned := map[*backend]int{}
	for _, h := range home {
		owned[h]++
	}
	if len(owned) != len(addrs) {
		t.Fatalf("only %d of %d backends own tokens — rendezvous is skewed", len(owned), len(addrs))
	}

	victim := p.backends[1]
	p.eject(victim, fmt.Errorf("test ejection"))
	for i, tok := range tokens {
		got := p.pinned(tok)
		if home[i] == victim {
			if got == victim {
				t.Fatalf("token %d still pinned to the ejected backend", i)
			}
		} else if got != home[i] {
			t.Fatalf("token %d moved from %s to %s though its backend is healthy — rendezvous disturbed unrelated tokens", i, home[i].addr, got.addr)
		}
	}
	p.readmit(victim)
	for i, tok := range tokens {
		if got := p.pinned(tok); got != home[i] {
			t.Fatalf("token %d did not map back to %s after re-admission", i, home[i].addr)
		}
	}
}

// TestP2CPrefersLessLoaded: with one backend artificially loaded, the
// two-choice draw places the bulk of one-shot sessions on the idle one.
func TestP2CPrefersLessLoaded(t *testing.T) {
	g, err := New([]string{"10.0.0.1:1", "10.0.0.2:1"}, Config{ProbeInterval: -1, Seed: 11, MaxInFlight: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	p := g.pool
	p.backends[0].inflight.Store(500)

	placed := map[*backend]int{}
	var got []*backend
	for i := 0; i < 100; i++ {
		b, err := p.tryAcquireP2C()
		if err != nil || b == nil {
			t.Fatalf("acquire %d: %v, %v", i, b, err)
		}
		placed[b]++
		got = append(got, b)
	}
	for _, b := range got {
		b.release()
	}
	// Both draws hit the loaded backend with prob 1/4… but its inflight
	// head start means even then the idle one catches up first. Expect a
	// strong skew, not perfection.
	if placed[p.backends[1]] < 90 {
		t.Fatalf("idle backend got %d/100 placements, want ≥90 (p2c not load-aware?)", placed[p.backends[1]])
	}
}

// TestGridResumeOnBlip: a transient connection reset mid-stream must
// resume on the same backend from its checkpoint — not fail over, not
// restart from byte zero — and still deliver the right verdict.
func TestGridResumeOnBlip(t *testing.T) {
	tb := startBackend(t, scserve.Config{AckInterval: 16})
	fd := faultnet.NewDialer(faultnet.Config{Seed: 3, ResetAfterBytes: 4 << 10})
	g := newTestGrid(t, Config{
		Dial:      Dialer(fd.DialContext),
		PollEvery: 512,
	}, tb)

	h := scserve.SyntheticHeader()
	h.Token = scserve.NewToken()
	stream := scserve.SyntheticAccept(2000) // well past several reset budgets
	v, err := g.Check(h, stream)
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != scserve.VerdictAccept {
		t.Fatalf("verdict %s, want accept", v)
	}
	st := g.Stats().Backends[0]
	if fd.Stats().Resets.Load() == 0 {
		t.Fatal("no reset ever fired — the test exercised nothing")
	}
	if st.Resumes == 0 {
		t.Fatal("session reconnected without ever resuming from a checkpoint")
	}
	if st.Failovers != 0 {
		t.Fatalf("%d failovers on a single-backend pool", st.Failovers)
	}
}

// TestGridFailoverOnBackendDeath: killing the pinned backend mid-session
// must move the session to a live backend, replay from byte zero, and
// deliver the correct verdict; the dead backend must be ejected.
func TestGridFailoverOnBackendDeath(t *testing.T) {
	b1 := startBackend(t, scserve.Config{AckInterval: 16})
	b2 := startBackend(t, scserve.Config{AckInterval: 16})
	tbs := []*testBackend{b1, b2}
	g := newTestGrid(t, Config{PollEvery: 256}, b1, b2)

	h := scserve.SyntheticHeader()
	h.Token = scserve.NewToken()
	s, err := g.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stream, rejIdx := scserve.SyntheticReject(600)
	half := len(stream) / 2
	if err := s.Send(stream[:half]...); err != nil {
		t.Fatal(err)
	}
	pinnedAddr := s.Backend()
	var victim, survivor *testBackend
	for _, tb := range tbs {
		if tb.addr == pinnedAddr {
			victim = tb
		} else {
			survivor = tb
		}
	}
	if victim == nil {
		t.Fatalf("session reports backend %q, not in the pool", pinnedAddr)
	}
	victim.kill()

	if err := s.Send(stream[half:]...); err != nil {
		t.Fatal(err)
	}
	v, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != scserve.VerdictReject || v.Symbol != rejIdx {
		t.Fatalf("verdict %s, want reject at symbol %d — failover replay lost bytes", v, rejIdx)
	}
	if got := s.Backend(); got != survivor.addr && got != "" {
		t.Fatalf("session finished on %s, want the survivor %s", got, survivor.addr)
	}
	st := g.Stats()
	for _, bs := range st.Backends {
		switch bs.Addr {
		case victim.addr:
			if bs.Healthy {
				t.Error("dead backend still marked healthy")
			}
			if bs.Ejections == 0 {
				t.Error("dead backend was never ejected")
			}
		case survivor.addr:
			if bs.Failovers == 0 {
				t.Error("survivor shows no failover")
			}
			if bs.Rejects != 1 {
				t.Errorf("survivor rejects = %d, want 1", bs.Rejects)
			}
		}
	}
}

// TestGridFreshStartAfterRestart: a backend restart (same address, empty
// checkpoint store) answers the resume attempt with a resume miss; the
// session must restart fresh on the same backend and still be right.
func TestGridFreshStartAfterRestart(t *testing.T) {
	tb := startBackend(t, scserve.Config{AckInterval: 8})
	g := newTestGrid(t, Config{PollEvery: 128}, tb)

	h := scserve.SyntheticHeader()
	h.Token = scserve.NewToken()
	s, err := g.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stream := scserve.SyntheticAccept(800)
	half := len(stream) / 2
	if err := s.Send(stream[:half]...); err != nil {
		t.Fatal(err)
	}
	tb.restart(scserve.Config{AckInterval: 8})

	if err := s.Send(stream[half:]...); err != nil {
		t.Fatal(err)
	}
	v, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != scserve.VerdictAccept {
		t.Fatalf("verdict %s, want accept — fresh start after restart lost bytes", v)
	}
}

// TestGridAdmissionShed: with one slot in the pool, a held session makes
// further arrivals queue; the queue deadline and the depth bound both
// shed with the busy verdict, and the held session still completes.
func TestGridAdmissionShed(t *testing.T) {
	tb := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{
		MaxInFlight: 1,
		QueueDepth:  1,
		QueueWait:   100 * time.Millisecond,
	}, tb)

	holder, err := g.Session(scserve.SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Send(scserve.SyntheticAccept(8)...); err != nil {
		t.Fatal(err) // acquires the pool's only slot
	}

	var wg sync.WaitGroup
	verdicts := make([]scserve.Verdict, 3)
	errs := make([]error, 3)
	for i := range verdicts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i], errs[i] = g.Check(scserve.SyntheticHeader(), scserve.SyntheticAccept(8))
		}(i)
	}
	wg.Wait()
	for i, v := range verdicts {
		if errs[i] != nil {
			t.Fatalf("shed session %d returned error %v, want busy verdict", i, errs[i])
		}
		if !v.Busy() {
			t.Fatalf("session %d verdict %s, want busy (shed)", i, v)
		}
	}
	if g.Stats().Sheds < 3 {
		t.Fatalf("sheds = %d, want ≥3", g.Stats().Sheds)
	}

	v, err := holder.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != scserve.VerdictAccept {
		t.Fatalf("held session verdict %s, want accept", v)
	}
}

// TestGridProbeEjectsAndReadmits: the health prober ejects a dead backend
// and re-admits it after restart.
func TestGridProbeEjectsAndReadmits(t *testing.T) {
	tb := startBackend(t, scserve.Config{})
	g := newTestGrid(t, Config{ReadmitDelay: 20 * time.Millisecond}, tb)

	g.ProbeNow()
	if g.Healthy() != 1 {
		t.Fatalf("healthy = %d after probing a live backend", g.Healthy())
	}
	tb.kill()
	g.ProbeNow()
	if g.Healthy() != 0 {
		t.Fatal("probe did not eject the dead backend")
	}
	tb.restart(scserve.Config{})
	deadline := time.Now().Add(5 * time.Second)
	for g.Healthy() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted backend never re-admitted")
		}
		time.Sleep(25 * time.Millisecond)
		g.ProbeNow()
	}
	st := g.Stats().Backends[0]
	if st.Ejections == 0 || st.Probes < 2 {
		t.Fatalf("ejections=%d probes=%d, want ≥1 and ≥2", st.Ejections, st.Probes)
	}
}

// TestGridSmokeKillBackend is the tier-1 smoke: a 3-backend grid serving
// a mixed campaign, with one backend hard-killed while sessions are in
// flight. Every delivered verdict must match the stream's a-priori
// verdict; faults may only cost retries. Deterministic and fast enough
// for the race detector.
func TestGridSmokeKillBackend(t *testing.T) {
	tbs := []*testBackend{
		startBackend(t, scserve.Config{AckInterval: 16}),
		startBackend(t, scserve.Config{AckInterval: 16}),
		startBackend(t, scserve.Config{AckInterval: 16}),
	}
	g := newTestGrid(t, Config{PollEvery: 256, QueueWait: 5 * time.Second}, tbs[0], tbs[1], tbs[2])

	const sessions = 36
	rejStream, rejIdx := scserve.SyntheticReject(200)
	accStream := scserve.SyntheticAccept(200)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var fatal []string
	killed := make(chan struct{})
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == sessions/3 {
				tbs[1].kill() // mid-campaign, with sessions in flight everywhere
				close(killed)
			}
			h := scserve.SyntheticHeader()
			if i%2 == 0 {
				h.Token = scserve.NewToken()
			}
			wantReject := i%3 == 0
			stream := accStream
			if wantReject {
				stream = rejStream
			}
			v, err := g.Check(h, stream)
			if err != nil {
				// A transport error is a tolerated degradation, never a
				// wrong verdict. (With 2 live backends and retries this
				// should be rare; log it.)
				t.Logf("session %d: degraded to error: %v", i, err)
				return
			}
			if v.Busy() {
				t.Logf("session %d: shed busy", i)
				return
			}
			var bad string
			if wantReject && (v.Code != scserve.VerdictReject || v.Symbol != rejIdx) {
				bad = fmt.Sprintf("session %d: verdict %s, want reject at %d", i, v, rejIdx)
			} else if !wantReject && v.Code != scserve.VerdictAccept {
				bad = fmt.Sprintf("session %d: verdict %s, want accept", i, v)
			}
			if bad != "" {
				mu.Lock()
				fatal = append(fatal, bad)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	<-killed
	for _, m := range fatal {
		t.Error(m)
	}
	if t.Failed() {
		t.Fatal("wrong verdicts through the grid — the invariant is broken")
	}
	st := g.Stats()
	var delivered int64
	for _, bs := range st.Backends {
		delivered += bs.Accepts + bs.Rejects
		if bs.InFlight != 0 {
			t.Errorf("backend %s leaked %d slots", bs.Addr, bs.InFlight)
		}
	}
	if delivered < sessions/2 {
		t.Fatalf("only %d/%d sessions delivered verdicts", delivered, sessions)
	}
	t.Logf("smoke: %d delivered, %d sheds, healthy=%d", delivered, st.Sheds, st.Healthy)
}
