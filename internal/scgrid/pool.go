package scgrid

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scverify/internal/scserve"
)

// Config tunes a Grid. The zero value gets sane defaults from New.
type Config struct {
	// ProbeInterval is how often healthy backends are health-probed (a
	// hello/verdict round trip on a throwaway session). Default 2s;
	// negative disables background probing (tests drive ProbeNow).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe end to end: dial, hello, verdict.
	// Default 2s.
	ProbeTimeout time.Duration
	// ReadmitDelay is the base delay before an ejected backend is probed
	// for re-admission; the actual delay is jittered over [d/2, d] so a
	// pool-wide outage doesn't re-admit every backend in lockstep.
	// Default 3s.
	ReadmitDelay time.Duration
	// MaxInFlight caps concurrently dispatched sessions per backend —
	// the client-side mirror of the server's MaxSessions, enforced before
	// dialing so the pool queues instead of bouncing off busy verdicts.
	// Default 32.
	MaxInFlight int
	// QueueDepth bounds sessions waiting for a free slot; session number
	// QueueDepth+1 is shed immediately. Default 64.
	QueueDepth int
	// QueueWait bounds how long an admitted session waits for a slot
	// before it is shed with the busy verdict — deadline-aware shedding
	// returns the capacity answer early rather than stacking latency on a
	// queue that isn't draining. Default 2s.
	QueueWait time.Duration
	// Timeout is the per-operation I/O deadline on backend connections
	// (dial, frame read, frame write). Default 10s.
	Timeout time.Duration
	// MaxAttempts bounds connection attempts per session operation.
	// Default 5.
	MaxAttempts int
	// BaseDelay and MaxDelay bound the jittered exponential backoff
	// between attempts. Defaults 50ms and 2s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// MaxBuffer caps a session's replay buffer. Grid sessions buffer
	// their whole stream — failing over to a different backend means
	// replaying from byte zero — so this bounds the longest stream a
	// session may carry; beyond it the session degrades to a clean error.
	// Default 16 MiB.
	MaxBuffer int
	// PollEvery is the number of streamed bytes between ack polls.
	// Default 32 KiB.
	PollEvery int
	// Seed makes backoff jitter, probe jitter, and p2c draws
	// deterministic for tests; 0 seeds from the wall clock.
	Seed int64
	// Dial overrides the transport, e.g. faultnet's Dialer.DialContext
	// partially applied to "tcp". Defaults to a net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Logf, when set, receives pool-level diagnostics (ejections,
	// re-admissions, failovers).
	Logf func(format string, args ...any)
	// Log, when set, receives structured dispatch events (ejections,
	// re-admissions, drain transitions, failovers) with backend
	// attributes — the operator-facing counterpart of Logf.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ReadmitDelay <= 0 {
		c.ReadmitDelay = 3 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.MaxBuffer <= 0 {
		c.MaxBuffer = 16 << 20
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 32 << 10
	}
	if c.Dial == nil {
		c.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return c
}

// maxDrainRedirects bounds how many consecutive draining verdicts a
// session follows without spending a retry attempt: every healthy backend
// draining at once (a stuck full-fleet drain) must degrade to the normal
// busy backoff, not an unmetered hot loop.
const maxDrainRedirects = 4

// errShed is the admission layer giving up on a slot within the queue
// deadline; it surfaces to callers as the busy verdict.
var errShed = errors.New("scgrid: session shed by admission control")

// errNoBackend means the healthy set is empty right now (retryable: a
// probe may re-admit a backend).
var errNoBackend = errors.New("scgrid: no healthy backend")

// backend is one scserve endpoint in the pool, with its health state and
// per-backend counters. inflight is the pool's client-side accounting of
// dispatched sessions (acquired slots), not the server's own gauge.
type backend struct {
	addr string

	inflight atomic.Int64

	sessions  atomic.Int64 // sessions dispatched here (incl. retries landing here)
	accepts   atomic.Int64
	rejects   atomic.Int64
	errors    atomic.Int64 // sessions that exhausted their retry budget here
	resumes   atomic.Int64 // reconnects that resumed from this backend's checkpoint
	failovers atomic.Int64 // sessions that arrived here fresh after another backend died
	probes    atomic.Int64
	ejections atomic.Int64

	mu        sync.Mutex
	healthy   bool      // guarded by mu
	draining  bool      // guarded by mu; healthy but refusing fresh hellos
	downSince time.Time // guarded by mu
	nextProbe time.Time // guarded by mu; for ejected backends: earliest re-admission probe
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

func (b *backend) isDraining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// tryAcquire reserves an in-flight slot if one is free.
func (b *backend) tryAcquire(cap int) bool {
	for {
		n := b.inflight.Load()
		if n >= int64(cap) {
			return false
		}
		if b.inflight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (b *backend) release() { b.inflight.Add(-1) }

// BackendStats is one backend's slice of GridStats.
type BackendStats struct {
	Addr      string `json:"addr"`
	Healthy   bool   `json:"healthy"`
	Draining  bool   `json:"draining,omitempty"`
	InFlight  int64  `json:"in_flight"`
	Sessions  int64  `json:"sessions"`
	Accepts   int64  `json:"accepts"`
	Rejects   int64  `json:"rejects"`
	Errors    int64  `json:"errors"`
	Resumes   int64  `json:"resumes"`
	Failovers int64  `json:"failovers"`
	Probes    int64  `json:"probes"`
	Ejections int64  `json:"ejections"`
}

// String renders the operator-facing one-liner.
func (b BackendStats) String() string {
	state := "up"
	if !b.Healthy {
		state = "DOWN"
	} else if b.Draining {
		state = "draining"
	}
	return fmt.Sprintf("%s [%s]: %d sessions (%d accept, %d reject, %d error), %d in flight, %d resumes, %d failovers, %d probes, %d ejections",
		b.Addr, state, b.Sessions, b.Accepts, b.Rejects, b.Errors, b.InFlight, b.Resumes, b.Failovers, b.Probes, b.Ejections)
}

// GridStats snapshots the whole pool.
type GridStats struct {
	Backends []BackendStats `json:"backends"`
	Healthy  int            `json:"healthy"`
	Draining int            `json:"draining,omitempty"`
	Sheds    int64          `json:"sheds"`
	// DrainRedirects counts sessions that followed a draining verdict to
	// another backend without spending a retry attempt.
	DrainRedirects int64 `json:"drain_redirects,omitempty"`
}

// pool owns the backend set, the health prober, and the admission queue.
type pool struct {
	cfg      Config
	backends []*backend
	hashSeed maphash.Seed

	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu

	waiters        atomic.Int64
	sheds          atomic.Int64
	drainRedirects atomic.Int64

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newPool(addrs []string, cfg Config) *pool {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	p := &pool{
		cfg:      cfg,
		hashSeed: maphash.MakeSeed(),
		rng:      rand.New(rand.NewSource(seed)),
		stopc:    make(chan struct{}),
	}
	now := time.Now()
	for _, addr := range addrs {
		// Backends start healthy and are ejected by the first failed probe
		// or dial, so a cold pool serves immediately instead of waiting a
		// probe round.
		p.backends = append(p.backends, &backend{addr: addr, healthy: true, nextProbe: now})
	}
	return p
}

func (p *pool) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func (p *pool) event(ev string, args ...any) {
	if p.cfg.Log != nil {
		p.cfg.Log.Info(ev, args...)
	}
}

// setDraining records that a backend announced (or stopped announcing)
// drain mode. Draining is observed, never assumed: it is set when a
// draining verdict comes back on a session or probe, and cleared when the
// backend accepts a session again — so a restarted backend rejoins
// placement within one probe round without any operator action.
func (p *pool) setDraining(b *backend, v bool) {
	b.mu.Lock()
	was := b.draining
	b.draining = v
	b.mu.Unlock()
	if was != v {
		if v {
			p.logf("scgrid: backend %s draining: deprioritized for new sessions", b.addr)
		} else {
			p.logf("scgrid: backend %s no longer draining", b.addr)
		}
		p.event("backend_drain", "backend", b.addr, "draining", v)
	}
}

// jitter draws uniformly over [d/2, d].
func (p *pool) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return d/2 + time.Duration(p.rng.Int63n(int64(d/2)+1))
}

// intn draws from the pool's rng under its lock.
func (p *pool) intn(n int) int {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Intn(n)
}

// healthySet snapshots the currently healthy backends.
func (p *pool) healthySet() []*backend {
	hs := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.isHealthy() {
			hs = append(hs, b)
		}
	}
	return hs
}

// placeSet is the set new sessions are placed over: healthy backends that
// are not draining. When every healthy backend is draining (a full rolling
// restart mid-flight) it falls back to the healthy set — a draining
// backend still answers, so degraded placement beats refusing service.
// Because the fallback depends only on shared observable state, every
// dispatcher computes the same set modulo propagation lag; transient
// disagreement degrades to a resume miss and full replay, never to a
// wrong verdict.
func (p *pool) placeSet() []*backend {
	hs := p.healthySet()
	ps := make([]*backend, 0, len(hs))
	for _, b := range hs {
		if !b.isDraining() {
			ps = append(ps, b)
		}
	}
	if len(ps) == 0 {
		return hs
	}
	return ps
}

// rendezvous picks the highest-random-weight healthy backend for token:
// every dispatcher instance (grid clients, proxies) maps the same token
// to the same backend as long as the healthy set agrees, without any
// shared session table. When a backend is ejected only its own tokens
// remap; when it is re-admitted they map back.
func (p *pool) rendezvous(token string, hs []*backend) *backend {
	var best *backend
	var bestScore uint64
	for _, b := range hs {
		var h maphash.Hash
		h.SetSeed(p.hashSeed)
		h.WriteString(b.addr)
		h.WriteByte(0)
		h.WriteString(token)
		if s := h.Sum64(); best == nil || s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// Pinned returns the backend the token is currently pinned to, or nil
// when no backend is healthy. It does not reserve a slot. Pinning ranges
// over the placement set, so a draining backend's tokens remap to its
// peers — sessions already resumable there are kept in place by the
// session layer, which checks its own backend before re-pinning.
func (p *pool) pinned(token string) *backend {
	return p.rendezvous(token, p.placeSet())
}

// tryAcquireP2C reserves a slot by power-of-two-choices: two random
// healthy backends, the less loaded wins. If the winner is full it falls
// back to the least-loaded healthy backend with a free slot, so capacity
// anywhere in the pool is never stranded behind an unlucky draw.
func (p *pool) tryAcquireP2C() (*backend, error) {
	hs := p.placeSet()
	if len(hs) == 0 {
		return nil, errNoBackend
	}
	var pick *backend
	if len(hs) == 1 {
		pick = hs[0]
	} else {
		i := p.intn(len(hs))
		j := p.intn(len(hs) - 1)
		if j >= i {
			j++
		}
		pick = hs[i]
		if hs[j].inflight.Load() < pick.inflight.Load() {
			pick = hs[j]
		}
	}
	if pick.tryAcquire(p.cfg.MaxInFlight) {
		return pick, nil
	}
	var best *backend
	for _, b := range hs {
		if b.inflight.Load() < int64(p.cfg.MaxInFlight) && (best == nil || b.inflight.Load() < best.inflight.Load()) {
			best = b
		}
	}
	if best != nil && best.tryAcquire(p.cfg.MaxInFlight) {
		return best, nil
	}
	return nil, nil // all slots busy: admission decides whether to wait
}

// tryAcquirePinned reserves a slot on the token's rendezvous backend.
func (p *pool) tryAcquirePinned(token string) (*backend, error) {
	b := p.pinned(token)
	if b == nil {
		return nil, errNoBackend
	}
	if b.tryAcquire(p.cfg.MaxInFlight) {
		return b, nil
	}
	return nil, nil
}

// admitPoll is how often a queued session re-checks for a free slot.
const admitPoll = 2 * time.Millisecond

// acquire is admission control: it reserves a slot for a new session —
// pinned by token, or p2c when token is empty — queueing up to QueueWait
// when the pool is saturated. A full queue or an expired deadline sheds
// the session with errShed (the busy verdict); an empty healthy set is
// also waited out, since a probe may re-admit a backend within the
// deadline.
func (p *pool) acquire(token string, wait time.Duration) (*backend, error) {
	deadline := time.Now().Add(wait)
	queued := false
	defer func() {
		if queued {
			p.waiters.Add(-1)
		}
	}()
	for {
		var b *backend
		var err error
		if token == "" {
			b, err = p.tryAcquireP2C()
		} else {
			b, err = p.tryAcquirePinned(token)
		}
		if b != nil {
			return b, nil
		}
		if !queued {
			if p.waiters.Add(1) > int64(p.cfg.QueueDepth) {
				p.waiters.Add(-1)
				p.sheds.Add(1)
				return nil, fmt.Errorf("%w: wait queue full (%d waiting)", errShed, p.cfg.QueueDepth)
			}
			queued = true
		}
		if time.Now().After(deadline) {
			p.sheds.Add(1)
			if err == errNoBackend {
				return nil, fmt.Errorf("%w: no healthy backend within %s", errShed, wait)
			}
			return nil, fmt.Errorf("%w: no free slot within %s", errShed, wait)
		}
		time.Sleep(admitPoll)
	}
}

// eject marks a backend unhealthy after a failed dial or probe and
// schedules its jittered re-admission probe.
func (p *pool) eject(b *backend, cause error) {
	b.mu.Lock()
	was := b.healthy
	b.healthy = false
	if was {
		b.downSince = time.Now()
		b.ejections.Add(1)
	}
	b.nextProbe = time.Now().Add(p.jitter(p.cfg.ReadmitDelay))
	b.mu.Unlock()
	if was {
		p.logf("scgrid: backend %s ejected: %v", b.addr, cause)
	}
}

// readmit marks an ejected backend healthy again after a passed probe.
func (p *pool) readmit(b *backend) {
	b.mu.Lock()
	was := b.healthy
	b.healthy = true
	down := time.Since(b.downSince)
	b.mu.Unlock()
	if !was {
		p.logf("scgrid: backend %s re-admitted after %s down", b.addr, down.Round(time.Millisecond))
	}
}

// probe is one health check: dial, hello, empty stream, verdict. The
// empty synthetic session exercises the same path a real session takes —
// a backend that accepts TCP but cannot deliver verdicts is as dead as
// one that refuses to dial. A busy verdict counts as healthy: the backend
// is answering, just full.
func (p *pool) probe(b *backend) error {
	b.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	conn, err := p.cfg.Dial(ctx, b.addr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	cli := scserve.NewClient(conn, p.cfg.ProbeTimeout)
	v, err := cli.Check(scserve.SyntheticHeader(), nil)
	if err != nil {
		return fmt.Errorf("probe session: %w", err)
	}
	if v.Code != scserve.VerdictAccept && !v.Busy() {
		return fmt.Errorf("probe verdict: %s", v)
	}
	// The probe doubles as the drain detector: a draining verdict means
	// healthy-but-refusing-fresh-sessions; an accept or plain busy means
	// the backend (re)admits fresh sessions, clearing any stale drain mark.
	p.setDraining(b, v.Draining())
	return nil
}

// probeRound probes every backend that is due: healthy ones on the
// ProbeInterval cadence, ejected ones once their jittered re-admission
// delay has elapsed. Probes run concurrently so one stalled backend
// cannot delay the round past its own timeout.
func (p *pool) probeRound() {
	now := time.Now()
	var wg sync.WaitGroup
	for _, b := range p.backends {
		b.mu.Lock()
		due := !b.nextProbe.After(now)
		b.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			err := p.probe(b)
			b.mu.Lock()
			if err == nil {
				b.nextProbe = time.Now().Add(p.cfg.ProbeInterval)
			}
			b.mu.Unlock()
			if err != nil {
				p.eject(b, err)
			} else {
				p.readmit(b)
			}
		}(b)
	}
	wg.Wait()
}

// probeLoop drives probeRound until the pool closes.
func (p *pool) probeLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.ProbeInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-p.stopc:
			return
		case <-tick.C:
			p.probeRound()
		}
	}
}

func (p *pool) start() {
	if p.cfg.ProbeInterval < 0 {
		return
	}
	p.wg.Add(1)
	go p.probeLoop()
}

func (p *pool) close() {
	p.stopOnce.Do(func() { close(p.stopc) })
	p.wg.Wait()
}

// stats snapshots every backend plus the pool-level counters.
func (p *pool) stats() GridStats {
	st := GridStats{Sheds: p.sheds.Load(), DrainRedirects: p.drainRedirects.Load()}
	for _, b := range p.backends {
		bs := BackendStats{
			Addr:      b.addr,
			Healthy:   b.isHealthy(),
			Draining:  b.isDraining(),
			InFlight:  b.inflight.Load(),
			Sessions:  b.sessions.Load(),
			Accepts:   b.accepts.Load(),
			Rejects:   b.rejects.Load(),
			Errors:    b.errors.Load(),
			Resumes:   b.resumes.Load(),
			Failovers: b.failovers.Load(),
			Probes:    b.probes.Load(),
			Ejections: b.ejections.Load(),
		}
		if bs.Healthy {
			st.Healthy++
		}
		if bs.Draining {
			st.Draining++
		}
		st.Backends = append(st.Backends, bs)
	}
	return st
}
