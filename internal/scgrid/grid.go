// Package scgrid is the sharded multi-backend checking fabric: a
// client-side dispatcher that spreads SC-checking sessions across a pool
// of scserve backends. The paper's checker is linear in trace length and
// every session is independent, which makes checking embarrassingly
// shardable — aggregate throughput should scale with backends — but only
// if the fabric never trades a fault for a wrong verdict. scgrid keeps
// the scserve/PR-4 invariant end to end: a backend death, restart, or
// network blip may cost a session retries or a clean error, yet every
// verdict actually delivered is the deterministic checker's verdict over
// exactly the bytes the session streamed.
//
// The pieces:
//
//   - A backend pool with periodic health probes (a hello/verdict round
//     trip over the real session path), ejection on failure, jittered
//     re-admission, and per-backend in-flight accounting.
//   - A dispatcher that places one-shot sessions by power-of-two-choices
//     least-loaded selection, and pins tokened (resumable) sessions by
//     rendezvous hashing on the resume token — so a reconnect after a
//     transient blip lands on the original backend and resumes from its
//     checkpoint, while a reconnect after a backend death remaps to a
//     live backend and starts fresh from the session's replay buffer.
//   - Admission control: a bounded wait queue with deadline-aware
//     shedding that answers with the existing scserve busy verdict
//     instead of stacking unbounded latency.
//
// Sessions buffer their whole stream (capped by Config.MaxBuffer):
// failover to a different backend requires replay from byte zero, and a
// verdict over anything less than the exact stream would break the
// invariant. Resume-on-blip still pays off — the pinned backend checks
// only the unacked tail — but correctness never depends on a checkpoint
// surviving.
package scgrid

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/scserve"
)

// Grid dispatches checking sessions across a pool of scserve backends.
// Construct with New; Grid is safe for concurrent use (each Session is
// single-goroutine, like scserve's clients).
type Grid struct {
	cfg  Config
	pool *pool
}

// New builds a grid over the given backend addresses and starts its
// health prober. Backends start presumed-healthy and are ejected by their
// first failed probe or dial.
func New(addrs []string, cfg Config) (*Grid, error) {
	if len(addrs) == 0 {
		return nil, errors.New("scgrid: no backends")
	}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a == "" {
			return nil, errors.New("scgrid: empty backend address")
		}
		if seen[a] {
			return nil, fmt.Errorf("scgrid: duplicate backend %s", a)
		}
		seen[a] = true
	}
	cfg = cfg.withDefaults()
	g := &Grid{cfg: cfg, pool: newPool(addrs, cfg)}
	g.pool.start()
	return g, nil
}

// Close stops the health prober. Open sessions keep their slots; callers
// should conclude them first.
func (g *Grid) Close() { g.pool.close() }

// Stats snapshots per-backend counters and pool-level admission stats.
func (g *Grid) Stats() GridStats { return g.pool.stats() }

// Healthy returns the number of currently healthy backends.
func (g *Grid) Healthy() int { return g.pool.stats().Healthy }

// ProbeNow runs one synchronous probe round over every backend,
// regardless of schedule — startup convergence and tests.
func (g *Grid) ProbeNow() {
	now := time.Now()
	for _, b := range g.pool.backends {
		b.mu.Lock()
		b.nextProbe = now
		b.mu.Unlock()
	}
	g.pool.probeRound()
}

// Session opens a grid session. A Header with a Token is resumable and
// pinned to its rendezvous backend (use scserve.NewToken for a fresh
// one); a Header without a Token is one-shot and placed least-loaded.
// h.Resume must not be set — resumption is the grid's business.
func (g *Grid) Session(h scserve.Header) (*Session, error) {
	if h.Resume {
		return nil, errors.New("scgrid: the grid manages resumption itself; do not set Header.Resume")
	}
	seed := g.cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	} else {
		// Derive a per-session stream so concurrent sessions under a
		// fixed grid seed don't share one locked rng.
		seed += g.pool.sheds.Load() + int64(len(h.Token))*7919
	}
	return &Session{
		g:   g,
		hdr: h,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// Check is the one-shot convenience: it opens a session with h, streams
// the whole stream, and returns the verdict. A shed session returns the
// busy verdict (see Verdict.Busy) with a nil error.
func (g *Grid) Check(h scserve.Header, stream descriptor.Stream) (scserve.Verdict, error) {
	s, err := g.Session(h)
	if err != nil {
		return scserve.Verdict{}, err
	}
	defer s.Close()
	if err := s.Send(stream...); err != nil {
		return scserve.Verdict{}, err
	}
	return s.Finish()
}

// Session is one logical checking session dispatched through the grid.
// It survives backend connection loss (resuming on the pinned backend's
// checkpoint), backend death (failing over to a live backend and
// replaying from byte zero), and backend restart (a resume miss restarts
// fresh on the same backend). Not goroutine-safe.
//
//scvet:single-goroutine
type Session struct {
	g   *Grid
	hdr scserve.Header
	rng *rand.Rand

	buf   []byte // the whole stream: failover needs replay from byte zero
	total int64

	b       *backend // backend currently holding this session's slot
	cli     *scserve.Client
	sess    *scserve.Session
	base    int64 // acked offset on the current backend (replay starts here)
	baseSym int
	sent    int64 // absolute offset streamed on the current connection
	unpoll  int
	landed  bool // a session reached some backend at least once
	done    bool
	shed    *scserve.Verdict // set when admission shed this session
}

// Bytes returns the total stream bytes accepted so far.
func (s *Session) Bytes() int64 { return s.total }

// Backend returns the address of the backend currently serving the
// session ("" before the first dispatch).
func (s *Session) Backend() string {
	if s.b == nil {
		return ""
	}
	return s.b.addr
}

// Close abandons the session: the backend connection is dropped and the
// in-flight slot released. A finished session's Close is a no-op.
func (s *Session) Close() {
	s.dropConn()
	s.releaseSlot()
	s.done = true
}

func (s *Session) dropConn() {
	if s.cli != nil {
		s.cli.Close()
		s.cli = nil
	}
	s.sess = nil
}

func (s *Session) releaseSlot() {
	if s.b != nil {
		s.b.release()
		s.b = nil
	}
}

// backoff sleeps the jittered exponential delay for the given attempt.
func (s *Session) backoff(attempt int) {
	d := s.g.cfg.BaseDelay << attempt
	if d <= 0 || d > s.g.cfg.MaxDelay {
		d = s.g.cfg.MaxDelay
	}
	d = d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// errResumeMiss: the pinned backend restarted and lost the checkpoint;
// retry fresh on the same backend.
var errResumeMiss = errors.New("scgrid: resume checkpoint gone; restarting fresh")

// ensure establishes a connection to the right backend with an open
// session positioned at s.sent. It owns placement:
//
//   - tokened sessions target their rendezvous backend — the same one
//     after a blip (resume), a different live one after a death
//     (failover, fresh start);
//   - one-shot sessions re-place least-loaded on every reconnect.
//
// Slot accounting moves with the session: reconnecting to the same
// backend keeps the held slot, moving releases it and re-admits on the
// new backend (which may queue and shed).
func (s *Session) ensure() error {
	if s.sess != nil {
		return nil
	}
	// Placement: where should this session run now?
	var want *backend
	if s.hdr.Token != "" {
		if s.base > 0 && s.b != nil && s.b.isHealthy() {
			// Sticky resume: our checkpoint lives on this backend and it is
			// still answering — stay, even if it started draining. Draining
			// backends keep serving resumes precisely so in-flight sessions
			// finish where their bytes are instead of paying a full replay.
			want = s.b
		} else {
			want = s.g.pool.pinned(s.hdr.Token)
			if want == nil {
				// Nothing healthy: wait in the admission queue for a
				// re-admission rather than spinning the retry budget.
				s.releaseSlot()
			}
		}
	} else {
		want = s.b // one-shot: keep the slot unless the backend died
		if want != nil && !want.isHealthy() {
			want = nil
		}
	}
	if want == nil || want != s.b {
		s.releaseSlot()
		b, err := s.g.pool.acquire(s.hdr.Token, s.g.cfg.QueueWait)
		if err != nil {
			return err
		}
		if s.hdr.Token != "" && want != nil && b != want {
			// The healthy set shifted between pinned() and acquire();
			// trust acquire's answer, it re-ran the hash.
			want = b
		}
		s.b = b
		if s.landed {
			s.b.failovers.Add(1)
			s.g.pool.logf("scgrid: session %.8s… failing over to %s (replay %d bytes)", s.hdr.Token, b.addr, s.total)
		}
		// A new backend has none of our bytes: fresh start, full replay.
		s.base, s.baseSym = 0, 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.g.cfg.Timeout)
	conn, err := s.g.cfg.Dial(ctx, s.b.addr)
	cancel()
	if err != nil {
		// A refused dial is the fastest death signal there is: eject so
		// the next attempt (and every other session) places elsewhere.
		s.g.pool.eject(s.b, err)
		s.releaseSlot()
		return err
	}
	s.cli = scserve.NewClient(conn, s.g.cfg.Timeout)

	h := s.hdr
	if s.base > 0 {
		h.Resume = true
		h.AckSymbol, h.AckOffset = s.baseSym, s.base
	}
	sess, err := s.cli.Session(h)
	if err != nil {
		s.dropConn()
		return err
	}
	s.sess = sess
	s.b.sessions.Add(1)
	s.landed = true
	if h.Resume {
		if v, ok := sess.Early(); ok {
			if v.ResumeMiss() {
				// The backend restarted (or evicted the checkpoint): the
				// token is gone but we hold the full stream. Restart
				// fresh on the same backend.
				s.dropConn()
				s.base, s.baseSym = 0, 0
				return errResumeMiss
			}
			// Any other early verdict (typically the replayed verdict of
			// an already-finished session) is delivered by Finish.
			s.sent = s.total
			return nil
		}
		_, off := sess.Acked()
		if off < 0 || off > s.total {
			s.dropConn()
			s.base, s.baseSym = 0, 0
			return fmt.Errorf("scgrid: resume ack at offset %d outside stream of %d bytes", off, s.total)
		}
		s.b.resumes.Add(1)
		s.updateAcked()
	}
	s.sent = s.base
	return nil
}

// updateAcked folds the server's latest ack into the session's replay
// base. The buffer is never trimmed — failover needs byte zero — but the
// base decides where a resume on the same backend restarts.
func (s *Session) updateAcked() {
	sym, off := s.sess.Acked()
	if off > s.base && off <= s.total {
		s.base, s.baseSym = off, sym
	}
}

// push streams the buffer's unsent tail on the current connection,
// polling for acks (and an early verdict) at the configured cadence.
func (s *Session) push() error {
	chunk := s.g.cfg.PollEvery
	for s.sent < s.total {
		if _, ok := s.sess.Early(); ok {
			// Early verdict: the server is draining. Stop streaming;
			// Finish delivers it.
			s.sent = s.total
			return nil
		}
		tail := s.buf[s.sent:]
		n := len(tail)
		if n > chunk {
			n = chunk
		}
		if err := s.sess.SendBytes(tail[:n]); err != nil {
			return err
		}
		s.sent += int64(n)
		s.unpoll += n
		if s.unpoll >= s.g.cfg.PollEvery {
			s.unpoll = 0
			if err := s.sess.Flush(); err != nil {
				return err
			}
			if err := s.sess.Poll(); err != nil {
				return err
			}
			s.updateAcked()
		}
	}
	return nil
}

// fail drops the connection after a transport error. The slot is kept:
// placement on the next ensure decides whether it moves.
func (s *Session) fail() { s.dropConn() }

// shedVerdict finalizes a shed session with the busy verdict.
func (s *Session) shedVerdict(err error) scserve.Verdict {
	v := scserve.BusyVerdict(fmt.Sprintf("grid: %v", errors.Unwrap(err)))
	s.shed = &v
	s.releaseSlot()
	return v
}

// SendBytes appends raw descriptor wire bytes to the logical stream and
// streams them (with any unsent tail) through the current backend,
// retrying, resuming, and failing over as needed. The bytes need not
// align with symbol boundaries.
func (s *Session) SendBytes(raw []byte) error {
	if s.done {
		return errors.New("scgrid: send after Finish")
	}
	if s.shed != nil {
		return nil // verdict already decided; Finish reports it
	}
	if len(s.buf)+len(raw) > s.g.cfg.MaxBuffer {
		return fmt.Errorf("scgrid: stream exceeds replay buffer limit %d (grid sessions buffer the whole stream for failover)", s.g.cfg.MaxBuffer)
	}
	s.buf = append(s.buf, raw...)
	s.total += int64(len(raw))

	var lastErr error
	for attempt := 0; attempt < s.g.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.backoff(attempt - 1)
		}
		if err := s.ensure(); err != nil {
			if errors.Is(err, errShed) {
				s.shedVerdict(err)
				return nil
			}
			if errors.Is(err, errResumeMiss) {
				attempt-- // a miss answer is progress, not a failed attempt
			}
			lastErr = err
			continue
		}
		if err := s.push(); err != nil {
			lastErr = err
			s.fail()
			continue
		}
		return nil
	}
	s.releaseSlot()
	return fmt.Errorf("scgrid: send failed after %d attempts: %w", s.g.cfg.MaxAttempts, lastErr)
}

// Send encodes and streams the given symbols.
func (s *Session) Send(syms ...descriptor.Symbol) error {
	var scratch []byte
	for _, sym := range syms {
		scratch = descriptor.AppendBinary(scratch, sym)
	}
	return s.SendBytes(scratch)
}

// Finish concludes the session and returns the verdict. Backend busy
// verdicts are retried with backoff (restarting the session); admission
// sheds return the grid's busy verdict. Every non-busy verdict returned
// was produced by a backend's checker over exactly the bytes this
// session streamed.
func (s *Session) Finish() (scserve.Verdict, error) {
	if s.done {
		return scserve.Verdict{}, errors.New("scgrid: session already finished")
	}
	if s.shed != nil {
		s.done = true
		return *s.shed, nil
	}
	var lastErr error
	redirects := 0
	skipBackoff := false
	for attempt := 0; attempt < s.g.cfg.MaxAttempts; attempt++ {
		if attempt > 0 && !skipBackoff {
			s.backoff(attempt - 1)
		}
		skipBackoff = false
		if err := s.ensure(); err != nil {
			if errors.Is(err, errShed) {
				s.done = true
				return s.shedVerdict(err), nil
			}
			if errors.Is(err, errResumeMiss) {
				attempt--
			}
			lastErr = err
			continue
		}
		if err := s.push(); err != nil {
			lastErr = err
			s.fail()
			continue
		}
		v, err := s.sess.Finish()
		s.sess = nil
		if err != nil {
			lastErr = err
			s.fail()
			continue
		}
		if v.Busy() {
			lastErr = v.Err()
			s.dropConn()
			if v.Draining() {
				// The backend is draining, not overloaded: mark it so
				// placement avoids it, give the slot back, and redirect
				// immediately — a drain is an explicit "go elsewhere", so
				// it costs neither a retry attempt nor a backoff sleep.
				s.g.pool.setDraining(s.b, true)
				if redirects < maxDrainRedirects {
					redirects++
					s.g.pool.drainRedirects.Add(1)
					s.releaseSlot()
					s.sent = s.base
					attempt--
					skipBackoff = true
					continue
				}
			}
			// The backend itself is at capacity: back off and restart.
			// One-shot sessions give their slot back so the retry can
			// re-place least-loaded; tokened ones stay with their
			// rendezvous backend.
			if s.hdr.Token == "" {
				s.releaseSlot()
			}
			s.sent = s.base
			continue
		}
		switch v.Code {
		case scserve.VerdictAccept:
			s.b.accepts.Add(1)
		case scserve.VerdictReject:
			s.b.rejects.Add(1)
		}
		s.done = true
		s.dropConn()
		s.releaseSlot()
		return v, nil
	}
	s.done = true
	if s.b != nil {
		s.b.errors.Add(1)
	}
	s.dropConn()
	s.releaseSlot()
	return scserve.Verdict{}, fmt.Errorf("scgrid: session failed after %d attempts: %w", s.g.cfg.MaxAttempts, lastErr)
}

// Dialer adapts a faultnet-style DialContext (network first) to
// Config.Dial's addr-only signature over TCP.
func Dialer(dc func(ctx context.Context, network, addr string) (net.Conn, error)) func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		return dc(ctx, "tcp", addr)
	}
}
