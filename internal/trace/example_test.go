package trace_test

import (
	"fmt"

	"scverify/internal/trace"
)

// A load of the initial value ⊥ after a store is legal under sequential
// consistency as long as some reordering puts it first.
func ExampleFindSerialReordering() {
	tr := trace.Trace{
		trace.ST(1, 1, 1),
		trace.LD(2, 1, trace.Bottom),
	}
	r, ok := trace.FindSerialReordering(tr)
	fmt.Println("sequentially consistent:", ok)
	fmt.Println("witness order:", r)
	fmt.Println("reordered trace:", r.Apply(tr))
	// Output:
	// sequentially consistent: true
	// witness order: [1 0]
	// reordered trace: LD(P2,B1,⊥), ST(P1,B1,1)
}

// The store-buffering litmus outcome has no serial reordering.
func ExampleHasSerialReordering() {
	tr := trace.Trace{
		trace.ST(1, 1, 1), trace.LD(1, 2, trace.Bottom),
		trace.ST(2, 2, 1), trace.LD(2, 1, trace.Bottom),
	}
	fmt.Println(trace.HasSerialReordering(tr))
	// Output:
	// false
}
