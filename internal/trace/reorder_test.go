package trace

import (
	"testing"
	"testing/quick"
)

// figure1Trace builds the message-passing program of Figure 1 with the
// given load results: P1 stores x←1 then y←2; P2 loads y into r2 then x
// into r1. Block 1 is x, block 2 is y.
func figure1Trace(r2, r1 Value) Trace {
	return Trace{
		ST(1, 1, 1),  // time 1: P1 stores 1 to x
		ST(1, 2, 2),  // time 2: P1 stores 2 to y
		LD(2, 2, r2), // time 3: P2 loads y into r2
		LD(2, 1, r1), // time 4: P2 loads x into r1
	}
}

func TestFigure1Outcomes(t *testing.T) {
	// Figure 1: under sequential consistency r1=1,r2=2 and r1=0,r2=0 and
	// r1=1,r2=0 are legal, but r1=0,r2=2 is not.
	cases := []struct {
		r1, r2 Value
		wantSC bool
	}{
		{1, 2, true},
		{Bottom, Bottom, true},
		{1, Bottom, true},
		{Bottom, 2, false},
	}
	for _, c := range cases {
		tr := figure1Trace(c.r2, c.r1)
		if got := HasSerialReordering(tr); got != c.wantSC {
			t.Errorf("Figure 1 outcome r1=%d r2=%d: SC=%v, want %v", c.r1, c.r2, got, c.wantSC)
		}
	}
}

func TestFindSerialReorderingEmpty(t *testing.T) {
	r, ok := FindSerialReordering(Trace{})
	if !ok || len(r) != 0 {
		t.Errorf("empty trace: got %v, %v", r, ok)
	}
}

func TestFindSerialReorderingSerialInput(t *testing.T) {
	tr := Trace{ST(1, 1, 1), LD(2, 1, 1), ST(2, 2, 3), LD(1, 2, 3)}
	r, ok := FindSerialReordering(tr)
	if !ok {
		t.Fatal("serial trace reported not SC")
	}
	if !r.IsSerialReordering(tr) {
		t.Errorf("returned reordering %v is not serial", r)
	}
}

func TestFindSerialReorderingNeedsReorder(t *testing.T) {
	// The load of ⊥ must be moved before the store.
	tr := Trace{ST(1, 1, 1), LD(2, 1, Bottom)}
	r, ok := FindSerialReordering(tr)
	if !ok {
		t.Fatal("SC trace reported not SC")
	}
	if !r.IsSerialReordering(tr) {
		t.Errorf("reordering %v invalid", r)
	}
}

func TestFindSerialReorderingRejects(t *testing.T) {
	// Load of a value never stored.
	if HasSerialReordering(Trace{LD(1, 1, 3)}) {
		t.Error("impossible load accepted")
	}
	// Classic IRIW-like violation with 2 writers: both readers see the two
	// stores to the same block in opposite orders.
	tr := Trace{
		ST(1, 1, 1), ST(2, 1, 2),
		LD(3, 1, 1), LD(3, 1, 2), // P3 sees 1 then 2
		LD(4, 1, 2), LD(4, 1, 1), // P4 sees 2 then 1
	}
	if HasSerialReordering(tr) {
		t.Error("coherence violation accepted")
	}
}

func TestFindSerialReorderingAgreesWithGeneratedSC(t *testing.T) {
	g := NewGenerator(Params{Procs: 3, Blocks: 2, Values: 3}, 1)
	for i := 0; i < 50; i++ {
		tr := g.SC(14)
		r, ok := FindSerialReordering(tr)
		if !ok {
			t.Fatalf("iteration %d: generated SC trace rejected: %s", i, tr)
		}
		if !r.IsSerialReordering(tr) {
			t.Fatalf("iteration %d: invalid witness %v for %s", i, r, tr)
		}
	}
}

func TestFindSerialReorderingPropertyWitnessValid(t *testing.T) {
	// Property: whenever a reordering is returned it is a genuine serial
	// reordering; whenever the answer is false, the identity and all
	// single-swap reorderings are non-serial (a weak sanity cross-check).
	cfg := &quick.Config{MaxCount: 60}
	g := NewGenerator(Params{Procs: 2, Blocks: 2, Values: 2}, 7)
	prop := func(seed uint8) bool {
		tr := g.SC(10)
		if m, okm := g.Mutate(tr); okm && int(seed)%3 == 0 {
			tr = m
		}
		r, ok := FindSerialReordering(tr)
		if ok {
			return r.IsSerialReordering(tr)
		}
		return !tr.IsSerial() // if no reordering exists, identity surely fails
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestStoreOrderAndInheritanceMap(t *testing.T) {
	tr := Trace{ST(1, 1, 1), ST(2, 1, 2), LD(1, 1, 2), LD(2, 2, Bottom)}
	r, ok := FindSerialReordering(tr)
	if !ok {
		t.Fatal("trace should be SC")
	}
	so := r.StoreOrder(tr)
	if len(so[1]) != 2 {
		t.Fatalf("store order for block 1 = %v", so[1])
	}
	// ST(P1,B1,1) must come before ST(P2,B1,2) since the load sees 2 after
	// program-order position of P1's store... verify via inheritance map.
	inh := r.InheritanceMap(tr)
	if inh[2] != 1 {
		t.Errorf("load at pos 2 inherits from %d, want 1", inh[2])
	}
	if _, ok := inh[3]; ok {
		t.Error("bottom load should not appear in inheritance map")
	}
}

func TestGeneratorSerialIsSerial(t *testing.T) {
	g := NewGenerator(Params{Procs: 4, Blocks: 3, Values: 4}, 42)
	for i := 0; i < 20; i++ {
		tr := g.Serial(30)
		if !tr.IsSerial() {
			t.Fatalf("Generator.Serial produced non-serial trace: %s", tr)
		}
	}
}

func TestGeneratorSCIsSC(t *testing.T) {
	g := NewGenerator(Params{Procs: 3, Blocks: 2, Values: 2}, 43)
	for i := 0; i < 20; i++ {
		tr := g.SC(12)
		if !HasSerialReordering(tr) {
			t.Fatalf("Generator.SC produced non-SC trace: %s", tr)
		}
	}
}

func TestGeneratorMutateChangesALoad(t *testing.T) {
	g := NewGenerator(Params{Procs: 2, Blocks: 2, Values: 3}, 44)
	tr := g.SC(10)
	m, ok := g.Mutate(tr)
	if !ok {
		t.Skip("no loads in generated trace")
	}
	diff := 0
	for i := range tr {
		if tr[i] != m[i] {
			diff++
			if !tr[i].IsLoad() {
				t.Error("mutation touched a store")
			}
		}
	}
	if diff != 1 {
		t.Errorf("mutation changed %d ops, want 1", diff)
	}
}

func TestGeneratorMutateNoLoads(t *testing.T) {
	g := NewGenerator(Params{Procs: 1, Blocks: 1, Values: 1}, 45)
	tr := Trace{ST(1, 1, 1)}
	m, ok := g.Mutate(tr)
	if ok {
		t.Error("Mutate reported success with no loads")
	}
	if len(m) != 1 || m[0] != tr[0] {
		t.Error("Mutate should return an unchanged clone")
	}
}

func TestGeneratorMutateSingleValueDomain(t *testing.T) {
	g := NewGenerator(Params{Procs: 1, Blocks: 1, Values: 1}, 46)
	tr := Trace{ST(1, 1, 1), LD(1, 1, 1)}
	m, ok := g.Mutate(tr)
	if !ok {
		t.Fatal("Mutate failed")
	}
	if m[1].Value == tr[1].Value {
		t.Error("Mutate did not change the load value in a 1-value domain")
	}
}
