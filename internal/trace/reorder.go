package trace

import (
	"encoding/binary"
)

// FindSerialReordering searches exhaustively for a serial reordering of the
// trace, returning it and true if one exists. This is the exact decision
// procedure for the VSC problem of Gibbons & Korach ("Testing shared
// memories", SICOMP 1997), which the paper's Section 5 proposes as the
// per-run testing baseline. The problem is NP-hard in general; this
// implementation is a memoized depth-first search over (per-processor
// frontier, memory contents) states and is exponential in the worst case —
// exactly the blow-up the finite-state observer/checker method avoids.
//
// A nil trace (length 0) trivially has the empty serial reordering.
func FindSerialReordering(t Trace) (Reordering, bool) {
	byProc := t.ByProc()
	procs := len(byProc) - 1
	if procs < 0 {
		procs = 0
	}
	blocks := t.Blocks()

	s := searcher{
		trace:  t,
		byProc: byProc,
		blocks: blocks,
		front:  make([]int, procs+1),
		mem:    make([]Value, blocks+1),
		dead:   make(map[string]struct{}),
		chosen: make(Reordering, 0, len(t)),
		keybuf: make([]byte, 0, 4*(procs+1+blocks+1)),
	}
	for i := range s.mem {
		s.mem[i] = Bottom
	}
	if s.search() {
		out := make(Reordering, len(s.chosen))
		copy(out, s.chosen)
		return out, true
	}
	return nil, false
}

// HasSerialReordering reports whether the trace is sequentially consistent,
// i.e. some serial reordering exists.
func HasSerialReordering(t Trace) bool {
	_, ok := FindSerialReordering(t)
	return ok
}

type searcher struct {
	trace  Trace
	byProc [][]int
	blocks int

	front  []int   // next unscheduled index into byProc[p], per processor
	mem    []Value // current memory contents per block (index 0 unused)
	placed int
	chosen Reordering

	dead   map[string]struct{} // states proven to admit no completion
	keybuf []byte
}

// key encodes the search state: the per-processor frontier plus memory
// contents. Two search paths reaching the same key have identical futures,
// so failed states are memoized in s.dead.
func (s *searcher) key() string {
	buf := s.keybuf[:0]
	var tmp [4]byte
	for _, f := range s.front[1:] {
		binary.LittleEndian.PutUint32(tmp[:], uint32(f))
		buf = append(buf, tmp[:]...)
	}
	for _, v := range s.mem[1:] {
		binary.LittleEndian.PutUint32(tmp[:], uint32(v))
		buf = append(buf, tmp[:]...)
	}
	s.keybuf = buf
	return string(buf)
}

func (s *searcher) search() bool {
	if s.placed == len(s.trace) {
		return true
	}
	k := s.key()
	if _, bad := s.dead[k]; bad {
		return false
	}
	for p := 1; p < len(s.byProc); p++ {
		idx := s.front[p]
		if idx >= len(s.byProc[p]) {
			continue
		}
		pos := s.byProc[p][idx]
		op := s.trace[pos]
		var saved Value
		switch op.Kind {
		case Load:
			if s.mem[op.Block] != op.Value {
				continue // not schedulable now
			}
		case Store:
			saved = s.mem[op.Block]
			s.mem[op.Block] = op.Value
		}
		s.front[p]++
		s.placed++
		s.chosen = append(s.chosen, pos)
		if s.search() {
			return true
		}
		s.chosen = s.chosen[:len(s.chosen)-1]
		s.placed--
		s.front[p]--
		if op.Kind == Store {
			s.mem[op.Block] = saved
		}
	}
	s.dead[k] = struct{}{}
	return false
}

// StoreOrder extracts, from a serial reordering, the per-block total order
// of store operations it induces. The result maps each block ID to the
// 0-based trace positions of its stores, in serial order. This is the ST
// order that the constraint graph of Section 3.1 must witness.
func (r Reordering) StoreOrder(t Trace) map[BlockID][]int {
	out := make(map[BlockID][]int)
	for _, pos := range r {
		op := t[pos]
		if op.IsStore() {
			out[op.Block] = append(out[op.Block], pos)
		}
	}
	return out
}

// InheritanceMap extracts, from a serial reordering, the store each load
// inherits its value from: the result maps the trace position of each load
// with a non-Bottom value to the trace position of the most recent store to
// the same block in the reordered trace. Loads of Bottom are absent.
func (r Reordering) InheritanceMap(t Trace) map[int]int {
	out := make(map[int]int)
	lastStore := make(map[BlockID]int)
	for _, pos := range r {
		op := t[pos]
		switch op.Kind {
		case Store:
			lastStore[op.Block] = pos
		case Load:
			if op.Value != Bottom {
				if st, ok := lastStore[op.Block]; ok {
					out[pos] = st
				}
			}
		}
	}
	return out
}
