package trace

import (
	"testing"
)

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{ST(1, 2, 3), "ST(P1,B2,3)"},
		{LD(2, 1, Bottom), "LD(P2,B1,⊥)"},
		{LD(7, 9, 4), "LD(P7,B9,4)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if Load.String() != "LD" || Store.String() != "ST" {
		t.Fatalf("unexpected kind strings: %s %s", Load, Store)
	}
	if got := OpKind(9).String(); got != "OpKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestOpPredicates(t *testing.T) {
	if !ST(1, 1, 1).IsStore() || ST(1, 1, 1).IsLoad() {
		t.Error("store predicates wrong")
	}
	if !LD(1, 1, 1).IsLoad() || LD(1, 1, 1).IsStore() {
		t.Error("load predicates wrong")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{2, 2, 2}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("params %+v accepted, want error", bad)
		}
	}
}

func TestParamsContains(t *testing.T) {
	p := Params{Procs: 2, Blocks: 3, Values: 4}
	cases := []struct {
		op   Op
		want bool
	}{
		{ST(1, 1, 1), true},
		{ST(2, 3, 4), true},
		{ST(3, 1, 1), false},      // proc out of range
		{ST(1, 4, 1), false},      // block out of range
		{ST(1, 1, 5), false},      // value out of range
		{ST(1, 1, Bottom), false}, // stores never write ⊥
		{LD(1, 1, Bottom), true},  // loads may return ⊥
		{LD(2, 3, 4), true},
		{LD(0, 1, 1), false},
	}
	for _, c := range cases {
		if got := p.Contains(c.op); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestParamsString(t *testing.T) {
	if got := (Params{2, 3, 4}).String(); got != "p=2 b=3 v=4" {
		t.Errorf("Params.String() = %q", got)
	}
}

func TestTraceString(t *testing.T) {
	tr := Trace{ST(1, 1, 1), LD(2, 1, 1)}
	want := "ST(P1,B1,1), LD(P2,B1,1)"
	if got := tr.String(); got != want {
		t.Errorf("Trace.String() = %q, want %q", got, want)
	}
	if got := (Trace{}).String(); got != "" {
		t.Errorf("empty Trace.String() = %q", got)
	}
}

func TestTraceClone(t *testing.T) {
	tr := Trace{ST(1, 1, 1), LD(2, 1, 1)}
	cl := tr.Clone()
	cl[0].Value = 9
	if tr[0].Value != 1 {
		t.Error("Clone aliases underlying array")
	}
}

func TestTraceProcsBlocks(t *testing.T) {
	tr := Trace{ST(3, 2, 1), LD(1, 5, 1)}
	if tr.Procs() != 3 {
		t.Errorf("Procs() = %d, want 3", tr.Procs())
	}
	if tr.Blocks() != 5 {
		t.Errorf("Blocks() = %d, want 5", tr.Blocks())
	}
	if (Trace{}).Procs() != 0 || (Trace{}).Blocks() != 0 {
		t.Error("empty trace should report 0 procs/blocks")
	}
}

func TestByProc(t *testing.T) {
	tr := Trace{ST(1, 1, 1), ST(2, 1, 2), LD(1, 1, 2), LD(2, 1, 2)}
	bp := tr.ByProc()
	if len(bp) != 3 {
		t.Fatalf("ByProc length = %d, want 3", len(bp))
	}
	if len(bp[1]) != 2 || bp[1][0] != 0 || bp[1][1] != 2 {
		t.Errorf("proc 1 positions = %v", bp[1])
	}
	if len(bp[2]) != 2 || bp[2][0] != 1 || bp[2][1] != 3 {
		t.Errorf("proc 2 positions = %v", bp[2])
	}
}
