package trace

import "fmt"

// IsSerial reports whether the trace is a serial trace per Section 2.2:
// every load returns the value of the most recent preceding store to the
// same block, or Bottom if there is no preceding store to that block.
//
// The check is linear in the trace length and allocates one cell per block
// mentioned.
func (t Trace) IsSerial() bool {
	return t.SerialViolation() < 0
}

// SerialViolation returns the index of the first operation that violates
// serial-trace semantics, or -1 if the trace is serial.
func (t Trace) SerialViolation() int {
	mem := make(map[BlockID]Value)
	for i, op := range t {
		switch op.Kind {
		case Store:
			mem[op.Block] = op.Value
		case Load:
			if cur, ok := mem[op.Block]; ok {
				if op.Value != cur {
					return i
				}
			} else if op.Value != Bottom {
				return i
			}
		}
	}
	return -1
}

// Reordering is a permutation Π of trace positions: Reordering[j] = π(j+1)-1
// is the (0-based) trace position of the j-th operation of the reordered
// trace T' = t_{π(1)}, ..., t_{π(k)}.
type Reordering []int

// Apply returns the reordered trace T'. It panics if the reordering's
// length does not match the trace, mirroring a programming error rather
// than a verification failure.
func (r Reordering) Apply(t Trace) Trace {
	if len(r) != len(t) {
		panic(fmt.Sprintf("trace: reordering length %d != trace length %d", len(r), len(t)))
	}
	out := make(Trace, len(t))
	for j, pos := range r {
		out[j] = t[pos]
	}
	return out
}

// IsPermutation reports whether the reordering is a valid permutation of
// 0..len(r)-1.
func (r Reordering) IsPermutation() bool {
	seen := make([]bool, len(r))
	for _, pos := range r {
		if pos < 0 || pos >= len(r) || seen[pos] {
			return false
		}
		seen[pos] = true
	}
	return true
}

// PreservesProgramOrder reports whether the reordering keeps each
// processor's operations in their original relative order (the first
// condition on a serial reordering in Section 2.2).
func (r Reordering) PreservesProgramOrder(t Trace) bool {
	if len(r) != len(t) {
		return false
	}
	last := make(map[ProcID]int) // last trace position seen per processor
	for _, pos := range r {
		op := t[pos]
		if prev, ok := last[op.Proc]; ok && prev > pos {
			return false
		}
		last[op.Proc] = pos
	}
	return true
}

// IsSerialReordering reports whether r is a serial reordering of t: a
// permutation that preserves per-processor program order and whose
// application yields a serial trace.
func (r Reordering) IsSerialReordering(t Trace) bool {
	return len(r) == len(t) && r.IsPermutation() &&
		r.PreservesProgramOrder(t) && r.Apply(t).IsSerial()
}
