// Package trace defines memory operations, protocol traces, and the
// semantics of serial traces and serial reorderings from Section 2 of
// Condon & Hu, "Automatable Verification of Sequential Consistency"
// (SPAA 2001).
//
// A trace is the subsequence of LD and ST operations of a protocol run. A
// trace is sequentially consistent if some permutation of it preserves each
// processor's program order and is a serial trace (every load returns the
// value of the most recent store to the same block, or Bottom if none).
// This package provides both the linear-time serial-trace check and the
// exact (exponential-time) search for a serial reordering, which serves as
// the Gibbons–Korach baseline against which the paper's finite-state
// observer/checker method is evaluated.
package trace

import (
	"fmt"
	"strings"
)

// OpKind distinguishes load and store operations.
type OpKind uint8

const (
	// Load is a LD(P,B,V) operation: processor P loaded value V from block B.
	Load OpKind = iota
	// Store is a ST(P,B,V) operation: processor P stored value V to block B.
	Store
)

// String returns the paper's mnemonic for the operation kind.
func (k OpKind) String() string {
	switch k {
	case Load:
		return "LD"
	case Store:
		return "ST"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Bottom is the initial value of every block, written ⊥ in the paper. A
// load may legally return Bottom only if no store to its block precedes it
// in the serial reordering.
const Bottom Value = 0

// ProcID identifies a processor, numbered 1..p.
type ProcID int

// BlockID identifies a memory block, numbered 1..b.
type BlockID int

// Value is a data value, numbered 1..v; Value 0 is Bottom (⊥).
type Value int

// Op is a single memory operation LD(P,B,V) or ST(P,B,V).
type Op struct {
	Kind  OpKind
	Proc  ProcID
	Block BlockID
	Value Value
}

// LD constructs a load operation.
func LD(p ProcID, b BlockID, v Value) Op { return Op{Kind: Load, Proc: p, Block: b, Value: v} }

// ST constructs a store operation.
func ST(p ProcID, b BlockID, v Value) Op { return Op{Kind: Store, Proc: p, Block: b, Value: v} }

// IsLoad reports whether the operation is a load.
func (o Op) IsLoad() bool { return o.Kind == Load }

// IsStore reports whether the operation is a store.
func (o Op) IsStore() bool { return o.Kind == Store }

// String renders the operation in the paper's notation, e.g. "ST(P1,B2,3)".
// Bottom values render as "⊥".
func (o Op) String() string {
	val := "⊥"
	if o.Value != Bottom {
		val = fmt.Sprintf("%d", o.Value)
	}
	return fmt.Sprintf("%s(P%d,B%d,%s)", o.Kind, o.Proc, o.Block, val)
}

// Params bundles the protocol constants p (processors), b (blocks) and
// v (values) from the protocol tuple of Section 2.1.
type Params struct {
	Procs  int // p: number of processors, IDs 1..p
	Blocks int // b: number of memory blocks, IDs 1..b
	Values int // v: number of data values, 1..v (0 is Bottom)
}

// Validate reports an error if any constant is non-positive.
func (pr Params) Validate() error {
	if pr.Procs < 1 || pr.Blocks < 1 || pr.Values < 1 {
		return fmt.Errorf("trace: invalid params p=%d b=%d v=%d (all must be >= 1)", pr.Procs, pr.Blocks, pr.Values)
	}
	return nil
}

// Contains reports whether op draws its processor, block and value from the
// ranges allowed by the parameters. Loads may additionally return Bottom.
func (pr Params) Contains(op Op) bool {
	if op.Proc < 1 || int(op.Proc) > pr.Procs {
		return false
	}
	if op.Block < 1 || int(op.Block) > pr.Blocks {
		return false
	}
	if op.Value < 0 || int(op.Value) > pr.Values {
		return false
	}
	if op.IsStore() && op.Value == Bottom {
		return false // stores inject real values only; ⊥ is never stored
	}
	return true
}

// String renders the parameter triple.
func (pr Params) String() string {
	return fmt.Sprintf("p=%d b=%d v=%d", pr.Procs, pr.Blocks, pr.Values)
}

// Trace is a finite sequence of LD and ST operations — the projection of a
// protocol run onto its memory actions.
type Trace []Op

// String renders the trace as a comma-separated operation list.
func (t Trace) String() string {
	var sb strings.Builder
	for i, op := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(op.String())
	}
	return sb.String()
}

// Clone returns a deep copy of the trace.
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	copy(out, t)
	return out
}

// Procs returns the largest processor ID mentioned, or 0 for an empty trace.
func (t Trace) Procs() int {
	max := 0
	for _, op := range t {
		if int(op.Proc) > max {
			max = int(op.Proc)
		}
	}
	return max
}

// Blocks returns the largest block ID mentioned, or 0 for an empty trace.
func (t Trace) Blocks() int {
	max := 0
	for _, op := range t {
		if int(op.Block) > max {
			max = int(op.Block)
		}
	}
	return max
}

// Values returns the largest data value mentioned, or 0 for a trace of
// ⊥-loads only (or an empty trace).
func (t Trace) Values() int {
	max := 0
	for _, op := range t {
		if int(op.Value) > max {
			max = int(op.Value)
		}
	}
	return max
}

// Params returns the tightest parameter triple containing the trace: the
// maxima of its processor, block and value ranges. An empty trace yields
// the zero Params (which disables the checker's range check).
func (t Trace) Params() Params {
	return Params{Procs: t.Procs(), Blocks: t.Blocks(), Values: t.Values()}
}

// ByProc splits the trace into per-processor program orders. The slice is
// indexed by processor ID; index 0 is unused. Each entry holds the trace
// positions (0-based) of that processor's operations, in trace order.
func (t Trace) ByProc() [][]int {
	out := make([][]int, t.Procs()+1)
	for i, op := range t {
		out[op.Proc] = append(out[op.Proc], i)
	}
	return out
}
