package trace

import "testing"

func TestIsSerial(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		want bool
	}{
		{"empty", Trace{}, true},
		{"single store", Trace{ST(1, 1, 1)}, true},
		{"load of bottom first", Trace{LD(1, 1, Bottom)}, true},
		{"load of value with no store", Trace{LD(1, 1, 1)}, false},
		{"store then matching load", Trace{ST(1, 1, 1), LD(2, 1, 1)}, true},
		{"store then stale load", Trace{ST(1, 1, 1), LD(2, 1, 2)}, false},
		{"overwrite respected", Trace{ST(1, 1, 1), ST(1, 1, 2), LD(2, 1, 2)}, true},
		{"overwrite violated", Trace{ST(1, 1, 1), ST(1, 1, 2), LD(2, 1, 1)}, false},
		{"bottom after store", Trace{ST(1, 1, 1), LD(2, 1, Bottom)}, false},
		{"different blocks independent", Trace{ST(1, 1, 1), LD(2, 2, Bottom), LD(2, 1, 1)}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.tr.IsSerial(); got != c.want {
				t.Errorf("IsSerial(%s) = %v, want %v", c.tr, got, c.want)
			}
		})
	}
}

func TestSerialViolationIndex(t *testing.T) {
	tr := Trace{ST(1, 1, 1), LD(2, 1, 1), LD(2, 1, 2)}
	if got := tr.SerialViolation(); got != 2 {
		t.Errorf("SerialViolation = %d, want 2", got)
	}
	if got := (Trace{ST(1, 1, 1)}).SerialViolation(); got != -1 {
		t.Errorf("SerialViolation of serial trace = %d, want -1", got)
	}
}

func TestReorderingApply(t *testing.T) {
	tr := Trace{ST(1, 1, 1), LD(2, 1, 1)}
	r := Reordering{1, 0}
	got := r.Apply(tr)
	if got[0] != tr[1] || got[1] != tr[0] {
		t.Errorf("Apply = %v", got)
	}
}

func TestReorderingApplyPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Reordering{0}.Apply(Trace{ST(1, 1, 1), LD(1, 1, 1)})
}

func TestReorderingIsPermutation(t *testing.T) {
	if !(Reordering{2, 0, 1}).IsPermutation() {
		t.Error("valid permutation rejected")
	}
	if (Reordering{0, 0, 1}).IsPermutation() {
		t.Error("duplicate accepted")
	}
	if (Reordering{0, 3, 1}).IsPermutation() {
		t.Error("out-of-range accepted")
	}
	if !(Reordering{}).IsPermutation() {
		t.Error("empty permutation rejected")
	}
}

func TestPreservesProgramOrder(t *testing.T) {
	tr := Trace{ST(1, 1, 1), ST(1, 1, 2), LD(2, 1, 1)}
	if !(Reordering{0, 2, 1}).PreservesProgramOrder(tr) {
		t.Error("cross-processor swap should preserve program order")
	}
	if (Reordering{1, 0, 2}).PreservesProgramOrder(tr) {
		t.Error("same-processor swap should violate program order")
	}
	if (Reordering{0, 1}).PreservesProgramOrder(tr) {
		t.Error("length mismatch should fail")
	}
}

func TestIsSerialReordering(t *testing.T) {
	// ST(P1,B1,1), LD(P2,B1,⊥): only serial order puts the load first.
	tr := Trace{ST(1, 1, 1), LD(2, 1, Bottom)}
	if (Reordering{0, 1}).IsSerialReordering(tr) {
		t.Error("identity should not be serial here")
	}
	if !(Reordering{1, 0}).IsSerialReordering(tr) {
		t.Error("swapped order should be a serial reordering")
	}
}
