package mc

import (
	"fmt"
	"testing"

	"scverify/internal/protocols/serial"
	"scverify/internal/trace"
)

// TestCounterexampleReplayEquivalence checks that a counterexample found
// by the parent-pointer path reconstruction replays to the same rejection
// at the same path: ReplayProduct must reject exactly at the final index
// of the reported path, with the same error text. This pins the replay
// path as a faithful serialization of the violating run.
func TestCounterexampleReplayEquivalence(t *testing.T) {
	p := brokenSerial{serial.New(trace.Params{Procs: 2, Blocks: 1, Values: 1})}
	res := Verify(p, Options{Workers: 4})
	if res.Verdict != Violated {
		t.Fatalf("verdict = %v, want Violated", res.Verdict)
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("no counterexample")
	}
	prod, viol, err := ReplayProduct(p, ProductOptions{}, res.Counterexample)
	if err != nil {
		t.Fatalf("replay structural error: %v", err)
	}
	if viol == nil {
		// The path itself stepped cleanly; the rejection must then be a
		// finish-check rejection at the final state.
		if prod == nil {
			t.Fatal("replay returned neither product nor violation")
		}
		ferr := prod.FinishCheck()
		if ferr == nil {
			t.Fatalf("replay of counterexample %v accepted", res.Counterexample)
		}
		if ferr.Error() != res.Err.Error() {
			t.Fatalf("replay finish rejection %q != reported %q", ferr, res.Err)
		}
		return
	}
	if got, want := fmt.Sprint(viol.Path), fmt.Sprint(res.Counterexample); got != want {
		t.Fatalf("replay rejected at %s, reported counterexample %s", got, want)
	}
	if viol.Err.Error() != res.Err.Error() {
		t.Fatalf("replay rejection %q != reported %q", viol.Err, res.Err)
	}
}

// TestExactAndAuditModesAgree runs the same protocol under the default
// fingerprint table, the exact-key fallback, and the audit mode, and
// requires identical state and transition counts (and zero audited
// collisions on a space this small).
func TestExactAndAuditModesAgree(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 1, Values: 1})
	fp := Verify(p, Options{Workers: 2})
	exact := Verify(p, Options{Workers: 2, ExactKeys: true})
	audit := Verify(p, Options{Workers: 2, AuditCollisions: true})
	for name, r := range map[string]Result{"fp": fp, "exact": exact, "audit": audit} {
		if r.Verdict != Verified {
			t.Fatalf("%s verdict = %v, want Verified", name, r.Verdict)
		}
	}
	if fp.States != exact.States || fp.States != audit.States {
		t.Fatalf("state counts diverge: fp=%d exact=%d audit=%d", fp.States, exact.States, audit.States)
	}
	if fp.Transitions != exact.Transitions || fp.Transitions != audit.Transitions {
		t.Fatalf("transition counts diverge: fp=%d exact=%d audit=%d", fp.Transitions, exact.Transitions, audit.Transitions)
	}
	if audit.Collisions != 0 {
		t.Fatalf("audit reported %d collisions on a %d-state space", audit.Collisions, audit.States)
	}
}

// TestOwnerShardDeterministic pins that shard ownership is a pure
// function of (fingerprint, shard identity list) — the property every
// grid participant relies on — and that the partition is total.
func TestOwnerShardDeterministic(t *testing.T) {
	ids := []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"}
	h1 := ShardHashes(ids)
	h2 := ShardHashes(append([]string(nil), ids...))
	counts := make([]int, len(ids))
	for i := 0; i < 10000; i++ {
		fp := Fingerprint(fmt.Sprintf("state-%d", i))
		a, b := OwnerShard(fp, h1), OwnerShard(fp, h2)
		if a != b {
			t.Fatalf("ownership not deterministic: %d vs %d", a, b)
		}
		counts[a]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns no states out of 10000 — partition degenerate: %v", i, counts)
		}
	}
}

// BenchmarkVisitedClaim is the regression guard for the visited-set size
// counter (satellite of the scmc PR): the counter is an atomic.Int64 so
// concurrent claims on distinct shards never serialize through a shared
// mutex. Run with -cpu=1,4 to see the scaling; the old mu-guarded plain
// int64 flatlined here because every claim, regardless of shard, took the
// same counter lock.
func BenchmarkVisitedClaim(b *testing.B) {
	for _, mode := range []string{"fp", "exact"} {
		b.Run(mode, func(b *testing.B) {
			v := newVisitedSet(mode == "exact", false, false)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				var buf [16]byte
				for pb.Next() {
					i++
					n := copy(buf[:], fmt.Sprintf("k%d", i))
					key := string(buf[:n])
					v.claim(key, Fingerprint(key), 0)
				}
			})
		})
	}
}
