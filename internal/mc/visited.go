package mc

import (
	"sync"
	"sync/atomic"
)

// The visited set deduplicates product states. Two implementations share
// one interface: the default fingerprint table keys on the 64-bit state
// fingerprint (8 bytes per state instead of the full canonical key, the
// memory-headroom mode), and the exact table keys on the canonical key
// bytes (the fallback that cannot alias). Fingerprinting is sound for
// rejection — a violation is always re-validated by concrete replay — but
// a fingerprint collision can silently merge two distinct states and hide
// part of the space from a "verified" claim; the audit mode retains exact
// keys alongside fingerprints purely to count genuine collisions, so a
// run can quantify that risk without giving up the compact table.
//
// The size counter is an atomic.Int64. The previous implementation
// guarded a plain int64 with its own mutex, which serialized every claim
// from all 64 shards through one lock; see BenchmarkVisitedClaim for the
// regression guard (the atomic version scales with shards, the mutex
// version flatlined).
//
// Depth-bounded runs additionally track the best (smallest) known depth
// per state and re-admit a state whose depth improves: without the old
// level barrier, a state can be discovered first via a long path, and
// pruning at MaxDepth from that depth would nondeterministically truncate
// the bounded state space. Min-depth relaxation restores exactly the
// BFS-bounded set. The counted bit makes the transition counter
// deterministic too: a state's fan-out is charged the first time it is
// expanded, no matter how many depth improvements re-expand it.
type visitedSet interface {
	// claim records key (fingerprint fp) discovered at depth. fresh is
	// true on first sighting (the state counts toward size); expand is
	// true when the caller should (re-)expand: on first sighting, or when
	// the depth improved on a bounded run.
	claim(key string, fp uint64, depth int) (fresh, expand bool)
	// countExpand consumes the state's once-only transition-count grant;
	// true if this caller should charge the fan-out.
	countExpand(key string, fp uint64) bool
	size() int64
	collisions() int64
}

const visitedShards = 64

// visit packs the per-state record: best known depth in the low 31 bits,
// the expansion-counted grant in bit 31.
type visit uint32

const visitCounted visit = 1 << 31

func (v visit) depth() int32  { return int32(v &^ visitCounted) }
func (v visit) counted() bool { return v&visitCounted != 0 }
func mkVisit(depth int) visit { return visit(depth) &^ visitCounted }

// exactVisited is the exact-key fallback: canonical key bytes, no
// aliasing possible.
type exactVisited struct {
	bounded bool
	count   atomic.Int64
	shards  [visitedShards]struct {
		mu sync.Mutex
		m  map[string]visit
	}
}

func newExactVisited(bounded bool) *exactVisited {
	v := &exactVisited{bounded: bounded}
	for i := range v.shards {
		v.shards[i].m = make(map[string]visit)
	}
	return v
}

func (v *exactVisited) claim(key string, fp uint64, depth int) (fresh, expand bool) {
	s := &v.shards[fp%visitedShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[key]
	if !ok {
		s.m[key] = mkVisit(depth)
		v.count.Add(1)
		return true, true
	}
	if v.bounded && int32(depth) < cur.depth() {
		s.m[key] = mkVisit(depth) | (cur & visitCounted)
		return false, true
	}
	return false, false
}

func (v *exactVisited) countExpand(key string, fp uint64) bool {
	s := &v.shards[fp%visitedShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[key]
	if !ok || cur.counted() {
		return false
	}
	s.m[key] = cur | visitCounted
	return true
}

func (v *exactVisited) size() int64       { return v.count.Load() }
func (v *exactVisited) collisions() int64 { return 0 }

// fpVisited is the default 64-bit fingerprint table. In audit mode it
// additionally retains the first exact key seen per fingerprint and
// counts claims whose fingerprint was already taken by a different key —
// a genuine collision that would merge distinct states.
type fpVisited struct {
	bounded bool
	audit   bool
	count   atomic.Int64
	colls   atomic.Int64
	shards  [visitedShards]struct {
		mu   sync.Mutex
		m    map[uint64]visit
		keys map[uint64]string // audit mode only
	}
}

func newFPVisited(bounded, audit bool) *fpVisited {
	v := &fpVisited{bounded: bounded, audit: audit}
	for i := range v.shards {
		v.shards[i].m = make(map[uint64]visit)
		if audit {
			v.shards[i].keys = make(map[uint64]string)
		}
	}
	return v
}

func (v *fpVisited) claim(key string, fp uint64, depth int) (fresh, expand bool) {
	s := &v.shards[fp%visitedShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[fp]
	if !ok {
		s.m[fp] = mkVisit(depth)
		if v.audit {
			s.keys[fp] = key
		}
		v.count.Add(1)
		return true, true
	}
	if v.audit && s.keys[fp] != key {
		v.colls.Add(1)
	}
	if v.bounded && int32(depth) < cur.depth() {
		s.m[fp] = mkVisit(depth) | (cur & visitCounted)
		return false, true
	}
	return false, false
}

func (v *fpVisited) countExpand(key string, fp uint64) bool {
	s := &v.shards[fp%visitedShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[fp]
	if !ok || cur.counted() {
		return false
	}
	s.m[fp] = cur | visitCounted
	return true
}

func (v *fpVisited) size() int64       { return v.count.Load() }
func (v *fpVisited) collisions() int64 { return v.colls.Load() }

// newVisitedSet picks the implementation for the requested mode.
func newVisitedSet(exact, audit, bounded bool) visitedSet {
	if exact {
		return newExactVisited(bounded)
	}
	return newFPVisited(bounded, audit)
}
