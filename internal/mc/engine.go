package mc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scverify/internal/protocol"
)

// The Explorer is the shared exploration engine under both the
// single-node Verify and the distributed scmc fabric. It replaces the old
// level-synchronized BFS with a shared-queue worker pool: workers pull
// ready states, expand them, and feed successors straight back — no
// barrier between depths, so no worker idles waiting for the slowest
// expansion of a level.
//
// In distributed mode the engine is one shard of a grid. Ownership of the
// visited set is partitioned by rendezvous hashing over the shard
// identity list (OwnerShard), and cross-shard coordination rides four
// item kinds relayed through the coordinator:
//
//   - ItemClaim: this shard produced a successor owned elsewhere. The
//     concrete state stays parked at the producer; only the fingerprint
//     (plus the exact key in exact/audit modes) and depth travel to the
//     owner, which adjudicates it against its visited shard.
//   - ItemReply: the owner's adjudication comes back; the producer drops
//     the parked state (dup) or expands it (fresh/improved) — so in
//     steady state, expansion work stays where states are materialized
//     and only O(bytes) claims cross the wire.
//   - ItemWork: a state shipped as a transition-index path (the seed, and
//     queue migration between shards); the receiver replays it.
//   - ItemShed: the coordinator's work-stealing lever — "move up to N of
//     your ready queue to shard T" — which spreads expansion work when
//     claims alone would concentrate it at the seeding shard.
//
// Every delivered and emitted item is counted (itemsIn/itemsOut, guarded
// by mu together with pending so a Report is a consistent credit
// snapshot); the coordinator's credit-counting quiescence matches those
// counters against its own routing totals, and only a fully matched,
// all-idle grid may yield a verified verdict.
type Explorer struct {
	p  protocol.Protocol
	po ProductOptions

	cfg         ExplorerConfig
	shardHashes []uint64 // nil for single-shard: everything is local
	visited     visitedSet
	obsVisited  visitedSet // TrackObserverStates only
	k           int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	qhead    int
	pending  int64 // queued + in-flight + parked work units, guarded by mu
	itemsIn  int64 // delivered items, guarded by mu (credit counter)
	itemsOut int64 // emitted items, guarded by mu (credit counter)
	parked   map[uint64]*Product
	nextSeq  uint64
	outBuf   []Item
	stopped  bool
	capped   bool
	depthOut bool // some state was left unexpanded by MaxDepth
	failed   error
	viol     *Violation

	stopFlag    atomic.Bool
	transitions atomic.Int64
	peakIDs     atomic.Int64
	maxDepth    atomic.Int64

	wg sync.WaitGroup
}

// ExplorerConfig wires one engine instance. Workers, MaxStates and
// MaxDepth mirror Options; the rest is the distributed surface.
type ExplorerConfig struct {
	// Shard is this engine's index in ShardIDs.
	Shard int
	// ShardIDs is the ordered shard identity list (backend addresses) the
	// ownership partition is computed over. Empty or length 1 means a
	// single-shard (fully local) exploration.
	ShardIDs []string
	// Workers is the number of expansion goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxStates caps fresh claims in this engine's visited shard; 0 means
	// 4M. Hitting the cap stops the engine (verdict degrades to
	// incomplete, never to a wrong verified).
	MaxStates int
	// MaxDepth bounds run length; 0 means unbounded. Bounded runs use
	// min-depth relaxation so the explored set equals the BFS-bounded set
	// regardless of worker count or shard interleaving.
	MaxDepth int
	// Exact switches the visited set to exact canonical keys; Audit keeps
	// fingerprints but retains keys to count genuine collisions.
	Exact bool
	Audit bool
	// StepDelay sleeps this long before each state expansion — the bench
	// harness's simulated per-state latency (see cmd/scverify -bench).
	StepDelay time.Duration
	// TrackObserverStates additionally counts distinct observer-component
	// states, for the Section 4.4 size-bound experiment.
	TrackObserverStates bool

	// Emit receives batches of outgoing cross-shard items. Required when
	// len(ShardIDs) > 1; items are relayed to Deliver on the owning
	// shard's engine by the coordinator.
	Emit func(items []Item)
	// OnViolation fires once, on the first rejection this engine finds.
	OnViolation func(path []int, err error)
	// OnIdle fires whenever the engine's pending count reaches zero, after
	// buffered items have been emitted — the hook distributed sessions use
	// to publish a credit report.
	OnIdle func()
}

// ItemKind tags a cross-shard item.
type ItemKind uint8

const (
	// ItemWork ships a state as a transition-index path to replay.
	ItemWork ItemKind = iota
	// ItemClaim asks a state's owner to adjudicate its fingerprint.
	ItemClaim
	// ItemReply returns the owner's adjudication to the producer.
	ItemReply
	// ItemShed asks a shard to migrate ready queue entries to another.
	ItemShed
)

// Act encodes an adjudication outcome — what the holder of the concrete
// state should do with it. ActClaim is the pre-adjudication state of a
// work item (the seed): claim it with its owner first.
type Act uint8

const (
	ActClaim       Act = iota // not yet adjudicated
	ActDup                    // covered; drop
	ActFreshFinish            // fresh at the depth bound: finish-check only
	ActFreshExpand            // fresh: finish-check, then expand (counted)
	ActExpandCount            // depth improved: re-expand, charge fan-out
	ActExpand                 // depth improved: re-expand, already charged
)

// Item is one unit of cross-shard coordination. Peer is the destination
// shard when emitted and the source shard when delivered (the coordinator
// rewrites it in flight).
type Item struct {
	Kind ItemKind
	Peer int

	// ItemWork: the path to replay and what to do with the result.
	Act  Act
	Path []int

	// ItemClaim: producer-chosen correlation tag, fingerprint, discovery
	// depth, and — in exact/audit modes — the canonical key bytes.
	// ItemReply: Seq echoes the claim, Act carries the adjudication.
	Seq   uint64
	FP    uint64
	Depth int
	Key   []byte

	// ItemShed: migrate up to N ready entries to shard Target.
	N      int
	Target int
}

// Report is a consistent snapshot of one engine's counters — the credit
// accounting the coordinator's quiescence detection runs on, plus the
// exploration totals the final Result aggregates.
type Report struct {
	Shard       int
	ItemsIn     int64
	ItemsOut    int64
	States      int64
	Transitions int64
	PeakIDs     int
	Depth       int
	Pending     int64
	QueueLen    int64
	Collisions  int64
	Capped      bool
	DepthCapped bool
	Failed      bool
	Err         string
}

// job is one queued unit: a concrete product state, or a path to replay.
type job struct {
	prod *Product
	path []int
	act  Act
}

// emitBatch is how many buffered outgoing items force a flush.
const emitBatch = 128

// NewExplorer builds and starts one exploration engine.
func NewExplorer(p protocol.Protocol, po ProductOptions, cfg ExplorerConfig) (*Explorer, error) {
	if n := len(cfg.ShardIDs); n > 1 {
		if cfg.Shard < 0 || cfg.Shard >= n {
			return nil, fmt.Errorf("mc: shard %d outside 0..%d", cfg.Shard, n-1)
		}
		if cfg.Emit == nil {
			return nil, errors.New("mc: multi-shard explorer needs an Emit hook")
		}
	} else {
		cfg.Shard = 0
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 4 << 20
	}
	x := &Explorer{
		p:       p,
		po:      po,
		cfg:     cfg,
		visited: newVisitedSet(cfg.Exact, cfg.Audit, cfg.MaxDepth > 0),
		parked:  make(map[uint64]*Product),
	}
	if len(cfg.ShardIDs) > 1 {
		x.shardHashes = ShardHashes(cfg.ShardIDs)
	}
	if cfg.TrackObserverStates {
		x.obsVisited = newExactVisited(false)
	}
	x.k = NewProduct(p, po).Obs.K()
	x.cond = sync.NewCond(&x.mu)
	for i := 0; i < cfg.Workers; i++ {
		x.wg.Add(1)
		go x.worker()
	}
	return x, nil
}

// K is the checker bandwidth bound of the product this engine explores —
// the value a distributed hello must agree on.
func (x *Explorer) K() int { return x.k }

// Seed enqueues the initial product state. In a grid, only the
// coordinator seeds (one work item routed to shard 0); locally, Verify
// calls it once.
func (x *Explorer) Seed() {
	x.Deliver([]Item{{Kind: ItemWork, Act: ActClaim}})
}

// Deliver feeds a batch of items from the coordinator (or, locally, the
// seed). Claim adjudication happens inline — it is a map operation — and
// everything else is queued for the worker pool.
func (x *Explorer) Deliver(items []Item) {
	for i := range items {
		it := &items[i]
		if x.stopFlag.Load() {
			x.mu.Lock()
			x.itemsIn++
			x.mu.Unlock()
			continue
		}
		switch it.Kind {
		case ItemWork:
			x.mu.Lock()
			x.itemsIn++
			if it.Act != ActDup {
				x.pending++
				x.queue = append(x.queue, &job{path: it.Path, act: it.Act})
				x.cond.Signal()
			}
			x.mu.Unlock()
		case ItemClaim:
			if (x.cfg.Exact || x.cfg.Audit) && len(it.Key) == 0 {
				x.fail(errors.New("mc: claim without key in exact-key mode"))
				x.mu.Lock()
				x.itemsIn++
				x.mu.Unlock()
				continue
			}
			a := x.adjudicate(string(it.Key), it.FP, it.Depth)
			x.mu.Lock()
			x.itemsIn++
			out := x.enqueueOutLocked(Item{Kind: ItemReply, Peer: it.Peer, Seq: it.Seq, Act: a})
			x.mu.Unlock()
			x.emit(out)
		case ItemReply:
			x.mu.Lock()
			x.itemsIn++
			prod := x.parked[it.Seq]
			delete(x.parked, it.Seq)
			if prod != nil {
				if it.Act == ActDup || it.Act == ActClaim {
					x.pending--
					if x.pending == 0 {
						x.cond.Broadcast()
					}
				} else {
					x.queue = append(x.queue, &job{prod: prod, act: it.Act})
					x.cond.Signal()
				}
			}
			x.mu.Unlock()
		case ItemShed:
			x.mu.Lock()
			x.itemsIn++
			x.mu.Unlock()
			x.shed(it.N, it.Target)
		}
	}
	x.flushOut()
	x.maybeIdle()
}

// Report snapshots the counters. Pending, queue length and the credit
// counters are read under one lock so the snapshot is consistent: a
// report claiming pending==0 with itemsIn==N really did process all N
// delivered items before going idle.
func (x *Explorer) Report() Report {
	x.mu.Lock()
	r := Report{
		Shard:       x.cfg.Shard,
		ItemsIn:     x.itemsIn,
		ItemsOut:    x.itemsOut,
		Pending:     x.pending,
		QueueLen:    int64(len(x.queue) - x.qhead),
		Capped:      x.capped,
		DepthCapped: x.depthOut,
	}
	if x.failed != nil {
		r.Failed = true
		r.Err = x.failed.Error()
	}
	x.mu.Unlock()
	r.States = x.visited.size()
	r.Transitions = x.transitions.Load()
	r.PeakIDs = int(x.peakIDs.Load())
	r.Depth = int(x.maxDepth.Load())
	r.Collisions = x.visited.collisions()
	return r
}

// Wait blocks until the engine is idle (pending == 0) or stopped. For a
// single-shard engine, idle means exploration is complete.
func (x *Explorer) Wait() {
	x.mu.Lock()
	for !x.stopped && x.pending > 0 {
		x.cond.Wait()
	}
	x.mu.Unlock()
}

// Stop halts the engine and joins its workers. Idempotent.
func (x *Explorer) Stop() {
	x.halt()
	x.wg.Wait()
}

// Violation returns the first rejection found, if any.
func (x *Explorer) Violation() *Violation {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.viol
}

// Failed returns the engine's structural failure, if any (corrupt work
// item, mode mismatch) — an error, never a protocol verdict.
func (x *Explorer) Failed() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.failed
}

// ObserverStates reports the distinct observer-component state count when
// TrackObserverStates was set.
func (x *Explorer) ObserverStates() int {
	if x.obsVisited == nil {
		return 0
	}
	return int(x.obsVisited.size())
}

func (x *Explorer) worker() {
	defer x.wg.Done()
	for {
		x.mu.Lock()
		for !x.stopped && x.qhead >= len(x.queue) {
			x.cond.Wait()
		}
		if x.stopped {
			x.mu.Unlock()
			return
		}
		j := x.queue[x.qhead]
		x.queue[x.qhead] = nil
		x.qhead++
		if x.qhead > 256 && x.qhead*2 >= len(x.queue) {
			n := copy(x.queue, x.queue[x.qhead:])
			for i := n; i < len(x.queue); i++ {
				x.queue[i] = nil
			}
			x.queue = x.queue[:n]
			x.qhead = 0
		}
		x.mu.Unlock()

		x.process(j)

		x.mu.Lock()
		x.pending--
		if x.pending == 0 {
			x.cond.Broadcast()
		}
		x.mu.Unlock()
		x.flushOut()
		x.maybeIdle()
	}
}

func (x *Explorer) process(j *job) {
	if x.stopFlag.Load() {
		return
	}
	prod := j.prod
	if prod == nil {
		var rej *Violation
		var err error
		prod, rej, err = ReplayProduct(x.p, x.po, j.path)
		if err != nil {
			x.fail(err)
			return
		}
		if rej != nil {
			x.violate(rej.Path, rej.Err)
			return
		}
	}
	x.act(prod, j.act)
}

// act carries a concrete state through its adjudication outcome.
func (x *Explorer) act(prod *Product, a Act) {
	if a == ActClaim {
		if owner := x.ownerOf(prod.FP); owner != x.cfg.Shard {
			x.park(prod, owner)
			return
		}
		a = x.adjudicate(prod.Key, prod.FP, prod.Depth)
	}
	switch a {
	case ActFreshFinish, ActFreshExpand:
		x.noteFresh(prod)
		if err := prod.FinishCheck(); err != nil {
			x.violate(prod.Path(), err)
			return
		}
		if a == ActFreshExpand {
			x.expand(prod, true)
		}
	case ActExpandCount:
		x.expand(prod, true)
	case ActExpand:
		x.expand(prod, false)
	}
}

// adjudicate is the owner side of a claim: visited dedup with min-depth
// relaxation, state accounting, and cap flagging.
func (x *Explorer) adjudicate(key string, fp uint64, depth int) Act {
	fresh, expand := x.visited.claim(key, fp, depth)
	if fresh {
		if max := x.cfg.MaxStates; max > 0 && x.visited.size() >= int64(max) {
			x.setCapped()
		}
	}
	if !expand {
		return ActDup
	}
	if x.cfg.MaxDepth > 0 && depth >= x.cfg.MaxDepth {
		x.noteDepthCapped()
		if fresh {
			return ActFreshFinish
		}
		return ActDup
	}
	counted := x.visited.countExpand(key, fp)
	switch {
	case fresh:
		return ActFreshExpand
	case counted:
		return ActExpandCount
	default:
		return ActExpand
	}
}

// expand generates and adjudicates all successors of e. count charges the
// fan-out to the transition counter (granted once per state).
func (x *Explorer) expand(e *Product, count bool) {
	if d := x.cfg.StepDelay; d > 0 {
		time.Sleep(d)
	}
	trs := x.p.Transitions(e.PState)
	if count {
		x.transitions.Add(int64(len(trs)))
	}
	for i, tr := range trs {
		if x.stopFlag.Load() {
			return
		}
		ne, err := e.Step(tr, i)
		if err != nil {
			x.violate(append(e.Path(), i), err)
			return
		}
		if owner := x.ownerOf(ne.FP); owner != x.cfg.Shard {
			x.park(ne, owner)
			continue
		}
		switch a := x.adjudicate(ne.Key, ne.FP, ne.Depth); a {
		case ActDup:
		case ActFreshFinish, ActFreshExpand:
			x.noteFresh(ne)
			if err := ne.FinishCheck(); err != nil {
				x.violate(ne.Path(), err)
				return
			}
			if a == ActFreshExpand {
				x.push(ne, ActExpandCount)
			}
		default:
			x.push(ne, a)
		}
	}
}

// park holds a cross-shard successor locally and emits its claim; the
// concrete state never travels unless the coordinator migrates it.
func (x *Explorer) park(prod *Product, owner int) {
	it := Item{Kind: ItemClaim, Peer: owner, FP: prod.FP, Depth: prod.Depth}
	if x.cfg.Exact || x.cfg.Audit {
		it.Key = []byte(prod.Key)
	}
	x.mu.Lock()
	if x.stopped {
		x.mu.Unlock()
		return
	}
	x.nextSeq++
	it.Seq = x.nextSeq
	x.parked[it.Seq] = prod
	x.pending++
	out := x.enqueueOutLocked(it)
	x.mu.Unlock()
	x.emit(out)
}

// shed migrates up to n ready queue entries to shard target, shipping
// each as a path work item that preserves its adjudication state.
func (x *Explorer) shed(n, target int) {
	if n <= 0 || target == x.cfg.Shard || target < 0 || target >= len(x.cfg.ShardIDs) {
		return
	}
	var out []Item
	x.mu.Lock()
	if x.stopped {
		x.mu.Unlock()
		return
	}
	for n > 0 && x.qhead < len(x.queue) {
		j := x.queue[x.qhead]
		x.queue[x.qhead] = nil
		x.qhead++
		path := j.path
		if j.prod != nil {
			path = j.prod.Path()
		}
		x.itemsOut++
		out = append(out, Item{Kind: ItemWork, Peer: target, Act: j.act, Path: path})
		x.pending--
		n--
	}
	if x.pending == 0 {
		x.cond.Broadcast()
	}
	x.mu.Unlock()
	x.emit(out)
}

func (x *Explorer) push(prod *Product, a Act) {
	x.mu.Lock()
	if x.stopped {
		x.mu.Unlock()
		return
	}
	x.pending++
	x.queue = append(x.queue, &job{prod: prod, act: a})
	x.cond.Signal()
	x.mu.Unlock()
}

func (x *Explorer) ownerOf(fp uint64) int {
	if x.shardHashes == nil {
		return x.cfg.Shard
	}
	return OwnerShard(fp, x.shardHashes)
}

func (x *Explorer) noteFresh(prod *Product) {
	if st := prod.Obs.Stats(); st.PeakIDs > 0 {
		atomicMax(&x.peakIDs, int64(st.PeakIDs))
	}
	atomicMax(&x.maxDepth, int64(prod.Depth))
	if x.obsVisited != nil {
		key := string(prod.Obs.CanonicalKey(prod.Obs.CanonicalRename()))
		x.obsVisited.claim(key, Fingerprint(key), prod.Depth)
	}
}

// enqueueOutLocked buffers an outgoing item (mu held) and returns a batch
// to emit once the buffer fills; the caller emits after unlocking.
func (x *Explorer) enqueueOutLocked(it Item) []Item {
	x.itemsOut++
	x.outBuf = append(x.outBuf, it)
	if len(x.outBuf) >= emitBatch {
		out := x.outBuf
		x.outBuf = nil
		return out
	}
	return nil
}

func (x *Explorer) flushOut() {
	x.mu.Lock()
	out := x.outBuf
	x.outBuf = nil
	x.mu.Unlock()
	x.emit(out)
}

func (x *Explorer) emit(items []Item) {
	if len(items) > 0 && x.cfg.Emit != nil {
		x.cfg.Emit(items)
	}
}

// maybeIdle publishes an idle transition: flush first so every counted
// emission is on the wire before the report that accounts for it.
func (x *Explorer) maybeIdle() {
	x.mu.Lock()
	idle := x.pending == 0 && !x.stopped
	var out []Item
	if idle {
		out = x.outBuf
		x.outBuf = nil
	}
	x.mu.Unlock()
	if !idle {
		return
	}
	x.emit(out)
	if x.cfg.OnIdle != nil {
		x.cfg.OnIdle()
	}
}

func (x *Explorer) violate(path []int, err error) {
	x.mu.Lock()
	first := x.viol == nil && x.failed == nil && !x.stopped
	if first {
		x.viol = &Violation{Err: err, Path: path}
	}
	x.haltLocked()
	x.mu.Unlock()
	if first && x.cfg.OnViolation != nil {
		x.cfg.OnViolation(path, err)
	}
}

func (x *Explorer) fail(err error) {
	x.mu.Lock()
	if x.failed == nil && x.viol == nil {
		x.failed = err
	}
	x.haltLocked()
	x.mu.Unlock()
}

func (x *Explorer) setCapped() {
	x.mu.Lock()
	x.capped = true
	x.haltLocked()
	x.mu.Unlock()
}

func (x *Explorer) noteDepthCapped() {
	x.mu.Lock()
	x.depthOut = true
	x.mu.Unlock()
}

func (x *Explorer) halt() {
	x.mu.Lock()
	x.haltLocked()
	x.mu.Unlock()
}

func (x *Explorer) haltLocked() {
	x.stopped = true
	x.stopFlag.Store(true)
	x.cond.Broadcast()
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
