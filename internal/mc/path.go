package mc

// Counterexample paths are kept as parent-pointer chains instead of a
// per-state []int copy. The old representation copied the whole prefix
// into every frontier entry, an O(depth²) aggregate that dominated memory
// on deep state spaces; a pathNode shares the prefix between siblings, so
// the aggregate is one node (pointer + int32) per reachable state, and a
// concrete counterexample is materialized only when a violation is
// actually reported.
type pathNode struct {
	parent *pathNode
	idx    int32
}

// indices materializes the transition-index path from the initial state.
// A nil node (the initial state itself) yields an empty path.
func (n *pathNode) indices() []int {
	depth := 0
	for c := n; c != nil; c = c.parent {
		depth++
	}
	out := make([]int, depth)
	for c := n; c != nil; c = c.parent {
		depth--
		out[depth] = int(c.idx)
	}
	return out
}
