package mc

// Product states are fingerprinted to 64 bits for the default visited
// set and for shard ownership in distributed exploration. Both uses need
// the hash to be deterministic across processes — every backend of a grid
// must agree on which shard owns a key — so the fingerprint is a fixed
// FNV-1a core with a splitmix64 finalizer, never a per-process seeded
// hash (scgrid's maphash-based rendezvous is seeded per process and is
// deliberately not reused here).

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mix64 is the splitmix64 finalizer: a cheap bijection that spreads the
// FNV accumulator's low-entropy high bits before the value is used for
// shard selection or table placement.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fingerprint hashes a canonical product-state key to 64 bits. It is a
// pure function of the key bytes, identical in every process.
func Fingerprint(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// ShardHashes precomputes the per-shard hash of each shard identity
// (backend address) for OwnerShard's rendezvous selection.
func ShardHashes(ids []string) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = Fingerprint(id)
	}
	return out
}

// OwnerShard maps a state fingerprint to its owning shard by rendezvous
// (highest-random-weight) hashing: the shard whose mixed (shard, state)
// score is highest wins, ties to the lower index. Every participant
// computes ownership from the same ordered shard-identity list carried in
// the explore hello, so the partition is consistent across processes
// without any shared table.
func OwnerShard(fp uint64, shardHashes []uint64) int {
	if len(shardHashes) <= 1 {
		return 0
	}
	best, bestScore := 0, mix64(fp^shardHashes[0])
	for i := 1; i < len(shardHashes); i++ {
		if s := mix64(fp ^ shardHashes[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
