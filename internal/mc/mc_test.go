package mc

import (
	"testing"

	"scverify/internal/protocol"
	"scverify/internal/protocols/serial"
	"scverify/internal/trace"
)

func TestVerifySerialMemorySmall(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 1, Values: 1})
	res := Verify(p, Options{Workers: 2})
	if res.Verdict != Verified {
		t.Fatalf("serial memory not verified: %s", res)
	}
	if res.States < 2 {
		t.Errorf("suspiciously few states: %d", res.States)
	}
	t.Logf("%s", res)
}

func TestVerifySerialMemoryMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium state space")
	}
	p := serial.New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	res := Verify(p, Options{})
	if res.Verdict != Verified {
		t.Fatalf("serial memory (2,1,2) not verified: %s", res)
	}
	t.Logf("%s", res)
}

// brokenSerial is a serial memory whose loads may return a stale value for
// block 1 — value slips that make it non-SC — while carrying tracking
// labels that claim the load read the current memory. The observer must
// flag the inconsistency, which the model checker reports as a violation.
type brokenSerial struct{ *serial.Memory }

func (b brokenSerial) Name() string { return "serial-broken" }

func (b brokenSerial) Transitions(s protocol.State) []protocol.Transition {
	out := b.Memory.Transitions(s)
	// Add a bogus load that returns value 1 for block 1 regardless of
	// memory contents, labeled as if it read location 1.
	out = append(out, protocol.Transition{
		Action: protocol.MemOp(trace.LD(1, 1, 1)),
		Next:   s,
		Loc:    1,
	})
	return out
}

func TestVerifyCatchesBrokenProtocol(t *testing.T) {
	p := brokenSerial{serial.New(trace.Params{Procs: 2, Blocks: 1, Values: 2})}
	res := Verify(p, Options{})
	if res.Verdict != Violated {
		t.Fatalf("broken protocol not caught: %s", res)
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("no counterexample path")
	}
	run, err := Replay(p, res.Counterexample)
	if err != nil {
		t.Fatalf("counterexample does not replay: %v", err)
	}
	t.Logf("counterexample: %s (%v)", run, res.Err)
}

func TestVerifyDepthBound(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	res := Verify(p, Options{MaxDepth: 2})
	if res.Verdict != Incomplete {
		t.Fatalf("depth-bounded run should be incomplete: %s", res)
	}
	if res.Depth != 2 {
		t.Errorf("depth = %d, want 2", res.Depth)
	}
}

func TestVerifyStateCap(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	res := Verify(p, Options{MaxStates: 10})
	if res.Verdict != Incomplete {
		t.Fatalf("capped run should be incomplete: %s", res)
	}
}

func TestVerifyDeterministicStateCount(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 1, Values: 2})
	a := Verify(p, Options{Workers: 1})
	b := Verify(p, Options{Workers: 4})
	if a.Verdict != Verified || b.Verdict != Verified {
		t.Fatalf("not verified: %s / %s", a, b)
	}
	if a.States != b.States {
		t.Errorf("state counts differ across worker counts: %d vs %d", a.States, b.States)
	}
}

func TestVerdictString(t *testing.T) {
	if Verified.String() != "verified" || Violated.String() != "violated" || Incomplete.String() != "incomplete" {
		t.Error("verdict names wrong")
	}
}
