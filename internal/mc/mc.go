// Package mc is an explicit-state model checker for the verification
// method of Condon & Hu: it exhaustively explores the finite product of a
// protocol with its witness observer and the SC checker. Acceptance of
// every reachable product state (including the end-of-run Finish check,
// since every run prefix is itself a run) establishes that every trace of
// the protocol has an acyclic constraint graph — i.e. that the protocol is
// sequentially consistent (Theorem 3.1). A rejecting state yields a
// concrete counterexample run.
//
// Exploration runs on a shared-queue worker pool (Explorer) that also
// serves as one shard of internal/scmc's distributed fabric; Verify is
// the single-shard configuration. States are deduplicated in a 64-bit
// fingerprinted visited set by default, with an exact-key fallback and a
// collision-audit mode (Options.ExactKeys, Options.AuditCollisions).
package mc

import (
	"errors"
	"fmt"
	"time"

	"scverify/internal/observer"
	"scverify/internal/protocol"
)

// Verdict is the outcome of a verification attempt.
type Verdict int

const (
	// Verified means every reachable product state accepts: the protocol is
	// sequentially consistent (for the fixed parameters).
	Verified Verdict = iota
	// Violated means some run drives the observer or checker into
	// rejection; the result carries the counterexample.
	Violated
	// Incomplete means exploration hit a configured bound before finishing.
	Incomplete
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Verified:
		return "verified"
	case Violated:
		return "violated"
	case Incomplete:
		return "incomplete"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options tunes exploration.
type Options struct {
	// Workers is the number of expansion goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxStates caps the number of distinct product states; 0 means 4M.
	MaxStates int
	// MaxDepth caps exploration depth (run length); 0 means unbounded.
	MaxDepth int
	// PoolSize overrides the observer ID pool (0 = Section 4.4 default).
	PoolSize int
	// Generator constructs the ST-order generator; nil means real-time.
	Generator func() observer.STOrderGenerator
	// Progress, if non-nil, is called periodically with the deepest state
	// seen, the visited-set size, and the ready-queue length.
	Progress func(depth, states, frontier int)
	// TrackObserverStates additionally counts distinct observer-component
	// states (canonical keys), for the Section 4.4 size-bound experiment.
	TrackObserverStates bool
	// ExactKeys switches the visited set from 64-bit fingerprints to full
	// canonical keys — more memory, no aliasing risk.
	ExactKeys bool
	// AuditCollisions keeps exact keys alongside the fingerprint table to
	// count genuine fingerprint collisions (Result.Collisions).
	AuditCollisions bool
}

// Result reports the outcome of Verify.
type Result struct {
	Protocol       string
	Verdict        Verdict
	Err            error // rejection cause for Violated
	Counterexample []int // transition indices from the initial state
	States         int   // distinct product states
	Transitions    int   // product transitions expanded
	Depth          int   // max exploration depth reached
	PeakIDs        int   // high-water mark of observer IDs across all states
	// ObserverStates counts distinct observer-component states when
	// Options.TrackObserverStates is set; 0 otherwise.
	ObserverStates int
	// Collisions counts fingerprint collisions detected when
	// Options.AuditCollisions is set; 0 otherwise.
	Collisions int64
	Elapsed    time.Duration
}

// String renders a one-line summary.
func (r Result) String() string {
	s := fmt.Sprintf("%s: %s — %d states, %d transitions, depth %d, peak IDs %d, %v",
		r.Protocol, r.Verdict, r.States, r.Transitions, r.Depth, r.PeakIDs, r.Elapsed.Round(time.Millisecond))
	if r.Err != nil {
		s += fmt.Sprintf(" (%v)", r.Err)
	}
	return s
}

// Verify exhaustively explores the product state space of the protocol,
// its observer, and the checker on a single-shard Explorer.
func Verify(p protocol.Protocol, opts Options) Result {
	start := time.Now()
	res := Result{Protocol: p.Name()}

	x, err := NewExplorer(p, ProductOptions{PoolSize: opts.PoolSize, Generator: opts.Generator}, ExplorerConfig{
		Workers:             opts.Workers,
		MaxStates:           opts.MaxStates,
		MaxDepth:            opts.MaxDepth,
		Exact:               opts.ExactKeys,
		Audit:               opts.AuditCollisions,
		TrackObserverStates: opts.TrackObserverStates,
	})
	if err != nil {
		res.Verdict = Incomplete
		res.Err = err
		res.Elapsed = time.Since(start)
		return res
	}

	var progressDone chan struct{}
	if opts.Progress != nil {
		progressDone = make(chan struct{})
		go func() {
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-progressDone:
					return
				case <-tick.C:
					r := x.Report()
					opts.Progress(r.Depth, int(r.States), int(r.QueueLen))
				}
			}
		}()
	}

	x.Seed()
	x.Wait()
	x.Stop()
	if progressDone != nil {
		close(progressDone)
	}

	r := x.Report()
	res.States = int(r.States)
	res.Transitions = int(r.Transitions)
	res.Depth = r.Depth
	res.PeakIDs = r.PeakIDs
	res.Collisions = r.Collisions
	res.ObserverStates = x.ObserverStates()

	switch {
	case x.Violation() != nil:
		v := x.Violation()
		res.Verdict = Violated
		res.Err = v.Err
		res.Counterexample = v.Path
	case x.Failed() != nil:
		res.Verdict = Incomplete
		res.Err = x.Failed()
	case r.Capped:
		res.Verdict = Incomplete
		res.Err = errors.New("mc: state cap reached")
	case r.DepthCapped:
		res.Verdict = Incomplete
	default:
		res.Verdict = Verified
	}
	res.Elapsed = time.Since(start)
	return res
}

// Replay re-executes a counterexample path, returning the offending run.
func Replay(p protocol.Protocol, path []int) (*protocol.Run, error) {
	return protocol.ReplayIndices(p, path)
}
