// Package mc is an explicit-state model checker for the verification
// method of Condon & Hu: it exhaustively explores the finite product of a
// protocol with its witness observer and the SC checker. Acceptance of
// every reachable product state (including the end-of-run Finish check,
// since every run prefix is itself a run) establishes that every trace of
// the protocol has an acyclic constraint graph — i.e. that the protocol is
// sequentially consistent (Theorem 3.1). A rejecting state yields a
// concrete counterexample run.
//
// Exploration is a level-synchronized parallel BFS: worker goroutines
// expand the frontier concurrently and deduplicate states in a sharded
// visited table keyed by the canonical product-state encoding.
package mc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/observer"
	"scverify/internal/protocol"
)

// Verdict is the outcome of a verification attempt.
type Verdict int

const (
	// Verified means every reachable product state accepts: the protocol is
	// sequentially consistent (for the fixed parameters).
	Verified Verdict = iota
	// Violated means some run drives the observer or checker into
	// rejection; the result carries the counterexample.
	Violated
	// Incomplete means exploration hit a configured bound before finishing.
	Incomplete
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Verified:
		return "verified"
	case Violated:
		return "violated"
	case Incomplete:
		return "incomplete"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options tunes exploration.
type Options struct {
	// Workers is the number of expansion goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxStates caps the number of distinct product states; 0 means 4M.
	MaxStates int
	// MaxDepth caps BFS depth (run length); 0 means unbounded.
	MaxDepth int
	// PoolSize overrides the observer ID pool (0 = Section 4.4 default).
	PoolSize int
	// Generator constructs the ST-order generator; nil means real-time.
	Generator func() observer.STOrderGenerator
	// Progress, if non-nil, is called after each BFS level.
	Progress func(depth, states, frontier int)
	// TrackObserverStates additionally counts distinct observer-component
	// states (canonical keys), for the Section 4.4 size-bound experiment.
	TrackObserverStates bool
}

// Result reports the outcome of Verify.
type Result struct {
	Protocol       string
	Verdict        Verdict
	Err            error // rejection cause for Violated
	Counterexample []int // transition indices from the initial state
	States         int   // distinct product states
	Transitions    int   // product transitions expanded
	Depth          int   // BFS depth reached
	PeakIDs        int   // high-water mark of observer IDs across all states
	// ObserverStates counts distinct observer-component states when
	// Options.TrackObserverStates is set; 0 otherwise.
	ObserverStates int
	Elapsed        time.Duration
}

// String renders a one-line summary.
func (r Result) String() string {
	s := fmt.Sprintf("%s: %s — %d states, %d transitions, depth %d, peak IDs %d, %v",
		r.Protocol, r.Verdict, r.States, r.Transitions, r.Depth, r.PeakIDs, r.Elapsed.Round(time.Millisecond))
	if r.Err != nil {
		s += fmt.Sprintf(" (%v)", r.Err)
	}
	return s
}

// entry is one live frontier element: the concrete product state plus the
// path information needed to rebuild counterexamples.
type entry struct {
	pstate protocol.State
	obs    *observer.Observer
	chk    *checker.Checker
	key    string
	path   []int // transition indices from the initial state
}

type shardedVisited struct {
	shards [64]struct {
		mu sync.Mutex
		m  map[string]struct{}
	}
	count int64
	mu    sync.Mutex
}

func newVisited() *shardedVisited {
	v := &shardedVisited{}
	for i := range v.shards {
		v.shards[i].m = make(map[string]struct{})
	}
	return v
}

// claim returns true if the key was not yet visited (and marks it).
func (v *shardedVisited) claim(key string) bool {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	s := &v.shards[h.Sum32()%64]
	s.mu.Lock()
	_, seen := s.m[key]
	if !seen {
		s.m[key] = struct{}{}
	}
	s.mu.Unlock()
	if !seen {
		v.mu.Lock()
		v.count++
		v.mu.Unlock()
	}
	return !seen
}

func (v *shardedVisited) size() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return int(v.count)
}

// violation carries a rejection discovered by a worker.
type violation struct {
	err  error
	path []int
}

// Verify exhaustively explores the product state space of the protocol,
// its observer, and the checker.
func Verify(p protocol.Protocol, opts Options) Result {
	start := time.Now()
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 4 << 20
	}
	genFn := opts.Generator
	if genFn == nil {
		genFn = func() observer.STOrderGenerator { return observer.NewRealTime() }
	}

	res := Result{Protocol: p.Name()}

	// Initial product state.
	sink := func(descriptor.Symbol) error { return nil }
	obs0 := observer.New(p, genFn(), observer.Config{PoolSize: opts.PoolSize}, sink)
	chk0 := checker.New(obs0.K())
	chk0.SetParams(p.Params())
	init := &entry{pstate: p.Initial(), obs: obs0, chk: chk0}
	init.key = productKey(init)

	visited := newVisited()
	visited.claim(init.key)
	var obsVisited *shardedVisited
	if opts.TrackObserverStates {
		obsVisited = newVisited()
		obsVisited.claim(string(init.obs.CanonicalKey(init.obs.CanonicalRename())))
	}
	if v := finishCheck(init); v != nil {
		res.Verdict = Violated
		res.Err = v.err
		res.Counterexample = v.path
		res.States = 1
		res.Elapsed = time.Since(start)
		return res
	}

	frontier := []*entry{init}
	depth := 0
	var transitions int64
	var peakIDs int

	for len(frontier) > 0 {
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			res.Verdict = Incomplete
			break
		}
		next, viol, expanded := expandLevel(p, frontier, visited, opts, genFn)
		transitions += expanded
		for _, e := range next {
			if st := e.obs.Stats(); st.PeakIDs > peakIDs {
				peakIDs = st.PeakIDs
			}
			if obsVisited != nil {
				obsVisited.claim(string(e.obs.CanonicalKey(e.obs.CanonicalRename())))
			}
		}
		if viol != nil {
			res.Verdict = Violated
			res.Err = viol.err
			res.Counterexample = viol.path
			res.States = visited.size()
			res.Transitions = int(transitions)
			res.Depth = depth + 1
			res.PeakIDs = peakIDs
			res.Elapsed = time.Since(start)
			return res
		}
		depth++
		frontier = next
		if opts.Progress != nil {
			opts.Progress(depth, visited.size(), len(frontier))
		}
		if visited.size() >= opts.MaxStates {
			res.Verdict = Incomplete
			res.Err = errors.New("mc: state cap reached")
			break
		}
	}

	if res.Verdict != Incomplete {
		res.Verdict = Verified
	}
	if obsVisited != nil {
		res.ObserverStates = obsVisited.size()
	}
	res.States = visited.size()
	res.Transitions = int(transitions)
	res.Depth = depth
	res.PeakIDs = peakIDs
	res.Elapsed = time.Since(start)
	return res
}

// expandLevel expands one BFS level in parallel.
func expandLevel(p protocol.Protocol, frontier []*entry, visited *shardedVisited, opts Options, genFn func() observer.STOrderGenerator) (next []*entry, viol *violation, transitions int64) {
	workers := opts.Workers
	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu       sync.Mutex
		stop     bool
		firstVio *violation
		out      []*entry
		total    int64
	)
	work := make(chan *entry)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []*entry
			var localTrans int64
			for e := range work {
				mu.Lock()
				halted := stop
				mu.Unlock()
				if halted {
					continue
				}
				succ, v, n := expandOne(p, e, visited)
				localTrans += n
				if v != nil {
					mu.Lock()
					if firstVio == nil {
						firstVio = v
						stop = true
					}
					mu.Unlock()
					continue
				}
				local = append(local, succ...)
			}
			mu.Lock()
			out = append(out, local...)
			total += localTrans
			mu.Unlock()
		}()
	}
	for _, e := range frontier {
		work <- e
	}
	close(work)
	wg.Wait()
	return out, firstVio, total
}

// expandOne expands a single product state.
func expandOne(p protocol.Protocol, e *entry, visited *shardedVisited) (succ []*entry, viol *violation, transitions int64) {
	trs := p.Transitions(e.pstate)
	for i, tr := range trs {
		transitions++
		ne, err := stepProduct(e, tr, i)
		if err != nil {
			return nil, &violation{err: err, path: appendPath(e.path, i)}, transitions
		}
		if !visited.claim(ne.key) {
			continue
		}
		if v := finishCheck(ne); v != nil {
			return nil, v, transitions
		}
		succ = append(succ, ne)
	}
	return succ, nil, transitions
}

// stepProduct clones the product state and applies one protocol transition
// through the observer into the checker.
func stepProduct(e *entry, tr protocol.Transition, idx int) (*entry, error) {
	chk := e.chk.Clone()
	var ferr error
	obs := e.obs.Clone(func(sym descriptor.Symbol) error {
		if err := chk.Step(sym); err != nil {
			ferr = err
			return err
		}
		return nil
	})
	if err := obs.Step(tr); err != nil {
		if ferr != nil {
			return nil, ferr
		}
		return nil, err
	}
	ne := &entry{pstate: tr.Next, obs: obs, chk: chk, path: appendPath(e.path, idx)}
	ne.key = productKey(ne)
	return ne, nil
}

// finishCheck verifies that stopping the run at this state is accepted:
// the observer completes the ST order and the checker's end-of-stream
// checks pass. When the generator has nothing left to serialize the check
// runs in place via the checker's non-mutating FinishDry; otherwise the
// pipeline is cloned.
func finishCheck(e *entry) *violation {
	if e.obs.FinishIsNoOp() {
		if err := e.chk.FinishDry(); err != nil {
			return &violation{err: err, path: e.path}
		}
		return nil
	}
	chk := e.chk.Clone()
	var ferr error
	obs := e.obs.Clone(func(sym descriptor.Symbol) error {
		if err := chk.Step(sym); err != nil {
			ferr = err
			return err
		}
		return nil
	})
	if err := obs.Finish(); err != nil {
		if ferr != nil {
			return &violation{err: ferr, path: e.path}
		}
		return &violation{err: err, path: e.path}
	}
	if err := chk.Finish(); err != nil {
		return &violation{err: err, path: e.path}
	}
	return nil
}

func appendPath(path []int, idx int) []int {
	out := make([]int, len(path)+1)
	copy(out, path)
	out[len(path)] = idx
	return out
}

// productKey canonically encodes (protocol state, observer state, checker
// state) with length prefixes so components cannot alias. Observer and
// checker keys are taken under the observer's canonical ID renaming so
// that runs differing only in ID-pool allocation history merge.
func productKey(e *entry) string {
	rename := e.obs.CanonicalRename()
	pk := e.pstate.Key()
	ok := e.obs.CanonicalKey(rename)
	ck := e.chk.StateKeyRenamed(rename)
	buf := make([]byte, 0, len(pk)+len(ok)+len(ck)+12)
	buf = appendLP(buf, []byte(pk))
	buf = appendLP(buf, ok)
	buf = appendLP(buf, ck)
	return string(buf)
}

func appendLP(dst, chunk []byte) []byte {
	n := len(chunk)
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(dst, chunk...)
}

// Replay re-executes a counterexample path, returning the offending run.
func Replay(p protocol.Protocol, path []int) (*protocol.Run, error) {
	return protocol.ReplayIndices(p, path)
}
