package mc

import (
	"fmt"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/observer"
	"scverify/internal/protocol"
)

// ProductOptions fixes how the observer/checker side of the product is
// built. Every participant of a distributed exploration must construct
// the product identically (same generator, same pool size) or canonical
// keys — and therefore shard ownership — would disagree.
type ProductOptions struct {
	// PoolSize overrides the observer ID pool (0 = Section 4.4 default).
	PoolSize int
	// Generator constructs the ST-order generator; nil means real-time.
	Generator func() observer.STOrderGenerator
}

func (po ProductOptions) generator() func() observer.STOrderGenerator {
	if po.Generator != nil {
		return po.Generator
	}
	return func() observer.STOrderGenerator { return observer.NewRealTime() }
}

// Product is one concrete product state: the protocol state plus live
// observer and checker clones, its canonical key and fingerprint, the
// depth it was reached at, and the parent-pointer path back to the
// initial state.
type Product struct {
	PState protocol.State
	Obs    *observer.Observer
	Chk    *checker.Checker
	Key    string
	FP     uint64
	Depth  int
	node   *pathNode
}

// NewProduct builds the initial product state of p.
func NewProduct(p protocol.Protocol, po ProductOptions) *Product {
	sink := func(descriptor.Symbol) error { return nil }
	obs := observer.New(p, po.generator()(), observer.Config{PoolSize: po.PoolSize}, sink)
	chk := checker.New(obs.K())
	chk.SetParams(p.Params())
	e := &Product{PState: p.Initial(), Obs: obs, Chk: chk}
	e.rekey()
	return e
}

func (e *Product) rekey() {
	e.Key = productKey(e)
	e.FP = Fingerprint(e.Key)
}

// Path materializes the transition-index path from the initial state.
func (e *Product) Path() []int { return e.node.indices() }

// Step clones the product state and applies one protocol transition
// through the observer into the checker. A non-nil error is a rejection:
// the run extended by this transition is not SC-consistent.
func (e *Product) Step(tr protocol.Transition, idx int) (*Product, error) {
	chk := e.Chk.Clone()
	var ferr error
	obs := e.Obs.Clone(func(sym descriptor.Symbol) error {
		if err := chk.Step(sym); err != nil {
			ferr = err
			return err
		}
		return nil
	})
	if err := obs.Step(tr); err != nil {
		if ferr != nil {
			return nil, ferr
		}
		return nil, err
	}
	ne := &Product{
		PState: tr.Next,
		Obs:    obs,
		Chk:    chk,
		Depth:  e.Depth + 1,
		node:   &pathNode{parent: e.node, idx: int32(idx)},
	}
	ne.rekey()
	return ne, nil
}

// FinishCheck verifies that stopping the run at this state is accepted:
// the observer completes the ST order and the checker's end-of-stream
// checks pass (every run prefix is itself a run, so every reachable state
// must finish cleanly). When the generator has nothing left to serialize
// the check runs in place via the checker's non-mutating FinishDry;
// otherwise the pipeline is cloned.
func (e *Product) FinishCheck() error {
	if e.Obs.FinishIsNoOp() {
		return e.Chk.FinishDry()
	}
	chk := e.Chk.Clone()
	var ferr error
	obs := e.Obs.Clone(func(sym descriptor.Symbol) error {
		if err := chk.Step(sym); err != nil {
			ferr = err
			return err
		}
		return nil
	})
	if err := obs.Finish(); err != nil {
		if ferr != nil {
			return ferr
		}
		return err
	}
	return chk.Finish()
}

// Violation carries a rejection discovered during exploration: the
// rejection cause and the transition-index path that reproduces it.
type Violation struct {
	Err  error
	Path []int
}

// ReplayProduct rebuilds the product state at the end of path by
// replaying the transition indices from the initial state — the state
// transfer used for cross-shard work items, which ship as paths because
// the deterministic Transitions order makes a path a compact, canonical
// serialization of any reachable product state. A rejection along the
// way is returned as a Violation (the path prefix is a counterexample); a
// structurally impossible path (index out of range) is an error — a
// corrupt or mismatched work item, never a protocol verdict.
func ReplayProduct(p protocol.Protocol, po ProductOptions, path []int) (*Product, *Violation, error) {
	e := NewProduct(p, po)
	for n, idx := range path {
		trs := p.Transitions(e.PState)
		if idx < 0 || idx >= len(trs) {
			return nil, nil, fmt.Errorf("mc: replay step %d: transition index %d out of range (%d available)", n, idx, len(trs))
		}
		ne, err := e.Step(trs[idx], idx)
		if err != nil {
			return nil, &Violation{Err: err, Path: append(append([]int(nil), path[:n]...), idx)}, nil
		}
		e = ne
	}
	return e, nil, nil
}

// productKey canonically encodes (protocol state, observer state, checker
// state) with length prefixes so components cannot alias. Observer and
// checker keys are taken under the observer's canonical ID renaming so
// that runs differing only in ID-pool allocation history merge.
func productKey(e *Product) string {
	rename := e.Obs.CanonicalRename()
	pk := e.PState.Key()
	ok := e.Obs.CanonicalKey(rename)
	ck := e.Chk.StateKeyRenamed(rename)
	buf := make([]byte, 0, len(pk)+len(ok)+len(ck)+12)
	buf = appendLP(buf, []byte(pk))
	buf = appendLP(buf, ok)
	buf = appendLP(buf, ck)
	return string(buf)
}

func appendLP(dst, chunk []byte) []byte {
	n := len(chunk)
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(dst, chunk...)
}
