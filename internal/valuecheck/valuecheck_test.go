package valuecheck_test

import (
	"math/rand"
	"strings"
	"testing"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
	"scverify/internal/valuecheck"
)

func op(o trace.Op) *trace.Op { return &o }

func TestAcceptsMatchingValues(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 2))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 2))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
	}
	if err := valuecheck.Check(s, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsValueMismatch(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 2))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
	}
	if err := valuecheck.Check(s, 3); err == nil || !strings.Contains(err.Error(), "different value") {
		t.Fatalf("got %v", err)
	}
}

func TestAliasCarriesValue(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.AddID{Existing: 1, New: 2},
		descriptor.Node{ID: 3, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 2, To: 3, Label: descriptor.Inh},
	}
	if err := valuecheck.Check(s, 3); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	if err := valuecheck.Check(descriptor.Stream{descriptor.Node{ID: 9}}, 2); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := valuecheck.Check(descriptor.Stream{descriptor.AddID{Existing: 9, New: 1}}, 2); err == nil {
		t.Error("out-of-range add-ID accepted")
	}
}

// TestDecompositionEquivalence is the Section 4.4 property: the value-
// blind checker composed with the value checker accepts exactly what the
// full checker accepts, across canonical streams and random value
// mutations.
func TestDecompositionEquivalence(t *testing.T) {
	gen := trace.NewGenerator(trace.Params{Procs: 3, Blocks: 2, Values: 3}, 51)
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 150; i++ {
		tr := gen.SC(12)
		r, ok := trace.FindSerialReordering(tr)
		if !ok {
			t.Fatal("trace not SC")
		}
		s, k := descriptor.EncodeAuto(graph.Canonical(tr, r))

		// Half the time, corrupt one node label's value.
		if rng.Intn(2) == 0 {
			idx := rng.Intn(len(s))
			if n, ok := s[idx].(descriptor.Node); ok && n.Op != nil {
				cp := *n.Op
				cp.Value = trace.Value(rng.Intn(4))
				s[idx] = descriptor.Node{ID: n.ID, Op: &cp}
			}
		}

		full := checker.Check(s, k) == nil

		blind := checker.New(k)
		blind.DisableValueCheck()
		blindOK := true
		for _, sym := range s {
			if blind.Step(sym) != nil {
				blindOK = false
				break
			}
		}
		if blindOK {
			blindOK = blind.Finish() == nil
		}
		valsOK := valuecheck.Check(s, k) == nil

		composed := blindOK && valsOK
		if full != composed {
			t.Fatalf("decomposition mismatch: full=%v blind=%v values=%v\nstream: %s",
				full, blindOK, valsOK, s.Text())
		}
	}
}
