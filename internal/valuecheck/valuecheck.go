// Package valuecheck is the independent value-matching automaton of the
// Section 4.4 optimization in Condon & Hu: the main SC checker can run
// value-blind (saving lg v bits per active node), because checking that
// every load returns exactly the value of the store it inherits from
// needs only this trivial machine — one operation label per live ID — run
// alongside. Composing the value-blind checker with this one accepts
// exactly the streams the full checker accepts.
package valuecheck

import (
	"fmt"

	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// Checker verifies the value side of constraint 4 over a descriptor
// stream.
type Checker struct {
	k        int
	ops      []*trace.Op // per ID, the label of the node it names
	rejected error
}

// New returns a value checker for k-graph descriptors.
func New(k int) *Checker {
	return &Checker{k: k, ops: make([]*trace.Op, k+2)}
}

// Err returns the rejection error, if any.
func (c *Checker) Err() error { return c.rejected }

func (c *Checker) reject(format string, args ...any) error {
	if c.rejected == nil {
		c.rejected = fmt.Errorf("valuecheck: "+format, args...)
	}
	return c.rejected
}

// Step consumes one symbol; rejections are sticky.
func (c *Checker) Step(sym descriptor.Symbol) error {
	if c.rejected != nil {
		return c.rejected
	}
	switch v := sym.(type) {
	case descriptor.Node:
		if v.ID < 1 || v.ID > c.k+1 {
			return c.reject("node ID %d outside 1..%d", v.ID, c.k+1)
		}
		c.ops[v.ID] = v.Op
	case descriptor.AddID:
		if v.Existing < 1 || v.Existing > c.k+1 || v.New < 1 || v.New > c.k+1 {
			return c.reject("add-ID(%d,%d) outside 1..%d", v.Existing, v.New, c.k+1)
		}
		if v.Existing == v.New {
			return nil
		}
		c.ops[v.New] = c.ops[v.Existing]
	case descriptor.Edge:
		if v.Label != descriptor.Inh && v.Label != descriptor.POInh {
			return nil
		}
		if v.From < 1 || v.From > c.k+1 || v.To < 1 || v.To > c.k+1 {
			return c.reject("edge (%d,%d) outside 1..%d", v.From, v.To, c.k+1)
		}
		src, dst := c.ops[v.From], c.ops[v.To]
		if src == nil || dst == nil {
			return nil // unbound IDs denote no edge
		}
		if !src.IsStore() || !dst.IsLoad() {
			return c.reject("inheritance edge %s→%s between wrong kinds", src, dst)
		}
		if src.Value != dst.Value {
			return c.reject("load %s inherits from store %s with a different value", dst, src)
		}
	}
	return nil
}

// Check runs a fresh value checker over the stream.
func Check(s descriptor.Stream, k int) error {
	c := New(k)
	for _, sym := range s {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return nil
}
