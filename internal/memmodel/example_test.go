package memmodel_test

import (
	"fmt"

	"scverify/internal/memmodel"
)

// The Figure 1 message-passing program: SC forbids seeing the flag but
// not the data.
func ExampleProgram_sCOutcomes() {
	p := memmodel.Figure1()
	for _, o := range p.SCOutcomes() {
		fmt.Println(o)
	}
	// Output:
	// r1=0 r2=0
	// r1=1 r2=0
	// r1=1 r2=2
}
