package memmodel

import (
	"reflect"
	"testing"

	"scverify/internal/trace"
)

func TestFigure1SerialOutcome(t *testing.T) {
	// Figure 1's real-time order: P1, P1, P2, P2 → r1=1, r2=2.
	out, err := Figure1().SerialOutcome([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "r1=1 r2=2" {
		t.Errorf("serial outcome = %s, want r1=1 r2=2", out)
	}
}

func TestFigure1SCOutcomes(t *testing.T) {
	// Figure 1: SC allows r1=1,r2=2; r1=0,r2=0; r1=1,r2=0 — but not
	// r1=0,r2=2.
	got := OutcomeStrings(Figure1().SCOutcomes())
	want := []string{"r1=0 r2=0", "r1=1 r2=0", "r1=1 r2=2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SC outcomes = %v, want %v", got, want)
	}
}

func TestFigure1RelaxedOutcomes(t *testing.T) {
	// The relaxed model (loads out of order) additionally allows r1=0,
	// r2=2 per the caption.
	got := OutcomeStrings(Figure1().RelaxedOutcomes())
	found := false
	for _, o := range got {
		if o == "r1=0 r2=2" {
			found = true
		}
	}
	if !found {
		t.Errorf("relaxed outcomes %v missing r1=0 r2=2", got)
	}
	relaxed := map[string]bool{}
	for _, o := range got {
		relaxed[o] = true
	}
	for _, o := range OutcomeStrings(Figure1().SCOutcomes()) {
		if !relaxed[o] {
			t.Errorf("SC outcome %q missing from relaxed set", o)
		}
	}
}

func TestFigure1TSOKeepsLoadsInOrder(t *testing.T) {
	// TSO (store buffers only) cannot produce the message-passing
	// violation: loads stay in program order.
	sc := map[string]bool{}
	for _, o := range OutcomeStrings(Figure1().SCOutcomes()) {
		sc[o] = true
	}
	for _, o := range OutcomeStrings(Figure1().TSOOutcomes()) {
		if !sc[o] {
			t.Errorf("TSO produced non-SC outcome %q on message passing", o)
		}
	}
}

func TestStoreBufferingLitmus(t *testing.T) {
	// SB: P1: x←1; r1=y. P2: y←1; r2=x. SC forbids r1=0 ∧ r2=0; TSO
	// allows it.
	sb := Program{Threads: [][]Stmt{
		{St(1, 1), Ld(2, "r1")},
		{St(2, 1), Ld(1, "r2")},
	}}
	for _, o := range OutcomeStrings(sb.SCOutcomes()) {
		if o == "r1=0 r2=0" {
			t.Error("SC allowed the store-buffering outcome")
		}
	}
	found := false
	for _, o := range OutcomeStrings(sb.TSOOutcomes()) {
		if o == "r1=0 r2=0" {
			found = true
		}
	}
	if !found {
		t.Error("TSO did not produce the store-buffering outcome")
	}
}

func TestSerialOutcomeErrors(t *testing.T) {
	p := Figure1()
	if _, err := p.SerialOutcome([]int{0, 0}); err == nil {
		t.Error("short schedule accepted")
	}
	if _, err := p.SerialOutcome([]int{0, 0, 0, 1}); err == nil {
		t.Error("exhausted-thread schedule accepted")
	}
}

func TestTraceBridge(t *testing.T) {
	// Every SC interleaving's trace must have a serial reordering (itself).
	p := Figure1()
	tr, err := p.Trace([]int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 4 {
		t.Fatalf("trace length = %d", len(tr))
	}
	if !trace.HasSerialReordering(tr) {
		t.Errorf("interleaving trace not SC: %s", tr)
	}
	if _, err := p.Trace([]int{0, 0, 0, 0}); err == nil {
		t.Error("bad schedule accepted")
	}
}

func TestSCOutcomesAgreeWithTraceDecision(t *testing.T) {
	// Cross-validation: an outcome is SC-reachable iff some complete
	// interleaving produces it; and every serial interleaving trace is SC
	// by the trace-level decision procedure. Enumerate all interleavings
	// of Figure 1 and compare outcome sets.
	p := Figure1()
	want := map[string]bool{}
	var rec func(sched []int, used []int)
	total := 4
	rec = func(sched, used []int) {
		if len(sched) == total {
			out, err := p.SerialOutcome(sched)
			if err == nil {
				want[out.String()] = true
			}
			return
		}
		for th := 0; th < 2; th++ {
			if used[th] < len(p.Threads[th]) {
				used[th]++
				rec(append(sched, th), used)
				used[th]--
			}
		}
	}
	rec(nil, []int{0, 0})
	got := map[string]bool{}
	for _, o := range OutcomeStrings(p.SCOutcomes()) {
		got[o] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SCOutcomes = %v, interleaving enumeration = %v", got, want)
	}
}

func TestOutcomeStringDeterministic(t *testing.T) {
	o := Outcome{"r2": 2, "r1": 1}
	if o.String() != "r1=1 r2=2" {
		t.Errorf("outcome string = %q", o.String())
	}
}
