package memmodel

import "testing"

func outcomeSet(os []Outcome) map[string]bool {
	set := map[string]bool{}
	for _, s := range OutcomeStrings(os) {
		set[s] = true
	}
	return set
}

func TestFigure1PSOStoreStoreReordering(t *testing.T) {
	// Figure 1 is the litmus that separates PSO from TSO: the fourth
	// outcome r1=0,r2=2 needs the y←2 store to reach memory before x←1,
	// a store-store reordering. TSO's FIFO drain forbids it; PSO's
	// per-block FIFO allows it.
	p := Figure1()
	tso := outcomeSet(p.TSOOutcomes())
	pso := outcomeSet(p.PSOOutcomes())
	if tso["r1=0 r2=2"] {
		t.Error("TSO produced the store-store reordering outcome r1=0 r2=2")
	}
	if !pso["r1=0 r2=2"] {
		t.Errorf("PSO outcomes %v missing r1=0 r2=2", OutcomeStrings(p.PSOOutcomes()))
	}
}

func TestPSOContainsTSOContainsSC(t *testing.T) {
	// The model hierarchy as outcome-set inclusion, on both the Figure-1
	// message-passing program and the store-buffering litmus.
	programs := map[string]Program{
		"figure1": Figure1(),
		"sb": {Threads: [][]Stmt{
			{St(1, 1), Ld(2, "r1")},
			{St(2, 1), Ld(1, "r2")},
		}},
	}
	for name, p := range programs {
		sc := outcomeSet(p.SCOutcomes())
		tso := outcomeSet(p.TSOOutcomes())
		pso := outcomeSet(p.PSOOutcomes())
		for o := range sc {
			if !tso[o] {
				t.Errorf("%s: SC outcome %q missing from TSO set", name, o)
			}
		}
		for o := range tso {
			if !pso[o] {
				t.Errorf("%s: TSO outcome %q missing from PSO set", name, o)
			}
		}
	}
}

func TestPSOSameBlockStoresStayOrdered(t *testing.T) {
	// Per-block FIFO: two stores to the same block must reach memory in
	// program order, so a reader can never observe the first value after
	// the second. P1: x←1; x←2. P2: r1=x; r2=x. Forbidden under PSO:
	// r1=2 ∧ r2=1.
	p := Program{Threads: [][]Stmt{
		{St(1, 1), St(1, 2)},
		{Ld(1, "r1"), Ld(1, "r2")},
	}}
	for o := range outcomeSet(p.PSOOutcomes()) {
		if o == "r1=2 r2=1" {
			t.Error("PSO reordered same-block stores")
		}
	}
}

func TestPSOForwarding(t *testing.T) {
	// A thread still reads its own newest buffered store under PSO.
	p := Program{Threads: [][]Stmt{
		{St(1, 1), Ld(1, "r1")},
	}}
	got := OutcomeStrings(p.PSOOutcomes())
	if len(got) != 1 || got[0] != "r1=1" {
		t.Errorf("PSO forwarding outcomes = %v, want [r1=1]", got)
	}
}
