// Package memmodel enumerates the outcomes of small multi-threaded
// programs under the three memory models contrasted in Figure 1 of Condon
// & Hu: serial memory (operations execute atomically in a given real-time
// schedule), sequential consistency (any interleaving respecting program
// order), and a TSO-style relaxed model with store buffers (the "more
// relaxed models" of the figure, which permit the outcome SC forbids).
package memmodel

import (
	"fmt"
	"sort"
	"strings"

	"scverify/internal/trace"
)

// Stmt is one statement of a litmus-test thread: a store of a constant to
// a block, or a load of a block into a named register.
type Stmt struct {
	IsStore bool
	Block   trace.BlockID
	Value   trace.Value // stores only
	Reg     string      // loads only
}

// St builds a store statement.
func St(b trace.BlockID, v trace.Value) Stmt { return Stmt{IsStore: true, Block: b, Value: v} }

// Ld builds a load statement into register reg.
func Ld(b trace.BlockID, reg string) Stmt { return Stmt{Block: b, Reg: reg} }

// Program is a litmus test: one statement list per thread.
type Program struct {
	Threads [][]Stmt
}

// Outcome maps register names to loaded values, rendered canonically.
type Outcome map[string]trace.Value

// String renders the outcome deterministically, e.g. "r1=0 r2=2" with ⊥
// shown as 0.
func (o Outcome) String() string {
	regs := make([]string, 0, len(o))
	for r := range o {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = fmt.Sprintf("%s=%d", r, o[r])
	}
	return strings.Join(parts, " ")
}

// Figure1 is the message-passing program of the paper's Figure 1: x is
// block 1, y is block 2; P1 stores x←1 then y←2, P2 loads y into r2 then
// x into r1. Under serial memory (schedule 0,0,1,1) the outcome is
// r1=1,r2=2; SC additionally allows r1=0,r2=0 and r1=1,r2=0; relaxed
// models also allow r1=0,r2=2.
func Figure1() Program {
	return Program{Threads: [][]Stmt{
		{St(1, 1), St(2, 2)},
		{Ld(2, "r2"), Ld(1, "r1")},
	}}
}

// SerialOutcome executes the program atomically under the given real-time
// schedule: schedule[i] names the thread (0-based) whose next statement
// runs at step i. The outcome is unique. An error is returned if the
// schedule does not enumerate every statement exactly once.
func (p Program) SerialOutcome(schedule []int) (Outcome, error) {
	total := 0
	for _, th := range p.Threads {
		total += len(th)
	}
	if len(schedule) != total {
		return nil, fmt.Errorf("memmodel: schedule length %d, want %d", len(schedule), total)
	}
	mem := map[trace.BlockID]trace.Value{}
	next := make([]int, len(p.Threads))
	out := Outcome{}
	for i, th := range schedule {
		if th < 0 || th >= len(p.Threads) || next[th] >= len(p.Threads[th]) {
			return nil, fmt.Errorf("memmodel: schedule step %d names exhausted thread %d", i, th)
		}
		s := p.Threads[th][next[th]]
		next[th]++
		if s.IsStore {
			mem[s.Block] = s.Value
		} else {
			out[s.Reg] = mem[s.Block]
		}
	}
	return out, nil
}

// SCOutcomes enumerates every outcome reachable under sequential
// consistency: all interleavings preserving each thread's program order,
// deduplicated and sorted by canonical string.
func (p Program) SCOutcomes() []Outcome {
	seen := map[string]Outcome{}
	next := make([]int, len(p.Threads))
	mem := map[trace.BlockID]trace.Value{}
	out := Outcome{}
	var rec func()
	rec = func() {
		done := true
		for th := range p.Threads {
			if next[th] >= len(p.Threads[th]) {
				continue
			}
			done = false
			s := p.Threads[th][next[th]]
			next[th]++
			if s.IsStore {
				old, had := mem[s.Block]
				mem[s.Block] = s.Value
				rec()
				if had {
					mem[s.Block] = old
				} else {
					delete(mem, s.Block)
				}
			} else {
				old, had := out[s.Reg]
				out[s.Reg] = mem[s.Block]
				rec()
				if had {
					out[s.Reg] = old
				} else {
					delete(out, s.Reg)
				}
			}
			next[th]--
		}
		if done {
			key := out.String()
			if _, ok := seen[key]; !ok {
				cp := Outcome{}
				for k, v := range out {
					cp[k] = v
				}
				seen[key] = cp
			}
		}
	}
	rec()
	return sortedOutcomes(seen)
}

// tsoState is an exploration state of the store-buffer machine.
type tsoState struct {
	next []int
	bufs [][]Stmt // buffered stores per thread
	mem  map[trace.BlockID]trace.Value
	out  Outcome
}

func (s tsoState) clone() tsoState {
	n := tsoState{
		next: append([]int(nil), s.next...),
		bufs: make([][]Stmt, len(s.bufs)),
		mem:  map[trace.BlockID]trace.Value{},
		out:  Outcome{},
	}
	for i, b := range s.bufs {
		n.bufs[i] = append([]Stmt(nil), b...)
	}
	for k, v := range s.mem {
		n.mem[k] = v
	}
	for k, v := range s.out {
		n.out[k] = v
	}
	return n
}

// TSOOutcomes enumerates every outcome reachable with per-thread FIFO
// store buffers and load forwarding — the relaxed model of Figure 1's
// caption, under which the loads effectively execute out of order.
func (p Program) TSOOutcomes() []Outcome {
	seen := map[string]Outcome{}
	var explore func(s tsoState)
	explore = func(s tsoState) {
		progressed := false
		for th := range p.Threads {
			// Drain one buffered store to memory.
			if len(s.bufs[th]) > 0 {
				progressed = true
				n := s.clone()
				head := n.bufs[th][0]
				n.bufs[th] = n.bufs[th][1:]
				n.mem[head.Block] = head.Value
				explore(n)
			}
			// Execute the thread's next statement.
			if s.next[th] < len(p.Threads[th]) {
				progressed = true
				stmt := p.Threads[th][s.next[th]]
				n := s.clone()
				n.next[th]++
				if stmt.IsStore {
					n.bufs[th] = append(n.bufs[th], stmt)
				} else {
					v, fwd := trace.Value(0), false
					for i := len(n.bufs[th]) - 1; i >= 0; i-- {
						if n.bufs[th][i].Block == stmt.Block {
							v, fwd = n.bufs[th][i].Value, true
							break
						}
					}
					if !fwd {
						v = n.mem[stmt.Block]
					}
					n.out[stmt.Reg] = v
				}
				explore(n)
			}
		}
		if !progressed {
			key := s.out.String()
			if _, ok := seen[key]; !ok {
				seen[key] = s.out
			}
		}
	}
	init := tsoState{
		next: make([]int, len(p.Threads)),
		bufs: make([][]Stmt, len(p.Threads)),
		mem:  map[trace.BlockID]trace.Value{},
		out:  Outcome{},
	}
	explore(init)
	return sortedOutcomes(seen)
}

// PSOOutcomes enumerates every outcome reachable under partial store
// order: the same store-buffer machine as TSOOutcomes, but the buffer
// drains in per-block FIFO order only — stores to *different* blocks may
// reach memory out of program order. Load forwarding is unchanged (the
// newest same-block buffered store wins). PSO therefore produces the
// store-store reorderings TSO forbids: on Figure 1 it admits r1=0,r2=2,
// which no TSO execution can.
func (p Program) PSOOutcomes() []Outcome {
	seen := map[string]Outcome{}
	var explore func(s tsoState)
	explore = func(s tsoState) {
		progressed := false
		for th := range p.Threads {
			// Drain any buffered store with no earlier same-block store
			// still buffered — the per-block-FIFO condition.
			for bi, st := range s.bufs[th] {
				blocked := false
				for _, earlier := range s.bufs[th][:bi] {
					if earlier.Block == st.Block {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
				progressed = true
				n := s.clone()
				n.bufs[th] = append(n.bufs[th][:bi:bi], n.bufs[th][bi+1:]...)
				n.mem[st.Block] = st.Value
				explore(n)
			}
			// Execute the thread's next statement.
			if s.next[th] < len(p.Threads[th]) {
				progressed = true
				stmt := p.Threads[th][s.next[th]]
				n := s.clone()
				n.next[th]++
				if stmt.IsStore {
					n.bufs[th] = append(n.bufs[th], stmt)
				} else {
					v, fwd := trace.Value(0), false
					for i := len(n.bufs[th]) - 1; i >= 0; i-- {
						if n.bufs[th][i].Block == stmt.Block {
							v, fwd = n.bufs[th][i].Value, true
							break
						}
					}
					if !fwd {
						v = n.mem[stmt.Block]
					}
					n.out[stmt.Reg] = v
				}
				explore(n)
			}
		}
		if !progressed {
			key := s.out.String()
			if _, ok := seen[key]; !ok {
				seen[key] = s.out
			}
		}
	}
	init := tsoState{
		next: make([]int, len(p.Threads)),
		bufs: make([][]Stmt, len(p.Threads)),
		mem:  map[trace.BlockID]trace.Value{},
		out:  Outcome{},
	}
	explore(init)
	return sortedOutcomes(seen)
}

// RelaxedOutcomes enumerates outcomes when each thread may execute its
// statements fully out of order (no program-order enforcement at all, but
// each statement still executes atomically on memory). This is the "more
// relaxed models" of Figure 1's caption, which "permit ignoring program
// order in certain circumstances, allowing the two loads to execute
// out-of-order" — TSO alone keeps loads in order and cannot produce the
// figure's fourth outcome.
func (p Program) RelaxedOutcomes() []Outcome {
	seen := map[string]Outcome{}
	executed := make([][]bool, len(p.Threads))
	for i, th := range p.Threads {
		executed[i] = make([]bool, len(th))
	}
	mem := map[trace.BlockID]trace.Value{}
	out := Outcome{}
	remaining := 0
	for _, th := range p.Threads {
		remaining += len(th)
	}
	var rec func()
	rec = func() {
		if remaining == 0 {
			key := out.String()
			if _, ok := seen[key]; !ok {
				cp := Outcome{}
				for k, v := range out {
					cp[k] = v
				}
				seen[key] = cp
			}
			return
		}
		for th := range p.Threads {
			for i, s := range p.Threads[th] {
				if executed[th][i] {
					continue
				}
				executed[th][i] = true
				remaining--
				if s.IsStore {
					old, had := mem[s.Block]
					mem[s.Block] = s.Value
					rec()
					if had {
						mem[s.Block] = old
					} else {
						delete(mem, s.Block)
					}
				} else {
					old, had := out[s.Reg]
					out[s.Reg] = mem[s.Block]
					rec()
					if had {
						out[s.Reg] = old
					} else {
						delete(out, s.Reg)
					}
				}
				remaining++
				executed[th][i] = false
			}
		}
	}
	rec()
	return sortedOutcomes(seen)
}

func sortedOutcomes(seen map[string]Outcome) []Outcome {
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Outcome, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// OutcomeStrings renders a list of outcomes canonically.
func OutcomeStrings(os []Outcome) []string {
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = o.String()
	}
	return out
}

// Trace converts a complete interleaving of the program (thread index per
// step) into a memory-operation trace, with loads returning the values a
// serial execution of that interleaving yields. It bridges litmus
// programs to the trace-level SC decision procedure.
func (p Program) Trace(schedule []int) (trace.Trace, error) {
	mem := map[trace.BlockID]trace.Value{}
	next := make([]int, len(p.Threads))
	var tr trace.Trace
	for i, th := range schedule {
		if th < 0 || th >= len(p.Threads) || next[th] >= len(p.Threads[th]) {
			return nil, fmt.Errorf("memmodel: schedule step %d names exhausted thread %d", i, th)
		}
		s := p.Threads[th][next[th]]
		next[th]++
		proc := trace.ProcID(th + 1)
		if s.IsStore {
			mem[s.Block] = s.Value
			tr = append(tr, trace.ST(proc, s.Block, s.Value))
		} else {
			tr = append(tr, trace.LD(proc, s.Block, mem[s.Block]))
		}
	}
	return tr, nil
}
