package scvet

import (
	"fmt"
	"go/ast"
	"strings"
)

// SV006 verdictpurity: a function marked `//scvet:verdict-transparent`
// relays verdicts without the ability to manufacture or alter one. PR 5's
// scgrid proxy claims exactly this — "the proxy structurally cannot
// change a verdict" — and this analyzer turns the claim into a build
// property: inject a verdict-constructing call into the marked splice
// path and scvet fails.
//
// Within a marked function (func literals included), three shapes are
// findings:
//
//  1. a composite literal of a type whose name ends in "Verdict"
//     (scserve.Verdict{...} and friends) — constructing a verdict;
//  2. a call whose callee name ends in "Verdict" — except Parse-prefixed
//     names, which read one off the wire and are exactly what a
//     transparent relay does for accounting;
//  3. a call to a same-package function that is itself verdict-tainted:
//     it constructs a verdict literal, calls an Append*/appendVerdict
//     encoder, or (transitively) calls another tainted function. The
//     taint closure is what catches an innocently-named helper like
//     deliver() that writes a synthesized verdict frame.
//
// Writes through a selector whose base resolves to a *Verdict-typed
// variable are also flagged (mutating a parsed verdict before relaying
// it); reads are allowed.

const verdictTransparentMarker = "verdict-transparent"

// lastTypeName returns the final identifier of a (possibly qualified,
// pointered, generic) type or callee expression.
func lastTypeName(x ast.Expr) string {
	switch v := x.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.StarExpr:
		return lastTypeName(v.X)
	case *ast.ParenExpr:
		return lastTypeName(v.X)
	case *ast.IndexExpr:
		return lastTypeName(v.X)
	}
	return ""
}

func isVerdictName(name string) bool {
	return strings.HasSuffix(name, "Verdict") && name != "Verdict"
}

func isParseName(name string) bool {
	return strings.HasPrefix(name, "Parse") || strings.HasPrefix(name, "parse")
}

// verdictConstructingName: a callee name that manufactures or encodes a
// verdict. Type names themselves ("Verdict") used as conversions count.
func verdictConstructingName(name string) bool {
	if isParseName(name) {
		return false
	}
	return strings.HasSuffix(name, "Verdict") || strings.HasPrefix(name, "appendVerdict") || strings.HasPrefix(name, "AppendVerdict")
}

// directlyTainted reports whether a function body constructs a verdict
// on its own: a Verdict composite literal or a verdict-constructing
// call by name.
func directlyTainted(fd *ast.FuncDecl) bool {
	tainted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			if name := lastTypeName(v.Type); name == "Verdict" || isVerdictName(name) {
				tainted = true
			}
		case *ast.CallExpr:
			if verdictConstructingName(lastTypeName(v.Fun)) {
				tainted = true
			}
		}
		return !tainted
	})
	return tainted
}

func analyzeVerdictPurity(p *Package) []Finding {
	var out []Finding

	// Find marked functions; nothing to do in packages without them.
	var marked []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, verdictTransparentMarker) {
				marked = append(marked, fd)
			}
		}
	}
	if len(marked) == 0 {
		return nil
	}

	// Package-level taint closure over same-package calls, by name: an
	// ident call resolves to the package function; a method call taints
	// if any package type has a tainted method of that name (the
	// over-approximation keeps the check sound for the marked path).
	tainted := make(map[string]bool) // function or method name -> tainted
	var all []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				all = append(all, fd)
				if directlyTainted(fd) {
					tainted[fd.Name.Name] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range all {
			if tainted[fd.Name.Name] {
				continue
			}
			hit := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// Parse-named callees never propagate taint: parsing a
				// verdict is reading, even though the parser's own body
				// constructs the value it returns.
				switch fun := unparen(call.Fun).(type) {
				case *ast.Ident:
					if _, local := p.Funcs[fun.Name]; local && tainted[fun.Name] && !isParseName(fun.Name) {
						hit = true
					}
				case *ast.SelectorExpr:
					// Same-package method by name, any receiver type.
					for _, ms := range p.Methods {
						if _, ok := ms[fun.Sel.Name]; ok && tainted[fun.Sel.Name] && !isParseName(fun.Sel.Name) {
							hit = true
						}
					}
				}
				return !hit
			})
			if hit {
				tainted[fd.Name.Name] = true
				changed = true
			}
		}
	}

	for _, fd := range marked {
		env := newTypeEnv(p, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				if name := lastTypeName(v.Type); name == "Verdict" || isVerdictName(name) {
					out = append(out, Finding{
						Rule: RuleVerdictPurity,
						Pos:  p.Fset.Position(v.Pos()),
						Msg:  fmt.Sprintf("verdict-transparent %s constructs a %s literal", fd.Name.Name, name),
					})
				}
			case *ast.CallExpr:
				name := lastTypeName(v.Fun)
				if verdictConstructingName(name) {
					out = append(out, Finding{
						Rule: RuleVerdictPurity,
						Pos:  p.Fset.Position(v.Pos()),
						Msg:  fmt.Sprintf("verdict-transparent %s calls verdict-constructing %s", fd.Name.Name, name),
					})
					return true
				}
				if name != "" && tainted[name] && !isParseName(name) {
					// Only same-package callees can be tainted.
					local := false
					switch fun := unparen(v.Fun).(type) {
					case *ast.Ident:
						_, local = p.Funcs[fun.Name]
					case *ast.SelectorExpr:
						for _, ms := range p.Methods {
							if _, ok := ms[fun.Sel.Name]; ok {
								local = true
							}
						}
					}
					if local {
						out = append(out, Finding{
							Rule: RuleVerdictPurity,
							Pos:  p.Fset.Position(v.Pos()),
							Msg:  fmt.Sprintf("verdict-transparent %s calls %s, which constructs or encodes verdicts", fd.Name.Name, name),
						})
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					sel, ok := unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if bt := env.baseType(sel.X); bt == "Verdict" || isVerdictName(bt) {
						out = append(out, Finding{
							Rule: RuleVerdictPurity,
							Pos:  p.Fset.Position(lhs.Pos()),
							Msg:  fmt.Sprintf("verdict-transparent %s mutates verdict field %s", fd.Name.Name, exprPath(sel)),
						})
					}
				}
			}
			return true
		})
	}
	return out
}
