package scvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// analyzeClones implements SV002 (clone-incomplete) and SV003
// (clone-unread-field) over every function named Clone or clone.
func analyzeClones(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.ToLower(fd.Name.Name) != "clone" {
				continue
			}
			out = append(out, lintCloneLiterals(p, fd)...)
			out = append(out, lintCloneReceiver(p, fd)...)
		}
	}
	return out
}

// walkWithStack traverses the AST keeping the ancestor stack; fn receives
// each node with its ancestors (nearest last).
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// boundVarOf returns the variable a composite literal (or &literal) is
// assigned to, when the parent is a simple one-to-one assignment; ""
// otherwise (nested literals, returns, arguments).
func boundVarOf(lit *ast.CompositeLit, stack []ast.Node) string {
	var child ast.Node = lit
	i := len(stack) - 1
	if i >= 0 {
		if ue, ok := stack[i].(*ast.UnaryExpr); ok && ue.Op == token.AND {
			child = ue
			i--
		}
	}
	if i < 0 {
		return ""
	}
	switch par := stack[i].(type) {
	case *ast.AssignStmt:
		for ri, rhs := range par.Rhs {
			if rhs == child && ri < len(par.Lhs) {
				if id, ok := par.Lhs[ri].(*ast.Ident); ok {
					return id.Name
				}
			}
		}
	case *ast.ValueSpec:
		for vi, v := range par.Values {
			if v == child && vi < len(par.Names) {
				return par.Names[vi].Name
			}
		}
	}
	return ""
}

// enclosingFuncBody returns the body of the innermost function literal on
// the stack, or the fallback (the declaring function's body).
func enclosingFuncBody(stack []ast.Node, fallback *ast.BlockStmt) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl.Body
		}
	}
	return fallback
}

// lintCloneLiterals checks every keyed struct literal inside a clone
// function: the literal's keys plus any later `v.field = ...` assignments
// to the variable it is bound to, within the same (possibly nested)
// function, must cover every field of the struct. An uncovered field is a
// shallow-copy hole: the clone silently zeroes state the original holds.
func lintCloneLiterals(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return // empty T{} is an intentional zero value, not a copy
		}
		sn := baseTypeIdent(lit.Type)
		if sn == "" {
			return
		}
		fields, ok := p.Structs[sn]
		if !ok {
			return
		}
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			return // positional literal: the compiler enforces full coverage
		}
		covered := make(map[string]bool)
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				covered[id.Name] = true
			}
		}
		if v := boundVarOf(lit, stack); v != "" {
			body := enclosingFuncBody(stack, fd.Body)
			ast.Inspect(body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == v {
						covered[sel.Sel.Name] = true
					}
				}
				return true
			})
		}
		var missing []string
		for _, fn := range p.FieldOrder[sn] {
			if !covered[fn] {
				missing = append(missing, fn)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			out = append(out, Finding{Rule: RuleCloneIncomplete, Pos: p.Fset.Position(lit.Pos()), Msg: fmt.Sprintf(
				"%s literal in %s leaves field(s) %s at their zero value: the clone drops state the original holds",
				sn, fd.Name.Name, strings.Join(missing, ", "))})
		}
		_ = fields
	})
	return out
}

// lintCloneReceiver checks a Clone method mentions every field of its
// receiver's struct type: either as a `recv.field` read, as a key in a
// receiver-type literal, or implicitly via a whole-struct `*recv` copy. A
// never-mentioned field cannot have been copied.
func lintCloneReceiver(p *Package, fd *ast.FuncDecl) []Finding {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	recv := fd.Recv.List[0].Names[0].Name
	if recv == "" || recv == "_" {
		return nil
	}
	sn := baseTypeIdent(fd.Recv.List[0].Type)
	if sn == "" {
		return nil
	}
	fields, ok := p.Structs[sn]
	if !ok || len(fields) == 0 {
		return nil
	}
	mentioned := make(map[string]bool)
	wholeCopy := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := v.X.(*ast.Ident); ok && id.Name == recv {
				mentioned[v.Sel.Name] = true
			}
		case *ast.StarExpr:
			// `cp := *recv` reads every field at once.
			if id, ok := v.X.(*ast.Ident); ok && id.Name == recv {
				wholeCopy = true
			}
		case *ast.CallExpr:
			// The bare receiver handed to a helper (`return deep(r)`) may be
			// copied wholesale there; the method itself proves nothing missing.
			for _, a := range v.Args {
				if id, ok := a.(*ast.Ident); ok && id.Name == recv {
					wholeCopy = true
				}
			}
		case *ast.CompositeLit:
			if baseTypeIdent(v.Type) == sn {
				for _, el := range v.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							mentioned[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	if wholeCopy {
		return nil
	}
	var missing []string
	for _, fn := range p.FieldOrder[sn] {
		if !mentioned[fn] {
			missing = append(missing, fn)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return []Finding{{Rule: RuleCloneUnread, Pos: p.Fset.Position(fd.Pos()), Msg: fmt.Sprintf(
		"Clone method on %s never mentions field(s) %s: they cannot have been copied",
		sn, strings.Join(missing, ", "))}}
}
