package scvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// SV004 guardedby: struct fields annotated `// guarded by <mu>` may only
// be read or written while the named mutex is held.
//
// The annotation names either a mutex field of the same struct
// (`// guarded by mu`) or, for satellite structs whose instances are
// owned by a container that carries the lock, a mutex on another
// package-local struct (`// guarded by resumeStore.mu`). The analysis is
// intra-procedural and deliberately simple: within one function body (a
// func literal is its own body, sharing the enclosing scope), lock and
// unlock calls are ordered by source position, and an access to a
// guarded field is clean when the nearest preceding event on the guard
// is a Lock/RLock of the same instance path (same-struct guards) or of
// the owning type (cross-struct guards). Recognized idioms that would
// otherwise misfire:
//
//   - `defer x.mu.Unlock()` does not emit an unlock event — the unlock
//     happens at return, after every access in the body;
//   - an Unlock whose statement block ends in a return or branch (the
//     early-exit `mu.Unlock(); return err` shape) is skipped, since
//     control leaves the scan range with it;
//   - functions named `...Locked` or `locked...` are lock-transfer
//     helpers called with the guard held; their bodies are exempt, and
//     the analyzer checks their call sites' discipline instead (the
//     caller must itself hold the lock to touch the fields it passes).
//
// Unresolvable receiver/base expressions are skipped, not guessed.

var guardRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardSpec is one parsed annotation: the guarding mutex field, and the
// struct that owns it ("" when it is a field of the annotated struct
// itself).
type guardSpec struct {
	owner string
	mu    string
}

type lockEvent struct {
	pos    token.Pos
	path   string // instance path of the mutex's owner ("b", "s.resume")
	typ    string // package-local type of the owner, "" if unresolved
	mu     string // mutex field name
	unlock bool
}

type guardedAccess struct {
	pos   token.Pos
	path  string
	typ   string
	field string
	spec  guardSpec
}

// isLockedHelper reports the naming idiom for functions that require the
// caller to hold the lock.
func isLockedHelper(name string) bool {
	return strings.HasSuffix(name, "Locked") || strings.HasPrefix(name, "locked")
}

func isMutexType(t ast.Expr) bool {
	t = stripRefs(t)
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

func analyzeGuardedBy(p *Package) []Finding {
	var out []Finding
	guards := make(map[string]map[string]guardSpec) // type -> field -> spec

	// Collect annotations by walking struct declarations directly, so
	// malformed annotations can be reported at the field's position.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				m := guardRE.FindStringSubmatch(fieldCommentText(fl))
				if m == nil {
					continue
				}
				spec, msg := parseGuardSpec(p, ts.Name.Name, m[1])
				if msg != "" {
					out = append(out, Finding{
						Rule: RuleGuardedBy,
						Pos:  p.Fset.Position(fl.Pos()),
						Msg:  msg,
					})
					continue
				}
				if guards[ts.Name.Name] == nil {
					guards[ts.Name.Name] = make(map[string]guardSpec)
				}
				for _, nm := range fl.Names {
					guards[ts.Name.Name][nm.Name] = spec
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return out
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			env := newTypeEnv(p, fd)
			out = append(out, checkGuardedBody(p, env, guards, fd.Body, fd.Name.Name)...)
		}
	}
	return out
}

// parseGuardSpec validates one annotation against the package's structs.
// It returns a non-empty message when the annotation is unusable — an
// annotation that silently checks nothing is worse than none.
func parseGuardSpec(p *Package, owner, ref string) (guardSpec, string) {
	parts := strings.Split(ref, ".")
	switch len(parts) {
	case 1:
		mt, ok := p.Structs[owner][parts[0]]
		if !ok {
			return guardSpec{}, fmt.Sprintf("guarded-by annotation names %q, which is not a field of %s", parts[0], owner)
		}
		if !isMutexType(mt) {
			return guardSpec{}, fmt.Sprintf("guarded-by annotation names %s.%s, which is not a sync.Mutex or sync.RWMutex", owner, parts[0])
		}
		return guardSpec{mu: parts[0]}, ""
	case 2:
		flds, ok := p.Structs[parts[0]]
		if !ok {
			return guardSpec{}, fmt.Sprintf("guarded-by annotation names unknown type %q", parts[0])
		}
		mt, ok := flds[parts[1]]
		if !ok || !isMutexType(mt) {
			return guardSpec{}, fmt.Sprintf("guarded-by annotation names %s.%s, which is not a sync.Mutex or sync.RWMutex field", parts[0], parts[1])
		}
		return guardSpec{owner: parts[0], mu: parts[1]}, ""
	}
	return guardSpec{}, fmt.Sprintf("guarded-by annotation %q is not <mu> or <Type>.<mu>", ref)
}

// checkGuardedBody analyzes one lock context: a function or func literal
// body. Func literals found inside are queued and analyzed as their own
// contexts with the same scope environment, because they run on other
// goroutines (or at defer time) and inherit no lock state.
func checkGuardedBody(p *Package, env *typeEnv, guards map[string]map[string]guardSpec, body *ast.BlockStmt, funcName string) []Finding {
	var (
		out      []Finding
		events   []lockEvent
		accesses []guardedAccess
		literals []*ast.BlockStmt
		deferred = make(map[*ast.CallExpr]bool)
	)

	// Parent links for the terminating-block test on unlock events.
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			literals = append(literals, v.Body)
			return false
		case *ast.DeferStmt:
			if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
				literals = append(literals, lit.Body)
				// Arguments are evaluated at defer time; walk them.
				for _, a := range v.Call.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
			deferred[v.Call] = true
			return true
		case *ast.CallExpr:
			if ev, ok := lockEventOf(env, v); ok {
				if deferred[v] {
					return true // runs at return, after every access
				}
				if ev.unlock && inTerminatingBlock(parents, v, body) {
					return true // control exits with this unlock
				}
				events = append(events, ev)
				return true
			}
		case *ast.SelectorExpr:
			typ := env.baseType(v.X)
			if typ == "" {
				return true
			}
			if spec, ok := guards[typ][v.Sel.Name]; ok {
				accesses = append(accesses, guardedAccess{
					pos: v.Sel.Pos(), path: exprPath(v.X), typ: typ,
					field: v.Sel.Name, spec: spec,
				})
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	if !isLockedHelper(funcName) {
		for _, a := range accesses {
			if held(events, a) {
				continue
			}
			guard := a.spec.mu
			if a.spec.owner != "" {
				guard = a.spec.owner + "." + a.spec.mu
			}
			out = append(out, Finding{
				Rule: RuleGuardedBy,
				Pos:  p.Fset.Position(a.pos),
				Msg:  fmt.Sprintf("%s.%s accessed in %s without holding %s", a.typ, a.field, funcName, guard),
			})
		}
	}

	for _, lit := range literals {
		out = append(out, checkGuardedBody(p, env, guards, lit, funcName+" (func literal)")...)
	}
	return out
}

// lockEventOf recognizes x.mu.Lock / RLock / Unlock / RUnlock.
func lockEventOf(env *typeEnv, c *ast.CallExpr) (lockEvent, bool) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var unlock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return lockEvent{}, false
	}
	owner, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{
		pos:    c.Pos(),
		path:   exprPath(owner.X),
		typ:    env.baseType(owner.X),
		mu:     owner.Sel.Name,
		unlock: unlock,
	}, true
}

// inTerminatingBlock reports whether the node's innermost statement list
// (other than the context body itself) ends with a return or branch
// statement — the `mu.Unlock(); return err` early-exit shape.
func inTerminatingBlock(parents map[ast.Node]ast.Node, n ast.Node, body *ast.BlockStmt) bool {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		var list []ast.Stmt
		switch b := cur.(type) {
		case *ast.BlockStmt:
			if b == body {
				return false
			}
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		if len(list) == 0 {
			return false
		}
		switch list[len(list)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
		return false
	}
	return false
}

// held reports whether the nearest preceding event on the access's guard
// is a lock. Same-struct guards match on the instance path; cross-struct
// guards match on the owning type, since the satellite's fields are
// only reachable through the owner that holds the lock.
func held(events []lockEvent, a guardedAccess) bool {
	var last *lockEvent
	for i := range events {
		ev := &events[i]
		if ev.pos >= a.pos {
			break
		}
		if ev.mu != a.spec.mu {
			continue
		}
		if a.spec.owner == "" {
			if ev.path != a.path || ev.typ != a.typ {
				continue
			}
		} else if ev.typ != a.spec.owner {
			continue
		}
		last = ev
	}
	return last != nil && !last.unlock
}
