package scvet

import (
	"fmt"
	"go/ast"
	"go/token"
)

// SV007 atomicmix: a field accessed through sync/atomic anywhere in the
// package must never be accessed plainly elsewhere — a plain read beside
// atomic.AddInt64 is a data race the race detector only catches when a
// test happens to interleave it. Two field styles are covered:
//
//   - plain-typed fields (int64 etc.) passed to atomic.* by address:
//     every other selector access to the same (type, field) pair in the
//     package must also go through sync/atomic;
//   - atomic.Int64 / atomic.Bool / atomic.Pointer[T]-typed fields:
//     method calls and address-taking are the only legal uses; copying
//     the value or reassigning the field defeats the type's guarantee
//     (and copies its internal state, which `go vet` copylocks also
//     hates — this rule fires at the field granularity with the owning
//     type named).
//
// As everywhere in scvet, base expressions that do not resolve to a
// package-local struct type are skipped, not guessed.

type fieldKey struct {
	typ, field string
}

// isAtomicType reports whether a declared field type is one of the
// sync/atomic value types (atomic.Int64, atomic.Pointer[T], ...) held
// BY VALUE. A *atomic.Int64 field is excluded: copying it copies a
// pointer, which is fine — the shared counter it points at is intact.
func isAtomicType(t ast.Expr) bool {
	for {
		pp, ok := t.(*ast.ParenExpr)
		if !ok {
			break
		}
		t = pp.X
	}
	if _, isPtr := t.(*ast.StarExpr); isPtr {
		return false
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // atomic.Pointer[T]
		t = ix.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "atomic"
}

// isAtomicCall reports a call of the form atomic.Fn(...).
func isAtomicCall(c *ast.CallExpr) bool {
	sel, ok := unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "atomic"
}

func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func analyzeAtomicMix(p *Package) []Finding {
	typedAtomic := make(map[fieldKey]bool)
	for t, fields := range p.Structs {
		for fname, ft := range fields {
			if isAtomicType(ft) {
				typedAtomic[fieldKey{t, fname}] = true
			}
		}
	}

	type access struct {
		pos token.Pos
		fn  string
	}
	atomicOps := make(map[fieldKey][]access)
	plainOps := make(map[fieldKey][]access)
	var out []Finding

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			env := newTypeEnv(p, fd)
			parents := buildParents(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				bt := env.baseType(sel.X)
				if bt == "" {
					return true
				}
				if _, isField := p.Structs[bt][sel.Sel.Name]; !isField {
					return true
				}
				key := fieldKey{bt, sel.Sel.Name}
				par := parents[sel]

				// &x.f — address-taking: the atomic access style for
				// plain fields, and a legal use of atomic-typed ones.
				if ue, ok := par.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					if call, ok := parents[ue].(*ast.CallExpr); ok && isAtomicCall(call) {
						if !typedAtomic[key] {
							atomicOps[key] = append(atomicOps[key], access{sel.Sel.Pos(), fd.Name.Name})
						}
						return true
					}
					if typedAtomic[key] {
						return true // sharing a pointer to the atomic value
					}
					plainOps[key] = append(plainOps[key], access{sel.Sel.Pos(), fd.Name.Name})
					return true
				}

				if typedAtomic[key] {
					// Method call on the field: x.f.Load() — the parent
					// selector is the callee of a call expression.
					if psel, ok := par.(*ast.SelectorExpr); ok && psel.X == sel {
						if call, ok := parents[psel].(*ast.CallExpr); ok && call.Fun == psel {
							return true
						}
					}
					msg := fmt.Sprintf("atomic-typed field %s.%s copied by value; only method calls and & are safe", bt, sel.Sel.Name)
					if as, ok := par.(*ast.AssignStmt); ok {
						for _, l := range as.Lhs {
							if l == ast.Expr(sel) {
								msg = fmt.Sprintf("atomic-typed field %s.%s reassigned; use its Store method", bt, sel.Sel.Name)
							}
						}
					}
					out = append(out, Finding{
						Rule: RuleAtomicMix,
						Pos:  p.Fset.Position(sel.Sel.Pos()),
						Msg:  msg,
					})
					return true
				}

				plainOps[key] = append(plainOps[key], access{sel.Sel.Pos(), fd.Name.Name})
				return true
			})
		}
	}

	for key, accs := range plainOps {
		if len(atomicOps[key]) == 0 {
			continue
		}
		for _, a := range accs {
			out = append(out, Finding{
				Rule: RuleAtomicMix,
				Pos:  p.Fset.Position(a.pos),
				Msg:  fmt.Sprintf("%s.%s is accessed with sync/atomic elsewhere in the package; plain access in %s races with it", key.typ, key.field, a.fn),
			})
		}
	}
	return out
}
