package scvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// SV005 wireflag: wire-format flag bits are allocated exactly once, in a
// registry const block marked `//scvet:wireflag-registry` (the block in
// internal/descriptor). A bit reused for two meanings parses cleanly on
// both ends of a connection and silently changes session semantics — the
// failure mode no dynamic test catches, because both peers agree. Four
// checks enforce the contract:
//
//  1. registry hygiene: within a marked block, constants of one family
//     (hello / verdict / ack, by naming convention <family>Flag<Name>)
//     must not share bits;
//  2. no invented bits: a flag-named constant declared outside a marked
//     block must alias a flag-named constant (registry bit or mask), not
//     carry its own numeric value;
//  3. parsers mask-and-reject: a function named parse* that references a
//     family's flag constants must contain an `&^` (or `&^=`) masking
//     expression over that family — the shape of "strip what I handle,
//     reject the rest";
//  4. encoders set declared bits only: in a function that ORs flag
//     constants into a variable, ORing a raw numeric bit into the same
//     variable (or mixing a literal into a flag expression) is flagged.
//
// Constant values are evaluated for literals, shifts, ors and in-scope
// const references; unresolvable values are skipped, not guessed.

var (
	flagNameRE = regexp.MustCompile(`(?i)^(hello|verdict|ack)flag`)
	maskNameRE = regexp.MustCompile(`(?i)flagmask$`)
	parseFnRE  = regexp.MustCompile(`(?i)^parse`)
)

// flagFamily returns the lowercased wire family of a flag-named
// identifier, or "".
func flagFamily(name string) string {
	m := flagNameRE.FindStringSubmatch(name)
	if m == nil {
		return ""
	}
	return strings.ToLower(m[1])
}

// isWireFlagRef reports whether an expression is built purely from
// references to flag-named constants (possibly or-ed together), and if
// so which families it touches.
func isWireFlagRef(x ast.Expr, fams map[string]bool) bool {
	switch v := unparen(x).(type) {
	case *ast.Ident:
		f := flagFamily(v.Name)
		if f == "" {
			return false
		}
		fams[f] = true
		return true
	case *ast.SelectorExpr:
		f := flagFamily(v.Sel.Name)
		if f == "" {
			return false
		}
		fams[f] = true
		return true
	case *ast.BinaryExpr:
		if v.Op != token.OR {
			return false
		}
		return isWireFlagRef(v.X, fams) && isWireFlagRef(v.Y, fams)
	case *ast.CallExpr:
		// A conversion like byte(flag) keeps the reference.
		if len(v.Args) == 1 {
			return isWireFlagRef(v.Args[0], fams)
		}
	}
	return false
}

// containsRawBit reports whether an expression contains a nonzero
// integer literal or a shift — a bit not named by any constant.
func containsRawBit(x ast.Expr) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
			if v, err := strconv.ParseUint(lit.Value, 0, 64); err == nil && v != 0 {
				found = true
			}
		}
		return !found
	})
	return found
}

// touchesFlag reports which flag families an arbitrary expression
// references, without requiring the whole expression to be flag-pure.
func touchesFlag(x ast.Expr, fams map[string]bool) {
	ast.Inspect(x, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if f := flagFamily(v.Name); f != "" {
				fams[f] = true
			}
		case *ast.SelectorExpr:
			if f := flagFamily(v.Sel.Name); f != "" {
				fams[f] = true
			}
			return false // don't double-count the base
		}
		return true
	})
}

func analyzeWireFlag(p *Package) []Finding {
	var out []Finding

	// Pass 1: registries and package-level flag constants.
	consts := make(map[string]uint64) // resolvable const values, for eval
	type regConst struct {
		name  string
		val   uint64
		known bool
		pos   token.Pos
	}
	var registry []regConst
	inRegistry := make(map[string]bool)

	evalConst := func(x ast.Expr) (uint64, bool) {
		var eval func(x ast.Expr) (uint64, bool)
		eval = func(x ast.Expr) (uint64, bool) {
			switch v := unparen(x).(type) {
			case *ast.BasicLit:
				if v.Kind != token.INT {
					return 0, false
				}
				n, err := strconv.ParseUint(v.Value, 0, 64)
				return n, err == nil
			case *ast.Ident:
				n, ok := consts[v.Name]
				return n, ok
			case *ast.BinaryExpr:
				a, okA := eval(v.X)
				b, okB := eval(v.Y)
				if !okA || !okB {
					return 0, false
				}
				switch v.Op {
				case token.SHL:
					return a << b, true
				case token.OR:
					return a | b, true
				case token.AND:
					return a & b, true
				case token.ADD:
					return a + b, true
				}
			}
			return 0, false
		}
		return eval(x)
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			marked := hasDirective(gd.Doc, "wireflag-registry")
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					var val ast.Expr
					if i < len(vs.Values) {
						val = vs.Values[i]
					}
					if val != nil {
						if v, ok := evalConst(val); ok {
							consts[nm.Name] = v
						}
					}
					if flagFamily(nm.Name) == "" {
						continue
					}
					if marked {
						inRegistry[nm.Name] = true
						if maskNameRE.MatchString(nm.Name) {
							continue
						}
						v, known := uint64(0), false
						if val != nil {
							v, known = evalConst(val)
						}
						registry = append(registry, regConst{name: nm.Name, val: v, known: known, pos: nm.Pos()})
						continue
					}
					// Outside a registry: masks are compositions, not
					// allocations; anything else must alias a flag name.
					if maskNameRE.MatchString(nm.Name) {
						continue
					}
					fams := make(map[string]bool)
					if val == nil || !isWireFlagRef(val, fams) {
						out = append(out, Finding{
							Rule: RuleWireFlag,
							Pos:  p.Fset.Position(nm.Pos()),
							Msg:  fmt.Sprintf("flag constant %s declares its own bit; allocate it in the wireflag registry (internal/descriptor) and alias it here", nm.Name),
						})
					}
				}
			}
		}
	}

	// Registry family-collision check.
	for i, rc := range registry {
		if !rc.known {
			continue
		}
		fam := flagFamily(rc.name)
		for _, prev := range registry[:i] {
			if prev.known && flagFamily(prev.name) == fam && prev.val&rc.val != 0 {
				out = append(out, Finding{
					Rule: RuleWireFlag,
					Pos:  p.Fset.Position(rc.pos),
					Msg:  fmt.Sprintf("registry flag %s (%#x) shares bits with %s (%#x) in the %s family", rc.name, rc.val, prev.name, prev.val, fam),
				})
			}
		}
	}

	// Pass 2: parser and encoder discipline, per function.
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkFlagFunc(p, fd)...)
		}
	}
	return out
}

func checkFlagFunc(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding

	used := make(map[string]bool)   // families referenced anywhere
	masked := make(map[string]bool) // families appearing in &^ masking
	type orAssign struct {
		lhs  string
		rhs  ast.Expr
		pos  token.Pos
		fams map[string]bool
	}
	var ors []orAssign

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if f := flagFamily(v.Name); f != "" {
				used[f] = true
			}
		case *ast.SelectorExpr:
			if f := flagFamily(v.Sel.Name); f != "" {
				used[f] = true
			}
		case *ast.BinaryExpr:
			if v.Op == token.AND_NOT {
				touchesFlag(v.Y, masked)
				touchesFlag(v.X, masked)
			}
		case *ast.AssignStmt:
			switch v.Tok {
			case token.AND_NOT_ASSIGN:
				for _, r := range v.Rhs {
					touchesFlag(r, masked)
				}
			case token.OR_ASSIGN:
				if len(v.Lhs) == 1 && len(v.Rhs) == 1 {
					fams := make(map[string]bool)
					touchesFlag(v.Rhs[0], fams)
					ors = append(ors, orAssign{lhs: exprPath(v.Lhs[0]), rhs: v.Rhs[0], pos: v.Pos(), fams: fams})
				}
			case token.ASSIGN, token.DEFINE:
				// Mixing a raw bit into a flag expression in one shot:
				// flags = helloFlagToken | 1<<6.
				for _, r := range v.Rhs {
					if be, ok := unparen(r).(*ast.BinaryExpr); ok && be.Op == token.OR {
						fams := make(map[string]bool)
						touchesFlag(be, fams)
						if len(fams) > 0 && containsRawBit(be) {
							out = append(out, Finding{
								Rule: RuleWireFlag,
								Pos:  p.Fset.Position(r.Pos()),
								Msg:  fmt.Sprintf("%s mixes a raw bit into a wire-flag expression; declare the bit in the wireflag registry", fd.Name.Name),
							})
						}
					}
				}
			}
		}
		return true
	})

	// Parser contract: parse* functions referencing a family must mask
	// that family with &^ somewhere.
	if parseFnRE.MatchString(fd.Name.Name) {
		for fam := range used {
			if !masked[fam] {
				out = append(out, Finding{
					Rule: RuleWireFlag,
					Pos:  p.Fset.Position(fd.Pos()),
					Msg:  fmt.Sprintf("%s parses %s flags but never masks-and-rejects undeclared bits (no &^ over the %s family)", fd.Name.Name, fam, fam),
				})
			}
		}
	}

	// Encoder contract: a variable that receives flag constants by |=
	// must never receive a raw numeric bit by |=.
	flagVars := make(map[string]bool)
	for _, o := range ors {
		if len(o.fams) > 0 && o.lhs != "" {
			flagVars[o.lhs] = true
		}
	}
	for _, o := range ors {
		if o.lhs != "" && flagVars[o.lhs] && containsRawBit(o.rhs) {
			out = append(out, Finding{
				Rule: RuleWireFlag,
				Pos:  p.Fset.Position(o.pos),
				Msg:  fmt.Sprintf("%s ORs a raw bit into flag variable %q; declare the bit in the wireflag registry", fd.Name.Name, o.lhs),
			})
		}
	}
	return out
}
