package scvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// isEncodingFunc reports whether a function's name marks it as producing a
// canonical encoding or a transition list — the contexts in which map
// iteration order leaks into verification results.
func isEncodingFunc(name string) bool {
	switch name {
	case "CanonicalRename", "Transitions", "Roles":
		return true
	}
	return strings.Contains(strings.ToLower(name), "key")
}

// analyzeMapRange implements SV001: map iteration feeding canonical
// encodings or transition lists.
func analyzeMapRange(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isEncodingFunc(fd.Name.Name) {
				continue
			}
			out = append(out, lintEncodingFunc(p, fd)...)
		}
	}
	return out
}

// funcCtx is the per-function symbol table the syntactic analysis builds:
// which variables have known struct types, which are maps, which
// identifiers are the function's output, and which local callables emit
// into that output.
type funcCtx struct {
	p         *Package
	fd        *ast.FuncDecl
	varStruct map[string]string // var name -> struct type name
	mapVars   map[string]bool   // var name -> declared as a map
	sinks     map[string]bool   // idents the function's output flows through
	sinkCalls map[string]bool   // local funcs/params whose call emits output
}

func newFuncCtx(p *Package, fd *ast.FuncDecl) *funcCtx {
	c := &funcCtx{
		p:         p,
		fd:        fd,
		varStruct: make(map[string]string),
		mapVars:   make(map[string]bool),
		sinks:     make(map[string]bool),
		sinkCalls: make(map[string]bool),
	}
	c.collectBindings()
	c.collectSinks()
	c.collectEmittingClosures()
	return c
}

func (c *funcCtx) bindVar(name string, typ ast.Expr) {
	if name == "" || name == "_" || typ == nil {
		return
	}
	if isMapType(typ) {
		c.mapVars[name] = true
		return
	}
	if id := baseTypeIdent(typ); id != "" {
		if _, ok := c.p.Structs[id]; ok {
			c.varStruct[name] = id
		}
	}
}

func (c *funcCtx) collectBindings() {
	if c.fd.Recv != nil && len(c.fd.Recv.List) == 1 && len(c.fd.Recv.List[0].Names) == 1 {
		c.bindVar(c.fd.Recv.List[0].Names[0].Name, c.fd.Recv.List[0].Type)
	}
	for _, fl := range c.fd.Type.Params.List {
		for _, nm := range fl.Names {
			c.bindVar(nm.Name, fl.Type)
			if _, ok := fl.Type.(*ast.FuncType); ok {
				// A func-typed parameter (emit callbacks, Roles' visit) is an
				// output channel: calling it emits.
				c.sinkCalls[nm.Name] = true
			}
		}
	}
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				c.bindVar(id.Name, exprType(v.Rhs[i]))
			}
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					if vs.Type != nil {
						c.bindVar(nm.Name, vs.Type)
					} else if i < len(vs.Values) {
						c.bindVar(nm.Name, exprType(vs.Values[i]))
					}
				}
			}
		}
		return true
	})
}

// exprType syntactically recovers a type expression from a value
// expression, for the few forms the analysis needs: composite literals,
// &composite literals, make(...), map literals and type assertions.
func exprType(e ast.Expr) ast.Expr {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return v.Type
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return exprType(v.X)
		}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			return v.Args[0]
		}
	case *ast.TypeAssertExpr:
		return v.Type
	}
	return nil
}

func (c *funcCtx) collectSinks() {
	if res := c.fd.Type.Results; res != nil {
		for _, fl := range res.List {
			for _, nm := range fl.Names {
				c.sinks[nm.Name] = true
			}
		}
	}
	// Only returns of the function itself define its output; descending into
	// nested closures (sort comparators, helpers) would make nearly every
	// local a sink.
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					c.sinks[id.Name] = true
				}
				return true
			})
		}
		return true
	})
}

// collectEmittingClosures finds local `name := func(...) {...}` bindings
// whose bodies emit (directly or through other emitting closures) and adds
// them to sinkCalls, iterating to a fixpoint.
func (c *funcCtx) collectEmittingClosures() {
	type closure struct {
		name string
		body *ast.BlockStmt
	}
	var closures []closure
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		fl, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		closures = append(closures, closure{name: id.Name, body: fl.Body})
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, cl := range closures {
			if c.sinkCalls[cl.name] {
				continue
			}
			if c.emits(cl.body) {
				c.sinkCalls[cl.name] = true
				changed = true
			}
		}
	}
}

// leftmostIdent unwraps index, selector, star and paren expressions down
// to the base identifier of an lvalue (or value) chain.
func leftmostIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// emits reports whether the node's subtree writes to a sink or calls an
// emitting function.
func (c *funcCtx) emits(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if id := leftmostIdent(lhs); id != nil && c.sinks[id.Name] {
					found = true
					return false
				}
			}
		case *ast.IncDecStmt:
			if id := leftmostIdent(v.X); id != nil && c.sinks[id.Name] {
				found = true
				return false
			}
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && c.sinkCalls[id.Name] {
				found = true
				return false
			}
		case *ast.ReturnStmt:
			// A return inside the loop (e.g. Transitions' `return out`)
			// publishes whatever was built — treat as emission only if it
			// returns a sink; the sink set already contains those idents, so
			// any append-to-sink was caught above.
			return true
		}
		return true
	})
	return found
}

// resolveStructOf returns the struct type name of an expression, or "".
func (c *funcCtx) resolveStructOf(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return c.varStruct[v.Name]
	case *ast.ParenExpr:
		return c.resolveStructOf(v.X)
	case *ast.StarExpr:
		return c.resolveStructOf(v.X)
	case *ast.SelectorExpr:
		base := c.resolveStructOf(v.X)
		if base == "" {
			return ""
		}
		ft, ok := c.p.Structs[base][v.Sel.Name]
		if !ok {
			return ""
		}
		if id := baseTypeIdent(ft); id != "" {
			if _, ok := c.p.Structs[id]; ok {
				return id
			}
		}
		return ""
	default:
		return ""
	}
}

// isMapExpr reports whether the expression is resolvably map-typed.
func (c *funcCtx) isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return c.mapVars[v.Name]
	case *ast.ParenExpr:
		return c.isMapExpr(v.X)
	case *ast.SelectorExpr:
		base := c.resolveStructOf(v.X)
		if base == "" {
			return false
		}
		ft, ok := c.p.Structs[base][v.Sel.Name]
		return ok && isMapType(ft)
	default:
		return false
	}
}

// lintEncodingFunc scans one encoding function for map iteration whose
// effects reach the function's output, tracking the sorted-keys idiom:
// a slice filled from a map range is tainted until passed to sort.
func lintEncodingFunc(p *Package, fd *ast.FuncDecl) []Finding {
	c := newFuncCtx(p, fd)

	type event struct {
		pos     token.Pos
		kind    int // 0 taint, 1 untaint, 2 range-over-slice-emitting
		name    string
		finding *Finding
	}
	var events []event
	var out []Finding

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			if c.isMapExpr(v.X) {
				if c.emits(v.Body) {
					pos := p.Fset.Position(v.Pos())
					out = append(out, Finding{Rule: RuleMapRange, Pos: pos, Msg: fmt.Sprintf(
						"map iteration feeds the output of %s: iteration order is random, so the encoding is nondeterministic; collect and sort keys first",
						fd.Name.Name)})
					return true
				}
				// The sorted-keys idiom's first half: slices appended inside
				// this loop are tainted until sorted.
				for _, s := range appendTargets(v.Body) {
					events = append(events, event{pos: v.End(), kind: 0, name: s})
				}
				return true
			}
			// Ranging over a tainted (unsorted, map-derived) slice with
			// emission is the idiom gone wrong.
			if id, ok := v.X.(*ast.Ident); ok && c.emits(v.Body) {
				pos := p.Fset.Position(v.Pos())
				events = append(events, event{pos: v.Pos(), kind: 2, name: id.Name, finding: &Finding{
					Rule: RuleMapRange, Pos: pos, Msg: fmt.Sprintf(
						"iteration over %q, which was filled from a map but never sorted, feeds the output of %s",
						id.Name, fd.Name.Name)}})
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if base, ok := sel.X.(*ast.Ident); ok && base.Name == "sort" && len(v.Args) > 0 {
					if id := leftmostIdent(v.Args[0]); id != nil {
						events = append(events, event{pos: v.Pos(), kind: 1, name: id.Name})
					}
				}
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	tainted := make(map[string]bool)
	for _, ev := range events {
		switch ev.kind {
		case 0:
			tainted[ev.name] = true
		case 1:
			delete(tainted, ev.name)
		case 2:
			if tainted[ev.name] {
				out = append(out, *ev.finding)
			}
		}
	}
	return out
}

// appendTargets lists the names of slices grown via `s = append(s, ...)`
// inside the node.
func appendTargets(node ast.Node) []string {
	var out []string
	ast.Inspect(node, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
			out = append(out, id.Name)
		}
		return true
	})
	return out
}
