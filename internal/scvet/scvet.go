// Package scvet statically analyzes this repository's Go source for
// violations of the invariants the verification method's correctness rests
// on. The model checker closes its state space over canonical encodings
// (State.Key, StateKey, CanonicalKey, ...), counterexample replay assumes
// deterministic transition enumeration, and branching exploration assumes
// Clone methods deep-copy every field — so a map iterated in an encoding
// function, or a struct field missing from a clone, is a soundness bug
// that no unit test reliably catches (Go randomizes map order per run).
//
// Since PRs 2–5 grew the repo into a distributed checking service, the
// invariants worth machine-checking are no longer only the checker's: the
// serving and grid layers rest on lock discipline, wire-flag hygiene, and
// the proxy's structural inability to alter verdicts. scvet v2 is a
// multichecker of named analyzers, purely syntactic (go/ast, no type
// checker):
//
//   - SV001 maprange: a `for ... range` over a map whose body feeds a
//     canonical encoding or a transition list. The sorted-keys idiom
//     (collect keys into a slice, sort, then iterate) is recognized and
//     not flagged; a collected-but-never-sorted slice is.
//   - SV002 clone (incomplete): a composite literal inside a Clone/clone
//     function that, together with later field assignments to the same
//     variable, does not cover every field of its struct type.
//   - SV003 clone (unread field): a field of a Clone method's receiver
//     type that the method body never mentions at all.
//   - SV004 guardedby: struct fields annotated `// guarded by <mu>` must
//     only be touched while the named mutex is held (see guardedby.go).
//   - SV005 wireflag: wire flag bits live in the internal/descriptor
//     registry; parsers mask-and-reject, encoders set declared bits only
//     (see wireflag.go).
//   - SV006 verdictpurity: functions marked `//scvet:verdict-transparent`
//     must not reference verdict-constructing APIs (see verdictpurity.go).
//   - SV007 atomicmix: a field accessed via sync/atomic anywhere must
//     never be accessed plainly elsewhere (see atomicmix.go).
//
// Being syntactic, the analyses resolve types only as far as receiver,
// parameter and local declarations allow; unresolvable expressions are
// skipped rather than guessed, so findings are high-confidence.
package scvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule identifiers, stable across releases.
const (
	// RuleMapRange flags map iteration feeding canonical encodings or
	// transition lists.
	RuleMapRange = "SV001"
	// RuleCloneIncomplete flags composite literals in clone functions that
	// leave struct fields at their zero value.
	RuleCloneIncomplete = "SV002"
	// RuleCloneUnread flags receiver fields never mentioned in a Clone
	// method.
	RuleCloneUnread = "SV003"
	// RuleGuardedBy flags accesses to `// guarded by <mu>` fields outside
	// the named mutex's critical section.
	RuleGuardedBy = "SV004"
	// RuleWireFlag flags wire flag bits invented outside the registry,
	// registry collisions, parsers that do not mask-and-reject, and
	// encoders that set raw bits.
	RuleWireFlag = "SV005"
	// RuleVerdictPurity flags verdict-constructing references inside code
	// marked verdict-transparent.
	RuleVerdictPurity = "SV006"
	// RuleAtomicMix flags plain accesses to fields that are elsewhere
	// accessed through sync/atomic, and by-value copies of atomic.* typed
	// fields.
	RuleAtomicMix = "SV007"
)

// An Analyzer is one named analysis pass over a parsed package.
type Analyzer struct {
	// Name is the short analyzer name used for -rules selection.
	Name string
	// Rules lists the rule IDs the analyzer can emit.
	Rules []string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package.
	Run func(*Package) []Finding
}

// Analyzers returns the full multichecker suite in rule order. The slice
// is freshly allocated; callers may filter it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "maprange", Rules: []string{RuleMapRange}, Doc: "map iteration feeding canonical encodings or transition lists", Run: analyzeMapRange},
		{Name: "clone", Rules: []string{RuleCloneIncomplete, RuleCloneUnread}, Doc: "Clone methods that miss or never mention receiver fields", Run: analyzeClones},
		{Name: "guardedby", Rules: []string{RuleGuardedBy}, Doc: "guarded-by annotated fields accessed without the named mutex", Run: analyzeGuardedBy},
		{Name: "wireflag", Rules: []string{RuleWireFlag}, Doc: "wire flag bits outside the descriptor registry; parsers/encoders off contract", Run: analyzeWireFlag},
		{Name: "verdictpurity", Rules: []string{RuleVerdictPurity}, Doc: "verdict-constructing references in verdict-transparent code", Run: analyzeVerdictPurity},
		{Name: "atomicmix", Rules: []string{RuleAtomicMix}, Doc: "fields accessed both atomically and plainly", Run: analyzeAtomicMix},
	}
}

// Finding is one rule violation at a source position.
type Finding struct {
	Rule string         `json:"rule"`
	Pos  token.Position `json:"pos"`
	Msg  string         `json:"msg"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Package is one parsed Go package directory.
type Package struct {
	Fset  *token.FileSet
	Dir   string
	Name  string
	Files []*ast.File
	// Structs indexes the package's struct types: type name -> field name
	// -> declared field type expression.
	Structs map[string]map[string]ast.Expr
	// FieldOrder preserves declaration order for stable messages.
	FieldOrder map[string][]string
	// FieldDocs carries the comment text attached to each struct field
	// (doc comment and line comment joined), for annotation-driven
	// analyzers: type name -> field name -> comment text.
	FieldDocs map[string]map[string]string
	// Funcs indexes package-level functions by name; Methods indexes
	// methods by receiver base type then name. Both feed the syntactic
	// call-result type resolution in resolve.go.
	Funcs   map[string]*ast.FuncDecl
	Methods map[string]map[string]*ast.FuncDecl
}

// LoadDir parses every non-test Go file of a directory into a Package.
// Directories with no Go files return (nil, nil).
func LoadDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Fset:       fset,
		Dir:        dir,
		Structs:    make(map[string]map[string]ast.Expr),
		FieldOrder: make(map[string][]string),
		FieldDocs:  make(map[string]map[string]string),
		Funcs:      make(map[string]*ast.FuncDecl),
		Methods:    make(map[string]map[string]*ast.FuncDecl),
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Name = f.Name.Name
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.indexStructs()
	pkg.indexFuncs()
	return pkg, nil
}

func (p *Package) indexFuncs() {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				p.Funcs[fd.Name.Name] = fd
				continue
			}
			recv := baseTypeIdent(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			if p.Methods[recv] == nil {
				p.Methods[recv] = make(map[string]*ast.FuncDecl)
			}
			p.Methods[recv][fd.Name.Name] = fd
		}
	}
}

func (p *Package) indexStructs() {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := make(map[string]ast.Expr)
			docs := make(map[string]string)
			var order []string
			for _, fl := range st.Fields.List {
				doc := fieldCommentText(fl)
				if len(fl.Names) == 0 {
					// Embedded field: named by its type's identifier.
					if id := baseTypeIdent(fl.Type); id != "" {
						fields[id] = fl.Type
						order = append(order, id)
						if doc != "" {
							docs[id] = doc
						}
					}
					continue
				}
				for _, nm := range fl.Names {
					fields[nm.Name] = fl.Type
					order = append(order, nm.Name)
					if doc != "" {
						docs[nm.Name] = doc
					}
				}
			}
			p.Structs[ts.Name.Name] = fields
			p.FieldOrder[ts.Name.Name] = order
			p.FieldDocs[ts.Name.Name] = docs
			return true
		})
	}
}

// baseTypeIdent returns the identifier naming a type expression, looking
// through pointers; "" when the type is not a plain (possibly pointered)
// identifier.
func baseTypeIdent(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return baseTypeIdent(v.X)
	case *ast.SelectorExpr:
		return "" // foreign package type; not resolvable syntactically
	default:
		return ""
	}
}

// isMapType reports whether a declared type expression is a map.
func isMapType(t ast.Expr) bool {
	_, ok := t.(*ast.MapType)
	return ok
}

// hasDirective reports whether a comment group contains a `//scvet:name`
// directive line. CommentGroup.Text() strips directive-shaped lines, so
// markers must be searched in the raw comment list.
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "scvet:"+name) {
			return true
		}
	}
	return false
}

// fieldCommentText joins a struct field's doc comment and trailing line
// comment into one searchable string.
func fieldCommentText(fl *ast.Field) string {
	var parts []string
	if fl.Doc != nil {
		parts = append(parts, fl.Doc.Text())
	}
	if fl.Comment != nil {
		parts = append(parts, fl.Comment.Text())
	}
	return strings.Join(parts, "\n")
}

// Analyze runs every analyzer over the package.
func Analyze(p *Package) []Finding {
	return AnalyzeWith(p, Analyzers())
}

// AnalyzeWith runs the given analyzers over the package.
func AnalyzeWith(p *Package, as []*Analyzer) []Finding {
	var out []Finding
	for _, a := range as {
		out = append(out, a.Run(p)...)
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Rule < fs[j].Rule
	})
}

// SelectAnalyzers resolves a comma-separated selection of analyzer names
// and/or rule IDs ("guardedby,SV005") into the matching analyzers; the
// empty selection means all of them.
func SelectAnalyzers(sel string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(sel) == "" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, s := range strings.Split(sel, ",") {
		if s = strings.TrimSpace(s); s != "" {
			want[s] = true
		}
	}
	var out []*Analyzer
	for _, a := range all {
		keep := want[a.Name]
		for _, r := range a.Rules {
			if want[r] {
				keep = true
			}
			delete(want, r)
		}
		delete(want, a.Name)
		if keep {
			out = append(out, a)
		}
	}
	for s := range want {
		return nil, fmt.Errorf("unknown analyzer or rule %q", s)
	}
	return out, nil
}

// Summary renders the one-line rule-tagged tally used as the final
// stderr line when scvet fails the build, e.g.
// "scvet: 3 findings [SV004 x2, SV007 x1]".
func Summary(fs []Finding) string {
	if len(fs) == 0 {
		return "scvet: clean"
	}
	counts := make(map[string]int)
	for _, f := range fs {
		counts[f.Rule]++
	}
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = fmt.Sprintf("%s x%d", r, counts[r])
	}
	noun := "findings"
	if len(fs) == 1 {
		noun = "finding"
	}
	return fmt.Sprintf("scvet: %d %s [%s]", len(fs), noun, strings.Join(parts, ", "))
}

// Run analyzes the packages named by the arguments with every analyzer:
// each argument is a directory, or a "dir/..." pattern analyzed
// recursively. Directories named testdata, vendor, or starting with "."
// or "_" are skipped during recursion.
func Run(args []string) ([]Finding, error) {
	return RunAnalyzers(args, Analyzers())
}

// RunAnalyzers is Run restricted to the given analyzers.
func RunAnalyzers(args []string, as []*Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	var dirs []string
	seen := make(map[string]struct{})
	addDir := func(d string) {
		d = filepath.Clean(d)
		if _, ok := seen[d]; !ok {
			seen[d] = struct{}{}
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		if root, ok := strings.CutSuffix(arg, "/..."); ok {
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				addDir(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			addDir(arg)
		}
	}

	var out []Finding
	for _, dir := range dirs {
		pkg, err := LoadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		out = append(out, AnalyzeWith(pkg, as)...)
	}
	sortFindings(out)
	return out, nil
}
