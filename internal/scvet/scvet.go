// Package scvet statically analyzes this repository's Go source for
// violations of the invariants the verification method's correctness rests
// on. The model checker closes its state space over canonical encodings
// (State.Key, StateKey, CanonicalKey, ...), counterexample replay assumes
// deterministic transition enumeration, and branching exploration assumes
// Clone methods deep-copy every field — so a map iterated in an encoding
// function, or a struct field missing from a clone, is a soundness bug
// that no unit test reliably catches (Go randomizes map order per run).
//
// Two analyses are provided, purely syntactic (go/ast, no type checker):
//
//   - SV001 map-range-encoding: a `for ... range` over a map whose body
//     feeds a canonical encoding or a transition list. The sorted-keys
//     idiom (collect keys into a slice, sort, then iterate) is recognized
//     and not flagged; a collected-but-never-sorted slice is.
//   - SV002 clone-incomplete: a composite literal inside a Clone/clone
//     function that, together with later field assignments to the same
//     variable, does not cover every field of its struct type.
//   - SV003 clone-unread-field: a field of a Clone method's receiver type
//     that the method body never mentions at all.
//
// Being syntactic, the analyses resolve types only as far as receiver,
// parameter and local declarations allow; unresolvable expressions are
// skipped rather than guessed, so findings are high-confidence.
package scvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule identifiers, stable across releases.
const (
	// RuleMapRange flags map iteration feeding canonical encodings or
	// transition lists.
	RuleMapRange = "SV001"
	// RuleCloneIncomplete flags composite literals in clone functions that
	// leave struct fields at their zero value.
	RuleCloneIncomplete = "SV002"
	// RuleCloneUnread flags receiver fields never mentioned in a Clone
	// method.
	RuleCloneUnread = "SV003"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule string         `json:"rule"`
	Pos  token.Position `json:"pos"`
	Msg  string         `json:"msg"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Package is one parsed Go package directory.
type Package struct {
	Fset  *token.FileSet
	Dir   string
	Name  string
	Files []*ast.File
	// Structs indexes the package's struct types: type name -> field name
	// -> declared field type expression.
	Structs map[string]map[string]ast.Expr
	// FieldOrder preserves declaration order for stable messages.
	FieldOrder map[string][]string
}

// LoadDir parses every non-test Go file of a directory into a Package.
// Directories with no Go files return (nil, nil).
func LoadDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Fset:       fset,
		Dir:        dir,
		Structs:    make(map[string]map[string]ast.Expr),
		FieldOrder: make(map[string][]string),
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Name = f.Name.Name
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.indexStructs()
	return pkg, nil
}

func (p *Package) indexStructs() {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := make(map[string]ast.Expr)
			var order []string
			for _, fl := range st.Fields.List {
				if len(fl.Names) == 0 {
					// Embedded field: named by its type's identifier.
					if id := baseTypeIdent(fl.Type); id != "" {
						fields[id] = fl.Type
						order = append(order, id)
					}
					continue
				}
				for _, nm := range fl.Names {
					fields[nm.Name] = fl.Type
					order = append(order, nm.Name)
				}
			}
			p.Structs[ts.Name.Name] = fields
			p.FieldOrder[ts.Name.Name] = order
			return true
		})
	}
}

// baseTypeIdent returns the identifier naming a type expression, looking
// through pointers; "" when the type is not a plain (possibly pointered)
// identifier.
func baseTypeIdent(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return baseTypeIdent(v.X)
	case *ast.SelectorExpr:
		return "" // foreign package type; not resolvable syntactically
	default:
		return ""
	}
}

// isMapType reports whether a declared type expression is a map.
func isMapType(t ast.Expr) bool {
	_, ok := t.(*ast.MapType)
	return ok
}

// Analyze runs every analyzer over the package.
func Analyze(p *Package) []Finding {
	var out []Finding
	out = append(out, analyzeMapRange(p)...)
	out = append(out, analyzeClones(p)...)
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Rule < fs[j].Rule
	})
}

// Run analyzes the packages named by the arguments: each argument is a
// directory, or a "dir/..." pattern analyzed recursively. Directories
// named testdata, vendor, or starting with "." or "_" are skipped during
// recursion.
func Run(args []string) ([]Finding, error) {
	fset := token.NewFileSet()
	var dirs []string
	seen := make(map[string]struct{})
	addDir := func(d string) {
		d = filepath.Clean(d)
		if _, ok := seen[d]; !ok {
			seen[d] = struct{}{}
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		if root, ok := strings.CutSuffix(arg, "/..."); ok {
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				addDir(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			addDir(arg)
		}
	}

	var out []Finding
	for _, dir := range dirs {
		pkg, err := LoadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		out = append(out, Analyze(pkg)...)
	}
	sortFindings(out)
	return out, nil
}
