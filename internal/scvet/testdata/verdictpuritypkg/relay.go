// Package verdictpuritypkg seeds SV006 verdictpurity violations: a
// miniature of the scgrid proxy, with verdict-transparent relays that
// construct, encode, or mutate verdicts next to one that only parses.
package verdictpuritypkg

import "io"

type Verdict struct {
	Code int
	Note string
}

// ParseVerdict decodes a verdict frame. Parse-named functions build the
// value they return, but calling them is reading — they neither taint
// their callers nor trip the transparent relays below.
func ParseVerdict(p []byte) (Verdict, bool) {
	if len(p) == 0 {
		return Verdict{}, false
	}
	return Verdict{Code: int(p[0])}, true
}

// AppendVerdict encodes a verdict onto a frame.
func AppendVerdict(dst []byte, v Verdict) []byte {
	return append(dst, byte(v.Code))
}

// deliver writes a synthesized verdict frame: tainted through
// AppendVerdict.
func deliver(w io.Writer, v Verdict) {
	w.Write(AppendVerdict(nil, v))
}

// notify is tainted transitively: it builds a Verdict and hands it to
// deliver.
func notify(w io.Writer, code int) {
	deliver(w, Verdict{Code: code})
}

// relay is the allowed shape: forward frames verbatim, parse verdicts
// read-only for accounting.
//
//scvet:verdict-transparent
func relay(dst io.Writer, frames [][]byte, accepts *int) {
	for _, f := range frames {
		if v, ok := ParseVerdict(f); ok && v.Code == 0 {
			*accepts++
		}
		dst.Write(f)
	}
}

// relayInjecting answers for the backend through an innocently-named
// helper — the taint closure catches it.
//
//scvet:verdict-transparent
func relayInjecting(dst io.Writer, frames [][]byte) {
	for _, f := range frames {
		if len(f) == 0 {
			notify(dst, 2) // want "calls notify, which constructs or encodes verdicts"
			continue
		}
		dst.Write(f)
	}
}

// relayConstructing manufactures and encodes a verdict inline.
//
//scvet:verdict-transparent
func relayConstructing(dst io.Writer) {
	v := Verdict{Code: 1}            // want "constructs a Verdict literal"
	dst.Write(AppendVerdict(nil, v)) // want "calls verdict-constructing AppendVerdict"
}

// relayMutating rewrites a parsed verdict before forwarding it.
//
//scvet:verdict-transparent
func relayMutating(dst io.Writer, f []byte) {
	v, ok := ParseVerdict(f)
	if ok {
		v.Note = "scrubbed" // want "mutates verdict field v.Note"
	}
	dst.Write(f)
}
