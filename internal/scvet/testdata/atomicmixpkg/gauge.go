// Package atomicmixpkg seeds SV007 atomicmix violations: fields touched
// both through sync/atomic and plainly, and by-value uses of
// atomic-typed fields, next to the legal uses (method calls,
// address-taking, and pointer-to-atomic fields).
package atomicmixpkg

import "sync/atomic"

type gauge struct {
	hits   int64 // updated via atomic.AddInt64, read plainly below
	misses int64 // atomic-only: clean
	total  atomic.Int64
	depth  *atomic.Int64 // pointer to atomic: copying the pointer is fine
}

func (g *gauge) hit()  { atomic.AddInt64(&g.hits, 1) }
func (g *gauge) miss() { atomic.AddInt64(&g.misses, 1) }

func (g *gauge) missCount() int64 { return atomic.LoadInt64(&g.misses) }

// snapshot reads a counter plainly that hit() updates atomically.
func (g *gauge) snapshot() int64 {
	return g.hits // want "plain access in snapshot races with it"
}

// reset writes the same counter plainly.
func (g *gauge) reset() {
	g.hits = 0 // want "plain access in reset races with it"
}

// bump and share are the legal uses of an atomic-typed field: method
// calls and address-taking.
func (g *gauge) bump() { g.total.Add(1) }

func (g *gauge) share() *atomic.Int64 { return &g.total }

// leak copies the atomic value out, snapshotting its internal state.
func (g *gauge) leak() atomic.Int64 {
	return g.total // want "atomic-typed field gauge.total copied by value"
}

// clobber replaces the atomic value wholesale.
func (g *gauge) clobber() {
	g.total = atomic.Int64{} // want "atomic-typed field gauge.total reassigned; use its Store method"
}

// swap moves the pointer-to-atomic field around; both the copy and the
// reassignment are pointer operations, not state copies.
func (g *gauge) swap(d *atomic.Int64) *atomic.Int64 {
	old := g.depth
	g.depth = d
	return old
}
