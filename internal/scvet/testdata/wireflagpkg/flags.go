// Package wireflagpkg seeds SV005 wireflag violations around a local
// flag registry, next to conforming masks, aliases, parsers and
// encoders.
package wireflagpkg

// The package's bit registry: one family may not reuse a bit.
//
//scvet:wireflag-registry
const (
	HelloFlagToken  = 1 << 0
	HelloFlagResume = 1 << 1
	HelloFlagEcho   = 0x02 // want "registry flag HelloFlagEcho .0x2. shares bits with HelloFlagResume"
	VerdictFlagTier = 1 << 0
)

// Masks are compositions of registry bits, not allocations.
const (
	HelloFlagMask   = HelloFlagToken | HelloFlagResume | HelloFlagEcho
	VerdictFlagMask = VerdictFlagTier
)

// Aliasing a registry name is fine; minting a bit outside the registry
// is not.
const (
	helloFlagDefault = HelloFlagToken
	helloFlagRogue   = 1 << 5 // want "flag constant helloFlagRogue declares its own bit"
)

// parseHelloFlags is the conforming parser shape: keep what the
// registry declares, reject everything else.
func parseHelloFlags(v uint64) (uint64, bool) {
	if v&^HelloFlagMask != 0 {
		return 0, false
	}
	return v & HelloFlagMask, true
}

// parseVerdictFlags takes its family's bits without ever rejecting
// undeclared ones.
func parseVerdictFlags(v uint64) uint64 { // want "parseVerdictFlags parses verdict flags but never masks-and-rejects"
	return v & VerdictFlagTier
}

// encodeHello sets declared bits only.
func encodeHello(token, resume bool) uint64 {
	var f uint64
	if token {
		f |= HelloFlagToken
	}
	if resume {
		f |= HelloFlagResume
	}
	return f
}

// encodeHelloSneaky ORs an unregistered bit into a flag variable.
func encodeHelloSneaky(token bool) uint64 {
	var f uint64
	if token {
		f |= HelloFlagToken
	}
	f |= 1 << 6 // want "encodeHelloSneaky ORs a raw bit into flag variable"
	return f
}

// encodeHelloMixed mixes a raw bit into a flag expression in one shot.
func encodeHelloMixed(v uint64) uint64 {
	f := HelloFlagToken | 1<<6 // want "encodeHelloMixed mixes a raw bit into a wire-flag expression"
	return v | uint64(f)
}
