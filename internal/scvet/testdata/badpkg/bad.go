// Package badpkg seeds one violation per scvet rule, next to clean
// variants of the same patterns; scvet_test.go locks the expected findings
// in badpkg.golden. It lives under testdata so the repo build (and scvet's
// own recursive runs) never see it.
package badpkg

import "sort"

type state struct {
	vals map[int]int
}

// Key feeds a map range straight into the encoding. [SV001]
func (s state) Key() string {
	out := ""
	for k, v := range s.vals {
		out += string(rune(k)) + string(rune(v))
	}
	return out
}

// StateKey collects map keys into a slice but never sorts it. [SV001]
func (s state) StateKey() string {
	out := ""
	var ks []int
	for k := range s.vals {
		ks = append(ks, k)
	}
	for _, k := range ks {
		out += string(rune(s.vals[k]))
	}
	return out
}

// SortedKey uses the sorted-keys idiom correctly; must stay clean.
func (s state) SortedKey() string {
	out := ""
	var ks []int
	for k := range s.vals {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		out += string(rune(s.vals[k]))
	}
	return out
}

// Transition and machine mimic a protocol whose enumeration order leaks
// map randomness.
type Transition struct {
	label int
}

type machine struct {
	edges map[int]int
}

// Transitions emits the transition list in map order. [SV001]
func (m *machine) Transitions() []Transition {
	var out []Transition
	for k := range m.edges {
		out = append(out, Transition{label: k})
	}
	return out
}

// Roles calls the visitor in map order. [SV001]
func (m *machine) Roles(visit func(int)) {
	for k := range m.edges {
		visit(k)
	}
}

type pair struct {
	a, b int
}

// clone copies a pair but forgets field b. [SV002]
func clone(p pair) *pair {
	return &pair{a: p.a}
}

type tracker struct {
	owner map[int]int
	ids   []int
	count int
}

// Clone covers owner in the literal and ids by later assignment, but count
// is neither in the literal nor ever read from the receiver. [SV002 SV003]
func (t *tracker) Clone() *tracker {
	out := &tracker{owner: make(map[int]int, len(t.owner))}
	for k, v := range t.owner {
		out.owner[k] = v
	}
	out.ids = append([]int(nil), t.ids...)
	return out
}

type meta struct {
	tag  string
	seen bool
}

// Clone writes every field of the copy, so the literal is complete, but
// seen is invented rather than read from the receiver. [SV003]
func (m *meta) Clone() *meta {
	out := new(meta)
	out.tag = m.tag
	out.seen = false
	return out
}

type rnode struct {
	val  int
	next *rnode
}

// Clone deep-copies via a memoized helper — the repo's own clone idiom:
// a partial literal completed by later assignments inside the closure, and
// the receiver handed to the helper wholesale. Must stay clean.
func (r *rnode) Clone() *rnode {
	seen := map[*rnode]*rnode{}
	var cp func(*rnode) *rnode
	cp = func(n *rnode) *rnode {
		if n == nil {
			return nil
		}
		if c, ok := seen[n]; ok {
			return c
		}
		out := &rnode{val: n.val}
		seen[n] = out
		out.next = cp(n.next)
		return out
	}
	return cp(r)
}

// Clone via whole-struct copy; must stay clean.
func (p *pair) Clone() *pair {
	cp := *p
	return &cp
}
