// Package guardedbypkg seeds SV004 guardedby violations next to the
// locking idioms the analyzer must accept: defer-unlock, early-exit
// unlock, Locked-suffix lock-transfer helpers, and cross-struct owner
// guards.
package guardedbypkg

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// inc touches the guarded field with no lock in sight.
func (c *counter) inc() {
	c.n++ // want "counter.n accessed in inc without holding mu"
}

// incLocked is the lock-transfer idiom: the caller holds mu, so the
// helper body is exempt.
func (c *counter) incLocked() {
	c.n++
}

// get is the defer idiom: the unlock fires at return, after the read.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// drain is the early-exit idiom: the first unlock leaves the function
// with its return, so the accesses below it are still under the lock.
func (c *counter) drain() int {
	c.mu.Lock()
	if c.n == 0 {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.n = 0
	c.mu.Unlock()
	return n
}

// stale reads the field again after releasing the lock.
func (c *counter) stale() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + c.n // want "counter.n accessed in stale without holding mu"
}

// spawn hands the field to a goroutine: the literal runs outside the
// critical section even though it is spawned inside one.
func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "counter.n accessed in spawn .func literal. without holding mu"
	}()
}

// store owns items; elements are only reachable under store.mu.
type store struct {
	mu    sync.Mutex
	items map[string]*item // guarded by mu
}

// item fields are guarded by the owning store's lock.
type item struct {
	hits int // guarded by store.mu
}

// bump holds the owner's lock: the map and the element field are both
// legally touched, the latter through the cross-struct guard.
func (s *store) bump(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k].hits++
}

// bumpRaw touches an element with no owner lock anywhere in scope.
func bumpRaw(it *item) {
	it.hits++ // want "item.hits accessed in bumpRaw without holding store.mu"
}

// wonky's annotation names a guard that does not exist; the annotation
// itself is the finding.
type wonky struct {
	x int // guarded by missing -- want "not a field of wonky"
}
