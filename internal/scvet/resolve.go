package scvet

import (
	"go/ast"
	"go/token"
)

// This file is the shared syntactic type resolver behind the guardedby
// (SV004) and atomicmix (SV007) analyzers. Both need to answer "which
// package-local struct type does this expression have?" for receiver
// fields, locals, call results and range variables — without the type
// checker, which would drag in full import resolution the analyzer
// deliberately avoids. The resolver is best-effort and sound in one
// direction only: an expression it cannot resolve yields "", and callers
// skip it rather than guess, keeping findings high-confidence.

// envEntry records how one in-scope variable got its type: an explicit
// declaration, a single-value initializer, one result of a multi-result
// call, or a range clause. Resolution is lazy so entries may reference
// variables declared later in the source (rare, but harmless).
type envEntry struct {
	typ       ast.Expr      // declared type expression
	val       ast.Expr      // single-value initializer expression
	call      *ast.CallExpr // multi-result call initializer
	idx       int           // result index within call
	rangeOver ast.Expr      // expression ranged over
	rangeKey  bool          // range key (index/map key) rather than value
}

// typeEnv resolves expressions to declared type expressions within one
// function's scope. Block shadowing is approximated by first-wins: the
// first declaration of a name in source order sticks, which matches this
// codebase's style (redeclarations of one name with different types in
// one function do not occur).
type typeEnv struct {
	pkg  *Package
	vars map[string]*envEntry
}

const maxResolveDepth = 24

// newTypeEnv builds the scope environment for a function declaration:
// receiver, parameters, named results, and every var/:=/range binding in
// the body (including func literal bodies, which inherit the scope).
func newTypeEnv(p *Package, fd *ast.FuncDecl) *typeEnv {
	e := &typeEnv{pkg: p, vars: make(map[string]*envEntry)}
	addField := func(fl *ast.Field) {
		for _, nm := range fl.Names {
			e.declare(nm.Name, &envEntry{typ: fl.Type})
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			addField(fl)
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			addField(fl)
		}
	}
	if fd.Type.Results != nil {
		for _, fl := range fd.Type.Results.List {
			addField(fl)
		}
	}
	if fd.Body != nil {
		e.collect(fd.Body)
	}
	return e
}

func (e *typeEnv) declare(name string, ent *envEntry) {
	if name == "" || name == "_" {
		return
	}
	if _, ok := e.vars[name]; ok {
		return // first declaration wins
	}
	e.vars[name] = ent
}

// collect walks a body recording every binding form.
func (e *typeEnv) collect(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE {
				return true
			}
			if len(v.Rhs) == len(v.Lhs) {
				for i, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						e.declare(id.Name, &envEntry{val: v.Rhs[i]})
					}
				}
			} else if len(v.Rhs) == 1 {
				if call, ok := v.Rhs[0].(*ast.CallExpr); ok {
					for i, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							e.declare(id.Name, &envEntry{call: call, idx: i})
						}
					}
				} else if ta, ok := v.Rhs[0].(*ast.TypeAssertExpr); ok && ta.Type != nil && len(v.Lhs) > 0 {
					if id, ok := v.Lhs[0].(*ast.Ident); ok {
						e.declare(id.Name, &envEntry{typ: ta.Type})
					}
				}
			}
		case *ast.ValueSpec:
			if v.Type != nil {
				for _, nm := range v.Names {
					e.declare(nm.Name, &envEntry{typ: v.Type})
				}
			} else if len(v.Values) == len(v.Names) {
				for i, nm := range v.Names {
					e.declare(nm.Name, &envEntry{val: v.Values[i]})
				}
			} else if len(v.Values) == 1 {
				if call, ok := v.Values[0].(*ast.CallExpr); ok {
					for i, nm := range v.Names {
						e.declare(nm.Name, &envEntry{call: call, idx: i})
					}
				}
			}
		case *ast.FuncLit:
			// Literal parameters and named results join the scope: the
			// literal's body is analyzed in the enclosing environment.
			if v.Type.Params != nil {
				for _, fl := range v.Type.Params.List {
					for _, nm := range fl.Names {
						e.declare(nm.Name, &envEntry{typ: fl.Type})
					}
				}
			}
			if v.Type.Results != nil {
				for _, fl := range v.Type.Results.List {
					for _, nm := range fl.Names {
						e.declare(nm.Name, &envEntry{typ: fl.Type})
					}
				}
			}
		case *ast.RangeStmt:
			if v.Tok == token.DEFINE {
				if id, ok := v.Key.(*ast.Ident); ok {
					e.declare(id.Name, &envEntry{rangeOver: v.X, rangeKey: true})
				}
				if id, ok := v.Value.(*ast.Ident); ok {
					e.declare(id.Name, &envEntry{rangeOver: v.X})
				}
			}
		}
		return true
	})
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

// stripRefs peels pointers and parens off a *type* expression.
func stripRefs(t ast.Expr) ast.Expr {
	for {
		switch v := t.(type) {
		case *ast.ParenExpr:
			t = v.X
		case *ast.StarExpr:
			t = v.X
		default:
			return t
		}
	}
}

// typeOf resolves a value expression to its declared type expression, or
// nil when the type is not syntactically derivable.
func (e *typeEnv) typeOf(x ast.Expr) ast.Expr {
	return e.typeOfDepth(x, 0)
}

func (e *typeEnv) typeOfDepth(x ast.Expr, depth int) ast.Expr {
	if depth > maxResolveDepth {
		return nil
	}
	depth++
	switch v := unparen(x).(type) {
	case *ast.Ident:
		ent, ok := e.vars[v.Name]
		if !ok {
			return nil
		}
		return e.entryType(ent, depth)
	case *ast.SelectorExpr:
		base := baseTypeIdent0(e.typeOfDepth(v.X, depth))
		if base == "" {
			return nil
		}
		if ft, ok := e.pkg.Structs[base][v.Sel.Name]; ok {
			return ft
		}
		return nil
	case *ast.StarExpr: // dereference
		t := e.typeOfDepth(v.X, depth)
		if st, ok := t.(*ast.StarExpr); ok {
			return st.X
		}
		return t
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			// &x has the base type of x for our purposes.
			return e.typeOfDepth(v.X, depth)
		}
		return nil
	case *ast.IndexExpr:
		t := stripRefs(e.typeOfDepth(v.X, depth))
		switch tt := t.(type) {
		case *ast.ArrayType:
			return tt.Elt
		case *ast.MapType:
			return tt.Value
		}
		return nil
	case *ast.CallExpr:
		// A conversion to a package struct type: T(x).
		if id, ok := unparen(v.Fun).(*ast.Ident); ok {
			if _, isType := e.pkg.Structs[id.Name]; isType {
				return id
			}
		}
		fd := e.calleeDecl(v, depth)
		if fd == nil {
			return nil
		}
		return resultType(fd, 0)
	case *ast.TypeAssertExpr:
		return v.Type
	case *ast.CompositeLit:
		return v.Type
	}
	return nil
}

// entryType resolves an environment entry to a type expression.
func (e *typeEnv) entryType(ent *envEntry, depth int) ast.Expr {
	switch {
	case ent.typ != nil:
		return ent.typ
	case ent.rangeOver != nil:
		t := stripRefs(e.typeOfDepth(ent.rangeOver, depth))
		switch tt := t.(type) {
		case *ast.ArrayType:
			if ent.rangeKey {
				return nil // int index
			}
			return tt.Elt
		case *ast.MapType:
			if ent.rangeKey {
				return tt.Key
			}
			return tt.Value
		case *ast.ChanType:
			if !ent.rangeKey {
				return nil
			}
			return tt.Value
		}
		return nil
	case ent.call != nil:
		fd := e.calleeDecl(ent.call, depth)
		if fd == nil {
			return nil
		}
		return resultType(fd, ent.idx)
	case ent.val != nil:
		return e.typeOfDepth(ent.val, depth)
	}
	return nil
}

// calleeDecl resolves a call to a same-package function or method
// declaration, when the callee is syntactically identifiable.
func (e *typeEnv) calleeDecl(c *ast.CallExpr, depth int) *ast.FuncDecl {
	switch f := unparen(c.Fun).(type) {
	case *ast.Ident:
		return e.pkg.Funcs[f.Name]
	case *ast.SelectorExpr:
		base := baseTypeIdent0(e.typeOfDepth(f.X, depth))
		if base == "" {
			return nil
		}
		return e.pkg.Methods[base][f.Sel.Name]
	}
	return nil
}

// resultType returns the idx-th result type of a function declaration,
// flattening multi-name result fields.
func resultType(fd *ast.FuncDecl, idx int) ast.Expr {
	if fd.Type.Results == nil {
		return nil
	}
	i := 0
	for _, fl := range fd.Type.Results.List {
		n := len(fl.Names)
		if n == 0 {
			n = 1
		}
		if idx < i+n {
			return fl.Type
		}
		i += n
	}
	return nil
}

// baseType resolves a value expression to the identifier of its
// package-local base type ("" when unknown).
func (e *typeEnv) baseType(x ast.Expr) string {
	return baseTypeIdent0(e.typeOf(x))
}

// baseTypeIdent0 is baseTypeIdent tolerating nil.
func baseTypeIdent0(t ast.Expr) string {
	if t == nil {
		return ""
	}
	return baseTypeIdent(stripRefs(t))
}

// exprPath renders a selector chain as a dotted path ("s.resume",
// "p.backends[]"); "" when the expression is not a plain chain. Index
// operations collapse to "[]" so two accesses through the same
// collection compare equal.
func exprPath(x ast.Expr) string {
	switch v := x.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		p := exprPath(v.X)
		if p == "" {
			return ""
		}
		return p + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprPath(v.X)
	case *ast.StarExpr:
		return exprPath(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return exprPath(v.X)
		}
		return ""
	case *ast.IndexExpr:
		p := exprPath(v.X)
		if p == "" {
			return ""
		}
		return p + "[]"
	}
	return ""
}
