package scvet_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"scverify/internal/scvet"
)

// The fixture tests follow the analysistest contract without x/tools:
// each testdata package carries `// want "regex"` comments on the lines
// where its analyzer must report, and the runner checks both directions
// — every want must be matched by a finding at that file and line, and
// every finding must be claimed by a want. Lines without wants are the
// allowed cases: the idioms the analyzer must stay quiet about.

// fixtureWant is one expectation parsed from a fixture source line.
type fixtureWant struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	wantTailRE  = regexp.MustCompile(`\bwant\s+(".+)$`)
	wantQuoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

func loadWants(t *testing.T, dir string) []*fixtureWant {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*fixtureWant
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if !strings.Contains(line, "//") {
				continue
			}
			m := wantTailRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			qs := wantQuoteRE.FindAllStringSubmatch(m[1], -1)
			if len(qs) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted regex", e.Name(), i+1)
			}
			for _, q := range qs {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, q[1], err)
				}
				wants = append(wants, &fixtureWant{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runFixture analyzes one testdata package with one analyzer and checks
// the findings against the package's want comments in both directions.
func runFixture(t *testing.T, dir, analyzer string) {
	t.Helper()
	as, err := scvet.SelectAnalyzers(analyzer)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := scvet.RunAnalyzers([]string{dir}, as)
	if err != nil {
		t.Fatal(err)
	}
	wants := loadWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.re)
		}
	}
}

func TestGuardedByFixture(t *testing.T) { runFixture(t, "testdata/guardedbypkg", "guardedby") }

func TestWireFlagFixture(t *testing.T) { runFixture(t, "testdata/wireflagpkg", "wireflag") }

func TestVerdictPurityFixture(t *testing.T) {
	runFixture(t, "testdata/verdictpuritypkg", "verdictpurity")
}

func TestAtomicMixFixture(t *testing.T) { runFixture(t, "testdata/atomicmixpkg", "atomicmix") }

// TestVerdictTransparencyIsEnforced is the acceptance check for SV006's
// reason to exist: the shipped scgrid proxy splice path is clean (the
// repository self-application test covers that), and injecting a single
// verdict-constructing call into it must produce a finding — the "proxy
// structurally cannot alter a verdict" claim fails the build, not a code
// review, when violated. The test copies the real package source, splices
// the call in textually, and analyzes the copy.
func TestVerdictTransparencyIsEnforced(t *testing.T) {
	const anchor = "conn.SetReadDeadline(time.Time{})"
	const inject = `deliver(bw, protoVerdict("injected"))`

	srcDir := filepath.Join("..", "scgrid")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	injected := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		text := string(src)
		if name == "proxy.go" {
			if strings.Count(text, anchor) != 1 {
				t.Fatalf("proxy.go no longer has exactly one %q; update the injection anchor", anchor)
			}
			text = strings.Replace(text, anchor, anchor+"\n\t"+inject, 1)
			injected = true
		}
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !injected {
		t.Fatal("proxy.go not found in ../scgrid")
	}

	as, err := scvet.SelectAnalyzers("verdictpurity")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := scvet.RunAnalyzers([]string{tmp}, as)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Rule == scvet.RuleVerdictPurity && strings.Contains(f.Msg, "splice") {
			found = true
		}
	}
	if !found {
		t.Errorf("no SV006 finding after injecting %q into the proxy splice path; findings: %v", inject, findings)
	}
}

// TestFindingsJSONGolden pins the machine-readable finding shape that
// `scvet -json` and `sccheck lint -json` emit, so downstream tooling can
// rely on the field names surviving refactors.
func TestFindingsJSONGolden(t *testing.T) {
	findings, err := scvet.Run([]string{"testdata/badpkg"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	const golden = "testdata/badpkg.json"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("JSON findings differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
