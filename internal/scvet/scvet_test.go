package scvet_test

import (
	"flag"
	"os"
	"strings"
	"testing"

	"scverify/internal/scvet"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestSeededViolationsMatchGolden runs the analyzers over the fixture
// package (one seeded violation per rule, next to clean variants of the
// same patterns) and compares against the golden findings.
func TestSeededViolationsMatchGolden(t *testing.T) {
	findings, err := scvet.Run([]string{"testdata/badpkg"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	got := sb.String()

	const golden = "testdata/badpkg.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestSeededRulesAllFire double-checks, independently of positions, that
// every rule is represented in the fixture findings.
func TestSeededRulesAllFire(t *testing.T) {
	findings, err := scvet.Run([]string{"testdata/badpkg"})
	if err != nil {
		t.Fatal(err)
	}
	count := make(map[string]int)
	for _, f := range findings {
		count[f.Rule]++
	}
	if count[scvet.RuleMapRange] < 4 {
		t.Errorf("want >=4 %s findings, got %d", scvet.RuleMapRange, count[scvet.RuleMapRange])
	}
	if count[scvet.RuleCloneIncomplete] < 2 {
		t.Errorf("want >=2 %s findings, got %d", scvet.RuleCloneIncomplete, count[scvet.RuleCloneIncomplete])
	}
	if count[scvet.RuleCloneUnread] < 2 {
		t.Errorf("want >=2 %s findings, got %d", scvet.RuleCloneUnread, count[scvet.RuleCloneUnread])
	}
}

// TestRepositoryIsClean is the self-application gate: the repo's own
// source must produce zero findings. The sorted-keys idiom in the state
// encoders and the memoized deep-copy closures in the Clone methods are
// exactly the patterns the analyzers must recognize as correct.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := scvet.Run([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding in repo source: %s", f)
	}
}
