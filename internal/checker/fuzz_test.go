package checker

import (
	"testing"

	"scverify/internal/cycle"
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// FuzzCheckerAgainstOffline drives the streaming checker with arbitrary
// well-typed symbol streams and cross-checks its verdict against the
// offline reference (whole-graph decode + constraint check + acyclicity).
// The two must agree on every input, and neither may panic.
func FuzzCheckerAgainstOffline(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 4})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2})
	f.Add([]byte{1, 0, 0, 1, 5, 5, 4, 4, 3, 2})

	const k = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		var s descriptor.Stream
		for i := 0; i+2 < len(data) && len(s) < 48; i += 3 {
			id := int(data[i]%(k+1)) + 1
			id2 := int(data[i+1]%(k+1)) + 1
			switch data[i+2] % 4 {
			case 0:
				op := trace.ST(trace.ProcID(data[i]%2+1), trace.BlockID(data[i+1]%2+1), trace.Value(data[i+2]%2+1))
				s = append(s, descriptor.Node{ID: id, Op: &op})
			case 1:
				op := trace.LD(trace.ProcID(data[i]%2+1), trace.BlockID(data[i+1]%2+1), trace.Value(data[i+2]%3))
				s = append(s, descriptor.Node{ID: id, Op: &op})
			case 2:
				s = append(s, descriptor.Edge{From: id, To: id2, Label: descriptor.EdgeLabel(data[i+2] % 8)})
			default:
				s = append(s, descriptor.AddID{Existing: id, New: id2})
			}
		}

		streaming := Check(s, k) == nil

		g, err := descriptor.Decode(s).ToConstraintGraph()
		offline := false
		if err == nil {
			offline = g.CheckConstraints() == nil && g.IsAcyclic()
		}
		if streaming != offline {
			t.Fatalf("verdict mismatch: streaming=%v offline=%v\nstream: %s",
				streaming, offline, s.Text())
		}

		// The cycle checker alone must agree with plain acyclicity.
		cycOK := cycle.CheckStream(s, k) == nil
		decOK := descriptor.Decode(s).IsAcyclic()
		if cycOK != decOK {
			t.Fatalf("cycle verdict mismatch: streaming=%v offline=%v\nstream: %s",
				cycOK, decOK, s.Text())
		}
	})
}
