package checker

import (
	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
)

// Annotation bit aliases keep the Step dispatch readable.
const (
	gInheritance  = graph.Inheritance
	gProgramOrder = graph.ProgramOrder
	gStoreOrder   = graph.StoreOrder
	gForced       = graph.Forced
)

// onProgramOrder enforces constraint 2 incrementally: program-order edges
// stay within one processor, respect trace order, and never give a node
// two incoming or two outgoing program-order edges.
func (c *Checker) onProgramOrder(a, b *rec) error {
	if a.op.Proc != b.op.Proc {
		return c.reject(Constraint2, []trace.Op{a.op, b.op}, "constraint 2: program-order edge %s→%s crosses processors", a.op, b.op)
	}
	if a.seq >= b.seq {
		return c.reject(Constraint2, []trace.Op{a.op, b.op}, "constraint 2: program-order edge %s→%s against trace order", a.op, b.op)
	}
	if a.poNext == b {
		return nil // duplicate symbol for an existing edge
	}
	if a.poOut {
		return c.reject(Constraint2, []trace.Op{a.op}, "constraint 2: second outgoing program-order edge from %s", a.op)
	}
	if b.poIn {
		return c.reject(Constraint2, []trace.Op{b.op}, "constraint 2: second incoming program-order edge into %s", b.op)
	}
	a.poOut, b.poIn = true, true
	a.poNext = b
	return nil
}

// onStoreOrder enforces constraint 3 incrementally and arms constraint-5(a)
// obligations: once a store's ST-order successor k is known, every pending
// inheritor of the store owes a forced edge to k.
func (c *Checker) onStoreOrder(a, b *rec) error {
	if !a.op.IsStore() || !b.op.IsStore() {
		return c.reject(Constraint3, []trace.Op{a.op, b.op}, "constraint 3: ST-order edge %s→%s touches a non-store", a.op, b.op)
	}
	if a.op.Block != b.op.Block {
		return c.reject(Constraint3, []trace.Op{a.op, b.op}, "constraint 3: ST-order edge %s→%s crosses blocks", a.op, b.op)
	}
	if a.stSucc == b {
		return nil // duplicate symbol for an existing edge
	}
	if a.stOut {
		return c.reject(Constraint3, []trace.Op{a.op}, "constraint 3: second outgoing ST-order edge from %s", a.op)
	}
	if b.stIn {
		return c.reject(Constraint3, []trace.Op{b.op}, "constraint 3: second incoming ST-order edge into %s", b.op)
	}
	a.stOut, b.stIn = true, true
	a.stSucc = b
	// b can no longer be the first store of its block: ⊥-load obligations
	// tentatively satisfied by b are no longer.
	for _, bo := range c.bottoms {
		delete(bo.targets, b)
	}
	for _, ob := range a.pending {
		ob.target = b
		ob.done = ob.load.forcedTo[b]
		if !ob.done {
			c.armed[ob] = true
			if err := c.checkFeasible(ob); err != nil {
				return err
			}
		}
	}
	return nil
}

// onInheritance enforces constraint 4 and installs or transfers the
// constraint-5(a) obligation slot for (store, processor).
func (c *Checker) onInheritance(a, b *rec) error {
	if !b.op.IsLoad() || b.op.Value == trace.Bottom {
		return c.reject(Constraint4, []trace.Op{b.op}, "constraint 4: inheritance edge into %s", b.op)
	}
	if !a.op.IsStore() || a.op.Block != b.op.Block {
		return c.reject(Constraint4, []trace.Op{a.op, b.op}, "constraint 4: inheritance edge %s→%s mismatched", a.op, b.op)
	}
	if !c.noValues && a.op.Value != b.op.Value {
		return c.reject(Constraint4, []trace.Op{a.op, b.op}, "constraint 4: inheritance edge %s→%s value mismatch", a.op, b.op)
	}
	if b.inhFrom == a {
		return nil // duplicate symbol for an existing edge
	}
	if b.inhIn {
		return c.reject(Constraint4, []trace.Op{b.op}, "constraint 4: second inheritance edge into %s", b.op)
	}
	b.inhIn = true
	b.inhFrom = a
	// The new load becomes the obligation carrier for (a, proc): the
	// previous carrier is discharged via the program-order path to b.
	if old, ok := a.pending[b.op.Proc]; ok {
		delete(c.armed, old)
	}
	ob := &oblig{store: a, proc: b.op.Proc, load: b}
	a.pending[b.op.Proc] = ob
	if a.stSucc != nil {
		ob.target = a.stSucc
		ob.done = b.forcedTo[a.stSucc]
		if !ob.done {
			c.armed[ob] = true
		}
	}
	return nil
}

// onForced records forced edges for obligation discharge. Forced edges
// that cannot discharge anything (wrong endpoint kinds or blocks) carry no
// annotation obligations of their own, so they are simply ignored here;
// the cycle checker has already added them to the graph.
func (c *Checker) onForced(a, b *rec) error {
	if !a.op.IsLoad() || !b.op.IsStore() || a.op.Block != b.op.Block {
		return nil
	}
	if a.op.Value == trace.Bottom {
		key := [2]int{int(a.op.Proc), int(a.op.Block)}
		if bo, ok := c.bottoms[key]; ok && bo.load == a && !b.stIn {
			// b is still a candidate first store of the block.
			bo.targets[b] = true
		}
		return nil
	}
	a.forcedTo[b] = true
	if a.inhFrom != nil {
		if ob, ok := a.inhFrom.pending[a.op.Proc]; ok && ob.load == a && ob.target == b {
			ob.done = true
			delete(c.armed, ob)
		}
	}
	return nil
}

// checkFeasible eagerly rejects an armed obligation that can no longer be
// satisfied: the forced edge needs the carrier load and the target store
// bound, and a replacement carrier needs the inherited-from store bound.
func (c *Checker) checkFeasible(ob *oblig) error {
	if ob.done {
		return nil
	}
	if !ob.target.active {
		return c.reject(Constraint5a, []trace.Op{ob.load.op, ob.target.op}, "constraint 5a: load %s owes a forced edge to retired store %s", ob.load.op, ob.target.op)
	}
	if !ob.load.active && !ob.store.active {
		return c.reject(Constraint5a, []trace.Op{ob.load.op, ob.target.op}, "constraint 5a: retired load %s owes a forced edge to %s and no successor inheritor can arise", ob.load.op, ob.target.op)
	}
	return nil
}

// deactivate finalizes a node whose ID-set became empty. Its program-order
// and ST-order degree bits are now final, inheritance for loads must have
// arrived, and outstanding obligations are re-examined for feasibility.
func (c *Checker) deactivate(r *rec) error {
	r.active = false

	ps := c.proc(r.op.Proc)
	if !r.poIn {
		ps.srcFinal++
		if ps.srcFinal > 1 {
			return c.reject(Constraint2, []trace.Op{r.op}, "constraint 2: two first operations for processor P%d", r.op.Proc)
		}
	}
	if !r.poOut {
		ps.snkFinal++
		if ps.snkFinal > 1 {
			return c.reject(Constraint2, []trace.Op{r.op}, "constraint 2: two last operations for processor P%d", r.op.Proc)
		}
	}

	if r.op.IsStore() {
		bs := c.block(r.op.Block)
		if !r.stIn {
			bs.srcFinal++
			bs.orphan = r
			if bs.srcFinal > 1 {
				return c.reject(Constraint3, []trace.Op{r.op}, "constraint 3: two first stores for block B%d", r.op.Block)
			}
		}
		if !r.stOut {
			bs.snkFinal++
			if bs.snkFinal > 1 {
				return c.reject(Constraint3, []trace.Op{r.op}, "constraint 3: two last stores for block B%d", r.op.Block)
			}
		}
		// No ST-order successor can arrive anymore: pending obligations with
		// unknown targets are vacuous; armed ones must now be carried by
		// their current loads alone.
		for p, ob := range r.pending {
			if ob.target == nil {
				delete(r.pending, p)
				continue
			}
			if err := c.checkFeasible(ob); err != nil {
				return err
			}
		}
	} else {
		if r.op.Value != trace.Bottom && !r.inhIn {
			return c.reject(Constraint4, []trace.Op{r.op}, "constraint 4: load %s retired without an inheritance edge", r.op)
		}
	}

	// Re-examine armed obligations touching this node.
	for ob := range c.armed {
		if ob.load == r || ob.target == r || ob.store == r {
			if err := c.checkFeasible(ob); err != nil {
				return err
			}
		}
	}

	// Sever links no future symbol can read. Edges reach records only
	// through live IDs, so a retired record's successor pointers are
	// write-only from here on; a pending slot whose carrier load has
	// itself retired can never match a live inheritor again (and the
	// armed/feasibility checks above have already adjudicated it). Without
	// this, retired records chain through the entire history — e.g. a
	// block's first store reaches every store of the block via stSucc —
	// and Clone/StateKey degrade from O(k²) to O(stream).
	r.poNext = nil
	if r.op.IsStore() {
		r.stSucc = nil
		for p, ob := range r.pending {
			if !ob.load.active {
				delete(r.pending, p)
			}
		}
	} else {
		if s := r.inhFrom; s != nil && !s.active {
			if ob, ok := s.pending[r.op.Proc]; ok && ob.load == r {
				delete(s.pending, r.op.Proc)
			}
		}
		r.inhFrom = nil
	}
	return nil
}

// Finish concludes the stream: every still-active node is finalized and
// the end-of-trace totality and obligation checks run. The checker must
// not be stepped after Finish.
func (c *Checker) Finish() error {
	if c.rejected != nil {
		return c.rejected
	}
	// Finalize active nodes, deterministically by age so error messages
	// are stable.
	for _, r := range c.activeRecs() {
		ps := c.proc(r.op.Proc)
		if !r.poIn {
			ps.srcFinal++
		}
		if !r.poOut {
			ps.snkFinal++
		}
		if r.op.IsStore() {
			bs := c.block(r.op.Block)
			if !r.stIn {
				bs.srcFinal++
				bs.orphan = r
			}
			if !r.stOut {
				bs.snkFinal++
			}
		} else if r.op.Value != trace.Bottom && !r.inhIn {
			return c.reject(Constraint4, []trace.Op{r.op}, "constraint 4: load %s has no inheritance edge at end of run", r.op)
		}
	}
	for p, ps := range c.procs {
		if !ps.seen {
			continue
		}
		if ps.srcFinal != 1 || ps.snkFinal != 1 {
			return c.reject(Constraint2, nil, "constraint 2: processor P%d has %d first / %d last operations, want 1/1", p, ps.srcFinal, ps.snkFinal)
		}
	}
	for b, bs := range c.blocks {
		if !bs.stores {
			continue
		}
		if bs.srcFinal != 1 || bs.snkFinal != 1 {
			return c.reject(Constraint3, nil, "constraint 3: block B%d has %d first / %d last stores, want 1/1", b, bs.srcFinal, bs.snkFinal)
		}
	}
	for ob := range c.armed {
		if !ob.done {
			return c.reject(Constraint5a, []trace.Op{ob.load.op, ob.target.op}, "constraint 5a: load %s never produced a forced edge to %s", ob.load.op, ob.target.op)
		}
	}
	for key, bo := range c.bottoms {
		b := trace.BlockID(key[1])
		bs := c.blocks[b]
		if bs == nil || !bs.stores {
			continue // no store to the block: constraint 5(b) vacuous
		}
		first := bs.orphan
		if first == nil {
			return c.reject(ConstraintInternal, nil, "internal: block B%d has stores but no first store", b)
		}
		if !bo.targets[first] {
			return c.reject(Constraint5b, []trace.Op{bo.load.op}, "constraint 5b: ⊥-load %s has no forced edge to block B%d's first store", bo.load.op, b)
		}
	}
	return nil
}

// FinishDry reports whether Finish would accept right now, without
// mutating the checker: the end-of-stream totality and obligation checks
// run against temporary counters. The model checker calls this once per
// discovered product state (every run prefix is a run), so it must be
// allocation-light and side-effect free.
func (c *Checker) FinishDry() error {
	if c.rejected != nil {
		return c.rejected
	}
	type counts struct{ src, snk int }
	procs := make(map[trace.ProcID]counts, len(c.procs))
	blocks := make(map[trace.BlockID]counts, len(c.blocks))
	orphan := make(map[trace.BlockID]*rec, len(c.blocks))
	for p, ps := range c.procs {
		procs[p] = counts{src: ps.srcFinal, snk: ps.snkFinal}
	}
	for b, bs := range c.blocks {
		blocks[b] = counts{src: bs.srcFinal, snk: bs.snkFinal}
		if bs.orphan != nil {
			orphan[b] = bs.orphan
		}
	}
	for _, r := range c.activeRecs() {
		pc := procs[r.op.Proc]
		if !r.poIn {
			pc.src++
		}
		if !r.poOut {
			pc.snk++
		}
		procs[r.op.Proc] = pc
		if r.op.IsStore() {
			bc := blocks[r.op.Block]
			if !r.stIn {
				bc.src++
				orphan[r.op.Block] = r
			}
			if !r.stOut {
				bc.snk++
			}
			blocks[r.op.Block] = bc
		} else if r.op.Value != trace.Bottom && !r.inhIn {
			return dryReject(Constraint4, []trace.Op{r.op}, "constraint 4: load %s has no inheritance edge at end of run", r.op)
		}
	}
	for p, ps := range c.procs {
		if !ps.seen {
			continue
		}
		if pc := procs[p]; pc.src != 1 || pc.snk != 1 {
			return dryReject(Constraint2, nil, "constraint 2: processor P%d has %d first / %d last operations, want 1/1", p, pc.src, pc.snk)
		}
	}
	for b, bs := range c.blocks {
		if !bs.stores {
			continue
		}
		if bc := blocks[b]; bc.src != 1 || bc.snk != 1 {
			return dryReject(Constraint3, nil, "constraint 3: block B%d has %d first / %d last stores, want 1/1", b, bc.src, bc.snk)
		}
	}
	for ob := range c.armed {
		if !ob.done {
			return dryReject(Constraint5a, []trace.Op{ob.load.op, ob.target.op}, "constraint 5a: load %s never produced a forced edge to %s", ob.load.op, ob.target.op)
		}
	}
	for key, bo := range c.bottoms {
		b := trace.BlockID(key[1])
		bs := c.blocks[b]
		if bs == nil || !bs.stores {
			continue
		}
		first := orphan[b]
		if first == nil {
			return dryReject(ConstraintInternal, nil, "internal: block B%d has stores but no first store", b)
		}
		if !bo.targets[first] {
			return dryReject(Constraint5b, []trace.Op{bo.load.op}, "constraint 5b: ⊥-load %s has no forced edge to block B%d's first store", bo.load.op, b)
		}
	}
	return nil
}

// Check runs a fresh checker over the whole stream, including Finish.
func Check(s descriptor.Stream, k int) error {
	c := New(k)
	for _, sym := range s {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return c.Finish()
}
