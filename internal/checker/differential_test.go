package checker

import (
	"math/rand"
	"testing"

	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
)

// offlineVerdict decides acceptance by the unbounded reference path: decode
// the stream into a whole graph, then require the five edge-annotation
// constraints plus acyclicity. The streaming checker must agree.
func offlineVerdict(s descriptor.Stream) bool {
	d := descriptor.Decode(s)
	g, err := d.ToConstraintGraph()
	if err != nil {
		return false
	}
	return g.CheckConstraints() == nil && g.IsAcyclic()
}

// mutateStream applies one random structure-preserving perturbation:
// dropping a symbol, swapping an edge's direction, or relabeling an edge.
func mutateStream(rng *rand.Rand, s descriptor.Stream) descriptor.Stream {
	if len(s) == 0 {
		return s
	}
	out := make(descriptor.Stream, len(s))
	copy(out, s)
	i := rng.Intn(len(out))
	switch rng.Intn(3) {
	case 0:
		return append(out[:i], out[i+1:]...)
	case 1:
		if e, ok := out[i].(descriptor.Edge); ok {
			e.From, e.To = e.To, e.From
			out[i] = e
		}
	default:
		if e, ok := out[i].(descriptor.Edge); ok {
			e.Label = descriptor.EdgeLabel(rng.Intn(8))
			out[i] = e
		}
	}
	return out
}

func TestStreamingMatchesOfflineOnCanonicalStreams(t *testing.T) {
	gen := trace.NewGenerator(trace.Params{Procs: 3, Blocks: 2, Values: 2}, 31)
	rng := rand.New(rand.NewSource(32))
	agreeReject := 0
	for i := 0; i < 200; i++ {
		tr := gen.SC(12)
		r, ok := trace.FindSerialReordering(tr)
		if !ok {
			t.Fatal("generated trace not SC")
		}
		g := graph.Canonical(tr, r)
		s, k := descriptor.EncodeAuto(g)

		// Unmutated canonical stream: both accept.
		if got, want := Check(s, k) == nil, offlineVerdict(s); got != want || !got {
			t.Fatalf("canonical stream: streaming=%v offline=%v\ntrace: %s", got, want, tr)
		}

		// Mutated stream: verdicts must agree (either way).
		m := mutateStream(rng, s)
		got := Check(m, k) == nil
		want := offlineVerdict(m)
		if got != want {
			t.Fatalf("mutated stream verdict mismatch: streaming=%v offline=%v\nstream: %s",
				got, want, m.Text())
		}
		if !got {
			agreeReject++
		}
	}
	if agreeReject == 0 {
		t.Error("no mutation ever produced a rejection; mutation operator too weak to exercise the checker")
	}
}

func TestStateKeyDeterministicAndDiscriminating(t *testing.T) {
	s := figure3Stream()
	a, b := New(3), New(3)
	for _, sym := range s {
		if err := a.Step(sym); err != nil {
			t.Fatal(err)
		}
		if err := b.Step(sym); err != nil {
			t.Fatal(err)
		}
		if string(a.StateKey()) != string(b.StateKey()) {
			t.Fatal("same history, different keys")
		}
	}
	// A checker one symbol behind must differ at some point; compare final
	// against a prefix-fed checker.
	p := New(3)
	for _, sym := range s[:len(s)-1] {
		_ = p.Step(sym)
	}
	if string(p.StateKey()) == string(a.StateKey()) {
		t.Error("prefix state collides with full state")
	}
	// Rejected checkers share the distinguished key.
	r := New(3)
	_ = r.Step(descriptor.Node{ID: 99})
	if string(r.StateKey()) != "\xff" {
		t.Errorf("rejected key = %v", r.StateKey())
	}
}

func TestStateKeyConvergesAcrossHistories(t *testing.T) {
	// Two different complete self-contained episodes ending with everything
	// retired should reach keys that differ only in the persistent
	// finalization state — and two identical episodes must match exactly.
	episode := func() *Checker {
		c := New(2)
		syms := descriptor.Stream{
			descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
			descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
			descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
		}
		for _, sym := range syms {
			_ = c.Step(sym)
		}
		return c
	}
	if string(episode().StateKey()) != string(episode().StateKey()) {
		t.Error("identical episodes diverge")
	}
}
