package checker

import (
	"errors"
	"fmt"

	"scverify/internal/cycle"
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// Constraint classifies a rejection by the paper condition it violates: the
// acyclicity requirement of Lemma 3.3 / Theorem 3.1, one of the five
// edge-annotation constraints of Section 3.1, the protocol parameter range,
// or stream malformation outside the paper's alphabet.
type Constraint uint8

const (
	// ConstraintNone marks an unclassified rejection (should not occur).
	ConstraintNone Constraint = iota
	// ConstraintCycle: the constraint graph is cyclic (Lemma 3.3; the
	// acyclicity side of Theorem 3.1). The RejectError carries the actual
	// cycle when witness mode is enabled.
	ConstraintCycle
	// Constraint2: program-order edges must form one chain per processor,
	// consistent with trace order (§3.1 constraint 2).
	Constraint2
	// Constraint3: ST-order edges must form one chain per block, over that
	// block's stores only (§3.1 constraint 3).
	Constraint3
	// Constraint4: every non-⊥ load has exactly one inheritance edge, from
	// a store of the same block and value (§3.1 constraint 4).
	Constraint4
	// Constraint5a: a load inheriting from store i needs a forced edge to
	// i's ST-order successor, possibly via program order (§3.1 constraint 5a).
	Constraint5a
	// Constraint5b: a LD(P,B,⊥) needs a forced edge to block B's first
	// store, possibly via program order (§3.1 constraint 5b).
	Constraint5b
	// ConstraintParams: an operation label falls outside the protocol
	// parameters (p, b, v) of §2.1.
	ConstraintParams
	// ConstraintMalformed: the stream is not a well-formed k-graph
	// descriptor (ID out of range, unlabeled node, unknown symbol).
	ConstraintMalformed
	// ConstraintInternal: an invariant of the checker itself broke.
	ConstraintInternal

	numConstraints // sentinel for range checks (wire decoding)
)

// String names the constraint.
func (k Constraint) String() string {
	switch k {
	case ConstraintCycle:
		return "acyclicity"
	case Constraint2:
		return "constraint 2 (program order)"
	case Constraint3:
		return "constraint 3 (ST order)"
	case Constraint4:
		return "constraint 4 (inheritance)"
	case Constraint5a:
		return "constraint 5a (forced edge to ST successor)"
	case Constraint5b:
		return "constraint 5b (⊥-load forced edge)"
	case ConstraintParams:
		return "parameter range"
	case ConstraintMalformed:
		return "malformed stream"
	case ConstraintInternal:
		return "internal invariant"
	default:
		return fmt.Sprintf("Constraint(%d)", uint8(k))
	}
}

// Ref returns the paper reference for the violated condition.
func (k Constraint) Ref() string {
	switch k {
	case ConstraintCycle:
		return "Lemma 3.3 (constraint-graph acyclicity)"
	case Constraint2:
		return "§3.1 constraint 2"
	case Constraint3:
		return "§3.1 constraint 3"
	case Constraint4:
		return "§3.1 constraint 4"
	case Constraint5a:
		return "§3.1 constraint 5(a)"
	case Constraint5b:
		return "§3.1 constraint 5(b)"
	case ConstraintParams:
		return "§2.1 parameter ranges"
	case ConstraintMalformed:
		return "§3.2 descriptor well-formedness"
	default:
		return "internal"
	}
}

// ValidConstraintCode reports whether a wire-decoded code names a known
// constraint (used by scserve's verdict parser).
func ValidConstraintCode(code int) bool {
	return code >= 0 && code < int(numConstraints)
}

// RejectError is the checker's structured rejection. It pinpoints the
// rejecting symbol, the violated paper condition, and the graph elements
// involved; for acyclicity violations in witness mode it carries the actual
// offending cycle. Rejection is sticky: every Step and Err call after the
// first rejection returns the same *RejectError.
type RejectError struct {
	// SymbolIndex is the 0-based index of the rejecting symbol in the
	// stream, or -1 for end-of-stream (Finish) rejections.
	SymbolIndex int
	// Constraint classifies the violation.
	Constraint Constraint
	// Edges holds the edge symbol that triggered the rejection, when the
	// rejecting symbol was an edge.
	Edges []descriptor.Edge
	// IDs holds the descriptor IDs mentioned by the rejecting symbol.
	IDs []int
	// Ops holds the operation labels of the nodes involved, when known.
	Ops []trace.Op
	// Cycle is the offending cycle for ConstraintCycle rejections; its Hops
	// are populated only in witness mode (EnableWitness).
	Cycle *cycle.CycleError
	// Msg is the human-readable cause, without the "checker: " prefix.
	Msg string
}

// Error renders the rejection in the checker's historical format.
func (e *RejectError) Error() string { return "checker: " + e.Msg }

// CycleLen returns the number of nodes on the offending cycle, or 0 when
// the rejection is not a (witnessed) cycle.
func (e *RejectError) CycleLen() int {
	if e.Cycle == nil {
		return 0
	}
	return e.Cycle.Len()
}

// reject records the first rejection, built from the violated constraint,
// the ops involved, and the message; the symbol context (index, IDs, edge)
// is taken from the symbol currently being stepped. Returns the sticky
// error.
func (c *Checker) reject(con Constraint, ops []trace.Op, format string, args ...any) error {
	if c.rejected != nil {
		return c.rejected
	}
	re := &RejectError{
		SymbolIndex: c.symbols - 1,
		Constraint:  con,
		Ops:         ops,
		Msg:         fmt.Sprintf(format, args...),
	}
	if c.stepping == nil {
		re.SymbolIndex = -1 // Finish-time rejection
	} else {
		switch v := c.stepping.(type) {
		case descriptor.Node:
			re.IDs = []int{v.ID}
		case descriptor.Edge:
			re.Edges = []descriptor.Edge{v}
			re.IDs = []int{v.From, v.To}
		case descriptor.AddID:
			re.IDs = []int{v.Existing, v.New}
		}
	}
	c.rejected = re
	return c.rejected
}

// dryReject builds a non-sticky RejectError for FinishDry: end-of-stream
// checks that must not mutate the checker, rendered identically to the
// corresponding Finish rejection.
func dryReject(con Constraint, ops []trace.Op, format string, args ...any) error {
	return &RejectError{
		SymbolIndex: -1,
		Constraint:  con,
		Ops:         ops,
		Msg:         fmt.Sprintf(format, args...),
	}
}

// rejectCycle records a rejection raised by the embedded cycle checker,
// classifying genuine cycles (with their extracted hops) apart from stream
// malformation.
func (c *Checker) rejectCycle(err error) error {
	if c.rejected != nil {
		return c.rejected
	}
	var ops []trace.Op
	con := ConstraintMalformed
	var ce *cycle.CycleError
	if errors.As(err, &ce) {
		con = ConstraintCycle
		for _, h := range ce.Hops {
			if h.Node.Op != nil {
				ops = append(ops, *h.Node.Op)
			}
		}
	}
	_ = c.reject(con, ops, "cycle check: %v", err)
	if re, ok := c.rejected.(*RejectError); ok {
		re.Cycle = ce
	}
	return c.rejected
}
