package checker

import (
	"errors"
	"strings"
	"testing"

	"scverify/internal/cycle"
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// cyclicStream closes a 2-cycle at its fourth symbol (index 3).
func cyclicStream() descriptor.Stream {
	return descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.ST(2, 1, 2))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.STo},
		descriptor.Edge{From: 2, To: 1, Label: descriptor.None},
	}
}

func TestRejectErrorStructured(t *testing.T) {
	c := New(3)
	var err error
	for _, sym := range cyclicStream() {
		if err = c.Step(sym); err != nil {
			break
		}
	}
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("Step error %v (%T) is not a *RejectError", err, err)
	}
	if re.Constraint != ConstraintCycle {
		t.Errorf("Constraint = %v, want ConstraintCycle", re.Constraint)
	}
	if re.SymbolIndex != 3 {
		t.Errorf("SymbolIndex = %d, want 3", re.SymbolIndex)
	}
	if want := []int{2, 1}; len(re.IDs) != 2 || re.IDs[0] != want[0] || re.IDs[1] != want[1] {
		t.Errorf("IDs = %v, want %v", re.IDs, want)
	}
	if len(re.Edges) != 1 || re.Edges[0].From != 2 || re.Edges[0].To != 1 {
		t.Errorf("Edges = %v, want the closing edge (2,1)", re.Edges)
	}
	if re.Cycle == nil {
		t.Fatal("Cycle is nil for a ConstraintCycle rejection")
	}
	if !strings.Contains(re.Error(), "checker: cycle check:") {
		t.Errorf("Error() = %q lost the historical message format", re.Error())
	}
}

func TestRejectionStickyAcrossSteps(t *testing.T) {
	c := New(3)
	var first error
	for _, sym := range cyclicStream() {
		if err := c.Step(sym); err != nil {
			first = err
			break
		}
	}
	if first == nil {
		t.Fatal("cyclic stream was not rejected")
	}
	// Further symbols — including ones that would trigger different
	// rejections — must return the identical first error.
	after := descriptor.Stream{
		descriptor.Node{ID: 3}, // would be "no operation label"
		descriptor.Edge{From: 1, To: 1, Label: descriptor.None},
	}
	for _, sym := range after {
		if err := c.Step(sym); err != first {
			t.Errorf("Step after rejection returned %v, want the first error %v", err, first)
		}
	}
	if err := c.Err(); err != first {
		t.Errorf("Err() = %v, want the first error", err)
	}
	if err := c.Finish(); err != first {
		t.Errorf("Finish() = %v, want the first error", err)
	}
	var re1, re2 *RejectError
	if !errors.As(first, &re1) || !errors.As(c.Err(), &re2) || re1 != re2 {
		t.Errorf("errors.As does not recover the same *RejectError: %p vs %p", re1, re2)
	}
}

func TestWitnessModeCarriesCycleHops(t *testing.T) {
	c := New(3).EnableWitness()
	var err error
	for _, sym := range cyclicStream() {
		if err = c.Step(sym); err != nil {
			break
		}
	}
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("got %v", err)
	}
	if re.CycleLen() != 2 {
		t.Fatalf("CycleLen = %d, want 2 (hops: %+v)", re.CycleLen(), re.Cycle.Hops)
	}
	loop := re.Cycle.String()
	for _, want := range []string{"ST(P1,B1,1)", "ST(P2,B1,2)"} {
		if !strings.Contains(loop, want) {
			t.Errorf("cycle narrative %q missing %s", loop, want)
		}
	}
	if len(re.Ops) != 2 {
		t.Errorf("Ops = %v, want both cycle ops", re.Ops)
	}
}

// TestWitnessModeExpandsContractedNodes checks that the extracted cycle
// names nodes that were contracted out of the active graph before the
// cycle closed (the via-chain machinery).
func TestWitnessModeExpandsContractedNodes(t *testing.T) {
	// a -> b -> c with b contracted out (ID recycled), then c -> a.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))}, // a
		descriptor.Node{ID: 2, Op: op(trace.ST(1, 1, 2))}, // b
		descriptor.Edge{From: 1, To: 2, Label: descriptor.PO},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 3))}, // c
		descriptor.Edge{From: 2, To: 3, Label: descriptor.PO},
		descriptor.Node{ID: 2, Op: op(trace.ST(2, 1, 4))}, // recycles b's ID: b contracted
		descriptor.Edge{From: 3, To: 1, Label: descriptor.None},
	}
	cc := cycle.New(3).EnableWitness()
	var ce *cycle.CycleError
	for _, sym := range s {
		if err := cc.Step(sym); err != nil {
			if !errors.As(err, &ce) {
				t.Fatalf("got %v (%T)", err, err)
			}
			break
		}
	}
	if ce == nil {
		t.Fatal("stream was not rejected")
	}
	if got := ce.Len(); got != 3 {
		t.Fatalf("cycle length %d, want 3 (a,b,c): %s", got, ce)
	}
	loop := ce.String()
	if !strings.Contains(loop, "ST(P1,B1,2)") {
		t.Errorf("contracted node missing from cycle narrative %q", loop)
	}
}

func TestFinishDryReturnsRejectError(t *testing.T) {
	c := New(3)
	// A lone load with a value needs an inheritance edge by end of run.
	if err := c.Step(descriptor.Node{ID: 1, Op: op(trace.LD(1, 1, 1))}); err != nil {
		t.Fatal(err)
	}
	err := c.FinishDry()
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("FinishDry error %v (%T) is not a *RejectError", err, err)
	}
	if re.Constraint != Constraint4 || re.SymbolIndex != -1 {
		t.Errorf("got constraint %v at symbol %d, want Constraint4 at -1", re.Constraint, re.SymbolIndex)
	}
	if c.Err() != nil {
		t.Errorf("FinishDry was not side-effect free: Err() = %v", c.Err())
	}
	// The live checker still accepts further symbols.
	if err := c.Step(descriptor.Node{ID: 2, Op: op(trace.ST(1, 1, 1))}); err != nil {
		t.Errorf("Step after FinishDry rejected: %v", err)
	}
}

func TestConstraintRefs(t *testing.T) {
	for k := ConstraintCycle; k < numConstraints; k++ {
		if k.String() == "" || k.Ref() == "" {
			t.Errorf("constraint %d has empty String/Ref", k)
		}
		if !ValidConstraintCode(int(k)) {
			t.Errorf("ValidConstraintCode(%d) = false", k)
		}
	}
	if ValidConstraintCode(int(numConstraints)) || ValidConstraintCode(-1) {
		t.Error("ValidConstraintCode accepts out-of-range codes")
	}
}
