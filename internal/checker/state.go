package checker

import (
	"encoding/binary"
	"sort"

	"scverify/internal/trace"
)

// StateKey returns a canonical encoding of the checker's state: two
// checkers with equal keys accept and reject identical symbol futures.
// The encoding names nodes canonically — active nodes by the smallest
// descriptor ID they hold, retired-but-referenced nodes by their relative
// age — so keys are independent of how many symbols have been consumed.
// Model checking over the protocol ⊗ observer ⊗ checker product uses this
// key to close the state space.
func (c *Checker) StateKey() []byte {
	return c.StateKeyRenamed(nil)
}

// StateKeyRenamed returns the state key under an ID permutation (raw ID →
// canonical ID); see observer.CanonicalRename. When a rename is supplied,
// the relative-age ranks of active nodes are omitted from the key: the
// rename is only available in product-mode exploration, where the symbol
// source is an observer whose program-order edges respect trace order by
// construction, so ages cannot influence acceptance.
func (c *Checker) StateKeyRenamed(rename []int) []byte {
	if c.rejected != nil {
		return []byte{0xff}
	}
	mapID := func(id int) int {
		if rename == nil {
			return id
		}
		return rename[id]
	}

	// Canonical node numbering: active nodes first, ordered by minimum
	// (renamed) ID; then retired nodes referenced by live obligations,
	// ordered by relative age.
	type namedRec struct {
		r     *rec
		minID int
	}
	var actives []namedRec
	minID := make(map[*rec]int, len(c.owner))
	for id := 1; id <= c.k+1; id++ {
		r := c.owner[id]
		if r == nil {
			continue
		}
		m := mapID(id)
		if cur, ok := minID[r]; !ok || m < cur {
			minID[r] = m
		}
	}
	for r, m := range minID {
		actives = append(actives, namedRec{r: r, minID: m})
	}
	sort.Slice(actives, func(i, j int) bool { return actives[i].minID < actives[j].minID })

	cid := make(map[*rec]int)
	for i, nr := range actives {
		cid[nr.r] = i + 1
	}
	var retired []*rec
	addRetired := func(r *rec) {
		if r == nil {
			return
		}
		if _, ok := cid[r]; ok {
			return
		}
		cid[r] = -1 // placeholder; renumbered below
		retired = append(retired, r)
	}
	for ob := range c.armed {
		addRetired(ob.store)
		addRetired(ob.load)
		addRetired(ob.target)
	}
	for _, bo := range c.bottoms {
		addRetired(bo.load)
		for t := range bo.targets {
			addRetired(t)
		}
	}
	for _, bs := range c.blocks {
		addRetired(bs.orphan)
	}
	for _, nr := range actives {
		for _, ob := range nr.r.pending {
			addRetired(ob.load)
			addRetired(ob.target)
		}
		for t := range nr.r.forcedTo {
			addRetired(t)
		}
		addRetired(nr.r.inhFrom)
		addRetired(nr.r.stSucc)
	}
	sort.Slice(retired, func(i, j int) bool { return retired[i].seq < retired[j].seq })
	for i, r := range retired {
		cid[r] = len(actives) + i + 1
	}

	// fingerprint compresses a retired record into a structural signature:
	// used in renamed (product) mode, where a retired node's identity can
	// no longer influence acceptance of observer-generated futures — only
	// its shape can (see StateKeyRenamed).
	fingerprint := func(r *rec) uint64 {
		f := uint64(1) << 40
		f |= uint64(r.op.Kind) << 36
		f |= uint64(r.op.Proc) << 28
		f |= uint64(r.op.Block) << 20
		f |= uint64(r.op.Value) << 12
		for i, b := range []bool{r.poIn, r.poOut, r.stIn, r.stOut, r.inhIn} {
			if b {
				f |= uint64(1) << i
			}
		}
		return f
	}

	ref := func(r *rec) uint64 {
		if r == nil {
			return 0
		}
		if rename != nil && !r.active {
			return fingerprint(r)
		}
		return uint64(cid[r])
	}

	var key []byte
	put := func(vs ...uint64) {
		for _, v := range vs {
			key = binary.AppendUvarint(key, v)
		}
	}
	putRec := func(r *rec, withSeqRank bool, rank int) {
		flags := uint64(0)
		for i, b := range []bool{r.active, r.poIn, r.poOut, r.stIn, r.stOut, r.inhIn} {
			if b {
				flags |= 1 << i
			}
		}
		put(uint64(r.op.Kind), uint64(r.op.Proc), uint64(r.op.Block), uint64(r.op.Value), flags)
		put(ref(r.inhFrom), ref(r.stSucc))
		if withSeqRank {
			put(uint64(rank))
		}
		// Pending obligation slots, sorted by processor.
		var procs []int
		for p := range r.pending {
			procs = append(procs, int(p))
		}
		sort.Ints(procs)
		put(uint64(len(procs)))
		for _, p := range procs {
			ob := r.pending[trace.ProcID(p)]
			done := uint64(0)
			if ob.done {
				done = 1
			}
			put(uint64(p), ref(ob.load), ref(ob.target), done)
		}
		// Forced-edge targets, sorted by canonical id.
		var ts []int
		for t := range r.forcedTo {
			ts = append(ts, int(ref(t)))
		}
		sort.Ints(ts)
		put(uint64(len(ts)))
		for _, t := range ts {
			put(uint64(t))
		}
	}

	key = append(key, c.cyc.StateKeyRenamed(rename)...)
	key = append(key, 0xfe)

	// ID ownership map in canonical ID order.
	slots := make([]uint64, c.k+2)
	for id := 1; id <= c.k+1; id++ {
		if r := c.owner[id]; r != nil {
			slots[mapID(id)] = ref(r)
		}
	}
	for _, s := range slots[1:] {
		put(s)
	}

	// Without a rename, active records carry a relative age rank (their
	// order matters for the trace-order side condition on program-order
	// edges against adversarial streams); see StateKeyRenamed for why the
	// rank is sound to omit in product mode.
	rank := make(map[*rec]int, len(actives))
	if rename == nil {
		bySeq := make([]*rec, len(actives))
		for i, nr := range actives {
			bySeq[i] = nr.r
		}
		sort.Slice(bySeq, func(i, j int) bool { return bySeq[i].seq < bySeq[j].seq })
		for i, r := range bySeq {
			rank[r] = i
		}
	}
	put(uint64(len(actives)))
	for _, nr := range actives {
		putRec(nr.r, rename == nil, rank[nr.r])
	}
	// In renamed (product) mode retired records appear only as structural
	// fingerprints at their reference sites; their full serialization is
	// needed only for the adversarial-stream key.
	if rename == nil {
		put(uint64(len(retired)))
		for _, r := range retired {
			putRec(r, false, 0)
		}
	}

	// Armed obligations.
	type armedKey struct{ s, l, t, p, d int }
	var arms []armedKey
	for ob := range c.armed {
		d := 0
		if ob.done {
			d = 1
		}
		arms = append(arms, armedKey{s: int(ref(ob.store)), l: int(ref(ob.load)), t: int(ref(ob.target)), p: int(ob.proc), d: d})
	}
	sort.Slice(arms, func(i, j int) bool {
		a, b := arms[i], arms[j]
		if a.s != b.s {
			return a.s < b.s
		}
		if a.p != b.p {
			return a.p < b.p
		}
		return a.l < b.l
	})
	put(uint64(len(arms)))
	for _, a := range arms {
		put(uint64(a.s), uint64(a.p), uint64(a.l), uint64(a.t), uint64(a.d))
	}

	// Bottom-load obligations.
	var bkeys [][2]int
	for k := range c.bottoms {
		bkeys = append(bkeys, k)
	}
	sort.Slice(bkeys, func(i, j int) bool {
		if bkeys[i][0] != bkeys[j][0] {
			return bkeys[i][0] < bkeys[j][0]
		}
		return bkeys[i][1] < bkeys[j][1]
	})
	put(uint64(len(bkeys)))
	for _, bk := range bkeys {
		bo := c.bottoms[bk]
		put(uint64(bk[0]), uint64(bk[1]), ref(bo.load))
		var ts []int
		for t := range bo.targets {
			ts = append(ts, int(ref(t)))
		}
		sort.Ints(ts)
		put(uint64(len(ts)))
		for _, t := range ts {
			put(uint64(t))
		}
	}

	// Per-processor and per-block finalization state.
	var ps []int
	for p := range c.procs {
		ps = append(ps, int(p))
	}
	sort.Ints(ps)
	put(uint64(len(ps)))
	for _, p := range ps {
		st := c.procs[trace.ProcID(p)]
		seen := uint64(0)
		if st.seen {
			seen = 1
		}
		put(uint64(p), seen, uint64(st.srcFinal), uint64(st.snkFinal))
	}
	var bs []int
	for b := range c.blocks {
		bs = append(bs, int(b))
	}
	sort.Ints(bs)
	put(uint64(len(bs)))
	for _, b := range bs {
		st := c.blocks[trace.BlockID(b)]
		stores := uint64(0)
		if st.stores {
			stores = 1
		}
		put(uint64(b), stores, uint64(st.srcFinal), uint64(st.snkFinal), ref(st.orphan))
	}
	return key
}
