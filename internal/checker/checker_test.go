package checker

import (
	"strings"
	"testing"

	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
)

func op(o trace.Op) *trace.Op { return &o }

func figure3Stream() descriptor.Stream {
	return descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.POSTo},
		descriptor.Node{ID: 4, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 4, Label: descriptor.Inh},
		descriptor.Edge{From: 2, To: 4, Label: descriptor.PO},
		descriptor.Edge{From: 4, To: 3, Label: descriptor.Forced},
		descriptor.Node{ID: 1, Op: op(trace.LD(2, 1, 2))},
		descriptor.Edge{From: 3, To: 1, Label: descriptor.Inh},
		descriptor.Edge{From: 4, To: 1, Label: descriptor.PO},
	}
}

func TestFigure3StreamAccepted(t *testing.T) {
	if err := Check(figure3Stream(), 3); err != nil {
		t.Errorf("Figure 3 stream rejected: %v", err)
	}
}

func TestRejectsUnlabeledNode(t *testing.T) {
	s := descriptor.Stream{descriptor.Node{ID: 1}}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "no operation label") {
		t.Errorf("got %v", err)
	}
}

func TestRejectsOutOfParamsLabel(t *testing.T) {
	c := New(3)
	c.SetParams(trace.Params{Procs: 1, Blocks: 1, Values: 1})
	err := c.Step(descriptor.Node{ID: 1, Op: op(trace.ST(2, 1, 1))})
	if err == nil || !strings.Contains(err.Error(), "outside parameters") {
		t.Errorf("got %v", err)
	}
}

func TestRejectsCycle(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.ST(2, 1, 2))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.STo},
		descriptor.Edge{From: 2, To: 1, Label: descriptor.None},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("got %v", err)
	}
}

func TestRejectsCrossProcessorPO(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.ST(2, 1, 2))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.PO},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "crosses processors") {
		t.Errorf("got %v", err)
	}
}

func TestRejectsDoubleProgramOrderOut(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.ST(1, 1, 2))},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 3))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.PO},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.PO},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "second outgoing program-order") {
		t.Errorf("got %v", err)
	}
}

func TestDuplicateEdgeSymbolsIdempotent(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(1, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.POInh},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.POInh},
	}
	if err := Check(s, 3); err != nil {
		t.Errorf("duplicate edge symbols rejected: %v", err)
	}
}

func TestRejectsLoadWithoutInheritanceAtEnd(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.None}, // not an inh edge
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "constraint 4") {
		t.Errorf("got %v", err)
	}
}

func TestRejectsLoadRetiredWithoutInheritance(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.LD(1, 1, 1))},
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))}, // displaces the load
	}
	c := New(3)
	var err error
	for _, sym := range s {
		if err = c.Step(sym); err != nil {
			break
		}
	}
	if err == nil || !strings.Contains(err.Error(), "retired without an inheritance edge") {
		t.Errorf("got %v", err)
	}
}

func TestRejectsInheritanceValueMismatch(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 2))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("got %v", err)
	}
}

func TestRejectsInheritanceIntoBottomLoad(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, trace.Bottom))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "constraint 4") {
		t.Errorf("got %v", err)
	}
}

func TestConstraint5aMissingForcedRejectedAtEnd(t *testing.T) {
	// Store 1, a load inheriting it, then store 2 in ST order after store 1,
	// but no forced edge from the load: reject at Finish.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.POSTo},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "5a") {
		t.Errorf("got %v", err)
	}
}

func TestConstraint5aForcedBeforeSTOrderEdge(t *testing.T) {
	// The forced edge arrives before the ST-order edge that arms the
	// obligation; constraint graphs are static objects, so this must pass.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 2, To: 3, Label: descriptor.Forced},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.POSTo},
	}
	if err := Check(s, 3); err != nil {
		t.Errorf("early forced edge rejected: %v", err)
	}
}

func TestConstraint5aDischargedBySuccessorInheritor(t *testing.T) {
	// Figure 3's situation: node 2 never gets a forced edge, but node 4
	// (same processor, same inherited store) does.
	if err := Check(figure3Stream(), 3); err != nil {
		t.Errorf("successor discharge rejected: %v", err)
	}
}

func TestConstraint5aEagerRejectOnRetiredTarget(t *testing.T) {
	// The obligation's target store loses its only ID before the forced
	// edge is emitted: no forced edge can ever reach it, reject eagerly.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.POSTo},
		descriptor.Node{ID: 3, Op: op(trace.ST(2, 2, 1))}, // retires the target
	}
	c := New(3)
	var err error
	for _, sym := range s {
		if err = c.Step(sym); err != nil {
			break
		}
	}
	if err == nil || !strings.Contains(err.Error(), "5a") {
		t.Errorf("got %v", err)
	}
}

func TestConstraint5bBottomLoadNeedsForcedEdge(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.LD(2, 1, trace.Bottom))},
		descriptor.Node{ID: 2, Op: op(trace.ST(1, 1, 1))},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "5b") {
		t.Errorf("got %v", err)
	}
	// With the forced edge it passes.
	s = append(s, descriptor.Edge{From: 1, To: 2, Label: descriptor.Forced})
	if err := Check(s, 3); err != nil {
		t.Errorf("with forced edge: %v", err)
	}
}

func TestConstraint5bVacuousWithoutStores(t *testing.T) {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.LD(2, 1, trace.Bottom))},
	}
	if err := Check(s, 3); err != nil {
		t.Errorf("⊥-load with no stores rejected: %v", err)
	}
}

func TestConstraint5bForcedToNonFirstStoreInsufficient(t *testing.T) {
	// Two stores with ST order s1 -> s2; the ⊥-load's forced edge goes to
	// s2 (not the first store): reject.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.LD(2, 1, trace.Bottom))},
		descriptor.Node{ID: 2, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 2, To: 3, Label: descriptor.POSTo},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.Forced},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "5b") {
		t.Errorf("got %v", err)
	}
}

func TestConstraint5bLaterBottomLoadTakesOver(t *testing.T) {
	// Two ⊥-loads of the same (P,B); only the later one carries the forced
	// edge — the earlier is discharged via program order.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.LD(2, 1, trace.Bottom))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, trace.Bottom))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.PO},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 1))},
		descriptor.Edge{From: 2, To: 3, Label: descriptor.Forced},
	}
	if err := Check(s, 3); err != nil {
		t.Errorf("takeover rejected: %v", err)
	}
}

func TestConstraint2TotalityAtEnd(t *testing.T) {
	// Two operations of P1 with no program-order edge between them.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.STo},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "constraint 2") {
		t.Errorf("got %v", err)
	}
}

func TestConstraint3TotalityAtEnd(t *testing.T) {
	// Two stores to B1 with no ST-order edge.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.ST(2, 1, 2))},
	}
	if err := Check(s, 3); err == nil || !strings.Contains(err.Error(), "constraint 3") {
		t.Errorf("got %v", err)
	}
}

func TestEagerRejectTwoRetiredFirstStores(t *testing.T) {
	// Two stores to the same block both retired without incoming ST-order
	// edges: constraint 3 is unsatisfiable; reject before the stream ends.
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 1, Op: op(trace.ST(2, 1, 2))},
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 2, 1))},
	}
	c := New(3)
	var err error
	for _, sym := range s {
		if err = c.Step(sym); err != nil {
			break
		}
	}
	if err == nil || !strings.Contains(err.Error(), "two first stores") {
		t.Errorf("got %v", err)
	}
}

func TestEmptyStreamAccepted(t *testing.T) {
	if err := Check(nil, 2); err != nil {
		t.Errorf("empty stream rejected: %v", err)
	}
}

func TestCanonicalEncodedStreamsAccepted(t *testing.T) {
	// End-to-end: SC trace -> witness reordering -> canonical constraint
	// graph -> descriptor encoding -> full checker must accept.
	gen := trace.NewGenerator(trace.Params{Procs: 3, Blocks: 2, Values: 3}, 21)
	for i := 0; i < 40; i++ {
		tr := gen.SC(16)
		r, ok := trace.FindSerialReordering(tr)
		if !ok {
			t.Fatal("generated trace not SC")
		}
		g := graph.Canonical(tr, r)
		s, k := descriptor.EncodeAuto(g)
		if err := Check(s, k); err != nil {
			t.Fatalf("canonical stream rejected for %s: %v\nstream: %s", tr, err, s.Text())
		}
	}
}

func TestCheckerStickyRejection(t *testing.T) {
	c := New(2)
	if err := c.Step(descriptor.Node{ID: 9}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := c.Step(descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))}); err == nil {
		t.Error("rejection not sticky")
	}
	if err := c.Finish(); err == nil {
		t.Error("Finish should return the rejection")
	}
	if c.Err() == nil {
		t.Error("Err() should report rejection")
	}
}
