package checker_test

import (
	"fmt"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

func op(o trace.Op) *trace.Op { return &o }

// The checker accepts exactly the streams describing acyclic constraint
// graphs: here a load inherits from a store whose ST-order successor it
// precedes via a forced edge.
func ExampleCheck() {
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: op(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 2, Op: op(trace.LD(2, 1, 1))},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.Inh},
		descriptor.Node{ID: 3, Op: op(trace.ST(1, 1, 2))},
		descriptor.Edge{From: 1, To: 3, Label: descriptor.POSTo},
		descriptor.Edge{From: 2, To: 3, Label: descriptor.Forced},
	}
	fmt.Println("accepted:", checker.Check(s, 3) == nil)

	// Dropping the forced edge violates constraint 5(a).
	fmt.Println("without forced edge:", checker.Check(s[:5], 3))
	// Output:
	// accepted: true
	// without forced edge: checker: constraint 5a: load LD(P2,B1,1) never produced a forced edge to ST(P1,B1,2)
}
