package checker

import "scverify/internal/trace"

// Clone returns a deep copy of the checker; stepping the copy never
// affects the original. The model checker clones at every branch of the
// product-state exploration.
func (c *Checker) Clone() *Checker {
	out := &Checker{
		k:        c.k,
		params:   c.params,
		noValues: c.noValues,
		cyc:      c.cyc.Clone(),
		owner:    make([]*rec, len(c.owner)),
		seq:      c.seq,
		procs:    make(map[trace.ProcID]*procState, len(c.procs)),
		blocks:   make(map[trace.BlockID]*blockState, len(c.blocks)),
		armed:    make(map[*oblig]bool, len(c.armed)),
		bottoms:  make(map[[2]int]*bottomOblig, len(c.bottoms)),
		symbols:  c.symbols,
		stepping: c.stepping,
		witness:  c.witness,
		rejected: c.rejected,
	}

	// Copy the rec graph, memoizing so shared pointers stay shared.
	recMap := make(map[*rec]*rec)
	var copyRec func(r *rec) *rec
	obMap := make(map[*oblig]*oblig)
	var copyOb func(ob *oblig) *oblig
	copyRec = func(r *rec) *rec {
		if r == nil {
			return nil
		}
		if cp, ok := recMap[r]; ok {
			return cp
		}
		cp := &rec{
			seq: r.seq, op: r.op, active: r.active, idCount: r.idCount,
			poIn: r.poIn, poOut: r.poOut,
			stIn: r.stIn, stOut: r.stOut, inhIn: r.inhIn,
		}
		recMap[r] = cp
		cp.inhFrom = copyRec(r.inhFrom)
		cp.stSucc = copyRec(r.stSucc)
		cp.poNext = copyRec(r.poNext)
		if r.forcedTo != nil {
			cp.forcedTo = make(map[*rec]bool, len(r.forcedTo))
			for t := range r.forcedTo {
				cp.forcedTo[copyRec(t)] = true
			}
		}
		if r.pending != nil {
			cp.pending = make(map[trace.ProcID]*oblig, len(r.pending))
			for p, ob := range r.pending {
				cp.pending[p] = copyOb(ob)
			}
		}
		return cp
	}
	copyOb = func(ob *oblig) *oblig {
		if ob == nil {
			return nil
		}
		if cp, ok := obMap[ob]; ok {
			return cp
		}
		cp := &oblig{proc: ob.proc, done: ob.done}
		obMap[ob] = cp
		cp.store = copyRec(ob.store)
		cp.load = copyRec(ob.load)
		cp.target = copyRec(ob.target)
		return cp
	}

	for id, r := range c.owner {
		if r != nil {
			out.owner[id] = copyRec(r)
		}
	}
	for ob := range c.armed {
		out.armed[copyOb(ob)] = true
	}
	for key, bo := range c.bottoms {
		cp := &bottomOblig{load: copyRec(bo.load), targets: make(map[*rec]bool, len(bo.targets))}
		for t := range bo.targets {
			cp.targets[copyRec(t)] = true
		}
		out.bottoms[key] = cp
	}
	for p, ps := range c.procs {
		cp := *ps
		out.procs[p] = &cp
	}
	for b, bs := range c.blocks {
		cp := *bs
		cp.orphan = copyRec(bs.orphan)
		out.blocks[b] = &cp
	}
	return out
}
