// Package checker implements the full finite-state sequential-consistency
// checker of Theorem 3.1 of Condon & Hu. The checker reads a k-graph
// descriptor stream (the observer's output) and accepts iff the stream
// describes an acyclic constraint graph: it runs the cycle checker of
// Lemma 3.3 in concert with streaming enforcement of the five edge-
// annotation constraints of Section 3.1, including the deferred-load
// machinery for forced-edge obligations described in the theorem's proof.
//
// The checker is protocol-independent: the same automaton checks every
// observer, exactly as Figure 2 of the paper prescribes.
package checker

import (
	"sort"

	"scverify/internal/cycle"
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// rec is the checker's per-node bookkeeping: the node's operation label,
// the annotation bits of Theorem 3.1's proof (program-edge-in/out,
// ST-edge-in/out, inheritance-edge-in), and the relations needed for
// forced-edge obligations. Records persist past deactivation only while an
// obligation references them.
type rec struct {
	seq     int // creation order; only relative order is ever used
	op      trace.Op
	active  bool
	idCount int16 // descriptor IDs currently naming this record

	poIn, poOut bool
	stIn, stOut bool
	inhIn       bool

	inhFrom *rec // for loads: the store this load inherits from
	stSucc  *rec // for stores: ST-order successor
	poNext  *rec // program-order successor, for duplicate-edge detection

	// forcedTo records stores of the load's own block this load has a
	// forced edge to; consulted when the inherited-from store's ST-order
	// successor becomes known.
	forcedTo map[*rec]bool

	// pending maps, for a store, each processor to its forced-edge
	// obligation slot ("forced-edge-on-path-to" of the paper).
	pending map[trace.ProcID]*oblig
}

// oblig is a constraint-5(a) obligation: the latest load of one processor
// inheriting from a given store must eventually carry a forced edge to the
// store's ST-order successor.
type oblig struct {
	store  *rec // the inherited-from store i
	proc   trace.ProcID
	load   *rec // current obligation carrier j (last inheritor of proc)
	target *rec // k = i's ST-order successor; nil until known
	done   bool
}

// bottomOblig is a constraint-5(b) obligation: the last LD(P,B,⊥) of each
// (processor, block) pair must carry a forced edge to the first store of B
// in ST order.
type bottomOblig struct {
	load    *rec
	targets map[*rec]bool // stores of block B this load has forced edges to
}

type procState struct {
	seen     bool
	srcFinal int // deactivated nodes with poIn still false
	snkFinal int // deactivated nodes with poOut still false
}

type blockState struct {
	stores   bool
	srcFinal int  // deactivated stores with stIn still false
	snkFinal int  // deactivated stores with stOut still false
	orphan   *rec // the deactivated store with stIn false, if any
}

// Checker is the streaming SC checker. Construct with New; feed symbols
// with Step and conclude with Finish.
type Checker struct {
	k        int
	params   trace.Params // zero value disables the label range check
	noValues bool         // skip value matching (Section 4.4 optimization)

	cyc *cycle.Checker

	// owner maps descriptor IDs (1..k+1) to the active record they name;
	// a record is active while at least one ID names it (idCount > 0).
	owner []*rec
	seq   int

	procs  map[trace.ProcID]*procState
	blocks map[trace.BlockID]*blockState

	// armed holds constraint-5(a) obligations whose target is known but
	// which are not yet discharged.
	armed map[*oblig]bool

	// bottoms holds constraint-5(b) obligations keyed by (proc, block).
	bottoms map[[2]int]*bottomOblig

	// symbols counts Step calls; stepping is the symbol currently being
	// processed (nil outside Step), so rejections raised from anywhere in
	// the call tree can attribute themselves to the rejecting symbol.
	symbols  int
	stepping descriptor.Symbol
	witness  bool

	rejected error
}

// New returns a checker for k-graph descriptors.
func New(k int) *Checker {
	return &Checker{
		k:       k,
		cyc:     cycle.New(k),
		owner:   make([]*rec, k+2),
		procs:   make(map[trace.ProcID]*procState),
		blocks:  make(map[trace.BlockID]*blockState),
		armed:   make(map[*oblig]bool),
		bottoms: make(map[[2]int]*bottomOblig),
	}
}

// SetParams enables rejection of node labels outside the protocol
// parameters (p, b, v).
func (c *Checker) SetParams(p trace.Params) { c.params = p }

// DisableValueCheck makes the checker skip the value-equality side of
// constraint 4 (an inheritance edge must link a store and a load of the
// same value). This realizes the optimization at the end of Section 4.4:
// value matching "can be done independently from the cycle-testing check,
// thereby saving lg v bits per node" — pair the value-blind checker with
// valuecheck.Checker to recover full acceptance.
func (c *Checker) DisableValueCheck() { c.noValues = true }

// Err returns the rejection error, or nil while the checker still accepts.
// Rejections are always *RejectError values, so errors.As recovers the
// structured cause.
func (c *Checker) Err() error { return c.rejected }

// CycleStats exposes the embedded cycle checker's counters.
func (c *Checker) CycleStats() cycle.Stats { return c.cyc.Stats() }

// EnableWitness switches the embedded cycle checker into witness mode, so
// acyclicity rejections carry the actual offending cycle (RejectError.Cycle
// with populated Hops). Must be called before the first Step. The model
// checker leaves witness mode off — it clones the checker at every branch —
// and re-derives witnesses by replaying counterexample runs.
func (c *Checker) EnableWitness() *Checker {
	c.witness = true
	c.cyc.EnableWitness()
	return c
}

func (c *Checker) proc(p trace.ProcID) *procState {
	ps, ok := c.procs[p]
	if !ok {
		ps = &procState{}
		c.procs[p] = ps
	}
	return ps
}

func (c *Checker) block(b trace.BlockID) *blockState {
	bs, ok := c.blocks[b]
	if !ok {
		bs = &blockState{}
		c.blocks[b] = bs
	}
	return bs
}

// Step consumes one descriptor symbol. A rejection is sticky.
func (c *Checker) Step(sym descriptor.Symbol) error {
	if c.rejected != nil {
		return c.rejected
	}
	c.stepping = sym
	c.symbols++
	defer func() { c.stepping = nil }()
	if err := c.cyc.Step(sym); err != nil {
		return c.rejectCycle(err)
	}
	switch v := sym.(type) {
	case descriptor.Node:
		if v.Op == nil {
			return c.reject(ConstraintMalformed, nil, "node with ID %d has no operation label", v.ID)
		}
		if c.params.Procs > 0 && !c.params.Contains(*v.Op) {
			return c.reject(ConstraintParams, []trace.Op{*v.Op}, "operation %s outside parameters %s", v.Op, c.params)
		}
		if err := c.releaseID(v.ID); err != nil {
			return err
		}
		r := &rec{seq: c.seq, op: *v.Op, active: true, idCount: 1}
		c.seq++
		c.owner[v.ID] = r
		c.proc(r.op.Proc).seen = true
		if r.op.IsStore() {
			c.block(r.op.Block).stores = true
			r.pending = make(map[trace.ProcID]*oblig)
		} else {
			r.forcedTo = make(map[*rec]bool)
			if r.op.Value == trace.Bottom {
				key := [2]int{int(r.op.Proc), int(r.op.Block)}
				// The newest ⊥-load takes over the (P,B) obligation; the
				// previous carrier is discharged through the program-order
				// path to this one.
				c.bottoms[key] = &bottomOblig{load: r, targets: make(map[*rec]bool)}
			}
		}
	case descriptor.AddID:
		if v.Existing == v.New {
			return nil // the ID stays with its current node
		}
		gainer := c.owner[v.Existing]
		if c.owner[v.New] == gainer && gainer != nil {
			return nil // alias already in place
		}
		if err := c.releaseID(v.New); err != nil {
			return err
		}
		if gainer != nil {
			c.owner[v.New] = gainer
			gainer.idCount++
		}
	case descriptor.Edge:
		a, b := c.owner[v.From], c.owner[v.To]
		if a == nil || b == nil {
			return nil // unbound IDs denote no edge
		}
		kind := v.Label.Kind()
		if kind&gProgramOrder != 0 {
			if err := c.onProgramOrder(a, b); err != nil {
				return err
			}
		}
		if kind&gStoreOrder != 0 {
			if err := c.onStoreOrder(a, b); err != nil {
				return err
			}
		}
		if kind&gInheritance != 0 {
			if err := c.onInheritance(a, b); err != nil {
				return err
			}
		}
		if kind&gForced != 0 {
			if err := c.onForced(a, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// releaseID unbinds an ID; when a record loses its last ID it is
// deactivated and its retirement checks run.
func (c *Checker) releaseID(id int) error {
	r := c.owner[id]
	if r == nil {
		return nil
	}
	c.owner[id] = nil
	r.idCount--
	if r.idCount > 0 {
		return nil
	}
	return c.deactivate(r)
}

// activeRecs collects the distinct active records, sorted by seq so
// iteration order is deterministic.
func (c *Checker) activeRecs() []*rec {
	out := make([]*rec, 0, len(c.owner))
	for _, r := range c.owner {
		if r == nil {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == r {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
