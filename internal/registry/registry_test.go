package registry

import (
	"testing"

	"scverify/internal/trace"
)

func TestNamesStable(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("only %d protocols registered: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestBuildAll(t *testing.T) {
	params := trace.Params{Procs: 2, Blocks: 2, Values: 2}
	for _, name := range Names() {
		tgt, err := Build(name, Options{Params: params, QueueCap: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tgt.Protocol == nil || tgt.Generator == nil {
			t.Fatalf("%s: incomplete target", name)
		}
		if tgt.Protocol.Params() != params {
			t.Errorf("%s: params %v", name, tgt.Protocol.Params())
		}
		if tgt.Note == "" {
			t.Errorf("%s: empty note", name)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("nonsense", Options{Params: trace.Params{Procs: 1, Blocks: 1, Values: 1}}); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Build("serial", Options{}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestDescribe(t *testing.T) {
	if _, err := Describe("msi"); err != nil {
		t.Error(err)
	}
	if _, err := Describe("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestExpectations(t *testing.T) {
	params := trace.Params{Procs: 2, Blocks: 1, Values: 1}
	expect := map[string]bool{
		"serial": true, "msi": true, "mesi": true, "moesi": true, "dragon": true, "directory": true, "lazy": true,
		"msi-lost-writeback": false, "msi-no-invalidate": false,
		"storebuffer": false, "lazy-realtime": false,
		"storebuffer-fenced": true, "writethrough": true,
		"writethrough-no-invalidate": false,
	}
	for name, want := range expect {
		tgt, err := Build(name, Options{Params: params})
		if err != nil {
			t.Fatal(err)
		}
		if tgt.ExpectSC != want {
			t.Errorf("%s: ExpectSC = %v, want %v", name, tgt.ExpectSC, want)
		}
	}
}
