// Package registry names the repository's protocols and wires each to its
// appropriate ST-order generator and observer configuration, so command-
// line tools, examples and benchmarks construct verification targets
// uniformly.
package registry

import (
	"fmt"
	"sort"

	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/protocols/directory"
	"scverify/internal/protocols/dragonbus"
	"scverify/internal/protocols/lazycache"
	"scverify/internal/protocols/mesibus"
	"scverify/internal/protocols/moesibus"
	"scverify/internal/protocols/msibus"
	"scverify/internal/protocols/serial"
	"scverify/internal/protocols/storebuffer"
	"scverify/internal/protocols/writethrough"
	"scverify/internal/trace"
)

// Target is a ready-to-verify protocol: the machine itself, a factory for
// its ST-order generator, and the observer ID pool it needs.
type Target struct {
	Protocol  protocol.Protocol
	Generator func() observer.STOrderGenerator
	PoolSize  int // 0 means the observer default
	// ExpectSC records the ground-truth verdict for experiment tables.
	ExpectSC bool
	// Note is a one-line description for listings.
	Note string
}

// Options tune protocol construction.
type Options struct {
	Params   trace.Params
	QueueCap int // store-buffer / lazy-caching queue capacity (default 1)
}

type builder struct {
	build func(Options) Target
	note  string
}

var builders = map[string]builder{
	"serial": {
		note: "atomic serial memory (trivially SC)",
		build: func(o Options) Target {
			return Target{Protocol: serial.New(o.Params), ExpectSC: true}
		},
	},
	"msi": {
		note: "MSI snooping-bus cache coherence (SC)",
		build: func(o Options) Target {
			return Target{Protocol: msibus.New(o.Params), ExpectSC: true}
		},
	},
	"msi-lost-writeback": {
		note: "MSI with eviction dropping dirty data (not SC)",
		build: func(o Options) Target {
			return Target{Protocol: msibus.NewBuggy(o.Params, msibus.BugLostWriteback)}
		},
	},
	"msi-no-invalidate": {
		note: "MSI with BusRdX skipping invalidations (not SC)",
		build: func(o Options) Target {
			return Target{Protocol: msibus.NewBuggy(o.Params, msibus.BugNoInvalidate)}
		},
	},
	"mesi": {
		note: "MESI snooping bus with silent E→M upgrade (SC)",
		build: func(o Options) Target {
			return Target{Protocol: mesibus.New(o.Params), ExpectSC: true}
		},
	},
	"moesi": {
		note: "MOESI snooping bus with dirty sharing via Owned state (SC)",
		build: func(o Options) Target {
			return Target{Protocol: moesibus.New(o.Params), ExpectSC: true}
		},
	},
	"dragon": {
		note: "Dragon update-based snooping bus; stores broadcast to sharers (SC)",
		build: func(o Options) Target {
			return Target{Protocol: dragonbus.New(o.Params), ExpectSC: true}
		},
	},
	"directory": {
		note: "directory protocol with message network and inv-acks (SC)",
		build: func(o Options) Target {
			return Target{Protocol: directory.New(o.Params), ExpectSC: true}
		},
	},
	"lazy": {
		note: "Afek–Brown–Merritt lazy caching; queue-aware ST order (SC)",
		build: func(o Options) Target {
			cap := o.QueueCap
			if cap < 1 {
				cap = 1
			}
			p := lazycache.New(o.Params, cap, cap+1)
			return Target{
				Protocol:  p,
				Generator: func() observer.STOrderGenerator { return lazycache.NewGenerator(o.Params.Procs) },
				PoolSize:  p.RecommendedPoolSize(),
				ExpectSC:  true,
			}
		},
	},
	"lazy-realtime": {
		note: "lazy caching under the (wrong) trivial ST-order generator",
		build: func(o Options) Target {
			cap := o.QueueCap
			if cap < 1 {
				cap = 1
			}
			p := lazycache.New(o.Params, cap, cap+1)
			return Target{Protocol: p, PoolSize: p.RecommendedPoolSize()}
		},
	},
	"storebuffer": {
		note: "TSO store buffers with forwarding (not SC)",
		build: func(o Options) Target {
			cap := o.QueueCap
			if cap < 1 {
				cap = 1
			}
			return Target{Protocol: storebuffer.New(o.Params, cap)}
		},
	},
	"storebuffer-fenced": {
		note: "store buffers with a fence before every load (SC; drain-order generator)",
		build: func(o Options) Target {
			cap := o.QueueCap
			if cap < 1 {
				cap = 1
			}
			p := storebuffer.NewFenced(o.Params, cap)
			// Stores serialize at drain time, not issue time: like lazy
			// caching, the fenced buffer needs a queue-aware generator and
			// extra IDs for the queued stores.
			return Target{
				Protocol:  p,
				Generator: func() observer.STOrderGenerator { return observer.NewQueueGenerator("Drain", o.Params.Procs) },
				PoolSize:  observer.DefaultPoolSize(p) + o.Params.Procs*cap,
				ExpectSC:  true,
			}
		},
	},
	"writethrough": {
		note: "write-through/write-no-allocate cache with atomic bus (SC)",
		build: func(o Options) Target {
			return Target{Protocol: writethrough.New(o.Params), ExpectSC: true}
		},
	},
	"writethrough-no-invalidate": {
		note: "write-through cache whose stores skip invalidation (not SC)",
		build: func(o Options) Target {
			return Target{Protocol: writethrough.NewBuggy(o.Params)}
		},
	},
}

// Names lists all registered protocol names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a protocol name.
func Describe(name string) (string, error) {
	b, ok := builders[name]
	if !ok {
		return "", fmt.Errorf("registry: unknown protocol %q (known: %v)", name, Names())
	}
	return b.note, nil
}

// Build constructs the named verification target.
func Build(name string, opts Options) (Target, error) {
	b, ok := builders[name]
	if !ok {
		return Target{}, fmt.Errorf("registry: unknown protocol %q (known: %v)", name, Names())
	}
	if err := opts.Params.Validate(); err != nil {
		return Target{}, err
	}
	t := b.build(opts)
	t.Note = b.note
	if t.Generator == nil {
		t.Generator = func() observer.STOrderGenerator { return observer.NewRealTime() }
	}
	return t, nil
}
