package scmc

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"scverify/internal/mc"
	"scverify/internal/registry"
	"scverify/internal/scserve"
	"scverify/internal/trace"
)

// startBackend runs an in-process scserve explore backend on a loopback
// listener and returns its address.
func startBackend(t *testing.T, cfg scserve.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := scserve.New(cfg)
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func startBackends(t *testing.T, n int, cfg scserve.Config) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = startBackend(t, cfg)
	}
	return addrs
}

// singleNode runs the same target through the in-process single-node
// checker, the ground truth the grid must reproduce exactly.
func singleNode(t *testing.T, protocol string, p trace.Params, opts mc.Options) mc.Result {
	t.Helper()
	target, err := registry.Build(protocol, registry.Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	opts.PoolSize = target.PoolSize
	opts.Generator = target.Generator
	return mc.Verify(target.Protocol, opts)
}

// TestGridMatchesSingleNode is the core soundness check: a 2-backend grid
// must report the same verdict and byte-identical reachable-state and
// transition counts as the single-node checker on the same target.
func TestGridMatchesSingleNode(t *testing.T) {
	p := trace.Params{Procs: 2, Blocks: 1, Values: 1}
	want := singleNode(t, "writethrough", p, mc.Options{})
	if want.Verdict != mc.Verified {
		t.Fatalf("single-node baseline not verified: %v", want)
	}

	addrs := startBackends(t, 2, scserve.Config{})
	got := Verify(context.Background(), addrs, Options{
		Protocol:     "writethrough",
		Params:       p,
		StallTimeout: 20 * time.Second,
		Logf:         t.Logf,
	})
	if got.Verdict != mc.Verified {
		t.Fatalf("grid verdict = %v, want verified: %v", got.Verdict, got)
	}
	if got.States != int64(want.States) || got.Transitions != int64(want.Transitions) {
		t.Fatalf("grid counted %d states / %d transitions, single-node %d / %d",
			got.States, got.Transitions, want.States, want.Transitions)
	}
	if got.Forwards == 0 {
		t.Fatalf("grid relayed zero items; the run never actually distributed")
	}
	t.Logf("grid: %v", got)
}

// TestGridExactModeMatches re-runs the equivalence check with exact-key
// visited sets, exercising the key-carrying claim path on the wire.
func TestGridExactModeMatches(t *testing.T) {
	p := trace.Params{Procs: 2, Blocks: 1, Values: 1}
	want := singleNode(t, "serial", p, mc.Options{ExactKeys: true})

	addrs := startBackends(t, 2, scserve.Config{})
	got := Verify(context.Background(), addrs, Options{
		Protocol:     "serial",
		Params:       p,
		Exact:        true,
		StallTimeout: 20 * time.Second,
		Logf:         t.Logf,
	})
	if got.Verdict != mc.Verified {
		t.Fatalf("grid verdict = %v, want verified: %v", got.Verdict, got)
	}
	if got.States != int64(want.States) || got.Transitions != int64(want.Transitions) {
		t.Fatalf("grid (exact) counted %d states / %d transitions, single-node %d / %d",
			got.States, got.Transitions, want.States, want.Transitions)
	}
}

// TestGridDetectsViolation verifies that a protocol violating SC yields
// the violated verdict from the grid, with a counterexample the local
// protocol replay rejects — the distributed analogue of single-node
// counterexample fidelity.
func TestGridDetectsViolation(t *testing.T) {
	// Same buggy target and depth bound the single-node checker's own
	// regression uses (writethrough's TestModelCheckerCatchesNoInvalidateBug):
	// the shallowest rejection is within depth 10.
	p := trace.Params{Procs: 2, Blocks: 2, Values: 1}
	addrs := startBackends(t, 2, scserve.Config{})
	got := Verify(context.Background(), addrs, Options{
		Protocol:     "writethrough-no-invalidate",
		Params:       p,
		MaxDepth:     10,
		StallTimeout: 20 * time.Second,
		Logf:         t.Logf,
	})
	if got.Verdict != mc.Violated {
		t.Fatalf("grid verdict = %v, want violated: %v", got.Verdict, got)
	}
	if len(got.Counterexample) == 0 {
		t.Fatalf("violated verdict carries no counterexample")
	}
	target, err := registry.Build("writethrough-no-invalidate", registry.Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if _, replayErr := mc.Replay(target.Protocol, got.Counterexample); replayErr != nil {
		t.Fatalf("counterexample does not replay on the local protocol: %v", replayErr)
	}
}

// TestGridExceedsSingleNodeCap is the capacity claim behind the fabric: a
// state budget that makes the single-node checker give up (incomplete)
// still verifies on a 4-shard grid, because per-shard caps add up. The
// grid's reported state count must exceed what any single shard was
// allowed to hold.
func TestGridExceedsSingleNodeCap(t *testing.T) {
	p := trace.Params{Procs: 2, Blocks: 1, Values: 1}
	base := singleNode(t, "serial", p, mc.Options{})
	if base.Verdict != mc.Verified {
		t.Fatalf("uncapped baseline not verified: %v", base)
	}
	// A third of the space: far too small for one node, yet comfortably
	// above any single shard's rendezvous slice (~1/4 of the states).
	cap := base.States / 3

	capped := singleNode(t, "serial", p, mc.Options{MaxStates: cap})
	if capped.Verdict != mc.Incomplete {
		t.Fatalf("single-node with cap %d = %v, want incomplete", cap, capped.Verdict)
	}

	addrs := startBackends(t, 4, scserve.Config{})
	got := Verify(context.Background(), addrs, Options{
		Protocol:          "serial",
		Params:            p,
		MaxStatesPerShard: cap,
		StallTimeout:      30 * time.Second,
		Logf:              t.Logf,
	})
	if got.Verdict != mc.Verified {
		t.Fatalf("4-shard grid with per-shard cap %d = %v, want verified: %v", cap, got.Verdict, got)
	}
	if got.States != int64(base.States) {
		t.Fatalf("grid counted %d states, uncapped single-node %d", got.States, base.States)
	}
	if got.States <= int64(cap) {
		t.Fatalf("grid states %d do not exceed the per-shard cap %d; the demo proves nothing", got.States, cap)
	}
}

// TestGridBackendDeathIsIncomplete is the chaos case: killing one
// backend's connection mid-exploration must degrade the verdict to
// incomplete — never verified, and never a hang. The backends run with a
// per-expansion delay so the run is reliably still in flight when the
// connection dies.
func TestGridBackendDeathIsIncomplete(t *testing.T) {
	addrs := startBackends(t, 2, scserve.Config{ExploreStepDelay: 2 * time.Millisecond})

	// Retain coordinator-side connections so the test can sever one.
	var mu sync.Mutex
	var conns []net.Conn
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}

	killed := make(chan struct{})
	var once sync.Once
	progress := func(shards []ShardStats) {
		var total int64
		for _, sh := range shards {
			total += sh.States
		}
		// Wait until real exploration is under way, then sever the last
		// dialed connection (an explore session, not a probe).
		if total >= 8 {
			once.Do(func() {
				mu.Lock()
				conns[len(conns)-1].Close()
				mu.Unlock()
				close(killed)
			})
		}
	}

	got := Verify(context.Background(), addrs, Options{
		Protocol:     "writethrough",
		Params:       trace.Params{Procs: 2, Blocks: 1, Values: 2},
		StallTimeout: 20 * time.Second,
		Dial:         dial,
		Logf:         t.Logf,
		Progress:     progress,
	})
	select {
	case <-killed:
	default:
		t.Skipf("run finished before the kill fired; verdict %v", got.Verdict)
	}
	if got.Verdict == mc.Verified {
		t.Fatalf("grid reported verified after losing a backend mid-exploration: %v", got)
	}
	if got.Verdict != mc.Incomplete {
		t.Fatalf("grid verdict = %v, want incomplete: %v", got.Verdict, got)
	}
	if got.Err == nil {
		t.Fatalf("incomplete verdict carries no error")
	}
}

// TestGridNoBackends fails fast when no backend is reachable.
func TestGridNoBackends(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now
	got := Verify(context.Background(), []string{addr}, Options{
		Protocol: "writethrough",
		Params:   trace.Params{Procs: 2, Blocks: 1, Values: 1},
		Logf:     t.Logf,
	})
	if got.Verdict != mc.Incomplete || got.Err == nil {
		t.Fatalf("verdict = %v err = %v, want incomplete with error", got.Verdict, got.Err)
	}
}

// TestGridUnknownProtocol fails locally before touching the network.
func TestGridUnknownProtocol(t *testing.T) {
	got := Verify(context.Background(), []string{"127.0.0.1:1"}, Options{
		Protocol: "no-such-protocol",
		Params:   trace.Params{Procs: 2, Blocks: 1, Values: 1},
	})
	if got.Verdict != mc.Incomplete || got.Err == nil {
		t.Fatalf("verdict = %v err = %v, want incomplete with error", got.Verdict, got.Err)
	}
}

// TestSmokeGrid is the tier-1 smoke target: a 2-backend grid verification
// of the smallest registry config, expected to finish well under the 5s
// budget even under the race detector.
func TestSmokeGrid(t *testing.T) {
	p := trace.Params{Procs: 1, Blocks: 1, Values: 2}
	addrs := startBackends(t, 2, scserve.Config{})
	got := Verify(context.Background(), addrs, Options{
		Protocol:     "serial",
		Params:       p,
		StallTimeout: 10 * time.Second,
		Logf:         t.Logf,
	})
	if got.Verdict != mc.Verified {
		t.Fatalf("smoke grid verdict = %v: %v", got.Verdict, got)
	}
	want := singleNode(t, "serial", p, mc.Options{})
	if got.States != int64(want.States) {
		t.Fatalf("smoke grid states %d != single-node %d", got.States, want.States)
	}
}
