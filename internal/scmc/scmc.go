// Package scmc is the distributed state-space exploration fabric: it
// coordinates a grid of scserve explore backends, each owning one shard
// of the visited set, through the model-checking engine of internal/mc.
//
// The coordinator never expands states itself. It preflights the backend
// pool (reusing scgrid's health probing), opens one explore session per
// healthy backend with the ordered shard identity list, seeds shard 0
// with the initial work item, and from then on is a pure relay with a
// ledger: every cross-shard item a backend emits is routed to the shard
// named in its Peer field (rewritten to the sender on the way through),
// and per-shard sent/received counts are balanced against the credit
// reports each backend publishes.
//
// Termination is credit-counting quiescence: the grid is done exactly
// when every shard reports pending == 0, has consumed every item the
// coordinator sent it, and the coordinator has received every item the
// shard reports having emitted. Because a backend's item frames precede
// the report that accounts for them on the same ordered stream, a
// quiescent ledger proves no work is queued, in flight, or parked
// anywhere — the hard precondition for emitting a verified verdict. Every
// abnormal path (backend death, state cap, stall, corrupt frame) degrades
// the verdict to incomplete, never to a wrong verified.
package scmc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"scverify/internal/mc"
	"scverify/internal/registry"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
	"scverify/internal/trace"
)

// Options tunes a distributed verification run.
type Options struct {
	// Protocol names the registry target every shard builds.
	Protocol string
	// Params are the trace parameters (procs, blocks, values).
	Params trace.Params
	// QueueCap is the registry queue-capacity parameter (0 = default).
	QueueCap int
	// MaxStatesPerShard caps each shard's visited set (0 = server
	// default). Aggregate capacity is shards × cap — how a grid verifies
	// configurations that exceed a single node's state budget.
	MaxStatesPerShard int
	// MaxDepth bounds exploration depth (0 = unbounded).
	MaxDepth int
	// Exact switches shards to exact-key visited sets; Audit keeps
	// fingerprints but counts collisions.
	Exact bool
	Audit bool
	// StallTimeout aborts the run (incomplete) when no frame arrives from
	// any backend for this long. Default 2m.
	StallTimeout time.Duration
	// Dial overrides the transport (tests inject failures or retain
	// connections). Defaults to a net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Logf, when set, receives coordinator diagnostics.
	Logf func(format string, args ...any)
	// Progress, when set, is called (at most every ~100ms) with the
	// latest per-shard reports.
	Progress func(shards []ShardStats)
}

// ShardStats is one backend's slice of the final (or in-progress) grid
// accounting.
type ShardStats struct {
	Addr        string
	States      int64
	Transitions int64
	ItemsIn     int64
	ItemsOut    int64
	Collisions  int64
	Depth       int
	PeakIDs     int
}

// Result is the aggregated outcome of a distributed verification.
type Result struct {
	Protocol       string
	Verdict        mc.Verdict
	Err            error
	Counterexample []int
	States         int64
	Transitions    int64
	Depth          int
	PeakIDs        int
	Collisions     int64
	// Forwards counts cross-shard items the coordinator relayed.
	Forwards int64
	Shards   []ShardStats
	Elapsed  time.Duration
}

// String renders a one-line summary.
func (r Result) String() string {
	s := fmt.Sprintf("%s: %s — %d states, %d transitions, depth %d, %d shards, %d forwards, %v",
		r.Protocol, r.Verdict, r.States, r.Transitions, r.Depth, len(r.Shards), r.Forwards,
		r.Elapsed.Round(time.Millisecond))
	if r.Err != nil {
		s += fmt.Sprintf(" (%v)", r.Err)
	}
	return s
}

// shedThreshold is how deep a shard's ready queue must be (relative to
// an idle peer) before the coordinator migrates work to the idle shard.
const shedThreshold = 64

// eventKind tags a frame delivered by a backend reader.
type eventKind int

const (
	evItems eventKind = iota
	evReport
	evViolation
	evVerdict
	evError
)

type event struct {
	shard   int
	kind    eventKind
	items   []mc.Item
	report  mc.Report
	path    []int
	msg     string
	verdict scserve.Verdict
	err     error
}

// shardConn is the coordinator's handle on one backend session.
type shardConn struct {
	addr string
	conn net.Conn
	bw   *writerState

	sentTo   int64 // items routed to this shard
	recvFrom int64 // items received from this shard
	ready    bool  // first report seen
	last     mc.Report
	dead     bool
	accepted bool // end-phase accept verdict received
}

// Verify runs a distributed verification of the named protocol across
// the backends at addrs.
func Verify(ctx context.Context, addrs []string, opts Options) Result {
	start := time.Now()
	res := Result{Protocol: opts.Protocol}
	fail := func(err error) Result {
		res.Verdict = mc.Incomplete
		res.Err = err
		res.Elapsed = time.Since(start)
		return res
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 2 * time.Minute
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Build the target locally: the coordinator needs K for the hello
	// cross-check and the protocol for counterexample replay; it also
	// fails fast on an unknown protocol before touching the network.
	target, err := registry.Build(opts.Protocol, registry.Options{Params: opts.Params, QueueCap: opts.QueueCap})
	if err != nil {
		return fail(err)
	}
	k := mc.NewProduct(target.Protocol, mc.ProductOptions{PoolSize: target.PoolSize, Generator: target.Generator}).Obs.K()

	// Preflight through scgrid: one synchronous probe round decides which
	// backends participate. The healthy list, in address order, IS the
	// shard identity list — every backend receives it verbatim in its
	// hello, so all shards compute the same rendezvous partition.
	grid, err := scgrid.New(addrs, scgrid.Config{ProbeInterval: -1, Seed: 1, Dial: dial, Logf: opts.Logf})
	if err != nil {
		return fail(err)
	}
	grid.ProbeNow()
	gs := grid.Stats()
	grid.Close()
	var shardIDs []string
	for _, b := range gs.Backends {
		if b.Healthy && !b.Draining {
			shardIDs = append(shardIDs, b.Addr)
		}
	}
	if len(shardIDs) == 0 {
		return fail(errors.New("scmc: no healthy backends"))
	}
	logf("scmc: %d/%d backends healthy, k=%d", len(shardIDs), len(addrs), k)

	mode := scserve.ExploreModeFP
	if opts.Exact {
		mode = scserve.ExploreModeExact
	} else if opts.Audit {
		mode = scserve.ExploreModeAudit
	}

	// Open one explore session per shard.
	shards := make([]*shardConn, len(shardIDs))
	events := newEventQueue()
	defer func() {
		for _, sc := range shards {
			if sc != nil && sc.conn != nil {
				sc.conn.Close()
			}
		}
	}()
	for i, addr := range shardIDs {
		conn, err := dial(ctx, addr)
		if err != nil {
			return fail(fmt.Errorf("scmc: dial shard %d (%s): %w", i, addr, err))
		}
		sc := &shardConn{addr: addr, conn: conn, bw: newWriterState(conn)}
		shards[i] = sc
		hello := scserve.Header{K: k, Params: opts.Params, Explore: &scserve.ExploreHeader{
			Protocol:  opts.Protocol,
			QueueCap:  opts.QueueCap,
			Shard:     i,
			Shards:    shardIDs,
			MaxStates: opts.MaxStatesPerShard,
			MaxDepth:  opts.MaxDepth,
			Mode:      mode,
		}}
		if err := sc.bw.writeFrame(scserve.FrameHello, scserve.AppendHello(nil, hello)); err != nil {
			return fail(fmt.Errorf("scmc: hello to shard %d (%s): %w", i, addr, err))
		}
		go readLoop(i, conn, events)
	}

	return run(ctx, start, res, shards, events, opts, logf)
}

// run is the coordinator's central loop: route items, balance credits,
// detect quiescence or failure, then conclude the grid.
func run(ctx context.Context, start time.Time, res Result, shards []*shardConn, events *eventQueue, opts Options, logf func(string, ...any)) Result {
	stall := time.NewTimer(opts.StallTimeout)
	defer stall.Stop()

	var (
		seeded      bool
		ending      bool
		viol        *mc.Violation
		runErr      error
		lastProg    time.Time
		endDeadline <-chan time.Time
	)

	finishFail := func(err error) Result {
		res.Verdict = mc.Incomplete
		res.Err = err
		aggregate(&res, shards)
		res.Elapsed = time.Since(start)
		return res
	}

	// beginEnd transitions to the end phase: every live backend gets an
	// end frame and must answer with a final report and an accept verdict.
	beginEnd := func() {
		if ending {
			return
		}
		ending = true
		endDeadline = time.After(opts.StallTimeout)
		for _, sc := range shards {
			if sc.dead {
				continue
			}
			if err := sc.bw.writeFrame(scserve.FrameEnd, nil); err != nil {
				sc.dead = true
				if runErr == nil {
					runErr = fmt.Errorf("scmc: shard %s died at end: %w", sc.addr, err)
				}
			}
		}
	}

	// route relays one emitted item to the shard in its Peer field,
	// rewriting Peer to the sender so claims can be answered.
	route := func(from int, items []mc.Item) error {
		// Group per destination to keep frames batched.
		byDest := map[int][]mc.Item{}
		for _, it := range items {
			dest := it.Peer
			if dest < 0 || dest >= len(shards) {
				return fmt.Errorf("scmc: shard %d emitted item for unknown shard %d", from, dest)
			}
			it.Peer = from
			byDest[dest] = append(byDest[dest], it)
		}
		for dest, batch := range byDest {
			sc := shards[dest]
			if sc.dead {
				return fmt.Errorf("scmc: work routed to dead shard %s", sc.addr)
			}
			if err := sc.bw.writeFrame(scserve.FrameExplore, scserve.AppendExploreItems(nil, batch)); err != nil {
				sc.dead = true
				return fmt.Errorf("scmc: shard %s died: %w", sc.addr, err)
			}
			sc.sentTo += int64(len(batch))
			res.Forwards += int64(len(batch))
		}
		return nil
	}

	allDone := func() bool {
		for _, sc := range shards {
			if !sc.dead && !sc.accepted {
				return false
			}
		}
		return true
	}

	// handle processes one event; done reports that out is the final
	// result. The sentinel "continue" result is out == Result{} with done
	// false.
	handle := func(ev event) (out Result, done bool) {
		sc := shards[ev.shard]
		switch ev.kind {
		case evError:
			sc.dead = true
			if ending {
				// A backend allowed to die only AFTER its accept was
				// received does not taint the verdict.
				if !sc.accepted && runErr == nil {
					runErr = fmt.Errorf("scmc: shard %s died during end phase: %w", sc.addr, ev.err)
				}
				if allDone() {
					return conclude(start, res, shards, viol, runErr), true
				}
				return Result{}, false
			}
			return finishFail(fmt.Errorf("scmc: shard %d (%s) died mid-exploration: %w", ev.shard, sc.addr, ev.err)), true
		case evItems:
			sc.recvFrom += int64(len(ev.items))
			if ending {
				return Result{}, false // engines are stopping; late items are moot
			}
			if err := route(ev.shard, ev.items); err != nil {
				return finishFail(err), true
			}
		case evViolation:
			if viol == nil {
				viol = &mc.Violation{Err: errors.New(ev.msg), Path: ev.path}
				logf("scmc: shard %d reports violation at depth %d", ev.shard, len(ev.path))
			}
			beginEnd()
		case evVerdict:
			if !ending || ev.verdict.Code != scserve.VerdictAccept {
				if runErr == nil {
					runErr = fmt.Errorf("scmc: shard %s verdict: %s", sc.addr, ev.verdict.String())
				}
				sc.dead = true
				if !ending {
					return finishFail(runErr), true
				}
			} else {
				sc.accepted = true
			}
			if ending && allDone() {
				return conclude(start, res, shards, viol, runErr), true
			}
		case evReport:
			sc.ready = true
			sc.last = ev.report
			if opts.Progress != nil && time.Since(lastProg) >= 100*time.Millisecond {
				lastProg = time.Now()
				opts.Progress(snapshot(shards))
			}
			if ending {
				return Result{}, false
			}
			if ev.report.Failed {
				return finishFail(fmt.Errorf("scmc: shard %s failed: %s", sc.addr, ev.report.Err)), true
			}
			if ev.report.Capped {
				return finishFail(fmt.Errorf("scmc: shard %s hit its state cap", sc.addr)), true
			}
			if !seeded {
				if allReady(shards) {
					seeded = true
					logf("scmc: all %d shards ready, seeding shard 0", len(shards))
					if err := route(0, []mc.Item{{Kind: mc.ItemWork, Peer: 0, Act: mc.ActClaim}}); err != nil {
						return finishFail(err), true
					}
				}
				return Result{}, false
			}
			if quiescent(shards) {
				logf("scmc: grid quiescent (%d items relayed), concluding", res.Forwards)
				beginEnd()
				return Result{}, false
			}
			maybeShed(shards, ev.shard, route, logf)
		}
		return Result{}, false
	}

	for {
		// Drain every queued event before sleeping; the queue is
		// unbounded, so draining is the only backpressure there is.
		for {
			ev, ok := events.pop()
			if !ok {
				break
			}
			if !stall.Stop() {
				select {
				case <-stall.C:
				default:
				}
			}
			stall.Reset(opts.StallTimeout)
			if out, done := handle(ev); done {
				return out
			}
		}
		select {
		case <-ctx.Done():
			return finishFail(ctx.Err())
		case <-stall.C:
			return finishFail(fmt.Errorf("scmc: no backend activity for %v", opts.StallTimeout))
		case <-endDeadline:
			return finishFail(errors.New("scmc: end phase timed out"))
		case <-events.notify:
		}
	}
}

// allReady reports whether every live shard has published its first
// report (the ready signal gating the seed).
func allReady(shards []*shardConn) bool {
	for _, sc := range shards {
		if sc.dead || !sc.ready {
			return false
		}
	}
	return true
}

// quiescent is the credit-counting termination predicate: every shard
// idle, every item the coordinator sent consumed, every item a shard
// emitted received. Reports are consistent snapshots (mc.Explorer takes
// the counters under one lock) and item frames precede the report
// accounting them on the same TCP stream, so a balanced ledger here
// proves the grid-wide frontier is empty. Any skew — a report older than
// an in-flight frame, a delivery not yet processed — shows up as an
// imbalance and just delays the verdict; it can never fake one.
func quiescent(shards []*shardConn) bool {
	for _, sc := range shards {
		if sc.dead || !sc.ready {
			return false
		}
		r := sc.last
		if r.Pending != 0 || r.ItemsIn != sc.sentTo || r.ItemsOut != sc.recvFrom {
			return false
		}
	}
	return true
}

// maybeShed migrates ready work from the reporting shard to an idle one
// when the queue imbalance is worth a round trip — the coordinator's
// work-stealing lever for partitions that concentrate expansion work.
func maybeShed(shards []*shardConn, from int, route func(int, []mc.Item) error, logf func(string, ...any)) {
	src := shards[from]
	if src.last.QueueLen < 2*shedThreshold {
		return
	}
	for target, sc := range shards {
		if target == from || sc.dead || !sc.ready {
			continue
		}
		if sc.last.Pending == 0 && sc.last.QueueLen == 0 {
			n := int(src.last.QueueLen / 2)
			logf("scmc: shedding %d jobs from shard %d to idle shard %d", n, from, target)
			// A shed instruction is an ordinary routed item; the ledger
			// accounts it like any other delivery.
			_ = route(target, []mc.Item{{Kind: mc.ItemShed, Peer: from, N: n, Target: target}})
			// Invalidate the stale idle report so one busy report cannot
			// shed to the same target twice before it re-reports.
			sc.last.QueueLen = -1
			return
		}
	}
}

// snapshot renders the current per-shard reports for Progress.
func snapshot(shards []*shardConn) []ShardStats {
	out := make([]ShardStats, len(shards))
	for i, sc := range shards {
		out[i] = ShardStats{
			Addr:        sc.addr,
			States:      sc.last.States,
			Transitions: sc.last.Transitions,
			ItemsIn:     sc.last.ItemsIn,
			ItemsOut:    sc.last.ItemsOut,
			Collisions:  sc.last.Collisions,
			Depth:       sc.last.Depth,
			PeakIDs:     sc.last.PeakIDs,
		}
	}
	return out
}

// aggregate folds the last per-shard reports into the result totals.
func aggregate(res *Result, shards []*shardConn) {
	res.Shards = snapshot(shards)
	res.States, res.Transitions, res.Collisions = 0, 0, 0
	res.Depth, res.PeakIDs = 0, 0
	for _, sh := range res.Shards {
		res.States += sh.States
		res.Transitions += sh.Transitions
		res.Collisions += sh.Collisions
		if sh.Depth > res.Depth {
			res.Depth = sh.Depth
		}
		if sh.PeakIDs > res.PeakIDs {
			res.PeakIDs = sh.PeakIDs
		}
	}
}

// conclude builds the final result after a clean end phase.
func conclude(start time.Time, res Result, shards []*shardConn, viol *mc.Violation, runErr error) Result {
	aggregate(&res, shards)
	switch {
	case viol != nil:
		res.Verdict = mc.Violated
		res.Err = viol.Err
		res.Counterexample = viol.Path
	case runErr != nil:
		res.Verdict = mc.Incomplete
		res.Err = runErr
	default:
		// Check the final reports one last time: verified requires that
		// every shard ended clean and the final credit ledger balances.
		for _, sc := range shards {
			r := sc.last
			if sc.dead || !sc.accepted || r.Failed || r.Capped {
				res.Verdict = mc.Incomplete
				res.Err = fmt.Errorf("scmc: shard %s did not conclude cleanly", sc.addr)
				res.Elapsed = time.Since(start)
				return res
			}
			if r.DepthCapped {
				res.Verdict = mc.Incomplete
			}
		}
		if res.Verdict != mc.Incomplete {
			res.Verdict = mc.Verified
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// readLoop is one backend's reader goroutine: it decodes frames into
// events until the connection dies or the coordinator finishes.
func readLoop(shard int, conn net.Conn, events *eventQueue) {
	br := newReader(conn)
	deliver := func(ev event) {
		ev.shard = shard
		events.push(ev)
	}
	for {
		typ, payload, err := readRaw(br)
		if err != nil {
			deliver(event{kind: evError, err: err})
			return
		}
		switch typ {
		case scserve.FrameExploreFwd:
			items, perr := scserve.ParseExploreItems(payload)
			if perr != nil {
				deliver(event{kind: evError, err: perr})
				return
			}
			deliver(event{kind: evItems, items: items})
		case scserve.FrameExploreRep:
			r, perr := scserve.ParseExploreReport(payload)
			if perr != nil {
				deliver(event{kind: evError, err: perr})
				return
			}
			deliver(event{kind: evReport, report: r})
		case scserve.FrameExploreViol:
			path, msg, perr := scserve.ParseExploreViolation(payload)
			if perr != nil {
				deliver(event{kind: evError, err: perr})
				return
			}
			deliver(event{kind: evViolation, path: path, msg: msg})
		case scserve.FrameVerdict:
			v, perr := scserve.ParseVerdict(payload)
			if perr != nil {
				deliver(event{kind: evError, err: perr})
				return
			}
			deliver(event{kind: evVerdict, verdict: v})
		case scserve.FrameStatsReply:
			// ignore
		default:
			deliver(event{kind: evError, err: fmt.Errorf("scmc: unexpected frame type %#x", typ)})
			return
		}
	}
}
