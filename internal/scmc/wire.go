package scmc

import (
	"bufio"
	"net"
	"sync"

	"scverify/internal/scserve"
)

// coordMaxFrame bounds frames the coordinator accepts from a backend —
// the same default budget scserve itself enforces.
const coordMaxFrame = 1 << 20

// writerState is one backend connection's buffered writer. All writes
// happen on the coordinator's central loop, so no locking is needed; the
// type exists to pair the bufio.Writer with its flush discipline (every
// frame is flushed — the grid's liveness depends on items reaching
// backends promptly, not on throughput of any single stream).
type writerState struct {
	bw *bufio.Writer
}

func newWriterState(conn net.Conn) *writerState {
	return &writerState{bw: bufio.NewWriterSize(conn, 32<<10)}
}

func (w *writerState) writeFrame(typ byte, payload []byte) error {
	if err := scserve.WriteRawFrame(w.bw, typ, payload); err != nil {
		return err
	}
	return w.bw.Flush()
}

func newReader(conn net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(conn, 32<<10)
}

func readRaw(br *bufio.Reader) (byte, []byte, error) {
	return scserve.ReadRawFrame(br, coordMaxFrame)
}

// eventQueue is an unbounded MPSC queue from the backend readers to the
// central loop. Unboundedness is load-bearing, not a convenience: the
// coordinator is a cycle of streams (it writes to backends that write
// back to it), and any bounded buffer on the read side can deadlock the
// ring — reader blocked on a full channel stops draining a backend,
// which stops that backend reading, which blocks the central loop's
// write to it. Queued events are parsed frames, so memory is bounded by
// the run's total cross-shard traffic, the same order as the visited
// sets themselves.
type eventQueue struct {
	mu     sync.Mutex
	items  []event
	notify chan struct{} // cap 1; coalesced wake-up
}

func newEventQueue() *eventQueue {
	return &eventQueue{notify: make(chan struct{}, 1)}
}

// push enqueues without ever blocking.
func (q *eventQueue) push(ev event) {
	q.mu.Lock()
	q.items = append(q.items, ev)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pop dequeues one event; ok is false when the queue is empty.
func (q *eventQueue) pop() (event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return event{}, false
	}
	ev := q.items[0]
	q.items[0] = event{}
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = nil
	}
	return ev, true
}
