package history

import (
	"fmt"
	"math/rand"

	"scverify/internal/checker"
	"scverify/internal/spectrum"
)

// The generator simulates a replicated key-value store with a single
// write order and lagging replicas, producing histories that are
// sequentially consistent by construction — and, on request, histories
// seeded with specific consistency anomalies whose expected rejection is
// known in advance.
//
// Model: writes append to one global log (the primary applies them in
// invocation order, which is what makes per-key invocation order a valid
// ST order for clean histories). Each process reads through its own
// replica, modelled as a monotonically advancing prefix of the global
// log: a read serves the newest write to its key within the prefix, or ⊥
// if the prefix holds none. Replica lag (a prefix short of the log head)
// yields stale-but-monotonic reads, which sequential consistency — unlike
// linearizability — permits. After a process writes, its replica prefix
// advances through its own write (read-your-writes). Every read is
// therefore consistent with the single log order, so the serial
// reordering "log position, then invocation order" witnesses SC.

// AnomalyKind names an injectable consistency anomaly.
type AnomalyKind uint8

const (
	// AnomalyStaleRead makes a process re-read a key and observe a value
	// older than one it already observed: a monotonic-reads violation.
	AnomalyStaleRead AnomalyKind = iota
	// AnomalyReadYourWrites makes a process read its own key right after
	// writing it and miss the write (observing the previous value or ⊥).
	AnomalyReadYourWrites
	// AnomalyPartitionBottom models a partitioned, state-losing replica:
	// a process that already observed data for a key reads ⊥ — the
	// "fresh replica behind a partition" anomaly.
	AnomalyPartitionBottom
	// AnomalyPhantomRead makes a read return a value no write ever
	// produced (a corrupt or fabricated response).
	AnomalyPhantomRead

	numAnomalyKinds
)

// AllAnomalies lists every injectable anomaly kind.
func AllAnomalies() []AnomalyKind {
	out := make([]AnomalyKind, numAnomalyKinds)
	for i := range out {
		out[i] = AnomalyKind(i)
	}
	return out
}

// String names the anomaly.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalyStaleRead:
		return "stale-read"
	case AnomalyReadYourWrites:
		return "read-your-writes"
	case AnomalyPartitionBottom:
		return "partition-bottom"
	case AnomalyPhantomRead:
		return "phantom-read"
	default:
		return fmt.Sprintf("AnomalyKind(%d)", uint8(k))
	}
}

// ParseAnomaly resolves a name produced by String.
func ParseAnomaly(name string) (AnomalyKind, error) {
	for _, k := range AllAnomalies() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("history: unknown anomaly %q", name)
}

// Constraint is the checker rejection the anomaly lowers to: the three
// ordering anomalies close a happens-before cycle (Lemma 3.3), while a
// phantom read leaves a load with no inheritance edge (§3.1 constraint 4).
func (k AnomalyKind) Constraint() checker.Constraint {
	if k == AnomalyPhantomRead {
		return checker.Constraint4
	}
	return checker.ConstraintCycle
}

// Tier is the strongest consistency tier the anomaly's minimized witness
// core satisfies. Every injected kind lands below PRAM: stale-read and
// partition-bottom make one process observe a single key's versions out of
// order, read-your-writes puts the contradiction inside a single process's
// own program order, and a phantom read returns a value no write produced —
// in each case no per-process serialization of the writes exists, which is
// exactly the PRAM decomposition, so no rung of the ladder holds.
func (k AnomalyKind) Tier() spectrum.Tier {
	return spectrum.TierNone
}

// Anomaly records one injected anomaly: its kind, where its witnessing
// read sits in the history, and the rejection it must produce.
type Anomaly struct {
	Kind    AnomalyKind
	Process int    // external process id of the anomalous read
	Key     string // key it misread
	Event   int    // event index of the anomalous read's invocation
	Expect  checker.Constraint
}

// String renders the injection record.
func (a Anomaly) String() string {
	return fmt.Sprintf("%s on process %d key %s at event %d (expect %s)",
		a.Kind, a.Process, a.Key, a.Event, a.Expect)
}

// GenConfig tunes the replicated-KV workload generator.
type GenConfig struct {
	Seed      int64
	Processes int     // client processes; default 3
	Keys      int     // register keys; default 2
	Ops       int     // base logical operations; default 40
	WriteRate float64 // fraction of ops that are writes; default 0.4
	MaxLag    int     // max replica lag, in global log entries; default 3
	// OverlapRate is the chance an invocation's return is deferred past
	// other processes' events, making the history visibly concurrent;
	// default 0.3.
	OverlapRate float64
	// FailEvery fails every Nth write (invoke/fail, no effect); 0 = none.
	FailEvery int
	// InfoEvery turns every Nth operation's return into info
	// (indeterminate); an indeterminate write still takes effect with
	// probability ½. 0 = none.
	InfoEvery int
	// Anomalies are injected in order as scripted operation blocks
	// appended after the base workload, each on fresh values.
	Anomalies []AnomalyKind
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Processes <= 0 {
		c.Processes = 3
	}
	if c.Keys <= 0 {
		c.Keys = 2
	}
	if c.Ops <= 0 {
		c.Ops = 40
	}
	if c.WriteRate <= 0 {
		c.WriteRate = 0.4
	}
	if c.MaxLag < 0 {
		c.MaxLag = 0
	} else if c.MaxLag == 0 {
		c.MaxLag = 3
	}
	if c.OverlapRate <= 0 {
		c.OverlapRate = 0.3
	}
	return c
}

// Generated is a generator output: the history and the injection record.
type Generated struct {
	History   *History
	Anomalies []Anomaly
}

// logEntry is one applied write in the simulated store's single order.
type logEntry struct {
	key string
	val int64
}

// kvSim is the replicated-KV simulation state.
type kvSim struct {
	rng  *rand.Rand
	cfg  GenConfig
	h    *History
	log  []logEntry // the single write order
	pos  []int      // per-process replica prefix into log
	next int64      // unique-value counter

	// lastIdx tracks, per process per key, the index (1-based position
	// among the key's log entries) of the newest version the process has
	// observed — the monotonic floor clean reads must respect and the
	// eligibility state anomaly injection consults.
	lastIdx []map[string]int

	// pendingReturn holds deferred return events (concurrent ops).
	pending map[int]Event

	writes, infos int // counters for FailEvery / InfoEvery
}

// keyVersions returns the 1-based positions in the log holding key's
// writes, newest last.
func (s *kvSim) keyIndex(key string, prefix int) (idx int, val int64) {
	for i := prefix - 1; i >= 0; i-- {
		if s.log[i].key == key {
			n := 0
			for j := 0; j <= i; j++ {
				if s.log[j].key == key {
					n++
				}
			}
			return n, s.log[i].val
		}
	}
	return 0, 0
}

func (s *kvSim) emit(e Event) int {
	s.h.Events = append(s.h.Events, e)
	return len(s.h.Events) - 1
}

// flush returns any pending operation of process p (or all, p < 0).
func (s *kvSim) flush(p int) {
	if p >= 0 {
		if e, ok := s.pending[p]; ok {
			s.emit(e)
			delete(s.pending, p)
		}
		return
	}
	for len(s.pending) > 0 {
		// Deterministic drain order: lowest process first.
		min := -1
		for q := range s.pending {
			if min < 0 || q < min {
				min = q
			}
		}
		s.emit(s.pending[min])
		delete(s.pending, min)
	}
}

// finish emits or defers the return event of the op just invoked.
func (s *kvSim) finish(e Event) {
	if s.rng.Float64() < s.cfg.OverlapRate {
		s.pending[e.Process] = e
		return
	}
	s.emit(e)
}

// doWrite performs one write by process p to key: invoke, apply (unless
// failed), return.
func (s *kvSim) doWrite(p int, key string) {
	s.flush(p)
	v := s.next
	s.next++
	s.writes++
	s.emit(Event{Process: p, Kind: Invoke, F: Write, Key: key, Value: v, HasValue: true})

	if s.cfg.FailEvery > 0 && s.writes%s.cfg.FailEvery == 0 {
		s.finish(Event{Process: p, Kind: Fail, F: Write, Key: key, Value: v, HasValue: true})
		return
	}
	kind := OK
	applied := true
	s.infos++
	if s.cfg.InfoEvery > 0 && s.infos%s.cfg.InfoEvery == 0 {
		kind = Info
		applied = s.rng.Intn(2) == 0 // indeterminate: maybe took effect
	}
	if applied {
		s.log = append(s.log, logEntry{key: key, val: v})
		// Read-your-writes: the writer's replica catches up through its
		// own write (only meaningful if it actually applied).
		s.pos[p] = len(s.log)
		if idx, _ := s.keyIndex(key, len(s.log)); idx > s.lastIdx[p][key] {
			s.lastIdx[p][key] = idx
		}
	}
	s.finish(Event{Process: p, Kind: kind, F: Write, Key: key, Value: v, HasValue: true})
}

// doRead performs one clean read by process p of key: the replica prefix
// advances to a lagged position no older than the process floor, and the
// read serves the newest version of key within it.
func (s *kvSim) doRead(p int, key string) {
	s.flush(p)
	s.emit(Event{Process: p, Kind: Invoke, F: Read, Key: key})

	s.infos++
	if s.cfg.InfoEvery > 0 && s.infos%s.cfg.InfoEvery == 0 {
		s.finish(Event{Process: p, Kind: Info, F: Read, Key: key})
		return
	}
	// Advance the replica with lag, never backwards.
	target := len(s.log) - s.rng.Intn(s.cfg.MaxLag+1)
	if target < s.pos[p] {
		target = s.pos[p]
	}
	// The prefix must also cover the process's per-key floor; it does by
	// construction (the floor was set under a prefix ≤ pos[p]).
	s.pos[p] = target
	idx, val := s.keyIndex(key, target)
	if idx > s.lastIdx[p][key] {
		s.lastIdx[p][key] = idx
	}
	ret := Event{Process: p, Kind: OK, F: Read, Key: key}
	if idx > 0 {
		ret.Value, ret.HasValue = val, true
	}
	s.finish(ret)
}

// Generate produces a seeded replicated-KV history. Without anomalies
// the result is sequentially consistent by construction and the lowering
// accepts it; each requested anomaly is injected as a scripted block on
// fresh values and recorded with the constraint code its rejection must
// carry.
func Generate(cfg GenConfig) (*Generated, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Anomalies) > 0 && cfg.Processes < 2 {
		return nil, fmt.Errorf("history: anomaly injection needs at least 2 processes")
	}
	s := &kvSim{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cfg:     cfg,
		h:       &History{},
		pos:     make([]int, cfg.Processes),
		next:    1,
		lastIdx: make([]map[string]int, cfg.Processes),
		pending: make(map[int]Event),
	}
	for p := range s.lastIdx {
		s.lastIdx[p] = make(map[string]int)
	}
	keyName := func(i int) string { return fmt.Sprintf("k%d", i) }

	for i := 0; i < cfg.Ops; i++ {
		p := s.rng.Intn(cfg.Processes)
		key := keyName(s.rng.Intn(cfg.Keys))
		if s.rng.Float64() < cfg.WriteRate {
			s.doWrite(p, key)
		} else {
			s.doRead(p, key)
		}
	}
	s.flush(-1)

	g := &Generated{History: s.h}
	for i, kind := range cfg.Anomalies {
		key := keyName(i % cfg.Keys)
		a, writer, reader := Anomaly{Kind: kind, Key: key, Expect: kind.Constraint()}, 0, 1
		a.Process = reader
		readOK := func(p int, v int64, has bool) int {
			s.emit(Event{Process: p, Kind: Invoke, F: Read, Key: key})
			return s.emit(Event{Process: p, Kind: OK, F: Read, Key: key, Value: v, HasValue: has}) - 1
		}
		switch kind {
		case AnomalyStaleRead:
			// writer: k := v1; k := v2. reader: reads v2, then v1 again —
			// its view of k runs backwards.
			v1, v2 := s.next, s.next+1
			s.next += 2
			s.doScriptedWrite(writer, key, v1)
			s.doScriptedWrite(writer, key, v2)
			readOK(reader, v2, true)
			a.Event = readOK(reader, v1, true)
		case AnomalyReadYourWrites:
			// reader writes k twice, then immediately misses its own newest
			// write, observing its own earlier value. Seeding the key with the
			// reader's own write (rather than picking up whatever the base
			// workload left behind) keeps the witness core entirely on one
			// process, so the anomaly's tier is a property of the kind, not of
			// the seed.
			a.Process = reader
			v1, v2 := s.next, s.next+1
			s.next += 2
			s.doScriptedWrite(reader, key, v1)
			s.doScriptedWrite(reader, key, v2)
			a.Event = readOK(reader, v1, true)
		case AnomalyPartitionBottom:
			// writer seeds the key; reader observes the value, then its
			// replica partitions away and serves the initial state ⊥.
			v := s.next
			s.next++
			s.doScriptedWrite(writer, key, v)
			readOK(reader, v, true)
			a.Event = readOK(reader, 0, false)
		case AnomalyPhantomRead:
			// reader returns a value no write ever produced.
			phantom := s.next
			s.next++ // consumed but never written
			a.Event = readOK(reader, phantom, true)
		default:
			return nil, fmt.Errorf("history: unknown anomaly kind %d", kind)
		}
		g.Anomalies = append(g.Anomalies, a)
	}
	return g, nil
}

// doScriptedWrite is an always-OK write used by anomaly blocks.
func (s *kvSim) doScriptedWrite(p int, key string, v int64) {
	s.emit(Event{Process: p, Kind: Invoke, F: Write, Key: key, Value: v, HasValue: true})
	s.log = append(s.log, logEntry{key: key, val: v})
	s.pos[p] = len(s.log)
	if idx, _ := s.keyIndex(key, len(s.log)); idx > s.lastIdx[p][key] {
		s.lastIdx[p][key] = idx
	}
	s.emit(Event{Process: p, Kind: OK, F: Write, Key: key, Value: v, HasValue: true})
}
