package history

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The EDN subset: the shape Jepsen writes its histories in —
//
//	[{:process 0, :type :invoke, :f :write, :key "x", :value 3}
//	 {:process 0, :type :ok,     :f :write, :key "x", :value 3}
//	 {:process 1, :type :invoke, :f :read,  :key "x", :value nil}
//	 {:process 1, :type :ok,     :f :read,  :key "x", :value 3}]
//
// Supported: maps, vectors, keywords, integers, strings (Go/EDN escape
// syntax), nil, true/false, symbols, commas-as-whitespace, and ";"
// line comments. The surrounding vector is optional — a bare sequence of
// maps parses the same. Jepsen's independent-register convention, where
// :key is absent and :value is a [key value] pair, is recognized and
// destructured. Events whose :process is not an integer (:nemesis) are
// skipped. Everything else of EDN (sets, tagged literals, floats,
// character literals) is outside the subset and rejected with a
// positioned error.

// ednValue is a parsed EDN datum: int64, string, ednKw (keyword), bool,
// nil, []ednValue (vector), or map[string]ednValue (keyed by keyword
// name, colon included).
type ednValue any

// ednKw is a keyword token, stored with its leading ':'.
type ednKw string

type ednParser struct {
	src  string
	pos  int
	line int
}

func (p *ednParser) errf(format string, args ...any) error {
	return errLine(p.line, format, args...)
}

// skip advances past whitespace, commas, and ; comments.
func (p *ednParser) skip() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r' || c == ',':
			p.pos++
		case c == ';':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *ednParser) eof() bool {
	p.skip()
	return p.pos >= len(p.src)
}

func (p *ednParser) peek() byte { return p.src[p.pos] }

// value parses one EDN datum.
func (p *ednParser) value() (ednValue, error) {
	if p.eof() {
		return nil, p.errf("unexpected end of input")
	}
	switch c := p.peek(); {
	case c == '{':
		return p.mapValue()
	case c == '[':
		return p.vector()
	case c == '"':
		return p.stringValue()
	case c == ':':
		return p.keyword()
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	case c == '(' || c == '#' || c == '\\':
		return nil, p.errf("EDN %q syntax is outside the history subset", string(c))
	default:
		return p.symbol()
	}
}

func (p *ednParser) mapValue() (ednValue, error) {
	p.pos++ // '{'
	m := make(map[string]ednValue)
	for {
		if p.eof() {
			return nil, p.errf("unterminated map")
		}
		if p.peek() == '}' {
			p.pos++
			return m, nil
		}
		k, err := p.value()
		if err != nil {
			return nil, err
		}
		kw, ok := k.(ednKw)
		if !ok {
			return nil, p.errf("map key must be a keyword, got %v", k)
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		m[string(kw)] = v
	}
}

func (p *ednParser) vector() (ednValue, error) {
	p.pos++ // '['
	var vec []ednValue
	for {
		if p.eof() {
			return nil, p.errf("unterminated vector")
		}
		if p.peek() == ']' {
			p.pos++
			return vec, nil
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		vec = append(vec, v)
	}
}

func (p *ednParser) stringValue() (ednValue, error) {
	start := p.pos
	p.pos++ // opening quote
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos += 2
		case '"':
			p.pos++
			s, err := strconv.Unquote(p.src[start:p.pos])
			if err != nil {
				return nil, p.errf("bad string %s", p.src[start:p.pos])
			}
			return s, nil
		case '\n':
			return nil, p.errf("newline in string")
		default:
			p.pos++
		}
	}
	return nil, p.errf("unterminated string")
}

func ednSymbolChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		strings.IndexByte("-_.*+!?$%&=<>/#'", c) >= 0
}

func (p *ednParser) keyword() (ednValue, error) {
	start := p.pos
	p.pos++ // ':'
	for p.pos < len(p.src) && ednSymbolChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start+1 {
		return nil, p.errf("bare ':' is not a keyword")
	}
	return ednKw(p.src[start:p.pos]), nil
}

func (p *ednParser) number() (ednValue, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	tok := p.src[start:p.pos]
	if p.pos < len(p.src) && (p.src[p.pos] == '.' || p.src[p.pos] == 'e' || p.src[p.pos] == 'E' || p.src[p.pos] == '/') {
		return nil, p.errf("non-integer number at %q: the history subset is integers only", tok)
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nil, p.errf("bad integer %q", tok)
	}
	return n, nil
}

// ednSym wraps a bare symbol so it cannot be confused with a string.
type ednSym string

func (p *ednParser) symbol() (ednValue, error) {
	start := p.pos
	for p.pos < len(p.src) && ednSymbolChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, p.errf("unexpected character %q", string(p.peek()))
	}
	switch tok := p.src[start:p.pos]; tok {
	case "nil":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	default:
		return ednSym(tok), nil
	}
}

// ParseEDN reads a history in the EDN subset.
func ParseEDN(r io.Reader) (*History, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, errLine(0, "read: %v", err)
	}
	p := &ednParser{src: string(src), line: 1}
	var maps []ednValue
	if !p.eof() && p.peek() == '[' {
		v, err := p.vector()
		if err != nil {
			return nil, err
		}
		maps = v.([]ednValue)
	} else {
		for !p.eof() {
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			maps = append(maps, v)
		}
	}
	if !p.eof() {
		return nil, p.errf("trailing data after history vector")
	}
	h := &History{}
	for i, mv := range maps {
		m, ok := mv.(map[string]ednValue)
		if !ok {
			return nil, errAt(i, "history element is %T, want a map", mv)
		}
		e, keep, err := ednEvent(m, i)
		if err != nil {
			return nil, err
		}
		if keep {
			h.Events = append(h.Events, e)
		}
	}
	return h, nil
}

// ednEvent converts one parsed map to an Event; keep=false skips
// non-integer-process (nemesis/system) entries.
func ednEvent(m map[string]ednValue, idx int) (Event, bool, error) {
	var e Event
	proc, ok := m[":process"].(int64)
	if !ok {
		return e, false, nil
	}
	e.Process = int(proc)
	kindStr, err := ednKeywordField(m, ":type", idx)
	if err != nil {
		return e, false, err
	}
	if e.Kind, err = parseKind(kindStr); err != nil {
		return e, false, errAt(idx, "%v", err)
	}
	fStr, err := ednKeywordField(m, ":f", idx)
	if err != nil {
		return e, false, err
	}
	if e.F, err = parseFunc(fStr); err != nil {
		return e, false, errAt(idx, "%v", err)
	}

	val, hasVal := m[":value"]
	key, hasKey := m[":key"]
	if !hasKey {
		// Independent-register convention: :value is a [key value] pair.
		pair, ok := val.([]ednValue)
		if !ok || len(pair) != 2 {
			return e, false, errAt(idx, "no :key and :value is not a [key value] pair")
		}
		key, val = pair[0], pair[1]
		hasKey, hasVal = true, true
	}
	if e.Key, err = ednKeyString(key); err != nil {
		return e, false, errAt(idx, "key: %v", err)
	}
	if hasVal && val != nil {
		n, ok := val.(int64)
		if !ok {
			return e, false, errAt(idx, "value %v is not an integer", val)
		}
		e.Value, e.HasValue = n, true
	}
	return e, true, nil
}

func ednKeywordField(m map[string]ednValue, field string, idx int) (string, error) {
	v, ok := m[field]
	if !ok {
		return "", errAt(idx, "missing %s", field)
	}
	switch t := v.(type) {
	case ednKw:
		return string(t), nil // parseKind/parseFunc strip the leading ':'
	case ednSym:
		return string(t), nil
	default:
		return "", errAt(idx, "%s is %T, want a keyword", field, v)
	}
}

// ednKeyString canonicalizes a key datum: strings stay themselves,
// keywords drop the colon, integers render decimally.
func ednKeyString(v ednValue) (string, error) {
	switch t := v.(type) {
	case string:
		return t, nil
	case ednKw:
		return strings.TrimPrefix(string(t), ":"), nil
	case int64:
		return strconv.FormatInt(t, 10), nil
	case ednSym:
		return string(t), nil
	default:
		return "", fmt.Errorf("%v (%T) is not a usable key", v, v)
	}
}

// WriteEDN renders the history as one canonical EDN vector, one event map
// per line. ParseEDN of the output reproduces the exact event sequence.
func (h *History) WriteEDN(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("[")
	for i, e := range h.Events {
		if i > 0 {
			sb.WriteString("\n ")
		}
		fmt.Fprintf(&sb, "{:process %d, :type :%s, :f :%s, :key %s",
			e.Process, e.Kind, e.F, strconv.Quote(e.Key))
		switch {
		case e.HasValue:
			fmt.Fprintf(&sb, ", :value %d", e.Value)
		case e.Kind == OK && e.F == Read:
			sb.WriteString(", :value nil")
		}
		sb.WriteString("}")
	}
	sb.WriteString("]\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
