package history

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedHistories is the shared seed corpus: well-formed, anomalous,
// and structurally odd inputs in both serializations.
var fuzzSeedJSONL = []string{
	`{"process":0,"type":"invoke","f":"write","key":"x","value":3}
{"process":0,"type":"ok","f":"write","key":"x","value":3}
{"process":1,"type":"invoke","f":"read","key":"x"}
{"process":1,"type":"ok","f":"read","key":"x","value":3}`,
	`{"process":0,"type":"invoke","f":"r","key":7}
{"process":0,"type":"ok","f":"r","key":7,"value":null}`,
	`{"process":"nemesis","type":"info","f":"start"}`,
	`{"process":0,"type":"invoke","f":"write","key":"x","value":1}
{"process":0,"type":"info","f":"write","key":"x","value":1}`,
	`{}`,
	`not json at all`,
}

var fuzzSeedEDN = []string{
	`[{:process 0, :type :invoke, :f :write, :key "x", :value 3}
 {:process 0, :type :ok, :f :write, :key "x", :value 3}]`,
	`{:process 1, :type :invoke, :f :read, :value ["x" nil]}
{:process 1, :type :ok, :f :read, :value ["x" 3]}`,
	`[{:process :nemesis, :type :info, :f :start, :value nil}]`,
	`; just a comment`,
	`[{:process 0, :type :invoke, :f :read, :key :x, :value nil}
 {:process 0, :type :ok, :f :read, :key :x, :value nil}]`,
	`[[]]`,
	`[}`,
}

// fuzzHistory exercises the shared downstream surface on a parsed
// history: pairing, lowering, and checking must never panic.
func fuzzHistory(t *testing.T, h *History) {
	if len(h.Events) > 2000 {
		return // keep the burst budget on parsing, not giant lowerings
	}
	if _, err := h.Ops(true); err != nil {
		_ = err
	}
	l, err := Lower(h)
	if err != nil {
		return
	}
	if err := l.Check(); err != nil {
		// Rejections are fine; Explain must also hold up.
		if w := l.Explain(); w != nil {
			_ = w.Render()
			_ = w.Summary()
		}
	}
	_ = l.Summary()
}

// FuzzHistoryJSONL fuzzes the JSONL parser: no panics, and accepted
// inputs round-trip exactly through the canonical renderer.
func FuzzHistoryJSONL(f *testing.F) {
	for _, s := range fuzzSeedJSONL {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := h.WriteJSONL(&buf); err != nil {
			t.Fatalf("render parsed history: %v", err)
		}
		h2, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse rendered history: %v\n%s", err, buf.String())
		}
		if len(h.Events)+len(h2.Events) > 0 && !reflect.DeepEqual(h.Events, h2.Events) {
			t.Fatalf("JSONL round trip changed events:\n in: %v\nout: %v", h.Events, h2.Events)
		}
		fuzzHistory(t, h)
	})
}

// FuzzHistoryEDN fuzzes the EDN subset parser: no panics, and accepted
// inputs round-trip exactly through the canonical renderer.
func FuzzHistoryEDN(f *testing.F) {
	for _, s := range fuzzSeedEDN {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseEDN(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := h.WriteEDN(&buf); err != nil {
			t.Fatalf("render parsed history: %v", err)
		}
		h2, err := ParseEDN(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse rendered history: %v\n%s", err, buf.String())
		}
		if len(h.Events)+len(h2.Events) > 0 && !reflect.DeepEqual(h.Events, h2.Events) {
			t.Fatalf("EDN round trip changed events:\n in: %v\nout: %v", h.Events, h2.Events)
		}
		fuzzHistory(t, h)
	})
}
