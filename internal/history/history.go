// Package history ingests black-box operation histories — per-process
// invoke/return records of reads and writes over a key-value register
// space, the input shape of Jepsen-style distributed-systems tests — and
// lowers them onto the paper's memory-operation traces so the Condon–Hu
// observer/checker pipeline can adjudicate them.
//
// A history is a flat event sequence. Each event names a process, an
// event kind (invoke, ok, fail, info), an operation function (read or
// write), a key, and optionally a value. Processes are logically
// single-threaded: a process must not invoke a new operation while one is
// pending, and every return must match the pending invocation. Histories
// arrive in a JSONL format (one JSON event per line) or a Jepsen-style
// EDN subset; both parse into the same Event representation and render
// back out losslessly.
//
// Checking requires the value-uniqueness discipline of Jepsen register
// workloads: every effective write to a key carries a value no other
// write to that key uses. Under that discipline the §4.4 value-matching
// decomposition synthesizes the tracking labels the checker needs — each
// read's inheritance edge points at the unique write of the value it
// returned — and the history becomes an ordinary k-graph descriptor
// stream (see Lower).
package history

import (
	"fmt"
)

// Func is the operation function of an event: a register read or write.
type Func uint8

const (
	// Read is a register read; its invocation carries no value and its ok
	// return carries the value read (absent value = the initial state ⊥).
	Read Func = iota
	// Write is a register write; its invocation carries the written value.
	Write
)

// String returns the canonical spelling used by both serializations.
func (f Func) String() string {
	switch f {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Func(%d)", uint8(f))
	}
}

// Kind is the event kind of the Jepsen event model.
type Kind uint8

const (
	// Invoke starts an operation on a process.
	Invoke Kind = iota
	// OK completes an operation successfully.
	OK
	// Fail completes an operation that definitely did not take effect.
	Fail
	// Info ends an operation indeterminately (timeout, crash): the
	// operation may or may not have taken effect.
	Info
)

// String returns the canonical spelling used by both serializations.
func (k Kind) String() string {
	switch k {
	case Invoke:
		return "invoke"
	case OK:
		return "ok"
	case Fail:
		return "fail"
	case Info:
		return "info"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one history record.
type Event struct {
	// Process identifies the logically single-threaded client; any
	// non-negative integer (processes are interned during lowering).
	Process int
	// Kind is invoke/ok/fail/info.
	Kind Kind
	// F is the operation function.
	F Func
	// Key names the register.
	Key string
	// Value is the operation value; meaningful only when HasValue is set.
	// Write invocations must carry one; a read's ok return carries the
	// value read, with HasValue=false meaning the read observed the
	// initial state (⊥ — the key was never written).
	Value int64
	// HasValue distinguishes a present Value from an absent one.
	HasValue bool
}

// String renders the event in a compact human-readable form.
func (e Event) String() string {
	v := "_"
	if e.HasValue {
		v = fmt.Sprintf("%d", e.Value)
	}
	return fmt.Sprintf("{p%d %s %s %q %s}", e.Process, e.Kind, e.F, e.Key, v)
}

// History is a parsed operation history: the raw event sequence.
type History struct {
	Events []Event
}

// FormatError reports a malformed history: a parse failure or a
// well-formedness violation, positioned at the offending event (or line).
type FormatError struct {
	// Event is the 0-based index of the offending event, or -1 when the
	// error is positioned by Line instead (parse errors).
	Event int
	// Line is the 1-based input line of a parse error, 0 otherwise.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error renders the positioned message.
func (e *FormatError) Error() string {
	switch {
	case e.Line > 0:
		return fmt.Sprintf("history: line %d: %s", e.Line, e.Msg)
	case e.Event >= 0:
		return fmt.Sprintf("history: event %d: %s", e.Event, e.Msg)
	default:
		return "history: " + e.Msg
	}
}

func errAt(event int, format string, args ...any) *FormatError {
	return &FormatError{Event: event, Line: 0, Msg: fmt.Sprintf(format, args...)}
}

func errLine(line int, format string, args ...any) *FormatError {
	return &FormatError{Event: -1, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Op is one completed logical operation: an invoke event paired with its
// return (or left dangling at end of history, which counts as Info — the
// Jepsen convention for operations still in flight when the test stopped).
type Op struct {
	// Process is the external process identifier.
	Process int
	// F is the operation function.
	F Func
	// Key names the register.
	Key string
	// Value is the write's value, or the read's returned value (only
	// meaningful for OK reads); HasValue=false on an OK read means the
	// read observed ⊥.
	Value    int64
	HasValue bool
	// Outcome is OK, Fail, or Info (never Invoke).
	Outcome Kind
	// Invoke and Return are event indices; Return is -1 for operations
	// dangling at end of history.
	Invoke, Return int
	// Pos is the operation's 1-based position within its process.
	Pos int
}

// String renders the operation in history vocabulary.
func (o Op) String() string {
	switch {
	case o.F == Write:
		s := fmt.Sprintf("process %d op %d: write %s := %d", o.Process, o.Pos, o.Key, o.Value)
		if o.Outcome != OK {
			s += " (" + o.Outcome.String() + ")"
		}
		return s
	case o.Outcome == OK && o.HasValue:
		return fmt.Sprintf("process %d op %d: read %s = %d", o.Process, o.Pos, o.Key, o.Value)
	case o.Outcome == OK:
		return fmt.Sprintf("process %d op %d: read %s = ⊥", o.Process, o.Pos, o.Key)
	default:
		return fmt.Sprintf("process %d op %d: read %s (%s)", o.Process, o.Pos, o.Key, o.Outcome)
	}
}

// Ops validates well-formedness and pairs each invocation with its
// return, in invocation order. The rules:
//
//   - every ok/fail/info must match a pending invoke of the same process,
//     with the same function and key (and, for writes, the same value);
//   - a process may not invoke while an operation is pending (processes
//     are logically single-threaded — concurrent ops within one process
//     make the session order ill-defined and are rejected);
//   - invocations still pending at end of history become Info operations
//     (indeterminate), unless strict is set, in which case they are
//     rejected.
func (h *History) Ops(strict bool) ([]Op, error) {
	type pend struct {
		op  int // index into ops
		ev  int // invoke event index
	}
	pending := make(map[int]pend)
	perProc := make(map[int]int)
	var ops []Op
	for i, e := range h.Events {
		if e.Process < 0 {
			return nil, errAt(i, "negative process %d", e.Process)
		}
		switch e.Kind {
		case Invoke:
			if p, busy := pending[e.Process]; busy {
				return nil, errAt(i, "process %d invokes %s %q while its %s (event %d) is pending: processes are single-threaded",
					e.Process, e.F, e.Key, ops[p.op].F, p.ev)
			}
			if e.F == Write && !e.HasValue {
				return nil, errAt(i, "write invocation on process %d has no value", e.Process)
			}
			perProc[e.Process]++
			ops = append(ops, Op{
				Process: e.Process, F: e.F, Key: e.Key,
				Value: e.Value, HasValue: e.HasValue,
				Outcome: Info, Invoke: i, Return: -1,
				Pos: perProc[e.Process],
			})
			pending[e.Process] = pend{op: len(ops) - 1, ev: i}
		case OK, Fail, Info:
			p, busy := pending[e.Process]
			if !busy {
				return nil, errAt(i, "%s on process %d with no pending invocation", e.Kind, e.Process)
			}
			op := &ops[p.op]
			if op.F != e.F {
				return nil, errAt(i, "%s %s on process %d does not match pending %s (event %d)",
					e.Kind, e.F, e.Process, op.F, p.ev)
			}
			if e.Key != op.Key {
				return nil, errAt(i, "%s on process %d names key %q but the pending invocation (event %d) names %q",
					e.Kind, e.Process, e.Key, p.ev, op.Key)
			}
			if op.F == Write && e.HasValue && e.Value != op.Value {
				return nil, errAt(i, "write return on process %d carries value %d but the invocation (event %d) wrote %d",
					e.Process, e.Value, p.ev, op.Value)
			}
			op.Outcome = e.Kind
			op.Return = i
			if op.F == Read {
				// The return is where a read's result lives; fail/info
				// reads return nothing observable.
				op.Value, op.HasValue = 0, false
				if e.Kind == OK && e.HasValue {
					op.Value, op.HasValue = e.Value, true
				}
			}
			delete(pending, e.Process)
		default:
			return nil, errAt(i, "unknown event kind %d", e.Kind)
		}
	}
	if strict && len(pending) > 0 {
		for p, pd := range pending {
			return nil, errAt(pd.ev, "process %d operation never returned (strict mode)", p)
		}
	}
	// Dangling invocations keep their zero-value Outcome=Info, Return=-1:
	// indeterminate, exactly like an explicit info return.
	return ops, nil
}
