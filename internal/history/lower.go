package history

import (
	"fmt"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
)

// Lowering is a well-formed history mapped onto the paper's machinery:
// the memory-operation trace, the annotated constraint graph rendered as
// a k-graph descriptor stream, and the books needed to translate checker
// verdicts back into history vocabulary.
//
// The lowering rules (§4.4 value-matching decomposition over unique write
// values):
//
//	history operation            trace op        synthesized tracking labels
//	----------------------------------------------------------------------
//	write k:=v, ok               ST(P,B,v)       ST-order edge from the key's
//	                                             previous effective write
//	                                             (per-key invocation order)
//	write k:=v, fail             (dropped)       definitely did not happen
//	write k:=v, info, observed   ST(P,B,v)       as an ok write: some read
//	                                             returned v, so it happened
//	write k:=v, info, unobserved (dropped)       sound: an unobserved write
//	                                             can be appended at the end
//	                                             of any serial order
//	read k=v, ok                 LD(P,B,v)       inheritance edge from the
//	                                             unique write of v to k, and
//	                                             the §3.1-5(a) forced edge to
//	                                             that write's ST successor
//	read k=⊥, ok (key unwritten) LD(P,B,⊥)       §3.1-5(b) forced edge to the
//	                                             key's first effective write
//	read k=v, ok, v never        LD(P,B,v)       no inheritance edge — the
//	  written ("phantom")                        checker rejects it under
//	                                             §3.1 constraint 4
//	read, fail or info           (dropped)       returned nothing observable
//
// Program-order edges link each process's consecutive lowered operations
// (processes are single-threaded, so invocation order is program order).
// ST order is synthesized per key from effective-write invocation order —
// a real-time heuristic in the spirit of the paper's ST-order generators.
// Acceptance is sound regardless of the heuristic (an acyclic constraint
// graph exhibits a serial reordering by Lemma 3.1); a rejection whose
// trace the exact search finds SC is annotation inadequacy, exactly the
// classification internal/witness already performs.
type Lowering struct {
	// History is the source history; Ops its paired logical operations.
	History *History
	Ops     []Op
	// Trace is the lowered memory-operation trace (dropped ops excluded),
	// in invocation order. OpIndex maps each trace position to its index
	// in Ops.
	Trace   trace.Trace
	OpIndex []int
	// Stream is the descriptor encoding of the annotated constraint
	// graph, and K the bandwidth bound it needs.
	Stream descriptor.Stream
	K      int
	// Params bounds the lowered trace's label ranges.
	Params trace.Params
	// Keys maps BlockID → key name and Procs maps ProcID → external
	// process id (index 0 unused in both). Values maps trace.Value →
	// external value (index 0 is ⊥).
	Keys   []string
	Procs  []int
	Values []int64

	// Dropped counts operations the lowering excluded, by rule.
	Dropped Drops
}

// Drops counts history operations excluded from the lowered trace.
type Drops struct {
	FailedWrites     int // definite no-ops
	FailedReads      int
	InfoReads        int // indeterminate reads return nothing observable
	UnobservedWrites int // indeterminate writes no read ever returned
}

// Total sums the dropped operations.
func (d Drops) Total() int {
	return d.FailedWrites + d.FailedReads + d.InfoReads + d.UnobservedWrites
}

// Lower validates the history (non-strict pairing: dangling invocations
// are indeterminate) and builds its Lowering. Errors are *FormatError
// values: pairing violations, or a violation of the unique-write-value
// discipline the value-matching decomposition needs.
func Lower(h *History) (*Lowering, error) {
	ops, err := h.Ops(false)
	if err != nil {
		return nil, err
	}
	l := &Lowering{History: h, Ops: ops}

	// Pass 1: which (key, value) pairs did some OK read return? An
	// indeterminate write is kept iff observed.
	observed := make(map[[2]any]bool)
	for _, op := range ops {
		if op.F == Read && op.Outcome == OK && op.HasValue {
			observed[[2]any{op.Key, op.Value}] = true
		}
	}

	// Pass 2: select the lowered ops and enforce write-value uniqueness.
	kept := make([]int, 0, len(ops))
	writeOf := make(map[[2]any]int) // (key, value) → ops index of its write
	for i, op := range ops {
		switch {
		case op.F == Write && op.Outcome == OK,
			op.F == Write && op.Outcome == Info && observed[[2]any{op.Key, op.Value}]:
			if j, dup := writeOf[[2]any{op.Key, op.Value}]; dup {
				return nil, errAt(op.Invoke,
					"%s duplicates the value of %s (event %d): history checking requires unique write values per key",
					op, ops[j], ops[j].Invoke)
			}
			writeOf[[2]any{op.Key, op.Value}] = i
			kept = append(kept, i)
		case op.F == Write && op.Outcome == Info:
			l.Dropped.UnobservedWrites++
		case op.F == Write: // Fail
			l.Dropped.FailedWrites++
		case op.Outcome == OK: // reads
			kept = append(kept, i)
		case op.Outcome == Fail:
			l.Dropped.FailedReads++
		default: // Info
			l.Dropped.InfoReads++
		}
	}

	// Pass 3: intern processes, keys and values densely and build the
	// trace. Interning follows first appearance in the kept sequence, so
	// the lowering is deterministic in the history alone.
	l.Keys = []string{""}
	l.Procs = []int{0}
	l.Values = []int64{0}
	blockOf := make(map[string]trace.BlockID)
	procOf := make(map[int]trace.ProcID)
	valueOf := make(map[int64]trace.Value)
	internBlock := func(key string) trace.BlockID {
		b, ok := blockOf[key]
		if !ok {
			l.Keys = append(l.Keys, key)
			b = trace.BlockID(len(l.Keys) - 1)
			blockOf[key] = b
		}
		return b
	}
	internProc := func(p int) trace.ProcID {
		pid, ok := procOf[p]
		if !ok {
			l.Procs = append(l.Procs, p)
			pid = trace.ProcID(len(l.Procs) - 1)
			procOf[p] = pid
		}
		return pid
	}
	internValue := func(v int64) trace.Value {
		val, ok := valueOf[v]
		if !ok {
			l.Values = append(l.Values, v)
			val = trace.Value(len(l.Values) - 1)
			valueOf[v] = val
		}
		return val
	}
	// Writes intern their values first so every store value is stable
	// whether or not any phantom read values interleave.
	for _, i := range kept {
		if ops[i].F == Write {
			internValue(ops[i].Value)
		}
	}
	l.Trace = make(trace.Trace, 0, len(kept))
	l.OpIndex = make([]int, 0, len(kept))
	for _, i := range kept {
		op := ops[i]
		p, b := internProc(op.Process), internBlock(op.Key)
		switch {
		case op.F == Write:
			l.Trace = append(l.Trace, trace.ST(p, b, internValue(op.Value)))
		case op.HasValue:
			l.Trace = append(l.Trace, trace.LD(p, b, internValue(op.Value)))
		default:
			l.Trace = append(l.Trace, trace.LD(p, b, trace.Bottom))
		}
		l.OpIndex = append(l.OpIndex, i)
	}
	l.Params = l.Trace.Params()

	// Pass 4: the annotated constraint graph — program order, per-key ST
	// order, value-matched inheritance, and the two forced-edge rules.
	g := graph.New(l.Trace)
	lastOfProc := make(map[trace.ProcID]int)
	lastStore := make(map[trace.BlockID]int)
	firstStore := make(map[trace.BlockID]int)
	stSucc := make(map[int]int)
	storeAt := make(map[[2]any]int) // (block, value) → trace position
	for i, op := range l.Trace {
		if prev, ok := lastOfProc[op.Proc]; ok {
			g.AddEdge(prev, i, graph.ProgramOrder)
		}
		lastOfProc[op.Proc] = i
		if op.IsStore() {
			if prev, ok := lastStore[op.Block]; ok {
				g.AddEdge(prev, i, graph.StoreOrder)
				stSucc[prev] = i
			} else {
				firstStore[op.Block] = i
			}
			lastStore[op.Block] = i
			storeAt[[2]any{op.Block, op.Value}] = i
		}
	}
	for i, op := range l.Trace {
		if !op.IsLoad() {
			continue
		}
		if op.Value == trace.Bottom {
			if fs, ok := firstStore[op.Block]; ok {
				g.AddEdge(i, fs, graph.Forced) // §3.1 constraint 5(b)
			}
			continue
		}
		st, ok := storeAt[[2]any{op.Block, op.Value}]
		if !ok {
			continue // phantom read: no inheritance edge, checker rejects
		}
		g.AddEdge(st, i, graph.Inheritance)
		if succ, ok := stSucc[st]; ok {
			g.AddEdge(i, succ, graph.Forced) // §3.1 constraint 5(a)
		}
	}
	l.Stream, l.K = descriptor.EncodeAuto(g)
	return l, nil
}

// Check streams the lowered descriptor through a fresh checker and
// returns nil on acceptance or the checker's typed *checker.RejectError.
func (l *Lowering) Check() error {
	c := checker.New(l.K)
	if l.Params.Procs > 0 {
		c.SetParams(l.Params)
	}
	for _, sym := range l.Stream {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return c.Finish()
}

// Check is the one-call adjudication: lower the history and run the
// checker. A *FormatError means the history (not its consistency) is the
// problem; a *checker.RejectError is a rejection; nil is acceptance.
func Check(h *History) error {
	l, err := Lower(h)
	if err != nil {
		return err
	}
	return l.Check()
}

// Describe renders the operation behind trace position i (of the full
// lowered trace) in history vocabulary.
func (l *Lowering) Describe(i int) string {
	if i < 0 || i >= len(l.OpIndex) {
		return ""
	}
	op := l.Ops[l.OpIndex[i]]
	s := op.String()
	if op.F == Write && op.Outcome == Info {
		s += " (indeterminate, observed)"
	}
	if op.Return >= 0 {
		s += fmt.Sprintf(" [events %d,%d]", op.Invoke, op.Return)
	} else {
		s += fmt.Sprintf(" [event %d]", op.Invoke)
	}
	return s
}

// Summary renders a one-line account of the lowering for CLI output.
func (l *Lowering) Summary() string {
	return fmt.Sprintf("%d events, %d ops (%d lowered, %d dropped) over %d processes × %d keys → %d symbols, k=%d",
		len(l.History.Events), len(l.Ops), len(l.Trace), l.Dropped.Total(),
		len(l.Procs)-1, len(l.Keys)-1, len(l.Stream), l.K)
}
