package history

import (
	"testing"

	"scverify/internal/witness"
)

// TestAnomalyTierMapping pins each injectable anomaly kind to its declared
// consistency tier: across many seeds and workload mixes, the minimized
// witness core of every seeded rejection must adjudicate to exactly
// AnomalyKind.Tier(). A core too large for the adjudication limit yields a
// missing tier, which is tolerated (and counted); a wrong tier never is.
func TestAnomalyTierMapping(t *testing.T) {
	for _, kind := range AllAnomalies() {
		t.Run(kind.String(), func(t *testing.T) {
			const seeds = 50
			checked := 0
			for seed := int64(0); seed < seeds; seed++ {
				cfg := GenConfig{
					Seed:      seed,
					Ops:       12 + int(seed%5), // small base so cores fit the limit
					Anomalies: []AnomalyKind{kind},
				}
				g, err := Generate(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				l, err := Lower(g.History)
				if err != nil {
					t.Fatalf("seed %d: lower: %v", seed, err)
				}
				w := witness.TierWitness(l.Stream, l.K, l.Params)
				if w == nil {
					t.Fatalf("seed %d: seeded %s history accepted", seed, kind)
				}
				res := w.Adjudicate(0)
				if !res.Checked || res.Bounded {
					continue // oversized or budget-bounded: missing tier is legal
				}
				checked++
				if res.Tier != kind.Tier() {
					t.Fatalf("seed %d: %s core adjudicated to tier %s, want %s\n%s",
						seed, kind, res.Tier, kind.Tier(), w.Render())
				}
			}
			if checked < seeds/2 {
				t.Fatalf("only %d/%d seeds produced an adjudicable core", checked, seeds)
			}
		})
	}
}
