package history

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func inv(p int, f Func, key string, v ...int64) Event {
	e := Event{Process: p, Kind: Invoke, F: f, Key: key}
	if len(v) > 0 {
		e.Value, e.HasValue = v[0], true
	}
	return e
}

func ret(p int, k Kind, f Func, key string, v ...int64) Event {
	e := Event{Process: p, Kind: k, F: f, Key: key}
	if len(v) > 0 {
		e.Value, e.HasValue = v[0], true
	}
	return e
}

func TestOpsPairing(t *testing.T) {
	h := &History{Events: []Event{
		inv(0, Write, "x", 1),
		inv(1, Read, "x"),
		ret(0, OK, Write, "x", 1),
		ret(1, OK, Read, "x", 1),
		inv(1, Read, "y"),
		ret(1, OK, Read, "y"), // ⊥ read
		inv(0, Write, "x", 2),
		ret(0, Fail, Write, "x", 2),
		inv(1, Write, "y", 3),
		ret(1, Info, Write, "y", 3),
		inv(0, Read, "x"), // dangling at EOF
	}}
	ops, err := h.Ops(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 6 {
		t.Fatalf("got %d ops, want 6: %v", len(ops), ops)
	}
	want := []struct {
		proc    int
		f       Func
		outcome Kind
		hasVal  bool
		ret     int
	}{
		{0, Write, OK, true, 2},
		{1, Read, OK, true, 3},
		{1, Read, OK, false, 5},
		{0, Write, Fail, true, 7},
		{1, Write, Info, true, 9},
		{0, Read, Info, false, -1},
	}
	for i, w := range want {
		op := ops[i]
		if op.Process != w.proc || op.F != w.f || op.Outcome != w.outcome ||
			op.HasValue != w.hasVal || op.Return != w.ret {
			t.Errorf("op %d = %+v, want %+v", i, op, w)
		}
	}
	// Strict mode rejects the dangling read.
	if _, err := h.Ops(true); err == nil {
		t.Error("strict Ops accepted a dangling invocation")
	}
}

func TestOpsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"concurrent ops in one process",
			[]Event{inv(0, Read, "x"), inv(0, Read, "y")},
			"single-threaded"},
		{"return with no invoke",
			[]Event{ret(0, OK, Read, "x", 1)},
			"no pending invocation"},
		{"function mismatch",
			[]Event{inv(0, Read, "x"), ret(0, OK, Write, "x", 1)},
			"does not match"},
		{"key mismatch",
			[]Event{inv(0, Read, "x"), ret(0, OK, Read, "y", 1)},
			"names key"},
		{"write value mismatch",
			[]Event{inv(0, Write, "x", 1), ret(0, OK, Write, "x", 2)},
			"wrote"},
		{"write invoke without value",
			[]Event{{Process: 0, Kind: Invoke, F: Write, Key: "x"}},
			"no value"},
		{"negative process",
			[]Event{inv(-1, Read, "x")},
			"negative process"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &History{Events: tc.events}
			_, err := h.Ops(false)
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("got %v, want a *FormatError", err)
			}
			if !strings.Contains(fe.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", fe, tc.want)
			}
		})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := strings.Join([]string{
		`{"process":0,"type":"invoke","f":"write","key":"x","value":3}`,
		`{"process":0,"type":"ok","f":"write","key":"x","value":3}`,
		``,
		`{"process":1,"type":"invoke","f":"r","key":7}`,
		`{"index":12,"process":1,"type":"ok","f":"read","key":7,"value":null,"time":991}`,
		`{"process":"nemesis","type":"info","f":"start","key":"net"}`,
		`{"process":2,"type":"invoke","f":"read","key":"x"}`,
		`{"process":2,"type":"ok","f":"read","key":"x","value":3}`,
	}, "\n")
	h, err := ParseJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Events) != 6 {
		t.Fatalf("got %d events, want 6 (nemesis and blank skipped): %v", len(h.Events), h.Events)
	}
	if h.Events[2].Key != "7" {
		t.Errorf("integer key not canonicalized: %v", h.Events[2])
	}
	var buf bytes.Buffer
	if err := h.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(h.Events, h2.Events) {
		t.Errorf("round trip changed events:\n%v\n%v", h.Events, h2.Events)
	}
}

func TestJSONLRejects(t *testing.T) {
	cases := []string{
		`not json`,
		`{"process":0,"type":"invoke","f":"write","key":"x"} extra`,
		`{"process":0,"type":"frob","f":"write","key":"x"}`,
		`{"process":0,"type":"invoke","f":"cas","key":"x"}`,
		`{"process":0,"type":"invoke","f":"read"}`,
		`{"process":0,"type":"invoke","f":"read","key":"x","value":1.5}`,
	}
	for _, in := range cases {
		if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("ParseJSONL accepted %q", in)
		}
	}
}

func TestEDNRoundTrip(t *testing.T) {
	in := `
; a Jepsen-ish history
[{:process 0, :type :invoke, :f :write, :key "x", :value 3}
 {:process 0, :type :ok,     :f :write, :key "x", :value 3}
 {:process :nemesis, :type :info, :f :start, :value nil}
 {:process 1, :type :invoke, :f :read, :key :x, :value nil}
 {:process 1, :type :ok, :f :read, :key :x, :value 3}
 {:process 2, :type :invoke, :f :read, :value ["x" nil]}
 {:process 2, :type :ok, :f :read, :value ["x" 3]}]`
	h, err := ParseEDN(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Events) != 6 {
		t.Fatalf("got %d events, want 6: %v", len(h.Events), h.Events)
	}
	if h.Events[2].Key != "x" || h.Events[4].Key != "x" {
		t.Errorf("keyword/pair keys not canonicalized: %v", h.Events)
	}
	var buf bytes.Buffer
	if err := h.WriteEDN(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ParseEDN(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(h.Events, h2.Events) {
		t.Errorf("round trip changed events:\n%v\n%v", h.Events, h2.Events)
	}
	// The independent-register pair form parses identically to the flat form.
	if h.Events[3].Value != h.Events[5].Value {
		t.Errorf("pair-form value differs: %v vs %v", h.Events[3], h.Events[5])
	}
}

func TestEDNBareSequence(t *testing.T) {
	in := `{:process 0, :type :invoke, :f :write, :key "x", :value 1}
{:process 0, :type :ok, :f :write, :key "x", :value 1}`
	h, err := ParseEDN(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(h.Events))
	}
}

func TestEDNRejects(t *testing.T) {
	cases := []string{
		`[{:process 0, :type :invoke, :f :read, :key "x", :value 1.5}]`,
		`[{:process 0, :type :invoke, :f :read, :key "x"} 42]`,
		`[{:process 0}]`,
		`[{"str-key" 1}]`,
		`[#{1 2}]`,
		`[{:process 0, :type :invoke, :f :read, :key "x"`,
		`[{:process 0, :type :invoke, :f :read, :key "x"}] trailing`,
	}
	for _, in := range cases {
		if _, err := ParseEDN(strings.NewReader(in)); err == nil {
			t.Errorf("ParseEDN accepted %q", in)
		}
	}
}
