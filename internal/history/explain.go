package history

import (
	"scverify/internal/trace"
	"scverify/internal/witness"
)

// Explain builds a minimized, certified witness for the lowering's
// descriptor stream and annotates it with history vocabulary, or returns
// nil if the checker accepts the stream.
func (l *Lowering) Explain() *witness.Witness {
	w := witness.FromStream(l.Stream, l.K, witness.Options{Minimize: true, Params: l.Params})
	if w == nil {
		return nil
	}
	l.Annotate(w)
	return w
}

// ExplainTier builds the tier-adjudicated witness for the lowering: the
// canonical TierWitness core — identical, by construction, to the core a
// tiered scserve backend adjudicates for the same stream — run through the
// weaker-model ladder and annotated with history vocabulary. Returns nil
// when the checker accepts the stream.
func (l *Lowering) ExplainTier() *witness.Witness {
	w := witness.TierWitness(l.Stream, l.K, l.Params)
	if w == nil {
		return nil
	}
	w.Adjudicate(0)
	l.Annotate(w)
	return w
}

// Annotate installs a Labeler on the witness that renders each trace
// position as its source history operation. The witness trace may be a
// ddmin-minimized subsequence of the full lowered trace; minimization
// preserves order, so a greedy first-match alignment recovers each
// position's original operation. Positions that fail to align (they
// cannot, for streams produced by Lower) are left unlabeled.
func (l *Lowering) Annotate(w *witness.Witness) {
	align := make([]int, len(w.Trace))
	j := 0
	for i, op := range w.Trace {
		align[i] = -1
		for ; j < len(l.Trace); j++ {
			if l.Trace[j] == op {
				align[i] = j
				j++
				break
			}
		}
	}
	w.Labeler = func(i int, _ trace.Op) string {
		if i < 0 || i >= len(align) || align[i] < 0 {
			return ""
		}
		return l.Describe(align[i])
	}
}
