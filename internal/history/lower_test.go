package history

import (
	"errors"
	"testing"

	"scverify/internal/checker"
	"scverify/internal/trace"
)

// histOf builds a History from sequential (non-overlapping) ops described
// compactly: each entry emits its invoke and return back to back.
type seqOp struct {
	p       int
	f       Func
	key     string
	val     int64
	hasVal  bool
	outcome Kind
}

func histOf(ops ...seqOp) *History {
	h := &History{}
	for _, o := range ops {
		ie := Event{Process: o.p, Kind: Invoke, F: o.f, Key: o.key}
		if o.f == Write {
			ie.Value, ie.HasValue = o.val, true
		}
		re := Event{Process: o.p, Kind: o.outcome, F: o.f, Key: o.key}
		if o.f == Write || (o.outcome == OK && o.hasVal) {
			re.Value, re.HasValue = o.val, true
		}
		h.Events = append(h.Events, ie, re)
	}
	return h
}

func wOK(p int, key string, v int64) seqOp   { return seqOp{p, Write, key, v, true, OK} }
func wFail(p int, key string, v int64) seqOp { return seqOp{p, Write, key, v, true, Fail} }
func wInfo(p int, key string, v int64) seqOp { return seqOp{p, Write, key, v, true, Info} }
func rOK(p int, key string, v int64) seqOp   { return seqOp{p, Read, key, v, true, OK} }
func rBot(p int, key string) seqOp           { return seqOp{p, Read, key, 0, false, OK} }

func TestLowerRules(t *testing.T) {
	h := histOf(
		wOK(0, "x", 1),   // ST
		wFail(0, "x", 2), // dropped: definite no-op
		wInfo(1, "x", 3), // ST: observed by the read below
		wInfo(1, "y", 4), // dropped: unobserved indeterminate write
		rOK(2, "x", 3),   // LD, inherits from the info write
		rBot(2, "y"),     // LD ⊥ (y's only write was dropped as unobserved)
		seqOp{0, Read, "x", 0, false, Fail}, // dropped
		seqOp{0, Read, "x", 0, false, Info}, // dropped
	)
	l, err := Lower(h)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(l.Trace), 4; got != want {
		t.Fatalf("lowered %d ops, want %d: %v", got, want, l.Trace)
	}
	wantKinds := []trace.OpKind{trace.Store, trace.Store, trace.Load, trace.Load}
	for i, k := range wantKinds {
		if l.Trace[i].Kind != k {
			t.Errorf("trace[%d] = %v, want kind %v", i, l.Trace[i], k)
		}
	}
	if l.Trace[3].Value != trace.Bottom {
		t.Errorf("dropped-write read should lower to a ⊥ load, got %v", l.Trace[3])
	}
	d := l.Dropped
	if d.FailedWrites != 1 || d.UnobservedWrites != 1 || d.FailedReads != 1 || d.InfoReads != 1 {
		t.Errorf("drops = %+v", d)
	}
	if err := l.Check(); err != nil {
		t.Errorf("well-behaved history rejected: %v", err)
	}
}

func TestLowerRejectsDuplicateWriteValues(t *testing.T) {
	h := histOf(wOK(0, "x", 1), wOK(1, "x", 1))
	_, err := Lower(h)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FormatError about duplicate write values", err)
	}
	// Same value on different keys is fine.
	h = histOf(wOK(0, "x", 1), wOK(1, "y", 1))
	if _, err := Lower(h); err != nil {
		t.Errorf("distinct keys with equal values rejected: %v", err)
	}
}

func TestLowerAnomalies(t *testing.T) {
	cases := []struct {
		name string
		h    *History
		want checker.Constraint
	}{
		{"stale read (monotonic-reads violation)",
			histOf(wOK(0, "x", 1), wOK(0, "x", 2), rOK(1, "x", 2), rOK(1, "x", 1)),
			checker.ConstraintCycle},
		{"read-your-writes violation",
			histOf(wOK(0, "x", 1), wOK(1, "x", 2), rOK(1, "x", 1)),
			checker.ConstraintCycle},
		{"partition bottom read",
			histOf(wOK(0, "x", 1), rOK(1, "x", 1), rBot(1, "x")),
			checker.ConstraintCycle},
		{"phantom read",
			histOf(wOK(0, "x", 1), rOK(1, "x", 99)),
			checker.Constraint4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Check(tc.h)
			var re *checker.RejectError
			if !errors.As(err, &re) {
				t.Fatalf("got %v, want a rejection", err)
			}
			if re.Constraint != tc.want {
				t.Errorf("constraint = %v, want %v", re.Constraint, tc.want)
			}
		})
	}
}

func TestLowerAcceptsConcurrentOverlap(t *testing.T) {
	// Two processes with overlapping invocations; SC (reads see the final
	// write once it lands).
	h := &History{Events: []Event{
		inv(0, Write, "x", 1),
		inv(1, Read, "x"),
		ret(0, OK, Write, "x", 1),
		ret(1, OK, Read, "x", 1),
		inv(1, Read, "x"),
		inv(0, Read, "x"),
		ret(1, OK, Read, "x", 1),
		ret(0, OK, Read, "x", 1),
	}}
	if err := Check(h); err != nil {
		t.Errorf("overlapping SC history rejected: %v", err)
	}
}

func TestLowerEmptyHistory(t *testing.T) {
	l, err := Lower(&History{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Errorf("empty history rejected: %v", err)
	}
}

func TestDescribeAndSummary(t *testing.T) {
	h := histOf(wOK(0, "x", 1), rOK(1, "x", 1))
	l, err := Lower(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Describe(0); !contains(got, "write x := 1") {
		t.Errorf("Describe(0) = %q", got)
	}
	if got := l.Describe(1); !contains(got, "read x = 1") {
		t.Errorf("Describe(1) = %q", got)
	}
	if l.Describe(-1) != "" || l.Describe(99) != "" {
		t.Error("out-of-range Describe should return empty")
	}
	if s := l.Summary(); !contains(s, "4 events") {
		t.Errorf("Summary = %q", s)
	}
}
