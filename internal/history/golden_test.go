package history

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scverify/internal/spectrum"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture loads an example history by extension-dispatched format.
func fixture(t *testing.T, name string) *History {
	t.Helper()
	path := filepath.Join("..", "..", "examples", "histories", name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var h *History
	if strings.HasSuffix(name, ".edn") {
		h, err = ParseEDN(bytes.NewReader(data))
	} else {
		h, err = ParseJSONL(bytes.NewReader(data))
	}
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return h
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (re-run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("golden %s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestGoldenWitnessNarratives pins the history-vocabulary witness
// renderings for the two anomalous example fixtures: every line of the
// happens-before loop must name the concrete history operations, and both
// witnesses must be certified non-SC by the exact search.
func TestGoldenWitnessNarratives(t *testing.T) {
	for _, name := range []string{"stale-read.jsonl", "partition.edn"} {
		t.Run(name, func(t *testing.T) {
			l, err := Lower(fixture(t, name))
			if err != nil {
				t.Fatal(err)
			}
			w := l.Explain()
			if w == nil {
				t.Fatal("anomalous fixture accepted")
			}
			if !w.Certified {
				t.Errorf("fixture witness not certified non-SC: %s", w.Summary())
			}
			got := w.Render()
			if !strings.Contains(got, "process") {
				t.Errorf("witness narrative lacks history vocabulary:\n%s", got)
			}
			base := strings.TrimSuffix(name, filepath.Ext(name))
			checkGolden(t, base+".witness.golden", got)
		})
	}
}

// TestGoldenTierNarratives pins the tier-adjudicated witness renderings of
// the anomalous fixtures: the ladder verdict, its narrative, and the
// history-vocabulary labels must all stay stable, and both fixtures must
// land below every rung (their single-process misreads defeat even PRAM).
func TestGoldenTierNarratives(t *testing.T) {
	for _, name := range []string{"stale-read.jsonl", "partition.edn"} {
		t.Run(name, func(t *testing.T) {
			l, err := Lower(fixture(t, name))
			if err != nil {
				t.Fatal(err)
			}
			w := l.ExplainTier()
			if w == nil {
				t.Fatal("anomalous fixture accepted")
			}
			if w.Spectrum == nil || !w.Spectrum.Checked {
				t.Fatalf("fixture core not adjudicated: %+v", w.Spectrum)
			}
			if w.Spectrum.Tier != spectrum.TierNone {
				t.Errorf("fixture adjudicated to tier %s, want none", w.Spectrum.Tier)
			}
			base := strings.TrimSuffix(name, filepath.Ext(name))
			checkGolden(t, base+".tier.golden", w.Render())
		})
	}
}

// TestGoldenLowering pins the full lowering of each example fixture — the
// op pairing, the lowered trace with per-position history descriptions,
// the drop accounting, and the canonical re-rendering — so any change to
// the lowering rules or the serializations shows up as a diff.
func TestGoldenLowering(t *testing.T) {
	for _, name := range []string{"clean.jsonl", "stale-read.jsonl", "partition.edn"} {
		t.Run(name, func(t *testing.T) {
			h := fixture(t, name)
			l, err := Lower(h)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "fixture: %s\n", name)
			fmt.Fprintf(&sb, "summary: %s\n", l.Summary())
			fmt.Fprintf(&sb, "dropped: %+v\n", l.Dropped)
			verdict := "accept"
			if err := l.Check(); err != nil {
				verdict = "reject: " + err.Error()
			}
			fmt.Fprintf(&sb, "verdict: %s\n", verdict)
			sb.WriteString("trace:\n")
			for i, op := range l.Trace {
				fmt.Fprintf(&sb, "  %-16s %s\n", op.String(), l.Describe(i))
			}
			sb.WriteString("canonical jsonl:\n")
			var buf bytes.Buffer
			if err := h.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
				sb.WriteString("  " + line + "\n")
			}
			base := strings.TrimSuffix(name, filepath.Ext(name))
			checkGolden(t, base+".lower.golden", sb.String())

			// Round trip: the canonical JSONL reparses to the same lowering.
			h2, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			l2, err := Lower(h2)
			if err != nil {
				t.Fatal(err)
			}
			if l2.Trace.String() != l.Trace.String() || l2.K != l.K {
				t.Errorf("round-tripped lowering differs: %s (k=%d) vs %s (k=%d)",
					l2.Trace, l2.K, l.Trace, l.K)
			}
		})
	}
}

// TestGoldenCleanAccepts pins the clean fixture to acceptance.
func TestGoldenCleanAccepts(t *testing.T) {
	if err := Check(fixture(t, "clean.jsonl")); err != nil {
		t.Errorf("clean fixture rejected: %v", err)
	}
}
