package history

import (
	"errors"
	"testing"

	"scverify/internal/checker"
)

// TestGenerateCleanAccepts is the generator's soundness contract: a
// history with no injected anomalies is sequentially consistent by
// construction and the lowering pipeline accepts it, across seeds and
// shapes (including failed and indeterminate operations).
func TestGenerateCleanAccepts(t *testing.T) {
	cfgs := []GenConfig{
		{},
		{Processes: 1, Keys: 1, Ops: 20},
		{Processes: 5, Keys: 4, Ops: 120, WriteRate: 0.6, MaxLag: 6},
		{Processes: 4, Keys: 2, Ops: 80, FailEvery: 5, InfoEvery: 7},
		{Processes: 2, Keys: 3, Ops: 60, OverlapRate: 0.9},
	}
	for _, base := range cfgs {
		for seed := int64(0); seed < 20; seed++ {
			cfg := base
			cfg.Seed = seed
			g, err := Generate(cfg)
			if err != nil {
				t.Fatalf("Generate(%+v): %v", cfg, err)
			}
			if len(g.Anomalies) != 0 {
				t.Fatalf("clean config produced anomaly records: %v", g.Anomalies)
			}
			l, err := Lower(g.History)
			if err != nil {
				t.Fatalf("seed %d: Lower: %v", seed, err)
			}
			if err := l.Check(); err != nil {
				t.Errorf("seed %d cfg %+v: clean history rejected: %v\n%s",
					seed, cfg, err, l.Summary())
			}
		}
	}
}

// TestGenerateAnomaliesReject checks every anomaly kind injects a
// violation the checker rejects with the kind's expected constraint code.
func TestGenerateAnomaliesReject(t *testing.T) {
	for _, kind := range AllAnomalies() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				g, err := Generate(GenConfig{Seed: seed, Anomalies: []AnomalyKind{kind}})
				if err != nil {
					t.Fatalf("Generate: %v", err)
				}
				if len(g.Anomalies) != 1 {
					t.Fatalf("want 1 anomaly record, got %d", len(g.Anomalies))
				}
				a := g.Anomalies[0]
				if a.Kind != kind || a.Expect != kind.Constraint() {
					t.Fatalf("anomaly record mismatch: %v", a)
				}
				err = Check(g.History)
				if err == nil {
					t.Fatalf("seed %d: %s history accepted", seed, kind)
				}
				var re *checker.RejectError
				if !errors.As(err, &re) {
					t.Fatalf("seed %d: rejection is %T, want *checker.RejectError: %v", seed, err, err)
				}
				if re.Constraint != a.Expect {
					t.Errorf("seed %d: %s rejected with %v, want %v", seed, kind, re.Constraint, a.Expect)
				}
			}
		})
	}
}

// TestGenerateDeterministic pins the generator to its seed: same config,
// same history.
func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, Ops: 50, FailEvery: 6, InfoEvery: 9,
		Anomalies: AllAnomalies()}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.History.Events) != len(b.History.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.History.Events), len(b.History.Events))
	}
	for i := range a.History.Events {
		if a.History.Events[i] != b.History.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.History.Events[i], b.History.Events[i])
		}
	}
}

// TestAnomalyKindStrings round-trips kind names through ParseAnomaly.
func TestAnomalyKindStrings(t *testing.T) {
	for _, k := range AllAnomalies() {
		got, err := ParseAnomaly(k.String())
		if err != nil || got != k {
			t.Errorf("ParseAnomaly(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseAnomaly("nope"); err == nil {
		t.Error("ParseAnomaly accepted an unknown name")
	}
}

// TestGenerateExplain checks an anomalous generated history yields an
// annotated witness whose rendering speaks history vocabulary.
func TestGenerateExplain(t *testing.T) {
	g, err := Generate(GenConfig{Seed: 7, Ops: 0, Anomalies: []AnomalyKind{AnomalyStaleRead}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Lower(g.History)
	if err != nil {
		t.Fatal(err)
	}
	w := l.Explain()
	if w == nil {
		t.Fatal("Explain returned nil for an anomalous history")
	}
	out := w.Render()
	if !containsAll(out, "process", "read", "write") {
		t.Errorf("witness render lacks history vocabulary:\n%s", out)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
