package history

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The JSONL format: one JSON object per line, e.g.
//
//	{"process":0,"type":"invoke","f":"write","key":"x","value":3}
//	{"process":0,"type":"ok","f":"write","key":"x","value":3}
//	{"process":1,"type":"invoke","f":"read","key":"x"}
//	{"process":1,"type":"ok","f":"read","key":"x","value":3}
//
// Fields: "process" (non-negative integer), "type" (invoke|ok|fail|info),
// "f" (read|write, or the aliases r|w), "key" (string or integer), and
// "value" (integer; null or absent for a read of the initial state ⊥).
// Unknown fields ("index", "time", ...) are ignored. Lines whose process
// is not an integer (Jepsen's nemesis events carry ":nemesis") are
// skipped entirely. Blank lines are skipped.

type jsonlEvent struct {
	Process json.RawMessage `json:"process"`
	Type    string          `json:"type"`
	F       string          `json:"f"`
	Key     json.RawMessage `json:"key"`
	Value   json.RawMessage `json:"value"`
}

// ParseJSONL reads a JSONL history.
func ParseJSONL(r io.Reader) (*History, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	h := &History{}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&je); err != nil {
			return nil, errLine(line, "invalid JSON: %v", err)
		}
		if dec.More() {
			return nil, errLine(line, "trailing data after event object")
		}
		proc, ok, err := parseJSONInt(je.Process)
		if err != nil || !ok {
			continue // non-integer/absent process: nemesis/system event, skipped
		}
		e := Event{Process: int(proc)}
		if e.Kind, err = parseKind(je.Type); err != nil {
			return nil, errLine(line, "%v", err)
		}
		if e.F, err = parseFunc(je.F); err != nil {
			return nil, errLine(line, "%v", err)
		}
		if e.Key, err = parseJSONKey(je.Key); err != nil {
			return nil, errLine(line, "key: %v", err)
		}
		v, has, err := parseJSONInt(je.Value)
		if err != nil {
			return nil, errLine(line, "value: %v", err)
		}
		if has {
			e.Value, e.HasValue = v, true
		}
		h.Events = append(h.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, errLine(line+1, "read: %v", err)
	}
	return h, nil
}

// parseJSONInt decodes an integer field; (0,false,nil) for absent/null.
func parseJSONInt(raw json.RawMessage) (int64, bool, error) {
	raw = bytes.TrimSpace(raw)
	if len(raw) == 0 || string(raw) == "null" {
		return 0, false, nil
	}
	var num json.Number
	if err := json.Unmarshal(raw, &num); err != nil {
		return 0, false, fmt.Errorf("want an integer, got %s", raw)
	}
	n, err := num.Int64()
	if err != nil {
		return 0, false, fmt.Errorf("want an integer, got %s", num)
	}
	return n, true, nil
}

// parseJSONKey decodes a key: a string, or an integer rendered decimally.
func parseJSONKey(raw json.RawMessage) (string, error) {
	raw = bytes.TrimSpace(raw)
	if len(raw) == 0 || string(raw) == "null" {
		return "", fmt.Errorf("missing")
	}
	if raw[0] == '"' {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return "", fmt.Errorf("bad string %s", raw)
		}
		return s, nil
	}
	var num json.Number
	if err := json.Unmarshal(raw, &num); err != nil {
		return "", fmt.Errorf("want a string or integer, got %s", raw)
	}
	if _, err := num.Int64(); err != nil {
		return "", fmt.Errorf("want a string or integer, got %s", num)
	}
	return num.String(), nil
}

func parseKind(s string) (Kind, error) {
	switch strings.TrimPrefix(s, ":") {
	case "invoke":
		return Invoke, nil
	case "ok":
		return OK, nil
	case "fail":
		return Fail, nil
	case "info":
		return Info, nil
	case "":
		return 0, fmt.Errorf("missing event type")
	default:
		return 0, fmt.Errorf("unknown event type %q (want invoke|ok|fail|info)", s)
	}
}

func parseFunc(s string) (Func, error) {
	switch strings.TrimPrefix(s, ":") {
	case "read", "r":
		return Read, nil
	case "write", "w":
		return Write, nil
	case "":
		return 0, fmt.Errorf("missing operation function")
	default:
		return 0, fmt.Errorf("unknown operation function %q (want read|write)", s)
	}
}

// WriteJSONL renders the history in canonical JSONL: one event per line,
// fixed field order, "value":null spelled out for ⊥ reads on ok returns
// and omitted elsewhere when absent. ParseJSONL of the output reproduces
// the exact event sequence.
func (h *History) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range h.Events {
		key, err := json.Marshal(e.Key)
		if err != nil {
			return fmt.Errorf("history: key %q: %w", e.Key, err)
		}
		fmt.Fprintf(bw, `{"process":%d,"type":%q,"f":%q,"key":%s`, e.Process, e.Kind, e.F, key)
		switch {
		case e.HasValue:
			fmt.Fprintf(bw, `,"value":%d`, e.Value)
		case e.Kind == OK && e.F == Read:
			bw.WriteString(`,"value":null`)
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}
