package protocol

import (
	"fmt"

	"scverify/internal/trace"
)

// ScriptStep is one step of a scripted protocol: the action plus its
// tracking labels.
type ScriptStep struct {
	Action Action
	Loc    int
	Copies []Copy
}

// Scripted is a deterministic protocol that executes a fixed sequence of
// steps — a single run. It exists to express worked examples from the
// paper (such as the Figure 4 run) and hand-written regression cases as
// first-class protocols that the observer and checkers can consume.
type Scripted struct {
	ProtoName string
	P         int // processors
	B         int // blocks
	V         int // values
	L         int // locations
	Steps     []ScriptStep
}

type scriptedState int

// Key encodes the script position.
func (s scriptedState) Key() string { return fmt.Sprintf("@%d", int(s)) }

// Name implements Protocol.
func (s *Scripted) Name() string { return s.ProtoName }

// Params implements Protocol.
func (s *Scripted) Params() trace.Params {
	return trace.Params{Procs: s.P, Blocks: s.B, Values: s.V}
}

// Locations implements Protocol.
func (s *Scripted) Locations() int { return s.L }

// Initial implements Protocol.
func (s *Scripted) Initial() State { return scriptedState(0) }

// Transitions implements Protocol: exactly one transition per position
// until the script is exhausted.
func (s *Scripted) Transitions(st State) []Transition {
	pos := int(st.(scriptedState))
	if pos >= len(s.Steps) {
		return nil
	}
	step := s.Steps[pos]
	return []Transition{{
		Action: step.Action,
		Next:   scriptedState(pos + 1),
		Loc:    step.Loc,
		Copies: step.Copies,
	}}
}
