package protocol

import (
	"fmt"
	"math/rand"

	"scverify/internal/trace"
)

// Step is one executed transition of a run, together with the state it led
// to and, for memory operations, the operation's 1-based trace index.
type Step struct {
	Transition
	TraceIndex int // 1-based index among memory operations; 0 for internal
}

// Run is a finite execution of a protocol: the executed steps plus the
// resulting trace (the LD/ST subsequence).
type Run struct {
	Protocol Protocol
	Steps    []Step
	Trace    trace.Trace
}

// String renders the run's action sequence.
func (r *Run) String() string {
	out := ""
	for i, s := range r.Steps {
		if i > 0 {
			out += ", "
		}
		out += s.Action.String()
	}
	return out
}

// Runner executes a protocol step by step, tracking the current state and
// trace. It is the execution substrate shared by the random tester, the
// observer, and the examples.
type Runner struct {
	p     Protocol
	state State
	run   Run
}

// NewRunner returns a runner positioned at the protocol's initial state.
func NewRunner(p Protocol) *Runner {
	return &Runner{p: p, state: p.Initial(), run: Run{Protocol: p}}
}

// State returns the current protocol state.
func (r *Runner) State() State { return r.state }

// Run returns the run so far. The returned value shares underlying slices
// with the runner; callers must not mutate it while stepping continues.
func (r *Runner) Run() *Run { return &r.run }

// Enabled lists the transitions enabled in the current state.
func (r *Runner) Enabled() []Transition { return r.p.Transitions(r.state) }

// Take executes the given transition (which must come from Enabled).
func (r *Runner) Take(t Transition) {
	step := Step{Transition: t}
	if t.Action.IsMem() {
		r.run.Trace = append(r.run.Trace, *t.Action.Op)
		step.TraceIndex = len(r.run.Trace)
	}
	r.run.Steps = append(r.run.Steps, step)
	r.state = t.Next
}

// TakeIndex executes the i-th enabled transition.
func (r *Runner) TakeIndex(i int) error {
	en := r.Enabled()
	if i < 0 || i >= len(en) {
		return fmt.Errorf("protocol: transition index %d out of %d enabled", i, len(en))
	}
	r.Take(en[i])
	return nil
}

// RandomRun executes up to maxSteps uniformly random enabled transitions,
// stopping early if the protocol deadlocks. Deterministic given the seed.
func RandomRun(p Protocol, maxSteps int, seed int64) *Run {
	rng := rand.New(rand.NewSource(seed))
	r := NewRunner(p)
	for i := 0; i < maxSteps; i++ {
		en := r.Enabled()
		if len(en) == 0 {
			break
		}
		r.Take(en[rng.Intn(len(en))])
	}
	return r.Run()
}

// ReplayIndices executes the transitions selected by the given indices
// into each state's enabled list; it is how counterexample runs found by
// the model checker are re-executed.
func ReplayIndices(p Protocol, indices []int) (*Run, error) {
	r := NewRunner(p)
	for step, i := range indices {
		if err := r.TakeIndex(i); err != nil {
			return nil, fmt.Errorf("protocol: replay step %d: %w", step, err)
		}
	}
	return r.Run(), nil
}
