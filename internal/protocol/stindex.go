package protocol

// STIndexTracker maintains ST-index(R, l) for every location l while a run
// R unfolds, exactly as defined inductively in Section 4.1: a location's
// ST-index is 0 initially; a ST transition with tracking label l stamps l
// with the store's trace index; an internal transition updates every
// location according to its copy labels (reading pre-transition values);
// and LD transitions change nothing.
type STIndexTracker struct {
	idx []int // 1-based by location; idx[0] unused
}

// NewSTIndexTracker returns a tracker for L locations, all with ST-index 0.
func NewSTIndexTracker(locations int) *STIndexTracker {
	return &STIndexTracker{idx: make([]int, locations+1)}
}

// Index returns ST-index of the location (0 if it holds no store's value).
func (t *STIndexTracker) Index(loc int) int { return t.idx[loc] }

// Snapshot returns a copy of all ST-indexes, 1-based; index 0 is unused.
func (t *STIndexTracker) Snapshot() []int {
	out := make([]int, len(t.idx))
	copy(out, t.idx)
	return out
}

// OnStore records that the store with the given trace index (1-based, per
// the paper) wrote its value to location loc.
func (t *STIndexTracker) OnStore(loc, traceIndex int) {
	t.idx[loc] = traceIndex
}

// OnInternal applies an internal transition's copy labels. All copies read
// the pre-transition state, so a chain of copies within one transition
// does not cascade.
func (t *STIndexTracker) OnInternal(copies []Copy) {
	if len(copies) == 0 {
		return
	}
	old := make([]int, len(t.idx))
	copy(old, t.idx)
	for _, cp := range copies {
		if cp.Src == 0 {
			t.idx[cp.Dst] = 0
		} else {
			t.idx[cp.Dst] = old[cp.Src]
		}
	}
}

// Apply advances the tracker by one executed transition, where traceIndex
// is the 1-based index the operation would have in the trace (ignored for
// internal actions and loads). Copies attached to a store are applied
// after the store itself, so a write-through store's copy from its own
// freshly written location propagates the new index.
func (t *STIndexTracker) Apply(tr Transition, traceIndex int) {
	switch {
	case tr.Action.IsMem() && tr.Action.Op.IsStore():
		t.OnStore(tr.Loc, traceIndex)
		t.OnInternal(tr.Copies)
	case !tr.Action.IsMem():
		t.OnInternal(tr.Copies)
	}
}
