package protocol

import (
	"strings"
	"testing"

	"scverify/internal/trace"
)

// Figure4Script reproduces the run of the paper's Figure 4: a 2-processor,
// 3-block protocol with 4 storage locations (P1 owns 1 and 2, P2 owns 3
// and 4). The run is
//
//	ST(P1,B1,1)  [label 1], ST(P2,B2,2) [label 4],
//	Get-Shared(P2,B1) [c3=1], ST(P1,B3,3) [label 1]
func Figure4Script() *Scripted {
	return &Scripted{
		ProtoName: "figure4",
		P:         2, B: 3, V: 3, L: 4,
		Steps: []ScriptStep{
			{Action: MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: MemOp(trace.ST(2, 2, 2)), Loc: 4},
			{Action: Internal("Get-Shared", 2, 1), Copies: []Copy{{Dst: 3, Src: 1}}},
			{Action: MemOp(trace.ST(1, 3, 3)), Loc: 1},
		},
	}
}

func TestFigure4STIndexes(t *testing.T) {
	p := Figure4Script()
	r := NewRunner(p)
	st := NewSTIndexTracker(p.Locations())
	for {
		en := r.Enabled()
		if len(en) == 0 {
			break
		}
		r.Take(en[0])
		last := r.Run().Steps[len(r.Run().Steps)-1]
		st.Apply(last.Transition, last.TraceIndex)
	}
	// Figure 4(c): ST-index(R,1)=3, (R,2)=0, (R,3)=1, (R,4)=2.
	want := []int{0, 3, 0, 1, 2}
	got := st.Snapshot()
	for l := 1; l <= 4; l++ {
		if got[l] != want[l] {
			t.Errorf("ST-index(R,%d) = %d, want %d", l, got[l], want[l])
		}
	}
}

func TestFigure4Trace(t *testing.T) {
	run := RandomRun(Figure4Script(), 10, 1)
	want := trace.Trace{trace.ST(1, 1, 1), trace.ST(2, 2, 2), trace.ST(1, 3, 3)}
	if len(run.Trace) != len(want) {
		t.Fatalf("trace = %s", run.Trace)
	}
	for i := range want {
		if run.Trace[i] != want[i] {
			t.Errorf("trace[%d] = %s, want %s", i, run.Trace[i], want[i])
		}
	}
	if len(run.Steps) != 4 {
		t.Errorf("steps = %d, want 4", len(run.Steps))
	}
}

func TestActionString(t *testing.T) {
	if got := MemOp(trace.ST(1, 2, 3)).String(); got != "ST(P1,B2,3)" {
		t.Errorf("mem action = %q", got)
	}
	if got := Internal("memory-write", 2, 1).String(); got != "memory-write(2,1)" {
		t.Errorf("internal action = %q", got)
	}
	if got := Internal("tick").String(); got != "tick" {
		t.Errorf("argless internal action = %q", got)
	}
	if !MemOp(trace.LD(1, 1, 1)).IsMem() || Internal("x").IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestSTIndexInvalidation(t *testing.T) {
	st := NewSTIndexTracker(2)
	st.OnStore(1, 5)
	st.OnInternal([]Copy{{Dst: 2, Src: 1}})
	if st.Index(2) != 5 {
		t.Errorf("copied index = %d", st.Index(2))
	}
	st.OnInternal([]Copy{{Dst: 1, Src: 0}}) // invalidate
	if st.Index(1) != 0 {
		t.Errorf("invalidated index = %d", st.Index(1))
	}
	if st.Index(2) != 5 {
		t.Errorf("untouched index = %d", st.Index(2))
	}
}

func TestSTIndexSimultaneousCopies(t *testing.T) {
	// A swap: both copies must read pre-transition values.
	st := NewSTIndexTracker(2)
	st.OnStore(1, 1)
	st.OnStore(2, 2)
	st.OnInternal([]Copy{{Dst: 1, Src: 2}, {Dst: 2, Src: 1}})
	if st.Index(1) != 2 || st.Index(2) != 1 {
		t.Errorf("swap gave (%d,%d), want (2,1)", st.Index(1), st.Index(2))
	}
}

func TestSTIndexLoadChangesNothing(t *testing.T) {
	st := NewSTIndexTracker(1)
	st.OnStore(1, 7)
	ld := Transition{Action: MemOp(trace.LD(1, 1, 1)), Loc: 1}
	st.Apply(ld, 9)
	if st.Index(1) != 7 {
		t.Errorf("load changed ST-index to %d", st.Index(1))
	}
}

func TestRunnerTakeIndexErrors(t *testing.T) {
	r := NewRunner(Figure4Script())
	if err := r.TakeIndex(5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := r.TakeIndex(0); err != nil {
		t.Errorf("valid index rejected: %v", err)
	}
}

func TestReplayIndices(t *testing.T) {
	run, err := ReplayIndices(Figure4Script(), []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Steps) != 4 {
		t.Errorf("replayed %d steps", len(run.Steps))
	}
	if _, err := ReplayIndices(Figure4Script(), []int{0, 0, 0, 0, 0}); err == nil {
		t.Error("replay past deadlock accepted")
	}
}

func TestRunString(t *testing.T) {
	run := RandomRun(Figure4Script(), 10, 1)
	s := run.String()
	for _, frag := range []string{"ST(P1,B1,1)", "Get-Shared(2,1)", "ST(P1,B3,3)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("run string missing %q: %s", frag, s)
		}
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	bad := &Scripted{
		ProtoName: "bad", P: 1, B: 1, V: 1, L: 1,
		Steps: []ScriptStep{{Action: MemOp(trace.ST(1, 1, 1)), Loc: 9}},
	}
	if err := Validate(bad, bad.Initial()); err == nil {
		t.Error("bad tracking label accepted")
	}
	bad2 := &Scripted{
		ProtoName: "bad2", P: 1, B: 1, V: 1, L: 1,
		Steps: []ScriptStep{{Action: MemOp(trace.ST(2, 1, 1)), Loc: 1}},
	}
	if err := Validate(bad2, bad2.Initial()); err == nil {
		t.Error("out-of-params op accepted")
	}
	bad3 := &Scripted{
		ProtoName: "bad3", P: 1, B: 1, V: 1, L: 1,
		Steps: []ScriptStep{{Action: Internal("x"), Copies: []Copy{{Dst: 2, Src: 1}}}},
	}
	if err := Validate(bad3, bad3.Initial()); err == nil {
		t.Error("bad copy destination accepted")
	}
	good := Figure4Script()
	if err := Validate(good, good.Initial()); err != nil {
		t.Errorf("good protocol rejected: %v", err)
	}
}

func TestScriptedStateKey(t *testing.T) {
	p := Figure4Script()
	s0 := p.Initial()
	s1 := p.Transitions(s0)[0].Next
	if s0.Key() == s1.Key() {
		t.Error("distinct positions share a key")
	}
}

func TestRandomRunDeterministic(t *testing.T) {
	a := RandomRun(Figure4Script(), 10, 42)
	b := RandomRun(Figure4Script(), 10, 42)
	if a.String() != b.String() {
		t.Error("RandomRun not deterministic for equal seeds")
	}
}
