// Package protocol defines the protocol model of Sections 2.1 and 4.1 of
// Condon & Hu: a finite-state machine augmented with a finite number of
// storage locations and tracking labels. LD/ST transitions carry a
// location identifier l ∈ [1,L] (the tracking function f); internal
// transitions carry copy tracking labels c_l describing how values move
// between locations. From these labels alone, the ST-index of every
// location — which store operation conferred its current value — can be
// maintained in finite state (Figure 4), which is what makes automatic
// observer generation possible.
package protocol

import (
	"fmt"
	"strings"

	"scverify/internal/trace"
)

// Action is one protocol action: either a memory operation (Op non-nil) or
// an internal action identified by Name and protocol-specific integer
// arguments (for example, lazy caching's memory-write carries the writing
// processor and block).
type Action struct {
	Op   *trace.Op
	Name string
	Args []int
}

// MemOp constructs a memory-operation action.
func MemOp(op trace.Op) Action { return Action{Op: &op} }

// Internal constructs an internal action.
func Internal(name string, args ...int) Action { return Action{Name: name, Args: args} }

// IsMem reports whether the action is a LD or ST operation.
func (a Action) IsMem() bool { return a.Op != nil }

// String renders the action; internal actions show their arguments.
func (a Action) String() string {
	if a.Op != nil {
		return a.Op.String()
	}
	if len(a.Args) == 0 {
		return a.Name
	}
	parts := make([]string, len(a.Args))
	for i, v := range a.Args {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("%s(%s)", a.Name, strings.Join(parts, ","))
}

// Copy is a copy tracking label for an internal transition: the value in
// location Src is copied to location Dst. A Src of 0 means Dst is
// invalidated (assigned the predefined invalid value), resetting its
// ST-index. Locations not mentioned keep their values (c_l = l).
type Copy struct {
	Dst, Src int
}

// State is an immutable protocol state. Key must be a canonical encoding:
// two states with equal keys are the same state.
type State interface {
	Key() string
}

// Transition is one enabled step from a state: the action taken, the
// successor state, and the transition's tracking labels. For memory
// operations, Loc is the location the value is read from or written to;
// for internal actions, Copies lists the location copies.
type Transition struct {
	Action Action
	Next   State
	Loc    int
	Copies []Copy
}

// Protocol is a finite-state protocol with storage locations and tracking
// labels. Implementations must return transitions in a deterministic order
// so runs are reproducible and model checking is stable.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Params returns the protocol constants (p, b, v).
	Params() trace.Params
	// Locations returns L, the number of storage locations.
	Locations() int
	// Initial returns the initial state.
	Initial() State
	// Transitions enumerates the transitions enabled in the state.
	Transitions(s State) []Transition
}

// Validate performs structural sanity checks on a protocol's transitions
// from the given state: location labels in range, memory operations within
// parameters. It is a development aid used by tests and the model checker.
func Validate(p Protocol, s State) error {
	params := p.Params()
	for _, t := range p.Transitions(s) {
		if t.Action.IsMem() {
			if !params.Contains(*t.Action.Op) {
				return fmt.Errorf("protocol %s: operation %s outside %s", p.Name(), t.Action.Op, params)
			}
			if t.Loc < 1 || t.Loc > p.Locations() {
				return fmt.Errorf("protocol %s: %s has tracking label %d outside 1..%d", p.Name(), t.Action.Op, t.Loc, p.Locations())
			}
		} else {
			for _, cp := range t.Copies {
				if cp.Dst < 1 || cp.Dst > p.Locations() {
					return fmt.Errorf("protocol %s: copy destination %d outside 1..%d", p.Name(), cp.Dst, p.Locations())
				}
				if cp.Src < 0 || cp.Src > p.Locations() {
					return fmt.Errorf("protocol %s: copy source %d outside 0..%d", p.Name(), cp.Src, p.Locations())
				}
			}
		}
	}
	return nil
}
