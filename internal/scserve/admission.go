package scserve

import (
	"sync"
	"sync/atomic"
	"time"
)

// admitResult classifies an admission decision.
type admitResult int

const (
	// admitOK: the hello owns a session slot; release it with release().
	admitOK admitResult = iota
	// admitBusy: global capacity (or the admission wait expired) — the
	// client gets the retryable busy verdict.
	admitBusy
	// admitQuota: the tenant is at its own concurrent-session cap — the
	// client gets the typed quota verdict. Unlike busy, the condition is
	// the tenant's own and redirecting elsewhere would not help.
	admitQuota
)

// admitWaiter is one hello parked in the admission queue. granted is
// closed (under admission.mu) when the waiter receives a slot.
type admitWaiter struct {
	tenant  string
	granted chan struct{}
}

// admission is the weighted fair-share session gate that replaces the
// single global CAS cap: it still enforces MaxSessions as a hard
// watermark, but it accounts every active session to a tenant, caps each
// tenant's concurrency, and — when a wait budget is configured — parks
// over-capacity hellos in a bounded queue and hands freed slots to the
// waiting tenant with the lowest active/weight deficit, so one flooding
// tenant queues behind everyone else instead of starving them.
type admission struct {
	max       int
	perTenant int            // per-tenant concurrent cap; 0 = uncapped
	weights   map[string]int // fair-share weights; missing/<=0 = 1
	wait      time.Duration  // max time a hello may wait; <=0 = immediate busy
	depth     int            // max parked waiters

	mirror *atomic.Int64 // sessionsActive stats mirror, updated under mu
	parked *atomic.Int64 // current queue depth, for stats

	mu     sync.Mutex
	active map[string]int // active sessions per tenant
	total  int
	queue  []*admitWaiter
}

func newAdmission(cfg Config, mirror, parked *atomic.Int64) *admission {
	depth := cfg.AdmitQueue
	if depth <= 0 {
		depth = cfg.MaxSessions
	}
	return &admission{
		max:       cfg.MaxSessions,
		perTenant: cfg.TenantSessions,
		weights:   cfg.TenantWeights,
		wait:      cfg.AdmitWait,
		depth:     depth,
		mirror:    mirror,
		parked:    parked,
		active:    make(map[string]int),
	}
}

func (a *admission) weight(tenant string) int {
	if w, ok := a.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// atTenantCap reports whether tenant is at its concurrent-session cap.
// The anonymous tenant "" is exempt: identification is opt-in, and one
// shared cap over all unidentified clients would conflate them.
func (a *admission) atTenantCap(tenant string) bool {
	return tenant != "" && a.perTenant > 0 && a.active[tenant] >= a.perTenant
}

// grant claims a slot for tenant. Caller holds mu.
func (a *admission) grant(tenant string) {
	a.active[tenant]++
	a.total++
	a.mirror.Add(1)
}

// dispatch hands free slots to parked waiters, lowest active/weight
// deficit first (FIFO within a tie, so equal-deficit tenants round-robin
// by arrival). Caller holds mu.
func (a *admission) dispatch() {
	for a.total < a.max && len(a.queue) > 0 {
		best := -1
		for i, w := range a.queue {
			if a.atTenantCap(w.tenant) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := a.queue[best]
			// w beats b iff active[w]/weight(w) < active[b]/weight(b),
			// compared cross-multiplied to stay in integers.
			if a.active[w.tenant]*a.weight(b.tenant) < a.active[b.tenant]*a.weight(w.tenant) {
				best = i
			}
		}
		if best < 0 {
			return // every waiter's tenant is at its own cap
		}
		w := a.queue[best]
		a.queue = append(a.queue[:best], a.queue[best+1:]...)
		a.parked.Add(-1)
		a.grant(w.tenant)
		close(w.granted)
	}
}

// admit decides one hello. On admitOK the caller owns a slot and must
// release(tenant) exactly once.
func (a *admission) admit(tenant string) admitResult {
	a.mu.Lock()
	if a.atTenantCap(tenant) {
		a.mu.Unlock()
		return admitQuota
	}
	// No barging: when waiters are parked, a newcomer queues behind them
	// even if a slot is momentarily free, or the queue would starve.
	if a.total < a.max && len(a.queue) == 0 {
		a.grant(tenant)
		a.mu.Unlock()
		return admitOK
	}
	if a.wait <= 0 || len(a.queue) >= a.depth {
		a.mu.Unlock()
		return admitBusy
	}
	w := &admitWaiter{tenant: tenant, granted: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.parked.Add(1)
	a.dispatch() // a slot may be free; the best waiter (possibly w) gets it
	a.mu.Unlock()

	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case <-w.granted:
		return admitOK
	case <-timer.C:
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	select {
	case <-w.granted:
		// A grant raced the timeout; the slot is ours after all.
		return admitOK
	default:
	}
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.parked.Add(-1)
			break
		}
	}
	return admitBusy
}

// release returns tenant's slot and hands it to the best parked waiter.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active[tenant] > 1 {
		a.active[tenant]--
	} else {
		delete(a.active, tenant)
	}
	a.total--
	a.mirror.Add(-1)
	a.dispatch()
}

// snapshotActive copies the per-tenant active counts for stats.
func (a *admission) snapshotActive() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.active))
	for t, n := range a.active {
		out[t] = n
	}
	return out
}
