package scserve

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// startServer runs a server on a loopback listener and tears it down with
// the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil && err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// offsetOf returns the byte offset of symbol idx in the stream's wire
// encoding.
func offsetOf(s descriptor.Stream, idx int) int64 {
	return int64(len(descriptor.Marshal(s[:idx])))
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := DialTimeout(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSessionVerdicts(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialT(t, addr)
	h := SyntheticHeader()

	t.Run("accept", func(t *testing.T) {
		v, err := c.Check(h, SyntheticAccept(30))
		if err != nil {
			t.Fatal(err)
		}
		if v.Code != VerdictAccept {
			t.Fatalf("verdict %v, want accept", v)
		}
	})

	t.Run("reject position", func(t *testing.T) {
		s, idx := SyntheticReject(12)
		v, err := c.Check(h, s)
		if err != nil {
			t.Fatal(err)
		}
		if v.Code != VerdictReject {
			t.Fatalf("verdict %v, want reject", v)
		}
		if v.Symbol != idx || v.Offset != offsetOf(s, idx) {
			t.Fatalf("rejected at symbol %d byte %d, want symbol %d byte %d: %s",
				v.Symbol, v.Offset, idx, offsetOf(s, idx), v.Msg)
		}
		// The witness extension classifies the rejection over the wire:
		// SyntheticReject closes a two-node cycle.
		if v.Constraint != int(checker.ConstraintCycle) || v.CycleLen != 2 {
			t.Fatalf("witness fields constraint=%d cyclelen=%d, want cycle of 2: %s",
				v.Constraint, v.CycleLen, v)
		}
	})

	t.Run("finish-time reject", func(t *testing.T) {
		// A lone load that never inherits: accepted symbol by symbol,
		// rejected by the end-of-stream constraint-4 check.
		ld := trace.LD(1, 1, 1)
		s := descriptor.Stream{descriptor.Node{ID: 1, Op: &ld}}
		v, err := c.Check(h, s)
		if err != nil {
			t.Fatal(err)
		}
		if v.Code != VerdictReject || v.Symbol != len(s) {
			t.Fatalf("verdict %v, want reject at end-of-stream symbol %d", v, len(s))
		}
		if v.Constraint != int(checker.Constraint4) || v.CycleLen != 0 {
			t.Fatalf("witness fields constraint=%d cyclelen=%d, want constraint 4: %s",
				v.Constraint, v.CycleLen, v)
		}
	})

	t.Run("undecodable bytes", func(t *testing.T) {
		sess, err := c.Session(h)
		if err != nil {
			t.Fatal(err)
		}
		good := descriptor.Marshal(SyntheticAccept(6))
		if err := sess.SendBytes(append(good, 0xee)); err != nil {
			t.Fatal(err)
		}
		v, err := sess.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if v.Code != VerdictProtocolError {
			t.Fatalf("verdict %v, want protocol-error", v)
		}
		if v.Symbol != 6 || v.Offset != int64(len(good)) {
			t.Fatalf("error at symbol %d byte %d, want symbol 6 byte %d", v.Symbol, v.Offset, len(good))
		}
	})

	t.Run("truncated mid-symbol at end", func(t *testing.T) {
		sess, err := c.Session(h)
		if err != nil {
			t.Fatal(err)
		}
		full := descriptor.Marshal(SyntheticAccept(6))
		if err := sess.SendBytes(full[:len(full)-1]); err != nil {
			t.Fatal(err)
		}
		v, err := sess.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if v.Code != VerdictProtocolError || v.Symbol != 5 {
			t.Fatalf("verdict %v, want positioned protocol-error at symbol 5", v)
		}
	})

	t.Run("connection reuse after verdicts", func(t *testing.T) {
		// All of the above ran on one connection; one more accept proves
		// the connection survived every verdict class.
		v, err := c.Check(h, SyntheticAccept(3))
		if err != nil {
			t.Fatal(err)
		}
		if v.Code != VerdictAccept {
			t.Fatalf("verdict %v, want accept", v)
		}
	})
}

// TestFramesSplitMidSymbol streams a session one byte per frame: symbol
// decoding must span frame payloads transparently.
func TestFramesSplitMidSymbol(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialT(t, addr)
	s, idx := SyntheticReject(4)
	wire := descriptor.Marshal(s)
	sess, err := c.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range wire {
		if err := sess.SendBytes([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != VerdictReject || v.Symbol != idx || v.Offset != offsetOf(s, idx) {
		t.Fatalf("verdict %v, want reject at symbol %d byte %d", v, idx, offsetOf(s, idx))
	}
}

// TestEarlyRejectBackpressure keeps streaming long past a rejection with a
// tiny server-side queue: the server must deliver the early verdict,
// discard the rest without buffering it, and keep the connection usable.
func TestEarlyRejectBackpressure(t *testing.T) {
	srv, addr := startServer(t, Config{QueueBytes: 128})
	c := dialT(t, addr)
	s, idx := SyntheticReject(0)
	sess, err := c.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(s...); err != nil {
		t.Fatal(err)
	}
	// Megabytes of post-rejection garbage symbols; server must not buffer
	// them (queue is 128 bytes) nor break the session.
	filler := descriptor.Marshal(SyntheticAccept(60000))
	for i := 0; i < 8; i++ {
		if err := sess.SendBytes(filler); err != nil {
			t.Fatal(err)
		}
	}
	v, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != VerdictReject || v.Symbol != idx {
		t.Fatalf("verdict %v, want reject at symbol %d", v, idx)
	}
	if q := srv.Stats().QueueBytes; q != 0 {
		t.Fatalf("queue depth %d after session end, want 0", q)
	}
	// The connection is still good for another session.
	if v, err := c.Check(SyntheticHeader(), SyntheticAccept(3)); err != nil || v.Code != VerdictAccept {
		t.Fatalf("follow-up session: %v / %v", v, err)
	}
}

// TestServerConcurrentSessions is the acceptance smoke test: ≥64 concurrent
// sessions under -race, mixed accept/reject streams, every verdict correct
// including rejection positions, followed by a clean shutdown.
func TestServerConcurrentSessions(t *testing.T) {
	srv, addr := startServer(t, Config{MaxSessions: 128})
	const clients = 64
	const rounds = 3

	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := DialTimeout(addr, 30*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				if (ci+r)%2 == 0 {
					n := 3 + (ci*7+r*13)%200
					v, err := c.Check(SyntheticHeader(), SyntheticAccept(n))
					if err != nil {
						errs <- fmt.Errorf("client %d round %d: %w", ci, r, err)
						return
					}
					if v.Code != VerdictAccept {
						errs <- fmt.Errorf("client %d round %d: accept stream got %v", ci, r, v)
						return
					}
				} else {
					s, idx := SyntheticReject((ci*5 + r*11) % 150)
					v, err := c.Check(SyntheticHeader(), s)
					if err != nil {
						errs <- fmt.Errorf("client %d round %d: %w", ci, r, err)
						return
					}
					if v.Code != VerdictReject || v.Symbol != idx || v.Offset != offsetOf(s, idx) {
						errs <- fmt.Errorf("client %d round %d: reject stream got %v, want symbol %d byte %d",
							ci, r, v, idx, offsetOf(s, idx))
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.SessionsTotal != clients*rounds {
		t.Errorf("sessions_total = %d, want %d", st.SessionsTotal, clients*rounds)
	}
	if st.Accepts+st.Rejects != clients*rounds || st.ProtocolErrors != 0 || st.SessionsAborted != 0 {
		t.Errorf("verdict counters off: %+v", st)
	}
	if st.QueueBytes != 0 {
		t.Errorf("queue depth %d after drain, want 0", st.QueueBytes)
	}
}

// TestGracefulShutdown opens sessions, parks them mid-stream, begins
// Shutdown, and then completes the sessions: every in-flight verdict must
// be delivered (none dropped), and Shutdown must return only after they
// are.
func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	const n = 16
	type half struct {
		sess *Session
		rest descriptor.Stream
	}
	clients := make([]*Client, n)
	halves := make([]half, n)
	stream := SyntheticAccept(40)
	for i := 0; i < n; i++ {
		c, err := DialTimeout(ln.Addr().String(), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		sess, err := c.Session(SyntheticHeader())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Send(stream[:20]...); err != nil {
			t.Fatal(err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
		halves[i] = half{sess: sess, rest: stream[20:]}
	}
	// Wait until the server has all n sessions in flight.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().SessionsActive != n {
		if time.Now().After(deadline) {
			t.Fatalf("sessions active = %d, want %d", srv.Stats().SessionsActive, n)
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// New connections must be refused while draining.
	time.Sleep(20 * time.Millisecond)
	if c, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		c.Close()
		t.Error("dial succeeded during drain")
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with %d sessions in flight", err, n)
	default:
	}

	// Complete every in-flight session; each must still get its verdict.
	for i, h := range halves {
		if err := h.sess.Send(h.rest...); err != nil {
			t.Fatalf("session %d: send: %v", i, err)
		}
		v, err := h.sess.Finish()
		if err != nil {
			t.Fatalf("session %d: finish: %v", i, err)
		}
		if v.Code != VerdictAccept {
			t.Fatalf("session %d: verdict %v, want accept", i, v)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	st := srv.Stats()
	if st.Accepts != n || st.SessionsAborted != 0 {
		t.Fatalf("post-shutdown stats %+v, want %d accepts and no aborts", st, n)
	}
}

// TestShutdownDeadlineForceCloses: a session that never completes cannot
// hold Shutdown hostage past its context.
func TestShutdownDeadlineForceCloses(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := DialTimeout(ln.Addr().String(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(SyntheticAccept(3)...); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	for srv.Stats().SessionsActive != 1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	<-serveDone
	if st := srv.Stats(); st.SessionsAborted != 1 {
		t.Fatalf("aborted = %d, want 1", st.SessionsAborted)
	}
}

func TestServerLimits(t *testing.T) {
	t.Run("max k", func(t *testing.T) {
		_, addr := startServer(t, Config{MaxK: 8})
		c := dialT(t, addr)
		_, err := c.Session(Header{K: 9})
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.open.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if v.Code != VerdictProtocolError {
			t.Fatalf("verdict %v, want protocol-error for k over limit", v)
		}
	})

	t.Run("session capacity", func(t *testing.T) {
		srv, addr := startServer(t, Config{MaxSessions: 1})
		c1 := dialT(t, addr)
		sess, err := c1.Session(SyntheticHeader())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Send(SyntheticAccept(3)...); err != nil {
			t.Fatal(err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
		for srv.Stats().SessionsActive != 1 {
			time.Sleep(time.Millisecond)
		}
		c2 := dialT(t, addr)
		sess2, err := c2.Session(SyntheticHeader())
		if err != nil {
			t.Fatal(err)
		}
		v2, err := sess2.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if v2.Code != VerdictProtocolError {
			t.Fatalf("second session verdict %v, want capacity protocol-error", v2)
		}
		if v1, err := sess.Finish(); err != nil || v1.Code != VerdictAccept {
			t.Fatalf("first session: %v / %v", v1, err)
		}
	})

	t.Run("oversized frame", func(t *testing.T) {
		_, addr := startServer(t, Config{MaxFrame: 64})
		c := dialT(t, addr)
		sess, err := c.Session(SyntheticHeader())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.SendBytes(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Finish(); err == nil {
			t.Fatal("oversized frame: session finished normally, want connection error")
		}
	})

	t.Run("read timeout", func(t *testing.T) {
		srv, addr := startServer(t, Config{ReadTimeout: 50 * time.Millisecond})
		c := dialT(t, addr)
		sess, err := c.Session(SyntheticHeader())
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for srv.Stats().SessionsAborted == 0 {
			if time.Now().After(deadline) {
				t.Fatal("idle session never timed out")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestVerdictWireCompat pins the witness extension's wire compatibility:
// pre-extension payloads parse with zero witness fields, witness-free
// verdicts encode byte-identically to the pre-extension format, and
// extended verdicts survive a lossless round trip.
func TestVerdictWireCompat(t *testing.T) {
	legacy := binary.AppendUvarint(nil, uint64(VerdictReject))
	legacy = binary.AppendUvarint(legacy, uint64(4))  // symbol 3
	legacy = binary.AppendUvarint(legacy, uint64(18)) // offset 17
	legacy = append(legacy, "old peer"...)
	v, err := parseVerdict(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if v.Constraint != 0 || v.CycleLen != 0 || v.Symbol != 3 || v.Msg != "old peer" {
		t.Fatalf("legacy payload parsed as %+v", v)
	}
	if got := appendVerdict(nil, v); !bytes.Equal(got, legacy) {
		t.Fatalf("witness-free verdict re-encodes as %x, want legacy bytes %x", got, legacy)
	}

	want := Verdict{Code: VerdictReject, Symbol: 3, Offset: 17,
		Constraint: int(checker.ConstraintCycle), CycleLen: 5, Msg: "loop"}
	back, err := parseVerdict(appendVerdict(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if back != want {
		t.Fatalf("extended round trip %+v, want %+v", back, want)
	}

	// A witness extension with an out-of-range constraint code is rejected
	// rather than silently misclassified.
	bad := binary.AppendUvarint(nil, uint64(VerdictReject)|verdictFlagWitness)
	bad = binary.AppendUvarint(bad, 0)   // symbol n/a
	bad = binary.AppendUvarint(bad, 0)   // offset n/a
	bad = binary.AppendUvarint(bad, 200) // constraint code out of range
	bad = binary.AppendUvarint(bad, 1)
	if _, err := parseVerdict(bad); err == nil {
		t.Fatal("out-of-range constraint code accepted")
	}
}

func TestStatsFrame(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialT(t, addr)
	for i := 0; i < 3; i++ {
		if v, err := c.Check(SyntheticHeader(), SyntheticAccept(9)); err != nil || v.Code != VerdictAccept {
			t.Fatalf("session %d: %v / %v", i, v, err)
		}
	}
	s, _ := SyntheticReject(2)
	if v, err := c.Check(SyntheticHeader(), s); err != nil || v.Code != VerdictReject {
		t.Fatalf("reject session: %v / %v", v, err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsTotal != 4 || st.Accepts != 3 || st.Rejects != 1 {
		t.Fatalf("stats %+v, want 4 sessions, 3 accepts, 1 reject", st)
	}
	if st.SymbolsTotal == 0 || st.UptimeSeconds <= 0 {
		t.Fatalf("stats %+v missing symbol/uptime counters", st)
	}
}
