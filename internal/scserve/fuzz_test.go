package scserve

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"scverify/internal/descriptor"
)

// FuzzFrameParser feeds arbitrary bytes to the frame reader: no panics,
// and every parsed frame respects the payload limit.
func FuzzFrameParser(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameHello, 0x00})
	f.Add([]byte{frameSymbols, 0x05, 1, 2, 3, 4, 5})
	f.Add([]byte{frameEnd, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add(append([]byte{frameVerdict, 0x03}, 0, 1, 2))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		const max = 1 << 10
		for {
			typ, payload, err := readFrame(br, max)
			if err != nil {
				if err == io.EOF && len(payload) != 0 {
					t.Fatal("EOF with payload")
				}
				return
			}
			if len(payload) > max {
				t.Fatalf("frame type %#x: payload %d exceeds limit", typ, len(payload))
			}
		}
	})
}

// FuzzFrameRoundTrip: whatever writeFrame emits, readFrame returns
// verbatim, including back-to-back frames.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), []byte{}, byte(2), []byte{9, 9})
	f.Fuzz(func(t *testing.T, typ1 byte, p1 []byte, typ2 byte, p2 []byte) {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeFrame(bw, typ1, p1); err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(bw, typ2, p2); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		br := bufio.NewReader(&buf)
		for i, want := range []struct {
			typ     byte
			payload []byte
		}{{typ1, p1}, {typ2, p2}} {
			typ, payload, err := readFrame(br, len(p1)+len(p2))
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if typ != want.typ || !bytes.Equal(payload, want.payload) {
				t.Fatalf("frame %d: got (%#x, %v), want (%#x, %v)", i, typ, payload, want.typ, want.payload)
			}
		}
		if _, _, err := readFrame(br, 1<<10); err != io.EOF {
			t.Fatalf("trailing read: %v, want io.EOF", err)
		}
	})
}

// FuzzHelloAndVerdictParsers: arbitrary payloads never panic the parsers,
// and well-formed values survive a round trip.
func FuzzHelloAndVerdictParsers(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(appendHello(nil, SyntheticHeader()), appendVerdict(nil, Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Msg: "x"}))
	f.Add([]byte{}, appendVerdict(nil, Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Constraint: 1, CycleLen: 2, Msg: "cycle"}))
	f.Fuzz(func(t *testing.T, hp, vp []byte) {
		if h, err := parseHello(hp); err == nil {
			back, err2 := parseHello(appendHello(nil, h))
			if err2 != nil || back != h {
				t.Fatalf("hello round trip: %+v -> %+v (%v)", h, back, err2)
			}
		}
		if v, err := parseVerdict(vp); err == nil {
			back, err2 := parseVerdict(appendVerdict(nil, v))
			if err2 != nil || back != v {
				t.Fatalf("verdict round trip: %+v -> %+v (%v)", v, back, err2)
			}
		}
	})
}

// FuzzServerConn throws an arbitrary client byte stream at a live
// connection handler: the server must neither panic nor leak the handler
// goroutine, whatever the bytes contain.
func FuzzServerConn(f *testing.F) {
	valid := func(stream descriptor.Stream) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		writeFrame(bw, frameHello, appendHello(nil, SyntheticHeader()))
		writeFrame(bw, frameSymbols, descriptor.Marshal(stream))
		writeFrame(bw, frameEnd, nil)
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(valid(SyntheticAccept(9)))
	rej, _ := SyntheticReject(2)
	f.Add(valid(rej))
	f.Add([]byte{frameHello, 0x00, frameEnd, 0x00})
	f.Add([]byte{frameStatsReq, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := New(Config{MaxFrame: 1 << 16, MaxK: 64, QueueBytes: 512, ReadTimeout: 2 * time.Second})
		server, client := net.Pipe()
		srv.wg.Add(1)
		go srv.handleConn(server)

		// Drain server responses so its writes never block the pipe.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			io.Copy(io.Discard, client)
		}()

		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		for len(data) > 0 { // dribble in smallish writes
			n := len(data)
			if n > 64 {
				n = 64
			}
			if _, err := client.Write(data[:n]); err != nil {
				break
			}
			data = data[n:]
		}
		client.Close()
		srv.wg.Wait()
		<-drained
	})
}
